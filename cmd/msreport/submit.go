package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"multiscalar/internal/experiment"
	"multiscalar/internal/serve"
)

// buildSubmitRequest maps the report flags onto the async experiment job
// body. Only the experiments the server runs whole are submittable: chart,
// ablations, and all are client-side compositions of several runs, so they
// stay local.
func buildSubmitRequest(which, corpusArg string, policies, names []string, pus []int) (serve.ExperimentRequest, error) {
	if corpusArg != "" {
		seed, n, err := parseCorpus(corpusArg)
		if err != nil {
			return serve.ExperimentRequest{}, err
		}
		return serve.ExperimentRequest{Name: "corpus", Seed: seed, N: n, Policies: policies}, nil
	}
	switch which {
	case "fig5", "table1", "summary":
		return serve.ExperimentRequest{Name: which, Workloads: names, PUs: pus}, nil
	}
	return serve.ExperimentRequest{}, fmt.Errorf(
		"-submit runs one server-side experiment: fig5, table1, summary, or -corpus (not %q)", which)
}

// runSubmit is msreport as a thin job client: POST the experiment to an
// mssrv job surface, poll the record to a terminal state, and print the
// result with the same formatters a local run uses. Submitting the same
// flags twice hits the server's terminal cache, so a rerun costs one GET.
func runSubmit(ctx context.Context, base, apiKey string, req serve.ExperimentRequest) error {
	base = strings.TrimRight(base, "/")
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	sub, err := json.Marshal(serve.JobSubmitRequest{Kind: "experiment", Request: body})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}
	st, err := submitOnce(ctx, client, base, apiKey, sub)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "submitted job %s (%s)\n", st.ID, st.State)

	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for !terminalState(st.State) {
		select {
		case <-ctx.Done():
			// Best-effort cancel so the server stops burning runner time on
			// a sweep nobody will read. A fresh context: ours is done.
			cancelCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
			defer cancel()
			del, _ := http.NewRequestWithContext(cancelCtx, http.MethodDelete, base+"/v1/jobs/"+st.ID, nil)
			if resp, err := client.Do(del); err == nil {
				resp.Body.Close()
			}
			return ctx.Err()
		case <-tick.C:
		}
		if st, err = getJob(ctx, client, base, apiKey, st.ID); err != nil {
			return err
		}
	}
	if st.State != "done" {
		return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	return printJobResult(req, st.Result)
}

// submitOnce POSTs the job and decodes the accepted record. 202 means the
// job was created; 200 means an identical job already exists (shared or
// already finished) — both return the record to poll.
func submitOnce(ctx context.Context, client *http.Client, base, apiKey string, body []byte) (serve.JobStatusResponse, error) {
	var st serve.JobStatusResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return st, err
	}
	req.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		req.Header.Set("X-Api-Key", apiKey)
	}
	resp, err := client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return st, fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// getJob polls one job record.
func getJob(ctx context.Context, client *http.Client, base, apiKey, id string) (serve.JobStatusResponse, error) {
	var st serve.JobStatusResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id, nil)
	if err != nil {
		return st, err
	}
	if apiKey != "" {
		req.Header.Set("X-Api-Key", apiKey)
	}
	resp, err := client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return st, fmt.Errorf("poll: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func terminalState(s string) bool {
	return s == "done" || s == "failed" || s == "canceled"
}

// printJobResult renders the async result with the local run's formatters,
// so `msreport -submit URL` and plain `msreport` are diffable.
func printJobResult(req serve.ExperimentRequest, raw json.RawMessage) error {
	var res serve.ExperimentResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return fmt.Errorf("decode result: %w", err)
	}
	switch req.Name {
	case "fig5":
		fmt.Print(experiment.FormatFigure5(res.Cells))
	case "table1":
		fmt.Print(experiment.FormatTable1(res.Rows))
	case "summary":
		fmt.Print(experiment.FormatSummary(res.Summaries))
	case "corpus":
		spec := experiment.CorpusSpec{Seed: req.Seed, N: req.N, Policies: req.Policies}
		fmt.Print(experiment.FormatCorpus(spec, res.Corpus))
	default:
		// Future kinds fall back to the raw payload rather than guessing.
		os.Stdout.Write(append(bytes.TrimSpace(raw), '\n'))
	}
	return nil
}
