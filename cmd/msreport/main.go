// Command msreport regenerates the paper's evaluation artifacts: Figure 5,
// Table 1, the §4.3.1 summary claims, and the ablations DESIGN.md lists.
// The grid runs in parallel across a bounded worker pool; pass -cache-dir
// to persist simulation results so warm reruns skip simulation entirely.
//
// Usage:
//
//	msreport -experiment fig5
//	msreport -experiment table1 -j 8 -progress
//	msreport -experiment summary
//	msreport -experiment ablations -workloads compress,tomcatv
//	msreport -experiment all -cache-dir ~/.cache/msgrid
//	msreport -experiment all -metrics-out metrics.json -cpuprofile cpu.pprof
//
// -metrics-out captures the grid engine's metrics (job/sim/cache counters,
// queue-wait and exec wall-time histograms, worker occupancy) as a
// deterministic JSON snapshot; -cpuprofile/-memprofile write standard pprof
// profiles of the whole report run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"multiscalar/internal/experiment"
	"multiscalar/internal/grid"
	"multiscalar/internal/obs"
	"multiscalar/internal/workloads"
)

func main() {
	var (
		which      = flag.String("experiment", "all", "fig5, chart, table1, summary, ablations, or all")
		wls        = flag.String("workloads", "", "comma-separated workload subset (default: all 18)")
		pus        = flag.String("pus", "", "comma-separated PU counts (default: 4,8)")
		workers    = flag.Int("j", 0, "max concurrent partition/simulation jobs (default GOMAXPROCS)")
		cacheDir   = flag.String("cache-dir", "", "content-addressed result cache directory (default: no cache)")
		noCache    = flag.Bool("no-cache", false, "ignore -cache-dir and recompute everything")
		progress   = flag.Bool("progress", false, "print a progress/ETA line to stderr")
		timeout    = flag.Duration("timeout", 0, "overall deadline for the run; queued jobs cancel cleanly when it expires (0 = none)")
		metricsOut = flag.String("metrics-out", "", "write the grid metrics snapshot as JSON to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	names := splitList(*wls)
	if err := validateWorkloads(names); err != nil {
		fatal(err)
	}
	puCounts, err := parsePUs(splitList(*pus))
	if err != nil {
		fatal(err)
	}

	dir := *cacheDir
	if *noCache {
		dir = ""
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	// SIGINT/SIGTERM (and -timeout, if set) cancel the run's context: jobs
	// still queued for a worker return immediately, simulations already
	// executing finish, and the command exits with a clean diagnostic
	// instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	eng := grid.New(grid.Options{Workers: *workers, CacheDir: dir, Metrics: reg})
	r := experiment.NewRunnerOn(eng).WithContext(ctx)
	if *progress {
		defer trackProgress(eng)()
	}
	if *metricsOut != "" {
		defer func() {
			blob, err := reg.Snapshot().JSON()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*metricsOut, append(blob, '\n'), 0o644); err != nil {
				fatal(err)
			}
		}()
	}

	needFig5 := *which == "fig5" || *which == "chart" || *which == "summary" || *which == "all"
	var cells []experiment.Fig5Cell
	if needFig5 {
		var err error
		cells, err = experiment.Figure5(r, puCounts, names)
		if err != nil {
			fatalRun(ctx, err)
		}
	}
	switch *which {
	case "fig5":
		fmt.Print(experiment.FormatFigure5(cells))
	case "chart":
		for _, n := range []int{4, 8} {
			fmt.Print(experiment.ChartFigure5(cells, n, false))
			fmt.Println()
		}
	case "summary":
		fmt.Print(experiment.FormatSummary(experiment.Summarize(cells)))
	case "table1":
		printTable1(ctx, r, names)
	case "ablations":
		printAblations(ctx, r, names)
	case "all":
		fmt.Print(experiment.FormatFigure5(cells))
		fmt.Print(experiment.FormatSummary(experiment.Summarize(cells)))
		fmt.Println()
		printTable1(ctx, r, names)
		fmt.Println()
		printAblations(ctx, r, names)
	default:
		fatal(fmt.Errorf("unknown experiment %q", *which))
	}
}

// parsePUs parses PU counts strictly: "4x" or "8.5" is an error, not 4.
func parsePUs(fields []string) ([]int, error) {
	var out []int
	for _, s := range fields {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad PU count %q (want a positive integer)", s)
		}
		out = append(out, n)
	}
	return out, nil
}

// validateWorkloads rejects unknown -workloads names before any simulation
// starts, listing the known names.
func validateWorkloads(names []string) error {
	for _, n := range names {
		if _, err := workloads.ByName(n); err != nil {
			return fmt.Errorf("unknown workload %q (known: %s)",
				n, strings.Join(workloads.Names(), ", "))
		}
	}
	return nil
}

// termWidth returns the terminal column count from $COLUMNS (exported by
// most interactive shells), or 0 when unknown.
func termWidth() int {
	if s := os.Getenv("COLUMNS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// fitStatus prepares an in-place status line: truncated to width-1 columns
// when the width is known (so it never wraps and \r can return over it) and
// padded with spaces to cover prev printed characters, clearing leftovers
// from a longer previous line.
func fitStatus(s string, prev, width int) string {
	if width > 0 && len(s) > width-1 {
		s = s[:width-1]
	}
	if len(s) < prev {
		s += strings.Repeat(" ", prev-len(s))
	}
	return s
}

// trackProgress prints a live jobs/ETA line to stderr until the returned
// stop function runs, then a final summary (jobs run / cache hits / wall
// time) from the grid metrics.
func trackProgress(eng *grid.Engine) (stop func()) {
	start := time.Now()
	quit := make(chan struct{})
	done := make(chan struct{})
	width := termWidth()
	line := func() string {
		s := eng.Stats()
		elapsed := time.Since(start).Round(100 * time.Millisecond)
		eta := "?"
		if s.Done > 0 && s.Jobs > s.Done {
			rem := time.Duration(float64(elapsed) / float64(s.Done) * float64(s.Jobs-s.Done))
			eta = rem.Round(100 * time.Millisecond).String()
		} else if s.Jobs == s.Done {
			eta = "0s"
		}
		return fmt.Sprintf("grid: %d/%d jobs (%d sims, %d cached, j=%d) elapsed %s eta %s",
			s.Done, s.Jobs, s.Sims, s.CacheHits, eng.Workers(), elapsed, eta)
	}
	go func() {
		defer close(done)
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		prev := 0
		for {
			select {
			case <-quit:
				// Clear the status line, then leave a one-line summary.
				fmt.Fprintf(os.Stderr, "\r%s\r", fitStatus("", prev, width))
				s := eng.Stats()
				fmt.Fprintf(os.Stderr, "grid: %d jobs run (%d simulated, %d cache hits) in %s\n",
					s.Done, s.Sims, s.CacheHits, time.Since(start).Round(10*time.Millisecond))
				return
			case <-tick.C:
				out := fitStatus(line(), prev, width)
				fmt.Fprintf(os.Stderr, "\r%s", out)
				prev = len(strings.TrimRight(out, " "))
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

func printTable1(ctx context.Context, r *experiment.Runner, names []string) {
	rows, err := experiment.Table1(r, names)
	if err != nil {
		fatalRun(ctx, err)
	}
	fmt.Print(experiment.FormatTable1(rows))
}

func printAblations(ctx context.Context, r *experiment.Runner, names []string) {
	if len(names) == 0 {
		// Defaults chosen for sensitivity: perl/vortex expose the target
		// limit, wave5 exercises the ARB and synchronization table, compress
		// and tomcatv show the ring bandwidth.
		names = []string{"compress", "perl", "vortex", "wave5", "tomcatv"}
	}
	targets, err := experiment.AblationTargets(r, names, nil)
	if err != nil {
		fatalRun(ctx, err)
	}
	fmt.Print(experiment.FormatAblation("hardware target limit N", targets))
	fmt.Println()
	syncRows, err := experiment.AblationSync(r, names)
	if err != nil {
		fatalRun(ctx, err)
	}
	fmt.Print(experiment.FormatAblation("memory dependence synchronization", syncRows))
	fmt.Println()
	ring, err := experiment.AblationRing(r, names, nil)
	if err != nil {
		fatalRun(ctx, err)
	}
	fmt.Print(experiment.FormatAblation("register ring bandwidth", ring))
	fmt.Println()
	banks, err := experiment.AblationBanks(r, names, nil)
	if err != nil {
		fatalRun(ctx, err)
	}
	fmt.Print(experiment.FormatAblation("L1 D-cache banks", banks))
	fmt.Println()
	greedy, err := experiment.AblationGreedy(r, names)
	if err != nil {
		fatalRun(ctx, err)
	}
	fmt.Print(experiment.FormatAblation("greedy vs first-fit task growth", greedy))
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msreport:", err)
	os.Exit(1)
}

// fatalRun reports a failed experiment run. When the run's context ended
// (signal or -timeout), the joined per-job cancellation errors collapse to
// one diagnostic line instead of a page of context.Canceled repeats.
func fatalRun(ctx context.Context, err error) {
	if ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		fmt.Fprintf(os.Stderr, "msreport: run interrupted (%v)\n", ctx.Err())
		os.Exit(1)
	}
	fatal(err)
}
