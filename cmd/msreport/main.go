// Command msreport regenerates the paper's evaluation artifacts: Figure 5,
// Table 1, the §4.3.1 summary claims, and the ablations DESIGN.md lists.
//
// Usage:
//
//	msreport -experiment fig5
//	msreport -experiment table1
//	msreport -experiment summary
//	msreport -experiment ablations -workloads compress,tomcatv
//	msreport -experiment all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"multiscalar/internal/experiment"
)

func main() {
	var (
		which = flag.String("experiment", "all", "fig5, chart, table1, summary, ablations, or all")
		wls   = flag.String("workloads", "", "comma-separated workload subset (default: all 18)")
		pus   = flag.String("pus", "", "comma-separated PU counts (default: 4,8)")
	)
	flag.Parse()

	names := splitList(*wls)
	var puCounts []int
	for _, s := range splitList(*pus) {
		var n int
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n <= 0 {
			fatal(fmt.Errorf("bad PU count %q", s))
		}
		puCounts = append(puCounts, n)
	}

	r := experiment.NewRunner()
	needFig5 := *which == "fig5" || *which == "chart" || *which == "summary" || *which == "all"
	var cells []experiment.Fig5Cell
	if needFig5 {
		var err error
		cells, err = experiment.Figure5(r, puCounts, names)
		if err != nil {
			fatal(err)
		}
	}
	switch *which {
	case "fig5":
		fmt.Print(experiment.FormatFigure5(cells))
	case "chart":
		for _, n := range []int{4, 8} {
			fmt.Print(experiment.ChartFigure5(cells, n, false))
			fmt.Println()
		}
	case "summary":
		fmt.Print(experiment.FormatSummary(experiment.Summarize(cells)))
	case "table1":
		printTable1(r, names)
	case "ablations":
		printAblations(r, names)
	case "all":
		fmt.Print(experiment.FormatFigure5(cells))
		fmt.Print(experiment.FormatSummary(experiment.Summarize(cells)))
		fmt.Println()
		printTable1(r, names)
		fmt.Println()
		printAblations(r, names)
	default:
		fatal(fmt.Errorf("unknown experiment %q", *which))
	}
}

func printTable1(r *experiment.Runner, names []string) {
	rows, err := experiment.Table1(r, names)
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiment.FormatTable1(rows))
}

func printAblations(r *experiment.Runner, names []string) {
	if len(names) == 0 {
		// Defaults chosen for sensitivity: perl/vortex expose the target
		// limit, wave5 exercises the ARB and synchronization table, compress
		// and tomcatv show the ring bandwidth.
		names = []string{"compress", "perl", "vortex", "wave5", "tomcatv"}
	}
	targets, err := experiment.AblationTargets(r, names, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiment.FormatAblation("hardware target limit N", targets))
	fmt.Println()
	syncRows, err := experiment.AblationSync(r, names)
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiment.FormatAblation("memory dependence synchronization", syncRows))
	fmt.Println()
	ring, err := experiment.AblationRing(r, names, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiment.FormatAblation("register ring bandwidth", ring))
	fmt.Println()
	banks, err := experiment.AblationBanks(r, names, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiment.FormatAblation("L1 D-cache banks", banks))
	fmt.Println()
	greedy, err := experiment.AblationGreedy(names)
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiment.FormatAblation("greedy vs first-fit task growth", greedy))
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msreport:", err)
	os.Exit(1)
}
