// Command msreport regenerates the paper's evaluation artifacts: Figure 5,
// Table 1, the §4.3.1 summary claims, and the ablations DESIGN.md lists.
// The grid runs in parallel across a bounded worker pool; pass -cache-dir
// to persist simulation results so warm reruns skip simulation entirely.
//
// With -workers the run fans out across processes: msreport becomes the
// leader of a distributed grid, listening on the given address for mssrv
// -worker peers. Cache-missing jobs go to a work-stealing shard scheduler;
// the leader's own cores participate through a local worker loop, remote
// workers pull over HTTP, and results flow back through reports and the
// shared cache. Output stays byte-identical to a serial run — collection is
// by index, not arrival order. -remote-cache chains a peer's cache behind
// the local tiers for single-process runs too; -lru adds an in-memory tier.
//
// Usage:
//
//	msreport -experiment fig5
//	msreport -experiment table1 -j 8 -progress
//	msreport -experiment summary
//	msreport -experiment ablations -workloads compress,tomcatv
//	msreport -experiment all -cache-dir ~/.cache/msgrid
//	msreport -experiment all -metrics-out metrics.json -cpuprofile cpu.pprof
//	msreport -corpus seed:100 -j 4 -cache-dir ~/.cache/msgrid
//
// -corpus <seed>:<n> replaces the paper experiments with the generated-
// corpus sweep: n property-based programs derived from the seed, each
// partitioned by the three paper heuristics plus every -policies entry and
// simulated on the headline 4-PU machine. The literal word "seed" means
// seed 1, so the documented `-corpus seed:100` works as written. The
// scoreboard goes to stdout; a one-line accounting summary (jobs, sims,
// cache hits) goes to stderr, so a warm-cache rerun is greppable for
// "0 simulated".
//
//	# distributed: start the leader, then any number of workers
//	msreport -experiment fig5 -workers 127.0.0.1:9090
//	mssrv -worker -leader http://127.0.0.1:9090   # in other terminals
//
// -metrics-out captures the grid engine's metrics (job/sim/cache counters,
// queue-wait and exec wall-time histograms, worker occupancy) as a
// deterministic JSON snapshot; -cpuprofile/-memprofile write standard pprof
// profiles of the whole report run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"multiscalar/internal/dist"
	"multiscalar/internal/experiment"
	"multiscalar/internal/grid"
	"multiscalar/internal/obs"
	"multiscalar/internal/obs/span"
	_ "multiscalar/internal/policy" // register the policy zoo for -corpus
	"multiscalar/internal/workloads"
)

func main() {
	var (
		which      = flag.String("experiment", "all", "fig5, chart, table1, summary, ablations, or all")
		corpus     = flag.String("corpus", "", "generated-corpus sweep \"<seed>:<n>\" instead of a paper experiment (e.g. seed:100)")
		policyList = flag.String("policies", "greedy,roundrobin,knapsack", "comma-separated policy arms for -corpus")
		wls        = flag.String("workloads", "", "comma-separated workload subset (default: all 18)")
		pus        = flag.String("pus", "", "comma-separated PU counts (default: 4,8)")
		workers    = flag.Int("j", 0, "max concurrent partition/simulation jobs (default GOMAXPROCS)")
		cacheDir   = flag.String("cache-dir", "", "content-addressed result cache directory (default: no cache)")
		noCache    = flag.Bool("no-cache", false, "ignore -cache-dir and recompute everything")
		distAddr   = flag.String("workers", "", "lead a distributed run: listen on this host:port for mssrv -worker peers")
		remoteAddr = flag.String("remote-cache", "", "base URL of a peer cache (an mssrv or another leader) chained behind the local tiers")
		lruSize    = flag.Int("lru", 0, "in-memory cache tier entry budget (0 = no memory tier; a leader with no other tier defaults to 4096)")
		lease      = flag.Duration("lease", 0, "distributed job lease before reassignment to another worker (0 = 2m)")
		progress   = flag.Bool("progress", false, "print a progress/ETA line to stderr")
		timeout    = flag.Duration("timeout", 0, "overall deadline for the run; queued jobs cancel cleanly when it expires (0 = none)")
		metricsOut = flag.String("metrics-out", "", "write the grid metrics snapshot as JSON to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
		traceRun   = flag.Bool("trace", false, "trace the run end to end, spanning distributed workers (implied by -trace-out)")
		traceOut   = flag.String("trace-out", "", "write the run's trace as Chrome trace-event JSON (open in chrome://tracing or Perfetto)")
		submitURL  = flag.String("submit", "", "submit the experiment as an async job to this mssrv base URL instead of running locally, poll it to completion, and print the result")
		apiKey     = flag.String("api-key", "", "X-Api-Key tenant header for -submit (default: the server's anonymous tenant)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	names := splitList(*wls)
	if err := validateWorkloads(names); err != nil {
		fatal(err)
	}
	puCounts, err := parsePUs(splitList(*pus))
	if err != nil {
		fatal(err)
	}

	dir := *cacheDir
	if *noCache {
		dir = ""
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	var tracer *span.Tracer
	if *traceRun || *traceOut != "" {
		// One report run is one trace: raise the span budget so a full sweep
		// (hundreds of jobs, each contributing several hops) fits.
		tracer = span.New(span.Options{Process: "msreport", MaxSpansPerTrace: 1 << 16, Metrics: reg})
	}
	// SIGINT/SIGTERM (and -timeout, if set) cancel the run's context: jobs
	// still queued for a worker return immediately, simulations already
	// executing finish, and the command exits with a clean diagnostic
	// instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *submitURL != "" {
		req, err := buildSubmitRequest(*which, *corpus, splitList(*policyList), names, puCounts)
		if err != nil {
			fatal(err)
		}
		if err := runSubmit(ctx, *submitURL, *apiKey, req); err != nil {
			fatal(err)
		}
		return
	}

	lru := *lruSize
	if *distAddr != "" && lru == 0 && dir == "" && *remoteAddr == "" {
		// A leader serves GET/PUT /v1/cache/{key} to its workers; give it a
		// memory tier when nothing else is configured so worker publications
		// have somewhere to land.
		lru = 4096
	}
	cache, remoteTier := dist.BuildCache(dist.CacheConfig{
		LRUSize:       lru,
		Dir:           dir,
		Remote:        *remoteAddr,
		RemoteOptions: dist.RemoteOptions{Metrics: reg},
	})
	opts := grid.Options{Workers: *workers, Metrics: reg}
	if cache != nil {
		opts.Cache = cache
	}

	var d *distRun
	if *distAddr != "" {
		var err error
		d, err = startLeader(ctx, *distAddr, *lease, cache, reg, tracer)
		if err != nil {
			fatal(err)
		}
		opts.Dispatcher = d.sched
	}
	eng := grid.New(opts)
	if d != nil {
		// The leader's own cores pull from the same scheduler as remote
		// workers, via ComputeCtx — RunCtx already holds the job's
		// single-flight leadership, so re-entering it would deadlock.
		go d.sched.RunLocal(ctx, eng.Workers(), eng.ComputeCtx)
	}
	defer distSummary(d, remoteTier)
	// LIFO defers: the trace finishes (root span ends, file written) before
	// distSummary closes the scheduler, so worker spans are already ingested.
	runName := *which
	if *corpus != "" {
		runName = "corpus"
	}
	ctx, rootSp := tracer.StartRoot(ctx, "experiment."+runName)
	defer finishTrace(tracer, rootSp, *traceOut)
	r := experiment.NewRunnerOn(eng).WithContext(ctx)
	if *progress {
		defer trackProgress(eng)()
	}
	if *metricsOut != "" {
		defer func() {
			blob, err := reg.Snapshot().JSON()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*metricsOut, append(blob, '\n'), 0o644); err != nil {
				fatal(err)
			}
		}()
	}

	if *corpus != "" {
		seed, n, err := parseCorpus(*corpus)
		if err != nil {
			fatal(err)
		}
		spec := experiment.CorpusSpec{Seed: seed, N: n, Policies: splitList(*policyList)}
		rows, err := r.Corpus(spec)
		if err != nil {
			fatalRun(ctx, err)
		}
		fmt.Print(experiment.FormatCorpus(spec, rows))
		fmt.Fprintln(os.Stderr, corpusSummary(spec, eng.Stats()))
		return
	}

	needFig5 := *which == "fig5" || *which == "chart" || *which == "summary" || *which == "all"
	var cells []experiment.Fig5Cell
	if needFig5 {
		var err error
		cells, err = experiment.Figure5(r, puCounts, names)
		if err != nil {
			fatalRun(ctx, err)
		}
	}
	switch *which {
	case "fig5":
		fmt.Print(experiment.FormatFigure5(cells))
	case "chart":
		for _, n := range []int{4, 8} {
			fmt.Print(experiment.ChartFigure5(cells, n, false))
			fmt.Println()
		}
	case "summary":
		fmt.Print(experiment.FormatSummary(experiment.Summarize(cells)))
	case "table1":
		printTable1(ctx, r, names)
	case "ablations":
		printAblations(ctx, r, names)
	case "all":
		fmt.Print(experiment.FormatFigure5(cells))
		fmt.Print(experiment.FormatSummary(experiment.Summarize(cells)))
		fmt.Println()
		printTable1(ctx, r, names)
		fmt.Println()
		printAblations(ctx, r, names)
	default:
		fatal(fmt.Errorf("unknown experiment %q", *which))
	}
}

// parseCorpus parses the -corpus argument "<seed>:<n>". The seed field is a
// signed integer or the literal word "seed" (meaning 1); n must be a
// positive integer. Trailing junk in either field is an error, not
// truncated.
func parseCorpus(s string) (seed int64, n int, err error) {
	head, tail, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad -corpus %q (want <seed>:<n>, e.g. seed:100 or 42:50)", s)
	}
	if head == "seed" {
		seed = 1
	} else if seed, err = strconv.ParseInt(head, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad -corpus seed %q (want an integer or the word \"seed\")", head)
	}
	if n, err = strconv.Atoi(tail); err != nil || n <= 0 {
		return 0, 0, fmt.Errorf("bad -corpus size %q (want a positive integer)", tail)
	}
	return seed, n, nil
}

// corpusSummary renders the one-line accounting printed to stderr after the
// corpus scoreboard. The "N simulated" figure is the warm-cache acceptance
// signal: a rerun on a populated cache must say "0 simulated". The live
// progress line during the sweep comes from -progress via trackProgress,
// sharing fitStatus with this line's consumers.
func corpusSummary(spec experiment.CorpusSpec, s grid.Stats) string {
	return fmt.Sprintf("corpus: %d programs x %d arms = %d jobs (%d simulated, %d cache hits)",
		spec.N, 3+len(spec.Policies), s.Done, s.Sims, s.CacheHits)
}

// parsePUs parses PU counts strictly: "4x" or "8.5" is an error, not 4.
func parsePUs(fields []string) ([]int, error) {
	var out []int
	for _, s := range fields {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad PU count %q (want a positive integer)", s)
		}
		out = append(out, n)
	}
	return out, nil
}

// validateWorkloads rejects unknown -workloads names before any simulation
// starts, listing the known names.
func validateWorkloads(names []string) error {
	for _, n := range names {
		if _, err := workloads.ByName(n); err != nil {
			return fmt.Errorf("unknown workload %q (known: %s)",
				n, strings.Join(workloads.Names(), ", "))
		}
	}
	return nil
}

// termWidth returns the terminal column count from $COLUMNS (exported by
// most interactive shells), or 0 when unknown.
func termWidth() int {
	if s := os.Getenv("COLUMNS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

// fitStatus prepares an in-place status line: truncated to width-1 columns
// when the width is known (so it never wraps and \r can return over it) and
// padded with spaces to cover prev printed characters, clearing leftovers
// from a longer previous line.
func fitStatus(s string, prev, width int) string {
	if width > 0 && len(s) > width-1 {
		s = s[:width-1]
	}
	if len(s) < prev {
		s += strings.Repeat(" ", prev-len(s))
	}
	return s
}

// trackProgress prints a live jobs/ETA line to stderr until the returned
// stop function runs, then a final summary (jobs run / cache hits / wall
// time) from the grid metrics.
func trackProgress(eng *grid.Engine) (stop func()) {
	start := time.Now()
	quit := make(chan struct{})
	done := make(chan struct{})
	width := termWidth()
	line := func() string {
		s := eng.Stats()
		elapsed := time.Since(start).Round(100 * time.Millisecond)
		eta := "?"
		if s.Done > 0 && s.Jobs > s.Done {
			rem := time.Duration(float64(elapsed) / float64(s.Done) * float64(s.Jobs-s.Done))
			eta = rem.Round(100 * time.Millisecond).String()
		} else if s.Jobs == s.Done {
			eta = "0s"
		}
		return fmt.Sprintf("grid: %d/%d jobs (%d sims, %d cached, j=%d) elapsed %s eta %s",
			s.Done, s.Jobs, s.Sims, s.CacheHits, eng.Workers(), elapsed, eta)
	}
	go func() {
		defer close(done)
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		prev := 0
		for {
			select {
			case <-quit:
				// Clear the status line, then leave a one-line summary.
				fmt.Fprintf(os.Stderr, "\r%s\r", fitStatus("", prev, width))
				s := eng.Stats()
				fmt.Fprintf(os.Stderr, "grid: %d jobs run (%d simulated, %d cache hits) in %s\n",
					s.Done, s.Sims, s.CacheHits, time.Since(start).Round(10*time.Millisecond))
				return
			case <-tick.C:
				out := fitStatus(line(), prev, width)
				fmt.Fprintf(os.Stderr, "\r%s", out)
				prev = len(strings.TrimRight(out, " "))
			}
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

func printTable1(ctx context.Context, r *experiment.Runner, names []string) {
	rows, err := experiment.Table1(r, names)
	if err != nil {
		fatalRun(ctx, err)
	}
	fmt.Print(experiment.FormatTable1(rows))
}

func printAblations(ctx context.Context, r *experiment.Runner, names []string) {
	if len(names) == 0 {
		// Defaults chosen for sensitivity: perl/vortex expose the target
		// limit, wave5 exercises the ARB and synchronization table, compress
		// and tomcatv show the ring bandwidth.
		names = []string{"compress", "perl", "vortex", "wave5", "tomcatv"}
	}
	targets, err := experiment.AblationTargets(r, names, nil)
	if err != nil {
		fatalRun(ctx, err)
	}
	fmt.Print(experiment.FormatAblation("hardware target limit N", targets))
	fmt.Println()
	syncRows, err := experiment.AblationSync(r, names)
	if err != nil {
		fatalRun(ctx, err)
	}
	fmt.Print(experiment.FormatAblation("memory dependence synchronization", syncRows))
	fmt.Println()
	ring, err := experiment.AblationRing(r, names, nil)
	if err != nil {
		fatalRun(ctx, err)
	}
	fmt.Print(experiment.FormatAblation("register ring bandwidth", ring))
	fmt.Println()
	banks, err := experiment.AblationBanks(r, names, nil)
	if err != nil {
		fatalRun(ctx, err)
	}
	fmt.Print(experiment.FormatAblation("L1 D-cache banks", banks))
	fmt.Println()
	greedy, err := experiment.AblationGreedy(r, names)
	if err != nil {
		fatalRun(ctx, err)
	}
	fmt.Print(experiment.FormatAblation("greedy vs first-fit task growth", greedy))
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// distRun bundles the leader-side pieces of a distributed run.
type distRun struct {
	sched *dist.Scheduler
	srv   *http.Server
	addr  net.Addr
}

// startLeader listens for workers and mounts the scheduler + shared cache
// on HTTP. The leader is up before any job is submitted, so workers can
// register while the first experiment is still partitioning.
func startLeader(ctx context.Context, addr string, lease time.Duration, cache grid.Cache, reg *obs.Registry, tracer *span.Tracer) (*distRun, error) {
	sched := dist.NewScheduler(dist.SchedOptions{Lease: lease, Metrics: reg, Tracer: tracer})
	leader := dist.NewLeader(sched, dist.LeaderOptions{
		Cache:  cache,
		Logger: log.New(os.Stderr, "msreport ", log.LstdFlags),
		Tracer: tracer,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("leader listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: leader.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "msreport: leading distributed run on %s\n", ln.Addr())
	return &distRun{sched: sched, srv: srv, addr: ln.Addr()}, nil
}

// distSummary ends the distributed run and prints one machine-greppable
// summary line per concern: fleet activity, then remote cache traffic. It
// closes the scheduler (workers observe closed on their next pull and
// exit), waits briefly for them to drain, and only then tears down the
// listener so no worker dies on a connection error.
func distSummary(d *distRun, remote *dist.RemoteCache) {
	if d != nil {
		jobs := d.sched.WorkerJobs() // snapshot before Close deregisters
		st := d.sched.Stats()
		d.sched.Close()
		deadline := time.Now().Add(3 * time.Second)
		for d.sched.RemoteWorkers() > 0 && time.Now().Before(deadline) {
			time.Sleep(25 * time.Millisecond)
		}
		d.srv.Close()

		names := make([]string, 0, len(jobs))
		for name := range jobs {
			names = append(names, name)
		}
		sort.Strings(names)
		var parts []string
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s:%d", name, jobs[name]))
		}
		fmt.Fprintf(os.Stderr, "msreport: dist workers=%d jobs{%s} submitted=%d completed=%d steals=%d reassigned=%d\n",
			st.RemoteWorkers, strings.Join(parts, " "), st.Submitted, st.Completed, st.Steals, st.Reassigned)
	}
	if remote != nil {
		rs := remote.Stats()
		fmt.Fprintf(os.Stderr, "msreport: remote cache hits=%d misses=%d puts=%d errors=%d\n",
			rs.Hits, rs.Misses, rs.Puts, rs.Errors)
	}
}

// finishTrace ends the run's root span, prints a one-line trace summary, and
// writes the Chrome trace-event export when -trace-out asked for one. A
// leader's /debug routes stay useful only while the process lives, so the
// export is how a CLI run keeps its trace.
func finishTrace(tr *span.Tracer, root *span.Span, out string) {
	if root == nil {
		return
	}
	id := root.TraceID()
	root.End(nil)
	td := tr.Recorder().Get(id)
	if td == nil {
		fmt.Fprintln(os.Stderr, "msreport: trace was not retained")
		return
	}
	fmt.Fprintf(os.Stderr, "msreport: trace %s spans=%d dropped=%d wall=%s\n",
		td.TraceID, len(td.Spans), td.Dropped, td.Duration().Round(time.Millisecond))
	if out == "" {
		return
	}
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msreport: trace-out:", err)
		return
	}
	defer f.Close()
	if err := span.WriteChrome(f, td); err != nil {
		fmt.Fprintln(os.Stderr, "msreport: trace-out:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "msreport: trace written to %s\n", out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msreport:", err)
	os.Exit(1)
}

// fatalRun reports a failed experiment run. When the run's context ended
// (signal or -timeout), the joined per-job cancellation errors collapse to
// one diagnostic line instead of a page of context.Canceled repeats.
func fatalRun(ctx context.Context, err error) {
	if ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		fmt.Fprintf(os.Stderr, "msreport: run interrupted (%v)\n", ctx.Err())
		os.Exit(1)
	}
	fatal(err)
}
