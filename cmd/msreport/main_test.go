package main

import (
	"strings"
	"testing"

	"multiscalar/internal/experiment"
	"multiscalar/internal/grid"
)

func TestParsePUs(t *testing.T) {
	good, err := parsePUs([]string{"4", "8", "16"})
	if err != nil {
		t.Fatal(err)
	}
	if len(good) != 3 || good[0] != 4 || good[1] != 8 || good[2] != 16 {
		t.Errorf("parsePUs = %v", good)
	}
	if out, err := parsePUs(nil); err != nil || out != nil {
		t.Errorf("empty list: %v, %v", out, err)
	}
	// Sscanf-style trailing junk must be rejected, not truncated.
	for _, bad := range []string{"4x", "8.5", "0x4", "", "-2", "0", "four"} {
		if _, err := parsePUs([]string{bad}); err == nil {
			t.Errorf("parsePUs(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), bad) {
			t.Errorf("parsePUs(%q) error does not quote the token: %v", bad, err)
		}
	}
}

func TestParseCorpus(t *testing.T) {
	cases := []struct {
		in   string
		seed int64
		n    int
	}{
		{"seed:100", 1, 100},
		{"42:50", 42, 50},
		{"-7:1", -7, 1},
	}
	for _, c := range cases {
		seed, n, err := parseCorpus(c.in)
		if err != nil || seed != c.seed || n != c.n {
			t.Errorf("parseCorpus(%q) = %d, %d, %v; want %d, %d", c.in, seed, n, err, c.seed, c.n)
		}
	}
	for _, bad := range []string{"", "100", "seed", "seed:", ":100", "seed:0", "seed:-5", "1:2:3", "s1:10", "seed:10x", "4x:10"} {
		if _, _, err := parseCorpus(bad); err == nil {
			t.Errorf("parseCorpus(%q) accepted", bad)
		}
	}
}

// TestCorpusSummary pins the stderr accounting line — the CI gen-smoke job
// greps it for "0 simulated" on the warm rerun — and checks it composes
// with fitStatus like every other status line msreport emits.
func TestCorpusSummary(t *testing.T) {
	spec := experiment.CorpusSpec{Seed: 1, N: 50, Policies: []string{"greedy", "knapsack"}}
	s := grid.Stats{Jobs: 250, Done: 250, Sims: 0, CacheHits: 250}
	line := corpusSummary(spec, s)
	want := "corpus: 50 programs x 5 arms = 250 jobs (0 simulated, 250 cache hits)"
	if line != want {
		t.Errorf("corpusSummary = %q, want %q", line, want)
	}
	// The summary line passes through fitStatus unharmed on a normal
	// terminal, and truncates instead of wrapping on a narrow one.
	if got := fitStatus(line, 0, 120); got != line {
		t.Errorf("fitStatus(wide) altered the line: %q", got)
	}
	if got := fitStatus(line, 0, 20); got != line[:19] {
		t.Errorf("fitStatus(narrow) = %q, want %q", got, line[:19])
	}
	// Clearing a previous longer progress line pads with spaces.
	if got := fitStatus(line, len(line)+4, 120); got != line+"    " {
		t.Errorf("fitStatus(clear) = %q", got)
	}
}

func TestFitStatus(t *testing.T) {
	// Pads to cover the previous (longer) line.
	if got := fitStatus("short", 10, 0); got != "short     " {
		t.Errorf("fitStatus pad = %q", got)
	}
	// Truncates to width-1 so the line never wraps.
	if got := fitStatus("0123456789", 0, 8); got != "0123456" {
		t.Errorf("fitStatus truncate = %q", got)
	}
	// Truncation and padding compose: a narrow terminal with a long
	// previous line still clears exactly the previous width.
	if got := fitStatus("0123456789", 12, 8); got != "0123456     " {
		t.Errorf("fitStatus truncate+pad = %q", got)
	}
	// No-op when the line already fits and nothing needs clearing.
	if got := fitStatus("ok", 2, 80); got != "ok" {
		t.Errorf("fitStatus noop = %q", got)
	}
}

func TestTermWidth(t *testing.T) {
	t.Setenv("COLUMNS", "120")
	if got := termWidth(); got != 120 {
		t.Errorf("termWidth = %d, want 120", got)
	}
	t.Setenv("COLUMNS", "bogus")
	if got := termWidth(); got != 0 {
		t.Errorf("termWidth(bogus) = %d, want 0", got)
	}
	t.Setenv("COLUMNS", "")
	if got := termWidth(); got != 0 {
		t.Errorf("termWidth(unset) = %d, want 0", got)
	}
}

func TestValidateWorkloads(t *testing.T) {
	if err := validateWorkloads([]string{"compress", "tomcatv"}); err != nil {
		t.Errorf("known workloads rejected: %v", err)
	}
	if err := validateWorkloads(nil); err != nil {
		t.Errorf("empty subset rejected: %v", err)
	}
	err := validateWorkloads([]string{"compress", "comprss"})
	if err == nil {
		t.Fatal("typo accepted")
	}
	for _, want := range []string{`"comprss"`, "known:", "compress", "tomcatv"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}
