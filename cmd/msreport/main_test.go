package main

import (
	"strings"
	"testing"
)

func TestParsePUs(t *testing.T) {
	good, err := parsePUs([]string{"4", "8", "16"})
	if err != nil {
		t.Fatal(err)
	}
	if len(good) != 3 || good[0] != 4 || good[1] != 8 || good[2] != 16 {
		t.Errorf("parsePUs = %v", good)
	}
	if out, err := parsePUs(nil); err != nil || out != nil {
		t.Errorf("empty list: %v, %v", out, err)
	}
	// Sscanf-style trailing junk must be rejected, not truncated.
	for _, bad := range []string{"4x", "8.5", "0x4", "", "-2", "0", "four"} {
		if _, err := parsePUs([]string{bad}); err == nil {
			t.Errorf("parsePUs(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), bad) {
			t.Errorf("parsePUs(%q) error does not quote the token: %v", bad, err)
		}
	}
}

func TestValidateWorkloads(t *testing.T) {
	if err := validateWorkloads([]string{"compress", "tomcatv"}); err != nil {
		t.Errorf("known workloads rejected: %v", err)
	}
	if err := validateWorkloads(nil); err != nil {
		t.Errorf("empty subset rejected: %v", err)
	}
	err := validateWorkloads([]string{"compress", "comprss"})
	if err == nil {
		t.Fatal("typo accepted")
	}
	for _, want := range []string{`"comprss"`, "known:", "compress", "tomcatv"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}
