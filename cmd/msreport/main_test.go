package main

import (
	"strings"
	"testing"
)

func TestParsePUs(t *testing.T) {
	good, err := parsePUs([]string{"4", "8", "16"})
	if err != nil {
		t.Fatal(err)
	}
	if len(good) != 3 || good[0] != 4 || good[1] != 8 || good[2] != 16 {
		t.Errorf("parsePUs = %v", good)
	}
	if out, err := parsePUs(nil); err != nil || out != nil {
		t.Errorf("empty list: %v, %v", out, err)
	}
	// Sscanf-style trailing junk must be rejected, not truncated.
	for _, bad := range []string{"4x", "8.5", "0x4", "", "-2", "0", "four"} {
		if _, err := parsePUs([]string{bad}); err == nil {
			t.Errorf("parsePUs(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), bad) {
			t.Errorf("parsePUs(%q) error does not quote the token: %v", bad, err)
		}
	}
}

func TestFitStatus(t *testing.T) {
	// Pads to cover the previous (longer) line.
	if got := fitStatus("short", 10, 0); got != "short     " {
		t.Errorf("fitStatus pad = %q", got)
	}
	// Truncates to width-1 so the line never wraps.
	if got := fitStatus("0123456789", 0, 8); got != "0123456" {
		t.Errorf("fitStatus truncate = %q", got)
	}
	// Truncation and padding compose: a narrow terminal with a long
	// previous line still clears exactly the previous width.
	if got := fitStatus("0123456789", 12, 8); got != "0123456     " {
		t.Errorf("fitStatus truncate+pad = %q", got)
	}
	// No-op when the line already fits and nothing needs clearing.
	if got := fitStatus("ok", 2, 80); got != "ok" {
		t.Errorf("fitStatus noop = %q", got)
	}
}

func TestTermWidth(t *testing.T) {
	t.Setenv("COLUMNS", "120")
	if got := termWidth(); got != 120 {
		t.Errorf("termWidth = %d, want 120", got)
	}
	t.Setenv("COLUMNS", "bogus")
	if got := termWidth(); got != 0 {
		t.Errorf("termWidth(bogus) = %d, want 0", got)
	}
	t.Setenv("COLUMNS", "")
	if got := termWidth(); got != 0 {
		t.Errorf("termWidth(unset) = %d, want 0", got)
	}
}

func TestValidateWorkloads(t *testing.T) {
	if err := validateWorkloads([]string{"compress", "tomcatv"}); err != nil {
		t.Errorf("known workloads rejected: %v", err)
	}
	if err := validateWorkloads(nil); err != nil {
		t.Errorf("empty subset rejected: %v", err)
	}
	err := validateWorkloads([]string{"compress", "comprss"})
	if err == nil {
		t.Fatal("typo accepted")
	}
	for _, want := range []string{`"comprss"`, "known:", "compress", "tomcatv"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}
