// Command mssrv serves the Multiscalar pipeline over HTTP: task selection
// (POST /v1/partition), simulation (POST /v1/simulate), and the paper's
// experiment grids with SSE progress (POST /v1/experiment), plus /healthz
// and a Prometheus /metrics scrape. All requests share one grid engine, so
// identical concurrent requests coalesce into a single simulation and (with
// -cache-dir) warm results are served from disk without touching a worker.
//
// Usage:
//
//	mssrv -addr :8080 -j 8 -cache-dir ~/.cache/msgrid
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/simulate \
//	  -d '{"workload":"compress","select":{"heuristic":"cf"},"machine":{"pus":4}}'
//
// On SIGINT/SIGTERM the server drains gracefully: the listener closes,
// in-flight requests finish (bounded by -drain-timeout), the final metrics
// snapshot is flushed, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"multiscalar/internal/grid"
	"multiscalar/internal/obs"
	"multiscalar/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers      = flag.Int("j", 0, "max concurrent partition/simulation jobs (default GOMAXPROCS)")
		cacheDir     = flag.String("cache-dir", "", "content-addressed result cache directory shared with msreport/mssim (default: no cache)")
		maxInflight  = flag.Int("max-inflight", 0, "admitted /v1 requests before shedding with 429 (default 4x workers)")
		reqTimeout   = flag.Duration("request-timeout", 2*time.Minute, "per-request deadline propagated into the engine")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
		metricsOut   = flag.String("metrics-out", "", "write the final metrics snapshot (Prometheus text format) to this file on exit (default: stderr)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "mssrv ", log.LstdFlags)
	reg := obs.NewRegistry()
	eng := grid.New(grid.Options{Workers: *workers, CacheDir: *cacheDir, Metrics: reg})
	srv := serve.New(serve.Config{
		Engine:         eng,
		Metrics:        reg,
		MaxInFlight:    *maxInflight,
		RequestTimeout: *reqTimeout,
		Logger:         logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	logger.Printf("level=info msg=listening addr=%s workers=%d cache=%q", ln.Addr(), eng.Workers(), *cacheDir)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting for drain

	logger.Printf("level=info msg=draining timeout=%s", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("level=warn msg=drain_incomplete err=%v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}

	// Flush the final metrics snapshot so a scrape-less deployment still
	// keeps the run's counters.
	out := os.Stderr
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := reg.WritePrometheus(out); err != nil {
		fatal(err)
	}
	s := eng.Stats()
	logger.Printf("level=info msg=exit jobs=%d sims=%d cache_hits=%d deduped=%d", s.Done, s.Sims, s.CacheHits, s.Deduped)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mssrv:", err)
	os.Exit(1)
}
