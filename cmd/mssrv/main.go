// Command mssrv serves the Multiscalar pipeline over HTTP: task selection
// (POST /v1/partition), simulation (POST /v1/simulate), property-based
// workload generation (POST /v1/generate), the paper's experiment grids and
// the generated-corpus sweep with SSE progress (POST /v1/experiment), a
// shared result cache (GET/PUT /v1/cache/{key}), plus /healthz and a
// Prometheus /metrics scrape. All requests share one grid engine, so identical concurrent
// requests coalesce into a single simulation and warm results are served
// from the cache tiers without touching a worker.
//
// Long sweeps can run asynchronously through the durable job surface
// (POST /v1/jobs, GET /v1/jobs/{id}, SSE at /v1/jobs/{id}/events): jobs are
// journaled under <cache-dir>/jobs and resume after a restart, tenants
// (X-Api-Key) share runner time by weighted fair queueing under optional
// token-bucket submission limits, and -peers/-self spread job ownership over
// a consistent-hash ring of replicas via 307 redirects.
//
// The cache is tiered: -lru puts a bounded in-memory tier in front, -cache-dir
// adds the content-addressed disk store, and -remote-cache chains another
// mssrv (or a msreport leader) behind both — remote hits are promoted to the
// local tiers, local results are published back, and every remote failure
// fails open to local compute.
//
// With -worker the process joins a distributed run instead of serving: it
// registers with the msreport leader at -leader, pulls simulation jobs from
// the shard scheduler, executes them on the local engine, and publishes
// results through the cache tiers (the remote tier defaults to the leader).
//
// Usage:
//
//	mssrv -addr :8080 -j 8 -cache-dir ~/.cache/msgrid -lru 1024
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/simulate \
//	  -d '{"workload":"compress","select":{"heuristic":"cf"},"machine":{"pus":4}}'
//
//	# join a distributed msreport run as a worker
//	mssrv -worker -leader http://127.0.0.1:9090 -j 4
//
// On SIGINT/SIGTERM the server drains gracefully: the listener closes,
// in-flight requests finish (bounded by -drain-timeout), the final metrics
// snapshot is flushed, and the process exits 0. A worker exits 0 when the
// leader ends the run or on a clean signal.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"multiscalar/internal/dist"
	"multiscalar/internal/grid"
	"multiscalar/internal/jobs"
	"multiscalar/internal/obs"
	"multiscalar/internal/obs/span"
	_ "multiscalar/internal/policy" // register the policy zoo for select.policy
	"multiscalar/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers      = flag.Int("j", 0, "max concurrent partition/simulation jobs (default GOMAXPROCS)")
		cacheDir     = flag.String("cache-dir", "", "content-addressed result cache directory shared with msreport/mssim (default: no disk tier)")
		lruSize      = flag.Int("lru", 0, "in-memory cache tier entry budget (0 = no memory tier; workers default to 1024)")
		remoteCache  = flag.String("remote-cache", "", "base URL of a peer cache (another mssrv or a msreport leader) chained behind the local tiers")
		workerMode   = flag.Bool("worker", false, "run as a distributed worker instead of serving HTTP (requires -leader)")
		leaderURL    = flag.String("leader", "", "msreport leader base URL for -worker mode")
		maxInflight  = flag.Int("max-inflight", 0, "admitted /v1 requests before shedding with 429 (default 4x workers)")
		reqTimeout   = flag.Duration("request-timeout", 2*time.Minute, "per-request deadline propagated into the engine")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
		metricsOut   = flag.String("metrics-out", "", "write the final metrics snapshot (Prometheus text format) to this file on exit (default: stderr)")
		logFormat    = flag.String("log-format", "text", "structured log encoding: text or json")
		traceRing    = flag.Int("trace-ring", 256, "flight-recorder capacity in completed traces; 0 disables tracing and the /debug surface")
		jobsRunners  = flag.Int("jobs-runners", 2, "concurrent async job executions (0 disables the /v1/jobs surface)")
		peers        = flag.String("peers", "", "comma-separated replica base URLs forming the job-routing ring (must include -self; every replica needs the same list)")
		selfURL      = flag.String("self", "", "this replica's base URL as it appears in -peers (required with -peers)")
		tenantRPS    = flag.Float64("tenant-rps", 0, "per-tenant job submissions per second (0 = unlimited)")
		tenantBurst  = flag.Float64("tenant-burst", 0, "per-tenant submission burst (default: -tenant-rps, min 1)")
		tenantWeight = flag.String("tenant-weights", "", "per-tenant fair-share weights as name=weight pairs, comma-separated (unlisted tenants weigh 1)")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fatal(fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat))
	}
	logger := slog.New(handler)
	// dist takes the stdlib logger; the bridge keeps its lines on the same
	// handler (and therefore the same encoding) as everything else.
	bridge := slog.NewLogLogger(handler, slog.LevelInfo)
	reg := obs.NewRegistry()

	var tracer *span.Tracer
	if *traceRing > 0 {
		tracer = span.New(span.Options{Process: "mssrv", Ring: *traceRing, Metrics: reg})
	}

	remote := *remoteCache
	lru := *lruSize
	if *workerMode {
		if *leaderURL == "" {
			fatal(errors.New("-worker requires -leader"))
		}
		// A worker's natural remote tier is its leader: results publish to
		// the fleet and peers' results are reused. A small memory tier keeps
		// repeated partition-sharing jobs off the wire.
		if remote == "" {
			remote = *leaderURL
		}
		if lru == 0 {
			lru = 1024
		}
	}
	cache, remoteTier := dist.BuildCache(dist.CacheConfig{
		LRUSize:       lru,
		Dir:           *cacheDir,
		Remote:        remote,
		RemoteOptions: dist.RemoteOptions{Metrics: reg, Logger: bridge},
	})
	opts := grid.Options{Workers: *workers, Metrics: reg}
	if cache != nil {
		opts.Cache = cache
	}
	eng := grid.New(opts)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *workerMode {
		runWorker(ctx, eng, reg, remoteTier, *leaderURL, *metricsOut, logger, bridge, tracer)
		return
	}

	cfg := serve.Config{
		Engine:         eng,
		Metrics:        reg,
		MaxInFlight:    *maxInflight,
		RequestTimeout: *reqTimeout,
		Logger:         logger,
		Tracer:         tracer,
	}

	var mgr *jobs.Manager
	if *jobsRunners > 0 {
		weights, err := parseWeights(*tenantWeight)
		if err != nil {
			fatal(err)
		}
		jobsDir := ""
		if *cacheDir != "" {
			// The journal rides next to the result cache so one -cache-dir
			// carries both durability stories across a restart.
			jobsDir = filepath.Join(*cacheDir, "jobs")
		}
		mgr, err = jobs.NewManager(jobs.Options{
			Runners:   *jobsRunners,
			Dir:       jobsDir,
			Executors: serve.Executors(eng, time.Second),
			Cost:      serve.JobCost,
			Weights:   weights,
			Metrics:   reg,
			Tracer:    tracer,
		})
		if err != nil {
			fatal(err)
		}
		mgr.Start(ctx)
		cfg.Jobs = mgr
		if *tenantRPS > 0 {
			cfg.JobLimiter = jobs.NewLimiter(*tenantRPS, *tenantBurst)
		}
		if *peers != "" {
			if *selfURL == "" {
				fatal(errors.New("-peers requires -self"))
			}
			list, err := dist.NormalizePeers(*peers)
			if err != nil {
				fatal(err)
			}
			self, err := dist.NormalizePeers(*selfURL)
			if err != nil {
				fatal(err)
			}
			found := false
			for _, p := range list {
				if p == self[0] {
					found = true
				}
			}
			if !found {
				fatal(fmt.Errorf("-self %q is not in -peers %v", self[0], list))
			}
			cfg.Ring = jobs.NewRing(self[0], list)
		}
	}
	if cache != nil {
		cfg.Cache = cache
		cfg.Backend = func(ctx context.Context) serve.BackendStatus {
			return serve.BackendStatus{
				CacheTiers:  tierStatus(cache.Health(ctx)),
				DistWorkers: -1, // an mssrv instance leads no fleet
			}
		}
	}
	srv := serve.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	logger.Info("listening", "addr", ln.Addr().String(), "workers", eng.Workers(),
		"cache", *cacheDir, "lru", lru, "remote", remote, "tracing", tracer != nil,
		"jobs", mgr != nil, "ring", cfg.Ring != nil)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting for drain

	logger.Info("draining", "timeout", drainTimeout.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("drain_incomplete", "err", err.Error())
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if mgr != nil {
		// After the HTTP drain: no new submissions can arrive, so Close only
		// waits for in-flight executions to unwind and journals the requeues.
		mgr.Close()
	}

	flushMetrics(reg, *metricsOut)
	s := eng.Stats()
	logger.Info("exit", "jobs", s.Done, "sims", s.Sims, "cache_hits", s.CacheHits, "deduped", s.Deduped)
}

// runWorker joins a distributed msreport run and blocks until the leader
// ends it, a signal arrives, or the leader stays unreachable.
func runWorker(ctx context.Context, eng *grid.Engine, reg *obs.Registry, remoteTier *dist.RemoteCache,
	leader, metricsOut string, logger *slog.Logger, bridge *log.Logger, tracer *span.Tracer) {
	w, err := dist.NewWorker(dist.WorkerOptions{
		Leader:  leader,
		Engine:  eng,
		Metrics: reg,
		Logger:  bridge,
		Tracer:  tracer,
	})
	if err != nil {
		fatal(err)
	}
	runErr := w.Run(ctx)
	flushMetrics(reg, metricsOut)
	st := w.Stats()
	attrs := []any{"worker", w.Name(), "jobs", st.Jobs, "failures", st.Failures}
	if remoteTier != nil {
		rs := remoteTier.Stats()
		attrs = append(attrs, "remote_hits", rs.Hits, "remote_misses", rs.Misses,
			"remote_puts", rs.Puts, "remote_errors", rs.Errors)
	}
	logger.Info("worker_exit", attrs...)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		fatal(runErr)
	}
}

// flushMetrics writes the final snapshot so a scrape-less deployment still
// keeps the run's counters.
func flushMetrics(reg *obs.Registry, path string) {
	out := os.Stderr
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := reg.WritePrometheus(out); err != nil {
		fatal(err)
	}
}

// parseWeights decodes "-tenant-weights alice=4,bob=2" into the fair-queue
// weight map. Weights must be positive; zero would silently starve a tenant.
func parseWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenant-weights: %q is not name=weight", pair)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-tenant-weights: %q needs a positive weight", pair)
		}
		out[name] = w
	}
	return out, nil
}

// tierStatus converts dist tier health into the serve wire shape.
func tierStatus(hs []dist.TierHealth) []serve.CacheTierStatus {
	out := make([]serve.CacheTierStatus, len(hs))
	for i, h := range hs {
		out[i] = serve.CacheTierStatus{Tier: h.Tier, OK: h.OK, Err: h.Err}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mssrv:", err)
	os.Exit(1)
}
