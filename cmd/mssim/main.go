// Command mssim partitions one benchmark and simulates it on one Multiscalar
// machine point, printing IPC, prediction accuracies, the §2.3 time
// breakdown, and memory-speculation statistics.
//
// Usage:
//
//	mssim -workload tomcatv -heuristic cf -pus 8
//	mssim -workload compress -heuristic dd -tasksize -pus 4 -inorder
//	mssim -workload compress -pus 4 -trace-out trace.json -metrics
//
// -trace-out writes a Chrome trace-event / Perfetto JSON file (open it at
// ui.perfetto.dev): one track per PU with a slice per dynamic task and
// instant markers for squashes, restarts, ARB overflows, mispredictions,
// sync waits, and register ring traffic. -metrics prints the simulator and
// grid metrics snapshot after the run in Prometheus text format (the same
// exposition mssrv's /metrics serves). Observed runs always simulate — the
// result cache is not consulted (a cache hit would have no events to trace).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"multiscalar/internal/core"
	"multiscalar/internal/grid"
	"multiscalar/internal/obs"
	"multiscalar/internal/obs/span"
	"multiscalar/internal/sim"
	"multiscalar/internal/workloads"
)

func main() {
	var (
		workload   = flag.String("workload", "compress", "benchmark name")
		heuristic  = flag.String("heuristic", "cf", "task selection heuristic: bb, cf, or dd")
		taskSize   = flag.Bool("tasksize", false, "apply the task-size heuristic")
		pus        = flag.Int("pus", 4, "number of processing units")
		inorder    = flag.Bool("inorder", false, "in-order PUs instead of out-of-order")
		noSync     = flag.Bool("nosync", false, "disable the memory dependence synchronization table")
		timeline   = flag.Int("timeline", 0, "print a Gantt chart of the first N task instances")
		timeout    = flag.Duration("timeout", 0, "overall deadline for the run (0 = none)")
		cacheDir   = flag.String("cache-dir", "", "content-addressed result cache directory shared with msreport (default: no cache)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event / Perfetto JSON trace to this file (forces a live simulation)")
		spanOut    = flag.String("span-out", "", "write the run's span trace (grid/cache hops, not the PU timeline) as Chrome trace-event JSON")
		metrics    = flag.Bool("metrics", false, "print the metrics snapshot after the run (forces a live simulation)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	w, err := workloads.ByName(*workload)
	if err != nil {
		fatal(err)
	}
	var h core.Heuristic
	switch *heuristic {
	case "bb":
		h = core.BasicBlock
	case "cf":
		h = core.ControlFlow
	case "dd":
		h = core.DataDependence
	default:
		fatal(fmt.Errorf("unknown heuristic %q", *heuristic))
	}
	cfg := sim.DefaultConfig(*pus)
	cfg.InOrder = *inorder
	cfg.SyncTable = !*noSync
	cfg.RecordTimeline = *timeline > 0
	sel := core.Options{Heuristic: h, TaskSize: *taskSize}

	// SIGINT/SIGTERM (and -timeout, if set) cancel the run's context: a job
	// still queued in the engine returns immediately and the command exits
	// with a clean diagnostic instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	observed := *traceOut != "" || *metrics
	var reg *obs.Registry
	if observed {
		reg = obs.NewRegistry()
	}
	eng := grid.New(grid.Options{Workers: 1, CacheDir: *cacheDir, Metrics: reg})

	var tracer *span.Tracer
	var rootSp *span.Span
	if *spanOut != "" {
		tracer = span.New(span.Options{Process: "mssim", Metrics: reg})
		ctx, rootSp = tracer.StartRoot(ctx, "mssim.run")
	}

	var res *sim.Result
	var col *obs.Collector
	if observed {
		// Tracing needs the event stream of a live run, so skip the result
		// cache and drive the simulator directly (the partition still goes
		// through the engine and its memo).
		part, err := eng.PartitionCtx(ctx, w.Name, sel)
		if err != nil {
			fatalRun(ctx, err)
		}
		ob := sim.Observer{Metrics: reg}
		if *traceOut != "" {
			col = &obs.Collector{}
			ob.Tracer = col
		}
		res, err = sim.RunObserved(part, cfg, ob)
		if err != nil {
			fatal(err)
		}
	} else {
		res, err = eng.RunCtx(ctx, grid.Job{Workload: w.Name, Select: sel, Config: cfg})
		if err != nil {
			fatalRun(ctx, err)
		}
	}

	style := "out-of-order"
	if *inorder {
		style = "in-order"
	}
	fmt.Printf("%s / %s tasks / %d %s PUs\n\n", w.Name, h, *pus, style)
	fmt.Printf("cycles            %12d\n", res.Cycles)
	fmt.Printf("instructions      %12d\n", res.Instrs)
	fmt.Printf("IPC               %12.3f\n", res.IPC)
	fmt.Printf("task instances    %12d (avg %.1f instrs, %.1f control transfers)\n",
		res.TaskInstances, res.AvgTaskSize, res.AvgCTInstrs)
	fmt.Printf("task prediction   %11.1f%% (window span %.0f instrs)\n",
		100*res.TaskPredAccuracy, res.WindowSpan)
	fmt.Printf("branch prediction %11.1f%%\n", 100*res.BrPredAccuracy)
	fmt.Printf("ctrl mispredicts  %12d\n", res.CtrlMispredicts)
	fmt.Printf("mem violations    %12d (%d restarts, %d sync waits, %d ARB overflows)\n",
		res.Violations, res.Restarts, res.SyncWaits, res.ARBOverflows)
	fmt.Printf("caches            L1I %.2f%%  L1D %.2f%%  L2 %.2f%% miss\n",
		100*res.L1IMissRate, 100*res.L1DMissRate, 100*res.L2MissRate)
	b := res.Breakdown
	fmt.Printf("\ntime breakdown (PU-cycles, per §2.3):\n")
	fmt.Printf("  task start overhead  %12d\n", b.StartOverhead)
	fmt.Printf("  inter-task data wait %12d\n", b.InterTaskWait)
	fmt.Printf("  intra-task data wait %12d\n", b.IntraTaskWait)
	fmt.Printf("  load imbalance       %12d\n", b.LoadImbalance)
	fmt.Printf("  task end overhead    %12d\n", b.EndOverhead)
	fmt.Printf("  control penalty      %12d\n", b.CtrlPenalty)
	fmt.Printf("  memory penalty       %12d\n", b.MemPenalty)
	if *timeline > 0 {
		fmt.Printf("\nPU occupancy %.1f%%; first %d task instances:\n",
			100*res.Timeline.Utilization(*pus), *timeline)
		fmt.Print(sim.FormatTimeline(res.Timeline, *timeline))
	}

	if rootSp != nil {
		id := rootSp.TraceID()
		rootSp.End(nil)
		td := tracer.Recorder().Get(id)
		if td == nil {
			fatal(errors.New("span trace was not retained"))
		}
		f, err := os.Create(*spanOut)
		if err != nil {
			fatal(err)
		}
		if err := span.WriteChrome(f, td); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nspans: %d -> %s (open in ui.perfetto.dev)\n", len(td.Spans), *spanOut)
	}
	if col != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteChromeTrace(f, col.Events, *pus); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntrace: %d events -> %s (open in ui.perfetto.dev)\n",
			len(col.Events), *traceOut)
	}
	if *metrics {
		// Prometheus text exposition — the same format mssrv's /metrics
		// serves, so one set of parsing/alerting rules covers both.
		fmt.Printf("\nmetrics:\n")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mssim:", err)
	os.Exit(1)
}

// fatalRun collapses a context-ended run (signal or -timeout) to a single
// "interrupted" diagnostic; any other error goes through fatal unchanged.
func fatalRun(ctx context.Context, err error) {
	if ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		fmt.Fprintf(os.Stderr, "mssim: run interrupted (%v)\n", ctx.Err())
		os.Exit(1)
	}
	fatal(err)
}
