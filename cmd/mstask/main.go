// Command mstask runs the paper's task selection over a benchmark (or an
// assembly file, or a generated workload) and prints the resulting
// partition: every task with its member blocks, targets, create mask, and
// static size.
//
// Usage:
//
//	mstask -workload compress -heuristic dd -tasksize
//	mstask -asm prog.s -heuristic cf
//	mstask -gen -seed 42 -policy knapsack -verify
//	mstask -workload gen:v1:s42:f3:b24:br40:ld2:cd20:rd50:mw64
//
// -gen partitions a generated program (default parameters at -seed); for
// full parameter control pass a canonical gen: name to -workload. -policy
// replaces the heuristic's growth decisions with a registered selection
// policy (greedy, roundrobin, knapsack).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"multiscalar/internal/core"
	"multiscalar/internal/gen"
	"multiscalar/internal/ir"
	_ "multiscalar/internal/policy" // register the policy zoo
	"multiscalar/internal/verify"
	"multiscalar/internal/workloads"

	"multiscalar/internal/asm"
)

func main() {
	var (
		workload  = flag.String("workload", "", "benchmark name or canonical gen: name (see -list)")
		asmFile   = flag.String("asm", "", "assembly file to partition instead of a workload")
		genFlag   = flag.Bool("gen", false, "partition a generated program (default gen.Params at -seed)")
		seed      = flag.Int64("seed", 1, "generator seed for -gen")
		heuristic = flag.String("heuristic", "cf", "task selection heuristic: bb, cf, or dd")
		policyN   = flag.String("policy", "", "selection policy replacing heuristic growth (see -list)")
		taskSize  = flag.Bool("tasksize", false, "apply the task-size heuristic (unrolling, call inclusion)")
		targets   = flag.Int("targets", 4, "hardware target limit N")
		list      = flag.Bool("list", false, "list available workloads and policies, then exit")
		verifyP   = flag.Bool("verify", false, "run the static invariant checker on the partition (exit 1 on error findings)")
	)
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			suite := "int"
			if w.FP {
				suite = "fp"
			}
			fmt.Printf("%-10s (%s)\n", w.Name, suite)
		}
		fmt.Printf("policies: %v\n", core.PolicyNames())
		return
	}
	prog, err := loadProgram(*workload, *asmFile, *genFlag, *seed)
	if err != nil {
		fatal(err)
	}
	h, err := parseHeuristic(*heuristic)
	if err != nil {
		fatal(err)
	}
	part, err := core.Select(prog, core.Options{Heuristic: h, Policy: *policyN, TaskSize: *taskSize, MaxTargets: *targets})
	if err != nil {
		fatal(err)
	}
	printPartition(part)
	if *verifyP {
		fs := verify.Partition(part)
		fmt.Println()
		if len(fs) > 0 {
			fmt.Print(fs)
		}
		fmt.Printf("verify: %d errors, %d warnings, %d findings\n",
			fs.Errors(), fs.Warnings(), len(fs))
		if fs.Errors() > 0 {
			os.Exit(1)
		}
	}
}

func loadProgram(workload, asmFile string, genFlag bool, seed int64) (*ir.Program, error) {
	sources := 0
	for _, set := range []bool{workload != "", asmFile != "", genFlag} {
		if set {
			sources++
		}
	}
	switch {
	case sources > 1:
		return nil, fmt.Errorf("use exactly one of -workload, -asm, or -gen")
	case genFlag:
		p := gen.Default()
		p.Seed = seed
		return gen.Generate(p), nil
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, err
		}
		return asm.Parse(asmFile, string(src))
	case workload != "":
		w, err := workloads.ByName(workload)
		if err != nil {
			return nil, err
		}
		return w.Build(), nil
	}
	return nil, fmt.Errorf("one of -workload, -asm, or -gen is required (try -list)")
}

func parseHeuristic(s string) (core.Heuristic, error) {
	switch s {
	case "bb":
		return core.BasicBlock, nil
	case "cf":
		return core.ControlFlow, nil
	case "dd":
		return core.DataDependence, nil
	}
	return 0, fmt.Errorf("unknown heuristic %q (want bb, cf, or dd)", s)
}

func printPartition(part *core.Partition) {
	strategy := fmt.Sprintf("%s heuristic", part.Heuristic)
	if part.Opts.Policy != "" {
		strategy = fmt.Sprintf("%s policy", part.Opts.Policy)
	}
	fmt.Printf("program %s: %d tasks under the %s\n\n",
		part.Prog.Name, len(part.Tasks), strategy)
	fmt.Print(core.ComputeStats(part))
	fmt.Println()
	for _, t := range part.Tasks {
		fn := part.Prog.Fn(t.Fn)
		blocks := make([]int, 0, len(t.Blocks))
		for b := range t.Blocks {
			blocks = append(blocks, int(b))
		}
		sort.Ints(blocks)
		fmt.Printf("task %d: %s entry b%d  (%d blocks, %d static instrs)\n",
			t.ID, fn.Name, t.Entry, len(t.Blocks), t.StaticInstrs)
		fmt.Printf("  blocks:  %v\n", blocks)
		fmt.Printf("  targets: %v\n", t.Targets)
		fmt.Printf("  creates: %v\n", t.CreateMask.Regs())
		if len(t.IncludeCall) > 0 {
			var calls []int
			for b := range t.IncludeCall {
				calls = append(calls, int(b))
			}
			sort.Ints(calls)
			fmt.Printf("  included calls at blocks %v\n", calls)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mstask:", err)
	os.Exit(1)
}
