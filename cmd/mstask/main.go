// Command mstask runs the paper's task selection over a benchmark (or an
// assembly file) and prints the resulting partition: every task with its
// member blocks, targets, create mask, and static size.
//
// Usage:
//
//	mstask -workload compress -heuristic dd -tasksize
//	mstask -asm prog.s -heuristic cf
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"multiscalar/internal/core"
	"multiscalar/internal/ir"
	"multiscalar/internal/verify"
	"multiscalar/internal/workloads"

	"multiscalar/internal/asm"
)

func main() {
	var (
		workload  = flag.String("workload", "", "benchmark name (see -list)")
		asmFile   = flag.String("asm", "", "assembly file to partition instead of a workload")
		heuristic = flag.String("heuristic", "cf", "task selection heuristic: bb, cf, or dd")
		taskSize  = flag.Bool("tasksize", false, "apply the task-size heuristic (unrolling, call inclusion)")
		targets   = flag.Int("targets", 4, "hardware target limit N")
		list      = flag.Bool("list", false, "list available workloads and exit")
		verifyP   = flag.Bool("verify", false, "run the static invariant checker on the partition (exit 1 on error findings)")
	)
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			suite := "int"
			if w.FP {
				suite = "fp"
			}
			fmt.Printf("%-10s (%s)\n", w.Name, suite)
		}
		return
	}
	prog, err := loadProgram(*workload, *asmFile)
	if err != nil {
		fatal(err)
	}
	h, err := parseHeuristic(*heuristic)
	if err != nil {
		fatal(err)
	}
	part, err := core.Select(prog, core.Options{Heuristic: h, TaskSize: *taskSize, MaxTargets: *targets})
	if err != nil {
		fatal(err)
	}
	printPartition(part)
	if *verifyP {
		fs := verify.Partition(part)
		fmt.Println()
		if len(fs) > 0 {
			fmt.Print(fs)
		}
		fmt.Printf("verify: %d errors, %d warnings, %d findings\n",
			fs.Errors(), fs.Warnings(), len(fs))
		if fs.Errors() > 0 {
			os.Exit(1)
		}
	}
}

func loadProgram(workload, asmFile string) (*ir.Program, error) {
	switch {
	case workload != "" && asmFile != "":
		return nil, fmt.Errorf("use either -workload or -asm, not both")
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, err
		}
		return asm.Parse(asmFile, string(src))
	case workload != "":
		w, err := workloads.ByName(workload)
		if err != nil {
			return nil, err
		}
		return w.Build(), nil
	}
	return nil, fmt.Errorf("one of -workload or -asm is required (try -list)")
}

func parseHeuristic(s string) (core.Heuristic, error) {
	switch s {
	case "bb":
		return core.BasicBlock, nil
	case "cf":
		return core.ControlFlow, nil
	case "dd":
		return core.DataDependence, nil
	}
	return 0, fmt.Errorf("unknown heuristic %q (want bb, cf, or dd)", s)
}

func printPartition(part *core.Partition) {
	fmt.Printf("program %s: %d tasks under the %s heuristic\n\n",
		part.Prog.Name, len(part.Tasks), part.Heuristic)
	fmt.Print(core.ComputeStats(part))
	fmt.Println()
	for _, t := range part.Tasks {
		fn := part.Prog.Fn(t.Fn)
		blocks := make([]int, 0, len(t.Blocks))
		for b := range t.Blocks {
			blocks = append(blocks, int(b))
		}
		sort.Ints(blocks)
		fmt.Printf("task %d: %s entry b%d  (%d blocks, %d static instrs)\n",
			t.ID, fn.Name, t.Entry, len(t.Blocks), t.StaticInstrs)
		fmt.Printf("  blocks:  %v\n", blocks)
		fmt.Printf("  targets: %v\n", t.Targets)
		fmt.Printf("  creates: %v\n", t.CreateMask.Regs())
		if len(t.IncludeCall) > 0 {
			var calls []int
			for b := range t.IncludeCall {
				calls = append(calls, int(b))
			}
			sort.Ints(calls)
			fmt.Printf("  included calls at blocks %v\n", calls)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mstask:", err)
	os.Exit(1)
}
