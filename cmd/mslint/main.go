// Command mslint runs the static Multiscalar invariant checker: it selects
// tasks for a benchmark (or an assembly file) and verifies both the program
// (IR000–IR005) and the resulting partition (PT001–PT010) against the task
// invariants of the paper. See DESIGN.md §7 for the rule catalog.
//
// Usage:
//
//	mslint -workload compress -heuristic dd -tasksize
//	mslint -asm prog.s -heuristic cf
//	mslint -all
//	mslint -all -json > findings.json
//	mslint -corpus 50 -seed 1
//
// -corpus N lints a generated corpus instead: N property-based programs
// (gen.CorpusParams from -seed) are verified directly (IR000–IR005) and
// then partitioned by every heuristic and every registered policy, with
// each partition checked against PT001–PT010. This is the CI gen-smoke
// gate: any invalid generated program or contract-violating policy fails
// the run.
//
// Exit status is 0 when no error-severity findings exist, 1 when at least
// one does, and 2 on usage errors. -min controls which findings print;
// the exit status always reflects errors regardless of the display filter.
//
// -json emits the findings at or above -min as a JSON array on stdout in
// the shared lint format (internal/lintout) that msvet -json also produces,
// so one consumer parses both tools' output. Locations are symbolic
// (workload/variant/task/block) since mslint findings live in selected
// partitions, not source lines.
package main

import (
	"flag"
	"fmt"
	"os"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/gen"
	"multiscalar/internal/ir"
	"multiscalar/internal/lintout"
	_ "multiscalar/internal/policy" // register the policy zoo for -corpus
	"multiscalar/internal/verify"
	"multiscalar/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "", "benchmark name (see -list)")
		asmFile   = flag.String("asm", "", "assembly file to lint instead of a workload")
		heuristic = flag.String("heuristic", "cf", "task selection heuristic: bb, cf, or dd")
		taskSize  = flag.Bool("tasksize", false, "apply the task-size heuristic (unrolling, call inclusion)")
		targets   = flag.Int("targets", 4, "hardware target limit N")
		all       = flag.Bool("all", false, "lint every workload under every heuristic, with and without -tasksize")
		corpus    = flag.Int("corpus", 0, "lint N generated programs under every heuristic and policy (0 = off)")
		seed      = flag.Int64("seed", 1, "generator corpus seed for -corpus")
		list      = flag.Bool("list", false, "list available workloads and exit")
		min       = flag.String("min", "warn", "lowest severity to print: info, warn, or error")
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array on stdout (shared lint format)")
	)
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Println(w.Name)
		}
		return
	}
	minSev, err := parseSeverity(*min)
	if err != nil {
		usage(err)
	}
	out := &output{json: *jsonOut}
	if *all {
		if *workload != "" || *asmFile != "" || *corpus > 0 {
			usage(fmt.Errorf("-all cannot be combined with -workload, -asm, or -corpus"))
		}
		code := lintAll(out, minSev, *targets)
		out.flush(code)
	}
	if *corpus > 0 {
		if *workload != "" || *asmFile != "" {
			usage(fmt.Errorf("-corpus cannot be combined with -workload or -asm"))
		}
		code := lintCorpus(out, minSev, *targets, *seed, *corpus)
		out.flush(code)
	}
	prog, err := loadProgram(*workload, *asmFile)
	if err != nil {
		usage(err)
	}
	h, err := parseHeuristic(*heuristic)
	if err != nil {
		usage(err)
	}
	name := *workload
	if name == "" {
		name = *asmFile
	}
	errs, fatalErr := lintOne(out, name, prog, core.Options{Heuristic: h, TaskSize: *taskSize, MaxTargets: *targets}, minSev)
	if fatalErr != nil {
		fmt.Fprintln(os.Stderr, "mslint:", fatalErr)
		os.Exit(1)
	}
	code := 0
	if errs > 0 {
		code = 1
	}
	out.flush(code)
}

// output accumulates findings for -json mode (flushed as one array on exit)
// and passes human-readable lines straight through otherwise.
type output struct {
	json     bool
	findings []lintout.Finding
}

// collect records the shown findings of one configuration under a symbolic
// location prefix like "compress[dd +tasksize]".
func (o *output) collect(where string, fs verify.Findings) {
	for _, f := range fs {
		loc := where
		if f.Task >= 0 {
			loc += fmt.Sprintf(" task %d", f.Task)
		}
		if f.FnName != "" {
			loc += " fn " + f.FnName
		}
		if f.Blk != ir.NoBlock {
			loc += fmt.Sprintf(" b%d", f.Blk)
		}
		o.findings = append(o.findings, lintout.Finding{
			Tool:     "mslint",
			Rule:     string(f.Rule),
			Severity: f.Sev.String(),
			Location: loc,
			Message:  f.Msg,
		})
	}
}

// flush writes the JSON document (in -json mode) and exits with code.
func (o *output) flush(code int) {
	if o.json {
		if err := lintout.Write(os.Stdout, o.findings); err != nil {
			fmt.Fprintln(os.Stderr, "mslint:", err)
			os.Exit(2)
		}
	}
	os.Exit(code)
}

// lintOne verifies one program/options combination, printing findings at or
// above minSev and a one-line summary (or collecting them, in -json mode).
// It returns the error-finding count.
func lintOne(out *output, name string, prog *ir.Program, opts core.Options, minSev verify.Severity) (int, error) {
	part, err := core.Select(prog, opts)
	if err != nil {
		return 0, fmt.Errorf("%s: select: %w", name, err)
	}
	fs := verify.Partition(part)
	shown := fs.MinSeverity(minSev)
	label := fmt.Sprintf("%v", opts.Heuristic)
	if opts.Policy != "" {
		label = "policy:" + opts.Policy
	}
	if opts.TaskSize {
		label += " +tasksize"
	}
	if out.json {
		out.collect(fmt.Sprintf("%s[%s]", name, label), shown)
		return fs.Errors(), nil
	}
	if len(shown) > 0 {
		fmt.Print(shown)
	}
	fmt.Printf("%s [%s]: %d tasks, %d errors, %d warnings, %d findings\n",
		name, label, len(part.Tasks), fs.Errors(), fs.Warnings(), len(fs))
	return fs.Errors(), nil
}

// lintAll sweeps the full benchmark grid — every workload under every
// heuristic, with and without the task-size heuristic — and returns the
// process exit code.
func lintAll(out *output, minSev verify.Severity, targets int) int {
	heuristics := []core.Heuristic{core.BasicBlock, core.ControlFlow, core.DataDependence}
	totalErrs, configs := 0, 0
	for _, w := range workloads.All() {
		for _, h := range heuristics {
			for _, ts := range []bool{false, true} {
				opts := core.Options{Heuristic: h, TaskSize: ts, MaxTargets: targets}
				errs, err := lintOne(out, w.Name, w.Build(), opts, minSev)
				if err != nil {
					fmt.Fprintln(os.Stderr, "mslint:", err)
					return 1
				}
				totalErrs += errs
				configs++
			}
		}
	}
	if !out.json {
		fmt.Printf("\n%d configurations linted, %d error findings\n", configs, totalErrs)
	}
	if totalErrs > 0 {
		return 1
	}
	return 0
}

// lintCorpus verifies n generated programs and lints every (program ×
// strategy) partition: the three paper heuristics plus every registered
// policy. Program-level findings (a generator bug) and partition-level
// findings (a selection-contract violation) both count as errors.
func lintCorpus(out *output, minSev verify.Severity, targets int, seed int64, n int) int {
	strategies := []core.Options{
		{Heuristic: core.BasicBlock},
		{Heuristic: core.ControlFlow},
		{Heuristic: core.DataDependence},
	}
	for _, p := range core.PolicyNames() {
		strategies = append(strategies, core.Options{Heuristic: core.ControlFlow, Policy: p})
	}
	totalErrs, configs := 0, 0
	for i := 0; i < n; i++ {
		p := gen.CorpusParams(seed, i)
		prog := gen.Generate(p)
		name := p.Key()
		if fs := verify.Program(prog); fs.Errors() > 0 {
			shown := fs.MinSeverity(minSev)
			if out.json {
				out.collect(name, shown)
			} else if len(shown) > 0 {
				fmt.Print(shown)
			}
			totalErrs += fs.Errors()
		}
		for _, opts := range strategies {
			opts.MaxTargets = targets
			errs, err := lintOne(out, name, prog, opts, minSev)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mslint:", err)
				return 1
			}
			totalErrs += errs
			configs++
		}
	}
	if !out.json {
		fmt.Printf("\n%d generated programs, %d configurations linted, %d error findings\n", n, configs, totalErrs)
	}
	if totalErrs > 0 {
		return 1
	}
	return 0
}

func loadProgram(workload, asmFile string) (*ir.Program, error) {
	switch {
	case workload != "" && asmFile != "":
		return nil, fmt.Errorf("use either -workload or -asm, not both")
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, err
		}
		return asm.Parse(asmFile, string(src))
	case workload != "":
		w, err := workloads.ByName(workload)
		if err != nil {
			return nil, err
		}
		return w.Build(), nil
	}
	return nil, fmt.Errorf("one of -workload, -asm, or -all is required (try -list)")
}

func parseHeuristic(s string) (core.Heuristic, error) {
	switch s {
	case "bb":
		return core.BasicBlock, nil
	case "cf":
		return core.ControlFlow, nil
	case "dd":
		return core.DataDependence, nil
	}
	return 0, fmt.Errorf("unknown heuristic %q (want bb, cf, or dd)", s)
}

func parseSeverity(s string) (verify.Severity, error) {
	switch s {
	case "info":
		return verify.SevInfo, nil
	case "warn":
		return verify.SevWarn, nil
	case "error":
		return verify.SevError, nil
	}
	return 0, fmt.Errorf("unknown severity %q (want info, warn, or error)", s)
}

func usage(err error) {
	fmt.Fprintln(os.Stderr, "mslint:", err)
	os.Exit(2)
}
