// Command msvet runs the repository's contract analyzers (internal/analysis)
// over Go packages. It works two ways:
//
// Standalone, with go-list loading:
//
//	msvet ./...             # findings to stderr, exit 1 if any
//	msvet -json ./...       # findings as JSON (internal/lintout) to stdout
//
// As a go vet tool, speaking the unitchecker protocol (-V=full, -flags, and
// per-package .cfg files):
//
//	go vet -vettool=$(which msvet) ./...
//
// Findings are suppressed per-site with `//msvet:allow <analyzer> (reason)`;
// see internal/analysis. DESIGN.md §11 catalogs the analyzers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"multiscalar/internal/analysis"
	"multiscalar/internal/lintout"
)

// version participates in go vet's tool-ID cache key (-V=full); bump it when
// analyzer behavior changes so cached vet verdicts invalidate.
const version = "v1"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("msvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout (shared lint format)")
	vFlag := fs.String("V", "", "print version and exit (go vet protocol; use -V=full)")
	flagsOut := fs.Bool("flags", false, "print the tool's flag schema as JSON (go vet protocol)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: msvet [-json] [packages]\n       go vet -vettool=msvet [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *vFlag != "":
		// The go command hashes this line into its action cache key.
		fmt.Fprintf(stdout, "msvet version %s\n", version)
		return 0
	case *flagsOut:
		// go vet asks for the flag schema before forwarding user flags.
		fmt.Fprintln(stdout, "[]")
		return 0
	case fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg"):
		return runUnit(fs.Arg(0), stderr)
	}
	return runStandalone(fs.Args(), *jsonOut, stdout, stderr)
}

// runStandalone loads packages with `go list` and analyzes them all.
func runStandalone(patterns []string, jsonOut bool, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "msvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintf(stderr, "msvet: %v\n", err)
		return 2
	}
	if jsonOut {
		findings := make([]lintout.Finding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, lintout.Finding{
				Tool:     "msvet",
				Rule:     d.Analyzer,
				Severity: "error",
				Location: d.Pos.String(),
				Message:  d.Message,
			})
		}
		if err := lintout.Write(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "msvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stderr, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the per-package configuration the go command writes for vet
// tools (x/tools unitchecker.Config); only the fields msvet consumes are
// declared.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single package described by a go vet .cfg file.
func runUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "msvet: reading %s: %v\n", cfgPath, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "msvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// msvet exports no facts, but the go command expects the output file to
	// exist before it will cache the result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "msvet: writing %s: %v\n", cfg.VetxOutput, err)
			return 2
		}
	}
	// The go command also vets test variants of each package. The contracts
	// msvet enforces are library-code contracts (tests legitimately use
	// context.Background, ad-hoc error collection, etc.), and the standalone
	// mode never loads test files, so unit mode drops them too for identical
	// verdicts across both entry points.
	files := cfg.GoFiles[:0:0]
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	cfg.GoFiles = files
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, err := analysis.CheckFiles(cfg.ImportPath, cfg.Dir, cfg.GoFiles, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "msvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, analysis.All())
	if err != nil {
		fmt.Fprintf(stderr, "msvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
