module multiscalar

go 1.22
