package multiscalar_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"multiscalar"
)

// buildVecAdd constructs a small loop program through the public API.
func buildVecAdd(t testing.TB, n int64) *multiscalar.Program {
	t.Helper()
	r := multiscalar.R
	b := multiscalar.NewBuilder("vecadd")
	buf := b.Zeros(int(n))
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").
		MovI(r(3), 0).MovI(r(4), 0).
		MovI(r(8), int64(buf)).MovI(r(9), int64(out)).
		Goto("head")
	f.Block("head").SltI(r(5), r(3), n).Br(r(5), "body", "exit")
	f.Block("body").
		MulI(r(6), r(3), 5).
		ShlI(r(7), r(3), 3).
		Add(r(7), r(7), r(8)).
		Store(r(6), r(7), 0).
		Add(r(4), r(4), r(6)).
		AddI(r(3), r(3), 1).
		Goto("head")
	f.Block("exit").Store(r(4), r(9), 0).Halt()
	f.End()
	return b.Build()
}

func TestPublicPipeline(t *testing.T) {
	prog := buildVecAdd(t, 64)
	instrs, checksum, err := multiscalar.Emulate(prog, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if instrs == 0 || checksum == 0 {
		t.Fatal("emulation produced nothing")
	}
	for _, h := range []multiscalar.Heuristic{multiscalar.BasicBlock, multiscalar.ControlFlow, multiscalar.DataDependence} {
		part, err := multiscalar.Select(prog, multiscalar.Options{Heuristic: h})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		res, err := multiscalar.Simulate(part, multiscalar.DefaultConfig(4))
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if res.FinalChecksum != checksum {
			t.Errorf("%v: simulator checksum %#x != emulator %#x", h, res.FinalChecksum, checksum)
		}
		// The partition simulates its own (loop-restructured) clone, which
		// may execute a few more instructions than the input program.
		pInstrs, pSum, err := multiscalar.Emulate(part.Prog, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Instrs != pInstrs || pSum != checksum {
			t.Errorf("%v: %d simulated instrs, partition program runs %d (checksums %#x/%#x)",
				h, res.Instrs, pInstrs, pSum, checksum)
		}
		_ = instrs
	}
}

func TestPublicAsmRoundTrip(t *testing.T) {
	prog := buildVecAdd(t, 16)
	text := multiscalar.FormatProgram(prog)
	re, err := multiscalar.ParseAsm("vecadd", text)
	if err != nil {
		t.Fatal(err)
	}
	re.Data = append([]int64(nil), prog.Data...)
	re.Layout()
	i1, c1, err := multiscalar.Emulate(prog, 100000)
	if err != nil {
		t.Fatal(err)
	}
	i2, c2, err := multiscalar.Emulate(re, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if i1 != i2 || c1 != c2 {
		t.Error("assembler round trip diverged")
	}
}

func TestPublicWalkTasks(t *testing.T) {
	prog := buildVecAdd(t, 32)
	part, err := multiscalar.Select(prog, multiscalar.Options{Heuristic: multiscalar.ControlFlow})
	if err != nil {
		t.Fatal(err)
	}
	instrs, _, err := multiscalar.Emulate(prog, 100000)
	if err != nil {
		t.Fatal(err)
	}
	var covered int
	if err := multiscalar.WalkTasks(part, 100000, func(te multiscalar.TaskExec) {
		covered += te.DynInstrs
	}); err != nil {
		t.Fatal(err)
	}
	// The partition clones (and possibly restructures) the program, so walk
	// coverage is measured against the partition's own program.
	pInstrs, _, err := multiscalar.Emulate(part.Prog, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(covered) != pInstrs {
		t.Errorf("tasks cover %d of %d instructions", covered, pInstrs)
	}
	_ = instrs
}

func TestPublicVerify(t *testing.T) {
	prog := buildVecAdd(t, 32)
	if fs := multiscalar.VerifyProgram(prog); fs.Errors() != 0 {
		t.Errorf("VerifyProgram found errors:\n%s", fs.MinSeverity(multiscalar.SevError))
	}
	part, err := multiscalar.Select(prog, multiscalar.Options{Heuristic: multiscalar.DataDependence, TaskSize: true})
	if err != nil {
		t.Fatal(err)
	}
	if fs := multiscalar.Verify(part); fs.Errors() != 0 {
		t.Errorf("Verify found errors on a Select partition:\n%s", fs.MinSeverity(multiscalar.SevError))
	}
	// A seeded defect must surface as an error finding.
	part.Tasks[0].CreateMask = 0
	part.Tasks[len(part.Tasks)-1].ID = 999
	if fs := multiscalar.Verify(part); fs.Errors() == 0 {
		t.Error("Verify missed a corrupted partition")
	}
}

func TestPublicWorkloads(t *testing.T) {
	if got := len(multiscalar.Workloads()); got != 18 {
		t.Fatalf("workload count = %d, want 18", got)
	}
	w, err := multiscalar.WorkloadByName("tomcatv")
	if err != nil || !w.FP {
		t.Fatalf("tomcatv lookup: %v (fp=%v)", err, w.FP)
	}
	if _, err := multiscalar.WorkloadByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestPublicExperimentsSubset(t *testing.T) {
	r := multiscalar.NewRunner()
	cells, err := multiscalar.Figure5(r, []int{4}, []string{"ijpeg"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 { // 4 variants × {ooo, inorder}
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	out := multiscalar.FormatFigure5(cells)
	if !strings.Contains(out, "ijpeg") || !strings.Contains(out, "Figure 5") {
		t.Errorf("unexpected Figure 5 output:\n%s", out)
	}
	rows, err := multiscalar.Table1(r, []string{"ijpeg"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Workload != "ijpeg" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].DDWinSpan < rows[0].BBWinSpan {
		t.Errorf("dd window span %.0f below bb %.0f", rows[0].DDWinSpan, rows[0].BBWinSpan)
	}
	tbl := multiscalar.FormatTable1(rows)
	if !strings.Contains(tbl, "win") {
		t.Errorf("unexpected Table 1 output:\n%s", tbl)
	}
}

func TestPublicGrid(t *testing.T) {
	dir := t.TempDir()
	g := multiscalar.NewGrid(multiscalar.GridOptions{Workers: 2, CacheDir: dir})
	r := multiscalar.NewRunnerOn(g)
	cells, err := multiscalar.Figure5(r, []int{4}, []string{"fpppp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	if s := g.Stats(); s.Sims == 0 || s.Jobs != s.Done {
		t.Errorf("grid stats after a run: %+v", s)
	}
	// Direct job against the same engine hits the memo.
	w, err := multiscalar.WorkloadByName("fpppp")
	if err != nil {
		t.Fatal(err)
	}
	before := g.Stats().Sims
	res, err := g.Run(multiscalar.GridJob{
		Workload: w.Name,
		Select:   multiscalar.Options{Heuristic: multiscalar.ControlFlow},
		Config:   multiscalar.DefaultConfig(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Error("nonpositive IPC from grid job")
	}
	if after := g.Stats().Sims; after != before {
		t.Errorf("memoized job re-simulated (%d -> %d)", before, after)
	}

	warm := multiscalar.NewGrid(multiscalar.GridOptions{CacheDir: dir})
	if _, err := multiscalar.Figure5(multiscalar.NewRunnerOn(warm), []int{4}, []string{"fpppp"}); err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.Sims != 0 {
		t.Errorf("warm grid simulated %d jobs, want 0", s.Sims)
	}
}

// TestPublicObservability exercises the exported tracing/metrics surface:
// an observed simulation matches the plain one bit for bit, events collect,
// the Chrome trace exports as valid JSON, and the metrics snapshot is
// deterministic.
func TestPublicObservability(t *testing.T) {
	prog := buildVecAdd(t, 64)
	part, err := multiscalar.Select(prog, multiscalar.Options{Heuristic: multiscalar.ControlFlow})
	if err != nil {
		t.Fatal(err)
	}
	cfg := multiscalar.DefaultConfig(4)
	plain, err := multiscalar.Simulate(part, cfg)
	if err != nil {
		t.Fatal(err)
	}

	col := &multiscalar.TraceCollector{}
	reg := multiscalar.NewMetrics()
	observed, err := multiscalar.SimulateObserved(part, cfg, multiscalar.Observer{Tracer: col, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Error("observed simulation diverged from plain Simulate")
	}
	if len(col.Events) == 0 {
		t.Fatal("collector saw no events")
	}

	var buf bytes.Buffer
	if err := multiscalar.WriteChromeTrace(&buf, col.Events, 4); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("trace has no events")
	}

	snap := reg.Snapshot()
	if len(snap.Metrics) == 0 {
		t.Fatal("metrics snapshot is empty")
	}
	blob, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "sim_tasks_total") {
		t.Errorf("snapshot missing sim_tasks_total:\n%s", blob)
	}
}
