package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"multiscalar/internal/obs"
	"multiscalar/internal/obs/span"
)

// Executor runs one job kind. It receives the job's canonical spec and an
// emit function for progress events (each call appends one event to the
// job's stream); the returned value is marshaled as the job's terminal
// result. A ctx error return means the job was canceled or the process is
// shutting down — the manager distinguishes the two and either finalizes
// the job as canceled or requeues it for the next start.
type Executor func(ctx context.Context, spec Spec, emit EmitFunc) (any, error)

// EmitFunc appends one named event to the running job's stream. The value
// is marshaled to JSON immediately; marshal failures drop the event (a
// progress delta is not worth failing a sweep over).
type EmitFunc func(name string, v any)

// Options configures a Manager.
type Options struct {
	// Runners bounds concurrently executing jobs (0 = 2). This is a bound on
	// jobs, not simulations — each executing job fans out into the grid
	// engine, which applies its own worker bound.
	Runners int
	// Dir enables the durability journal under this directory ("" = memory
	// only; jobs do not survive a restart). Convention: <cache-dir>/jobs.
	Dir string
	// Executors maps job kinds to their implementations. Submit rejects
	// kinds with no executor.
	Executors map[string]Executor
	// Metrics, when non-nil, receives the ms_jobs_* catalog.
	Metrics *obs.Registry
	// Tracer, when non-nil, opens a jobs.exec root span per execution, so
	// async work shows up in the flight recorder like request work does.
	Tracer *span.Tracer
	// Weights are per-tenant fair-queue weights (unlisted tenants weigh 1).
	Weights map[string]float64
	// Cost estimates a job's relative schedule cost for the fair queue
	// (nil = every job costs 1). Only ordering is affected, never admission.
	Cost func(spec Spec) float64
	// MaxJobs bounds retained records; beyond it the oldest terminal
	// records (and their event streams) are evicted (0 = 4096).
	MaxJobs int
}

// jobState is one job's in-memory state: the durable record plus the
// process-local event stream and cancellation handle.
type jobState struct {
	rec      Record
	events   []Event
	notify   chan struct{} // closed and replaced on every append
	cancel   context.CancelFunc
	canceled bool // explicit DELETE, distinguishes cancel from shutdown
}

// jobMetrics is the ms_jobs_* catalog, resolved once at NewManager.
type jobMetrics struct {
	submitted, shared, done, failed *obs.Counter
	canceled, requeued, replayed    *obs.Counter
	queued, running                 *obs.Gauge
	queueWait, execWall             *obs.Histogram
}

func newJobMetrics(r *obs.Registry) *jobMetrics {
	if r == nil {
		return nil
	}
	return &jobMetrics{
		submitted: r.Counter("ms_jobs_submitted_total", "jobs", "job submissions that created or reset a record"),
		shared:    r.Counter("ms_jobs_shared_total", "jobs", "submissions answered by an existing record (dedup)"),
		done:      r.Counter("ms_jobs_done_total", "jobs", "jobs finished successfully"),
		failed:    r.Counter("ms_jobs_failed_total", "jobs", "jobs finished with an error"),
		canceled:  r.Counter("ms_jobs_canceled_total", "jobs", "jobs canceled by request"),
		requeued:  r.Counter("ms_jobs_requeued_total", "jobs", "running jobs requeued by shutdown"),
		replayed:  r.Counter("ms_jobs_replayed_total", "jobs", "jobs resurrected from the journal at startup"),
		queued:    r.Gauge("ms_jobs_queued", "jobs", "jobs waiting in the fair queue"),
		running:   r.Gauge("ms_jobs_running", "jobs", "jobs executing right now"),
		queueWait: r.Histogram("ms_jobs_queue_wait_us", "us",
			"time a job waited in the fair queue before a runner took it", obs.ExpBuckets(100, 4, 12)),
		execWall: r.Histogram("ms_jobs_exec_wall_us", "us",
			"wall time of one job execution", obs.ExpBuckets(100, 4, 14)),
	}
}

// Manager owns the job table, the fair queue, the runner pool, and the
// journal. Create one with NewManager, launch the runners with Start, and
// stop them with Close (idempotent).
type Manager struct {
	opt     Options
	journal *journal // nil = memory only
	queue   *fairQueue
	m       *jobMetrics
	tracer  *span.Tracer

	mu   sync.Mutex
	jobs map[string]*jobState

	startOnce sync.Once
	stopOnce  sync.Once
	stopping  chan struct{}
	wg        sync.WaitGroup
}

// Stats is a snapshot of the job table for health reporting.
type Stats struct {
	Queued, Running, Done, Failed, Canceled int
	// OldestQueued is how long the longest-waiting queued job has been
	// waiting (0 when nothing is queued).
	OldestQueued time.Duration
}

// NewManager builds a manager and, when opts.Dir is set, replays the
// journal: terminal records are served again (warm resubmission returns
// their cached results), queued and interrupted jobs are re-enqueued for
// the runners Start will launch. The journal is compacted as part of
// replay, so it holds one line per surviving job rather than full history.
func NewManager(opts Options) (*Manager, error) {
	if opts.Runners <= 0 {
		opts.Runners = 2
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 4096
	}
	if len(opts.Executors) == 0 {
		return nil, errors.New("jobs: Options.Executors is required")
	}
	m := &Manager{
		opt:      opts,
		queue:    newFairQueue(opts.Weights),
		m:        newJobMetrics(opts.Metrics),
		tracer:   opts.Tracer,
		jobs:     make(map[string]*jobState),
		stopping: make(chan struct{}),
	}
	if opts.Dir != "" {
		recs, err := replayJournal(opts.Dir)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			st := &jobState{rec: rec, notify: make(chan struct{})}
			switch {
			case rec.State.Terminal():
				// Served as-is; its result survived the restart.
			default:
				// queued stays queued; running was interrupted — either by a
				// graceful shutdown (which already journaled it back to
				// queued) or by a crash. Both resume from the top; the grid
				// cache makes the replayed prefix nearly free.
				st.rec.State = StateQueued
				m.queue.enqueue(rec.Tenant, rec.ID, m.cost(rec.Spec), time.Now())
			}
			m.jobs[rec.ID] = st
			if m.m != nil {
				m.m.replayed.Inc()
			}
		}
		if err := compactJournal(opts.Dir, recsSnapshot(m)); err != nil {
			return nil, err
		}
		j, err := openJournal(opts.Dir)
		if err != nil {
			return nil, err
		}
		m.journal = j
	}
	m.gauges()
	return m, nil
}

// recsSnapshot lists current records for compaction (order: creation time).
func recsSnapshot(m *Manager) []Record {
	out := make([]Record, 0, len(m.jobs))
	for _, st := range m.jobs {
		out = append(out, st.rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (m *Manager) cost(spec Spec) float64 {
	if m.opt.Cost == nil {
		return 1
	}
	if c := m.opt.Cost(spec); c > 0 {
		return c
	}
	return 1
}

// Start launches the runner pool. Runners drain the fair queue until ctx
// ends or Close is called; every job execution derives its context from
// ctx, so cancelling it (the process shutting down) requeues running jobs
// rather than failing them. Start is idempotent — only the first call
// launches anything.
func (m *Manager) Start(ctx context.Context) {
	m.startOnce.Do(func() {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			select {
			case <-ctx.Done():
			case <-m.stopping:
			}
			m.queue.close()
		}()
		for i := 0; i < m.opt.Runners; i++ {
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				for {
					id, waited, ok := m.queue.dequeue()
					if !ok {
						return
					}
					if m.m != nil {
						m.m.queueWait.Observe(waited.Microseconds())
					}
					m.run(ctx, id)
				}
			}()
		}
	})
}

// Close stops the runners and waits for in-flight executions to unwind.
// Running jobs are journaled back to queued (they resume on the next
// start); the queue's backlog stays in the journal the same way. Close is
// safe to call without Start and more than once.
func (m *Manager) Close() {
	m.stopOnce.Do(func() { close(m.stopping) })
	m.queue.close()
	m.wg.Wait()
	if m.journal != nil {
		m.journal.close()
	}
}

// ErrUnknownKind marks a submission whose kind has no registered executor.
var ErrUnknownKind = errors.New("jobs: unknown job kind")

// Submit enqueues (or joins) the job described by spec. The returned record
// is a snapshot; created reports whether this call scheduled new work
// (false when an identical job is already queued, running, or done — the
// content-address dedup that makes two tenants submitting the same sweep
// share one execution). Submitting a failed or canceled job resets it to
// queued for another attempt.
func (m *Manager) Submit(tenant string, spec Spec) (Record, bool, error) {
	if _, ok := m.opt.Executors[spec.Kind]; !ok {
		return Record{}, false, fmt.Errorf("%w %q", ErrUnknownKind, spec.Kind)
	}
	select {
	case <-m.stopping:
		return Record{}, false, errors.New("jobs: manager is shutting down")
	default:
	}
	id := IDFor(spec)
	now := time.Now()
	m.mu.Lock()
	st, ok := m.jobs[id]
	if ok {
		switch st.rec.State {
		case StateQueued, StateRunning, StateDone:
			rec := st.rec
			m.mu.Unlock()
			if m.m != nil {
				m.m.shared.Inc()
			}
			return rec, false, nil
		case StateFailed, StateCanceled:
			st.rec.State = StateQueued
			st.rec.Error = ""
			st.rec.Result = nil
			st.rec.Finished = time.Time{}
			st.canceled = false
			rec := st.rec
			m.queue.enqueue(tenant, id, m.cost(spec), now)
			m.mu.Unlock()
			m.persist(rec)
			m.submitted()
			return rec, true, nil
		}
	}
	st = &jobState{
		rec: Record{
			ID: id, Spec: spec, Tenant: tenant,
			State: StateQueued, Created: now,
		},
		notify: make(chan struct{}),
	}
	m.jobs[id] = st
	m.evictLocked()
	rec := st.rec
	m.queue.enqueue(tenant, id, m.cost(spec), now)
	m.mu.Unlock()
	m.persist(rec)
	m.submitted()
	return rec, true, nil
}

func (m *Manager) submitted() {
	if m.m != nil {
		m.m.submitted.Inc()
	}
	m.gauges()
}

// evictLocked drops the oldest terminal records above the retention bound;
// callers hold m.mu. Live (queued/running) jobs are never evicted.
func (m *Manager) evictLocked() {
	excess := len(m.jobs) - m.opt.MaxJobs
	if excess <= 0 {
		return
	}
	type cand struct {
		id string
		at time.Time
	}
	var cands []cand
	for id, st := range m.jobs {
		if st.rec.State.Terminal() {
			cands = append(cands, cand{id, st.rec.Finished})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].at.Equal(cands[j].at) {
			return cands[i].at.Before(cands[j].at)
		}
		return cands[i].id < cands[j].id
	})
	for i := 0; i < len(cands) && excess > 0; i++ {
		delete(m.jobs, cands[i].id)
		excess--
	}
}

// Get returns a snapshot of one job's record.
func (m *Manager) Get(id string) (Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.jobs[id]
	if !ok {
		return Record{}, false
	}
	return st.rec, true
}

// List returns snapshots of every retained record, newest first.
func (m *Manager) List() []Record {
	m.mu.Lock()
	out := make([]Record, 0, len(m.jobs))
	for _, st := range m.jobs {
		out = append(out, st.rec)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.After(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Cancel requests cancellation of a job. A queued job cancels immediately;
// a running job's context is canceled and it finalizes as canceled when the
// executor unwinds; terminal jobs are left as they are. The returned record
// reflects the state after this call.
func (m *Manager) Cancel(id string) (Record, bool) {
	m.mu.Lock()
	st, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Record{}, false
	}
	switch st.rec.State {
	case StateQueued:
		if m.queue.remove(id) {
			st.rec.State = StateCanceled
			st.rec.Error = "canceled before execution"
			st.rec.Finished = time.Now()
			st.canceled = true
			rec := st.rec
			m.mu.Unlock()
			m.persist(rec)
			m.finalizeEvent(id, "error", map[string]any{"code": "canceled", "message": rec.Error})
			if m.m != nil {
				m.m.canceled.Inc()
			}
			m.gauges()
			return rec, true
		}
		// A runner grabbed it between our lock and the queue's: fall through
		// to the running case so the cancellation still lands.
		fallthrough
	case StateRunning:
		st.canceled = true
		if st.cancel != nil {
			st.cancel()
		}
	}
	rec := st.rec
	m.mu.Unlock()
	return rec, true
}

// Stats snapshots the job table for /healthz.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	var s Stats
	for _, st := range m.jobs {
		switch st.rec.State {
		case StateQueued:
			s.Queued++
		case StateRunning:
			s.Running++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		case StateCanceled:
			s.Canceled++
		}
	}
	m.mu.Unlock()
	if at, ok := m.queue.oldest(); ok {
		s.OldestQueued = time.Since(at)
	}
	return s
}

// EventsSince returns the job's events with Seq > after, a channel that
// closes when another event arrives, and whether the job is terminal. The
// SSE handler loops on it: drain, flush, wait — and a client that
// reconnects with Last-Event-ID=N simply calls EventsSince(id, N).
func (m *Manager) EventsSince(id string, after int64) (evs []Event, more <-chan struct{}, terminal bool, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, exists := m.jobs[id]
	if !exists {
		return nil, nil, false, false
	}
	for _, e := range st.events {
		if e.Seq > after {
			evs = append(evs, e)
		}
	}
	return evs, st.notify, st.rec.State.Terminal(), true
}

// appendEvent appends one event to a job's stream and wakes watchers.
func (m *Manager) appendEvent(id, name string, data json.RawMessage) {
	m.mu.Lock()
	st, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return
	}
	st.events = append(st.events, Event{Seq: int64(len(st.events)) + 1, Name: name, Data: data})
	old := st.notify
	st.notify = make(chan struct{})
	m.mu.Unlock()
	close(old)
}

// finalizeEvent marshals and appends a terminal event.
func (m *Manager) finalizeEvent(id, name string, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		blob = []byte(`{}`)
	}
	m.appendEvent(id, name, blob)
}

// persist journals one record snapshot (no-op without a journal). Append
// errors are deliberately swallowed after the open succeeded: a full disk
// degrades durability, not availability, matching the cache's posture.
func (m *Manager) persist(rec Record) {
	if m.journal == nil {
		return
	}
	_ = m.journal.append(rec)
}

func (m *Manager) gauges() {
	if m.m == nil {
		return
	}
	m.mu.Lock()
	var queued, running int64
	for _, st := range m.jobs {
		switch st.rec.State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	m.mu.Unlock()
	m.m.queued.Set(queued)
	m.m.running.Set(running)
}

// run executes one dequeued job end to end.
func (m *Manager) run(ctx context.Context, id string) {
	m.mu.Lock()
	st, ok := m.jobs[id]
	if !ok || st.rec.State != StateQueued {
		// Canceled (or evicted) between dequeue and here.
		m.mu.Unlock()
		return
	}
	jobCtx, cancel := context.WithCancel(ctx)
	st.cancel = cancel
	st.rec.State = StateRunning
	st.rec.Started = time.Now()
	st.rec.Attempts++
	rec := st.rec
	exec := m.opt.Executors[rec.Spec.Kind]
	m.mu.Unlock()
	defer cancel()
	m.persist(rec)
	m.gauges()

	var sp *span.Span
	if m.tracer != nil {
		jobCtx, sp = m.tracer.StartRoot(jobCtx, "jobs.exec")
		sp.SetAttr("job", rec.ID)
		sp.SetAttr("kind", rec.Spec.Kind)
		sp.SetAttr("tenant", rec.Tenant)
		sp.SetAttr("attempt", fmt.Sprint(rec.Attempts))
	}
	emit := func(name string, v any) {
		blob, err := json.Marshal(v)
		if err != nil {
			return
		}
		m.appendEvent(id, name, blob)
	}
	t0 := time.Now()
	out, err := exec(jobCtx, rec.Spec, emit)
	if m.m != nil {
		m.m.execWall.Observe(time.Since(t0).Microseconds())
	}
	sp.End(err)
	m.finish(id, out, err)
}

// isCtxErr mirrors grid's definition: failures describing the caller (or
// the process lifecycle), not the computation.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// finish records a completed execution's outcome.
func (m *Manager) finish(id string, out any, err error) {
	m.mu.Lock()
	st, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return
	}
	st.cancel = nil
	now := time.Now()
	switch {
	case err == nil:
		blob, merr := json.Marshal(out)
		if merr != nil {
			st.rec.State = StateFailed
			st.rec.Error = "encode result: " + merr.Error()
			st.rec.Finished = now
		} else {
			st.rec.State = StateDone
			st.rec.Result = blob
			st.rec.Finished = now
		}
	case isCtxErr(err) && !st.canceled:
		// Shutdown, not cancellation: back to queued so the journal resumes
		// it on the next start. No terminal event — the job is not over.
		st.rec.State = StateQueued
		rec := st.rec
		m.mu.Unlock()
		m.persist(rec)
		if m.m != nil {
			m.m.requeued.Inc()
		}
		m.gauges()
		return
	case isCtxErr(err):
		st.rec.State = StateCanceled
		st.rec.Error = "canceled"
		st.rec.Finished = now
	default:
		st.rec.State = StateFailed
		st.rec.Error = err.Error()
		st.rec.Finished = now
	}
	rec := st.rec
	m.mu.Unlock()
	m.persist(rec)
	switch rec.State {
	case StateDone:
		m.appendEvent(id, "result", rec.Result)
		if m.m != nil {
			m.m.done.Inc()
		}
	case StateCanceled:
		m.finalizeEvent(id, "error", map[string]any{"code": "canceled", "message": rec.Error})
		if m.m != nil {
			m.m.canceled.Inc()
		}
	default:
		m.finalizeEvent(id, "error", map[string]any{"code": "failed", "message": rec.Error})
		if m.m != nil {
			m.m.failed.Inc()
		}
	}
	m.gauges()
}
