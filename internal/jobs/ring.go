package jobs

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ringVnodes is the virtual-node count per peer. 64 points per peer keeps
// the ownership split within a few percent of even for small fleets while
// the whole ring stays a few kilobytes.
const ringVnodes = 64

// Ring maps job and cache keys onto the replica that owns them, so N mssrv
// instances behave as one coalescing surface: every replica routes a
// submission to the key's owner, identical submissions from any entry point
// land on the same engine, and that engine's single-flight and cache do the
// deduplication they already do for one process.
//
// The ring is consistent hashing over SHA-256 points: each peer contributes
// ringVnodes points, a key is owned by the first point clockwise from its
// own hash, and adding or removing one replica moves only ~1/N of the key
// space. Peers must be configured identically (same URL strings) on every
// replica or their rings disagree — NormalizePeers in internal/dist exists
// to make that canonical form easy.
type Ring struct {
	self   string
	peers  []string
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	peer string
}

// NewRing builds the ring for this replica. self is this replica's public
// base URL; peers is the full replica list (self is added if absent). A ring
// with one peer owns everything — callers can treat nil *Ring and a
// single-peer ring identically.
func NewRing(self string, peers []string) *Ring {
	all := make([]string, 0, len(peers)+1)
	seen := map[string]bool{}
	for _, p := range append([]string{self}, peers...) {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		all = append(all, p)
	}
	sort.Strings(all)
	r := &Ring{self: self, peers: all}
	for _, p := range all {
		for i := 0; i < ringVnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(p + "#" + strconv.Itoa(i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// ringHash maps a string onto the ring's 64-bit key space.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the base URL of the replica owning key.
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}

// Owns reports whether this replica owns key. A nil ring owns everything
// (single-replica deployments route nothing).
func (r *Ring) Owns(key string) bool {
	if r == nil || len(r.peers) < 2 {
		return true
	}
	return r.Owner(key) == r.self
}

// Self returns this replica's base URL ("" on a nil ring).
func (r *Ring) Self() string {
	if r == nil {
		return ""
	}
	return r.self
}

// Peers returns the full normalized peer list.
func (r *Ring) Peers() []string {
	if r == nil {
		return nil
	}
	return r.peers
}
