package jobs

import (
	"sync"
	"time"
)

// fairItem is one queued job inside the weighted-fair queue.
type fairItem struct {
	id     string
	tenant string
	// finish is the item's virtual finish time under weighted fair queueing:
	// the scheduler always dequeues the globally smallest finish tag, so a
	// tenant's share of dequeues converges to weight/Σweights regardless of
	// how deep anyone's backlog runs.
	finish   float64
	enqueued time.Time
}

// fairQueue is a virtual-time weighted-fair queue over per-tenant FIFOs.
// Each enqueue stamps the item with a finish tag
//
//	start  = max(queue virtual time, tenant's last finish)
//	finish = start + cost/weight
//
// and dequeue picks the tenant whose head item has the smallest tag
// (lexicographic tenant name breaks exact ties, so ordering is
// deterministic). A heavy tenant's items space out by cost/weight while a
// light tenant's next item tags barely past the current virtual time — the
// classic WFQ interleave, with no goroutine per tenant and O(tenants)
// dequeue, which is plenty below the runner counts this system sees.
type fairQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	vtime   float64
	tenants map[string]*tenantQueue
	weights map[string]float64
	n       int
	closed  bool
}

type tenantQueue struct {
	items []*fairItem
	last  float64 // virtual finish of the most recently enqueued item
}

func newFairQueue(weights map[string]float64) *fairQueue {
	q := &fairQueue{
		tenants: make(map[string]*tenantQueue),
		weights: weights,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *fairQueue) weight(tenant string) float64 {
	if w, ok := q.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// enqueue adds a job for tenant with the given cost and wakes one runner.
func (q *fairQueue) enqueue(tenant, id string, cost float64, now time.Time) {
	if cost <= 0 {
		cost = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	t := q.tenants[tenant]
	if t == nil {
		t = &tenantQueue{}
		q.tenants[tenant] = t
	}
	start := q.vtime
	if t.last > start {
		start = t.last
	}
	t.last = start + cost/q.weight(tenant)
	t.items = append(t.items, &fairItem{id: id, tenant: tenant, finish: t.last, enqueued: now})
	q.n++
	q.cond.Signal()
}

// dequeue blocks until an item is available or the queue closes. ok=false
// means the queue closed: runners exit, leaving any backlog for the journal
// to resurrect on the next start.
func (q *fairQueue) dequeue() (id string, waited time.Duration, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return "", 0, false
	}
	var best *tenantQueue
	var bestName string
	for name, t := range q.tenants {
		if len(t.items) == 0 {
			continue
		}
		head := t.items[0]
		if best == nil || head.finish < best.items[0].finish ||
			(head.finish == best.items[0].finish && name < bestName) {
			best, bestName = t, name
		}
	}
	item := best.items[0]
	best.items = best.items[1:]
	q.n--
	if item.finish > q.vtime {
		q.vtime = item.finish
	}
	// Drop drained tenant queues the virtual clock has passed: their `last`
	// no longer influences future tags, so keeping them only grows the map.
	for name, t := range q.tenants {
		if len(t.items) == 0 && t.last <= q.vtime {
			delete(q.tenants, name)
		}
	}
	return item.id, time.Since(item.enqueued), true
}

// remove deletes a queued job (cancellation before a runner took it).
func (q *fairQueue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for name, t := range q.tenants {
		for i, item := range t.items {
			if item.id != id {
				continue
			}
			t.items = append(t.items[:i], t.items[i+1:]...)
			if len(t.items) == 0 && t.last <= q.vtime {
				delete(q.tenants, name)
			}
			q.n--
			return true
		}
	}
	return false
}

// close wakes every blocked runner; subsequent dequeues report ok=false.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// depth reports the queued item count.
func (q *fairQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// oldest returns the enqueue time of the longest-waiting item and whether
// any item is queued at all.
func (q *fairQueue) oldest() (time.Time, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var t time.Time
	found := false
	for _, tq := range q.tenants {
		for _, item := range tq.items {
			if !found || item.enqueued.Before(t) {
				t, found = item.enqueued, true
			}
		}
	}
	return t, found
}

// Limiter is a per-tenant token bucket gating job submissions. Each tenant
// accrues rate tokens per second up to burst; a submission spends one token.
// The limiter protects the fair queue from pathological submission rates —
// fairness shapes who runs next, the limiter bounds how fast anyone can make
// that question matter.
type Limiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	now     func() time.Time
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the tenant map: above it, fully-refilled (idle) buckets
// are dropped, so an adversary minting tenant names cannot grow memory
// without also spending sustained request volume per name.
const maxBuckets = 4096

// NewLimiter returns a limiter granting rate tokens/second with the given
// burst capacity per tenant. rate <= 0 disables limiting (Allow always
// grants); burst <= 0 defaults to max(rate, 1).
func NewLimiter(rate, burst float64) *Limiter {
	if burst <= 0 {
		burst = rate
		if burst < 1 {
			burst = 1
		}
	}
	return &Limiter{rate: rate, burst: burst, now: time.Now, buckets: make(map[string]*bucket)}
}

// Allow spends one token for tenant. When denied, retryAfter is the time
// until a full token accrues — the honest Retry-After floor.
func (l *Limiter) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[tenant]
	if b == nil {
		if len(l.buckets) >= maxBuckets {
			l.evictLocked()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// evictLocked drops idle buckets — those whose lazy refill would already be
// at burst capacity, i.e. tenants that have been quiet long enough to have
// nothing throttled. Callers hold l.mu.
func (l *Limiter) evictLocked() {
	now := l.now()
	for name, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, name)
		}
	}
}
