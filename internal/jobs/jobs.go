// Package jobs is the durable async job subsystem: a scheduling layer above
// the grid engine that turns long-running work (partition, simulate,
// experiment, corpus sweeps) into named, content-addressed jobs with a
// lifecycle clients poll or stream instead of holding a connection open.
//
// The design splits four concerns that the synchronous HTTP path conflated:
//
//   - identity: a job is addressed by the SHA-256 of its canonical spec, so
//     two tenants submitting the same sweep share one record and one
//     execution, and a warm resubmission returns the cached terminal result
//     without recomputing anything;
//   - durability: every state transition appends to a JSON-lines journal
//     under the cache directory; on restart the journal replays, terminal
//     results are served again, and queued or interrupted jobs are
//     re-offered to the runners (a kill -9 mid-sweep costs only the cycles
//     since the last grid cache write);
//   - fairness: submissions enter a per-tenant weighted-fair queue, so one
//     tenant's thousand-job backlog cannot starve another's single request,
//     and a token-bucket limiter sheds pathological submission rates before
//     they reach the queue at all;
//   - routing: a consistent-hash ring over job IDs lets N replicas behave as
//     one coalescing surface — every replica redirects a job to its owner,
//     so identical submissions land on the same engine and dedupe there.
//
// The manager executes jobs through pluggable executors (registered per
// kind by the serve layer), keeping this package free of HTTP and
// experiment types: it schedules work, it does not define it.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"
)

// SchemaVersion stamps every job ID and journal record. Bump it whenever the
// Spec encoding or Record semantics change: old journal entries stop
// replaying (they are dropped, not misread) and resubmissions mint fresh
// IDs instead of colliding with incompatible history.
const SchemaVersion = 1

// Spec is what a job runs: a kind (naming a registered executor) and the
// canonical JSON payload the executor decodes. Callers must canonicalize the
// payload — re-marshal their typed request — before submission, so that
// formatting differences do not split one logical job into two IDs.
type Spec struct {
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// IDFor derives a job's content address: the lowercase-hex SHA-256 of the
// schema-stamped spec. Identical specs collide by construction — that is the
// dedup mechanism — and the ID doubles as the consistent-hash routing key.
func IDFor(spec Spec) string {
	blob, err := json.Marshal(struct {
		Schema int    `json:"schema"`
		Kind   string `json:"kind"`
		// Payload hashes verbatim: it is already canonical JSON.
		Payload json.RawMessage `json:"payload"`
	}{SchemaVersion, spec.Kind, spec.Payload})
	if err != nil {
		// Spec is plain data; marshalling cannot fail without a programming
		// error in the caller's canonicalization.
		panic("jobs: id derivation: " + err.Error())
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// State is a job's lifecycle position. Transitions:
//
//	queued → running → done | failed | canceled
//	queued → canceled                      (canceled before a runner took it)
//	running → queued                       (shutdown requeue; resumes on restart)
//	failed | canceled → queued             (explicit resubmission retries)
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Record is one job's durable state: what every journal entry carries and
// what the status API reports. Result is the executor's marshaled output,
// set only in StateDone; Error is set in StateFailed and StateCanceled.
type Record struct {
	ID       string    `json:"id"`
	Spec     Spec      `json:"spec"`
	Tenant   string    `json:"tenant"`
	State    State     `json:"state"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
	// Attempts counts execution starts: 1 for a normal run, more after
	// shutdown requeues or explicit resubmissions of a failed job.
	Attempts int             `json:"attempts"`
	Result   json.RawMessage `json:"result,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// Event is one entry in a job's ordered progress stream. Seq starts at 1 and
// increases without gaps within one process lifetime, so an SSE client that
// reconnects with Last-Event-ID resumes exactly where it left off. Name is
// the SSE event name ("progress", "result", "error"); Data is its JSON body.
type Event struct {
	Seq  int64           `json:"seq"`
	Name string          `json:"name"`
	Data json.RawMessage `json:"data"`
}

// ValidateID rejects anything that is not a lowercase-hex SHA-256 digest,
// mirroring grid.ValidateKey: job IDs appear in URLs and journal file
// contents, and must never be interpretable as paths or markup.
func ValidateID(id string) error {
	if len(id) != sha256.Size*2 {
		return fmt.Errorf("job id must be %d hex characters, got %d", sha256.Size*2, len(id))
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("job id must be lowercase hex")
		}
	}
	return nil
}
