package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func specFor(kind, body string) Spec {
	return Spec{Kind: kind, Payload: json.RawMessage(body)}
}

func TestIDForStability(t *testing.T) {
	a := IDFor(specFor("simulate", `{"workload":"compress"}`))
	b := IDFor(specFor("simulate", `{"workload":"compress"}`))
	if a != b {
		t.Fatalf("same spec hashed to %s and %s", a, b)
	}
	if err := ValidateID(a); err != nil {
		t.Fatalf("IDFor produced an invalid id: %v", err)
	}
	if c := IDFor(specFor("partition", `{"workload":"compress"}`)); c == a {
		t.Fatal("different kinds collided on one id")
	}
	if c := IDFor(specFor("simulate", `{"workload":"go"}`)); c == a {
		t.Fatal("different payloads collided on one id")
	}
}

func TestSubmitLifecycle(t *testing.T) {
	var calls atomic.Int64
	m, err := NewManager(Options{
		Runners: 2,
		Executors: map[string]Executor{
			"echo": func(ctx context.Context, spec Spec, emit EmitFunc) (any, error) {
				calls.Add(1)
				return map[string]string{"ok": "yes"}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	rec, created, err := m.Submit("alice", specFor("echo", `{"n":1}`))
	if err != nil || !created {
		t.Fatalf("Submit = (%+v, %v, %v), want created", rec, created, err)
	}
	if rec.State != StateQueued || rec.Tenant != "alice" {
		t.Fatalf("fresh record = %+v", rec)
	}
	waitFor(t, "job done", func() bool {
		r, ok := m.Get(rec.ID)
		return ok && r.State == StateDone
	})
	got, _ := m.Get(rec.ID)
	if string(got.Result) != `{"ok":"yes"}` {
		t.Fatalf("result %s", got.Result)
	}
	if got.Attempts != 1 {
		t.Fatalf("attempts %d, want 1", got.Attempts)
	}

	// Warm resubmission: same spec answers from the record, runs nothing.
	again, created, err := m.Submit("bob", specFor("echo", `{"n":1}`))
	if err != nil || created {
		t.Fatalf("resubmit = created %v err %v, want shared", created, err)
	}
	if again.State != StateDone || string(again.Result) != `{"ok":"yes"}` {
		t.Fatalf("resubmit record %+v", again)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("executor ran %d times, want 1", n)
	}

	if _, _, err := m.Submit("alice", specFor("nope", `{}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestConcurrentSubmitShares(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int64
	m, err := NewManager(Options{
		Runners: 4,
		Executors: map[string]Executor{
			"gate": func(ctx context.Context, spec Spec, emit EmitFunc) (any, error) {
				calls.Add(1)
				<-release
				return "done", nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	first, created, _ := m.Submit("a", specFor("gate", `{}`))
	if !created {
		t.Fatal("first submit did not create")
	}
	waitFor(t, "running", func() bool {
		r, _ := m.Get(first.ID)
		return r.State == StateRunning
	})
	second, created, _ := m.Submit("b", specFor("gate", `{}`))
	if created || second.ID != first.ID {
		t.Fatalf("second submit created=%v id=%s, want shared %s", created, second.ID, first.ID)
	}
	close(release)
	waitFor(t, "done", func() bool {
		r, _ := m.Get(first.ID)
		return r.State == StateDone
	})
	if n := calls.Load(); n != 1 {
		t.Fatalf("executor ran %d times for two tenants, want 1", n)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	m, err := NewManager(Options{
		Runners: 1, // one runner so the second job must queue
		Executors: map[string]Executor{
			"gate": func(ctx context.Context, spec Spec, emit EmitFunc) (any, error) {
				started <- string(spec.Payload)
				select {
				case <-release:
					return "done", nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	running, _, _ := m.Submit("a", specFor("gate", `{"n":1}`))
	<-started
	queued, _, _ := m.Submit("a", specFor("gate", `{"n":2}`))

	// Cancel the queued job: it must never start.
	rec, ok := m.Cancel(queued.ID)
	if !ok || rec.State != StateCanceled {
		t.Fatalf("cancel queued = %+v ok=%v", rec, ok)
	}
	evs, _, terminal, _ := m.EventsSince(queued.ID, 0)
	if !terminal || len(evs) != 1 || evs[0].Name != "error" {
		t.Fatalf("queued-cancel events %+v terminal=%v", evs, terminal)
	}

	// Cancel the running job: the executor's ctx ends and it finalizes.
	if _, ok := m.Cancel(running.ID); !ok {
		t.Fatal("cancel running: not found")
	}
	waitFor(t, "running job canceled", func() bool {
		r, _ := m.Get(running.ID)
		return r.State == StateCanceled
	})

	// A canceled job can be resubmitted for a fresh attempt.
	close(release)
	re, created, _ := m.Submit("a", specFor("gate", `{"n":2}`))
	if !created || re.State != StateQueued {
		t.Fatalf("resubmit after cancel = %+v created=%v", re, created)
	}
	waitFor(t, "resubmitted job done", func() bool {
		r, _ := m.Get(re.ID)
		return r.State == StateDone
	})
	if r, _ := m.Get(re.ID); r.Attempts != 1 {
		t.Fatalf("attempts after requeue %d, want 1 (first attempt never ran)", r.Attempts)
	}
}

func TestFailureAndEvents(t *testing.T) {
	m, err := NewManager(Options{
		Runners: 1,
		Executors: map[string]Executor{
			"flaky": func(ctx context.Context, spec Spec, emit EmitFunc) (any, error) {
				emit("progress", map[string]int{"step": 1})
				emit("progress", map[string]int{"step": 2})
				return nil, fmt.Errorf("boom")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	rec, _, _ := m.Submit("a", specFor("flaky", `{}`))
	waitFor(t, "failed", func() bool {
		r, _ := m.Get(rec.ID)
		return r.State == StateFailed
	})
	got, _ := m.Get(rec.ID)
	if got.Error != "boom" {
		t.Fatalf("error %q", got.Error)
	}
	evs, _, terminal, ok := m.EventsSince(rec.ID, 0)
	if !ok || !terminal {
		t.Fatalf("events ok=%v terminal=%v", ok, terminal)
	}
	if len(evs) != 3 || evs[0].Name != "progress" || evs[2].Name != "error" {
		t.Fatalf("events %+v", evs)
	}
	for i, e := range evs {
		if e.Seq != int64(i)+1 {
			t.Fatalf("event %d has seq %d, want contiguous from 1", i, e.Seq)
		}
	}
	// Resume mid-stream: only events after the cursor come back.
	tail, _, _, _ := m.EventsSince(rec.ID, 2)
	if len(tail) != 1 || tail[0].Seq != 3 {
		t.Fatalf("EventsSince(2) = %+v", tail)
	}
}

// TestJournalResumeAfterCrash simulates a kill -9: a journal-backed manager
// starts a job and is abandoned (never closed) mid-execution; a second
// manager on the same directory must replay the journal, re-offer the job,
// and complete it.
func TestJournalResumeAfterCrash(t *testing.T) {
	dir := t.TempDir()
	blocked := make(chan struct{})
	a, err := NewManager(Options{
		Runners: 1,
		Dir:     dir,
		Executors: map[string]Executor{
			"work": func(ctx context.Context, spec Spec, emit EmitFunc) (any, error) {
				close(blocked)
				<-ctx.Done() // hangs until the "crashed" manager is torn down
				return nil, ctx.Err()
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	actx, acancel := context.WithCancel(context.Background())
	rec, _, err := a.Submit("alice", specFor("work", `{"sweep":"fig5"}`))
	if err != nil {
		t.Fatal(err)
	}
	a.Start(actx)
	<-blocked // the journal now holds the job in state running

	// "Crash": no Close, no graceful anything. Open the successor on the
	// same directory while the first manager still holds its file handle.
	b, err := NewManager(Options{
		Runners: 1,
		Dir:     dir,
		Executors: map[string]Executor{
			"work": func(ctx context.Context, spec Spec, emit EmitFunc) (any, error) {
				return map[string]string{"resumed": "yes"}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		acancel()
		a.Close()
		b.Close()
	})
	if got, ok := b.Get(rec.ID); !ok || got.State != StateQueued {
		t.Fatalf("replayed record = %+v ok=%v, want queued", got, ok)
	}
	bctx, bcancel := context.WithCancel(context.Background())
	defer bcancel()
	b.Start(bctx)
	waitFor(t, "replayed job done", func() bool {
		r, _ := b.Get(rec.ID)
		return r.State == StateDone
	})
	got, _ := b.Get(rec.ID)
	if string(got.Result) != `{"resumed":"yes"}` {
		t.Fatalf("result %s", got.Result)
	}
	if got.Attempts != 2 {
		t.Fatalf("attempts %d, want 2 (the killed attempt counts: attempts survive the journal)", got.Attempts)
	}
}

// TestTerminalResultSurvivesRestart proves the other half of durability: a
// finished job's result is served after a restart without re-running
// anything.
func TestTerminalResultSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	mk := func() *Manager {
		m, err := NewManager(Options{
			Runners: 1,
			Dir:     dir,
			Executors: map[string]Executor{
				"echo": func(ctx context.Context, spec Spec, emit EmitFunc) (any, error) {
					calls.Add(1)
					return "first", nil
				},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := mk()
	ctx, cancel := context.WithCancel(context.Background())
	a.Start(ctx)
	rec, _, _ := a.Submit("alice", specFor("echo", `{}`))
	waitFor(t, "done", func() bool {
		r, _ := a.Get(rec.ID)
		return r.State == StateDone
	})
	cancel()
	a.Close()

	b := mk()
	t.Cleanup(b.Close)
	got, created, err := b.Submit("bob", specFor("echo", `{}`))
	if err != nil || created {
		t.Fatalf("post-restart resubmit created=%v err=%v, want cached", created, err)
	}
	if got.State != StateDone || string(got.Result) != `"first"` {
		t.Fatalf("post-restart record %+v", got)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("executor ran %d times across restart, want 1", n)
	}
}

// TestGracefulCloseRequeues: a Close (or Start-ctx cancellation) mid-run
// journals the job back to queued instead of failing it.
func TestGracefulCloseRequeues(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{})
	a, err := NewManager(Options{
		Runners: 1,
		Dir:     dir,
		Executors: map[string]Executor{
			"work": func(ctx context.Context, spec Spec, emit EmitFunc) (any, error) {
				close(started)
				<-ctx.Done()
				return nil, ctx.Err()
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rec, _, _ := a.Submit("alice", specFor("work", `{}`))
	a.Start(ctx)
	<-started
	cancel()
	a.Close()
	if got, _ := a.Get(rec.ID); got.State != StateQueued {
		t.Fatalf("state after graceful close = %s, want queued", got.State)
	}

	// The journal agrees: a fresh replay sees it queued.
	recs, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].State != StateQueued {
		t.Fatalf("journal replay = %+v, want one queued record", recs)
	}
}

func TestJournalTolerantOfTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{ID: IDFor(specFor("echo", `{}`)), Spec: specFor("echo", `{}`),
		Tenant: "a", State: StateDone, Created: time.Now().UTC(), Result: json.RawMessage(`"ok"`)}
	if err := j.append(rec); err != nil {
		t.Fatal(err)
	}
	j.close()
	// Simulate a crash mid-write: a torn, unterminated JSON fragment.
	f, err := os.OpenFile(journalPath(dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"schema":1,"record":{"id":"abc`)
	f.Close()

	recs, err := replayJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != rec.ID || recs[0].State != StateDone {
		t.Fatalf("replay over torn tail = %+v", recs)
	}
}

func TestEvictionKeepsLiveJobs(t *testing.T) {
	release := make(chan struct{})
	m, err := NewManager(Options{
		Runners: 2, // gate holds one runner; fast jobs flow through the other
		MaxJobs: 3,
		Executors: map[string]Executor{
			"fast": func(ctx context.Context, spec Spec, emit EmitFunc) (any, error) { return "x", nil },
			"gate": func(ctx context.Context, spec Spec, emit EmitFunc) (any, error) {
				select {
				case <-release:
					return "x", nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	gate, _, _ := m.Submit("a", specFor("gate", `{}`))
	var done []string
	for i := 0; i < 4; i++ {
		rec, _, _ := m.Submit("a", specFor("fast", fmt.Sprintf(`{"n":%d}`, i)))
		done = append(done, rec.ID)
		waitFor(t, "fast job settled", func() bool {
			r, ok := m.Get(rec.ID)
			return ok && r.State.Terminal()
		})
	}
	// Terminal jobs above the bound were evicted; the live gate job never is.
	if _, ok := m.Get(gate.ID); !ok {
		t.Fatal("live job evicted")
	}
	var kept int
	for _, id := range done {
		if _, ok := m.Get(id); ok {
			kept++
		}
	}
	if kept > 3 {
		t.Fatalf("kept %d terminal jobs with MaxJobs=3", kept)
	}
	close(release)
	waitFor(t, "gate done", func() bool {
		r, _ := m.Get(gate.ID)
		return r.State == StateDone
	})
	if got := m.Stats(); got.Done == 0 {
		t.Fatalf("stats %+v", got)
	}
}

func TestStats(t *testing.T) {
	release := make(chan struct{})
	m, err := NewManager(Options{
		Runners: 1,
		Executors: map[string]Executor{
			"gate": func(ctx context.Context, spec Spec, emit EmitFunc) (any, error) {
				<-release
				return "x", nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m.Start(ctx)

	a, _, _ := m.Submit("t", specFor("gate", `{"n":1}`))
	waitFor(t, "running", func() bool {
		r, _ := m.Get(a.ID)
		return r.State == StateRunning
	})
	m.Submit("t", specFor("gate", `{"n":2}`))
	s := m.Stats()
	if s.Running != 1 || s.Queued != 1 {
		t.Fatalf("stats %+v, want 1 running 1 queued", s)
	}
	if s.OldestQueued <= 0 {
		t.Fatalf("oldest queued age %v, want > 0", s.OldestQueued)
	}
	close(release)
	waitFor(t, "all done", func() bool { return m.Stats().Done == 2 })
}
