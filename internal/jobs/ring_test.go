package jobs

import (
	"fmt"
	"testing"
)

func TestRingAgreementAcrossReplicas(t *testing.T) {
	peers := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	// Each replica builds its ring with itself as self and the peer list in a
	// different order; all must agree on every key's owner.
	rings := []*Ring{
		NewRing("http://a:8080", []string{"http://b:8080", "http://c:8080"}),
		NewRing("http://b:8080", []string{"http://c:8080", "http://a:8080"}),
		NewRing("http://c:8080", peers), // self also present in the list
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("job-%d", i)
		owner := rings[0].Owner(key)
		for _, r := range rings[1:] {
			if got := r.Owner(key); got != owner {
				t.Fatalf("key %s: ring disagreement %s vs %s", key, got, owner)
			}
		}
		owned := 0
		for _, r := range rings {
			if r.Owns(key) {
				owned++
			}
		}
		if owned != 1 {
			t.Fatalf("key %s owned by %d replicas, want exactly 1", key, owned)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing("http://a", []string{"http://b", "http://c"})
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for peer, c := range counts {
		if c < n/10 {
			t.Fatalf("peer %s owns only %d/%d keys — distribution collapsed", peer, c, n)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d peers own keys, want 3", len(counts))
	}
}

func TestRingStability(t *testing.T) {
	before := NewRing("http://a", []string{"http://b", "http://c"})
	after := NewRing("http://a", []string{"http://b", "http://c", "http://d"})
	moved := 0
	const n = 3000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		if before.Owner(key) != after.Owner(key) {
			moved++
		}
	}
	// Adding one replica to three should move roughly 1/4 of keys; far more
	// means the hash is not consistent.
	if moved > n/2 {
		t.Fatalf("%d/%d keys moved after adding one peer", moved, n)
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new peer")
	}
}

func TestRingDegenerateCases(t *testing.T) {
	var nilRing *Ring
	if !nilRing.Owns("anything") {
		t.Fatal("nil ring must own everything")
	}
	if nilRing.Owner("k") != "" || nilRing.Self() != "" || nilRing.Peers() != nil {
		t.Fatal("nil ring accessors not zero")
	}
	solo := NewRing("http://a", nil)
	if !solo.Owns("anything") {
		t.Fatal("single-peer ring must own everything")
	}
	if got := solo.Owner("k"); got != "http://a" {
		t.Fatalf("solo owner %q", got)
	}
	// Duplicate + empty peers collapse.
	dup := NewRing("http://a", []string{"http://a", "", "http://b", "http://b"})
	if got := len(dup.Peers()); got != 2 {
		t.Fatalf("deduped peers = %d, want 2", got)
	}
}
