package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// journalEntry is one line of the on-disk journal: a schema stamp plus a
// full record snapshot. Snapshots (rather than deltas) make replay trivially
// idempotent — the last line for an ID wins — and make a torn final line
// (the kill -9 case) droppable without losing anything but that one write.
type journalEntry struct {
	Schema int    `json:"schema"`
	Record Record `json:"record"`
}

// journal is the append-only durability log. Every append is synced before
// it returns: the journal exists precisely for the crash case, and an
// unsynced crash journal is a comforting lie. Job throughput is bounded by
// simulations that run for milliseconds to minutes, so one fsync per state
// transition is noise.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// journalPath places the log under dir: dir/journal.jsonl.
func journalPath(dir string) string { return filepath.Join(dir, "journal.jsonl") }

// openJournal opens (creating if needed) the journal under dir for appends.
func openJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: journal dir: %w", err)
	}
	f, err := os.OpenFile(journalPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open journal: %w", err)
	}
	return &journal{f: f}, nil
}

// append writes one record snapshot and syncs it to stable storage.
func (j *journal) append(rec Record) error {
	blob, err := json.Marshal(journalEntry{Schema: SchemaVersion, Record: rec})
	if err != nil {
		return fmt.Errorf("jobs: encode journal entry: %w", err)
	}
	blob = append(blob, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(blob); err != nil {
		return fmt.Errorf("jobs: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("jobs: sync journal: %w", err)
	}
	return nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// replayJournal reads the journal under dir and returns the surviving
// records in first-seen order (last snapshot per ID wins). Corrupt or
// torn lines — the expected debris of a kill -9 — and entries from other schema
// versions are skipped, not errors: the journal is a recovery aid, and the
// worst case of a dropped line is recomputing one job. A missing file is an
// empty history.
func replayJournal(dir string) ([]Record, error) {
	f, err := os.Open(journalPath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: open journal for replay: %w", err)
	}
	defer f.Close()
	byID := make(map[string]int)
	var order []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue // torn or corrupt line
		}
		if e.Schema != SchemaVersion || e.Record.ID == "" {
			continue
		}
		if ValidateID(e.Record.ID) != nil {
			continue
		}
		if i, ok := byID[e.Record.ID]; ok {
			order[i] = e.Record
			continue
		}
		byID[e.Record.ID] = len(order)
		order = append(order, e.Record)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("jobs: scan journal: %w", err)
	}
	return order, nil
}

// compactJournal rewrites the journal as one snapshot per record via
// write-to-temp-then-rename, so history from previous runs stops growing
// the file and a crash mid-compaction leaves the old journal intact.
func compactJournal(dir string, recs []Record) error {
	// First boot runs compaction before the first append, so the directory
	// may not exist yet.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("jobs: journal dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "journal.compact*")
	if err != nil {
		return fmt.Errorf("jobs: compact journal: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, rec := range recs {
		blob, err := json.Marshal(journalEntry{Schema: SchemaVersion, Record: rec})
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("jobs: compact journal: %w", err)
		}
		if _, err := w.Write(append(blob, '\n')); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("jobs: compact journal: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: compact journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: compact journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: compact journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), journalPath(dir)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: compact journal: %w", err)
	}
	return nil
}
