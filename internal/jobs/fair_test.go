package jobs

import (
	"fmt"
	"testing"
	"time"
)

func drain(q *fairQueue, n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		id, _, ok := q.dequeue()
		if !ok {
			break
		}
		out = append(out, id)
	}
	return out
}

func TestFairQueueInterleavesEqualWeights(t *testing.T) {
	q := newFairQueue(nil)
	now := time.Now()
	for i := 0; i < 3; i++ {
		q.enqueue("a", fmt.Sprintf("a%d", i), 1, now)
	}
	for i := 0; i < 3; i++ {
		q.enqueue("b", fmt.Sprintf("b%d", i), 1, now)
	}
	got := drain(q, 6)
	want := []string{"a0", "b0", "a1", "b1", "a2", "b2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", got, want)
		}
	}
}

func TestFairQueueHonorsWeights(t *testing.T) {
	q := newFairQueue(map[string]float64{"heavy": 2})
	now := time.Now()
	for i := 0; i < 12; i++ {
		q.enqueue("heavy", fmt.Sprintf("h%d", i), 1, now)
		q.enqueue("light", fmt.Sprintf("l%d", i), 1, now)
	}
	counts := map[byte]int{}
	for _, id := range drain(q, 9) {
		counts[id[0]]++
	}
	// Weight 2 vs 1 → the heavy tenant gets ~2/3 of early dequeues.
	if counts['h'] != 6 || counts['l'] != 3 {
		t.Fatalf("first 9 dequeues: heavy=%d light=%d, want 6/3", counts['h'], counts['l'])
	}
}

func TestFairQueueBacklogCannotStarveNewcomer(t *testing.T) {
	q := newFairQueue(nil)
	now := time.Now()
	for i := 0; i < 100; i++ {
		q.enqueue("hog", fmt.Sprintf("hog%d", i), 1, now)
	}
	// Take a few so the virtual clock has advanced past the hog's early tags.
	drain(q, 5)
	q.enqueue("newbie", "n0", 1, now)
	// The newcomer's tag starts at the current virtual time + 1, so it must
	// surface within the next couple of dequeues, not after the 95-deep backlog.
	got := drain(q, 2)
	if got[0] != "n0" && got[1] != "n0" {
		t.Fatalf("newcomer buried behind backlog: next dequeues %v", got)
	}
}

func TestFairQueueRemoveAndClose(t *testing.T) {
	q := newFairQueue(nil)
	now := time.Now()
	q.enqueue("a", "a0", 1, now)
	q.enqueue("a", "a1", 1, now)
	if !q.remove("a0") {
		t.Fatal("remove existing item failed")
	}
	if q.remove("a0") {
		t.Fatal("remove returned true twice for one item")
	}
	if q.depth() != 1 {
		t.Fatalf("depth %d after remove, want 1", q.depth())
	}
	if id, _, ok := q.dequeue(); !ok || id != "a1" {
		t.Fatalf("dequeue after remove = %q ok=%v", id, ok)
	}

	done := make(chan bool)
	go func() {
		_, _, ok := q.dequeue() // blocks: queue is empty
		done <- ok
	}()
	q.close()
	if ok := <-done; ok {
		t.Fatal("dequeue on closed queue reported ok")
	}
}

func TestFairQueueOldest(t *testing.T) {
	q := newFairQueue(nil)
	if _, ok := q.oldest(); ok {
		t.Fatal("empty queue reported an oldest item")
	}
	early := time.Now().Add(-time.Minute)
	q.enqueue("a", "a0", 1, time.Now())
	q.enqueue("b", "b0", 1, early)
	got, ok := q.oldest()
	if !ok || !got.Equal(early) {
		t.Fatalf("oldest = %v ok=%v, want %v", got, ok, early)
	}
}

func TestLimiter(t *testing.T) {
	clock := time.Unix(1000, 0)
	l := NewLimiter(1, 2)
	l.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("t"); !ok {
			t.Fatalf("burst token %d denied", i)
		}
	}
	ok, retry := l.Allow("t")
	if ok {
		t.Fatal("third immediate request allowed past burst=2")
	}
	if retry <= 0 || retry > time.Second+time.Millisecond {
		t.Fatalf("retryAfter %v, want (0, 1s]", retry)
	}
	clock = clock.Add(1100 * time.Millisecond)
	if ok, _ := l.Allow("t"); !ok {
		t.Fatal("request denied after refill interval")
	}
	// Tenants are independent buckets.
	if ok, _ := l.Allow("other"); !ok {
		t.Fatal("fresh tenant denied")
	}
}

func TestLimiterDisabledAndNil(t *testing.T) {
	var nilLimiter *Limiter
	if ok, _ := nilLimiter.Allow("t"); !ok {
		t.Fatal("nil limiter denied")
	}
	l := NewLimiter(0, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("t"); !ok {
			t.Fatal("disabled limiter denied")
		}
	}
}

func TestLimiterBoundsBucketMap(t *testing.T) {
	clock := time.Unix(1000, 0)
	l := NewLimiter(1, 1)
	l.now = func() time.Time { return clock }
	for i := 0; i < maxBuckets+100; i++ {
		// Advance the clock so earlier buckets are fully refilled and evictable.
		clock = clock.Add(2 * time.Second)
		l.Allow(fmt.Sprintf("tenant-%d", i))
	}
	if n := len(l.buckets); n > maxBuckets+1 {
		t.Fatalf("bucket map grew to %d, want bounded near %d", n, maxBuckets)
	}
}
