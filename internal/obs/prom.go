package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative `_bucket{le="..."}` series plus `_sum` and `_count`. Metrics
// appear in name order, so the same registry contents always render the same
// bytes — suitable for golden tests and for scrape endpoints alike.
//
// A metric registered with labels baked into its name — `base{k="v"}` — is
// rendered as one series of the `base` family: HELP and TYPE are emitted
// once per family (name order keeps same-family series adjacent), and for
// histograms the labels merge with the `le` label on every bucket line.
// Histograms registered via HistogramScale render bounds and sum multiplied
// by their scale.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, m := range s.Metrics {
		base, labels := splitLabels(m.Name)
		if base != lastFamily {
			lastFamily = base
			help := m.Help
			if m.Unit != "" {
				help += " (" + m.Unit + ")"
			}
			if help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, escapeHelp(help)); err != nil {
					return err
				}
			}
			typ := m.Type
			if typ == "" {
				typ = "untyped"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typ); err != nil {
				return err
			}
		}
		switch m.Type {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "%s %d\n", sample(base, labels), *m.Value); err != nil {
				return err
			}
		case "histogram":
			cum := int64(0)
			for _, b := range m.Buckets {
				cum += b.Count
				le := "+Inf"
				if b.Le != math.MaxInt64 {
					le = scaled(b.Le, m.Scale)
				}
				bucketLabels := `le="` + le + `"`
				if labels != "" {
					bucketLabels = labels + "," + bucketLabels
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, bucketLabels, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %s\n%s %d\n",
				sample(base+"_sum", labels), scaled(m.Sum, m.Scale),
				sample(base+"_count", labels), m.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePrometheus snapshots the registry and renders it in the Prometheus
// text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// splitLabels separates `base{k="v"}` into base and the label body; a plain
// name comes back with empty labels.
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

func sample(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// scaled renders an int64 observation for exposition: raw when scale is
// zero, otherwise multiplied into a float with the shortest round-trip
// representation.
func scaled(v int64, scale float64) string {
	if scale == 0 {
		return strconv.FormatInt(v, 10)
	}
	return strconv.FormatFloat(float64(v)*scale, 'g', -1, 64)
}

// escapeHelp escapes the two characters the exposition format reserves in
// HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
