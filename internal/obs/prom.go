package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative `_bucket{le="..."}` series plus `_sum` and `_count`. Metrics
// appear in name order, so the same registry contents always render the same
// bytes — suitable for golden tests and for scrape endpoints alike.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, m := range s.Metrics {
		help := m.Help
		if m.Unit != "" {
			help += " (" + m.Unit + ")"
		}
		if help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, escapeHelp(help)); err != nil {
				return err
			}
		}
		switch m.Type {
		case "counter", "gauge":
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m.Name, m.Type, m.Name, *m.Value); err != nil {
				return err
			}
		case "histogram":
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", m.Name); err != nil {
				return err
			}
			cum := int64(0)
			for _, b := range m.Buckets {
				cum += b.Count
				le := "+Inf"
				if b.Le != math.MaxInt64 {
					le = fmt.Sprintf("%d", b.Le)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", m.Name, m.Sum, m.Name, m.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePrometheus snapshots the registry and renders it in the Prometheus
// text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// escapeHelp escapes the two characters the exposition format reserves in
// HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
