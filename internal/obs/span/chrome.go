package span

import (
	"io"
	"sort"

	"multiscalar/internal/obs"
)

// WriteChrome exports one completed trace as Chrome trace-event JSON, one
// process ("pid") per participating process — leader, each worker — with the
// root's process first, and greedy lane packing within each process so
// overlapping spans (parallel jobs in one sweep) land on separate tracks.
// Timestamps are microseconds relative to the earliest span, so moderate
// clock skew between machines shifts tracks but never produces negative
// times.
func WriteChrome(w io.Writer, td *TraceData) error {
	spans := append([]SpanData(nil), td.Spans...)
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Duration > spans[j].Duration
	})

	var base int64
	if len(spans) > 0 {
		base = spans[0].Start
	}

	// Stable pid assignment: root's process is pid 0, others sorted.
	procs := []string{td.Root.Process}
	seen := map[string]bool{td.Root.Process: true}
	var rest []string
	for _, s := range spans {
		if !seen[s.Process] {
			seen[s.Process] = true
			rest = append(rest, s.Process)
		}
	}
	sort.Strings(rest)
	procs = append(procs, rest...)
	pid := make(map[string]int, len(procs))
	for i, p := range procs {
		pid[p] = i
	}

	events := make([]obs.ChromeEvent, 0, len(spans)+len(procs))
	for i, p := range procs {
		events = append(events, obs.ChromeEvent{
			Name: "process_name", Ph: "M", Pid: i, Tid: 0,
			Args: map[string]any{"name": p},
		})
	}

	// lanes[pid] holds, per track, the end time (µs) of its last slice;
	// each span takes the first lane it fits on.
	lanes := make(map[int][]int64)
	for _, s := range spans {
		ts := (s.Start - base) / 1000
		dur := s.Duration / 1000
		args := map[string]any{
			"span_id":   string(s.SpanID),
			"parent_id": string(s.Parent),
			"status":    s.Status,
		}
		if s.Error != "" {
			args["error"] = s.Error
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		p := pid[s.Process]
		if s.Duration == 0 {
			// Instant events (Event markers: steals, reassignments).
			events = append(events, obs.ChromeEvent{
				Name: s.Name, Ph: "i", Ts: ts, Pid: p, Tid: 0, Scope: "t",
				Args: args,
			})
			continue
		}
		if dur < 1 {
			dur = 1
		}
		tid := 0
		for ; tid < len(lanes[p]); tid++ {
			if lanes[p][tid] <= ts {
				break
			}
		}
		if tid == len(lanes[p]) {
			lanes[p] = append(lanes[p], 0)
		}
		lanes[p][tid] = ts + dur
		events = append(events, obs.ChromeEvent{
			Name: s.Name, Ph: "X", Ts: ts, Dur: dur, Pid: p, Tid: tid,
			Args: args,
		})
	}
	return obs.WriteChromeEvents(w, events)
}
