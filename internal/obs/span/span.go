// Package span is the distributed-tracing layer: lightweight spans with
// parent links that follow one request across processes — serve admission →
// grid single-flight → shard scheduler → remote worker → sim and back.
//
// Design rules, in priority order:
//
//   - Pay for use. A nil *Tracer (and the nil *Span every Start returns under
//     it) makes every call in this package a no-op: no allocation, no
//     time.Now, no atomics. An untraced run is byte-identical to a build
//     without this package.
//   - Bounded memory. Spans per trace, concurrently active traces, and the
//     flight-recorder retention sets are all capped; overflow increments a
//     drop counter instead of growing.
//   - Wall-clock start, monotonic duration. SpanData.Start is UnixNano so
//     spans from different processes land on one timeline; Duration is
//     measured with Go's monotonic clock so it never goes negative.
//
// Cross-process propagation is explicit: HTTP surfaces carry the context in
// the X-Ms-Trace header, the dist wire protocol carries it as JSON fields
// (PullResponse.Trace out, ReportRequest.Spans back).
package span

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// TraceID identifies one end-to-end request: 16 random bytes, hex-encoded.
// Random (not sequential) so independently-started processes never collide.
type TraceID string

// SpanID identifies one span within a trace: 8 random bytes, hex-encoded.
type SpanID string

// NewTraceID returns a fresh random trace ID.
func NewTraceID() TraceID {
	var b [16]byte
	mustRead(b[:])
	return TraceID(hex.EncodeToString(b[:]))
}

func newSpanID() SpanID {
	var b [8]byte
	mustRead(b[:])
	return SpanID(hex.EncodeToString(b[:]))
}

func mustRead(b []byte) {
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on the platforms we run on; if it does the
		// process has bigger problems than tracing.
		panic(fmt.Sprintf("span: crypto/rand: %v", err))
	}
}

// SpanContext is the portable reference to a span: enough to parent a child
// in another process. The zero value is invalid.
type SpanContext struct {
	TraceID TraceID `json:"trace_id"`
	SpanID  SpanID  `json:"span_id"`
}

// Valid reports whether both halves are present.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

// Header is the HTTP header that carries a SpanContext between processes.
const Header = "X-Ms-Trace"

// FormatHeader renders sc as "<traceid>-<spanid>" for the X-Ms-Trace header.
func FormatHeader(sc SpanContext) string {
	return string(sc.TraceID) + "-" + string(sc.SpanID)
}

// ParseHeader parses an X-Ms-Trace value. It is strict — 32 hex chars, a
// dash, 16 hex chars — so a malformed or hostile header degrades to "start a
// fresh trace" rather than poisoning the recorder with junk IDs.
func ParseHeader(s string) (SpanContext, bool) {
	const tlen, slen = 32, 16
	if len(s) != tlen+1+slen || s[tlen] != '-' {
		return SpanContext{}, false
	}
	if !isHex(s[:tlen]) || !isHex(s[tlen+1:]) {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: TraceID(s[:tlen]), SpanID: SpanID(s[tlen+1:])}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Status values for a completed span.
const (
	StatusOK    = "ok"
	StatusError = "error"
)

// SpanData is the immutable record of a completed (or instant) span. It is
// what crosses process boundaries and what the flight recorder retains.
type SpanData struct {
	TraceID  TraceID           `json:"trace_id"`
	SpanID   SpanID            `json:"span_id"`
	Parent   SpanID            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Process  string            `json:"process"`
	Start    int64             `json:"start_unix_ns"`
	Duration int64             `json:"duration_ns"`
	Status   string            `json:"status"`
	Error    string            `json:"error,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Span is a live, in-progress span. All methods are safe on a nil receiver
// and safe for concurrent use; End is idempotent (first call wins).
type Span struct {
	tr    *Tracer
	start time.Time // monotonic; duration source
	final bool      // ending this span completes its trace in this process

	mu    sync.Mutex
	data  SpanData
	ended bool
}

// Context returns the portable reference to this span, for propagation.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.data.TraceID, SpanID: s.data.SpanID}
}

// TraceID returns the span's trace ID ("" on a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// SetAttr attaches a key/value attribute. No-op on nil or ended spans.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.lock()
	if !s.ended {
		if s.data.Attrs == nil {
			s.data.Attrs = make(map[string]string, 4)
		}
		s.data.Attrs[key] = value
	}
	s.unlock()
}

// Event records an instant (zero-duration) child span — for point-in-time
// facts like a steal or a lease reassignment that have no extent of their
// own but belong on the trace timeline.
func (s *Span) Event(name string, kv ...string) {
	if s == nil {
		return
	}
	d := SpanData{
		TraceID: s.data.TraceID,
		SpanID:  newSpanID(),
		Parent:  s.data.SpanID,
		Name:    name,
		Process: s.tr.Process(),
		Start:   time.Now().UnixNano(),
		Status:  StatusOK,
		Attrs:   attrMap(kv),
	}
	s.tr.append(d, false)
}

// End completes the span. err != nil marks it (and hence its trace) errored.
// Safe to call more than once; only the first call records anything.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.lock()
	if s.ended {
		s.unlock()
		return
	}
	s.ended = true
	s.data.Duration = int64(time.Since(s.start))
	if err != nil {
		s.data.Status = StatusError
		s.data.Error = err.Error()
	} else {
		s.data.Status = StatusOK
	}
	d := s.data
	s.unlock()
	s.tr.finish(d, s.final)
}

func (s *Span) lock()   { s.mu.Lock() }
func (s *Span) unlock() { s.mu.Unlock() }

func attrMap(kv []string) map[string]string {
	if len(kv) < 2 {
		return nil
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

type ctxKey struct{}

// ContextWith returns ctx carrying s as the current span.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span, or nil if ctx is untraced.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a child of the span carried by ctx. On an untraced ctx it
// returns (ctx, nil) without allocating or reading the clock — this call is
// sprinkled through hot paths, so the disabled cost must be a context lookup
// and nothing else.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.tr.newSpan(parent.data.TraceID, parent.data.SpanID, name, false)
	return ContextWith(ctx, child), child
}
