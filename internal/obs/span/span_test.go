package span

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"multiscalar/internal/obs"
)

func TestHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: newSpanID()}
	got, ok := ParseHeader(FormatHeader(sc))
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
	for _, bad := range []string{
		"", "x", strings.Repeat("g", 32) + "-" + strings.Repeat("a", 16),
		strings.Repeat("a", 32) + ":" + strings.Repeat("a", 16),
		strings.Repeat("a", 31) + "-" + strings.Repeat("a", 17),
		strings.Repeat("A", 32) + "-" + strings.Repeat("a", 16), // uppercase rejected
	} {
		if _, ok := ParseHeader(bad); ok {
			t.Errorf("ParseHeader(%q) accepted malformed input", bad)
		}
	}
}

// TestNilTracerIsFullyInert: every operation on a nil tracer and the nil
// spans it yields must be a no-op — this is what makes instrumented code
// safe to leave in place untraced.
func TestNilTracerIsFullyInert(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRoot(context.Background(), "root")
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	if FromContext(ctx) != nil {
		t.Fatal("nil tracer polluted the context")
	}
	ctx2, child := Start(ctx, "child")
	if child != nil || ctx2 != ctx {
		t.Fatal("Start on an untraced context must return it unchanged")
	}
	child.SetAttr("k", "v")
	child.Event("e")
	child.End(nil)
	if child.TraceID() != "" || child.Context().Valid() {
		t.Fatal("nil span leaked identity")
	}
	tr.Record(SpanContext{}, "x", time.Now(), 0, nil)
	tr.Ingest([]SpanData{{TraceID: "t"}})
	if tr.Collect("t") != nil || tr.Recorder() != nil || tr.InFlight() != nil {
		t.Fatal("nil tracer retained state")
	}
}

func TestRootChildTreeAndRecorder(t *testing.T) {
	tr := New(Options{Process: "test"})
	ctx, root := tr.StartRoot(context.Background(), "request")
	root.SetAttr("path", "/v1/simulate")

	cctx, child := Start(ctx, "grid.run")
	_, grand := Start(cctx, "sim.exec")
	grand.End(nil)
	child.End(nil)

	if got := len(tr.InFlight()); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}
	root.End(nil)
	if got := len(tr.InFlight()); got != 0 {
		t.Fatalf("InFlight after End = %d, want 0", got)
	}

	td := tr.Recorder().Get(root.TraceID())
	if td == nil {
		t.Fatal("completed trace not in recorder")
	}
	if td.Errored || td.Status() != StatusOK {
		t.Errorf("clean trace marked errored: %+v", td)
	}
	if len(td.Spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(td.Spans), td.Spans)
	}
	byName := map[string]SpanData{}
	for _, s := range td.Spans {
		byName[s.Name] = s
	}
	if byName["grid.run"].Parent != td.Root.SpanID {
		t.Errorf("grid.run parent = %q, want root %q", byName["grid.run"].Parent, td.Root.SpanID)
	}
	if byName["sim.exec"].Parent != byName["grid.run"].SpanID {
		t.Errorf("sim.exec parent = %q, want grid.run %q", byName["sim.exec"].Parent, byName["grid.run"].SpanID)
	}
	if td.Root.Attrs["path"] != "/v1/simulate" {
		t.Errorf("root attrs = %v", td.Root.Attrs)
	}
	if td.Root.Process != "test" {
		t.Errorf("process = %q", td.Root.Process)
	}
}

func TestEndIsIdempotentAndError(t *testing.T) {
	tr := New(Options{})
	_, root := tr.StartRoot(context.Background(), "r")
	root.End(errors.New("boom"))
	root.End(nil) // second End must not re-record or clear the error
	td := tr.Recorder().Get(root.TraceID())
	if td == nil || !td.Errored || td.Root.Error != "boom" {
		t.Fatalf("errored trace mis-recorded: %+v", td)
	}
	if len(td.Spans) != 1 {
		t.Errorf("double End duplicated the span: %d", len(td.Spans))
	}
}

// TestWorkerFragmentStitching exercises the cross-process flow: a "leader"
// tracer dispatches, a "worker" tracer records under the remote parent,
// Collect ships the fragment, Ingest merges it while the root is open.
func TestWorkerFragmentStitching(t *testing.T) {
	leader := New(Options{Process: "leader"})
	worker := New(Options{Process: "w1"})

	ctx, root := leader.StartRoot(context.Background(), "dispatch")
	sc := root.Context()

	// Worker side, as if on another machine.
	worker.Record(sc, "worker.pull", time.Now().Add(-time.Millisecond), time.Millisecond, nil)
	_, exec := worker.StartRemote(context.Background(), sc, "worker.exec")
	exec.End(nil)
	frag := worker.Collect(sc.TraceID)
	if len(frag) != 2 {
		t.Fatalf("fragment has %d spans, want 2", len(frag))
	}
	if worker.Collect(sc.TraceID) != nil {
		t.Error("Collect must drain the fragment")
	}

	leader.Ingest(frag)
	root.End(nil)
	_ = ctx

	td := leader.Recorder().Get(root.TraceID())
	if td == nil {
		t.Fatal("trace not recorded")
	}
	procs := map[string]bool{}
	for _, s := range td.Spans {
		procs[s.Process] = true
		if s.Parent != "" && s.Parent != root.Context().SpanID {
			// both worker spans hang directly off the root here
			if s.TraceID != root.TraceID() {
				t.Errorf("span %q in wrong trace", s.Name)
			}
		}
	}
	if !procs["leader"] || !procs["w1"] {
		t.Errorf("processes in trace: %v, want leader+w1", procs)
	}

	// Spans for unknown traces are dropped, not accumulated.
	leader.Ingest([]SpanData{{TraceID: "deadbeef", Name: "stray"}})
	if leader.Dropped() == 0 {
		t.Error("stray ingest not counted as dropped")
	}
}

func TestMaxSpansPerTraceBounds(t *testing.T) {
	tr := New(Options{MaxSpansPerTrace: 4})
	ctx, root := tr.StartRoot(context.Background(), "r")
	for i := 0; i < 10; i++ {
		_, sp := Start(ctx, "child")
		sp.End(nil)
	}
	root.End(nil)
	td := tr.Recorder().Get(root.TraceID())
	if len(td.Spans) != 4 {
		t.Errorf("stored %d spans, want cap 4", len(td.Spans))
	}
	if td.Dropped != 7 { // 10 children + root = 11 ends, 4 stored
		t.Errorf("dropped = %d, want 7", td.Dropped)
	}
}

func TestRecorderRetention(t *testing.T) {
	tr := New(Options{Ring: 4, SlowN: 2, ErrN: 2})
	finish := func(name string, dur time.Duration, fail error) TraceID {
		_, root := tr.StartRoot(context.Background(), name)
		root.lock()
		root.start = root.start.Add(-dur) // backdate for a deterministic duration
		root.unlock()
		root.End(fail)
		return root.TraceID()
	}

	slowID := finish("slow", time.Hour, nil)
	errID := finish("bad", time.Millisecond, errors.New("x"))
	var lastID TraceID
	for i := 0; i < 20; i++ {
		lastID = finish("filler", time.Duration(i)*time.Microsecond, nil)
	}

	rec := tr.Recorder()
	if rec.Get(slowID) == nil {
		t.Error("slowest trace evicted despite SlowN retention")
	}
	if rec.Get(errID) == nil {
		t.Error("errored trace evicted despite ErrN retention")
	}
	if rec.Get(lastID) == nil {
		t.Error("most recent trace missing from ring")
	}

	if got := rec.List(Filter{Status: StatusError}); len(got) != 1 || got[0].TraceID != errID {
		t.Errorf("error filter returned %d traces", len(got))
	}
	if got := rec.List(Filter{MinDuration: time.Minute}); len(got) != 1 || got[0].TraceID != slowID {
		t.Errorf("duration filter returned %d traces", len(got))
	}
	if got := rec.List(Filter{Limit: 3}); len(got) != 3 {
		t.Errorf("limit ignored: %d", len(got))
	}
}

func TestSpanMetricsHistograms(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Options{Metrics: reg})
	_, root := tr.StartRoot(context.Background(), "grid.run")
	root.End(nil)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `ms_span_duration_seconds_bucket{span="grid.run",le="`) {
		t.Errorf("span histogram missing from exposition:\n%s", out)
	}
	if !strings.Contains(out, `# TYPE ms_span_duration_seconds histogram`) {
		t.Errorf("family TYPE line missing:\n%s", out)
	}
}

func TestChromeExport(t *testing.T) {
	leader := New(Options{Process: "leader"})
	worker := New(Options{Process: "w1"})
	ctx, root := leader.StartRoot(context.Background(), "request")
	_, sp := Start(ctx, "grid.run")
	sp.Event("dist.steal", "worker", "w1")
	_, exec := worker.StartRemote(context.Background(), root.Context(), "worker.exec")
	exec.End(nil)
	leader.Ingest(worker.Collect(root.TraceID()))
	sp.End(nil)
	root.End(errors.New("partial"))

	td := leader.Recorder().Get(root.TraceID())
	var buf bytes.Buffer
	if err := WriteChrome(&buf, td); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("invalid chrome JSON: %v\n%s", err, buf.String())
	}
	procNames := map[string]int{}
	slices := map[string]bool{}
	sawInstant := false
	for _, e := range tr.TraceEvents {
		if e.Ts < 0 {
			t.Errorf("negative timestamp on %q", e.Name)
		}
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				procNames[e.Args["name"].(string)] = e.Pid
			}
		case "X":
			slices[e.Name] = true
		case "i":
			sawInstant = true
		}
	}
	if procNames["leader"] != 0 {
		t.Errorf("root process not pid 0: %v", procNames)
	}
	if _, ok := procNames["w1"]; !ok {
		t.Errorf("worker process missing a track: %v", procNames)
	}
	for _, want := range []string{"request", "grid.run", "worker.exec"} {
		if !slices[want] {
			t.Errorf("no X slice for %q", want)
		}
	}
	if !sawInstant {
		t.Error("steal event not exported as an instant")
	}
}

func TestDebugEndpoints(t *testing.T) {
	tr := New(Options{Process: "test"})
	mux := http.NewServeMux()
	RegisterDebug(mux, tr)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	ctx, root := tr.StartRoot(context.Background(), "request")
	_, child := Start(ctx, "grid.run")
	child.End(nil)

	// While the root is open it shows in /debug/requests.
	var inflight struct {
		Requests []InFlightTrace `json:"requests"`
	}
	getJSON(t, srv.URL+"/debug/requests", &inflight)
	if len(inflight.Requests) != 1 || inflight.Requests[0].Root != "request" {
		t.Fatalf("in-flight = %+v", inflight.Requests)
	}

	root.End(nil)
	id := string(root.TraceID())

	var list struct {
		Traces []Summary `json:"traces"`
	}
	getJSON(t, srv.URL+"/debug/traces", &list)
	if len(list.Traces) != 1 || list.Traces[0].TraceID != root.TraceID() {
		t.Fatalf("list = %+v", list.Traces)
	}
	getJSON(t, srv.URL+"/debug/traces?status=error", &list)
	if len(list.Traces) != 0 {
		t.Fatalf("error filter matched a clean trace")
	}

	var tree struct {
		TraceID string `json:"trace_id"`
		Tree    []struct {
			Name     string `json:"name"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"tree"`
	}
	getJSON(t, srv.URL+"/debug/traces/"+id, &tree)
	if len(tree.Tree) != 1 || tree.Tree[0].Name != "request" {
		t.Fatalf("tree roots = %+v", tree.Tree)
	}
	if len(tree.Tree[0].Children) != 1 || tree.Tree[0].Children[0].Name != "grid.run" {
		t.Fatalf("tree children = %+v", tree.Tree[0].Children)
	}

	resp, err := http.Get(srv.URL + "/debug/traces/" + id + "?format=chrome")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome download: %v %v", err, resp)
	}
	var chrome map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("chrome JSON: %v", err)
	}
	resp.Body.Close()
	if _, ok := chrome["traceEvents"]; !ok {
		t.Fatal("chrome export missing traceEvents")
	}

	for path, wantCode := range map[string]int{
		"/debug/traces/ffffffffffffffffffffffffffffffff": http.StatusNotFound,
		"/debug/traces?status=weird":                     http.StatusBadRequest,
		"/debug/traces?min_ms=-1":                        http.StatusBadRequest,
		"/debug/traces?limit=0":                          http.StatusBadRequest,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, wantCode)
		}
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

// TestConcurrentSpans runs overlapping traces under -race.
func TestConcurrentSpans(t *testing.T) {
	tr := New(Options{MaxActive: 8, Ring: 8})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				ctx, root := tr.StartRoot(context.Background(), fmt.Sprintf("g%d", g))
				_, c := Start(ctx, "child")
				c.SetAttr("i", "x")
				c.Event("tick")
				c.End(nil)
				root.End(nil)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if tr.Recorder().Len() != 400 {
		t.Errorf("recorded %d traces, want 400", tr.Recorder().Len())
	}
}
