package span

import (
	"sort"
	"sync"
	"time"
)

// TraceData is a completed trace as retained by the flight recorder.
type TraceData struct {
	TraceID TraceID    `json:"trace_id"`
	Root    SpanData   `json:"root"`
	Spans   []SpanData `json:"spans"` // completion order; includes the root
	Dropped int        `json:"dropped_spans,omitempty"`
	Errored bool       `json:"errored"`
}

// Duration is the root span's wall time.
func (td *TraceData) Duration() time.Duration {
	return time.Duration(td.Root.Duration)
}

// Status is the root's status, promoted to error if ANY span errored — a
// request that succeeded after an internal retry still shows where it bled.
func (td *TraceData) Status() string {
	if td.Errored {
		return StatusError
	}
	return StatusOK
}

// Summary is the list-view projection of a TraceData.
type Summary struct {
	TraceID    TraceID `json:"trace_id"`
	Name       string  `json:"name"`
	Process    string  `json:"process"`
	Start      int64   `json:"start_unix_ns"`
	DurationMS float64 `json:"duration_ms"`
	Status     string  `json:"status"`
	Spans      int     `json:"spans"`
	Dropped    int     `json:"dropped_spans,omitempty"`
}

func (td *TraceData) summary() Summary {
	return Summary{
		TraceID:    td.TraceID,
		Name:       td.Root.Name,
		Process:    td.Root.Process,
		Start:      td.Root.Start,
		DurationMS: float64(td.Root.Duration) / 1e6,
		Status:     td.Status(),
		Spans:      len(td.Spans),
		Dropped:    td.Dropped,
	}
}

// Filter selects traces from the recorder.
type Filter struct {
	Status      string        // "", "ok", or "error"
	MinDuration time.Duration // keep traces at least this long
	Limit       int           // max results (default 100)
}

// Recorder is the flight recorder: a fixed ring of recently completed
// traces, plus two retention sets that survive ring churn — the slowest N
// by root duration and the most recent N errored. Everything is bounded;
// Add never blocks and never grows without limit.
type Recorder struct {
	mu    sync.Mutex
	ring  []*TraceData // circular, next is the write cursor
	next  int
	slow  []*TraceData // sorted by duration, descending; cap slowN
	slowN int
	errs  []*TraceData // newest first; cap errN
	errN  int
	adds  int64
}

func newRecorder(ring, slowN, errN int) *Recorder {
	return &Recorder{
		ring:  make([]*TraceData, ring),
		slowN: slowN,
		errs:  make([]*TraceData, 0, errN),
		errN:  errN,
	}
}

// Add retains a completed trace.
func (r *Recorder) Add(td *TraceData) {
	if r == nil || td == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.adds++
	r.ring[r.next] = td
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
	// Slowest-N: insertion sort into a tiny slice.
	i := sort.Search(len(r.slow), func(i int) bool {
		return r.slow[i].Root.Duration < td.Root.Duration
	})
	if i < r.slowN {
		r.slow = append(r.slow, nil)
		copy(r.slow[i+1:], r.slow[i:])
		r.slow[i] = td
		if len(r.slow) > r.slowN {
			r.slow = r.slow[:r.slowN]
		}
	}
	if td.Errored {
		r.errs = append([]*TraceData{td}, r.errs...)
		if len(r.errs) > r.errN {
			r.errs = r.errs[:r.errN]
		}
	}
}

// Get returns a retained trace by ID, or nil.
func (r *Recorder) Get(id TraceID) *TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, td := range r.ring {
		if td != nil && td.TraceID == id {
			return td
		}
	}
	for _, td := range r.slow {
		if td.TraceID == id {
			return td
		}
	}
	for _, td := range r.errs {
		if td.TraceID == id {
			return td
		}
	}
	return nil
}

// List returns retained traces matching f, newest first.
func (r *Recorder) List(f Filter) []*TraceData {
	if r == nil {
		return nil
	}
	if f.Limit <= 0 {
		f.Limit = 100
	}
	r.mu.Lock()
	seen := make(map[TraceID]bool)
	var all []*TraceData
	collect := func(tds []*TraceData) {
		for _, td := range tds {
			if td == nil || seen[td.TraceID] {
				continue
			}
			seen[td.TraceID] = true
			all = append(all, td)
		}
	}
	collect(r.ring)
	collect(r.slow)
	collect(r.errs)
	r.mu.Unlock()

	out := all[:0]
	for _, td := range all {
		if f.Status != "" && td.Status() != f.Status {
			continue
		}
		if td.Duration() < f.MinDuration {
			continue
		}
		out = append(out, td)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Root.Start > out[j].Root.Start })
	if len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// Len reports how many traces have ever been added.
func (r *Recorder) Len() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.adds
}
