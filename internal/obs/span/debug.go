package span

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// RegisterDebug mounts the live introspection surface on mux:
//
//	GET /debug/traces              list retained traces (?status=, ?min_ms=, ?limit=)
//	GET /debug/traces/{id}         one trace as a span tree (?format=chrome for trace-event JSON)
//	GET /debug/requests            in-flight traces with age and current span
//
// Both mssrv and the msreport leader call this when tracing is enabled; an
// untraced process never mounts the routes, so /debug 404s exactly like any
// other unknown path.
func RegisterDebug(mux *http.ServeMux, t *Tracer) {
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		f := Filter{Status: r.URL.Query().Get("status")}
		if f.Status != "" && f.Status != StatusOK && f.Status != StatusError {
			debugError(w, http.StatusBadRequest, `status must be "ok" or "error"`)
			return
		}
		if v := r.URL.Query().Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil || ms < 0 {
				debugError(w, http.StatusBadRequest, "min_ms must be a non-negative number")
				return
			}
			f.MinDuration = time.Duration(ms * float64(time.Millisecond))
		}
		if v := r.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				debugError(w, http.StatusBadRequest, "limit must be a positive integer")
				return
			}
			f.Limit = n
		}
		tds := t.Recorder().List(f)
		sums := make([]Summary, len(tds))
		for i, td := range tds {
			sums[i] = td.summary()
		}
		debugJSON(w, map[string]any{"traces": sums})
	})

	mux.HandleFunc("GET /debug/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := TraceID(r.PathValue("id"))
		td := t.Recorder().Get(id)
		if td == nil {
			debugError(w, http.StatusNotFound, "trace not retained (expired from the flight recorder, or never finished)")
			return
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="trace-`+string(id)+`.json"`)
			if err := WriteChrome(w, td); err != nil {
				// Headers are gone; nothing useful left to send.
				return
			}
			return
		}
		debugJSON(w, map[string]any{
			"trace_id":      td.TraceID,
			"status":        td.Status(),
			"duration_ms":   float64(td.Root.Duration) / 1e6,
			"dropped_spans": td.Dropped,
			"tree":          spanTree(td),
		})
	})

	mux.HandleFunc("GET /debug/requests", func(w http.ResponseWriter, r *http.Request) {
		debugJSON(w, map[string]any{"requests": t.InFlight()})
	})
}

// treeNode is one span plus its children, for the JSON tree view.
type treeNode struct {
	SpanData
	Children []*treeNode `json:"children,omitempty"`
}

// spanTree links spans by parent ID. Spans whose parent is not in the trace
// (the root, plus anything orphaned by drops) become top-level nodes.
// Children sort by start time.
func spanTree(td *TraceData) []*treeNode {
	nodes := make(map[SpanID]*treeNode, len(td.Spans))
	for _, s := range td.Spans {
		nodes[s.SpanID] = &treeNode{SpanData: s}
	}
	var roots []*treeNode
	for _, s := range td.Spans {
		n := nodes[s.SpanID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != s.SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortKids func(ns []*treeNode)
	sortKids = func(ns []*treeNode) {
		sortByStart(ns)
		for _, n := range ns {
			sortKids(n.Children)
		}
	}
	sortKids(roots)
	return roots
}

func sortByStart(ns []*treeNode) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].Start < ns[j-1].Start; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

func debugJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// An encode error here means the client went away mid-write; there is
	// no channel left to report on.
	_ = enc.Encode(v)
}

func debugError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": map[string]any{"code": code, "message": msg}})
}
