package span

import (
	"context"
	"sort"
	"sync"
	"time"

	"multiscalar/internal/obs"
)

// Options configures a Tracer. The zero value gets sensible defaults.
type Options struct {
	// Process names this process on cross-process timelines ("mssrv",
	// "msreport", a worker's leader-assigned name). Default "proc".
	Process string

	// Ring is the flight-recorder capacity in completed traces (default
	// 128). Slowest/errored retention is separate — see SlowN/ErrN.
	Ring int

	// SlowN completed traces with the longest root duration are retained
	// even after the ring has recycled them (default 16).
	SlowN int

	// ErrN most recent errored traces are retained likewise (default 64).
	ErrN int

	// MaxSpansPerTrace caps the spans recorded for one trace; excess spans
	// still run (and still feed metrics) but are counted as dropped rather
	// than stored (default 512).
	MaxSpansPerTrace int

	// MaxActive caps concurrently in-flight traces; beyond it the oldest
	// is evicted unfinished (default 1024).
	MaxActive int

	// Metrics, when set, receives per-hop span latency histograms
	// (ms_span_duration_seconds{span="<name>"}).
	Metrics *obs.Registry
}

// activeTrace accumulates spans for one in-flight trace.
type activeTrace struct {
	seq      uint64 // admission order, for eviction
	root     bool   // a finalizing span has been claimed in this process
	rootName string
	start    int64 // unix ns of the earliest registered span
	spans    []SpanData
	open     int // started-but-not-ended spans
	dropped  int
	current  string // name of the most recently started still-open span
	curID    SpanID
}

// Tracer creates spans, accumulates in-flight traces, and hands completed
// ones to the flight recorder. A nil *Tracer is valid and disables
// everything. On worker processes the same type accumulates trace fragments
// that Collect ships back to the leader.
type Tracer struct {
	maxSpans  int
	maxActive int
	rec       *Recorder
	metrics   *obs.Registry

	procMu  sync.Mutex
	process string

	mu      sync.Mutex
	active  map[TraceID]*activeTrace
	seq     uint64
	dropped int64 // spans that arrived for unknown or evicted traces

	histMu sync.Mutex
	hists  map[string]*obs.Histogram
}

// spanBuckets spans 1µs to ~17s exponentially — wide enough for a queue-wait
// blip and a full experiment sweep on one scale.
var spanBuckets = obs.ExpBuckets(1000, 8, 10)

// New builds a Tracer. Returns a working tracer even for Options{}.
func New(o Options) *Tracer {
	if o.Process == "" {
		o.Process = "proc"
	}
	if o.Ring <= 0 {
		o.Ring = 128
	}
	if o.SlowN <= 0 {
		o.SlowN = 16
	}
	if o.ErrN <= 0 {
		o.ErrN = 64
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = 512
	}
	if o.MaxActive <= 0 {
		o.MaxActive = 1024
	}
	return &Tracer{
		maxSpans:  o.MaxSpansPerTrace,
		maxActive: o.MaxActive,
		rec:       newRecorder(o.Ring, o.SlowN, o.ErrN),
		metrics:   o.Metrics,
		process:   o.Process,
		active:    make(map[TraceID]*activeTrace),
		hists:     make(map[string]*obs.Histogram),
	}
}

// Process returns the tracer's process name ("" on nil).
func (t *Tracer) Process() string {
	if t == nil {
		return ""
	}
	t.procMu.Lock()
	defer t.procMu.Unlock()
	return t.process
}

// SetProcess renames the process — used by workers once the leader assigns
// their fleet name, so trace tracks read "w1"/"w2" instead of a local guess.
func (t *Tracer) SetProcess(name string) {
	if t == nil || name == "" {
		return
	}
	t.procMu.Lock()
	t.process = name
	t.procMu.Unlock()
}

// Recorder exposes the flight recorder (nil on a nil tracer).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Dropped returns how many spans were discarded because their trace was
// unknown, evicted, or over the per-trace cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.dropped
	for _, at := range t.active {
		n += int64(at.dropped)
	}
	return n
}

// StartRoot opens a new trace and its root span. Ending the returned span
// completes the trace and hands it to the recorder.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := t.register(NewTraceID(), "", name, true)
	return ContextWith(ctx, s), s
}

// StartLinked opens a root-like span parented to a remote span context —
// the serve middleware uses it when a request arrives with X-Ms-Trace, so
// the caller's trace ID is kept but this process still records (and
// finalizes) its own view of the request. An invalid parent degrades to
// StartRoot.
func (t *Tracer) StartLinked(ctx context.Context, parent SpanContext, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if !parent.Valid() {
		return t.StartRoot(ctx, name)
	}
	s := t.register(parent.TraceID, parent.SpanID, name, true)
	return ContextWith(ctx, s), s
}

// StartRemote opens a span under a remote parent WITHOUT claiming trace
// completion — the worker side of a dispatched job. The spans accumulate as
// a fragment until Collect ships them back. An invalid parent means the
// leader isn't tracing; nothing is recorded.
func (t *Tracer) StartRemote(ctx context.Context, parent SpanContext, name string) (context.Context, *Span) {
	if t == nil || !parent.Valid() {
		return ctx, nil
	}
	s := t.register(parent.TraceID, parent.SpanID, name, false)
	return ContextWith(ctx, s), s
}

// Record writes an already-measured span under a remote parent — for hops
// whose extent is only known after the fact, like the pull RTT that
// delivered a job.
func (t *Tracer) Record(parent SpanContext, name string, start time.Time, dur time.Duration, err error) {
	if t == nil || !parent.Valid() {
		return
	}
	d := SpanData{
		TraceID:  parent.TraceID,
		SpanID:   newSpanID(),
		Parent:   parent.SpanID,
		Name:     name,
		Process:  t.Process(),
		Start:    start.UnixNano(),
		Duration: int64(dur),
		Status:   StatusOK,
	}
	if err != nil {
		d.Status = StatusError
		d.Error = err.Error()
	}
	t.observe(d)
	t.append(d, true)
}

// Collect drains and returns the accumulated span fragment for a trace —
// the worker calls it after a job ends to ship spans back on the report.
// Spans still open (a concurrent job of the same trace mid-execution) keep
// the trace entry alive; they ship with their own job's report.
func (t *Tracer) Collect(id TraceID) []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	at := t.active[id]
	if at == nil {
		return nil
	}
	spans := at.spans
	at.spans = nil
	if at.open <= 0 {
		delete(t.active, id)
	}
	return spans
}

// Ingest merges remotely-recorded spans into their still-active local
// traces. Spans for traces this tracer isn't tracking are dropped — that
// bounds memory against late or stray reports.
func (t *Tracer) Ingest(spans []SpanData) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, d := range spans {
		at := t.active[d.TraceID]
		if at == nil {
			t.dropped++
			continue
		}
		t.storeLocked(at, d)
	}
}

// InFlightTrace describes one currently-open trace for /debug/requests.
type InFlightTrace struct {
	TraceID   TraceID `json:"trace_id"`
	Root      string  `json:"root"`
	AgeMS     float64 `json:"age_ms"`
	OpenSpans int     `json:"open_spans"`
	Spans     int     `json:"spans"`
	Current   string  `json:"current_span,omitempty"`
}

// InFlight lists open traces that have claimed a root here, oldest first.
func (t *Tracer) InFlight() []InFlightTrace {
	if t == nil {
		return nil
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	out := make([]InFlightTrace, 0, len(t.active))
	for id, at := range t.active {
		if !at.root {
			continue // worker-side fragment, not a request we own
		}
		out = append(out, InFlightTrace{
			TraceID:   id,
			Root:      at.rootName,
			AgeMS:     float64(now-at.start) / 1e6,
			OpenSpans: at.open,
			Spans:     len(at.spans),
			Current:   at.current,
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].AgeMS > out[j].AgeMS })
	return out
}

// newSpan creates a live child span and registers it with the trace.
func (t *Tracer) newSpan(trace TraceID, parent SpanID, name string, wantRoot bool) *Span {
	return t.register(trace, parent, name, wantRoot)
}

func (t *Tracer) register(trace TraceID, parent SpanID, name string, wantRoot bool) *Span {
	now := time.Now()
	s := &Span{tr: t, start: now}
	s.data = SpanData{
		TraceID: trace,
		SpanID:  newSpanID(),
		Parent:  parent,
		Name:    name,
		Process: t.Process(),
		Start:   now.UnixNano(),
	}
	t.mu.Lock()
	at := t.active[trace]
	if at == nil {
		t.evictLocked()
		t.seq++
		at = &activeTrace{seq: t.seq, start: s.data.Start, rootName: name}
		t.active[trace] = at
	}
	if wantRoot && !at.root {
		// First root-claiming span wins; concurrent claims (can't happen in
		// practice — one middleware span per request) would nest under it.
		at.root = true
		at.rootName = name
		at.start = s.data.Start
		s.final = true
	}
	at.open++
	at.current, at.curID = name, s.data.SpanID
	t.mu.Unlock()
	return s
}

// evictLocked makes room for a new active trace by dropping the oldest.
func (t *Tracer) evictLocked() {
	if len(t.active) < t.maxActive {
		return
	}
	var oldest TraceID
	var oldestSeq uint64
	for id, at := range t.active {
		if oldest == "" || at.seq < oldestSeq {
			oldest, oldestSeq = id, at.seq
		}
	}
	if oldest != "" {
		t.dropped += int64(len(t.active[oldest].spans))
		delete(t.active, oldest)
	}
}

// finish records a completed live span; final means the trace is done in
// this process and moves to the recorder.
func (t *Tracer) finish(d SpanData, final bool) {
	t.observe(d)
	t.mu.Lock()
	at := t.active[d.TraceID]
	if at == nil {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.storeLocked(at, d)
	at.open--
	if at.curID == d.SpanID {
		at.current, at.curID = "", ""
	}
	if !final {
		t.mu.Unlock()
		return
	}
	delete(t.active, d.TraceID)
	spans, dropped := at.spans, at.dropped
	t.mu.Unlock()
	t.rec.Add(buildTrace(d, spans, dropped))
}

// append records an already-complete SpanData (Event/Record). createFragment
// controls whether an unknown trace starts a fragment (worker-side Record
// before any live span) or is dropped (Event on a dead trace).
func (t *Tracer) append(d SpanData, createFragment bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	at := t.active[d.TraceID]
	if at == nil {
		if !createFragment {
			t.dropped++
			return
		}
		t.evictLocked()
		t.seq++
		at = &activeTrace{seq: t.seq, start: d.Start, rootName: d.Name}
		t.active[d.TraceID] = at
	}
	t.storeLocked(at, d)
}

func (t *Tracer) storeLocked(at *activeTrace, d SpanData) {
	if len(at.spans) >= t.maxSpans {
		at.dropped++
		return
	}
	at.spans = append(at.spans, d)
}

// observe feeds the per-hop latency histogram. Metric names carry the hop
// as a Prometheus label baked into the name; obs.WritePrometheus renders
// label-in-name series as one metric family.
func (t *Tracer) observe(d SpanData) {
	if t.metrics == nil {
		return
	}
	t.histMu.Lock()
	h := t.hists[d.Name]
	if h == nil {
		h = t.metrics.HistogramScale(
			`ms_span_duration_seconds{span="`+d.Name+`"}`,
			"s", "span duration by hop", spanBuckets, 1e-9)
		t.hists[d.Name] = h
	}
	t.histMu.Unlock()
	h.Observe(d.Duration)
}

func buildTrace(root SpanData, spans []SpanData, dropped int) *TraceData {
	td := &TraceData{
		TraceID: root.TraceID,
		Root:    root,
		Spans:   spans,
		Dropped: dropped,
	}
	for _, s := range spans {
		if s.Status == StatusError {
			td.Errored = true
			break
		}
	}
	return td
}
