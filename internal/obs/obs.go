// Package obs is the observability layer: cycle-stamped event tracing, a
// typed metrics registry, and a Chrome trace-event / Perfetto exporter.
//
// Tracing is pluggable and pay-for-use: producers (the simulator, the grid
// engine) hold a Tracer interface that is nil by default, and every emission
// site is guarded — an unobserved run executes exactly the same instructions
// it did before the instrumentation existed, and produces byte-identical
// results (asserted by tests in internal/sim). Attach a Collector to record
// the event stream in memory, then hand it to WriteChromeTrace to get a JSON
// file ui.perfetto.dev (or chrome://tracing) opens directly.
//
// Metrics are the aggregate companion: counters, gauges, and fixed-bucket
// histograms with atomic (lock-cheap) update paths and deterministic
// text/JSON snapshots, so two runs over the same work produce snapshots that
// diff cleanly.
package obs

// Kind enumerates the traced event types. The taxonomy follows the paper's
// §2.3 cycle accounting: task lifetime edges per PU, memory dependence
// squash/restart pairs, ARB capacity overflows, inter-task control
// mispredictions, synchronization waits, and register ring traffic.
type Kind uint8

const (
	// EvTaskAssign: the sequencer assigned a dynamic task to a PU
	// (Cycle = assign time, Arg unused).
	EvTaskAssign Kind = iota
	// EvTaskStart: execution began after the task descriptor fetch.
	EvTaskStart
	// EvTaskComplete: the last instruction of the task finished.
	EvTaskComplete
	// EvTaskRetire: the task retired, in order, including end overhead
	// (Arg = dynamic instruction count).
	EvTaskRetire
	// EvSquash: a memory dependence violation squashed the task at the
	// violating store's cycle (Arg = restart depth so far, 0-based).
	EvSquash
	// EvRestart: the squashed task restarted one cycle after the violating
	// store (Arg = restart depth so far, 0-based).
	EvRestart
	// EvARBOverflow: a memory access would exceed the task's ARB stage
	// capacity and stalls to non-speculative time (Arg = effective address).
	EvARBOverflow
	// EvMispredict: the task's successor was mispredicted; the corrected
	// assignment waits for this task's completion (Cycle = resolution).
	EvMispredict
	// EvSyncWait: a load predicted to conflict synchronized with the
	// producing store instead of speculating (Cycle = the store's cycle,
	// Arg = load PC).
	EvSyncWait
	// EvRegForward: a compiler-designated forward point sent a register on
	// the ring before task end (Arg = register number).
	EvRegForward
	// EvRegRelease: a created register without an earlier forward released
	// at task completion (Arg = register number).
	EvRegRelease

	numKinds
)

// String returns the event name used in exported traces.
func (k Kind) String() string {
	switch k {
	case EvTaskAssign:
		return "task-assign"
	case EvTaskStart:
		return "task-start"
	case EvTaskComplete:
		return "task-complete"
	case EvTaskRetire:
		return "task-retire"
	case EvSquash:
		return "squash"
	case EvRestart:
		return "restart"
	case EvARBOverflow:
		return "arb-overflow"
	case EvMispredict:
		return "mispredict"
	case EvSyncWait:
		return "sync-wait"
	case EvRegForward:
		return "reg-forward"
	case EvRegRelease:
		return "reg-release"
	}
	return "unknown"
}

// Event is one cycle-stamped occurrence. The struct is flat and small so a
// Collector append is the entire cost of an observed emission.
type Event struct {
	Kind  Kind
	Cycle int64 // simulated cycle of the occurrence
	PU    int   // processing unit (Seq mod NumPUs)
	Seq   int   // dynamic task sequence number
	Task  int   // static task identity
	Arg   int64 // kind-specific payload (see the Kind constants)
}

// Tracer receives events. Implementations must not retain the Event past the
// call (it is reused by value). Producers treat a nil Tracer as "tracing
// off" and skip emission entirely.
type Tracer interface {
	Emit(Event)
}

// Collector is a Tracer that records the stream in memory, in emission
// order. It is not safe for concurrent use; the simulator emits from a
// single goroutine.
type Collector struct {
	Events []Event
}

// Emit appends the event.
func (c *Collector) Emit(e Event) { c.Events = append(c.Events, e) }

// Count returns how many recorded events have the given kind.
func (c *Collector) Count(k Kind) int {
	n := 0
	for _, e := range c.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}
