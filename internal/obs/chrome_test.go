package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// decodeTrace parses exporter output back into the generic trace shape.
func decodeTrace(t *testing.T, buf *bytes.Buffer) chromeTrace {
	t.Helper()
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return tr
}

func TestWriteChromeTrace(t *testing.T) {
	events := []Event{
		{Kind: EvTaskAssign, Cycle: 0, PU: 0, Seq: 0, Task: 3},
		{Kind: EvTaskStart, Cycle: 2, PU: 0, Seq: 0, Task: 3},
		{Kind: EvSquash, Cycle: 5, PU: 1, Seq: 1, Task: 4},
		{Kind: EvRestart, Cycle: 6, PU: 1, Seq: 1, Task: 4},
		{Kind: EvTaskComplete, Cycle: 8, PU: 0, Seq: 0, Task: 3},
		{Kind: EvTaskRetire, Cycle: 10, PU: 0, Seq: 0, Task: 3, Arg: 17},
		{Kind: EvTaskAssign, Cycle: 1, PU: 1, Seq: 1, Task: 4},
		{Kind: EvTaskRetire, Cycle: 12, PU: 1, Seq: 1, Task: 4, Arg: 9},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, 2); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, &buf)
	if tr.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}

	var slices, squashes, threadNames int
	for _, e := range tr.TraceEvents {
		switch {
		case e.Ph == "X":
			slices++
			if e.Dur <= 0 {
				t.Errorf("slice %q has dur %d", e.Name, e.Dur)
			}
		case e.Ph == "i" && e.Name == "squash":
			squashes++
			if e.Ts != 5 || e.Tid != 1 {
				t.Errorf("squash instant at ts=%d tid=%d, want 5/1", e.Ts, e.Tid)
			}
		case e.Ph == "M" && e.Name == "thread_name":
			threadNames++
		}
	}
	if slices != 2 {
		t.Errorf("%d task slices, want 2", slices)
	}
	if squashes != 1 {
		t.Errorf("%d squash instants, want 1", squashes)
	}
	if threadNames != 2 {
		t.Errorf("%d thread_name records, want 2 (one per PU)", threadNames)
	}
	if !strings.Contains(buf.String(), `"PU 1"`) {
		t.Error("PU 1 track not named")
	}
}

func TestWriteChromeTraceDangling(t *testing.T) {
	// A stream whose last task never retired still exports every slice.
	events := []Event{
		{Kind: EvTaskAssign, Cycle: 0, PU: 0, Seq: 0, Task: 1},
		{Kind: EvTaskStart, Cycle: 3, PU: 0, Seq: 0, Task: 1},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, 1); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, &buf)
	found := false
	for _, e := range tr.TraceEvents {
		if e.Ph == "X" && strings.Contains(e.Name, "(open)") {
			found = true
		}
	}
	if !found {
		t.Error("dangling task not exported")
	}
}

func TestWriteChromeTraceBadPUs(t *testing.T) {
	if err := WriteChromeTrace(&bytes.Buffer{}, nil, 0); err == nil {
		t.Error("zero PU count accepted")
	}
}
