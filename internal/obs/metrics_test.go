package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs", "jobs entered")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("jobs_total", "", ""); again != c {
		t.Error("second Counter call did not return the same metric")
	}
	g := r.Gauge("workers_busy", "workers", "")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Errorf("gauge = %d, want 2", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wait", "cycles", "", []int64{1, 10, 100})
	for _, v := range []int64{0, 1, 2, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 7 || h.Sum() != 1124 {
		t.Errorf("count=%d sum=%d, want 7/1124", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	if len(snap.Metrics) != 1 {
		t.Fatalf("snapshot has %d metrics", len(snap.Metrics))
	}
	m := snap.Metrics[0]
	if m.Min != 0 || m.Max != 1000 {
		t.Errorf("min/max = %d/%d, want 0/1000", m.Min, m.Max)
	}
	wantCounts := []int64{2, 2, 2, 1} // <=1, <=10, <=100, overflow
	if len(m.Buckets) != 4 {
		t.Fatalf("%d buckets, want 4", len(m.Buckets))
	}
	for i, b := range m.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if m.Buckets[3].Le != math.MaxInt64 {
		t.Errorf("overflow bucket le = %d", m.Buckets[3].Le)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", "", ExpBuckets(1, 2, 12))
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(i % 512))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	var bucketSum int64
	for _, b := range r.Snapshot().Metrics[0].Buckets {
		bucketSum += b.Count
	}
	if bucketSum != workers*per {
		t.Errorf("bucket total = %d, want %d", bucketSum, workers*per)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		// Register in scrambled order; snapshots sort by name.
		r.Gauge("m_busy", "workers", "").Set(2)
		r.Counter("a_total", "jobs", "").Add(7)
		r.Histogram("z_wait", "us", "", []int64{10, 100}).Observe(42)
		return r.Snapshot()
	}
	j1, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("identical registries produced different JSON")
	}
	var decoded Snapshot
	if err := json.Unmarshal(j1, &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	names := []string{"a_total", "m_busy", "z_wait"}
	for i, m := range decoded.Metrics {
		if m.Name != names[i] {
			t.Errorf("metric %d = %q, want %q (sorted)", i, m.Name, names[i])
		}
	}
	text := build().Text()
	for _, want := range []string{"a_total", "m_busy", "z_wait", "count=1", "mean=42.0"} {
		if !strings.Contains(text, want) {
			t.Errorf("text snapshot missing %q:\n%s", want, text)
		}
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("reusing a counter name as a histogram did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "", "")
	r.Histogram("x", "", "", []int64{1})
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1, 2, 5)
	want := []int64{1, 2, 4, 8, 16}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", exp)
		}
	}
	lin := LinearBuckets(0, 10, 3)
	want = []int64{0, 10, 20}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
}
