package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Get-or-create accessors take the registry
// lock once per metric lifetime; the update paths (Counter.Add, Gauge.Set,
// Histogram.Observe) are atomic and lock-free, so hot loops can hold a
// metric pointer and update it from any goroutine.
type Registry struct {
	mu sync.Mutex
	cs map[string]*Counter
	gs map[string]*Gauge
	hs map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		cs: make(map[string]*Counter),
		gs: make(map[string]*Gauge),
		hs: make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing count.
type Counter struct {
	name, unit, help string
	v                atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct {
	name, unit, help string
	v                atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bound distribution. Bounds are inclusive upper edges
// in ascending order; one implicit overflow bucket catches everything above
// the last bound. Observe is atomic per field (bucket, count, sum, min, max)
// — a concurrent snapshot may be torn across fields by a few in-flight
// observations, which is acceptable for reporting.
type Histogram struct {
	name, unit, help string
	bounds           []int64
	scale            float64        // exposition multiplier; 0 = render raw int64s
	buckets          []atomic.Int64 // len(bounds)+1
	count, sum       atomic.Int64
	min, max         atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// ExpBuckets returns n ascending bounds starting at start and multiplying by
// factor: the standard shape for cycle and microsecond distributions.
func ExpBuckets(start, factor int64, n int) []int64 {
	if start <= 0 || factor < 2 || n <= 0 {
		panic("obs: ExpBuckets wants start > 0, factor >= 2, n > 0")
	}
	out := make([]int64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n ascending bounds start, start+step, ...
func LinearBuckets(start, step int64, n int) []int64 {
	if step <= 0 || n <= 0 {
		panic("obs: LinearBuckets wants step > 0, n > 0")
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*step
	}
	return out
}

// Counter returns the named counter, creating it on first use. Reusing a
// name with a different metric type panics (a programming error).
func (r *Registry) Counter(name, unit, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.cs[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c := &Counter{name: name, unit: unit, help: help}
	r.cs[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, unit, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gs[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g := &Gauge{name: name, unit: unit, help: help}
	r.gs[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given bucket bounds (ascending). Bounds are fixed at creation; later calls
// ignore the bounds argument.
func (r *Registry) Histogram(name, unit, help string, bounds []int64) *Histogram {
	return r.HistogramScale(name, unit, help, bounds, 0)
}

// HistogramScale is Histogram with an exposition scale: observations stay
// cheap int64s internally (e.g. nanoseconds), but snapshots and the
// Prometheus rendering multiply bounds and sum by scale — nanosecond
// observations with scale 1e-9 expose as seconds, matching the
// `_seconds` naming convention without a float on the hot path.
func (r *Registry) HistogramScale(name, unit, help string, bounds []int64, scale float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hs[name]; ok {
		return h
	}
	r.checkFree(name, "histogram")
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		name: name, unit: unit, help: help,
		bounds:  append([]int64(nil), bounds...),
		scale:   scale,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	r.hs[name] = h
	return h
}

func (r *Registry) checkFree(name, typ string) {
	if _, ok := r.cs[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a counter, wanted %s", name, typ))
	}
	if _, ok := r.gs[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a gauge, wanted %s", name, typ))
	}
	if _, ok := r.hs[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a histogram, wanted %s", name, typ))
	}
}

// Bucket is one histogram bucket in a snapshot: the count of observations at
// or below Le (the overflow bucket has Le = math.MaxInt64).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// MetricSnapshot is the frozen state of one metric.
type MetricSnapshot struct {
	Name string `json:"name"`
	Type string `json:"type"` // "counter", "gauge", or "histogram"
	Unit string `json:"unit,omitempty"`
	Help string `json:"help,omitempty"`

	// Value is set for counters and gauges.
	Value *int64 `json:"value,omitempty"`

	// Count/Sum/Min/Max/Buckets are set for histograms (Min/Max are zero
	// when Count is zero).
	Count   int64    `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Min     int64    `json:"min,omitempty"`
	Max     int64    `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`

	// Scale, when non-zero, is the multiplier applied to Sum and bucket
	// bounds at exposition time (see HistogramScale).
	Scale float64 `json:"scale,omitempty"`
}

// Snapshot is a point-in-time copy of every registered metric, sorted by
// name — the same registry contents always render the same bytes.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot freezes the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []MetricSnapshot
	for _, c := range r.cs {
		v := c.v.Load()
		out = append(out, MetricSnapshot{
			Name: c.name, Type: "counter", Unit: c.unit, Help: c.help, Value: &v,
		})
	}
	for _, g := range r.gs {
		v := g.v.Load()
		out = append(out, MetricSnapshot{
			Name: g.name, Type: "gauge", Unit: g.unit, Help: g.help, Value: &v,
		})
	}
	for _, h := range r.hs {
		ms := MetricSnapshot{
			Name: h.name, Type: "histogram", Unit: h.unit, Help: h.help,
			Count: h.count.Load(), Sum: h.sum.Load(), Scale: h.scale,
		}
		if ms.Count > 0 {
			ms.Min, ms.Max = h.min.Load(), h.max.Load()
		}
		for i := range h.buckets {
			le := int64(math.MaxInt64)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			ms.Buckets = append(ms.Buckets, Bucket{Le: le, Count: h.buckets[i].Load()})
		}
		out = append(out, ms)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return Snapshot{Metrics: out}
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text renders the snapshot as an aligned, human-readable table. Histograms
// print count/sum/min/max/mean plus non-empty buckets.
func (s Snapshot) Text() string {
	var sb strings.Builder
	for _, m := range s.Metrics {
		unit := ""
		if m.Unit != "" {
			unit = " " + m.Unit
		}
		switch m.Type {
		case "counter", "gauge":
			fmt.Fprintf(&sb, "%-9s %-34s %12d%s\n", m.Type, m.Name, *m.Value, unit)
		case "histogram":
			mean := 0.0
			if m.Count > 0 {
				mean = float64(m.Sum) / float64(m.Count)
			}
			fmt.Fprintf(&sb, "%-9s %-34s count=%d sum=%d min=%d max=%d mean=%.1f%s\n",
				m.Type, m.Name, m.Count, m.Sum, m.Min, m.Max, mean, unit)
			for _, b := range m.Buckets {
				if b.Count == 0 {
					continue
				}
				if b.Le == math.MaxInt64 {
					fmt.Fprintf(&sb, "%44s  le +inf %12d\n", "", b.Count)
				} else {
					fmt.Fprintf(&sb, "%44s  le %-5d%12d\n", "", b.Le, b.Count)
				}
			}
		}
	}
	return sb.String()
}
