package obs

import (
	"testing"
)

func TestKindStrings(t *testing.T) {
	seen := make(map[string]Kind)
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if s == "unknown" || s == "" {
			t.Errorf("kind %d has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share name %q", prev, k, s)
		}
		seen[s] = k
	}
	if numKinds.String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}

func TestCollector(t *testing.T) {
	var c Collector
	c.Emit(Event{Kind: EvSquash, Cycle: 10, Seq: 1})
	c.Emit(Event{Kind: EvSquash, Cycle: 12, Seq: 1})
	c.Emit(Event{Kind: EvTaskRetire, Cycle: 20, Seq: 1})
	if got := c.Count(EvSquash); got != 2 {
		t.Errorf("Count(EvSquash) = %d, want 2", got)
	}
	if got := c.Count(EvTaskRetire); got != 1 {
		t.Errorf("Count(EvTaskRetire) = %d, want 1", got)
	}
	if got := c.Count(EvMispredict); got != 0 {
		t.Errorf("Count(EvMispredict) = %d, want 0", got)
	}
	if len(c.Events) != 3 {
		t.Errorf("recorded %d events, want 3", len(c.Events))
	}
}
