package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeEvent is one entry of the Chrome trace-event format (the JSON
// "traceEvents" array), which ui.perfetto.dev and chrome://tracing both
// ingest. Timestamps are in microseconds; the cycle exporter below maps one
// simulated cycle to one microsecond so cycle numbers read directly off the
// ruler, and the span exporter (internal/obs/span) reuses the type for real
// wall-clock microseconds.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeEvents wraps an already-built event list in the trace-event
// envelope. It is the low-level half of WriteChromeTrace, shared with the
// distributed-span exporter.
func WriteChromeEvents(w io.Writer, events []ChromeEvent) error {
	return json.NewEncoder(w).Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ns"})
}

// taskSpan accumulates the lifetime edges of one dynamic task until its
// retire event closes it.
type taskSpan struct {
	task, pu                int
	assign, start, complete int64
}

// WriteChromeTrace exports an event stream as Chrome trace-event JSON: one
// thread ("track") per PU, one complete ("X") slice per dynamic task
// spanning assign→retire, and instant events for squashes, restarts, ARB
// overflows, mispredictions, sync waits, and register ring traffic. Open the
// output in ui.perfetto.dev. The stream need not be cycle-sorted; slices are
// emitted in retire order and instants in emission order.
func WriteChromeTrace(w io.Writer, events []Event, numPUs int) error {
	if numPUs <= 0 {
		return fmt.Errorf("obs: WriteChromeTrace wants a positive PU count, got %d", numPUs)
	}
	out := make([]ChromeEvent, 0, len(events)+2*numPUs+1)
	out = append(out, ChromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "multiscalar"},
	})
	for pu := 0; pu < numPUs; pu++ {
		out = append(out,
			ChromeEvent{
				Name: "thread_name", Ph: "M", Pid: 0, Tid: pu,
				Args: map[string]any{"name": fmt.Sprintf("PU %d", pu)},
			},
			ChromeEvent{
				Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: pu,
				Args: map[string]any{"sort_index": pu},
			})
	}

	open := make(map[int]*taskSpan)
	for _, e := range events {
		switch e.Kind {
		case EvTaskAssign:
			open[e.Seq] = &taskSpan{task: e.Task, pu: e.PU, assign: e.Cycle}
		case EvTaskStart:
			if sp := open[e.Seq]; sp != nil {
				sp.start = e.Cycle
			}
		case EvTaskComplete:
			if sp := open[e.Seq]; sp != nil {
				sp.complete = e.Cycle
			}
		case EvTaskRetire:
			sp := open[e.Seq]
			if sp == nil {
				// A retire without an assign (truncated stream): render a
				// zero-length slice at the retire cycle so nothing is lost.
				sp = &taskSpan{task: e.Task, pu: e.PU, assign: e.Cycle,
					start: e.Cycle, complete: e.Cycle}
			}
			delete(open, e.Seq)
			dur := e.Cycle - sp.assign
			if dur < 1 {
				dur = 1
			}
			out = append(out, ChromeEvent{
				Name: fmt.Sprintf("task %d", sp.task),
				Ph:   "X", Ts: sp.assign, Dur: dur, Pid: 0, Tid: sp.pu,
				Args: map[string]any{
					"seq":      e.Seq,
					"instrs":   e.Arg,
					"start":    sp.start,
					"complete": sp.complete,
					"retire":   e.Cycle,
				},
			})
		case EvSquash, EvRestart, EvARBOverflow, EvMispredict, EvSyncWait,
			EvRegForward, EvRegRelease:
			out = append(out, ChromeEvent{
				Name: e.Kind.String(),
				Ph:   "i", Ts: e.Cycle, Pid: 0, Tid: e.PU, Scope: "t",
				Args: map[string]any{"seq": e.Seq, "task": e.Task, "arg": e.Arg},
			})
		}
	}
	// Tasks still open (stream ended mid-flight) are closed at their last
	// known edge so the trace remains self-consistent.
	var dangling []*taskSpan
	for _, sp := range open {
		dangling = append(dangling, sp)
	}
	sort.Slice(dangling, func(i, j int) bool { return dangling[i].assign < dangling[j].assign })
	for _, sp := range dangling {
		end := sp.complete
		if sp.start > end {
			end = sp.start
		}
		dur := end - sp.assign
		if dur < 1 {
			dur = 1
		}
		out = append(out, ChromeEvent{
			Name: fmt.Sprintf("task %d (open)", sp.task),
			Ph:   "X", Ts: sp.assign, Dur: dur, Pid: 0, Tid: sp.pu,
		})
	}

	return WriteChromeEvents(w, out)
}
