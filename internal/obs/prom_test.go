package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition byte-for-byte: counters and
// gauges as single samples, histograms as cumulative buckets with a +Inf
// edge, sum, and count, all in name order.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("serve_requests_total", "requests", "HTTP requests admitted")
	c.Add(7)
	g := r.Gauge("serve_inflight", "requests", "requests executing right now")
	g.Set(2)
	h := r.Histogram("serve_request_us", "us", "request wall time", []int64{10, 100, 1000})
	for _, v := range []int64{5, 50, 50, 5000} {
		h.Observe(v)
	}
	r.Counter("a_first_total", "", "sorts before the rest").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_first_total sorts before the rest
# TYPE a_first_total counter
a_first_total 1
# HELP serve_inflight requests executing right now (requests)
# TYPE serve_inflight gauge
serve_inflight 2
# HELP serve_request_us request wall time (us)
# TYPE serve_request_us histogram
serve_request_us_bucket{le="10"} 1
serve_request_us_bucket{le="100"} 3
serve_request_us_bucket{le="1000"} 3
serve_request_us_bucket{le="+Inf"} 4
serve_request_us_sum 5105
serve_request_us_count 4
# HELP serve_requests_total HTTP requests admitted (requests)
# TYPE serve_requests_total counter
serve_requests_total 7
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusEscapesHelp(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", "line one\nline \\ two").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# HELP x_total line one\nline \\ two`) {
		t.Errorf("help not escaped:\n%s", sb.String())
	}
}

func TestWritePrometheusEmptyRegistry(t *testing.T) {
	var sb strings.Builder
	if err := NewRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("empty registry rendered %q", sb.String())
	}
}
