package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition byte-for-byte: counters and
// gauges as single samples, histograms as cumulative buckets with a +Inf
// edge, sum, and count, all in name order.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("serve_requests_total", "requests", "HTTP requests admitted")
	c.Add(7)
	g := r.Gauge("serve_inflight", "requests", "requests executing right now")
	g.Set(2)
	h := r.Histogram("serve_request_us", "us", "request wall time", []int64{10, 100, 1000})
	for _, v := range []int64{5, 50, 50, 5000} {
		h.Observe(v)
	}
	r.Counter("a_first_total", "", "sorts before the rest").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_first_total sorts before the rest
# TYPE a_first_total counter
a_first_total 1
# HELP serve_inflight requests executing right now (requests)
# TYPE serve_inflight gauge
serve_inflight 2
# HELP serve_request_us request wall time (us)
# TYPE serve_request_us histogram
serve_request_us_bucket{le="10"} 1
serve_request_us_bucket{le="100"} 3
serve_request_us_bucket{le="1000"} 3
serve_request_us_bucket{le="+Inf"} 4
serve_request_us_sum 5105
serve_request_us_count 4
# HELP serve_requests_total HTTP requests admitted (requests)
# TYPE serve_requests_total counter
serve_requests_total 7
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusLabeledScaled pins the label-in-name family rendering:
// two series of one histogram family share a single HELP/TYPE header, labels
// merge with le on bucket lines, and a 1e-9 scale renders nanosecond
// observations as seconds.
func TestWritePrometheusLabeledScaled(t *testing.T) {
	r := NewRegistry()
	a := r.HistogramScale(`ms_span_duration_seconds{span="grid.run"}`, "s", "span duration by hop",
		[]int64{1_000_000, 1_000_000_000}, 1e-9)
	a.Observe(500_000)       // 0.5ms
	a.Observe(2_000_000_000) // 2s
	b := r.HistogramScale(`ms_span_duration_seconds{span="sim.exec"}`, "s", "span duration by hop",
		[]int64{1_000_000, 1_000_000_000}, 1e-9)
	b.Observe(250_000_000) // 0.25s
	r.Counter(`worker_jobs_total{worker="w1"}`, "", "jobs by worker").Add(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP ms_span_duration_seconds span duration by hop (s)
# TYPE ms_span_duration_seconds histogram
ms_span_duration_seconds_bucket{span="grid.run",le="0.001"} 1
ms_span_duration_seconds_bucket{span="grid.run",le="1"} 1
ms_span_duration_seconds_bucket{span="grid.run",le="+Inf"} 2
ms_span_duration_seconds_sum{span="grid.run"} 2.0005
ms_span_duration_seconds_count{span="grid.run"} 2
ms_span_duration_seconds_bucket{span="sim.exec",le="0.001"} 0
ms_span_duration_seconds_bucket{span="sim.exec",le="1"} 1
ms_span_duration_seconds_bucket{span="sim.exec",le="+Inf"} 1
ms_span_duration_seconds_sum{span="sim.exec"} 0.25
ms_span_duration_seconds_count{span="sim.exec"} 1
# HELP worker_jobs_total jobs by worker
# TYPE worker_jobs_total counter
worker_jobs_total{worker="w1"} 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusEscapesHelp(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", "line one\nline \\ two").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# HELP x_total line one\nline \\ two`) {
		t.Errorf("help not escaped:\n%s", sb.String())
	}
}

func TestWritePrometheusEmptyRegistry(t *testing.T) {
	var sb strings.Builder
	if err := NewRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("empty registry rendered %q", sb.String())
	}
}
