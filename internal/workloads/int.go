package workloads

import "multiscalar/internal/ir"

// Scratch registers beyond the shared conventions.
var (
	r10 = ir.Reg(10)
	r11 = ir.Reg(11)
	r12 = ir.Reg(12)
	r13 = ir.Reg(13)
	r14 = ir.Reg(14)
)

// Go models 099.go: a recursive game-tree search over a synthetic position
// hash — deeply branchy evaluation with small basic blocks, data-dependent
// branches, and call-dominated control flow (the hardest case for task
// prediction, as in the paper).
func Go() *ir.Program {
	b := ir.NewBuilder("go")
	out := b.Zeros(1)
	search := b.DeclareFn("search")
	eval := b.DeclareFn("eval")

	f := b.Func("main")
	f.Block("entry").
		MovI(rOut, int64(out)).MovI(rAcc, 0).
		MovI(rLCG, 88172645463325252).
		MovI(rI, 0).MovI(rN, 24).
		Goto("head")
	f.Block("head").Slt(rT0, rI, rN).Br(rT0, "body", "exit")
	f.Block("body"). // pos = lcg value; search(pos, depth=3)
				Nop().Goto("call")
	fb := f.Block("call")
	lcgStep(fb, rLCG, ir.RegArg0, -1)
	fb.MovI(ir.RegArg0+1, 3).
		AddI(ir.RegSP, ir.RegSP, -24).
		Store(rI, ir.RegSP, 0).
		Store(rN, ir.RegSP, 8).
		Store(rAcc, ir.RegSP, 16)
	fb.Call(search, "ret")
	f.Block("ret").
		Load(rI, ir.RegSP, 0).
		Load(rN, ir.RegSP, 8).
		Load(rAcc, ir.RegSP, 16).
		AddI(ir.RegSP, ir.RegSP, 24).
		Add(rAcc, rAcc, ir.RegRV).
		AddI(rI, rI, 1).
		Goto("head")
	f.Block("exit").Store(rAcc, rOut, 0).Halt()
	f.End()

	// search(pos=arg0, depth=arg1): minimax over 4 pseudo-moves.
	s := b.Func("search")
	s.Block("entry").SltI(rT0, ir.RegArg0+1, 1).Br(rT0, "leaf", "init")
	s.Block("leaf").Nop().Call(eval, "leafret")
	s.Block("leafret").Ret()
	s.Block("init"). // best = -1<<40; m = 0
				MovI(r10, -(1<<40)).MovI(r11, 0).Goto("mhead")
	s.Block("mhead").SltI(rT0, r11, 4).Br(rT0, "mbody", "done")
	s.Block("mbody"). // child = pos*6364136223846793005 + m*2685821657736338717
				MulI(rT1, ir.RegArg0, 6364136223846793005).
				MulI(rT2, r11, 2685821657736338717).
				Add(rT1, rT1, rT2).
				AddI(ir.RegSP, ir.RegSP, -40).
				Store(ir.RegArg0, ir.RegSP, 0).
				Store(ir.RegArg0+1, ir.RegSP, 8).
				Store(r10, ir.RegSP, 16).
				Store(r11, ir.RegSP, 24).
				Mov(ir.RegArg0, rT1).
				AddI(ir.RegArg0+1, ir.RegArg0+1, -1).
				Call(search, "munwind")
	s.Block("munwind").
		Load(ir.RegArg0, ir.RegSP, 0).
		Load(ir.RegArg0+1, ir.RegSP, 8).
		Load(r10, ir.RegSP, 16).
		Load(r11, ir.RegSP, 24).
		AddI(ir.RegSP, ir.RegSP, 40).
		Slt(rT0, r10, ir.RegRV).
		Br(rT0, "better", "mlatch")
	s.Block("better").Mov(r10, ir.RegRV).Goto("mlatch")
	s.Block("mlatch").AddI(r11, r11, 1).Goto("mhead")
	s.Block("done").Sub(ir.RegRV, ir.RegZero, r10).Ret() // negamax flip
	s.End()

	// eval(pos=arg0): branchy 8-point scan of the position hash.
	e := b.Func("eval")
	e.Block("entry").MovI(r12, 0).MovI(r13, 0).Mov(r14, ir.RegArg0).Goto("ehead")
	e.Block("ehead").SltI(rT0, r13, 8).Br(rT0, "ebody", "edone")
	e.Block("ebody").
		MulI(r14, r14, 2862933555777941757).
		AddI(r14, r14, 3037000493).
		ShrI(rT1, r14, 60).
		AndI(rT2, rT1, 1).
		Br(rT2, "odd", "even")
	e.Block("odd").Add(r12, r12, rT1).Goto("etail")
	e.Block("even").Sub(r12, r12, rT1).Goto("etail")
	e.Block("etail").
		AndI(rT2, r14, 6).
		SeqI(rT0, rT2, 0).
		Br(rT0, "bonus", "elatch")
	e.Block("bonus").AddI(r12, r12, 5).Goto("elatch")
	e.Block("elatch").AddI(r13, r13, 1).Goto("ehead")
	e.Block("edone").AndI(ir.RegRV, r12, 1023).Ret()
	e.End()
	return b.Build()
}

// M88ksim models 124.m88ksim: an instruction-set interpreter — a fetch /
// decode / execute loop whose decode is a branch tree and whose architected
// register file lives in memory, giving mid-size tasks with indirect-ish
// control flow.
func M88ksim() *ir.Program {
	b := ir.NewBuilder("m88ksim")
	const progLen = 64
	// Synthetic "guest program": opcode in bits 0..2, operands in 3..6, 7..10,
	// branch displacement in 11..14. Generated here, at build time, with a
	// fixed LCG so the guest is deterministic.
	var code []int64
	state := int64(0x2545F4914F6CDD1D)
	for i := 0; i < progLen; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		code = append(code, (state>>17)&0x7FFF)
	}
	codeBase := b.Data(code...)
	regs := b.Zeros(16)
	out := b.Zeros(1)

	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(codeBase)).MovI(rB1, int64(regs)).MovI(rOut, int64(out)).
		MovI(rI, 0). // step counter
		MovI(rJ, 0). // guest pc
		MovI(rAcc, 0).
		Goto("head")
	f.Block("head").SltI(rT0, rI, 4000).Br(rT0, "fetch", "exit")
	f.Block("fetch"). // insn = code[pc]; fields
				ShlI(rT1, rJ, 3).
				Add(rT1, rT1, rB0).
				Load(r10, rT1, 0). // insn
				AndI(r11, r10, 7). // opcode
				ShrI(rT2, r10, 3).
				AndI(r12, rT2, 15). // ra
				ShrI(rT2, r10, 7).
				AndI(r13, rT2, 15). // rb
				SltI(rT0, r11, 4).
				Br(rT0, "grp0", "grp1")
	// Decode tree: opcodes 0-3.
	f.Block("grp0").SltI(rT0, r11, 2).Br(rT0, "grp00", "grp01")
	f.Block("grp00").SeqI(rT0, r11, 0).Br(rT0, "opadd", "opsub")
	f.Block("grp01").SeqI(rT0, r11, 2).Br(rT0, "opmul", "opand")
	f.Block("grp1").SltI(rT0, r11, 6).Br(rT0, "grp10", "grp11")
	f.Block("grp10").SeqI(rT0, r11, 4).Br(rT0, "opld", "opst")
	f.Block("grp11").SeqI(rT0, r11, 6).Br(rT0, "opbr", "opnop")

	loadGuest := func(bb *ir.BlockBuilder, dst, idx ir.Reg) {
		bb.ShlI(rT3, idx, 3)
		bb.Add(rT3, rT3, rB1)
		bb.Load(dst, rT3, 0)
	}
	storeGuest := func(bb *ir.BlockBuilder, val, idx ir.Reg) {
		bb.ShlI(rT3, idx, 3)
		bb.Add(rT3, rT3, rB1)
		bb.Store(val, rT3, 0)
	}

	alu := func(label string, op func(bb *ir.BlockBuilder)) {
		bb := f.Block(label)
		loadGuest(bb, rT1, r12)
		loadGuest(bb, rT2, r13)
		op(bb)
		storeGuest(bb, rT1, r12)
		bb.Add(rAcc, rAcc, rT1)
		bb.Goto("advance")
	}
	alu("opadd", func(bb *ir.BlockBuilder) { bb.Add(rT1, rT1, rT2).AddI(rT1, rT1, 1) })
	alu("opsub", func(bb *ir.BlockBuilder) { bb.Sub(rT1, rT1, rT2).XorI(rT1, rT1, 0x5A) })
	alu("opmul", func(bb *ir.BlockBuilder) { bb.Mul(rT1, rT1, rT2).AddI(rT1, rT1, 7).AndI(rT1, rT1, 0xFFFFFF) })
	alu("opand", func(bb *ir.BlockBuilder) { bb.And(rT1, rT1, rT2).OrI(rT1, rT1, 3) })

	ld := f.Block("opld") // ra = code[rb mod len] (treats guest code as data)
	ld.AndI(rT1, r13, progLen-1)
	ld.ShlI(rT1, rT1, 3)
	ld.Add(rT1, rT1, rB0)
	ld.Load(rT2, rT1, 0)
	storeGuest(ld, rT2, r12)
	ld.Goto("advance")

	st := f.Block("opst") // regs[rb] = ra value
	loadGuest(st, rT1, r12)
	storeGuest(st, rT1, r13)
	st.Add(rAcc, rAcc, rT1)
	st.Goto("advance")

	br := f.Block("opbr") // taken if regs[ra] odd: pc += disp field
	loadGuest(br, rT1, r12)
	br.AndI(rT0, rT1, 1)
	br.Br(rT0, "taken", "advance")
	f.Block("taken").
		ShrI(rT2, r10, 11).
		AndI(rT2, rT2, 15).
		Add(rJ, rJ, rT2).
		AndI(rJ, rJ, progLen-1).
		Goto("step")
	f.Block("opnop").Nop().Goto("advance")
	f.Block("advance").AddI(rJ, rJ, 1).AndI(rJ, rJ, progLen-1).Goto("step")
	f.Block("step").AddI(rI, rI, 1).Goto("head")
	f.Block("exit").Store(rAcc, rOut, 0).Halt()
	f.End()
	return b.Build()
}

// CC models 126.gcc: a two-phase tokenizer plus stack-machine evaluator with
// many small helper functions — high call density with tiny callees, the
// case the CALL_THRESH inclusion targets.
func CC() *ir.Program {
	b := ir.NewBuilder("cc")
	const srcLen = 2048
	// Synthetic source: stream of small ints, 0-9 literals and 10-12 "ops".
	var src []int64
	seed := uint64(0x853C49E6748FEA9B)
	state := int64(seed)
	for i := 0; i < srcLen; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		src = append(src, (state>>40)&15)
	}
	srcBase := b.Data(src...)
	toks := b.Zeros(srcLen)
	stack := b.Zeros(128)
	out := b.Zeros(1)

	push := b.DeclareFn("push")
	pop := b.DeclareFn("pop")
	classify := b.DeclareFn("classify")

	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(srcBase)).MovI(rB1, int64(toks)).
		MovI(rB2, int64(stack)).MovI(rOut, int64(out)).
		MovI(r14, 0). // value-stack depth, maintained across helpers
		MovI(rI, 0).MovI(rAcc, 0).
		Goto("lexhead")
	// Phase 1: classify every input symbol through a helper call.
	f.Block("lexhead").SltI(rT0, rI, srcLen).Br(rT0, "lexbody", "evalinit")
	f.Block("lexbody").
		ShlI(rT1, rI, 3).
		Add(rT1, rT1, rB0).
		Load(ir.RegArg0, rT1, 0).
		Call(classify, "lexstore")
	f.Block("lexstore").
		ShlI(rT1, rI, 3).
		Add(rT1, rT1, rB1).
		Store(ir.RegRV, rT1, 0).
		AddI(rI, rI, 1).
		Goto("lexhead")
	// Phase 2: evaluate the token stream on an explicit stack.
	f.Block("evalinit").MovI(rI, 0).Goto("evalhead")
	f.Block("evalhead").SltI(rT0, rI, srcLen).Br(rT0, "evalbody", "exit")
	f.Block("evalbody").
		ShlI(rT1, rI, 3).
		Add(rT1, rT1, rB1).
		Load(r10, rT1, 0).
		SltI(rT0, r10, 10).
		Br(rT0, "lit", "op")
	f.Block("lit").Mov(ir.RegArg0, r10).Call(push, "latch")
	f.Block("op"). // pop two, combine by op kind, push
			Nop().Call(pop, "op2")
	f.Block("op2").Mov(r11, ir.RegRV).Call(pop, "combine")
	f.Block("combine").
		ShlI(rT1, rI, 3).
		Add(rT1, rT1, rB1).
		Load(r10, rT1, 0). // reload token (helpers may clobber temps)
		SeqI(rT0, r10, 10).
		Br(rT0, "cadd", "csel")
	f.Block("cadd").Add(ir.RegArg0, r11, ir.RegRV).Goto("cpush")
	f.Block("csel").SeqI(rT0, r10, 11).Br(rT0, "cxor", "cmax")
	f.Block("cxor").Xor(ir.RegArg0, r11, ir.RegRV).Goto("cpush")
	f.Block("cmax").
		Slt(rT0, r11, ir.RegRV).
		Br(rT0, "cmaxb", "cmaxa")
	f.Block("cmaxa").Mov(ir.RegArg0, r11).Goto("cpush")
	f.Block("cmaxb").Mov(ir.RegArg0, ir.RegRV).Goto("cpush")
	f.Block("cpush").AndI(ir.RegArg0, ir.RegArg0, 0xFFFF).Call(push, "latch")
	f.Block("latch").AddI(rI, rI, 1).Goto("evalhead")
	f.Block("exit").Nop().Call(pop, "store")
	f.Block("store").Store(ir.RegRV, rOut, 0).Halt()
	f.End()

	// classify(sym): tiny callee — literal -> sym, op code 10-12 by range,
	// everything else folds to a literal 1.
	c := b.Func("classify")
	c.Block("entry").SltI(rT0, ir.RegArg0, 10).Br(rT0, "isLit", "isOp")
	c.Block("isLit").Mov(ir.RegRV, ir.RegArg0).Ret()
	c.Block("isOp").SltI(rT0, ir.RegArg0, 13).Br(rT0, "keep", "fold")
	c.Block("keep").Mov(ir.RegRV, ir.RegArg0).Ret()
	c.Block("fold").MovI(ir.RegRV, 1).Ret()
	c.End()

	// push(v): stack[depth++ & 127] = v (depth in r14, stack base in rB2).
	p := b.Func("push")
	p.Block("entry").
		AndI(rT3, r14, 127).
		ShlI(rT3, rT3, 3).
		Add(rT3, rT3, rB2).
		Store(ir.RegArg0, rT3, 0).
		AddI(r14, r14, 1).
		Ret()
	p.End()

	// pop(): returns stack[--depth & 127]; guards empty stack.
	q := b.Func("pop")
	q.Block("entry").SltI(rT0, r14, 1).Br(rT0, "empty", "take")
	q.Block("empty").MovI(ir.RegRV, 1).Ret()
	q.Block("take").
		AddI(r14, r14, -1).
		AndI(rT3, r14, 127).
		ShlI(rT3, rT3, 3).
		Add(rT3, rT3, rB2).
		Load(ir.RegRV, rT3, 0).
		Ret()
	q.End()
	return b.Build()
}

// Compress models 129.compress: an LZW-style hash loop — a small loop body
// with a loop-carried "previous code" register dependence and hash-table
// loads/stores that create ambiguous memory dependences (the workload the
// paper says responds to the task-size heuristic).
func Compress() *ir.Program {
	b := ir.NewBuilder("compress")
	const nsym = 6000
	table := b.Zeros(512)
	out := b.Zeros(2)
	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(table)).MovI(rOut, int64(out)).
		MovI(rLCG, 0x5DEECE66D).
		MovI(rT2, 0). // prev code
		MovI(rAcc, 0).MovI(rI, 0).
		Goto("head")
	f.Block("head").SltI(rT0, rI, nsym).Br(rT0, "body", "exit")
	bb := f.Block("body")
	lcgStep(bb, rLCG, rT1, 255) // next symbol
	bb.ShlI(rT3, rT2, 8).
		Add(rT3, rT3, rT1). // key = prev<<8 | sym
		MulI(r10, rT3, 2654435761).
		ShrI(r10, r10, 16).
		AndI(r10, r10, 511).
		ShlI(r10, r10, 3).
		Add(r10, r10, rB0).
		Load(r11, r10, 0).
		Seq(r12, r11, rT3).
		Br(r12, "hit", "miss")
	f.Block("hit"). // present: extend the phrase
			Add(rAcc, rAcc, rT3).
			Mov(rT2, rT3).
			AndI(rT2, rT2, 0xFFFF).
			Goto("latch")
	f.Block("miss"). // absent: emit code, insert, restart phrase
				Store(rT3, r10, 0).
				AddI(rAcc, rAcc, 1).
				Mov(rT2, rT1).
				Goto("latch")
	f.Block("latch").AddI(rI, rI, 1).Goto("head")
	f.Block("exit").Store(rAcc, rOut, 0).Halt()
	f.End()
	return b.Build()
}

// Li models 130.li: a list interpreter — cons-cell allocation, pointer-chase
// traversal, and a mark pass, giving load-dependent addresses the compiler
// cannot disambiguate.
func Li() *ir.Program {
	b := ir.NewBuilder("li")
	const cells = 2048
	heap := b.Zeros(cells * 2) // (car, cdr) pairs
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(heap)).MovI(rOut, int64(out)).
		MovI(rLCG, 0x41C64E6D).
		MovI(r14, 0). // allocation cursor (cell index)
		MovI(rJ, 0).  // list counter
		MovI(rAcc, 0).
		Goto("lists")
	// Build 48 lists of pseudo-random length 1..32; heads chained into a
	// directory at the start of the heap region (cells are never reused).
	f.Block("lists").SltI(rT0, rJ, 48).Br(rT0, "build", "walkinit")
	bb := f.Block("build")
	lcgStep(bb, rLCG, rN, 31)
	bb.AddI(rN, rN, 1).
		MovI(r10, -1). // tail = nil
		MovI(rI, 0).
		Goto("chead")
	f.Block("chead").Slt(rT0, rI, rN).Br(rT0, "cons", "endlist")
	cons := f.Block("cons")
	lcgStep(cons, rLCG, rT1, 1023)
	cons. // cell = alloc cursor; car = value, cdr = tail
		AddI(r14, r14, 1).
		AndI(r11, r14, cells-1).
		ShlI(r12, r11, 4). // *16 bytes per cell
		Add(r12, r12, rB0).
		Store(rT1, r12, 0).
		Store(r10, r12, 8).
		Mov(r10, r11). // tail = this cell
		AddI(rI, rI, 1).
		Goto("chead")
	f.Block("endlist"). // remember head in directory slot j
				ShlI(rT1, rJ, 3).
				Add(rT1, rT1, rOut). // directory lives right after out... use heap tail
				Nop().
				Goto("endlist2")
	f.Block("endlist2"). // store head into heap cell j's spare: reuse car of cell j? keep simple: chase now
				Mov(r13, r10).
				Goto("whead")
	// Walk the list just built, summing cars (pointer chase).
	f.Block("whead").SltI(rT0, r13, 0).Br(rT0, "wdone", "wbody")
	f.Block("wbody").
		ShlI(rT1, r13, 4).
		Add(rT1, rT1, rB0).
		Load(rT2, rT1, 0).
		Add(rAcc, rAcc, rT2).
		Load(r13, rT1, 8). // next
		Goto("whead")
	f.Block("wdone").AddI(rJ, rJ, 1).Goto("lists")
	// Mark pass: sweep all cells, tag odd cars.
	f.Block("walkinit").MovI(rI, 0).Goto("mhead")
	f.Block("mhead").SltI(rT0, rI, cells).Br(rT0, "mbody", "exit")
	f.Block("mbody").
		ShlI(rT1, rI, 4).
		Add(rT1, rT1, rB0).
		Load(rT2, rT1, 0).
		AndI(rT3, rT2, 1).
		Br(rT3, "mark", "mlatch")
	f.Block("mark").
		OrI(rT2, rT2, 4096).
		Store(rT2, rT1, 0).
		AddI(rAcc, rAcc, 1).
		Goto("mlatch")
	f.Block("mlatch").AddI(rI, rI, 1).Goto("mhead")
	f.Block("exit").Store(rAcc, rOut, 0).Halt()
	f.End()
	return b.Build()
}

// Ijpeg models 132.ijpeg: blocked integer image transforms — large
// straight-line loop bodies over 8x8 blocks with regular control flow (the
// integer benchmark whose loop-level tasks predict well in Table 1).
func Ijpeg() *ir.Program {
	b := ir.NewBuilder("ijpeg")
	const blocks = 24
	img := b.Zeros(blocks * 64)
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(img)).MovI(rOut, int64(out)).
		MovI(rLCG, 0x2545F4914F6CDD1D).
		MovI(rAcc, 0).MovI(rJ, 0).
		Goto("fillhead")
	// Fill the image deterministically.
	f.Block("fillhead").SltI(rT0, rJ, blocks*64).Br(rT0, "fill", "xform")
	bb := f.Block("fill")
	lcgStep(bb, rLCG, rT1, 255)
	bb.ShlI(rT2, rJ, 3).
		Add(rT2, rT2, rB0).
		Store(rT1, rT2, 0).
		AddI(rJ, rJ, 1).
		Goto("fillhead")
	// Per block: a row butterfly pass over 8 rows (straight-line body).
	f.Block("xform").MovI(rJ, 0).Goto("bhead")
	f.Block("bhead").SltI(rT0, rJ, blocks).Br(rT0, "rowinit", "exit")
	f.Block("rowinit").
		ShlI(rB1, rJ, 9). // block base: 64 words * 8 bytes
		Add(rB1, rB1, rB0).
		MovI(rI, 0).
		Goto("rhead")
	f.Block("rhead").SltI(rT0, rI, 8).Br(rT0, "rbody", "blatch")
	rb := f.Block("rbody")
	rb.ShlI(rT1, rI, 6). // row base: 8 words * 8 bytes
				Add(rT1, rT1, rB1)
	// Butterfly: pairs (0,7) (1,6) (2,5) (3,4), sums into even slots,
	// differences into odd — one long straight-line block.
	for k := 0; k < 4; k++ {
		lo := int64(k * 8)
		hi := int64((7 - k) * 8)
		rb.Load(r10, rT1, lo).
			Load(r11, rT1, hi).
			Add(r12, r10, r11).
			Sub(r13, r10, r11).
			ShrI(r13, r13, 1).
			Store(r12, rT1, lo).
			Store(r13, rT1, hi).
			Add(rAcc, rAcc, r12)
	}
	rb.AddI(rI, rI, 1).Goto("rhead")
	f.Block("blatch").AddI(rJ, rJ, 1).Goto("bhead")
	f.Block("exit").Store(rAcc, rOut, 0).Halt()
	f.End()
	return b.Build()
}

// Perl models 134.perl: hashing and string-ish inner loops — an
// open-addressing hash with probe loops and per-word byte scans, mixing
// unpredictable exits with pointer-dependent stores.
func Perl() *ir.Program {
	b := ir.NewBuilder("perl")
	const nwords = 1500
	const tblSize = 1024
	tbl := b.Zeros(tblSize)
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(tbl)).MovI(rOut, int64(out)).
		MovI(rLCG, 0x9E3779B9).
		MovI(rAcc, 0).MovI(rI, 0).
		Goto("head")
	f.Block("head").SltI(rT0, rI, nwords).Br(rT0, "mkword", "exit")
	bb := f.Block("mkword")
	lcgStep(bb, rLCG, r10, -1) // the "word": 31 bits
	bb.MovI(r11, 0).           // hash
					MovI(rJ, 0).
					Mov(r12, r10).
					Goto("bhead")
	// Byte scan: hash = hash*31 + byte, 4 bytes.
	f.Block("bhead").SltI(rT0, rJ, 4).Br(rT0, "bbody", "probeinit")
	f.Block("bbody").
		AndI(rT1, r12, 255).
		MulI(r11, r11, 31).
		Add(r11, r11, rT1).
		ShrI(r12, r12, 8).
		AddI(rJ, rJ, 1).
		Goto("bhead")
	// Probe loop: find word or first empty slot (0 = empty).
	f.Block("probeinit").AndI(r13, r11, tblSize-1).MovI(rJ, 0).Goto("phead")
	f.Block("phead").SltI(rT0, rJ, 16).Br(rT0, "pbody", "latch") // probe cap
	f.Block("pbody").
		ShlI(rT1, r13, 3).
		Add(rT1, rT1, rB0).
		Load(rT2, rT1, 0).
		SeqI(rT0, rT2, 0).
		Br(rT0, "insert", "cmp")
	f.Block("insert").
		OrI(r14, r10, 1). // keys are made nonzero
		Store(r14, rT1, 0).
		AddI(rAcc, rAcc, 1).
		Goto("latch")
	f.Block("cmp").
		OrI(r14, r10, 1).
		Seq(rT0, rT2, r14).
		Br(rT0, "found", "next")
	f.Block("found").AddI(rAcc, rAcc, 3).Goto("latch")
	f.Block("next").
		AddI(r13, r13, 1).
		AndI(r13, r13, tblSize-1).
		AddI(rJ, rJ, 1).
		Goto("phead")
	f.Block("latch").AddI(rI, rI, 1).Goto("head")
	f.Block("exit").Store(rAcc, rOut, 0).Halt()
	f.End()
	return b.Build()
}

// Vortex models 147.vortex: an object store — binary-search lookups and
// field updates through moderately sized helper functions, the call-heavy
// integer benchmark with larger callees than cc.
func Vortex() *ir.Program {
	b := ir.NewBuilder("vortex")
	const nrec = 256
	// Records: 4 fields each; field 0 is the sorted key (i*7+3).
	var recs []int64
	for i := 0; i < nrec; i++ {
		recs = append(recs, int64(i*7+3), int64(i), 0, int64(i%13))
	}
	base := b.Data(recs...)
	out := b.Zeros(1)
	lookup := b.DeclareFn("lookup")
	update := b.DeclareFn("update")

	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(base)).MovI(rOut, int64(out)).
		MovI(rLCG, vortexSeed()).
		MovI(rAcc, 0).MovI(rI, 0).
		Goto("head")
	f.Block("head").SltI(rT0, rI, 1200).Br(rT0, "txn", "exit")
	bb := f.Block("txn")
	lcgStep(bb, rLCG, rT1, nrec-1)
	bb.MulI(ir.RegArg0, rT1, 7).
		AddI(ir.RegArg0, ir.RegArg0, 3). // an existing key
		AddI(ir.RegSP, ir.RegSP, -16).
		Store(rI, ir.RegSP, 0).
		Store(rAcc, ir.RegSP, 8).
		Call(lookup, "found")
	f.Block("found").
		Mov(ir.RegArg0, ir.RegRV).
		Call(update, "post")
	f.Block("post").
		Load(rI, ir.RegSP, 0).
		Load(rAcc, ir.RegSP, 8).
		AddI(ir.RegSP, ir.RegSP, 16).
		Add(rAcc, rAcc, ir.RegRV).
		AddI(rI, rI, 1).
		Goto("head")
	f.Block("exit").Store(rAcc, rOut, 0).Halt()
	f.End()

	// lookup(key): binary search over the sorted keys; returns record index.
	l := b.Func("lookup")
	l.Block("entry").
		MovI(r10, 0).    // lo
		MovI(r11, nrec). // hi
		MovI(ir.RegRV, 0).
		Goto("lhead")
	l.Block("lhead").Slt(rT0, r10, r11).Br(rT0, "lbody", "ldone")
	l.Block("lbody").
		Add(r12, r10, r11).
		ShrI(r12, r12, 1). // mid
		ShlI(rT1, r12, 5). // *4 fields *8 bytes
		Add(rT1, rT1, rB0).
		Load(rT2, rT1, 0).
		Slt(rT0, rT2, ir.RegArg0).
		Br(rT0, "goRight", "goLeftOrHit")
	l.Block("goRight").AddI(r10, r12, 1).Goto("lhead")
	l.Block("goLeftOrHit").
		Seq(rT0, rT2, ir.RegArg0).
		Br(rT0, "hit", "goLeft")
	l.Block("hit").Mov(ir.RegRV, r12).Ret()
	l.Block("goLeft").Mov(r11, r12).Goto("lhead")
	l.Block("ldone").Mov(ir.RegRV, r10).AndI(ir.RegRV, ir.RegRV, nrec-1).Ret()
	l.End()

	// update(idx): bump the use counter (field 2) and fold the tag (field 3).
	u := b.Func("update")
	u.Block("entry").
		ShlI(rT1, ir.RegArg0, 5).
		Add(rT1, rT1, rB0).
		Load(rT2, rT1, 16).
		AddI(rT2, rT2, 1).
		Store(rT2, rT1, 16).
		Load(rT3, rT1, 24).
		Xor(ir.RegRV, rT2, rT3).
		AndI(ir.RegRV, ir.RegRV, 1023).
		Ret()
	u.End()
	return b.Build()
}

// vortexSeed returns the LCG seed as int64 (the literal exceeds MaxInt64).
func vortexSeed() int64 {
	s := uint64(0xDA3E39CB94B95BDB)
	return int64(s)
}
