package workloads

import (
	"testing"

	"multiscalar/internal/emu"
)

// goldens pins every workload's dynamic instruction count and final memory
// checksum. A change here means the workload's behaviour changed — update
// deliberately (EXPERIMENTS.md numbers shift with it).
var goldens = map[string]struct {
	instrs   uint64
	checksum uint64
}{
	"go":       {15302, 0x5c232c1a83a234d0},
	"m88ksim":  {125610, 0x348951fc325c0653},
	"cc":       {78503, 0x8222e9c869c57cb4},
	"compress": {132011, 0xe56d2e4c4d0dd259},
	"li":       {40819, 0xa55a5104fe2f08bc},
	"ijpeg":    {24446, 0x9b068bc9c706d28b},
	"perl":     {223064, 0xff9b82d1d9f5e895},
	"vortex":   {141498, 0xdbe9316f02cbd48d},
	"tomcatv":  {53797, 0x8749fe29f28c72fd},
	"swim":     {62570, 0xc10da82b55011d86},
	"su2cor":   {35290, 0xdef334b2fb7fb653},
	"hydro2d":  {53961, 0x91f366f2037f94d7},
	"mgrid":    {39658, 0xc7af65db8ee08757},
	"applu":    {68410, 0x1faa0de1f4211a43},
	"turb3d":   {24140, 0xd8ee28b76af638e6},
	"fpppp":    {12250, 0x97b8535ac3ddadda},
	"apsi":     {42940, 0xb57f5254452c72ea},
	"wave5":    {34019, 0xc4c75def6fc53132},
}

func TestWorkloadGoldens(t *testing.T) {
	for _, w := range All() {
		want, ok := goldens[w.Name]
		if !ok {
			t.Errorf("%s: no golden recorded", w.Name)
			continue
		}
		m := emu.New(w.Build())
		if err := m.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		if m.Count != want.instrs || m.Mem.Checksum() != want.checksum {
			t.Errorf("%s: {%d, %#x}, golden {%d, %#x}",
				w.Name, m.Count, m.Mem.Checksum(), want.instrs, want.checksum)
		}
	}
}
