package workloads

import (
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/emu"
	"multiscalar/internal/ir"
)

const budget = 5_000_000

func TestAllWorkloadsBuildAndValidate(t *testing.T) {
	for _, w := range All() {
		p := w.Build()
		if err := ir.Validate(p); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if p.Name != w.Name {
			t.Errorf("%s: program named %q", w.Name, p.Name)
		}
	}
}

func TestAllWorkloadsTerminate(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			m := emu.New(w.Build())
			if err := m.Run(budget); err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			if m.Count < 5_000 {
				t.Errorf("%s: only %d dynamic instructions; too small to evaluate", w.Name, m.Count)
			}
			if m.Count > 1_000_000 {
				t.Errorf("%s: %d dynamic instructions; too large for the experiment suite", w.Name, m.Count)
			}
			if m.Mem.Checksum() == emu.NewMemory().Checksum() {
				t.Errorf("%s: left no trace in memory", w.Name)
			}
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range All() {
		m1 := emu.New(w.Build())
		m2 := emu.New(w.Build())
		if err := m1.Run(budget); err != nil {
			t.Fatal(err)
		}
		if err := m2.Run(budget); err != nil {
			t.Fatal(err)
		}
		if m1.Mem.Checksum() != m2.Mem.Checksum() || m1.Count != m2.Count {
			t.Errorf("%s: nondeterministic run", w.Name)
		}
	}
}

func TestWorkloadsPartitionUnderAllHeuristics(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, h := range []core.Heuristic{core.BasicBlock, core.ControlFlow, core.DataDependence} {
				part, err := core.Select(w.Build(), core.Options{Heuristic: h, TaskSize: true})
				if err != nil {
					t.Fatalf("%v: %v", h, err)
				}
				var instrs int
				if err := core.WalkTasks(part, budget, func(te core.TaskExec) {
					instrs += te.DynInstrs
				}); err != nil {
					t.Fatalf("%v: WalkTasks: %v", h, err)
				}
				m := emu.New(part.Prog)
				if err := m.Run(budget); err != nil {
					t.Fatal(err)
				}
				if uint64(instrs) != m.Count {
					t.Errorf("%v: tasks cover %d of %d instructions", h, instrs, m.Count)
				}
			}
		})
	}
}

func TestNamesAndByName(t *testing.T) {
	names := Names()
	if len(names) != 18 {
		t.Fatalf("%d workloads, want 18", len(names))
	}
	for _, n := range names {
		w, err := ByName(n)
		if err != nil || w.Name != n {
			t.Errorf("ByName(%q) = %v, %v", n, w.Name, err)
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName accepted an unknown name")
	}
	intCount, fpCount := 0, 0
	for _, w := range All() {
		if w.FP {
			fpCount++
		} else {
			intCount++
		}
	}
	if intCount != 8 || fpCount != 10 {
		t.Errorf("suite split %d int / %d fp, want 8/10", intCount, fpCount)
	}
}

func TestSuiteSpansTaskSizes(t *testing.T) {
	// The suite must span the paper's range: small branchy integer blocks
	// and large FP loop bodies. Check basic-block task sizes diverge.
	sizes := map[string]float64{}
	for _, name := range []string{"go", "fpppp"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		part, err := core.Select(w.Build(), core.Options{Heuristic: core.BasicBlock})
		if err != nil {
			t.Fatal(err)
		}
		var instrs, tasks int
		if err := core.WalkTasks(part, budget, func(te core.TaskExec) {
			instrs += te.DynInstrs
			tasks++
		}); err != nil {
			t.Fatal(err)
		}
		sizes[name] = float64(instrs) / float64(tasks)
	}
	if sizes["go"] >= 12 {
		t.Errorf("go basic blocks average %.1f instrs; expected small branchy blocks", sizes["go"])
	}
	if sizes["fpppp"] <= 20 {
		t.Errorf("fpppp basic blocks average %.1f instrs; expected large blocks", sizes["fpppp"])
	}
}
