package workloads

import "multiscalar/internal/ir"

// FP scratch registers.
var (
	f0 = ir.F(0)
	f1 = ir.F(1)
	f2 = ir.F(2)
	f3 = ir.F(3)
	f4 = ir.F(4)
	f5 = ir.F(5)
	f6 = ir.F(6)
)

// fillGrid emits a deterministic initialization loop writing f(i) = i*scale
// to n words at base (register rB0 must hold base already).
func fillGrid(f *ir.FuncBuilder, n int64, scale float64, next string) {
	f.Block("fillinit").MovI(rJ, 0).FMovI(f6, scale).Goto("fillhead")
	f.Block("fillhead").SltI(rT0, rJ, n).Br(rT0, "fillbody", next)
	f.Block("fillbody").
		CvtIF(f0, rJ).
		FMul(f0, f0, f6).
		ShlI(rT1, rJ, 3).
		Add(rT1, rT1, rB0).
		Store(f0, rT1, 0).
		AddI(rJ, rJ, 1).
		Goto("fillhead")
}

// reduceGrid emits a reduction loop summing n words at rB1 into f0 and
// storing the bits to rOut, then halting.
func reduceGrid(f *ir.FuncBuilder, n int64) {
	f.Block("redinit").MovI(rJ, 0).FMovI(f0, 0).Goto("redhead")
	f.Block("redhead").SltI(rT0, rJ, n).Br(rT0, "redbody", "redout")
	f.Block("redbody").
		ShlI(rT1, rJ, 3).
		Add(rT1, rT1, rB1).
		Load(f1, rT1, 0).
		FAdd(f0, f0, f1).
		AddI(rJ, rJ, 1).
		Goto("redhead")
	f.Block("redout").Store(f0, rOut, 0).Halt()
}

// Tomcatv models 101.tomcatv: regular 2-D mesh smoothing — perfectly nested
// loops with large predictable bodies (the paper's best-behaved FP shape).
func Tomcatv() *ir.Program {
	b := ir.NewBuilder("tomcatv")
	const n = 26
	a := b.Zeros(n * n)
	c := b.Zeros(n * n)
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(a)).MovI(rB1, int64(c)).MovI(rOut, int64(out)).
		Goto("fillinit")
	fillGrid(f, n*n, 0.5, "sweepinit")
	f.Block("sweepinit").MovI(r14, 0).FMovI(f5, 0.25).Goto("sweephead")
	f.Block("sweephead").SltI(rT0, r14, 4).Br(rT0, "jinit", "redinit")
	f.Block("jinit").MovI(rJ, 1).Goto("jhead")
	f.Block("jhead").SltI(rT0, rJ, n-1).Br(rT0, "iinit", "sweeplatch")
	f.Block("iinit").MovI(rI, 1).Goto("ihead")
	f.Block("ihead").SltI(rT0, rI, n-1).Br(rT0, "ibody", "jlatch")
	f.Block("ibody").
		MulI(rT1, rJ, n).
		Add(rT1, rT1, rI).
		ShlI(rT1, rT1, 3).
		Add(rT2, rT1, rB0).
		Load(f0, rT2, -8).
		Load(f1, rT2, 8).
		Load(f2, rT2, -8*n).
		Load(f3, rT2, 8*n).
		FAdd(f0, f0, f1).
		FAdd(f2, f2, f3).
		FAdd(f0, f0, f2).
		FMul(f0, f0, f5).
		Add(rT3, rT1, rB1).
		Store(f0, rT3, 0).
		AddI(rI, rI, 1).
		Goto("ihead")
	f.Block("jlatch").AddI(rJ, rJ, 1).Goto("jhead")
	f.Block("sweeplatch"). // swap roles of a and c
				Mov(rT1, rB0).
				Mov(rB0, rB1).
				Mov(rB1, rT1).
				AddI(r14, r14, 1).
				Goto("sweephead")
	reduceGrid(f, n*n)
	f.End()
	return b.Build()
}

// Swim models 102.swim: shallow-water stencils over three fields with
// distinct coefficient patterns per field.
func Swim() *ir.Program {
	b := ir.NewBuilder("swim")
	const n = 24
	u := b.Zeros(n * n)
	v := b.Zeros(n * n)
	p := b.Zeros(n * n)
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(u)).MovI(rOut, int64(out)).
		Goto("fillinit")
	fillGrid(f, n*n, 0.125, "fill2")
	// Second and third fields get shifted copies of the first.
	f.Block("fill2").
		MovI(rB1, int64(v)).MovI(rB2, int64(p)).MovI(rJ, 0).
		Goto("f2head")
	f.Block("f2head").SltI(rT0, rJ, n*n).Br(rT0, "f2body", "stepinit")
	f.Block("f2body").
		ShlI(rT1, rJ, 3).
		Add(rT2, rT1, rB0).
		Load(f0, rT2, 0).
		FMovI(f1, 1.5).
		FMul(f2, f0, f1).
		Add(rT3, rT1, rB1).
		Store(f2, rT3, 0).
		FMovI(f1, -0.5).
		FMul(f2, f0, f1).
		Add(rT3, rT1, rB2).
		Store(f2, rT3, 0).
		AddI(rJ, rJ, 1).
		Goto("f2head")
	f.Block("stepinit").MovI(r14, 0).FMovI(f5, 0.2).Goto("stephead")
	f.Block("stephead").SltI(rT0, r14, 3).Br(rT0, "jinit", "redinit")
	f.Block("jinit").MovI(rJ, 1).Goto("jhead")
	f.Block("jhead").SltI(rT0, rJ, n-1).Br(rT0, "iinit", "steplatch")
	f.Block("iinit").MovI(rI, 1).Goto("ihead")
	f.Block("ihead").SltI(rT0, rI, n-1).Br(rT0, "ibody", "jlatch")
	f.Block("ibody"). // u += c*(v_east - v_west); v += c*(p_north - p_south); p += c*u
				MulI(rT1, rJ, n).
				Add(rT1, rT1, rI).
				ShlI(rT1, rT1, 3).
				Add(rT2, rT1, rB1).
				Load(f0, rT2, 8).
				Load(f1, rT2, -8).
				FSub(f0, f0, f1).
				FMul(f0, f0, f5).
				Add(rT3, rT1, rB0).
				Load(f1, rT3, 0).
				FAdd(f1, f1, f0).
				Store(f1, rT3, 0).
				Add(rT2, rT1, rB2).
				Load(f2, rT2, 8*n).
				Load(f3, rT2, -8*n).
				FSub(f2, f2, f3).
				FMul(f2, f2, f5).
				Add(rT3, rT1, rB1).
				Load(f3, rT3, 0).
				FAdd(f3, f3, f2).
				Store(f3, rT3, 0).
				Add(rT3, rT1, rB2).
				Load(f4, rT3, 0).
				FMul(f1, f1, f5).
				FAdd(f4, f4, f1).
				Store(f4, rT3, 0).
				AddI(rI, rI, 1).
				Goto("ihead")
	f.Block("jlatch").AddI(rJ, rJ, 1).Goto("jhead")
	f.Block("steplatch").AddI(r14, r14, 1).Goto("stephead")
	reduceGrid(f, n*n)
	f.End()
	return b.Build()
}

// Su2cor models 103.su2cor: complex matrix-vector products — interleaved
// real/imaginary arrays with an inner dot-product reduction (loop-carried FP
// dependence inside the task).
func Su2cor() *ir.Program {
	b := ir.NewBuilder("su2cor")
	const n = 20
	mat := b.Zeros(n * n * 2)
	vec := b.Zeros(n * 2)
	res := b.Zeros(n * 2)
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(mat)).MovI(rOut, int64(out)).
		Goto("fillinit")
	fillGrid(f, n*n*2, 0.01, "fillvec")
	f.Block("fillvec").MovI(rB1, int64(vec)).MovI(rJ, 0).Goto("fvhead")
	f.Block("fvhead").SltI(rT0, rJ, n*2).Br(rT0, "fvbody", "mvinit")
	f.Block("fvbody").
		CvtIF(f0, rJ).
		FMovI(f1, 0.03).
		FMul(f0, f0, f1).
		FMovI(f1, 1.0).
		FAdd(f0, f0, f1).
		ShlI(rT1, rJ, 3).
		Add(rT1, rT1, rB1).
		Store(f0, rT1, 0).
		AddI(rJ, rJ, 1).
		Goto("fvhead")
	// res[i] = sum_j mat[i][j] * vec[j] (complex), 3 repetitions.
	f.Block("mvinit").MovI(rB2, int64(res)).MovI(r14, 0).Goto("rephead")
	f.Block("rephead").SltI(rT0, r14, 3).Br(rT0, "rowinit", "redinit")
	f.Block("rowinit").MovI(rI, 0).Goto("rowhead")
	f.Block("rowhead").SltI(rT0, rI, n).Br(rT0, "dotinit", "replatch")
	f.Block("dotinit").
		FMovI(f4, 0). // re acc
		FMovI(f5, 0). // im acc
		MovI(rJ, 0).
		Goto("dothead")
	f.Block("dothead").SltI(rT0, rJ, n).Br(rT0, "dotbody", "rowstore")
	f.Block("dotbody").
		MulI(rT1, rI, n*16).
		ShlI(rT2, rJ, 4).
		Add(rT1, rT1, rT2).
		Add(rT1, rT1, rB0).
		Load(f0, rT1, 0). // m.re
		Load(f1, rT1, 8). // m.im
		ShlI(rT2, rJ, 4).
		Add(rT2, rT2, rB1).
		Load(f2, rT2, 0). // v.re
		Load(f3, rT2, 8). // v.im
		FMul(f6, f0, f2).
		FAdd(f4, f4, f6).
		FMul(f6, f1, f3).
		FSub(f4, f4, f6).
		FMul(f6, f0, f3).
		FAdd(f5, f5, f6).
		FMul(f6, f1, f2).
		FAdd(f5, f5, f6).
		AddI(rJ, rJ, 1).
		Goto("dothead")
	f.Block("rowstore").
		ShlI(rT1, rI, 4).
		Add(rT1, rT1, rB2).
		Store(f4, rT1, 0).
		Store(f5, rT1, 8).
		AddI(rI, rI, 1).
		Goto("rowhead")
	f.Block("replatch").AddI(r14, r14, 1).Goto("rephead")
	f.Block("redinit").MovI(rJ, 0).FMovI(f0, 0).Mov(rB1, rB2).Goto("redhead")
	f.Block("redhead").SltI(rT0, rJ, n*2).Br(rT0, "redbody", "redout")
	f.Block("redbody").
		ShlI(rT1, rJ, 3).
		Add(rT1, rT1, rB1).
		Load(f1, rT1, 0).
		FAdd(f0, f0, f1).
		AddI(rJ, rJ, 1).
		Goto("redhead")
	f.Block("redout").Store(f0, rOut, 0).Halt()
	f.End()
	return b.Build()
}

// Hydro2d models 104.hydro2d: stencils with boundary-condition branches
// inside the inner loop — the FP benchmark with small, branchy tasks that
// the paper's Table 1 singles out.
func Hydro2d() *ir.Program {
	b := ir.NewBuilder("hydro2d")
	const n = 24
	g := b.Zeros(n * n)
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(g)).MovI(rB1, int64(g)).MovI(rOut, int64(out)).
		Goto("fillinit")
	fillGrid(f, n*n, 0.25, "sweepinit")
	f.Block("sweepinit").MovI(r14, 0).FMovI(f5, 0.3).Goto("sweephead")
	f.Block("sweephead").SltI(rT0, r14, 3).Br(rT0, "jinit", "redinit")
	f.Block("jinit").MovI(rJ, 0).Goto("jhead")
	f.Block("jhead").SltI(rT0, rJ, n).Br(rT0, "iinit", "sweeplatch")
	f.Block("iinit").MovI(rI, 0).Goto("ihead")
	f.Block("ihead").SltI(rT0, rI, n).Br(rT0, "cellhead", "jlatch")
	f.Block("cellhead"). // boundary test: first/last row or column?
				SeqI(rT1, rJ, 0).
				SeqI(rT2, rJ, n-1).
				Or(rT1, rT1, rT2).
				SeqI(rT2, rI, 0).
				Or(rT1, rT1, rT2).
				SeqI(rT2, rI, n-1).
				Or(rT1, rT1, rT2).
				Br(rT1, "boundary", "interior")
	f.Block("boundary"). // reflective boundary: damp in place
				MulI(rT1, rJ, n).
				Add(rT1, rT1, rI).
				ShlI(rT1, rT1, 3).
				Add(rT1, rT1, rB0).
				Load(f0, rT1, 0).
				FMovI(f1, 0.5).
				FMul(f0, f0, f1).
				Store(f0, rT1, 0).
				Goto("ilatch")
	f.Block("interior").
		MulI(rT1, rJ, n).
		Add(rT1, rT1, rI).
		ShlI(rT1, rT1, 3).
		Add(rT1, rT1, rB0).
		Load(f0, rT1, -8).
		Load(f1, rT1, 8).
		FAdd(f0, f0, f1).
		FMul(f0, f0, f5).
		Load(f1, rT1, 0).
		FAdd(f0, f0, f1).
		FMovI(f2, 0.625).
		FMul(f0, f0, f2).
		Store(f0, rT1, 0).
		Goto("ilatch")
	f.Block("ilatch").AddI(rI, rI, 1).Goto("ihead")
	f.Block("jlatch").AddI(rJ, rJ, 1).Goto("jhead")
	f.Block("sweeplatch").AddI(r14, r14, 1).Goto("sweephead")
	reduceGrid(f, n*n)
	f.End()
	return b.Build()
}

// Mgrid models 107.mgrid: a two-level multigrid V-cycle fragment — strided
// 3-D stencil relaxation plus restriction to a coarser grid.
func Mgrid() *ir.Program {
	b := ir.NewBuilder("mgrid")
	const n = 10 // fine grid n^3
	const c = 5  // coarse grid c^3
	fine := b.Zeros(n * n * n)
	coarse := b.Zeros(c * c * c)
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(fine)).MovI(rOut, int64(out)).
		Goto("fillinit")
	fillGrid(f, n*n*n, 0.05, "relaxinit")
	// Relax: 7-point stencil over the interior, 2 sweeps.
	f.Block("relaxinit").MovI(r14, 0).FMovI(f5, 0.125).Goto("swhead")
	f.Block("swhead").SltI(rT0, r14, 2).Br(rT0, "kinit", "restrictinit")
	f.Block("kinit").MovI(r13, 1).Goto("khead")
	f.Block("khead").SltI(rT0, r13, n-1).Br(rT0, "jinit", "swlatch")
	f.Block("jinit").MovI(rJ, 1).Goto("jhead")
	f.Block("jhead").SltI(rT0, rJ, n-1).Br(rT0, "iinit", "klatch")
	f.Block("iinit").MovI(rI, 1).Goto("ihead")
	f.Block("ihead").SltI(rT0, rI, n-1).Br(rT0, "ibody", "jlatch")
	f.Block("ibody").
		MulI(rT1, r13, n*n).
		MulI(rT2, rJ, n).
		Add(rT1, rT1, rT2).
		Add(rT1, rT1, rI).
		ShlI(rT1, rT1, 3).
		Add(rT1, rT1, rB0).
		Load(f0, rT1, 0).
		Load(f1, rT1, 8).
		FAdd(f0, f0, f1).
		Load(f1, rT1, -8).
		FAdd(f0, f0, f1).
		Load(f1, rT1, 8*n).
		FAdd(f0, f0, f1).
		Load(f1, rT1, -8*n).
		FAdd(f0, f0, f1).
		Load(f1, rT1, 8*n*n).
		FAdd(f0, f0, f1).
		Load(f1, rT1, -8*n*n).
		FAdd(f0, f0, f1).
		FMul(f0, f0, f5).
		Store(f0, rT1, 0).
		AddI(rI, rI, 1).
		Goto("ihead")
	f.Block("jlatch").AddI(rJ, rJ, 1).Goto("jhead")
	f.Block("klatch").AddI(r13, r13, 1).Goto("khead")
	f.Block("swlatch").AddI(r14, r14, 1).Goto("swhead")
	// Restrict: coarse[k][j][i] = fine[2k][2j][2i].
	f.Block("restrictinit").MovI(rB1, int64(coarse)).MovI(r13, 0).Goto("rkhead")
	f.Block("rkhead").SltI(rT0, r13, c).Br(rT0, "rjinit", "redinit")
	f.Block("rjinit").MovI(rJ, 0).Goto("rjhead")
	f.Block("rjhead").SltI(rT0, rJ, c).Br(rT0, "riinit", "rklatch")
	f.Block("riinit").MovI(rI, 0).Goto("rihead")
	f.Block("rihead").SltI(rT0, rI, c).Br(rT0, "ribody", "rjlatch")
	f.Block("ribody").
		ShlI(rT1, r13, 1).
		MulI(rT1, rT1, n*n).
		ShlI(rT2, rJ, 1).
		MulI(rT2, rT2, n).
		Add(rT1, rT1, rT2).
		ShlI(rT2, rI, 1).
		Add(rT1, rT1, rT2).
		ShlI(rT1, rT1, 3).
		Add(rT1, rT1, rB0).
		Load(f0, rT1, 0).
		MulI(rT2, r13, c*c).
		MulI(rT3, rJ, c).
		Add(rT2, rT2, rT3).
		Add(rT2, rT2, rI).
		ShlI(rT2, rT2, 3).
		Add(rT2, rT2, rB1).
		Store(f0, rT2, 0).
		AddI(rI, rI, 1).
		Goto("rihead")
	f.Block("rjlatch").AddI(rJ, rJ, 1).Goto("rjhead")
	f.Block("rklatch").AddI(r13, r13, 1).Goto("rkhead")
	reduceGrid(f, c*c*c)
	f.End()
	return b.Build()
}
