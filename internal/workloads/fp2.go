package workloads

import "multiscalar/internal/ir"

// Applu models 110.applu: lower/upper SSOR sweeps — the value written at
// row i feeds row i+1, a serial loop-carried memory dependence that stresses
// the ARB and synchronization table.
func Applu() *ir.Program {
	b := ir.NewBuilder("applu")
	const n = 40
	g := b.Zeros(n * n)
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(g)).MovI(rB1, int64(g)).MovI(rOut, int64(out)).
		Goto("fillinit")
	fillGrid(f, n*n, 0.1, "lowerinit")
	// Lower sweep: g[j][i] += 0.4*g[j-1][i] for j = 1..n-1.
	f.Block("lowerinit").FMovI(f5, 0.4).MovI(rJ, 1).Goto("ljhead")
	f.Block("ljhead").SltI(rT0, rJ, n).Br(rT0, "liinit", "upperinit")
	f.Block("liinit").MovI(rI, 0).Goto("lihead")
	f.Block("lihead").SltI(rT0, rI, n).Br(rT0, "libody", "ljlatch")
	f.Block("libody").
		MulI(rT1, rJ, n).
		Add(rT1, rT1, rI).
		ShlI(rT1, rT1, 3).
		Add(rT1, rT1, rB0).
		Load(f0, rT1, -8*n). // previous row, written by the previous j-task
		FMul(f0, f0, f5).
		Load(f1, rT1, 0).
		FAdd(f1, f1, f0).
		Store(f1, rT1, 0).
		AddI(rI, rI, 1).
		Goto("lihead")
	f.Block("ljlatch").AddI(rJ, rJ, 1).Goto("ljhead")
	// Upper sweep: g[j][i] += 0.2*g[j+1][i] for j = n-2..0.
	f.Block("upperinit").FMovI(f5, 0.2).MovI(rJ, n-2).Goto("ujhead")
	f.Block("ujhead").SltI(rT0, rJ, 0).Br(rT0, "redinit", "uiinit")
	f.Block("uiinit").MovI(rI, 0).Goto("uihead")
	f.Block("uihead").SltI(rT0, rI, n).Br(rT0, "uibody", "ujlatch")
	f.Block("uibody").
		MulI(rT1, rJ, n).
		Add(rT1, rT1, rI).
		ShlI(rT1, rT1, 3).
		Add(rT1, rT1, rB0).
		Load(f0, rT1, 8*n).
		FMul(f0, f0, f5).
		Load(f1, rT1, 0).
		FAdd(f1, f1, f0).
		Store(f1, rT1, 0).
		AddI(rI, rI, 1).
		Goto("uihead")
	f.Block("ujlatch").AddI(rJ, rJ, -1).Goto("ujhead")
	reduceGrid(f, n*n)
	f.End()
	return b.Build()
}

// Turb3d models 125.turb3d: FFT-style butterfly passes — log2(n) passes of
// strided pair updates, with the stride doubling every pass (non-unit,
// predictable access patterns).
func Turb3d() *ir.Program {
	b := ir.NewBuilder("turb3d")
	const n = 256 // power of two
	g := b.Zeros(n)
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(g)).MovI(rB1, int64(g)).MovI(rOut, int64(out)).
		Goto("fillinit")
	fillGrid(f, n, 0.02, "passinit")
	// for stride = 1; stride < n; stride <<= 1:
	//   for base = 0; base < n; base += 2*stride:
	//     for k = 0; k < stride; k++: butterfly(base+k, base+k+stride)
	f.Block("passinit").MovI(r14, 1).FMovI(f5, 0.7071067811865476).Goto("phead")
	f.Block("phead").SltI(rT0, r14, n).Br(rT0, "binit", "redinit")
	f.Block("binit").MovI(r13, 0).Goto("bhead")
	f.Block("bhead").SltI(rT0, r13, n).Br(rT0, "kinit", "platch")
	f.Block("kinit").MovI(rI, 0).Goto("khead")
	f.Block("khead").Slt(rT0, rI, r14).Br(rT0, "kbody", "blatch")
	f.Block("kbody").
		Add(rT1, r13, rI).
		ShlI(rT1, rT1, 3).
		Add(rT1, rT1, rB0).
		ShlI(rT2, r14, 3).
		Add(rT2, rT2, rT1). // partner address
		Load(f0, rT1, 0).
		Load(f1, rT2, 0).
		FAdd(f2, f0, f1).
		FSub(f3, f0, f1).
		FMul(f2, f2, f5).
		FMul(f3, f3, f5).
		Store(f2, rT1, 0).
		Store(f3, rT2, 0).
		AddI(rI, rI, 1).
		Goto("khead")
	f.Block("blatch").
		ShlI(rT1, r14, 1).
		Add(r13, r13, rT1).
		Goto("bhead")
	f.Block("platch").ShlI(r14, r14, 1).Goto("phead")
	reduceGrid(f, n)
	f.End()
	return b.Build()
}

// Fpppp models 145.fpppp: enormous straight-line floating-point basic
// blocks (two-electron integrals) called from a thin driver loop — the
// benchmark whose basic blocks are already large and which responds to the
// task-size heuristic in the paper.
func Fpppp() *ir.Program {
	b := ir.NewBuilder("fpppp")
	const items = 80
	// Input integrals are build-time data (fpppp reads its input deck), so
	// the dynamic profile is dominated by the giant kernel blocks.
	var deck []float64
	for i := 0; i < items*8; i++ {
		deck = append(deck, 0.017*float64(i)+0.31)
	}
	src := b.DataF(deck...)
	out := b.Zeros(1)
	kernel := b.DeclareFn("kernel")

	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(src)).MovI(rOut, int64(out)).
		Goto("drive")
	f.Block("drive").FMovI(f6, 0).MovI(rI, 0).Goto("head")
	f.Block("head").SltI(rT0, rI, items).Br(rT0, "callk", "done")
	f.Block("callk").
		ShlI(ir.RegArg0, rI, 6). // item base offset: 8 words * 8 bytes
		Add(ir.RegArg0, ir.RegArg0, rB0).
		AddI(ir.RegSP, ir.RegSP, -8).
		Store(rI, ir.RegSP, 0).
		Call(kernel, "post")
	f.Block("post").
		Load(rI, ir.RegSP, 0).
		AddI(ir.RegSP, ir.RegSP, 8).
		Load(f0, ir.RegArg0, 0). // kernel writes its result to slot 0
		FAdd(f6, f6, f0).
		AddI(rI, rI, 1).
		Goto("head")
	f.Block("done").Store(f6, rOut, 0).Halt()
	f.End()

	// kernel(base): one gigantic straight-line block of dependent and
	// independent FP operations over the item's 8 inputs.
	k := b.Func("kernel")
	kb := k.Block("entry")
	for i := 0; i < 8; i++ {
		kb.Load(ir.F(8+i), ir.RegArg0, int64(i*8))
	}
	kb.FMovI(f5, 1.0009765625)
	// ~20 rounds of register-level FP mixing: a long dependence chain
	// interleaved with independent work, all in one basic block.
	for r := 0; r < 20; r++ {
		a := ir.F(8 + (r % 8))
		bq := ir.F(8 + ((r + 3) % 8))
		c := ir.F(8 + ((r + 5) % 8))
		kb.FMul(f0, a, bq).
			FAdd(f1, bq, c).
			FSub(f2, f0, f1).
			FMul(f2, f2, f5).
			FAdd(a, a, f2).
			FMul(c, c, f5)
	}
	kb.FMovI(f3, 0)
	for i := 0; i < 8; i++ {
		kb.FAdd(f3, f3, ir.F(8+i))
	}
	kb.Store(f3, ir.RegArg0, 0)
	kb.Ret()
	k.End()
	return b.Build()
}

// Apsi models 141.apsi: column physics with an inner iterative solver whose
// trip count is data-dependent — regular outer loops around a
// convergence-test inner loop.
func Apsi() *ir.Program {
	b := ir.NewBuilder("apsi")
	const cols = 400
	g := b.Zeros(cols)
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(g)).MovI(rB1, int64(g)).MovI(rOut, int64(out)).
		Goto("fillinit")
	fillGrid(f, cols, 1.7, "colinit")
	f.Block("colinit").
		FMovI(f5, 0.5).
		FMovI(f4, 0.001). // tolerance
		MovI(rI, 0).
		Goto("chead")
	f.Block("chead").SltI(rT0, rI, cols).Br(rT0, "solve", "redinit")
	f.Block("solve"). // Newton iteration for sqrt(col value)
				ShlI(rT1, rI, 3).
				Add(rT1, rT1, rB0).
				Load(f0, rT1, 0).
				FMovI(f1, 1.0).
				FAdd(f1, f1, f0). // initial guess
				FMul(f1, f1, f5).
				MovI(rJ, 0).
				Goto("nhead")
	f.Block("nhead").SltI(rT0, rJ, 30).Br(rT0, "nbody", "store")
	f.Block("nbody").
		FDiv(f2, f0, f1).
		FAdd(f2, f2, f1).
		FMul(f2, f2, f5). // next guess
		FSub(f3, f2, f1).
		FAbs(f3, f3).
		Mov(f1, f2).
		FSlt(rT0, f3, f4).
		AddI(rJ, rJ, 1).
		Br(rT0, "store", "nhead") // data-dependent early exit
	f.Block("store").
		ShlI(rT1, rI, 3).
		Add(rT1, rT1, rB0).
		Store(f1, rT1, 0).
		AddI(rI, rI, 1).
		Goto("chead")
	reduceGrid(f, cols)
	f.End()
	return b.Build()
}

// Wave5 models 146.wave5: particle-in-cell — particles gather field values
// at computed cells, update, and scatter charge back, producing
// compile-time-ambiguous cross-task memory dependences.
func Wave5() *ir.Program {
	b := ir.NewBuilder("wave5")
	const nparticles = 600
	const ncells = 128
	field := b.Zeros(ncells)
	charge := b.Zeros(ncells)
	pos := b.Zeros(nparticles)
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").
		MovI(rB0, int64(field)).MovI(rB1, int64(charge)).
		MovI(rB2, int64(pos)).MovI(rOut, int64(out)).
		MovI(rLCG, 0x6C078965).
		Goto("fillinit")
	// Fill the field (rB0) through the shared helper.
	fillGrid(f, ncells, 0.04, "pinit")
	// Scatter particles to pseudo-random cells.
	f.Block("pinit").MovI(rI, 0).Goto("pfhead")
	f.Block("pfhead").SltI(rT0, rI, nparticles).Br(rT0, "pfbody", "stepinit")
	bb := f.Block("pfbody")
	lcgStep(bb, rLCG, rT1, ncells-1)
	bb.ShlI(rT2, rI, 3).
		Add(rT2, rT2, rB2).
		Store(rT1, rT2, 0).
		AddI(rI, rI, 1).
		Goto("pfhead")
	// Two PIC steps: gather field at cell, move particle, scatter charge.
	f.Block("stepinit").MovI(r14, 0).FMovI(f5, 0.9).Goto("sthead")
	f.Block("sthead").SltI(rT0, r14, 2).Br(rT0, "ppinit", "redinit")
	f.Block("ppinit").MovI(rI, 0).Goto("pphead")
	f.Block("pphead").SltI(rT0, rI, nparticles).Br(rT0, "ppbody", "stlatch")
	f.Block("ppbody").
		ShlI(rT1, rI, 3).
		Add(rT1, rT1, rB2).
		Load(r10, rT1, 0). // cell index
		ShlI(rT2, r10, 3).
		Add(rT2, rT2, rB0).
		Load(f0, rT2, 0). // gather field
		FMul(f0, f0, f5).
		CvtFI(r11, f0). // displacement
		Add(r10, r10, r11).
		AndI(r10, r10, ncells-1). // new cell
		Store(r10, rT1, 0).
		ShlI(rT2, r10, 3).
		Add(rT2, rT2, rB1).
		Load(f1, rT2, 0). // scatter charge (read-modify-write)
		FMovI(f2, 1.0).
		FAdd(f1, f1, f2).
		Store(f1, rT2, 0).
		AddI(rI, rI, 1).
		Goto("pphead")
	f.Block("stlatch").AddI(r14, r14, 1).Goto("sthead")
	reduceGrid(f, ncells)
	f.End()
	return b.Build()
}
