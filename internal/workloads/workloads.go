// Package workloads provides the evaluation inputs of the reproduction: one
// synthetic benchmark per SPEC95 program the paper measures, written against
// the IR builder. Real SPEC95 sources and a 1998 gcc port are unavailable,
// so each workload is designed to reproduce the *task-selection-relevant*
// character of its namesake — control-flow regularity, basic-block size,
// call density, loop-body size, and the placement of loop-carried register
// and memory dependences — rather than its exact computation. DESIGN.md
// documents this substitution.
//
// All workloads are deterministic (seeded LCG input generators, no host
// randomness) and write a final checksum into their data segment, which the
// tests compare between the sequential emulator and the timing simulator.
package workloads

import (
	"fmt"

	"multiscalar/internal/gen"
	"multiscalar/internal/ir"
)

// Workload names one benchmark program.
type Workload struct {
	// Name matches the SPEC95 program it stands in for (e.g. "compress").
	Name string
	// FP marks the floating-point suite (Figure 5's right-hand plot).
	FP bool
	// Build constructs a fresh program (programs are mutable; never share).
	Build func() *ir.Program
}

// All returns every workload: the 8 integer and 10 floating-point programs
// of the paper's SPEC95 evaluation, in the paper's order.
func All() []Workload {
	return []Workload{
		{Name: "go", Build: Go},
		{Name: "m88ksim", Build: M88ksim},
		{Name: "cc", Build: CC},
		{Name: "compress", Build: Compress},
		{Name: "li", Build: Li},
		{Name: "ijpeg", Build: Ijpeg},
		{Name: "perl", Build: Perl},
		{Name: "vortex", Build: Vortex},
		{Name: "tomcatv", FP: true, Build: Tomcatv},
		{Name: "swim", FP: true, Build: Swim},
		{Name: "su2cor", FP: true, Build: Su2cor},
		{Name: "hydro2d", FP: true, Build: Hydro2d},
		{Name: "mgrid", FP: true, Build: Mgrid},
		{Name: "applu", FP: true, Build: Applu},
		{Name: "turb3d", FP: true, Build: Turb3d},
		{Name: "fpppp", FP: true, Build: Fpppp},
		{Name: "apsi", FP: true, Build: Apsi},
		{Name: "wave5", FP: true, Build: Wave5},
	}
}

// ByName returns the workload with the given name. Names carrying the
// generator prefix ("gen:") are resolved through internal/gen: the full
// parameter vector lives inside the name, so a generated workload flows
// through the grid engine and its caches exactly like a hand-built one, and
// equal names always rebuild byte-identical programs.
func ByName(name string) (Workload, error) {
	if gen.IsName(name) {
		p, err := gen.ParseName(name)
		if err != nil {
			return Workload{}, fmt.Errorf("workloads: %w", err)
		}
		return Workload{Name: name, Build: func() *ir.Program { return gen.Generate(p) }}, nil
	}
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names lists all workload names in order.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	return out
}

// Conventional register roles shared by the workload sources. Each workload
// is self-contained; these are just naming conventions for readability.
const (
	rI   = ir.Reg(3) // primary induction
	rJ   = ir.Reg(4) // secondary induction
	rT0  = ir.Reg(5) // temporaries
	rT1  = ir.Reg(6)
	rT2  = ir.Reg(7)
	rT3  = ir.Reg(9)
	rB0  = ir.Reg(16) // base addresses
	rB1  = ir.Reg(17)
	rB2  = ir.Reg(18)
	rB3  = ir.Reg(19)
	rLCG = ir.Reg(20) // LCG state
	rAcc = ir.Reg(21) // running checksum
	rN   = ir.Reg(22) // loop bound
	rOut = ir.Reg(23) // checksum output base
)

// lcgStep advances the LCG state register and leaves (state >> 33) & mask in
// out. The constants are Knuth's MMIX LCG.
func lcgStep(bb *ir.BlockBuilder, state, out ir.Reg, mask int64) *ir.BlockBuilder {
	bb.MulI(state, state, 6364136223846793005)
	bb.AddI(state, state, 1442695040888963407)
	bb.ShrI(out, state, 33)
	if mask >= 0 {
		bb.AndI(out, out, mask)
	}
	return bb
}
