package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"multiscalar/internal/grid"
	"multiscalar/internal/obs/span"
)

const simulateBody = `{"workload":"compress","machine":{"pus":4}}`

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output: the
// access line is written in the middleware's deferred closure, which can
// race the test's read of the response.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitForTrace polls the recorder until the trace lands — the middleware
// ends the root span after the response body is written, so the client can
// observe the response before the trace is retained.
func waitForTrace(t *testing.T, tr *span.Tracer, id span.TraceID) *span.TraceData {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if td := tr.Recorder().Get(id); td != nil {
			return td
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("trace %s never reached the recorder", id)
	return nil
}

// TestTracedRequestEchoesHeaderAndRecords: a traced /v1/simulate answers
// with X-Ms-Trace, and the finished trace holds the serve.request root over
// the grid's span tree.
func TestTracedRequestEchoesHeaderAndRecords(t *testing.T) {
	fastSim(t)
	tr := span.New(span.Options{Process: "mssrv"})
	srv, _ := newTestServer(t, grid.Options{Workers: 2}, Config{Tracer: tr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/simulate", simulateBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}
	sc, ok := span.ParseHeader(resp.Header.Get(span.Header))
	if !ok {
		t.Fatalf("response %s header %q unparseable", span.Header, resp.Header.Get(span.Header))
	}

	td := waitForTrace(t, tr, sc.TraceID)
	if td.Root.Name != "serve.request" || td.Root.SpanID != sc.SpanID {
		t.Errorf("root = %s/%s, want serve.request/%s", td.Root.Name, td.Root.SpanID, sc.SpanID)
	}
	if td.Root.Attrs["path"] != "/v1/simulate" || td.Root.Attrs["status"] != "200" {
		t.Errorf("root attrs = %v", td.Root.Attrs)
	}
	var run *span.SpanData
	for i, s := range td.Spans {
		if s.Name == "grid.run" {
			run = &td.Spans[i]
		}
	}
	if run == nil {
		t.Fatalf("no grid.run span under serve.request")
	}
	if run.Parent != td.Root.SpanID {
		t.Errorf("grid.run parent = %s, want the request root %s", run.Parent, td.Root.SpanID)
	}
}

// TestIncomingTraceHeaderIsHonored: a request carrying X-Ms-Trace joins the
// caller's trace instead of starting a fresh one.
func TestIncomingTraceHeaderIsHonored(t *testing.T) {
	fastSim(t)
	tr := span.New(span.Options{Process: "mssrv"})
	srv, _ := newTestServer(t, grid.Options{Workers: 2}, Config{Tracer: tr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	parent := span.SpanContext{TraceID: span.NewTraceID(), SpanID: "00000000deadbeef"}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate", strings.NewReader(simulateBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(span.Header, span.FormatHeader(parent))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	td := waitForTrace(t, tr, parent.TraceID)
	if td.Root.Name != "serve.request" || td.Root.Parent != parent.SpanID {
		t.Errorf("root = %s parent=%s, want serve.request under %s",
			td.Root.Name, td.Root.Parent, parent.SpanID)
	}
	if got := resp.Header.Get(span.Header); !strings.HasPrefix(got, string(parent.TraceID)) {
		t.Errorf("response header %q lost the caller's trace ID", got)
	}
}

// TestDebugEndpointsServeTrace: the /debug surface lists the finished trace
// and exports it as a Chrome trace-event file.
func TestDebugEndpointsServeTrace(t *testing.T) {
	fastSim(t)
	tr := span.New(span.Options{Process: "mssrv"})
	srv, _ := newTestServer(t, grid.Options{Workers: 2}, Config{Tracer: tr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/simulate", simulateBody)
	sc, _ := span.ParseHeader(resp.Header.Get(span.Header))
	waitForTrace(t, tr, sc.TraceID)

	listResp, listBody := getBody(t, ts.Client(), ts.URL+"/debug/traces")
	if listResp.StatusCode != http.StatusOK || !strings.Contains(listBody, string(sc.TraceID)) {
		t.Errorf("/debug/traces = %d %s, want listing with %s", listResp.StatusCode, listBody, sc.TraceID)
	}

	treeResp, treeBody := getBody(t, ts.Client(), fmt.Sprintf("%s/debug/traces/%s", ts.URL, sc.TraceID))
	if treeResp.StatusCode != http.StatusOK || !strings.Contains(treeBody, "serve.request") {
		t.Errorf("trace tree = %d %s", treeResp.StatusCode, treeBody)
	}

	chromeResp, chromeBody := getBody(t, ts.Client(),
		fmt.Sprintf("%s/debug/traces/%s?format=chrome", ts.URL, sc.TraceID))
	if chromeResp.StatusCode != http.StatusOK {
		t.Fatalf("chrome export: %d", chromeResp.StatusCode)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(chromeBody), &chrome); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Error("chrome export has no events")
	}

	reqResp, reqBody := getBody(t, ts.Client(), ts.URL+"/debug/requests")
	if reqResp.StatusCode != http.StatusOK || !strings.Contains(reqBody, "requests") {
		t.Errorf("/debug/requests = %d %s", reqResp.StatusCode, reqBody)
	}
}

// TestAccessLogCarriesTraceID: satellite for the slog migration — the JSON
// access line must stamp the trace_id so log lines join traces.
func TestAccessLogCarriesTraceID(t *testing.T) {
	fastSim(t)
	var buf syncBuffer
	tr := span.New(span.Options{Process: "mssrv"})
	srv, _ := newTestServer(t, grid.Options{Workers: 2}, Config{
		Tracer: tr,
		Logger: slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/simulate", simulateBody)
	sc, _ := span.ParseHeader(resp.Header.Get(span.Header))
	waitForTrace(t, tr, sc.TraceID)

	var access map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if m["msg"] == "access" {
			access = m
		}
	}
	if access == nil {
		t.Fatalf("no access line in %q", buf.String())
	}
	if access["trace_id"] != string(sc.TraceID) {
		t.Errorf("access line trace_id = %v, want %s (line %v)", access["trace_id"], sc.TraceID, access)
	}
	if access["path"] != "/v1/simulate" || access["status"] != float64(200) {
		t.Errorf("access line = %v", access)
	}
}

// TestUntracedServerIsUnchanged: without a tracer there is no response
// header and no /debug surface — tracing is strictly pay-for-use.
func TestUntracedServerIsUnchanged(t *testing.T) {
	fastSim(t)
	srv, _ := newTestServer(t, grid.Options{Workers: 2}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/simulate", simulateBody)
	if h := resp.Header.Get(span.Header); h != "" {
		t.Errorf("untraced server set %s: %q", span.Header, h)
	}
	dbg, _ := getBody(t, ts.Client(), ts.URL+"/debug/traces")
	if dbg.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/traces on untraced server = %d, want 404", dbg.StatusCode)
	}
}
