package serve

import (
	"fmt"
	"strings"

	"multiscalar/internal/core"
	"multiscalar/internal/experiment"
	"multiscalar/internal/gen"
	"multiscalar/internal/sim"
	"multiscalar/internal/verify"
	"multiscalar/internal/workloads"
)

// SelectOptions is the wire form of core.Options: how a workload is
// partitioned into tasks.
type SelectOptions struct {
	// Heuristic is "bb", "cf", or "dd" ("" = "bb", the paper's baseline).
	Heuristic string `json:"heuristic,omitempty"`
	// TaskSize applies the task-size heuristic on top of Heuristic.
	TaskSize bool `json:"task_size,omitempty"`
	// MaxTargets overrides the hardware target limit N (0 = paper's 4).
	MaxTargets int `json:"max_targets,omitempty"`
	// CallThresh and LoopThresh override the task-size thresholds (0 =
	// paper defaults).
	CallThresh int `json:"call_thresh,omitempty"`
	LoopThresh int `json:"loop_thresh,omitempty"`
	// NoGreedy uses first-fit instead of greedy task growth.
	NoGreedy bool `json:"no_greedy,omitempty"`
	// Policy replaces the heuristic's growth decisions with a registered
	// selection policy ("greedy", "roundrobin", "knapsack").
	Policy string `json:"policy,omitempty"`
	// SizeBudget and CommBudget are the policy's task-size and register-
	// communication budgets (0 = policy defaults; ignored without Policy).
	SizeBudget int `json:"size_budget,omitempty"`
	CommBudget int `json:"comm_budget,omitempty"`
}

func (o SelectOptions) core() (core.Options, error) {
	var h core.Heuristic
	switch o.Heuristic {
	case "", "bb":
		h = core.BasicBlock
	case "cf":
		h = core.ControlFlow
	case "dd":
		h = core.DataDependence
	default:
		return core.Options{}, fmt.Errorf("unknown heuristic %q (want bb, cf, or dd)", o.Heuristic)
	}
	if o.MaxTargets < 0 || o.CallThresh < 0 || o.LoopThresh < 0 {
		return core.Options{}, fmt.Errorf("select thresholds must be non-negative")
	}
	if o.SizeBudget < 0 || o.CommBudget < 0 {
		return core.Options{}, fmt.Errorf("policy budgets must be non-negative")
	}
	if err := validatePolicy(o.Policy); err != nil {
		return core.Options{}, err
	}
	return core.Options{
		Heuristic:  h,
		TaskSize:   o.TaskSize,
		MaxTargets: o.MaxTargets,
		CallThresh: o.CallThresh,
		LoopThresh: o.LoopThresh,
		NoGreedy:   o.NoGreedy,
		Policy:     o.Policy,
		SizeBudget: o.SizeBudget,
		CommBudget: o.CommBudget,
	}, nil
}

// validatePolicy rejects unregistered policy names up front — Select would
// fail too, but at request-validation time the failure is a clean 400.
func validatePolicy(name string) error {
	if name == "" {
		return nil
	}
	for _, p := range core.PolicyNames() {
		if p == name {
			return nil
		}
	}
	return fmt.Errorf("unknown policy %q (registered: %s)", name, strings.Join(core.PolicyNames(), ", "))
}

// MachineConfig is the wire form of the simulated machine point; omitted
// fields take the paper's §4.2 defaults (sim.DefaultConfig).
type MachineConfig struct {
	// PUs is the processing-unit count (0 = 4).
	PUs int `json:"pus,omitempty"`
	// InOrder selects in-order PUs instead of out-of-order.
	InOrder bool `json:"in_order,omitempty"`
	// NoSyncTable disables the memory dependence synchronization table.
	NoSyncTable bool `json:"no_sync_table,omitempty"`
	// RingBW overrides the register ring bandwidth (0 = 2).
	RingBW int `json:"ring_bw,omitempty"`
	// MaxTargets overrides the hardware target limit (0 = 4).
	MaxTargets int `json:"max_targets,omitempty"`
	// L1DBanks overrides the data-cache bank count (0 = one per PU).
	L1DBanks int `json:"l1d_banks,omitempty"`
}

// maxPUs bounds accepted machine sizes: a request is rejected up front
// rather than tying a worker to an absurd simulation.
const maxPUs = 64

func (m MachineConfig) config() (sim.Config, error) {
	pus := m.PUs
	if pus == 0 {
		pus = 4
	}
	if pus < 1 || pus > maxPUs {
		return sim.Config{}, fmt.Errorf("pus %d out of range [1,%d]", m.PUs, maxPUs)
	}
	if m.RingBW < 0 || m.MaxTargets < 0 || m.L1DBanks < 0 {
		return sim.Config{}, fmt.Errorf("machine overrides must be non-negative")
	}
	cfg := sim.DefaultConfig(pus)
	cfg.InOrder = m.InOrder
	cfg.SyncTable = !m.NoSyncTable
	if m.RingBW != 0 {
		cfg.RingBW = m.RingBW
	}
	if m.MaxTargets != 0 {
		cfg.MaxTargets = m.MaxTargets
	}
	if m.L1DBanks != 0 {
		cfg.L1DBanks = m.L1DBanks
	}
	return cfg, nil
}

// GeneratorSpec is the wire form of gen.Params: a property-based workload
// described by its seed and shape parameters instead of a benchmark name.
// Omitted fields take gen.Default()'s values; all fields are clamped to the
// generator's valid ranges, so the canonical name in the response is the
// source of truth for what actually ran.
type GeneratorSpec struct {
	Seed        int64 `json:"seed"`
	Funcs       int   `json:"funcs,omitempty"`
	Blocks      int   `json:"blocks,omitempty"`
	Branchiness int   `json:"branchiness,omitempty"`
	LoopDepth   int   `json:"loop_depth,omitempty"`
	CallDensity int   `json:"call_density,omitempty"`
	RegDensity  int   `json:"reg_density,omitempty"`
	MemWords    int   `json:"mem_words,omitempty"`
}

func (g GeneratorSpec) params() gen.Params {
	p := gen.Default()
	p.Seed = g.Seed
	if g.Funcs != 0 {
		p.Funcs = g.Funcs
	}
	if g.Blocks != 0 {
		p.Blocks = g.Blocks
	}
	if g.Branchiness != 0 {
		p.Branchiness = g.Branchiness
	}
	if g.LoopDepth != 0 {
		p.LoopDepth = g.LoopDepth
	}
	if g.CallDensity != 0 {
		p.CallDensity = g.CallDensity
	}
	if g.RegDensity != 0 {
		p.RegDensity = g.RegDensity
	}
	if g.MemWords != 0 {
		p.MemWords = g.MemWords
	}
	return p.Clamp()
}

// PartitionRequest asks for a task selection plus its static verification.
// Exactly one of Workload and Generator names the program.
type PartitionRequest struct {
	Workload  string         `json:"workload,omitempty"`
	Generator *GeneratorSpec `json:"generator,omitempty"`
	Select    SelectOptions  `json:"select"`
}

// FindingBody is the wire form of one verify.Finding.
type FindingBody struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	// Task is the offending task ID, or -1 for IR-layer findings.
	Task int    `json:"task"`
	Fn   string `json:"fn,omitempty"`
	// Block is the offending block, or -1 for function-level findings.
	Block int    `json:"block"`
	Msg   string `json:"msg"`
}

func findingBodies(fs verify.Findings) []FindingBody {
	out := make([]FindingBody, len(fs))
	for i, f := range fs {
		out[i] = FindingBody{
			Rule:     string(f.Rule),
			Severity: f.Sev.String(),
			Task:     f.Task,
			Fn:       f.FnName,
			Block:    int(f.Blk),
			Msg:      f.Msg,
		}
	}
	return out
}

// PartitionResponse summarizes a task selection and its verification.
type PartitionResponse struct {
	Workload   string  `json:"workload"`
	Heuristic  string  `json:"heuristic"`
	Policy     string  `json:"policy,omitempty"`
	Tasks      int     `json:"tasks"`
	Blocks     int     `json:"blocks"`
	AvgBlocks  float64 `json:"avg_blocks_per_task"`
	AvgTargets float64 `json:"avg_targets_per_task"`

	Errors   int           `json:"errors"`
	Warnings int           `json:"warnings"`
	Findings []FindingBody `json:"findings,omitempty"`
}

// SimulateRequest asks for one grid job: workload × selection × machine.
// Exactly one of Workload and Generator names the program.
type SimulateRequest struct {
	Workload  string         `json:"workload,omitempty"`
	Generator *GeneratorSpec `json:"generator,omitempty"`
	Select    SelectOptions  `json:"select"`
	Machine   MachineConfig  `json:"machine"`
}

// GenerateRequest asks POST /v1/generate for a property-based program.
type GenerateRequest struct {
	Generator GeneratorSpec `json:"generator"`
}

// GenerateResponse carries the generated program's canonical name — a valid
// workload for /v1/partition and /v1/simulate, embedding seed, parameters,
// and generator schema version — plus shape statistics and the full listing.
type GenerateResponse struct {
	// Name is the canonical gen: workload name (clamped parameters).
	Name   string `json:"name"`
	Funcs  int    `json:"funcs"`
	Blocks int    `json:"blocks"`
	Instrs int    `json:"instrs"`
	// Program is the deterministic ir.Format listing: same seed and
	// parameters produce this byte-for-byte on every run and machine.
	Program string `json:"program"`
}

// SimulateResponse carries the simulation result plus the job's
// content-address (the grid cache key).
type SimulateResponse struct {
	Workload string      `json:"workload"`
	Key      string      `json:"key"`
	Result   *sim.Result `json:"result"`
}

// ExperimentRequest names a figure or table to regenerate, or a generated-
// corpus sweep.
type ExperimentRequest struct {
	// Name is "fig5", "table1", "summary", or "corpus".
	Name string `json:"name"`
	// Workloads restricts the run (empty = all 18; ignored by corpus).
	Workloads []string `json:"workloads,omitempty"`
	// PUs restricts the machine sizes for fig5/summary (empty = 4 and 8;
	// table1 is always the paper's 8-PU configuration).
	PUs []int `json:"pus,omitempty"`
	// Seed, N, and Policies configure the corpus sweep (corpus only):
	// N generated programs from the seed, raced across the paper heuristics
	// plus the named policies. N defaults to 20.
	Seed     int64    `json:"seed,omitempty"`
	N        int      `json:"n,omitempty"`
	Policies []string `json:"policies,omitempty"`
}

// maxCorpusN bounds the corpus size a single request may ask for, the same
// way maxPUs bounds machine size.
const maxCorpusN = 1000

func (r ExperimentRequest) validate() error {
	switch r.Name {
	case "fig5", "table1", "summary":
	case "corpus":
		if r.N < 0 || r.N > maxCorpusN {
			return fmt.Errorf("corpus n %d out of range [0,%d]", r.N, maxCorpusN)
		}
		for _, p := range r.Policies {
			if err := validatePolicy(p); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q (want fig5, table1, summary, or corpus)", r.Name)
	}
	for _, n := range r.Workloads {
		if err := validateWorkload(n); err != nil {
			return err
		}
	}
	for _, n := range r.PUs {
		if n < 1 || n > maxPUs {
			return fmt.Errorf("pus %d out of range [1,%d]", n, maxPUs)
		}
	}
	return nil
}

// Progress is one SSE progress datum: engine activity attributable to this
// request (deltas against the engine counters at request start).
type Progress struct {
	JobsDone  int64 `json:"jobs_done"`
	Sims      int64 `json:"sims"`
	CacheHits int64 `json:"cache_hits"`
	Deduped   int64 `json:"deduped"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

// ExperimentResult is the terminal SSE event body: exactly one of Cells,
// Rows, Summaries, or Corpus is set, matching the requested experiment.
type ExperimentResult struct {
	Name      string                    `json:"name"`
	Cells     []experiment.Fig5Cell     `json:"cells,omitempty"`
	Rows      []experiment.T1Row        `json:"rows,omitempty"`
	Summaries []experiment.SuiteSummary `json:"summaries,omitempty"`
	Corpus    []experiment.CorpusRow    `json:"corpus,omitempty"`
	Progress  Progress                  `json:"progress"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	// Status is "ok", or "draining" once shutdown has begun.
	Status   string `json:"status"`
	Inflight int    `json:"inflight"`
	Workers  int    `json:"workers"`
	// Backend reports storage and fleet state when the server was wired
	// with a Config.Backend probe (mssrv always wires one).
	Backend *BackendStatus `json:"backend,omitempty"`
	// Jobs reports the async job subsystem when Config.Jobs is wired.
	Jobs *JobsStatus `json:"jobs,omitempty"`
}

// BackendStatus describes the server's cache and fleet backends inside
// HealthResponse, so operators see more than the drain state: which cache
// tiers are reachable and how many distributed workers are registered.
type BackendStatus struct {
	CacheTiers []CacheTierStatus `json:"cache_tiers,omitempty"`
	// DistWorkers counts registered remote workers (-1 = this server is not
	// a dist leader, so there is no fleet to count).
	DistWorkers int `json:"dist_workers"`
}

// CacheTierStatus is one cache tier's reachability snapshot. It mirrors
// dist.TierHealth field-for-field without importing it: serve stays
// agnostic of how the cache behind it is composed.
type CacheTierStatus struct {
	Tier string `json:"tier"`
	OK   bool   `json:"ok"`
	Err  string `json:"err,omitempty"`
}

// ErrorBody is the structured error shape every non-2xx JSON response uses:
//
//	{"error": {"code": "invalid_request", "message": "..."}}
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries a stable machine-readable code and a human message.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// resolveWorkload turns a request's workload/generator pair into the one
// workload name the engine runs: a generator spec compiles to its canonical
// gen: name (which workloads.ByName resolves back to the same program), a
// plain name is validated against the benchmark suite and the gen: grammar.
func resolveWorkload(name string, g *GeneratorSpec) (string, error) {
	if g != nil {
		if name != "" {
			return "", fmt.Errorf("set either workload or generator, not both")
		}
		return g.params().Key(), nil
	}
	return name, validateWorkload(name)
}

// validateWorkload rejects unknown workload names, listing the known ones.
func validateWorkload(name string) error {
	if name == "" {
		return fmt.Errorf("missing workload name (known: %s)", strings.Join(workloads.Names(), ", "))
	}
	if _, err := workloads.ByName(name); err != nil {
		return fmt.Errorf("unknown workload %q (known: %s)", name, strings.Join(workloads.Names(), ", "))
	}
	return nil
}
