package serve

import (
	"fmt"
	"strings"

	"multiscalar/internal/core"
	"multiscalar/internal/experiment"
	"multiscalar/internal/sim"
	"multiscalar/internal/verify"
	"multiscalar/internal/workloads"
)

// SelectOptions is the wire form of core.Options: how a workload is
// partitioned into tasks.
type SelectOptions struct {
	// Heuristic is "bb", "cf", or "dd" ("" = "bb", the paper's baseline).
	Heuristic string `json:"heuristic,omitempty"`
	// TaskSize applies the task-size heuristic on top of Heuristic.
	TaskSize bool `json:"task_size,omitempty"`
	// MaxTargets overrides the hardware target limit N (0 = paper's 4).
	MaxTargets int `json:"max_targets,omitempty"`
	// CallThresh and LoopThresh override the task-size thresholds (0 =
	// paper defaults).
	CallThresh int `json:"call_thresh,omitempty"`
	LoopThresh int `json:"loop_thresh,omitempty"`
	// NoGreedy uses first-fit instead of greedy task growth.
	NoGreedy bool `json:"no_greedy,omitempty"`
}

func (o SelectOptions) core() (core.Options, error) {
	var h core.Heuristic
	switch o.Heuristic {
	case "", "bb":
		h = core.BasicBlock
	case "cf":
		h = core.ControlFlow
	case "dd":
		h = core.DataDependence
	default:
		return core.Options{}, fmt.Errorf("unknown heuristic %q (want bb, cf, or dd)", o.Heuristic)
	}
	if o.MaxTargets < 0 || o.CallThresh < 0 || o.LoopThresh < 0 {
		return core.Options{}, fmt.Errorf("select thresholds must be non-negative")
	}
	return core.Options{
		Heuristic:  h,
		TaskSize:   o.TaskSize,
		MaxTargets: o.MaxTargets,
		CallThresh: o.CallThresh,
		LoopThresh: o.LoopThresh,
		NoGreedy:   o.NoGreedy,
	}, nil
}

// MachineConfig is the wire form of the simulated machine point; omitted
// fields take the paper's §4.2 defaults (sim.DefaultConfig).
type MachineConfig struct {
	// PUs is the processing-unit count (0 = 4).
	PUs int `json:"pus,omitempty"`
	// InOrder selects in-order PUs instead of out-of-order.
	InOrder bool `json:"in_order,omitempty"`
	// NoSyncTable disables the memory dependence synchronization table.
	NoSyncTable bool `json:"no_sync_table,omitempty"`
	// RingBW overrides the register ring bandwidth (0 = 2).
	RingBW int `json:"ring_bw,omitempty"`
	// MaxTargets overrides the hardware target limit (0 = 4).
	MaxTargets int `json:"max_targets,omitempty"`
	// L1DBanks overrides the data-cache bank count (0 = one per PU).
	L1DBanks int `json:"l1d_banks,omitempty"`
}

// maxPUs bounds accepted machine sizes: a request is rejected up front
// rather than tying a worker to an absurd simulation.
const maxPUs = 64

func (m MachineConfig) config() (sim.Config, error) {
	pus := m.PUs
	if pus == 0 {
		pus = 4
	}
	if pus < 1 || pus > maxPUs {
		return sim.Config{}, fmt.Errorf("pus %d out of range [1,%d]", m.PUs, maxPUs)
	}
	if m.RingBW < 0 || m.MaxTargets < 0 || m.L1DBanks < 0 {
		return sim.Config{}, fmt.Errorf("machine overrides must be non-negative")
	}
	cfg := sim.DefaultConfig(pus)
	cfg.InOrder = m.InOrder
	cfg.SyncTable = !m.NoSyncTable
	if m.RingBW != 0 {
		cfg.RingBW = m.RingBW
	}
	if m.MaxTargets != 0 {
		cfg.MaxTargets = m.MaxTargets
	}
	if m.L1DBanks != 0 {
		cfg.L1DBanks = m.L1DBanks
	}
	return cfg, nil
}

// PartitionRequest asks for a task selection plus its static verification.
type PartitionRequest struct {
	Workload string        `json:"workload"`
	Select   SelectOptions `json:"select"`
}

// FindingBody is the wire form of one verify.Finding.
type FindingBody struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	// Task is the offending task ID, or -1 for IR-layer findings.
	Task int    `json:"task"`
	Fn   string `json:"fn,omitempty"`
	// Block is the offending block, or -1 for function-level findings.
	Block int    `json:"block"`
	Msg   string `json:"msg"`
}

func findingBodies(fs verify.Findings) []FindingBody {
	out := make([]FindingBody, len(fs))
	for i, f := range fs {
		out[i] = FindingBody{
			Rule:     string(f.Rule),
			Severity: f.Sev.String(),
			Task:     f.Task,
			Fn:       f.FnName,
			Block:    int(f.Blk),
			Msg:      f.Msg,
		}
	}
	return out
}

// PartitionResponse summarizes a task selection and its verification.
type PartitionResponse struct {
	Workload   string  `json:"workload"`
	Heuristic  string  `json:"heuristic"`
	Tasks      int     `json:"tasks"`
	Blocks     int     `json:"blocks"`
	AvgBlocks  float64 `json:"avg_blocks_per_task"`
	AvgTargets float64 `json:"avg_targets_per_task"`

	Errors   int           `json:"errors"`
	Warnings int           `json:"warnings"`
	Findings []FindingBody `json:"findings,omitempty"`
}

// SimulateRequest asks for one grid job: workload × selection × machine.
type SimulateRequest struct {
	Workload string        `json:"workload"`
	Select   SelectOptions `json:"select"`
	Machine  MachineConfig `json:"machine"`
}

// SimulateResponse carries the simulation result plus the job's
// content-address (the grid cache key).
type SimulateResponse struct {
	Workload string      `json:"workload"`
	Key      string      `json:"key"`
	Result   *sim.Result `json:"result"`
}

// ExperimentRequest names a figure or table to regenerate.
type ExperimentRequest struct {
	// Name is "fig5", "table1", or "summary".
	Name string `json:"name"`
	// Workloads restricts the run (empty = all 18).
	Workloads []string `json:"workloads,omitempty"`
	// PUs restricts the machine sizes for fig5/summary (empty = 4 and 8;
	// table1 is always the paper's 8-PU configuration).
	PUs []int `json:"pus,omitempty"`
}

func (r ExperimentRequest) validate() error {
	switch r.Name {
	case "fig5", "table1", "summary":
	default:
		return fmt.Errorf("unknown experiment %q (want fig5, table1, or summary)", r.Name)
	}
	for _, n := range r.Workloads {
		if err := validateWorkload(n); err != nil {
			return err
		}
	}
	for _, n := range r.PUs {
		if n < 1 || n > maxPUs {
			return fmt.Errorf("pus %d out of range [1,%d]", n, maxPUs)
		}
	}
	return nil
}

// Progress is one SSE progress datum: engine activity attributable to this
// request (deltas against the engine counters at request start).
type Progress struct {
	JobsDone  int64 `json:"jobs_done"`
	Sims      int64 `json:"sims"`
	CacheHits int64 `json:"cache_hits"`
	Deduped   int64 `json:"deduped"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

// ExperimentResult is the terminal SSE event body: exactly one of Cells,
// Rows, or Summaries is set, matching the requested experiment.
type ExperimentResult struct {
	Name      string                    `json:"name"`
	Cells     []experiment.Fig5Cell     `json:"cells,omitempty"`
	Rows      []experiment.T1Row        `json:"rows,omitempty"`
	Summaries []experiment.SuiteSummary `json:"summaries,omitempty"`
	Progress  Progress                  `json:"progress"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	// Status is "ok", or "draining" once shutdown has begun.
	Status   string `json:"status"`
	Inflight int    `json:"inflight"`
	Workers  int    `json:"workers"`
	// Backend reports storage and fleet state when the server was wired
	// with a Config.Backend probe (mssrv always wires one).
	Backend *BackendStatus `json:"backend,omitempty"`
}

// BackendStatus describes the server's cache and fleet backends inside
// HealthResponse, so operators see more than the drain state: which cache
// tiers are reachable and how many distributed workers are registered.
type BackendStatus struct {
	CacheTiers []CacheTierStatus `json:"cache_tiers,omitempty"`
	// DistWorkers counts registered remote workers (-1 = this server is not
	// a dist leader, so there is no fleet to count).
	DistWorkers int `json:"dist_workers"`
}

// CacheTierStatus is one cache tier's reachability snapshot. It mirrors
// dist.TierHealth field-for-field without importing it: serve stays
// agnostic of how the cache behind it is composed.
type CacheTierStatus struct {
	Tier string `json:"tier"`
	OK   bool   `json:"ok"`
	Err  string `json:"err,omitempty"`
}

// ErrorBody is the structured error shape every non-2xx JSON response uses:
//
//	{"error": {"code": "invalid_request", "message": "..."}}
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries a stable machine-readable code and a human message.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// validateWorkload rejects unknown workload names, listing the known ones.
func validateWorkload(name string) error {
	if name == "" {
		return fmt.Errorf("missing workload name (known: %s)", strings.Join(workloads.Names(), ", "))
	}
	if _, err := workloads.ByName(name); err != nil {
		return fmt.Errorf("unknown workload %q (known: %s)", name, strings.Join(workloads.Names(), ", "))
	}
	return nil
}
