package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"multiscalar/internal/grid"
	_ "multiscalar/internal/policy" // register the policy zoo
)

// TestGenerateEndpoint covers POST /v1/generate end to end: the response
// names a canonical gen: workload, the listing is deterministic across
// requests, and the name feeds back into /v1/partition under a policy.
func TestGenerateEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, grid.Options{Workers: 2}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := `{"generator":{"seed":42,"funcs":2,"blocks":20,"loop_depth":1}}`
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/generate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var gr GenerateResponse
	if err := json.Unmarshal([]byte(body), &gr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(gr.Name, "gen:v") || !strings.Contains(gr.Name, ":s42:") {
		t.Errorf("name %q is not a canonical gen name for seed 42", gr.Name)
	}
	if gr.Funcs != 2 || gr.Blocks == 0 || gr.Instrs == 0 || gr.Program == "" {
		t.Errorf("empty shape summary: funcs=%d blocks=%d instrs=%d len(program)=%d",
			gr.Funcs, gr.Blocks, gr.Instrs, len(gr.Program))
	}
	// Same spec, byte-identical response: the seed→program guarantee over
	// the wire.
	if _, body2 := postJSON(t, ts.Client(), ts.URL+"/v1/generate", req); body2 != body {
		t.Error("repeated generate request not deterministic")
	}

	// The returned name is a workload everywhere else.
	resp, pbody := postJSON(t, ts.Client(), ts.URL+"/v1/partition",
		`{"workload":"`+gr.Name+`","select":{"policy":"knapsack","size_budget":32}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partition by gen name: status %d body %s", resp.StatusCode, pbody)
	}
	var pr PartitionResponse
	if err := json.Unmarshal([]byte(pbody), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Workload != gr.Name || pr.Policy != "knapsack" || pr.Tasks == 0 {
		t.Errorf("partition response: %+v", pr)
	}
	if pr.Errors != 0 {
		t.Errorf("policy partition has verify errors: %+v", pr.Findings)
	}
}

// TestGeneratorInlineRequests covers the generator block inlined on
// /v1/partition and /v1/simulate, including the simulate response's cache
// key carrying the generated name.
func TestGeneratorInlineRequests(t *testing.T) {
	fastSim(t)
	srv, _ := newTestServer(t, grid.Options{Workers: 2}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/partition",
		`{"generator":{"seed":7},"select":{"heuristic":"cf"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partition: status %d body %s", resp.StatusCode, body)
	}
	var pr PartitionResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pr.Workload, ":s7:") || pr.Tasks == 0 || pr.Errors != 0 {
		t.Errorf("partition response: %+v", pr)
	}

	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/simulate",
		`{"generator":{"seed":7},"select":{"policy":"greedy"},"machine":{"pus":2}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d body %s", resp.StatusCode, body)
	}
	var sr SimulateResponse
	if err := json.Unmarshal([]byte(body), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Workload != pr.Workload || sr.Key == "" || sr.Result == nil {
		t.Errorf("simulate response: %+v", sr)
	}
}

// TestGeneratorAndPolicyValidation pins the new 4xx surface: conflicting
// program sources, unknown policies, negative budgets, and corpus bounds.
func TestGeneratorAndPolicyValidation(t *testing.T) {
	srv, eng := newTestServer(t, grid.Options{Workers: 1}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, path, body, code string
	}{
		{"both sources", "/v1/partition", `{"workload":"compress","generator":{"seed":1}}`, "unknown_workload"},
		{"both sources simulate", "/v1/simulate", `{"workload":"compress","generator":{"seed":1}}`, "unknown_workload"},
		{"unknown policy", "/v1/partition", `{"workload":"compress","select":{"policy":"bogus"}}`, "invalid_request"},
		{"negative budget", "/v1/partition", `{"workload":"compress","select":{"policy":"greedy","size_budget":-1}}`, "invalid_request"},
		{"malformed gen name", "/v1/partition", `{"workload":"gen:v1:bogus"}`, "unknown_workload"},
		{"corpus bad policy", "/v1/experiment", `{"name":"corpus","policies":["bogus"]}`, "invalid_request"},
		{"corpus huge n", "/v1/experiment", `{"name":"corpus","n":100000}`, "invalid_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.Client(), ts.URL+tc.path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, body)
			}
			var eb ErrorBody
			if err := json.Unmarshal([]byte(body), &eb); err != nil {
				t.Fatalf("error body not structured: %q (%v)", body, err)
			}
			if eb.Error.Code != tc.code {
				t.Errorf("code %q, want %q (message %q)", eb.Error.Code, tc.code, eb.Error.Message)
			}
		})
	}
	if jobs := eng.Stats().Jobs; jobs != 0 {
		t.Errorf("invalid requests reached the engine (jobs=%d)", jobs)
	}
}

// TestCorpusExperimentSSE runs the corpus sweep through the SSE experiment
// endpoint and checks the scoreboard rows arrive with every arm.
func TestCorpusExperimentSSE(t *testing.T) {
	fastSim(t)
	srv, _ := newTestServer(t, grid.Options{Workers: 4}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/experiment",
		`{"name":"corpus","seed":3,"n":2,"policies":["greedy","roundrobin"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	events := parseSSE(t, body)
	last := events[len(events)-1]
	if last.name != "result" {
		t.Fatalf("terminal event %q, want result:\n%s", last.name, body)
	}
	var res ExperimentResult
	if err := json.Unmarshal([]byte(last.data), &res); err != nil {
		t.Fatal(err)
	}
	if res.Name != "corpus" || len(res.Corpus) != 5 {
		t.Fatalf("result name=%q rows=%d, want corpus/5", res.Name, len(res.Corpus))
	}
	arms := map[string]bool{}
	for _, row := range res.Corpus {
		arms[row.Arm] = true
		if row.Programs != 2 || row.Tasks == 0 {
			t.Errorf("row %+v looks empty", row)
		}
	}
	for _, want := range []string{"basic block", "control flow", "data dependence", "policy:greedy", "policy:roundrobin"} {
		if !arms[want] {
			t.Errorf("missing arm %q in %v", want, arms)
		}
	}
	if res.Progress.JobsDone == 0 {
		t.Errorf("terminal progress shows no work: %+v", res.Progress)
	}
}
