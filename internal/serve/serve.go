// Package serve exposes the Multiscalar pipeline as a long-lived HTTP/JSON
// service: POST /v1/partition (task selection + static verification),
// POST /v1/simulate (one grid job), POST /v1/generate (a property-based
// program from a seed and shape parameters, named for reuse by the other
// endpoints), POST /v1/experiment (named figure/table/corpus sweep with
// Server-Sent-Events progress), GET /healthz, and GET /metrics (Prometheus
// text exposition).
//
// Every request executes through one shared grid.Engine, so identical
// concurrent requests coalesce into a single simulation and warm-cache
// requests never touch a worker. Robustness is structural rather than
// best-effort: requests are strictly decoded (unknown fields are errors) and
// validated before any work starts, a bounded admission gate sheds excess
// load with 429 + Retry-After, per-request deadlines propagate as a
// context.Context into the engine (queued jobs cancel cleanly), panics
// convert to 500s, and Shutdown drains gracefully — the listener closes,
// in-flight requests finish, then control returns to the caller.
package serve

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"multiscalar/internal/grid"
	"multiscalar/internal/jobs"
	"multiscalar/internal/obs"
	"multiscalar/internal/obs/span"
)

// Config configures a Server. Engine is required; everything else defaults.
type Config struct {
	// Engine executes all partition/simulation work. Required.
	Engine *grid.Engine
	// Metrics is the registry GET /metrics exposes; the server registers its
	// own serve_* metrics here. Pass the same registry to grid.New so the
	// scrape shows engine counters too. Nil creates a private registry.
	Metrics *obs.Registry
	// MaxInFlight bounds admitted /v1 requests; excess load is shed with
	// 429 + Retry-After (0 = 4× engine workers).
	MaxInFlight int
	// RequestTimeout is the per-request deadline propagated into the engine
	// (0 = 2 minutes).
	RequestTimeout time.Duration
	// ProgressInterval is the SSE progress cadence for /v1/experiment
	// (0 = 500ms).
	ProgressInterval time.Duration
	// MaxBodyBytes caps request bodies (0 = 1 MiB).
	MaxBodyBytes int64
	// Cache, when non-nil, backs GET/PUT /v1/cache/{key} so peers — remote
	// cache tiers on workers, other mssrv instances — can probe and publish
	// artifacts by content address. Wire the same cache the engine uses, or
	// the peers' view diverges from local compute. Nil answers 404.
	Cache grid.Cache
	// Backend, when non-nil, contributes cache-tier reachability and dist
	// worker counts to GET /healthz. It must be cheap — it runs on every
	// health probe.
	Backend func(ctx context.Context) BackendStatus
	// Logger receives structured access lines and internal errors (nil =
	// discard). Handing it a JSON handler makes every line machine-parseable;
	// traced requests carry a trace_id attribute either way.
	Logger *slog.Logger
	// Tracer, when non-nil, opens a serve.request span per /v1 request —
	// honoring an incoming X-Ms-Trace header and always echoing the span
	// context back on the response — and mounts GET /debug/traces,
	// /debug/traces/{id}, and /debug/requests.
	Tracer *span.Tracer
	// Jobs, when non-nil, mounts the async job API (POST/GET /v1/jobs,
	// GET /v1/jobs/{id}, GET /v1/jobs/{id}/events, DELETE /v1/jobs/{id}) and
	// adds the jobs block to /healthz. The manager must be built with this
	// package's Executors over the same Engine, or job results diverge from
	// synchronous ones. Nil answers 404 on the job routes.
	Jobs *jobs.Manager
	// JobLimiter rate-limits job submissions per tenant (X-Api-Key header).
	// Nil admits every submission.
	JobLimiter *jobs.Limiter
	// Ring, when non-nil, routes job requests to the replica owning each job
	// ID (307 redirect), so a fleet of mssrv instances dedups as one surface.
	// Nil serves every key locally.
	Ring *jobs.Ring
}

// serveMetrics holds the server's registry handles, resolved once at New.
type serveMetrics struct {
	requests, errors, shed *obs.Counter
	inflight               *obs.Gauge
	latency                *obs.Histogram
}

// Server is the HTTP simulation service. Create one with New.
type Server struct {
	cfg      Config
	eng      *grid.Engine
	reg      *obs.Registry
	log      *slog.Logger
	tracer   *span.Tracer
	admit    chan struct{}
	hs       *http.Server
	draining atomic.Bool
	m        serveMetrics
}

// New builds a server. It panics if cfg.Engine is nil (a wiring error, not a
// runtime condition).
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("serve: Config.Engine is required")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4 * cfg.Engine.Workers()
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Minute
	}
	if cfg.ProgressInterval <= 0 {
		cfg.ProgressInterval = 500 * time.Millisecond
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:    cfg,
		eng:    cfg.Engine,
		reg:    cfg.Metrics,
		log:    cfg.Logger,
		tracer: cfg.Tracer,
		admit:  make(chan struct{}, cfg.MaxInFlight),
	}
	r := cfg.Metrics
	s.m = serveMetrics{
		requests: r.Counter("serve_requests_total", "requests", "HTTP requests received"),
		errors:   r.Counter("serve_errors_total", "requests", "requests answered with a 5xx status"),
		shed:     r.Counter("serve_shed_total", "requests", "requests shed with 429 at the admission gate"),
		inflight: r.Gauge("serve_inflight", "requests", "admitted /v1 requests executing right now"),
		latency: r.Histogram("serve_request_us", "us", "request wall time",
			obs.ExpBuckets(100, 4, 12)),
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("POST /v1/partition", s.admitted(s.handlePartition))
	mux.Handle("POST /v1/simulate", s.admitted(s.handleSimulate))
	mux.Handle("POST /v1/generate", s.admitted(s.handleGenerate))
	mux.Handle("POST /v1/experiment", s.admitted(s.handleExperiment))
	// Cache endpoints skip the admission gate: they are cheap key-value
	// probes serving other machines' hot paths, and shedding them only
	// converts a remote hit into a redundant local simulation.
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCacheGet)
	mux.HandleFunc("PUT /v1/cache/{key}", s.handleCachePut)
	// Job endpoints also skip the gate: submission is an enqueue (bounded by
	// the per-tenant limiter, executed by the manager's own runner pool), and
	// polls are table reads. Holding an admission slot for a job's lifetime
	// would let slow sweeps starve the synchronous API.
	if cfg.Jobs != nil {
		mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
		mux.HandleFunc("GET /v1/jobs", s.handleJobList)
		mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
		mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
		mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	}
	if s.tracer != nil {
		span.RegisterDebug(mux, s.tracer)
	}
	// Catch-all: structured 404s, and structured 405s for known routes hit
	// with the wrong method (a method mismatch falls through to this
	// handler because the "/" pattern still matches the path).
	methods := map[string]string{
		"/v1/partition":  http.MethodPost,
		"/v1/simulate":   http.MethodPost,
		"/v1/generate":   http.MethodPost,
		"/v1/experiment": http.MethodPost,
		"/healthz":       http.MethodGet,
		"/metrics":       http.MethodGet,
	}
	if s.tracer != nil {
		methods["/debug/traces"] = http.MethodGet
		methods["/debug/requests"] = http.MethodGet
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if want, ok := methods[r.URL.Path]; ok {
			w.Header().Set("Allow", want)
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				fmt.Sprintf("%s %s not allowed (use %s)", r.Method, r.URL.Path, want))
			return
		}
		if strings.HasPrefix(r.URL.Path, "/v1/cache/") {
			w.Header().Set("Allow", "GET, PUT")
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				fmt.Sprintf("%s %s not allowed (use GET or PUT)", r.Method, r.URL.Path))
			return
		}
		if cfg.Jobs != nil && (r.URL.Path == "/v1/jobs" || strings.HasPrefix(r.URL.Path, "/v1/jobs/")) {
			w.Header().Set("Allow", "GET, POST, DELETE")
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				fmt.Sprintf("%s %s not allowed (use GET, POST, or DELETE)", r.Method, r.URL.Path))
			return
		}
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no route for %s %s", r.Method, r.URL.Path))
	})
	s.hs = &http.Server{
		Handler:           s.middleware(mux),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the fully wrapped handler, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.hs.Handler }

// Serve accepts connections on l until Shutdown; like http.Server.Serve it
// returns http.ErrServerClosed after a clean drain.
func (s *Server) Serve(l net.Listener) error { return s.hs.Serve(l) }

// Shutdown drains gracefully: the listener stops accepting, /healthz flips
// to "draining", in-flight requests run to completion, and Shutdown returns
// when the last one finishes (or ctx expires, whichever is first).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	return s.hs.Shutdown(ctx)
}

// middleware wraps every request with panic recovery, request counting,
// latency observation, one structured access-log line, and — on /v1 routes
// of a traced server — the request's root span. An incoming X-Ms-Trace
// header links this process's span tree into the caller's trace; the span
// context always echoes back on the response header so the client can fetch
// the finished trace from /debug/traces/{id}.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rw := &responseWriter{ResponseWriter: w}
		s.m.requests.Inc()
		var sp *span.Span
		if s.tracer != nil && strings.HasPrefix(r.URL.Path, "/v1/") {
			parent, _ := span.ParseHeader(r.Header.Get(span.Header))
			var ctx context.Context
			ctx, sp = s.tracer.StartLinked(r.Context(), parent, "serve.request")
			sp.SetAttr("method", r.Method)
			sp.SetAttr("path", r.URL.Path)
			rw.Header().Set(span.Header, span.FormatHeader(sp.Context()))
			r = r.WithContext(ctx)
		}
		defer func() {
			if p := recover(); p != nil {
				s.log.Error("panic", "method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				if !rw.wrote {
					writeError(rw, http.StatusInternalServerError, "internal", "internal server error")
				}
			}
			dur := time.Since(t0)
			s.m.latency.Observe(dur.Microseconds())
			if rw.status() >= 500 {
				s.m.errors.Inc()
			}
			attrs := []any{
				"method", r.Method, "path", r.URL.Path, "status", rw.status(),
				"bytes", rw.bytes, "dur_ms", float64(dur.Microseconds()) / 1000,
				"remote", r.RemoteAddr,
			}
			if sp != nil {
				attrs = append(attrs, "trace_id", string(sp.TraceID()))
				sp.SetAttr("status", strconv.Itoa(rw.status()))
			}
			var spanErr error
			if st := rw.status(); st >= 500 {
				spanErr = fmt.Errorf("http %d", st)
			}
			sp.End(spanErr)
			s.log.Info("access", attrs...)
		}()
		next.ServeHTTP(rw, r)
	})
}

// admitted gates a /v1 handler behind the admission semaphore and arms the
// per-request deadline. A full gate sheds immediately — the request never
// queues, never allocates engine work, and tells the client when to retry.
func (s *Server) admitted(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.admit <- struct{}{}:
		default:
			s.m.shed.Inc()
			// Jittered, pressure-aware hint: a synchronized retry from every
			// shed client would just recreate the spike that shed them.
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(1, s.pressure())))
			writeError(w, http.StatusTooManyRequests, "overloaded",
				fmt.Sprintf("all %d request slots busy; retry later", cap(s.admit)))
			return
		}
		s.m.inflight.Set(int64(len(s.admit)))
		defer func() {
			<-s.admit
			s.m.inflight.Set(int64(len(s.admit)))
		}()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	})
}

// responseWriter records status and byte count for logging and metrics, and
// forwards Flush so SSE streaming works through the wrapper.
type responseWriter struct {
	http.ResponseWriter
	wrote      bool
	statusCode int
	bytes      int64
}

func (rw *responseWriter) WriteHeader(code int) {
	if !rw.wrote {
		rw.wrote = true
		rw.statusCode = code
	}
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *responseWriter) Write(p []byte) (int, error) {
	if !rw.wrote {
		rw.wrote = true
		rw.statusCode = http.StatusOK
	}
	n, err := rw.ResponseWriter.Write(p)
	rw.bytes += int64(n)
	return n, err
}

func (rw *responseWriter) status() int {
	if rw.statusCode == 0 {
		return http.StatusOK
	}
	return rw.statusCode
}

func (rw *responseWriter) Flush() {
	if f, ok := rw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
