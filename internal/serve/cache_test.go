package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"multiscalar/internal/grid"
	"multiscalar/internal/sim"
)

func putArtifact(t *testing.T, client *http.Client, url string, a grid.Artifact) *http.Response {
	t.Helper()
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestCacheEndpoints covers the peer-facing cache surface: PUT then GET
// round-trips an artifact, absent keys and malformed keys are rejected, and
// stale-schema publications are refused.
func TestCacheEndpoints(t *testing.T) {
	cache := grid.NewDiskCache(t.TempDir())
	srv, _ := newTestServer(t, grid.Options{Workers: 1}, Config{Cache: cache})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	job := grid.Job{Workload: "compress", Config: sim.DefaultConfig(4)}
	key := grid.Key(job)
	res := &sim.Result{IPC: 1.5, Cycles: 100, Instrs: 150}

	// GET before anything is published: a plain miss.
	resp, body := getBody(t, client, ts.URL+"/v1/cache/"+key)
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(body, "not_cached") {
		t.Fatalf("cold GET = %d %q, want 404 not_cached", resp.StatusCode, body)
	}

	// PUT, then GET it back.
	a := grid.Artifact{Schema: grid.SchemaVersion, Workload: job.Workload, Config: job.Config, Result: res}
	if resp := putArtifact(t, client, ts.URL+"/v1/cache/"+key, a); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d, want 204", resp.StatusCode)
	}
	resp, body = getBody(t, client, ts.URL+"/v1/cache/"+key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm GET = %d %q, want 200", resp.StatusCode, body)
	}
	var got grid.Artifact
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != grid.SchemaVersion || got.Result == nil || got.Result.IPC != 1.5 {
		t.Fatalf("artifact = %+v, want schema %d and IPC 1.5", got, grid.SchemaVersion)
	}

	// The published artifact must be visible to the engine-facing cache.
	if cached, ok := cache.Load(context.Background(), key, grid.Job{}); !ok || cached.IPC != 1.5 {
		t.Fatalf("disk cache = (%v, %v), want the published result", cached, ok)
	}

	// Malformed keys are rejected before touching the cache.
	resp, body = getBody(t, client, ts.URL+"/v1/cache/not-a-key")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "invalid_key") {
		t.Fatalf("bad key GET = %d %q, want 400 invalid_key", resp.StatusCode, body)
	}
	if resp := putArtifact(t, client, ts.URL+"/v1/cache/"+strings.Repeat("Z", 64), a); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key PUT = %d, want 400", resp.StatusCode)
	}

	// Stale schemas are refused so a mixed-version fleet cannot poison the
	// store.
	stale := a
	stale.Schema = grid.SchemaVersion - 1
	if resp := putArtifact(t, client, ts.URL+"/v1/cache/"+key, stale); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stale PUT = %d, want 400", resp.StatusCode)
	}

	// Wrong method on the cache path: structured 405 naming the verbs.
	resp, body = postJSON(t, client, ts.URL+"/v1/cache/"+key, "{}")
	if resp.StatusCode != http.StatusMethodNotAllowed || !strings.Contains(body, "method_not_allowed") {
		t.Fatalf("POST on cache = %d %q, want 405", resp.StatusCode, body)
	}
}

func TestCacheEndpointsWithoutCache(t *testing.T) {
	srv, _ := newTestServer(t, grid.Options{Workers: 1}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	key := strings.Repeat("a", 64)
	resp, body := getBody(t, ts.Client(), ts.URL+"/v1/cache/"+key)
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(body, "no_cache") {
		t.Fatalf("GET without cache = %d %q, want 404 no_cache", resp.StatusCode, body)
	}
}

// TestHealthzBackend: the health body carries the Backend probe's answer,
// and an unreachable tier degrades the reported status without failing the
// probe (the server still serves — every tier is fail-open).
func TestHealthzBackend(t *testing.T) {
	backend := BackendStatus{
		CacheTiers: []CacheTierStatus{
			{Tier: "lru", OK: true},
			{Tier: "remote", OK: false, Err: "connection refused"},
		},
		DistWorkers: -1,
	}
	srv, _ := newTestServer(t, grid.Options{Workers: 1}, Config{
		Backend: func(context.Context) BackendStatus { return backend },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := getBody(t, ts.Client(), ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200 (degraded is not down)", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Errorf("status = %q, want degraded with an unreachable tier", h.Status)
	}
	if h.Backend == nil || len(h.Backend.CacheTiers) != 2 {
		t.Fatalf("backend = %+v, want both tiers reported", h.Backend)
	}
	if h.Backend.CacheTiers[1].Err != "connection refused" {
		t.Errorf("tier error %q not propagated", h.Backend.CacheTiers[1].Err)
	}
}
