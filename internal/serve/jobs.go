package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"multiscalar/internal/grid"
	"multiscalar/internal/jobs"
)

// This file is the asynchronous face of the service: POST /v1/jobs accepts
// the same request bodies as the synchronous endpoints but returns a job ID
// immediately; GET /v1/jobs/{id} polls status, GET /v1/jobs/{id}/events
// streams progress over SSE (resumable via Last-Event-ID), DELETE cancels.
// Job identity is the content address of the canonicalized request, so two
// tenants submitting the same sweep share one execution and a resubmission
// after the job finished returns the stored result without running anything.

// JobSubmitRequest asks POST /v1/jobs to run one of the synchronous
// endpoints' request bodies asynchronously. Kind names the endpoint
// ("partition", "simulate", "generate", "experiment"); Request is that
// endpoint's exact JSON body.
type JobSubmitRequest struct {
	Kind    string          `json:"kind"`
	Request json.RawMessage `json:"request"`
}

// JobStatusResponse is the wire form of one job record. Result is the
// terminal payload (the synchronous endpoint's response body) once the job
// is done; Error explains failed and canceled states.
type JobStatusResponse struct {
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	State    string          `json:"state"`
	Tenant   string          `json:"tenant,omitempty"`
	Created  string          `json:"created,omitempty"`
	Started  string          `json:"started,omitempty"`
	Finished string          `json:"finished,omitempty"`
	Attempts int             `json:"attempts"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

func jobStatus(rec jobs.Record) JobStatusResponse {
	resp := JobStatusResponse{
		ID:       rec.ID,
		Kind:     rec.Spec.Kind,
		State:    string(rec.State),
		Tenant:   rec.Tenant,
		Attempts: rec.Attempts,
		Error:    rec.Error,
		Result:   rec.Result,
	}
	if !rec.Created.IsZero() {
		resp.Created = rec.Created.UTC().Format(time.RFC3339Nano)
	}
	if !rec.Started.IsZero() {
		resp.Started = rec.Started.UTC().Format(time.RFC3339Nano)
	}
	if !rec.Finished.IsZero() {
		resp.Finished = rec.Finished.UTC().Format(time.RFC3339Nano)
	}
	return resp
}

// JobsStatus is the /healthz jobs block: queue and table counts plus the age
// of the longest-waiting queued job, the number an operator watches to tell
// "busy" from "stuck".
type JobsStatus struct {
	Queued         int   `json:"queued"`
	Running        int   `json:"running"`
	Done           int   `json:"done"`
	Failed         int   `json:"failed"`
	Canceled       int   `json:"canceled"`
	OldestQueuedMS int64 `json:"oldest_queued_ms"`
}

// strictUnmarshal is decode's transport-free twin: unknown fields and
// trailing data are errors, so a job payload passes exactly the same gate as
// the synchronous endpoint's body.
func strictUnmarshal[T any](raw []byte) (T, error) {
	var v T
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return v, err
	}
	if dec.More() {
		return v, fmt.Errorf("trailing data after JSON body")
	}
	return v, nil
}

// canonicalJobSpec validates a submission and re-marshals the typed request,
// so formatting differences — field order, whitespace, absent-vs-zero fields
// — never split identical work across distinct job IDs.
func canonicalJobSpec(kind string, raw json.RawMessage) (jobs.Spec, error) {
	if len(raw) == 0 {
		return jobs.Spec{}, fmt.Errorf("missing request body for kind %q", kind)
	}
	var canon any
	switch kind {
	case "partition":
		req, err := strictUnmarshal[PartitionRequest](raw)
		if err != nil {
			return jobs.Spec{}, err
		}
		if _, err := req.Select.core(); err != nil {
			return jobs.Spec{}, err
		}
		if _, err := resolveWorkload(req.Workload, req.Generator); err != nil {
			return jobs.Spec{}, err
		}
		canon = req
	case "simulate":
		req, err := strictUnmarshal[SimulateRequest](raw)
		if err != nil {
			return jobs.Spec{}, err
		}
		if _, err := req.Select.core(); err != nil {
			return jobs.Spec{}, err
		}
		if _, err := req.Machine.config(); err != nil {
			return jobs.Spec{}, err
		}
		if _, err := resolveWorkload(req.Workload, req.Generator); err != nil {
			return jobs.Spec{}, err
		}
		canon = req
	case "generate":
		req, err := strictUnmarshal[GenerateRequest](raw)
		if err != nil {
			return jobs.Spec{}, err
		}
		canon = req
	case "experiment":
		req, err := strictUnmarshal[ExperimentRequest](raw)
		if err != nil {
			return jobs.Spec{}, err
		}
		if err := req.validate(); err != nil {
			return jobs.Spec{}, err
		}
		canon = req
	default:
		return jobs.Spec{}, fmt.Errorf("unknown job kind %q (want partition, simulate, generate, or experiment)", kind)
	}
	blob, err := json.Marshal(canon)
	if err != nil {
		return jobs.Spec{}, fmt.Errorf("canonicalize request: %w", err)
	}
	return jobs.Spec{Kind: kind, Payload: blob}, nil
}

// Executors builds the job-kind registry the manager runs: each executor is
// the transport-free core of the matching synchronous handler, so a job and
// a direct request produce identical result bodies through the same engine
// (and therefore the same single-flight and cache).
func Executors(eng *grid.Engine, progressInterval time.Duration) map[string]jobs.Executor {
	if progressInterval <= 0 {
		progressInterval = 500 * time.Millisecond
	}
	return map[string]jobs.Executor{
		"partition":  partitionExecutor(eng),
		"simulate":   simulateExecutor(eng),
		"generate":   generateExecutor(),
		"experiment": experimentExecutor(eng, progressInterval),
	}
}

// JobCost estimates relative fair-queue cost per kind: an experiment sweep
// dominates a single simulation, which dominates static analysis. Ordering
// only — admission is never affected.
func JobCost(spec jobs.Spec) float64 {
	switch spec.Kind {
	case "experiment":
		return 10
	case "simulate":
		return 2
	default:
		return 1
	}
}

func partitionExecutor(eng *grid.Engine) jobs.Executor {
	return func(ctx context.Context, spec jobs.Spec, emit jobs.EmitFunc) (any, error) {
		req, err := strictUnmarshal[PartitionRequest](spec.Payload)
		if err != nil {
			return nil, fmt.Errorf("decode job payload: %w", err)
		}
		opts, err := req.Select.core()
		if err != nil {
			return nil, err
		}
		name, err := resolveWorkload(req.Workload, req.Generator)
		if err != nil {
			return nil, err
		}
		return partitionResult(ctx, eng, name, opts)
	}
}

func simulateExecutor(eng *grid.Engine) jobs.Executor {
	return func(ctx context.Context, spec jobs.Spec, emit jobs.EmitFunc) (any, error) {
		req, err := strictUnmarshal[SimulateRequest](spec.Payload)
		if err != nil {
			return nil, fmt.Errorf("decode job payload: %w", err)
		}
		opts, err := req.Select.core()
		if err != nil {
			return nil, err
		}
		cfg, err := req.Machine.config()
		if err != nil {
			return nil, err
		}
		name, err := resolveWorkload(req.Workload, req.Generator)
		if err != nil {
			return nil, err
		}
		return simulateResult(ctx, eng, grid.Job{Workload: name, Select: opts, Config: cfg})
	}
}

func generateExecutor() jobs.Executor {
	return func(ctx context.Context, spec jobs.Spec, emit jobs.EmitFunc) (any, error) {
		req, err := strictUnmarshal[GenerateRequest](spec.Payload)
		if err != nil {
			return nil, fmt.Errorf("decode job payload: %w", err)
		}
		return generateResult(req.Generator.params()), nil
	}
}

// experimentExecutor runs a named sweep, emitting progress deltas into the
// job's event stream at the configured cadence. The terminal result carries a
// zero Progress block: progress is observation, not outcome, and folding live
// counters into the result would break the byte-identity that lets replicas
// and restarts serve the same job from its stored bytes.
func experimentExecutor(eng *grid.Engine, interval time.Duration) jobs.Executor {
	return func(ctx context.Context, spec jobs.Spec, emit jobs.EmitFunc) (any, error) {
		req, err := strictUnmarshal[ExperimentRequest](spec.Payload)
		if err != nil {
			return nil, fmt.Errorf("decode job payload: %w", err)
		}
		base := eng.Stats()
		start := time.Now()
		type outcome struct {
			result ExperimentResult
			err    error
		}
		done := make(chan outcome, 1)
		go func() {
			res, err := runExperiment(ctx, eng, req)
			done <- outcome{result: res, err: err}
		}()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		emit("progress", progressSince(base, eng.Stats(), start))
		for {
			select {
			case o := <-done:
				if o.err != nil {
					return nil, o.err
				}
				return o.result, nil
			case <-tick.C:
				emit("progress", progressSince(base, eng.Stats(), start))
			case <-ctx.Done():
				o := <-done // the runner unwinds promptly once ctx ends
				if o.err != nil {
					return nil, o.err
				}
				return o.result, nil
			}
		}
	}
}

// tenantOf attributes a request for fair queueing and rate limiting. The
// X-Api-Key header is the tenant identity; absent keys pool into "anonymous"
// (one shared fair-queue lane and token bucket, so keyless clients cannot
// mint tenants).
func tenantOf(r *http.Request) string {
	if k := r.Header.Get("X-Api-Key"); k != "" {
		return k
	}
	return "anonymous"
}

// retryAfterSeconds converts backpressure into a retry hint. floorSec is the
// honest minimum (e.g. the limiter's token-refill time); depth scales the
// base with queue pressure; the random component spreads a simultaneously
// shed burst across the window instead of inviting it back as one
// synchronized stampede.
func retryAfterSeconds(floorSec, depth int) int {
	base := floorSec
	if base < 1 {
		base = 1
	}
	base += depth / 16
	if base > 30 {
		base = 30
	}
	return base + rand.IntN(base)
}

// pressure is the server's current backlog estimate for Retry-After scaling.
func (s *Server) pressure() int {
	d := len(s.admit)
	if s.cfg.Jobs != nil {
		d += s.cfg.Jobs.Stats().Queued
	}
	return d
}

// routeJob redirects a job request to the replica owning id (307 preserves
// method and body). Reports true when the request was redirected; a nil ring
// or single-replica deployment owns everything and never routes.
func (s *Server) routeJob(w http.ResponseWriter, r *http.Request, id string) bool {
	if s.cfg.Ring.Owns(id) {
		return false
	}
	owner := s.cfg.Ring.Owner(id)
	http.Redirect(w, r, owner+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	return true
}

// handleJobSubmit accepts a job, answering 202 when this call scheduled new
// work and 200 when an identical job already existed (queued, running, or
// finished — the body's state says which). Submissions are rate limited per
// tenant; on another replica's key the client is redirected before any
// limiter token is spent.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[JobSubmitRequest](w, r, s.cfg.MaxBodyBytes)
	if !ok {
		return
	}
	spec, err := canonicalJobSpec(req.Kind, req.Request)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	id := jobs.IDFor(spec)
	if s.routeJob(w, r, id) {
		return
	}
	tenant := tenantOf(r)
	if allowed, retry := s.cfg.JobLimiter.Allow(tenant); !allowed {
		floor := int(retry / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(floor, s.pressure())))
		writeError(w, http.StatusTooManyRequests, "rate_limited",
			fmt.Sprintf("tenant %q exceeded its submission rate; retry later", tenant))
		return
	}
	rec, created, err := s.cfg.Jobs.Submit(tenant, spec)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error())
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusAccepted
	}
	writeJSON(w, status, jobStatus(rec))
}

// jobFromPath validates the {id} path segment and resolves the record,
// writing the error response itself on failure.
func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (jobs.Record, bool) {
	id := r.PathValue("id")
	if err := jobs.ValidateID(id); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_id", err.Error())
		return jobs.Record{}, false
	}
	if s.routeJob(w, r, id) {
		return jobs.Record{}, false
	}
	rec, ok := s.cfg.Jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no job "+id)
		return jobs.Record{}, false
	}
	return rec, true
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, jobStatus(rec))
}

// handleJobList summarizes retained jobs, newest first, results elided (poll
// the individual job for its payload).
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	recs := s.cfg.Jobs.List()
	out := make([]JobStatusResponse, len(recs))
	for i, rec := range recs {
		out[i] = jobStatus(rec)
		out[i].Result = nil
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := jobs.ValidateID(id); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_id", err.Error())
		return
	}
	if s.routeJob(w, r, id) {
		return
	}
	rec, ok := s.cfg.Jobs.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no job "+id)
		return
	}
	writeJSON(w, http.StatusOK, jobStatus(rec))
}

// lastEventID parses the client's resume cursor: the standard Last-Event-ID
// header an EventSource sends on reconnect, or an ?after= query parameter
// for plain HTTP clients. Unparseable cursors restart from the beginning —
// duplicates are the safe failure mode, silent gaps are not.
func lastEventID(r *http.Request) int64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("after")
	}
	if raw == "" {
		return 0
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// handleJobEvents streams a job's event log over SSE from the client's
// cursor: progress deltas while it runs, then the terminal result or error
// event. Every event carries its sequence as the SSE id, so a dropped
// connection resumes exactly — reconnect with Last-Event-ID=N and the stream
// continues at N+1, no duplicates, no gaps. Streams on terminal jobs replay
// the retained log and close.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, "internal", "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	after := lastEventID(r)
	for {
		evs, more, terminal, ok := s.cfg.Jobs.EventsSince(rec.ID, after)
		if !ok {
			return // evicted mid-stream
		}
		for _, ev := range evs {
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Name, ev.Data); err != nil {
				return
			}
			after = ev.Seq
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}
