package serve

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"multiscalar/internal/core"
	"multiscalar/internal/grid"
	"multiscalar/internal/obs"
	"multiscalar/internal/sim"
)

// gateSim stubs the grid's simulation function with one that counts calls
// and blocks until release is closed.
func gateSim(t *testing.T) (release chan struct{}, calls *atomic.Int64) {
	t.Helper()
	release = make(chan struct{})
	calls = &atomic.Int64{}
	restore := grid.SetSimForTesting(func(part *core.Partition, cfg sim.Config) (*sim.Result, error) {
		calls.Add(1)
		<-release
		return &sim.Result{IPC: 1, Cycles: 100, Instrs: 100}, nil
	})
	t.Cleanup(restore)
	return release, calls
}

// fastSim stubs the grid's simulation function with an instant result.
func fastSim(t *testing.T) *atomic.Int64 {
	t.Helper()
	calls := &atomic.Int64{}
	restore := grid.SetSimForTesting(func(part *core.Partition, cfg sim.Config) (*sim.Result, error) {
		calls.Add(1)
		return &sim.Result{IPC: 1, Cycles: 100, Instrs: 100}, nil
	})
	t.Cleanup(restore)
	return calls
}

// newTestServer builds a server (and its engine) with test-friendly bounds.
func newTestServer(t *testing.T, engOpts grid.Options, cfg Config) (*Server, *grid.Engine) {
	t.Helper()
	reg := obs.NewRegistry()
	engOpts.Metrics = reg
	eng := grid.New(engOpts)
	cfg.Engine = eng
	cfg.Metrics = reg
	if cfg.ProgressInterval == 0 {
		cfg.ProgressInterval = 10 * time.Millisecond
	}
	return New(cfg), eng
}

func postJSON(t *testing.T, client *http.Client, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, string(blob)
}

func getBody(t *testing.T, client *http.Client, url string) (*http.Response, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, string(blob)
}

// waitFor polls cond up to 2s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

const simBody = `{"workload":"fpppp","select":{"heuristic":"cf"},"machine":{"pus":4}}`

// TestCoalescing proves the server's core economic property: N identical
// concurrent POST /v1/simulate requests cause exactly one engine simulation,
// and every client receives the same result.
func TestCoalescing(t *testing.T) {
	release, calls := gateSim(t)
	srv, eng := newTestServer(t, grid.Options{Workers: 2}, Config{MaxInFlight: 32})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 8
	type reply struct {
		status int
		body   string
	}
	replies := make(chan reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/simulate", simBody)
			replies <- reply{resp.StatusCode, body}
		}()
	}
	// One leader is inside the (blocked) sim; the other n-1 must be
	// coalesced waiters, holding no worker slot.
	waitFor(t, "leader to start simulating", func() bool { return calls.Load() == 1 })
	waitFor(t, "waiters to coalesce", func() bool { return eng.Stats().Deduped >= n-1 })
	close(release)
	wg.Wait()
	close(replies)

	var bodies []string
	for r := range replies {
		if r.status != http.StatusOK {
			t.Errorf("status %d, body %s", r.status, r.body)
		}
		bodies = append(bodies, r.body)
	}
	for i := 1; i < len(bodies); i++ {
		if bodies[i] != bodies[0] {
			t.Errorf("response %d differs from response 0", i)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("%d concurrent identical requests ran %d sims, want exactly 1", n, got)
	}
	if s := eng.Stats(); s.Sims != 1 {
		t.Errorf("engine sims = %d, want 1", s.Sims)
	}
}

// TestLoadShed proves the admission gate: with one slot occupied by a
// blocked request, the next request is shed with 429 + Retry-After and a
// structured error body, without touching the engine.
func TestLoadShed(t *testing.T) {
	release, calls := gateSim(t)
	srv, eng := newTestServer(t, grid.Options{Workers: 1}, Config{MaxInFlight: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/simulate", simBody)
		first <- resp.StatusCode
	}()
	waitFor(t, "first request to occupy the slot", func() bool { return calls.Load() == 1 })

	// A different job (no coalescing possible) must be shed at the gate.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/simulate",
		`{"workload":"fpppp","select":{"heuristic":"bb"},"machine":{"pus":2}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	var eb ErrorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Error.Code != "overloaded" {
		t.Errorf("shed body = %q (err %v), want code overloaded", body, err)
	}
	if jobs := eng.Stats().Jobs; jobs != 1 {
		t.Errorf("shed request reached the engine (jobs=%d)", jobs)
	}

	close(release)
	if status := <-first; status != http.StatusOK {
		t.Errorf("occupying request finished with %d", status)
	}
	// The shed is visible on the scrape.
	_, scrape := getBody(t, ts.Client(), ts.URL+"/metrics")
	if !strings.Contains(scrape, "serve_shed_total 1") {
		t.Errorf("metrics missing serve_shed_total 1:\n%s", scrape)
	}
}

// TestGracefulDrain proves Shutdown semantics: the listener stops accepting
// new connections while the in-flight request runs to completion and gets a
// full 200 response; afterwards healthz reports draining.
func TestGracefulDrain(t *testing.T) {
	release, calls := gateSim(t)
	srv, _ := newTestServer(t, grid.Options{Workers: 1}, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	client := &http.Client{}
	inflight := make(chan struct {
		status int
		body   string
	}, 1)
	go func() {
		resp, body := postJSON(t, client, url+"/v1/simulate", simBody)
		inflight <- struct {
			status int
			body   string
		}{resp.StatusCode, body}
	}()
	waitFor(t, "request to reach the simulator", func() bool { return calls.Load() == 1 })

	shutdownErr := make(chan error, 1)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() { shutdownErr <- srv.Shutdown(shutdownCtx) }()

	// The listener must close promptly even though a request is in flight.
	waitFor(t, "listener to stop accepting", func() bool {
		c, err := net.DialTimeout("tcp", ln.Addr().String(), 50*time.Millisecond)
		if err != nil {
			return true
		}
		c.Close()
		return false
	})
	select {
	case r := <-inflight:
		t.Fatalf("in-flight request completed during drain before release: %d %s", r.status, r.body)
	default:
	}

	close(release)
	r := <-inflight
	if r.status != http.StatusOK || !strings.Contains(r.body, `"result"`) {
		t.Errorf("in-flight request during drain: status %d body %s", r.status, r.body)
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("Shutdown returned %v, want nil (clean drain)", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}

	// After drain the handler itself reports draining.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Errorf("healthz after drain: %d %s", rec.Code, rec.Body.String())
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data string
}

func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var out []sseEvent
	for _, chunk := range strings.Split(body, "\n\n") {
		chunk = strings.TrimSpace(chunk)
		if chunk == "" {
			continue
		}
		var ev sseEvent
		for _, line := range strings.Split(chunk, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			default:
				t.Errorf("unexpected SSE line %q", line)
			}
		}
		out = append(out, ev)
	}
	return out
}

// TestExperimentSSE proves the stream shape: at least one progress event,
// then a terminal result event carrying the experiment rows.
func TestExperimentSSE(t *testing.T) {
	fastSim(t)
	srv, _ := newTestServer(t, grid.Options{Workers: 2}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/experiment",
		`{"name":"fig5","workloads":["fpppp"],"pus":[2]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	events := parseSSE(t, body)
	if len(events) < 2 {
		t.Fatalf("got %d events, want at least progress + result:\n%s", len(events), body)
	}
	if events[0].name != "progress" {
		t.Errorf("first event %q, want progress", events[0].name)
	}
	var prog Progress
	if err := json.Unmarshal([]byte(events[0].data), &prog); err != nil {
		t.Errorf("progress data %q: %v", events[0].data, err)
	}
	last := events[len(events)-1]
	if last.name != "result" {
		t.Fatalf("terminal event %q, want result:\n%s", last.name, body)
	}
	var res ExperimentResult
	if err := json.Unmarshal([]byte(last.data), &res); err != nil {
		t.Fatalf("result data: %v", err)
	}
	// 1 workload × 1 PU count × {ooo, inorder} × 4 variants.
	if res.Name != "fig5" || len(res.Cells) != 8 {
		t.Errorf("result name=%q cells=%d, want fig5/8", res.Name, len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.IPC != 1 {
			t.Errorf("cell %+v missing stubbed IPC", c)
		}
	}
	if res.Progress.JobsDone == 0 || res.Progress.Sims == 0 {
		t.Errorf("terminal progress shows no work: %+v", res.Progress)
	}
	for _, ev := range events[1 : len(events)-1] {
		if ev.name != "progress" {
			t.Errorf("mid-stream event %q, want progress", ev.name)
		}
	}
}

// TestBadRequests pins the 4xx contract: strict decoding, up-front
// validation, and the structured error shape.
func TestBadRequests(t *testing.T) {
	fastSim(t)
	srv, eng := newTestServer(t, grid.Options{Workers: 1}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"unknown field", "/v1/simulate", `{"workload":"fpppp","bogus":1}`, 400, "invalid_request"},
		{"malformed json", "/v1/simulate", `{"workload":`, 400, "invalid_request"},
		{"trailing data", "/v1/simulate", simBody + ` {"again":true}`, 400, "invalid_request"},
		{"unknown workload", "/v1/simulate", `{"workload":"nope"}`, 400, "unknown_workload"},
		{"missing workload", "/v1/simulate", `{}`, 400, "unknown_workload"},
		{"bad heuristic", "/v1/simulate", `{"workload":"fpppp","select":{"heuristic":"zz"}}`, 400, "invalid_request"},
		{"bad pus", "/v1/simulate", `{"workload":"fpppp","machine":{"pus":-3}}`, 400, "invalid_request"},
		{"huge pus", "/v1/simulate", `{"workload":"fpppp","machine":{"pus":4096}}`, 400, "invalid_request"},
		{"partition unknown workload", "/v1/partition", `{"workload":"nope"}`, 400, "unknown_workload"},
		{"partition bad heuristic", "/v1/partition", `{"workload":"fpppp","select":{"heuristic":"xx"}}`, 400, "invalid_request"},
		{"unknown experiment", "/v1/experiment", `{"name":"fig9"}`, 400, "invalid_request"},
		{"experiment bad workload", "/v1/experiment", `{"name":"fig5","workloads":["nope"]}`, 400, "invalid_request"},
		{"experiment bad pus", "/v1/experiment", `{"name":"fig5","pus":[0]}`, 400, "invalid_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.Client(), ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.status, body)
			}
			var eb ErrorBody
			if err := json.Unmarshal([]byte(body), &eb); err != nil {
				t.Fatalf("error body not structured: %q (%v)", body, err)
			}
			if eb.Error.Code != tc.code {
				t.Errorf("code %q, want %q (message %q)", eb.Error.Code, tc.code, eb.Error.Message)
			}
			if eb.Error.Message == "" {
				t.Error("empty error message")
			}
		})
	}
	if jobs := eng.Stats().Jobs; jobs != 0 {
		t.Errorf("invalid requests reached the engine (jobs=%d)", jobs)
	}

	// Wrong method and unknown route.
	resp, err := ts.Client().Get(ts.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/simulate = %d, want 405", resp.StatusCode)
	}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/nope", `{}`)
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(body, "not_found") {
		t.Errorf("unknown route: %d %s", resp.StatusCode, body)
	}

	// Oversized body.
	srv2, _ := newTestServer(t, grid.Options{Workers: 1}, Config{MaxBodyBytes: 64})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, body = postJSON(t, ts2.Client(), ts2.URL+"/v1/simulate",
		`{"workload":"`+strings.Repeat("x", 200)+`"}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || !strings.Contains(body, "body_too_large") {
		t.Errorf("oversized body: %d %s", resp.StatusCode, body)
	}
}

// TestPartitionEndpoint exercises the full partition + verify path against
// the real selector (no stubbing: partitions are cheap).
func TestPartitionEndpoint(t *testing.T) {
	srv, eng := newTestServer(t, grid.Options{Workers: 2}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/partition",
		`{"workload":"compress","select":{"heuristic":"dd","task_size":true}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var pr PartitionResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Workload != "compress" || pr.Heuristic != "data dependence" {
		t.Errorf("workload/heuristic = %q/%q", pr.Workload, pr.Heuristic)
	}
	if pr.Tasks == 0 || pr.Blocks == 0 {
		t.Errorf("empty summary: %+v", pr)
	}
	// Select-produced partitions always verify clean of errors.
	if pr.Errors != 0 {
		t.Errorf("verify errors on a Select partition: %+v", pr.Findings)
	}
	// Identical repeated request hits the partition memo.
	if _, body2 := postJSON(t, ts.Client(), ts.URL+"/v1/partition",
		`{"workload":"compress","select":{"heuristic":"dd","task_size":true}}`); body2 != body {
		t.Error("repeated partition request not deterministic")
	}
	if p := eng.Stats().Partitions; p != 1 {
		t.Errorf("partitions = %d, want 1 (memoized)", p)
	}
}

// TestHealthzAndMetrics covers the operational endpoints end to end with a
// live simulate in between.
func TestHealthzAndMetrics(t *testing.T) {
	fastSim(t)
	srv, _ := newTestServer(t, grid.Options{Workers: 2}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || hr.Status != "ok" || hr.Workers != 2 {
		t.Errorf("healthz: %d %+v", resp.StatusCode, hr)
	}

	if resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/simulate", simBody); resp.StatusCode != 200 {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	} else {
		var sr SimulateResponse
		if err := json.Unmarshal([]byte(body), &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Key == "" || sr.Result == nil || sr.Result.IPC != 1 {
			t.Errorf("simulate response: %+v", sr)
		}
	}

	_, scrape := getBody(t, ts.Client(), ts.URL+"/metrics")
	for _, want := range []string{"serve_requests_total", "serve_inflight", "grid_jobs_total", "grid_sims_total"} {
		if !strings.Contains(scrape, want) {
			t.Errorf("metrics missing %s:\n%s", want, scrape)
		}
	}
}

// TestPanicRecovery: a handler panic becomes a 500 with the structured
// error shape, and the server keeps serving.
func TestPanicRecovery(t *testing.T) {
	srv, _ := newTestServer(t, grid.Options{Workers: 1}, Config{})
	// Reach into the mux indirectly: a nil-map write via a crafted request
	// isn't available, so wrap the handler with a deliberate panic route.
	h := srv.Handler()
	mux := http.NewServeMux()
	mux.Handle("/", h)
	panicking := srv.middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	panicking.ServeHTTP(rec, httptest.NewRequest("GET", "/whatever", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic produced %d, want 500", rec.Code)
	}
	var eb ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error.Code != "internal" {
		t.Errorf("panic body %q (%v)", rec.Body.String(), err)
	}
	// The server is still functional.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("healthz after panic: %d", rec.Code)
	}
}

// TestRequestDeadline: a request whose deadline expires while queued gets a
// 504 with code deadline_exceeded, and the canceled job is not memoized.
func TestRequestDeadline(t *testing.T) {
	release, calls := gateSim(t)
	srv, eng := newTestServer(t, grid.Options{Workers: 1},
		Config{RequestTimeout: 80 * time.Millisecond, MaxInFlight: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the single worker.
	occupier := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/simulate", simBody)
		occupier <- resp.StatusCode
	}()
	waitFor(t, "occupier to start", func() bool { return calls.Load() == 1 })

	// This one queues behind it and must time out at the request deadline.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/simulate",
		`{"workload":"fpppp","select":{"heuristic":"bb"},"machine":{"pus":2}}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued request: %d %s, want 504", resp.StatusCode, body)
	}
	var eb ErrorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Error.Code != "deadline_exceeded" {
		t.Errorf("deadline body %q (%v)", body, err)
	}

	close(release)
	if s := <-occupier; s != 200 {
		t.Errorf("occupier finished with %d", s)
	}
	// The deadline-canceled job must not be memoized: rerunning it with a
	// free worker now succeeds.
	sims := eng.Stats().Sims
	resp, body = postJSON(t, ts.Client(), ts.URL+"/v1/simulate",
		`{"workload":"fpppp","select":{"heuristic":"bb"},"machine":{"pus":2}}`)
	if resp.StatusCode != 200 {
		t.Errorf("rerun after deadline: %d %s", resp.StatusCode, body)
	}
	if got := eng.Stats().Sims; got != sims+1 {
		t.Errorf("rerun did not simulate (sims %d -> %d)", sims, got)
	}
}
