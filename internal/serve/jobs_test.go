package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"multiscalar/internal/core"
	"multiscalar/internal/grid"
	"multiscalar/internal/jobs"
	"multiscalar/internal/obs"
	"multiscalar/internal/sim"
)

// newJobsServer builds a server with the async job subsystem wired the way
// cmd/mssrv wires it: manager executors over the same engine, JobCost, and
// any extra Config the test needs.
func newJobsServer(t *testing.T, dir string, cfg Config) (*Server, *grid.Engine, *jobs.Manager) {
	t.Helper()
	reg := obs.NewRegistry()
	eng := grid.New(grid.Options{Workers: 2, Metrics: reg})
	mgr, err := jobs.NewManager(jobs.Options{
		Runners:   2,
		Dir:       dir,
		Executors: Executors(eng, 5*time.Millisecond),
		Cost:      JobCost,
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	mgr.Start(ctx)
	t.Cleanup(func() {
		cancel()
		mgr.Close()
	})
	cfg.Engine = eng
	cfg.Metrics = reg
	cfg.Jobs = mgr
	if cfg.ProgressInterval == 0 {
		cfg.ProgressInterval = 10 * time.Millisecond
	}
	return New(cfg), eng, mgr
}

const jobSimBody = `{"kind":"simulate","request":` + simBody + `}`

func submitJob(t *testing.T, client *http.Client, base, body string) JobStatusResponse {
	t.Helper()
	resp, out := postJSON(t, client, base+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, out)
	}
	var js JobStatusResponse
	if err := json.Unmarshal([]byte(out), &js); err != nil {
		t.Fatalf("submit: decode %q: %v", out, err)
	}
	return js
}

func pollJob(t *testing.T, client *http.Client, base, id string) JobStatusResponse {
	t.Helper()
	var js JobStatusResponse
	waitFor(t, "job "+id+" terminal", func() bool {
		_, out := getBody(t, client, base+"/v1/jobs/"+id)
		if err := json.Unmarshal([]byte(out), &js); err != nil {
			return false
		}
		return js.State == "done" || js.State == "failed" || js.State == "canceled"
	})
	return js
}

// TestJobSubmitPollWarmResubmit is the core async flow: submit returns an ID
// immediately, polling reaches done, and resubmitting the same body returns
// the cached terminal result with zero new simulations.
func TestJobSubmitPollWarmResubmit(t *testing.T) {
	calls := fastSim(t)
	srv, _, _ := newJobsServer(t, "", Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := submitJob(t, ts.Client(), ts.URL, jobSimBody)
	if first.ID == "" || first.Kind != "simulate" {
		t.Fatalf("submit response %+v", first)
	}
	done := pollJob(t, ts.Client(), ts.URL, first.ID)
	if done.State != "done" || len(done.Result) == 0 {
		t.Fatalf("terminal job %+v", done)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(done.Result, &sr); err != nil || sr.Workload != "fpppp" {
		t.Fatalf("job result %s (err %v)", done.Result, err)
	}
	before := calls.Load()

	// Warm resubmission: same body (even with different key order) joins the
	// finished record — 200, result attached, zero engine work.
	reordered := `{"request":` + simBody + `,"kind":"simulate"}`
	resp, out := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", reordered)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit status %d body %s", resp.StatusCode, out)
	}
	var again JobStatusResponse
	json.Unmarshal([]byte(out), &again)
	if again.ID != first.ID || again.State != "done" || string(again.Result) != string(done.Result) {
		t.Fatalf("resubmit %+v, want cached %+v", again, done)
	}
	if calls.Load() != before {
		t.Fatalf("warm resubmission ran %d new sims, want 0", calls.Load()-before)
	}
}

func TestJobValidationAndRoutes(t *testing.T) {
	fastSim(t)
	srv, _, _ := newJobsServer(t, "", Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		body string
		want int
	}{
		{`{"kind":"nope","request":{}}`, http.StatusBadRequest},
		{`{"kind":"simulate"}`, http.StatusBadRequest},
		{`{"kind":"simulate","request":{"workload":"not-a-workload"}}`, http.StatusBadRequest},
		{`{"kind":"experiment","request":{"name":"corpus","n":99999}}`, http.StatusBadRequest},
		{`{"kind":"simulate","request":` + simBody + `,"extra":1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("POST %s = %d (%s), want %d", c.body, resp.StatusCode, body, c.want)
		}
	}

	if resp, _ := getBody(t, ts.Client(), ts.URL+"/v1/jobs/zzzz"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed id status %d, want 400", resp.StatusCode)
	}
	missing := strings.Repeat("ab", 32)
	if resp, _ := getBody(t, ts.Client(), ts.URL+"/v1/jobs/"+missing); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPatch, ts.URL+"/v1/jobs/"+missing, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") == "" {
		t.Errorf("PATCH on job route: status %d Allow %q, want 405 with Allow", resp.StatusCode, resp.Header.Get("Allow"))
	}

	// List endpoint shows the submitted job without its result payload.
	submitJob(t, ts.Client(), ts.URL, jobSimBody)
	_, out := getBody(t, ts.Client(), ts.URL+"/v1/jobs")
	var list []JobStatusResponse
	if err := json.Unmarshal([]byte(out), &list); err != nil || len(list) != 1 {
		t.Fatalf("list = %s (err %v), want one job", out, err)
	}
	if len(list[0].Result) != 0 {
		t.Fatalf("list leaked result payload: %s", list[0].Result)
	}
}

// jobEvent is one parsed SSE frame (with its id line, unlike serve_test's sseEvent).
type jobEvent struct {
	id   int64
	name string
	data string
}

// readSSE parses frames from r until limit events are read (0 = until EOF).
func readSSE(t *testing.T, r io.Reader, limit int) []jobEvent {
	t.Helper()
	var (
		out []jobEvent
		cur jobEvent
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				out = append(out, cur)
				cur = jobEvent{}
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// TestJobEventsResume is the SSE durability story: a client watching a
// running experiment disconnects mid-stream, reconnects with Last-Event-ID,
// and observes the remaining events exactly once — no duplicates, no gaps.
func TestJobEventsResume(t *testing.T) {
	release, _ := gateSim(t)
	srv, _, mgr := newJobsServer(t, "", Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	job := submitJob(t, ts.Client(), ts.URL,
		`{"kind":"experiment","request":{"name":"corpus","seed":7,"n":2}}`)

	// First connection: read a few progress events, then drop the link
	// mid-experiment (the sims are still gated).
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+job.ID+"/events", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	first := readSSE(t, resp.Body, 3)
	cancel()
	resp.Body.Close()
	if len(first) != 3 {
		t.Fatalf("read %d events before disconnect, want 3", len(first))
	}
	for i, ev := range first {
		if ev.id != int64(i)+1 || ev.name != "progress" {
			t.Fatalf("event %d = %+v, want progress with seq %d", i, ev, i+1)
		}
	}

	// Let the experiment finish while no one is watching.
	close(release)
	waitFor(t, "job done", func() bool {
		rec, _ := mgr.Get(job.ID)
		return rec.State == jobs.StateDone
	})

	// Reconnect where we left off, exactly like an EventSource would.
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+job.ID+"/events", nil)
	req2.Header.Set("Last-Event-ID", strconv.FormatInt(first[len(first)-1].id, 10))
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rest := readSSE(t, resp2.Body, 0)
	if len(rest) == 0 {
		t.Fatal("no events after resume")
	}
	// Contiguous from the cursor: the first resumed event is seq 4, each
	// subsequent event increments, and the stream ends with the result.
	next := first[len(first)-1].id + 1
	for _, ev := range rest {
		if ev.id != next {
			t.Fatalf("resumed seq %d, want %d (events %+v)", ev.id, next, rest)
		}
		next++
	}
	last := rest[len(rest)-1]
	if last.name != "result" {
		t.Fatalf("final event %+v, want result", last)
	}
	var res ExperimentResult
	if err := json.Unmarshal([]byte(last.data), &res); err != nil || len(res.Corpus) == 0 {
		t.Fatalf("result event data %s (err %v)", last.data, err)
	}

	// A fresh replay from zero covers the full history with no seq gaps.
	resp3, body := getBody(t, ts.Client(), ts.URL+"/v1/jobs/"+job.ID+"/events")
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("replay status %d", resp3.StatusCode)
	}
	all := readSSE(t, strings.NewReader(body), 0)
	for i, ev := range all {
		if ev.id != int64(i)+1 {
			t.Fatalf("replay seq %d at index %d, want contiguous", ev.id, i)
		}
	}
	if all[len(all)-1].name != "result" {
		t.Fatalf("replay final event %+v", all[len(all)-1])
	}
}

// TestRetryAfterAlwaysParseable covers both 429 sources: the admission gate
// and the per-tenant submission limiter. Whatever the jitter rolls, the
// header must parse as a positive integer — an unparseable Retry-After turns
// polite clients into stampedes.
func TestRetryAfterAlwaysParseable(t *testing.T) {
	// gateSim before newJobsServer: its restore cleanup must run after the
	// manager has fully closed, or a draining runner races the global swap.
	release, _ := gateSim(t)
	srv, _, _ := newJobsServer(t, "", Config{
		MaxInFlight: 1,
		JobLimiter:  jobs.NewLimiter(0.001, 1),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Declared after ts.Close so the gate opens first: ts.Close waits for
	// the in-flight gated request.
	defer close(release)

	// Occupy the single admission slot with a gated synchronous simulate.
	go func() { postJSON(t, ts.Client(), ts.URL+"/v1/simulate", simBody) }()
	waitFor(t, "slot occupied", func() bool { return len(srv.admit) == 1 })

	parsePositive := func(resp *http.Response) {
		t.Helper()
		raw := resp.Header.Get("Retry-After")
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			t.Fatalf("Retry-After %q not a positive integer (err %v)", raw, err)
		}
	}
	for i := 0; i < 10; i++ {
		resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/simulate", simBody)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("gate shed status %d, want 429", resp.StatusCode)
		}
		parsePositive(resp)
	}

	// Tenant limiter: burst 1 at ~zero refill — first submit passes, the
	// rest are limited. (The submitted job is gated too; that's fine.)
	first, _ := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", jobSimBody)
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status %d", first.StatusCode)
	}
	for i := 0; i < 10; i++ {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", jobSimBody)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("limited submit status %d body %s, want 429", resp.StatusCode, body)
		}
		parsePositive(resp)
	}

	// Distinct tenants get distinct buckets.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"kind":"generate","request":{"generator":{"seed":9}}}`))
	req.Header.Set("X-Api-Key", "tenant-b")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fresh tenant submit status %d, want 202", resp.StatusCode)
	}
}

// TestHealthzJobsBlock: /healthz reports queue/running/done counts and the
// age of the oldest queued job.
func TestHealthzJobsBlock(t *testing.T) {
	release, _ := gateSim(t)
	srv, _, mgr := newJobsServer(t, "", Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	health := func() HealthResponse {
		t.Helper()
		_, body := getBody(t, ts.Client(), ts.URL+"/healthz")
		var h HealthResponse
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			t.Fatalf("healthz decode %q: %v", body, err)
		}
		if h.Jobs == nil {
			t.Fatalf("healthz has no jobs block: %s", body)
		}
		return h
	}
	if h := health(); h.Jobs.Queued != 0 || h.Jobs.Running != 0 || h.Jobs.Done != 0 {
		t.Fatalf("idle jobs block %+v", h.Jobs)
	}

	// Two gated simulate jobs on two runners: both run; a third queues.
	for i := 2; i <= 4; i++ {
		submitJob(t, ts.Client(), ts.URL,
			fmt.Sprintf(`{"kind":"simulate","request":{"workload":"fpppp","select":{},"machine":{"pus":%d}}}`, i))
	}
	waitFor(t, "two running one queued", func() bool {
		s := mgr.Stats()
		return s.Running == 2 && s.Queued == 1
	})
	h := health()
	if h.Jobs.Running != 2 || h.Jobs.Queued != 1 {
		t.Fatalf("busy jobs block %+v, want 2 running 1 queued", h.Jobs)
	}
	if h.Jobs.OldestQueuedMS < 0 {
		t.Fatalf("oldest_queued_ms %d negative", h.Jobs.OldestQueuedMS)
	}
	close(release)
	waitFor(t, "all done", func() bool { return mgr.Stats().Done == 3 })
	if h := health(); h.Jobs.Done != 3 || h.Jobs.Queued != 0 || h.Jobs.Running != 0 {
		t.Fatalf("drained jobs block %+v, want 3 done", h.Jobs)
	}
}

// TestJobCancelEndpoint cancels a queued job (both runners are pinned by
// gated jobs, so the third deterministically never starts). Cancellation of
// a running job is asynchronous-by-nature and covered in the jobs package.
func TestJobCancelEndpoint(t *testing.T) {
	release, _ := gateSim(t)
	srv, _, mgr := newJobsServer(t, "", Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(release)

	for pus := 2; pus <= 3; pus++ {
		submitJob(t, ts.Client(), ts.URL,
			fmt.Sprintf(`{"kind":"simulate","request":{"workload":"fpppp","select":{},"machine":{"pus":%d}}}`, pus))
	}
	waitFor(t, "both runners busy", func() bool { return mgr.Stats().Running == 2 })
	queued := submitJob(t, ts.Client(), ts.URL, jobSimBody)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d body %s", resp.StatusCode, blob)
	}
	var canceled JobStatusResponse
	json.Unmarshal(blob, &canceled)
	if canceled.State != "canceled" {
		t.Fatalf("cancel response state %q, want canceled (body %s)", canceled.State, blob)
	}
	if final := pollJob(t, ts.Client(), ts.URL, queued.ID); final.State != "canceled" {
		t.Fatalf("final state %q, want canceled", final.State)
	}
}

// TestJobSurvivesRestart drives durability through the HTTP layer: a job
// finished under one server is served — byte-identically, with zero new
// simulations — by a second server booted on the same journal directory.
func TestJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	calls := fastSim(t)
	body := `{"kind":"experiment","request":{"name":"corpus","seed":3,"n":2}}`

	srvA, _, _ := newJobsServer(t, dir, Config{})
	tsA := httptest.NewServer(srvA.Handler())
	jobA := submitJob(t, tsA.Client(), tsA.URL, body)
	doneA := pollJob(t, tsA.Client(), tsA.URL, jobA.ID)
	tsA.Close()
	if doneA.State != "done" {
		t.Fatalf("job under first server %+v", doneA)
	}
	simsBefore := calls.Load()

	srvB, _, _ := newJobsServer(t, dir, Config{})
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	_, out := getBody(t, tsB.Client(), tsB.URL+"/v1/jobs/"+jobA.ID)
	var replayed JobStatusResponse
	if err := json.Unmarshal([]byte(out), &replayed); err != nil {
		t.Fatalf("decode %q: %v", out, err)
	}
	if replayed.State != "done" || string(replayed.Result) != string(doneA.Result) {
		t.Fatalf("replayed job diverges:\nbefore: %+v\nafter:  %+v", doneA, replayed)
	}
	resp, out := postJSON(t, tsB.Client(), tsB.URL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart resubmit status %d body %s", resp.StatusCode, out)
	}
	if calls.Load() != simsBefore {
		t.Fatalf("restart re-ran %d sims, want 0", calls.Load()-simsBefore)
	}
}

// TestTwoReplicaRouting is the fleet acceptance: two replicas joined by a
// consistent-hash ring behave as one surface. Every submission lands on the
// key's owner (via 307 redirect) no matter which replica received it, both
// entry points return byte-identical results, and those bytes equal a
// single-server serial run of the same bodies.
func TestTwoReplicaRouting(t *testing.T) {
	// Deterministic sim that varies per machine config, so identical bytes
	// across servers prove real agreement rather than a constant.
	restore := grid.SetSimForTesting(func(part *core.Partition, cfg sim.Config) (*sim.Result, error) {
		return &sim.Result{
			IPC:    float64(cfg.NumPUs) + float64(len(part.Tasks))/1000,
			Cycles: int64(cfg.NumPUs * 100),
			Instrs: uint64(len(part.Tasks)),
		}, nil
	})
	t.Cleanup(restore)

	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url1 := "http://" + l1.Addr().String()
	url2 := "http://" + l2.Addr().String()
	peers := []string{url1, url2}

	mk := func(self string, l net.Listener) *Server {
		srv, _, _ := newJobsServer(t, "", Config{Ring: jobs.NewRing(self, peers)})
		go srv.Serve(l)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		return srv
	}
	mk(url1, l1)
	mk(url2, l2)
	client := &http.Client{Timeout: 5 * time.Second}

	bodies := make([]string, 6)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"kind":"simulate","request":{"workload":"compress","select":{},"machine":{"pus":%d}}}`, i+1)
	}

	// Serial reference: one standalone server runs the same bodies.
	ref, _, _ := newJobsServer(t, "", Config{})
	rs := httptest.NewServer(ref.Handler())
	defer rs.Close()

	for _, body := range bodies {
		viaA := submitJob(t, client, url1, body)
		doneA := pollJob(t, client, url1, viaA.ID)
		viaB := submitJob(t, client, url2, body)
		doneB := pollJob(t, client, url2, viaB.ID)
		if viaA.ID != viaB.ID {
			t.Fatalf("entry points disagree on job ID: %s vs %s", viaA.ID, viaB.ID)
		}
		if string(doneA.Result) != string(doneB.Result) {
			t.Fatalf("replica results diverge:\nA: %s\nB: %s", doneA.Result, doneB.Result)
		}
		serial := submitJob(t, client, rs.URL, body)
		doneSerial := pollJob(t, client, rs.URL, serial.ID)
		if string(doneA.Result) != string(doneSerial.Result) {
			t.Fatalf("fleet result diverges from serial run:\nfleet:  %s\nserial: %s", doneA.Result, doneSerial.Result)
		}
	}
}
