package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"multiscalar/internal/core"
	"multiscalar/internal/experiment"
	"multiscalar/internal/gen"
	"multiscalar/internal/grid"
	"multiscalar/internal/ir"
	"multiscalar/internal/verify"
)

// writeJSON renders v with a status; encode failures on plain data structs
// are programming errors and surface via the panic-recovery middleware.
func writeJSON(w http.ResponseWriter, status int, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("serve: encode response: %v", err))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(blob, '\n'))
}

// writeError renders the structured error shape.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: msg}})
}

// decode strictly parses a JSON request body: unknown fields, trailing data,
// and oversized bodies are all rejected before any engine work starts. It
// writes the error response itself and reports ok=false.
func decode[T any](w http.ResponseWriter, r *http.Request, maxBytes int64) (v T, ok bool) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return v, false
		}
		writeError(w, http.StatusBadRequest, "invalid_request", "decode request: "+err.Error())
		return v, false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "invalid_request", "trailing data after JSON body")
		return v, false
	}
	return v, true
}

// writeEngineError maps an engine failure onto the wire: a blown request
// deadline is 504, a client that went away gets nothing (the connection is
// gone), everything else is a 500 with the engine's message.
func (s *Server) writeEngineError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline_exceeded",
			fmt.Sprintf("request deadline (%s) exceeded before the job finished", s.cfg.RequestTimeout))
	case errors.Is(err, context.Canceled):
		// The client disconnected; log only.
		s.log.Info("client_gone", "method", r.Method, "path", r.URL.Path)
	default:
		s.log.Error("engine_error", "path", r.URL.Path, "err", err.Error())
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	resp := HealthResponse{
		Status:   status,
		Inflight: len(s.admit),
		Workers:  s.eng.Workers(),
	}
	if s.cfg.Jobs != nil {
		js := s.cfg.Jobs.Stats()
		resp.Jobs = &JobsStatus{
			Queued:         js.Queued,
			Running:        js.Running,
			Done:           js.Done,
			Failed:         js.Failed,
			Canceled:       js.Canceled,
			OldestQueuedMS: js.OldestQueued.Milliseconds(),
		}
	}
	if s.cfg.Backend != nil {
		b := s.cfg.Backend(r.Context())
		resp.Backend = &b
		// An unreachable cache tier degrades the report (the server still
		// works — every tier is fail-open) but keeps the 200: load balancers
		// should not pull a node that merely lost its remote cache.
		if status == "ok" {
			for _, t := range b.CacheTiers {
				if !t.OK {
					resp.Status = "degraded"
					break
				}
			}
		}
	}
	writeJSON(w, code, resp)
}

// handleCacheGet serves one artifact by content address — the read side of
// the remote cache tier. A miss is a plain 404: the caller computes locally.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if err := grid.ValidateKey(key); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_key", err.Error())
		return
	}
	if s.cfg.Cache == nil {
		writeError(w, http.StatusNotFound, "no_cache", "this server has no cache configured")
		return
	}
	res, ok := s.cfg.Cache.Load(r.Context(), key, grid.Job{})
	if !ok {
		writeError(w, http.StatusNotFound, "not_cached", "no artifact for key "+key)
		return
	}
	writeJSON(w, http.StatusOK, grid.Artifact{Schema: grid.SchemaVersion, Result: res})
}

// handleCachePut accepts one published artifact — the write side of the
// remote cache tier. The schema must match exactly; correctness rests on
// the key, so the body's job metadata is stored as-is for inspection.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if err := grid.ValidateKey(key); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_key", err.Error())
		return
	}
	if s.cfg.Cache == nil {
		writeError(w, http.StatusNotFound, "no_cache", "this server has no cache configured")
		return
	}
	a, ok := decode[grid.Artifact](w, r, s.cfg.MaxBodyBytes)
	if !ok {
		return
	}
	if a.Schema != grid.SchemaVersion || a.Result == nil {
		writeError(w, http.StatusBadRequest, "stale_schema",
			fmt.Sprintf("artifact schema %d (want %d) or missing result", a.Schema, grid.SchemaVersion))
		return
	}
	job := grid.Job{Workload: a.Workload, Select: a.Select, Config: a.Config}
	s.cfg.Cache.Store(r.Context(), key, job, a.Result)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.log.Error("metrics_write", "err", err.Error())
	}
}

func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[PartitionRequest](w, r, s.cfg.MaxBodyBytes)
	if !ok {
		return
	}
	opts, err := req.Select.core()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	name, err := resolveWorkload(req.Workload, req.Generator)
	if err != nil {
		writeError(w, http.StatusBadRequest, "unknown_workload", err.Error())
		return
	}
	resp, err := partitionResult(r.Context(), s.eng, name, opts)
	if err != nil {
		s.writeEngineError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// partitionResult is the transport-free core of /v1/partition, shared with
// the async job executor so both paths produce identical bodies.
func partitionResult(ctx context.Context, eng *grid.Engine, name string, opts core.Options) (PartitionResponse, error) {
	part, err := eng.PartitionCtx(ctx, name, opts)
	if err != nil {
		return PartitionResponse{}, err
	}
	findings := verify.Partition(part)
	findings.Sort()
	resp := PartitionResponse{
		Workload:  name,
		Heuristic: part.Heuristic.String(),
		Policy:    part.Opts.Policy,
		Tasks:     len(part.Tasks),
		Errors:    findings.Errors(),
		Warnings:  findings.Warnings(),
		Findings:  findingBodies(findings),
	}
	targets := 0
	for _, t := range part.Tasks {
		resp.Blocks += len(t.Blocks)
		targets += len(t.Targets)
	}
	if n := len(part.Tasks); n > 0 {
		resp.AvgBlocks = float64(resp.Blocks) / float64(n)
		resp.AvgTargets = float64(targets) / float64(n)
	}
	return resp, nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[SimulateRequest](w, r, s.cfg.MaxBodyBytes)
	if !ok {
		return
	}
	opts, err := req.Select.core()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	cfg, err := req.Machine.config()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	name, err := resolveWorkload(req.Workload, req.Generator)
	if err != nil {
		writeError(w, http.StatusBadRequest, "unknown_workload", err.Error())
		return
	}
	resp, err := simulateResult(r.Context(), s.eng, grid.Job{Workload: name, Select: opts, Config: cfg})
	if err != nil {
		s.writeEngineError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// simulateResult is the transport-free core of /v1/simulate.
func simulateResult(ctx context.Context, eng *grid.Engine, job grid.Job) (SimulateResponse, error) {
	res, err := eng.RunCtx(ctx, job)
	if err != nil {
		return SimulateResponse{}, err
	}
	return SimulateResponse{
		Workload: job.Workload,
		Key:      grid.Key(job),
		Result:   res,
	}, nil
}

// handleGenerate materializes a property-based program: the response's
// canonical name feeds straight back into /v1/partition, /v1/simulate, or a
// CLI -workload flag, and the listing lets a client inspect (or archive)
// exactly what that name denotes.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[GenerateRequest](w, r, s.cfg.MaxBodyBytes)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, generateResult(req.Generator.params()))
}

// generateResult is the transport-free core of /v1/generate.
func generateResult(p gen.Params) GenerateResponse {
	prog := gen.Generate(p)
	resp := GenerateResponse{Name: p.Key(), Program: ir.Format(prog)}
	for _, fn := range prog.Fns {
		resp.Funcs++
		resp.Blocks += len(fn.Blocks)
		for _, b := range fn.Blocks {
			resp.Instrs += len(b.Instrs)
		}
	}
	return resp
}

// sseWriter emits Server-Sent Events with JSON payloads, flushing after
// each so clients observe progress live.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (s *sseWriter) event(name string, v any) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, blob); err != nil {
		return err
	}
	s.f.Flush()
	return nil
}

// progressSince reports engine activity as deltas against the counters at
// request start — with a shared engine, absolute counters mix every
// client's work together.
func progressSince(base, now grid.Stats, start time.Time) Progress {
	d := now.Delta(base)
	return Progress{
		JobsDone:  d.Done,
		Sims:      d.Sims,
		CacheHits: d.CacheHits,
		Deduped:   d.Deduped,
		ElapsedMS: time.Since(start).Milliseconds(),
	}
}

// runExperiment is the transport-free core of /v1/experiment: one named
// figure/table/corpus sweep through the engine. Shared by the SSE handler
// and the async job executor.
func runExperiment(ctx context.Context, eng *grid.Engine, req ExperimentRequest) (ExperimentResult, error) {
	runner := experiment.NewRunnerOn(eng).WithContext(ctx)
	out := ExperimentResult{Name: req.Name}
	var err error
	switch req.Name {
	case "fig5":
		out.Cells, err = experiment.Figure5(runner, req.PUs, req.Workloads)
	case "table1":
		out.Rows, err = experiment.Table1(runner, req.Workloads)
	case "summary":
		var cells []experiment.Fig5Cell
		cells, err = experiment.Figure5(runner, req.PUs, req.Workloads)
		if err == nil {
			out.Summaries = experiment.Summarize(cells)
		}
	case "corpus":
		n := req.N
		if n == 0 {
			n = 20
		}
		out.Corpus, err = runner.Corpus(experiment.CorpusSpec{
			Seed: req.Seed, N: n, Policies: req.Policies,
		})
	}
	return out, err
}

// handleExperiment streams a named experiment over SSE: `progress` events at
// the configured cadence (one immediately, so even instant runs stream at
// least one), then a terminal `result` event — or `error` on failure.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[ExperimentRequest](w, r, s.cfg.MaxBodyBytes)
	if !ok {
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error())
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "internal", "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	sse := &sseWriter{w: w, f: flusher}

	ctx := r.Context()
	base := s.eng.Stats()
	start := time.Now()

	type outcome struct {
		result ExperimentResult
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := runExperiment(ctx, s.eng, req)
		done <- outcome{result: res, err: err}
	}()

	sse.event("progress", progressSince(base, s.eng.Stats(), start))
	tick := time.NewTicker(s.cfg.ProgressInterval)
	defer tick.Stop()
	for {
		select {
		case o := <-done:
			if o.err != nil {
				code, status := "internal", "experiment failed"
				if errors.Is(o.err, context.DeadlineExceeded) {
					code, status = "deadline_exceeded", "request deadline exceeded"
				}
				s.log.Error("experiment_error", "name", req.Name, "err", o.err.Error())
				sse.event("error", ErrorBody{Error: ErrorDetail{Code: code, Message: status + ": " + o.err.Error()}})
				return
			}
			o.result.Progress = progressSince(base, s.eng.Stats(), start)
			sse.event("result", o.result)
			return
		case <-tick.C:
			if err := sse.event("progress", progressSince(base, s.eng.Stats(), start)); err != nil {
				// Client gone: the runner's ctx cancels with the request,
				// and the experiment goroutine drains into the buffered
				// channel. Nothing more to write.
				return
			}
		case <-ctx.Done():
			o := <-done // the runner unwinds promptly once ctx ends
			if o.err == nil {
				o.result.Progress = progressSince(base, s.eng.Stats(), start)
				sse.event("result", o.result)
				return
			}
			sse.event("error", ErrorBody{Error: ErrorDetail{
				Code:    "deadline_exceeded",
				Message: "request deadline exceeded: " + o.err.Error(),
			}})
			return
		}
	}
}
