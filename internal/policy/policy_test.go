package policy

import (
	"reflect"
	"sort"
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/verify"
	"multiscalar/internal/workloads"
)

func TestNamesMatchRegistry(t *testing.T) {
	want := append([]string(nil), Names()...)
	sort.Strings(want)
	if got := core.PolicyNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("registry = %v, package registers %v", got, want)
	}
}

func TestGreedyPicksDensestThatFits(t *testing.T) {
	g := &greedy{cfg: core.PolicyConfig{SizeBudget: 48, CommBudget: 8}}
	task := core.PolicyTask{Instrs: 40, Regs: 6}
	frontier := []core.PolicyCandidate{
		{Blk: 1, Instrs: 20, NewRegs: 1, Freq: 1000}, // over size budget
		{Blk: 2, Instrs: 4, NewRegs: 1, Freq: 100},   // density (100+1)/(4+4+1)
		{Blk: 3, Instrs: 8, NewRegs: 0, Freq: 400},   // density (400+1)/(8+0+1): best
		{Blk: 4, Instrs: 2, NewRegs: 4, Freq: 500},   // over comm budget
	}
	if got := g.Pick(task, frontier); got != 2 {
		t.Fatalf("Pick = %d, want 2 (densest fitting candidate)", got)
	}
	full := core.PolicyTask{Instrs: 48, Regs: 8}
	if got := g.Pick(full, frontier); got != -1 {
		t.Fatalf("Pick with exhausted budgets = %d, want -1", got)
	}
}

func TestRoundRobinCursorPersists(t *testing.T) {
	r := &roundRobin{cfg: core.PolicyConfig{SizeBudget: 100, CommBudget: 100}}
	frontier := []core.PolicyCandidate{
		{Blk: 1, Instrs: 1}, {Blk: 2, Instrs: 1}, {Blk: 3, Instrs: 1},
	}
	var picks []int
	for i := 0; i < 4; i++ {
		picks = append(picks, r.Pick(core.PolicyTask{}, frontier))
	}
	if want := []int{0, 1, 2, 0}; !reflect.DeepEqual(picks, want) {
		t.Fatalf("rotation = %v, want %v", picks, want)
	}
	// A non-fitting candidate under the cursor is skipped, not returned.
	r2 := &roundRobin{cfg: core.PolicyConfig{SizeBudget: 4, CommBudget: 100}}
	mixed := []core.PolicyCandidate{
		{Blk: 1, Instrs: 10}, {Blk: 2, Instrs: 2},
	}
	if got := r2.Pick(core.PolicyTask{}, mixed); got != 1 {
		t.Fatalf("Pick over non-fitting head = %d, want 1", got)
	}
	if got := r2.Pick(core.PolicyTask{Instrs: 3}, mixed); got != -1 {
		t.Fatalf("Pick with nothing fitting = %d, want -1", got)
	}
}

func TestKnapsackMultipliersFollowSubgradient(t *testing.T) {
	k := newKnapsack(core.PolicyConfig{SizeBudget: 48, CommBudget: 8})
	size0, comm0 := k.lamSize, k.lamComm
	// A task at exactly half the size budget and the full comm budget:
	// the size price must drop, the comm price must hold.
	k.TaskDone(core.PolicyTask{Instrs: 24, Regs: 8})
	if k.lamSize >= size0 {
		t.Fatalf("lamSize %v did not drop from %v after size slack", k.lamSize, size0)
	}
	if k.lamComm != comm0 {
		t.Fatalf("lamComm %v moved from %v on exact utilization", k.lamComm, comm0)
	}
	// Repeated zero-size tasks drive the price to its floor, never below.
	for i := 0; i < 100; i++ {
		k.TaskDone(core.PolicyTask{Instrs: 0, Regs: 8})
	}
	if k.lamSize != 0 {
		t.Fatalf("lamSize = %v, want clamped to 0", k.lamSize)
	}
	// Overshooting raises the price again.
	k.TaskDone(core.PolicyTask{Instrs: 96, Regs: 8})
	if k.lamSize <= 0 {
		t.Fatalf("lamSize = %v after overshoot, want > 0", k.lamSize)
	}
}

func TestKnapsackAdmitsOnlyPositiveReducedValue(t *testing.T) {
	k := newKnapsack(core.PolicyConfig{SizeBudget: 48, CommBudget: 8})
	k.lamSize, k.lamComm = 10, 10
	frontier := []core.PolicyCandidate{
		{Blk: 1, Instrs: 5, NewRegs: 1, Freq: 10}, // reduced value 11-50-10 < 0
	}
	if got := k.Pick(core.PolicyTask{}, frontier); got != -1 {
		t.Fatalf("Pick = %d, want -1 (no positive reduced value)", got)
	}
	k.lamSize, k.lamComm = 0.1, 0.1
	if got := k.Pick(core.PolicyTask{}, frontier); got != 0 {
		t.Fatalf("Pick = %d, want 0 once prices fall", got)
	}
}

// TestPoliciesVerifyOnBenchmarks is the package's own contract check: every
// registered policy must produce a PT-clean partition on real benchmark
// programs, not just the generated corpus (internal/gen covers that side).
func TestPoliciesVerifyOnBenchmarks(t *testing.T) {
	for _, wl := range []string{"compress", "go", "tomcatv"} {
		w, err := workloads.ByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		prog := w.Build()
		for _, name := range Names() {
			part, err := core.Select(prog, core.Options{
				Heuristic: core.ControlFlow, Policy: name, MaxTargets: 4,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", wl, name, err)
			}
			if fs := verify.Partition(part); fs.Errors() > 0 {
				t.Errorf("%s/%s: %d contract errors:\n%s", wl, name, fs.Errors(), fs)
			}
		}
	}
}
