// Package policy implements the selection-policy zoo: resource-budgeted
// task-growth strategies that plug into core.Select beside the paper's
// heuristics. Where the paper's control-flow heuristic maximizes task size
// subject only to the hardware target limit, these policies treat selection
// as allocation under explicit budgets — static instructions per task (the
// "task size" resource) and distinct defined registers per task (the
// register-communication resource the forwarding ring pays for) — in the
// style of budgeted task selection from the edge-scheduling literature
// (greedy, round-robin, and Lagrangian multi-knapsack selectors).
//
// Importing the package (blank import suffices) registers all three with
// core.RegisterPolicy:
//
//	greedy      admit the densest candidate while both budgets hold
//	roundrobin  rotate over the frontier, spending budgets in rotation
//	knapsack    Lagrangian multi-knapsack: admit positive reduced-value
//	            candidates, adjust multipliers between tasks
//
// Every policy is deterministic and allocation-free in steady state; each
// core.Select call gets a fresh instance, so per-run state (rotation
// cursors, multipliers) needs no locking.
package policy

import (
	"multiscalar/internal/core"
)

func init() {
	core.RegisterPolicy("greedy", func(cfg core.PolicyConfig) core.Policy { return &greedy{cfg: cfg} })
	core.RegisterPolicy("roundrobin", func(cfg core.PolicyConfig) core.Policy { return &roundRobin{cfg: cfg} })
	core.RegisterPolicy("knapsack", func(cfg core.PolicyConfig) core.Policy { return newKnapsack(cfg) })
}

// Names returns the policy names this package registers, in scoreboard
// order (the order they appear in msreport -corpus output).
func Names() []string { return []string{"greedy", "roundrobin", "knapsack"} }

// fits reports whether admitting c keeps task t inside both budgets.
func fits(cfg core.PolicyConfig, t core.PolicyTask, c core.PolicyCandidate) bool {
	return t.Instrs+c.Instrs <= cfg.SizeBudget && t.Regs+c.NewRegs <= cfg.CommBudget
}

// greedy is the budget-greedy selector: among the candidates that fit both
// remaining budgets it admits the one with the highest benefit density —
// profiled execution frequency per unit of combined cost — and closes the
// task as soon as nothing fits. Hot reconverging paths get absorbed first;
// cold side chains are left to seed their own tasks.
type greedy struct {
	cfg core.PolicyConfig
}

func (g *greedy) Name() string { return "greedy" }

func (g *greedy) Pick(t core.PolicyTask, frontier []core.PolicyCandidate) int {
	best, bestScore := -1, -1.0
	for i, c := range frontier {
		if !fits(g.cfg, t, c) {
			continue
		}
		// Benefit density: +1 smooths never-profiled blocks, the register
		// term weights communication cost against plain size.
		score := float64(c.Freq+1) / float64(c.Instrs+4*c.NewRegs+1)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

func (g *greedy) TaskDone(core.PolicyTask) {}

// roundRobin spreads growth across the frontier with a rotation cursor that
// persists across tasks (the classic fair selector: each task's first choice
// continues where the previous task's last choice left off). At each step
// the first fitting candidate at or after the cursor is admitted. The
// resulting partitions are deliberately shape-diverse: tasks stop early not
// because nothing fits but because rotation reached a candidate that does
// not, which makes this the stress baseline for the verify contract.
type roundRobin struct {
	cfg  core.PolicyConfig
	next int
}

func (r *roundRobin) Name() string { return "roundrobin" }

func (r *roundRobin) Pick(t core.PolicyTask, frontier []core.PolicyCandidate) int {
	n := len(frontier)
	for off := 0; off < n; off++ {
		i := (r.next + off) % n
		if fits(r.cfg, t, frontier[i]) {
			r.next = i + 1
			return i
		}
	}
	return -1
}

func (r *roundRobin) TaskDone(core.PolicyTask) {}

// knapsack is the Lagrangian multi-knapsack selector: both budgets are
// priced with multipliers, a candidate is admitted while its reduced value
//
//	value(c) − λsize·instrs(c) − λcomm·newRegs(c)
//
// stays positive (value is the profiled frequency), and after each task the
// multipliers follow the subgradient of the dualized constraints — a budget
// the task overshot gets more expensive, an underused one cheaper. Hard
// budget checks remain in force (the relaxation prices, the budgets bind),
// so the multipliers steer which resource the selector economizes rather
// than how much it may spend.
type knapsack struct {
	cfg     core.PolicyConfig
	lamSize float64
	lamComm float64
}

func newKnapsack(cfg core.PolicyConfig) *knapsack {
	// Initial prices: one unit of value per budget-fraction consumed.
	return &knapsack{
		cfg:     cfg,
		lamSize: 1.0 / float64(cfg.SizeBudget),
		lamComm: 1.0 / float64(cfg.CommBudget),
	}
}

func (k *knapsack) Name() string { return "knapsack" }

func (k *knapsack) Pick(t core.PolicyTask, frontier []core.PolicyCandidate) int {
	best, bestVal := -1, 0.0
	for i, c := range frontier {
		if !fits(k.cfg, t, c) {
			continue
		}
		reduced := float64(c.Freq+1) - k.lamSize*float64(c.Instrs) - k.lamComm*float64(c.NewRegs)
		if reduced > bestVal {
			best, bestVal = i, reduced
		}
	}
	return best
}

// TaskDone applies the subgradient step: multipliers move proportionally to
// the task's budget utilization error and never go negative.
func (k *knapsack) TaskDone(t core.PolicyTask) {
	const step = 0.05
	k.lamSize = max0(k.lamSize + step*(float64(t.Instrs)-float64(k.cfg.SizeBudget))/float64(k.cfg.SizeBudget))
	k.lamComm = max0(k.lamComm + step*(float64(t.Regs)-float64(k.cfg.CommBudget))/float64(k.cfg.CommBudget))
}

func max0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
