package gen_test

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/emu"
	"multiscalar/internal/gen"
	"multiscalar/internal/ir"
	_ "multiscalar/internal/policy" // register the policy zoo
	"multiscalar/internal/verify"
)

// emuLimit is far above the generator's worst case (8 functions × 60k dyn
// instrs); hitting it means a generated program failed to terminate.
const emuLimit = 4_000_000

// sweepPoints covers the parameter cube corners plus a corpus slice.
func sweepPoints() []gen.Params {
	pts := []gen.Params{
		{Seed: 7},                // all fields at minimum after clamping
		{Seed: 7, Funcs: 99, Blocks: 999, Branchiness: 999, LoopDepth: 99, CallDensity: 999, RegDensity: 999, MemWords: 99999},
		{Seed: 3, Funcs: 1, Blocks: 96, Branchiness: 100, LoopDepth: 0, CallDensity: 100, RegDensity: 0, MemWords: 8},
		{Seed: 4, Funcs: 8, Blocks: 4, Branchiness: 0, LoopDepth: 4, CallDensity: 100, RegDensity: 100, MemWords: 4096},
	}
	for i := 0; i < 24; i++ {
		pts = append(pts, gen.CorpusParams(11, i))
	}
	return pts
}

// TestGenerateValidAndTerminating is the generator's core property: every
// point of the parameter cube yields a program that validates and halts
// within the documented dynamic budget (rejection-free by construction).
func TestGenerateValidAndTerminating(t *testing.T) {
	for _, p := range sweepPoints() {
		prog := gen.Generate(p)
		if err := ir.Validate(prog); err != nil {
			t.Fatalf("%s: invalid program: %v", p.Key(), err)
		}
		if fs := verify.Program(prog); fs.Errors() > 0 {
			t.Fatalf("%s: program findings:\n%v", p.Key(), fs)
		}
		if err := emu.New(prog).Run(emuLimit); err != nil {
			t.Fatalf("%s: did not halt: %v", p.Key(), err)
		}
	}
}

// TestGenerateDeterministic pins the seed→program stability guarantee:
// equal (clamped) params generate byte-identical programs; different seeds
// diverge.
func TestGenerateDeterministic(t *testing.T) {
	p := gen.Default()
	a, b := ir.Format(gen.Generate(p)), ir.Format(gen.Generate(p))
	if a != b {
		t.Fatal("same params generated different programs")
	}
	p2 := p
	p2.Seed++
	if ir.Format(gen.Generate(p2)) == a {
		t.Fatal("different seeds generated identical programs")
	}
	// Clamping is part of the contract: an out-of-range point and its
	// clamped form are the same program under the same name.
	wild := gen.Params{Seed: 5, Funcs: -3, Blocks: 1000, Branchiness: 150, LoopDepth: -1, CallDensity: 101, RegDensity: -5, MemWords: 100}
	if wild.Key() != wild.Clamp().Key() {
		t.Fatal("Key not clamp-invariant")
	}
	if ir.Format(gen.Generate(wild)) != ir.Format(gen.Generate(wild.Clamp())) {
		t.Fatal("Generate not clamp-invariant")
	}
}

// corpusGolden is the sha256 over the formatted text of the 100-program
// corpus rooted at seed 1. It pins the seed→program mapping: any change to
// the generator's emission logic moves this hash and must be accompanied by
// a SchemaVersion bump (which renames every generated workload).
const corpusGolden = "0327d0349fe70a4bdc85f54b6125bf00e3cf0dd2d68ad6f11909a131333ea5c9"

func TestCorpusGolden(t *testing.T) {
	h := sha256.New()
	for i := 0; i < 100; i++ {
		p := gen.CorpusParams(1, i)
		h.Write([]byte(p.Key()))
		h.Write([]byte{0})
		h.Write([]byte(ir.Format(gen.Generate(p))))
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != corpusGolden {
		t.Fatalf("corpus hash = %s, want %s\n"+
			"The seed→program mapping changed. If intentional, bump gen.SchemaVersion and update corpusGolden.", got, corpusGolden)
	}
}

// TestNameRoundTrip checks the canonical-name grammar both ways.
func TestNameRoundTrip(t *testing.T) {
	for _, p := range sweepPoints() {
		name := p.Key()
		got, err := gen.ParseName(name)
		if err != nil {
			t.Fatalf("ParseName(%q): %v", name, err)
		}
		if got != p.Clamp() {
			t.Fatalf("ParseName(%q) = %+v, want %+v", name, got, p.Clamp())
		}
		if got.Key() != name {
			t.Fatalf("re-encode of %q = %q", name, got.Key())
		}
	}
	bad := []string{
		"",
		"compress",
		"gen:",
		"gen:v1",
		"gen:v0:s1:f3:b24:br40:ld2:cd20:rd50:mw64",  // wrong version
		"gen:v1:s1:f3:b24:br40:ld2:cd20:rd50:mw63",  // mw not a power of two → non-canonical
		"gen:v1:s1:f99:b24:br40:ld2:cd20:rd50:mw64", // out of range → non-canonical
		"gen:v1:s1:f3:b24:br40:ld2:cd20:rd50:mw64:x",
		"gen:v1:sX:f3:b24:br40:ld2:cd20:rd50:mw64",
		"gen:v1:f3:s1:b24:br40:ld2:cd20:rd50:mw64", // fields out of order
	}
	for _, name := range bad {
		if _, err := gen.ParseName(name); err == nil {
			t.Errorf("ParseName(%q) accepted a non-canonical name", name)
		}
	}
	if !gen.IsName("gen:v1:whatever") || gen.IsName("compress") {
		t.Error("IsName misclassifies")
	}
}

// TestSelectVerifyContract is the acceptance property: every generated
// program × every heuristic and policy partitions into a task selection
// that passes the full PT001–PT010 contract.
func TestSelectVerifyContract(t *testing.T) {
	arms := []core.Options{
		{Heuristic: core.BasicBlock},
		{Heuristic: core.ControlFlow},
		{Heuristic: core.DataDependence},
		{Heuristic: core.DataDependence, TaskSize: true},
		{Policy: "greedy"},
		{Policy: "roundrobin"},
		{Policy: "knapsack"},
	}
	for i := 0; i < 8; i++ {
		p := gen.CorpusParams(23, i)
		prog := gen.Generate(p)
		for _, opts := range arms {
			part, err := core.Select(prog, opts)
			if err != nil {
				t.Fatalf("%s / %+v: %v", p.Key(), opts, err)
			}
			if fs := verify.Partition(part); fs.Errors() > 0 {
				t.Fatalf("%s / %+v: contract violations:\n%v", p.Key(), opts, fs)
			}
		}
	}
}

// TestPolicyBudgetsRespected checks that policies actually enforce their
// budgets: under the greedy policy no task exceeds SizeBudget static
// instructions or CommBudget defined registers unless it is a single-block
// task (a block bigger than the budget still becomes its own task — coverage
// beats budgets).
func TestPolicyBudgetsRespected(t *testing.T) {
	p := gen.CorpusParams(31, 5)
	opts := core.Options{Policy: "greedy", SizeBudget: 20, CommBudget: 6}
	part, err := core.Select(gen.Generate(p), opts)
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, task := range part.Tasks {
		if len(task.Blocks) == 1 {
			continue
		}
		multi++
		if task.StaticInstrs > 20 {
			t.Errorf("task %d: %d static instrs exceeds SizeBudget 20", task.ID, task.StaticInstrs)
		}
	}
	if multi == 0 {
		t.Fatal("greedy policy built no multi-block tasks; budget test is vacuous")
	}
}

// TestUnknownPolicy surfaces the registry error through Select.
func TestUnknownPolicy(t *testing.T) {
	_, err := core.Select(gen.Generate(gen.Default()), core.Options{Policy: "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("err = %v, want unknown policy", err)
	}
}
