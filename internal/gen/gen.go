package gen

import (
	"fmt"
	"math/rand"

	"multiscalar/internal/ir"
)

// Register plan. Pool registers hold generated values; everything the
// generator needs for control to stay structured lives outside the pool so
// no random instruction can clobber it:
//
//	r8..r19   value pool (instruction destinations and most sources)
//	r24..r27  loop counters, one per active nesting level
//	r28       address/condition temporary
//	r23       scratch-array base (re-materialized after every call)
//
// Loop counters are written only by their own loop's init and increment, so
// every counted loop terminates. Around a call the live counters are saved
// to a per-function spill slot in the data segment and reloaded after the
// return; the call graph is acyclic (helpers call only earlier helpers), so
// at most one frame per function is ever active and slots never collide.
const (
	poolBase  = 8
	poolSize  = 12
	ctrBase   = 24
	regTmp    = ir.Reg(28)
	regBase   = ir.Reg(23)
	maxLevels = 4
)

// budgetPerFn caps the worst-case dynamic instruction count any single
// invocation of a generated function can execute (loop bodies are charged
// at their full trip-count multiplicity, calls at the callee's recorded
// cost). With at most 8 functions the whole program stays far below the
// profiler's 50M-instruction budget.
const budgetPerFn = 60_000

type generator struct {
	p    Params
	rng  *rand.Rand
	b    *ir.Builder
	mask int64

	helpers []ir.FnID
	cost    map[ir.FnID]int64 // worst-case dynamic instrs of one invocation
	label   int

	// Per-function state, reset by fn.
	spent      int64
	blocksLeft int
	recent     []ir.Reg
	level      int
	curSlot    int64
}

// Generate builds the program addressed by p (clamped). The mapping from
// (clamped) Params to program bytes is pure: the only entropy source is a
// rand.Source seeded with p.Seed, so equal Keys yield byte-identical
// programs on every platform and run. The output always passes ir.Validate
// (Build panics otherwise) and halts within Funcs×60k dynamic instructions.
func Generate(p Params) *ir.Program {
	p = p.Clamp()
	g := &generator{
		p:    p,
		rng:  rand.New(rand.NewSource(p.Seed)),
		b:    ir.NewBuilder(p.Key()),
		mask: int64(p.MemWords - 1),
		cost: make(map[ir.FnID]int64),
	}
	g.b.Zeros(p.MemWords)                   // scratch array, masked addressing keeps all traffic inside
	spill := g.b.Zeros(maxLevels * p.Funcs) // counter spill slots, one per function
	for i := 0; i < p.Funcs-1; i++ {
		g.fn(fmt.Sprintf("helper%d", i), false, int64(spill)+int64(i)*maxLevels*ir.WordBytes)
	}
	g.fn("main", true, int64(spill)+int64(p.Funcs-1)*maxLevels*ir.WordBytes)
	return g.b.Build()
}

func (g *generator) fresh(prefix string) string {
	g.label++
	return fmt.Sprintf("%s_%d", prefix, g.label)
}

func (g *generator) fn(name string, isMain bool, spillSlot int64) {
	g.spent = 0
	g.blocksLeft = g.p.Blocks
	g.recent = g.recent[:0]
	g.level = 0
	g.curSlot = spillSlot
	f := g.b.Func(name)
	bb := f.Block(g.fresh("entry"))
	bb.MovI(regBase, int64(ir.DataBase))
	for i := 0; i < 4; i++ {
		d := g.pool()
		bb.MovI(d, int64(g.rng.Intn(1<<12)))
		g.defined(d)
	}
	g.charge(5, 1)
	nseg := 2 + g.p.Blocks/5
	bb = g.segs(f, bb, nseg, g.p.LoopDepth, 2, 1)
	if isMain {
		// Publish a checksum of the pool so simulators have a final state to
		// compare, then halt.
		bb.Store(g.src(), regBase, 0)
		bb.Halt()
	} else {
		bb.Ret()
	}
	id := f.End()
	g.cost[id] = g.spent
	if !isMain {
		g.helpers = append(g.helpers, id)
	}
}

// afford reports whether n more instructions at the given loop multiplicity
// fit the function's dynamic budget; charge records them.
func (g *generator) afford(n, mult int64) bool { return g.spent+n*mult <= budgetPerFn }
func (g *generator) charge(n, mult int64)      { g.spent += n * mult }

// pool returns a uniform pool register; src biases toward recently defined
// registers with probability RegDensity, packing def-use chains tighter.
func (g *generator) pool() ir.Reg { return ir.R(poolBase + g.rng.Intn(poolSize)) }

func (g *generator) src() ir.Reg {
	if len(g.recent) > 0 && g.rng.Intn(100) < g.p.RegDensity {
		return g.recent[g.rng.Intn(len(g.recent))]
	}
	return g.pool()
}

func (g *generator) defined(d ir.Reg) {
	g.recent = append(g.recent, d)
	if len(g.recent) > 4 {
		g.recent = g.recent[1:]
	}
}

// segs appends n segments to the open block and returns the new open block.
// depth bounds loop nesting, nest bounds structural (if/segment) recursion,
// mult is the product of enclosing trip counts (for budget accounting).
func (g *generator) segs(f *ir.FuncBuilder, bb *ir.BlockBuilder, n, depth, nest int, mult int64) *ir.BlockBuilder {
	for i := 0; i < n; i++ {
		switch {
		case g.blocksLeft >= 3 && nest > 0 && g.afford(16, mult) && g.rng.Intn(100) < g.p.Branchiness:
			bb = g.ifElse(f, bb, depth, nest, mult)
		case g.blocksLeft >= 3 && depth > 0 && g.rng.Intn(100) < 35:
			bb = g.loop(f, bb, depth, nest, mult)
		case g.blocksLeft >= 1 && len(g.helpers) > 0 && g.rng.Intn(100) < g.p.CallDensity:
			bb = g.call(f, bb, mult)
		default:
			g.straightLine(bb, mult)
		}
	}
	return bb
}

// straightLine emits 2..5 random ALU/memory ops into the open block.
func (g *generator) straightLine(bb *ir.BlockBuilder, mult int64) {
	n := 2 + g.rng.Intn(4)
	emitted := int64(0)
	for i := 0; i < n; i++ {
		d := g.pool()
		switch g.rng.Intn(10) {
		case 0:
			bb.MovI(d, int64(g.rng.Intn(1<<12)))
		case 1:
			bb.Add(d, g.src(), g.src())
		case 2:
			bb.Sub(d, g.src(), g.src())
		case 3:
			bb.Mul(d, g.src(), g.src())
		case 4:
			bb.Xor(d, g.src(), g.src())
		case 5:
			bb.AddI(d, g.src(), int64(1+g.rng.Intn(64)))
		case 6:
			bb.SltI(d, g.src(), int64(g.rng.Intn(256)))
		case 7:
			bb.ShlI(d, g.src(), int64(g.rng.Intn(8)))
		case 8: // masked store into the scratch array
			bb.AndI(regTmp, g.src(), g.mask).
				ShlI(regTmp, regTmp, 3).
				Add(regTmp, regTmp, regBase).
				Store(g.src(), regTmp, 0)
			emitted += 3
		default: // masked load from the scratch array
			bb.AndI(regTmp, g.src(), g.mask).
				ShlI(regTmp, regTmp, 3).
				Add(regTmp, regTmp, regBase).
				Load(d, regTmp, 0)
			emitted += 3
		}
		emitted++
		g.defined(d)
	}
	g.charge(emitted, mult)
}

// ifElse closes the open block with a branch over two arms that reconverge;
// the then-arm may nest further segments.
func (g *generator) ifElse(f *ir.FuncBuilder, bb *ir.BlockBuilder, depth, nest int, mult int64) *ir.BlockBuilder {
	thenL, elseL, joinL := g.fresh("then"), g.fresh("else"), g.fresh("join")
	g.blocksLeft -= 3
	bb.Br(g.src(), thenL, elseL)
	tb := f.Block(thenL)
	g.straightLine(tb, mult)
	if nest > 0 && g.rng.Intn(2) == 0 {
		tb = g.segs(f, tb, 1, depth, nest-1, mult)
	}
	tb.Goto(joinL)
	eb := f.Block(elseL)
	g.straightLine(eb, mult)
	eb.Goto(joinL)
	g.charge(2, mult)
	return f.Block(joinL)
}

// loop closes the open block with a counted loop. The counter register is
// dedicated to the nesting level and never a pool register, so the body
// cannot perturb it and the loop always runs exactly `trips` iterations.
func (g *generator) loop(f *ir.FuncBuilder, bb *ir.BlockBuilder, depth, nest int, mult int64) *ir.BlockBuilder {
	trips := int64(2 + g.rng.Intn(5))
	if depth <= 0 || g.level >= maxLevels || !g.afford(trips*24+6, mult) {
		g.straightLine(bb, mult)
		return bb
	}
	rc := ir.R(ctrBase + g.level)
	headL, bodyL, exitL := g.fresh("head"), g.fresh("body"), g.fresh("exit")
	g.blocksLeft -= 3
	bb.MovI(rc, 0).Goto(headL)
	hb := f.Block(headL)
	hb.SltI(regTmp, rc, trips).Br(regTmp, bodyL, exitL)
	g.charge(2+2*(trips+1), mult)
	body := f.Block(bodyL)
	g.level++
	g.straightLine(body, mult*trips)
	if nest > 0 && g.rng.Intn(2) == 0 {
		body = g.segs(f, body, 1, depth-1, nest-1, mult*trips)
	}
	g.level--
	body.AddI(rc, rc, 1).Goto(headL)
	g.charge(2*trips, mult)
	return f.Block(exitL)
}

// call closes the open block with a call to an earlier helper whose recorded
// cost fits the remaining budget, spilling live loop counters around it.
func (g *generator) call(f *ir.FuncBuilder, bb *ir.BlockBuilder, mult int64) *ir.BlockBuilder {
	var fits []ir.FnID
	for _, h := range g.helpers {
		if g.afford(g.cost[h]+int64(8+2*g.level), mult) {
			fits = append(fits, h)
		}
	}
	if len(fits) == 0 {
		g.straightLine(bb, mult)
		return bb
	}
	callee := fits[g.rng.Intn(len(fits))]
	if g.level > 0 {
		bb.MovI(regTmp, g.curSlot)
		for l := 0; l < g.level; l++ {
			bb.Store(ir.R(ctrBase+l), regTmp, int64(l)*ir.WordBytes)
		}
	}
	bb.MovI(ir.RegArg0, int64(g.rng.Intn(256)))
	retL := g.fresh("ret")
	g.blocksLeft--
	bb.Call(callee, retL)
	nb := f.Block(retL)
	if g.level > 0 {
		nb.MovI(regTmp, g.curSlot)
		for l := 0; l < g.level; l++ {
			nb.Load(ir.R(ctrBase+l), regTmp, int64(l)*ir.WordBytes)
		}
	}
	// The callee owns the pool and base registers during its run; re-seed.
	nb.MovI(regBase, int64(ir.DataBase))
	g.charge(g.cost[callee]+int64(4+4*g.level), mult)
	return nb
}
