package gen

import "multiscalar/internal/ir"

// ShrinkParams minimizes a failing parameter point: given a predicate that
// reports whether the program generated from p still exhibits a failure, it
// greedily drives every size-like field toward its minimum (binary search
// per field) while the failure persists. The result is the smallest point in
// the lattice below p — start bug reports here, then ShrinkProgram the
// generated program for an instruction-level minimum.
//
// fails must be deterministic (generated programs are, so a pure property of
// the program always is). The original p is returned unchanged if it does
// not fail.
func ShrinkParams(p Params, fails func(Params) bool) Params {
	p = p.Clamp()
	if !fails(p) {
		return p
	}
	fields := []struct {
		get func(*Params) *int
		min int
	}{
		{func(q *Params) *int { return &q.Funcs }, 1},
		{func(q *Params) *int { return &q.Blocks }, 4},
		{func(q *Params) *int { return &q.LoopDepth }, 0},
		{func(q *Params) *int { return &q.CallDensity }, 0},
		{func(q *Params) *int { return &q.Branchiness }, 0},
		{func(q *Params) *int { return &q.RegDensity }, 0},
		{func(q *Params) *int { return &q.MemWords }, 8},
	}
	// Iterate to a fixed point: lowering one field can unlock another.
	for changed := true; changed; {
		changed = false
		for _, f := range fields {
			lo, hi := f.min, *f.get(&p) // fails at hi; probe toward lo
			for lo < hi {
				mid := lo + (hi-lo)/2
				q := p
				*f.get(&q) = mid
				q = q.Clamp()
				if fails(q) {
					p, hi = q, mid
					changed = true
				} else {
					lo = mid + 1
				}
			}
		}
	}
	return p
}

// ShrinkProgram minimizes a failing program at the instruction level: it
// repeatedly tries to delete one non-terminator instruction at a time
// (scanning back to front so indices stay stable), keeping a deletion only
// when the candidate still validates and still fails. The result is
// 1-minimal — removing any single remaining instruction either breaks
// validity or makes the failure disappear.
//
// The input program is never mutated. Terminators and block structure are
// preserved, so the shrunk program keeps the CFG shape that provoked the
// failure; use ShrinkParams first to shrink the shape itself.
func ShrinkProgram(prog *ir.Program, fails func(*ir.Program) bool) *ir.Program {
	cur := ir.Clone(prog)
	if ir.Validate(cur) != nil || !fails(cur) {
		return cur
	}
	for changed := true; changed; {
		changed = false
		for fi := len(cur.Fns) - 1; fi >= 0; fi-- {
			for bi := len(cur.Fns[fi].Blocks) - 1; bi >= 0; bi-- {
				for ii := len(cur.Fns[fi].Blocks[bi].Instrs) - 1; ii >= 0; ii-- {
					cand := ir.Clone(cur)
					blk := cand.Fns[fi].Blocks[bi]
					blk.Instrs = append(blk.Instrs[:ii:ii], blk.Instrs[ii+1:]...)
					if ir.Validate(cand) != nil {
						continue
					}
					cand.Layout()
					if fails(cand) {
						cur = cand
						changed = true
					}
				}
			}
		}
	}
	return cur
}
