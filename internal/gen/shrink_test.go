package gen_test

import (
	"testing"

	"multiscalar/internal/gen"
	"multiscalar/internal/ir"
)

// countOp tallies instructions with the given opcode.
func countOp(p *ir.Program, op ir.Opcode) int {
	n := 0
	for _, f := range p.Fns {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == op {
					n++
				}
			}
		}
	}
	return n
}

func TestShrinkParams(t *testing.T) {
	start := gen.Params{Seed: 9, Funcs: 8, Blocks: 96, Branchiness: 90, LoopDepth: 4, CallDensity: 80, RegDensity: 90, MemWords: 1024}
	// "Failure": the generated program has more than one function. The
	// minimum over the lattice is Funcs=2 with everything else floored.
	fails := func(p gen.Params) bool {
		return len(gen.Generate(p).Fns) > 1
	}
	small := gen.ShrinkParams(start, fails)
	if !fails(small) {
		t.Fatal("shrunk params no longer fail")
	}
	if small.Funcs != 2 {
		t.Errorf("Funcs = %d, want 2", small.Funcs)
	}
	if small.Blocks != 4 || small.LoopDepth != 0 || small.Branchiness != 0 || small.CallDensity != 0 || small.RegDensity != 0 || small.MemWords != 8 {
		t.Errorf("unrelated fields not floored: %+v", small)
	}
	// A predicate that never fails returns the input unchanged.
	same := gen.ShrinkParams(start, func(gen.Params) bool { return false })
	if same != start.Clamp() {
		t.Errorf("non-failing input changed: %+v", same)
	}
}

func TestShrinkProgram(t *testing.T) {
	prog := gen.Generate(gen.Params{Seed: 2, Funcs: 2, Blocks: 24, Branchiness: 50, LoopDepth: 2, CallDensity: 30, RegDensity: 50, MemWords: 64})
	fails := func(p *ir.Program) bool { return countOp(p, ir.OpMul) >= 1 }
	if !fails(prog) {
		t.Skip("seed produced no Mul; pick another seed")
	}
	before := prog.NumInstrs()
	small := gen.ShrinkProgram(prog, fails)
	if err := ir.Validate(small); err != nil {
		t.Fatalf("shrunk program invalid: %v", err)
	}
	if !fails(small) {
		t.Fatal("shrunk program no longer fails")
	}
	if got := small.NumInstrs(); got >= before {
		t.Errorf("no shrinkage: %d -> %d instrs", before, got)
	}
	// 1-minimality: it kept exactly one Mul, and removing it would pass.
	if n := countOp(small, ir.OpMul); n != 1 {
		t.Errorf("shrunk program has %d Mul instructions, want 1", n)
	}
	// The input must not be mutated.
	if prog.NumInstrs() != before {
		t.Error("ShrinkProgram mutated its input")
	}
}
