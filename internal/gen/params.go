// Package gen is the property-based workload generator: a seeded PRNG
// (always an explicit rand.Source, never the global generator) emits valid,
// terminating ir programs whose shape is swept by a small Params struct —
// branchiness, loop depth and nesting, call density, register-dependence
// density, and scratch-memory footprint. Programs are rejection-free by
// construction: every output passes ir.Validate, halts within a bounded
// dynamic instruction count, and partitions cleanly under every heuristic
// and policy (the PT001–PT010 contract in internal/verify).
//
// A Params value has a canonical string form (Key) of the shape
//
//	gen:v1:s42:f3:b24:br40:ld2:cd20:rd50:mw64
//
// which doubles as a workload name: internal/workloads resolves any
// "gen:"-prefixed name through ParseName, so generated programs flow through
// the grid engine, its disk cache, and the dist tier exactly like the 18
// hand-built benchmarks — and because the full parameter vector (seed
// included) is inside the name, grid cache keys cover it with no schema
// change. The embedded version is SchemaVersion: any change to the
// generator's emission logic that alters the seed→program mapping must bump
// it, which rewrites every canonical name and therefore every cache key.
package gen

import (
	"fmt"
	"strconv"
	"strings"
)

// SchemaVersion stamps every canonical generator name (the "v1" field).
// Bump it whenever Generate's seed→program mapping changes — a new opcode
// mix, different shape weights, a changed register plan — so stale cache
// entries keyed by old names can never be served for new programs. Param
// range changes that only affect Clamp do not require a bump.
const SchemaVersion = 1

// schemaFingerprint pins the recursive field shape of Params (msvet's
// cachekey analyzer recomputes it on every run). Params is the root of the
// generator's key schema the same way core.Options and sim.Config are roots
// of the grid's: adding, removing, renaming, or retyping a field changes the
// canonical name grammar, so msvet fails until the constant is updated and
// SchemaVersion is bumped when the encoding changed.
const schemaFingerprint = "b088c1cc6d05"

var _ = schemaFingerprint

// Params sweeps the generator. All fields are clamped into their documented
// ranges by Clamp (which Key and Generate apply), so any value is usable.
type Params struct {
	// Seed selects the program within the family the other fields define.
	Seed int64
	// Funcs is the total function count including main (1..8). Helpers call
	// only earlier helpers, so the call graph is acyclic.
	Funcs int
	// Blocks is the approximate basic-block budget per function (4..96).
	Blocks int
	// Branchiness is the percentage of segments emitted as if-else diamonds
	// (0..100).
	Branchiness int
	// LoopDepth is the maximum counted-loop nesting (0..4).
	LoopDepth int
	// CallDensity is the percentage of segments emitted as helper calls when
	// helpers exist (0..100).
	CallDensity int
	// RegDensity is the percentage chance an operand reuses a recently
	// defined register instead of a uniform pool register (0..100) — higher
	// values pack def-use chains tighter, exercising the data-dependence
	// heuristic and the register ring.
	RegDensity int
	// MemWords is the scratch-array size in 8-byte words, rounded up to a
	// power of two (8..4096); loads and stores mask their index to it.
	MemWords int
}

// Default returns the baseline parameter point: a medium-sized three-function
// program with moderate branching and one level of loop nesting.
func Default() Params {
	return Params{
		Seed:        1,
		Funcs:       3,
		Blocks:      24,
		Branchiness: 40,
		LoopDepth:   2,
		CallDensity: 20,
		RegDensity:  50,
		MemWords:    64,
	}
}

// Clamp returns a copy with every field forced into its documented range
// and MemWords rounded up to a power of two.
func (p Params) Clamp() Params {
	p.Funcs = clampInt(p.Funcs, 1, 8)
	p.Blocks = clampInt(p.Blocks, 4, 96)
	p.Branchiness = clampInt(p.Branchiness, 0, 100)
	p.LoopDepth = clampInt(p.LoopDepth, 0, 4)
	p.CallDensity = clampInt(p.CallDensity, 0, 100)
	p.RegDensity = clampInt(p.RegDensity, 0, 100)
	p.MemWords = ceilPow2(clampInt(p.MemWords, 8, 4096))
	return p
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func ceilPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// Prefix marks generated-workload names; workloads.ByName routes any name
// carrying it through ParseName.
const Prefix = "gen:"

// Key returns the canonical workload name of the (clamped) parameter point.
// The name embeds SchemaVersion and the full parameter vector, so it is a
// complete content address for the generated program: equal names generate
// byte-identical programs, and grid cache keys built over the name cover
// seed, params, and generator version.
func (p Params) Key() string {
	p = p.Clamp()
	return fmt.Sprintf("%sv%d:s%d:f%d:b%d:br%d:ld%d:cd%d:rd%d:mw%d",
		Prefix, SchemaVersion, p.Seed, p.Funcs, p.Blocks, p.Branchiness,
		p.LoopDepth, p.CallDensity, p.RegDensity, p.MemWords)
}

// IsName reports whether name addresses a generated workload.
func IsName(name string) bool { return strings.HasPrefix(name, Prefix) }

// ParseName parses a canonical generator name back into its Params. It is
// strict: the version must match SchemaVersion and the name must be exactly
// the canonical (clamped) form — re-encoding the parsed params must
// reproduce the input — so one program never hides behind two names and
// cache keys stay one-to-one with programs.
func ParseName(name string) (Params, error) {
	var p Params
	if !IsName(name) {
		return p, fmt.Errorf("gen: %q is not a generator name (want %q prefix)", name, Prefix)
	}
	fields := strings.Split(strings.TrimPrefix(name, Prefix), ":")
	if len(fields) != 9 {
		return p, fmt.Errorf("gen: %q has %d fields, want 9", name, len(fields))
	}
	if fields[0] != fmt.Sprintf("v%d", SchemaVersion) {
		return p, fmt.Errorf("gen: %q has generator version %q, this build speaks v%d", name, fields[0], SchemaVersion)
	}
	specs := []struct {
		prefix string
		dst    *int
	}{
		{"f", &p.Funcs}, {"b", &p.Blocks}, {"br", &p.Branchiness},
		{"ld", &p.LoopDepth}, {"cd", &p.CallDensity}, {"rd", &p.RegDensity},
		{"mw", &p.MemWords},
	}
	seed, err := parseField(fields[1], "s")
	if err != nil {
		return p, fmt.Errorf("gen: %q: %w", name, err)
	}
	p.Seed = seed
	for i, spec := range specs {
		v, err := parseField(fields[i+2], spec.prefix)
		if err != nil {
			return p, fmt.Errorf("gen: %q: %w", name, err)
		}
		*spec.dst = int(v)
	}
	if canon := p.Key(); canon != name {
		return Params{}, fmt.Errorf("gen: %q is not canonical (want %q)", name, canon)
	}
	return p, nil
}

func parseField(field, prefix string) (int64, error) {
	rest, ok := strings.CutPrefix(field, prefix)
	if !ok {
		return 0, fmt.Errorf("field %q does not start with %q", field, prefix)
	}
	v, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("field %q: %v", field, err)
	}
	return v, nil
}

// CorpusParams derives the i-th parameter point of the corpus rooted at
// seed. The derivation is pure integer arithmetic (no PRNG), so a corpus is
// identified by (seed, size) alone and any index can be regenerated in
// isolation. The sweep covers the full parameter cube: function count,
// block budget, branchiness, loop depth, call density, register density,
// and memory footprint all vary with coprime strides.
func CorpusParams(seed int64, i int) Params {
	p := Default()
	p.Seed = seed*1_000_003 + int64(i)
	p.Funcs = 1 + i%5
	p.Blocks = 8 + (i*7)%57
	p.Branchiness = (i * 13) % 101
	p.LoopDepth = i % 4
	p.CallDensity = (i * 29) % 71
	p.RegDensity = (i * 17) % 101
	p.MemWords = 16 << (i % 4)
	return p.Clamp()
}
