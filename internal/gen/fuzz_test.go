package gen_test

import (
	"testing"

	"multiscalar/internal/emu"
	"multiscalar/internal/gen"
	"multiscalar/internal/ir"
	"multiscalar/internal/verify"
)

// FuzzGen drives the raw parameter cube (Clamp absorbs any values the
// fuzzer invents) through the generator's validity and termination
// properties. The checked-in corpus under testdata/fuzz/FuzzGen pins the
// cube corners and a corpus slice; `go test -fuzz=FuzzGen ./internal/gen`
// explores from there.
func FuzzGen(f *testing.F) {
	f.Add(int64(1), 3, 24, 40, 2, 20, 50, 64)
	f.Add(int64(-9), 0, 0, 0, 0, 0, 0, 0)
	f.Add(int64(7), 99, 999, 999, 99, 999, 999, 99999)
	for i := 0; i < 8; i++ {
		p := gen.CorpusParams(1, i)
		f.Add(p.Seed, p.Funcs, p.Blocks, p.Branchiness, p.LoopDepth, p.CallDensity, p.RegDensity, p.MemWords)
	}
	f.Fuzz(func(t *testing.T, seed int64, funcs, blocks, br, ld, cd, rd, mw int) {
		p := gen.Params{Seed: seed, Funcs: funcs, Blocks: blocks, Branchiness: br,
			LoopDepth: ld, CallDensity: cd, RegDensity: rd, MemWords: mw}
		prog := gen.Generate(p)
		if err := ir.Validate(prog); err != nil {
			t.Fatalf("%s: invalid: %v", p.Key(), err)
		}
		if fs := verify.Program(prog); fs.Errors() > 0 {
			t.Fatalf("%s: findings:\n%v", p.Key(), fs)
		}
		if err := emu.New(prog).Run(emuLimit); err != nil {
			t.Fatalf("%s: did not halt: %v", p.Key(), err)
		}
		if got, err := gen.ParseName(p.Key()); err != nil || got != p.Clamp() {
			t.Fatalf("%s: name round-trip: %+v, %v", p.Key(), got, err)
		}
	})
}
