package grid

import (
	"encoding/json"
	"os"
	"path/filepath"

	"multiscalar/internal/sim"
)

// diskCache is a content-addressed store of simulation results: one JSON
// artifact per key under dir. The cache is strictly best-effort — any read,
// decode, or version mismatch is treated as a miss and the entry is
// recomputed and overwritten; store failures are ignored (the result is
// still returned to the caller).
type diskCache struct {
	dir string
}

// artifact is the on-disk format. Workload and Config are stored alongside
// the result for human inspection; correctness rests on the key alone.
type artifact struct {
	Schema   int
	Workload string
	Config   sim.Config
	Result   *sim.Result
}

func (c *diskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

func (c *diskCache) load(key string) (*sim.Result, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil || a.Schema != SchemaVersion || a.Result == nil {
		return nil, false
	}
	return a.Result, true
}

func (c *diskCache) store(key string, job Job, res *sim.Result) {
	if res.Timeline != nil {
		// Artifacts are shared by consumers that never asked for per-task
		// records; persisting a timeline would bloat every warm read.
		// (Engine.Run already bypasses the cache for timeline jobs; this
		// guards direct callers.)
		cp := *res
		cp.Timeline = nil
		res = &cp
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	blob, err := json.Marshal(artifact{
		Schema:   SchemaVersion,
		Workload: job.Workload,
		Config:   job.Config,
		Result:   res,
	})
	if err != nil {
		return
	}
	// Write-then-rename keeps concurrent readers (and a crashed writer)
	// from ever observing a torn artifact.
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
	}
}
