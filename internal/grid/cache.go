package grid

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"

	"multiscalar/internal/core"
	"multiscalar/internal/sim"
)

// Cache is the engine's result store: a content-addressed map from job key
// to simulation result. Implementations are strictly best-effort — Load
// answers (nil, false) for anything it cannot produce a valid result for
// (absent, corrupt, stale schema, backend unreachable) and Store failures
// are silent (the result is still returned to the caller) — so a broken
// cache degrades to recomputation, never to a wrong answer or an error.
//
// The ctx carries the requesting job's deadline; implementations that talk
// to a network (internal/dist's remote tier) honor it, local tiers ignore
// it. The job passed to Load is advisory — it names the work the key was
// derived from, so a tiered cache can promote a lower-tier hit upward with
// full artifact metadata; callers that only have the key (the serve cache
// endpoints) pass the zero Job and promoted artifacts simply carry no
// inspection fields. Implementations must be safe for concurrent use.
type Cache interface {
	Load(ctx context.Context, key string, job Job) (*sim.Result, bool)
	Store(ctx context.Context, key string, job Job, res *sim.Result)
}

// Artifact is the persisted and wire form of one cached result, shared by
// the disk store, the remote cache protocol (GET/PUT /v1/cache/{key}), and
// the dist worker report. Workload, Select, and Config are stored alongside
// the result for human inspection and so a receiver can reconstruct the
// Job; correctness rests on the key alone.
type Artifact struct {
	Schema   int
	Workload string
	Select   core.Options
	Config   sim.Config
	Result   *sim.Result
}

// StripTimeline returns res without its per-task timeline records, copying
// only when needed. Cache tiers call it before storing: artifacts are
// shared by consumers that never asked for per-task records, and persisting
// a timeline would bloat every warm read. (Engine.Run already bypasses all
// caches for timeline jobs; this guards direct callers.)
func StripTimeline(res *sim.Result) *sim.Result {
	if res == nil || res.Timeline == nil {
		return res
	}
	cp := *res
	cp.Timeline = nil
	return &cp
}

// DiskCache is the content-addressed on-disk Cache: one JSON artifact per
// key under dir. Any read, decode, or version mismatch is a miss and the
// entry is recomputed and overwritten.
type DiskCache struct {
	dir string
}

// NewDiskCache returns a disk cache rooted at dir. The directory is created
// on first store.
func NewDiskCache(dir string) *DiskCache { return &DiskCache{dir: dir} }

// Dir reports the cache root.
func (c *DiskCache) Dir() string { return c.dir }

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Load implements Cache. The ctx and job are ignored: local disk reads are
// fast enough that honoring a deadline would cost more than it saves, and
// the disk tier never promotes.
func (c *DiskCache) Load(_ context.Context, key string, _ Job) (*sim.Result, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil || a.Schema != SchemaVersion || a.Result == nil {
		return nil, false
	}
	return a.Result, true
}

// Store implements Cache: best-effort write-then-rename, so concurrent
// readers (and a crashed writer) never observe a torn artifact.
func (c *DiskCache) Store(_ context.Context, key string, job Job, res *sim.Result) {
	res = StripTimeline(res)
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	blob, err := json.Marshal(Artifact{
		Schema:   SchemaVersion,
		Workload: job.Workload,
		Select:   job.Select,
		Config:   job.Config,
		Result:   res,
	})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
	}
}
