package grid

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"multiscalar/internal/core"
)

// SchemaVersion stamps every cache key and on-disk artifact. Bump it
// whenever core.Options, sim.Config, sim.Result, or the simulation's
// semantics change: old artifacts stop matching and are transparently
// recomputed rather than served stale.
//
// v2: artifacts no longer carry Result.Timeline (timeline-recording jobs
// bypass the cache entirely and stores strip the field), so v1 artifacts —
// which could embed per-task records — are invalidated.
//
// v3: core.Options gained Policy/SizeBudget/CommBudget (the selection-policy
// zoo), changing the JSON encoding every key hashes; v2 keys for the same
// logical job no longer match and must be recomputed.
const SchemaVersion = 3

// schemaFingerprint pins the recursive field shape of core.Options and
// sim.Config (msvet's cachekey analyzer recomputes it on every run). When a
// field is added, removed, renamed, or retyped anywhere under either struct,
// msvet fails with the new expected value: audit that the JSON encoding
// still covers every field, bump SchemaVersion if old artifacts are now
// wrong, and paste the new fingerprint here.
const schemaFingerprint = "f3a9b33878bd"

// The fingerprint is consumed by tooling, not runtime code; the blank use
// keeps unused-symbol linters from suggesting its removal.
var _ = schemaFingerprint

// keyOf hashes a canonical JSON encoding of its payload. Both option
// structs contain only exported scalar fields, so encoding/json emits them
// in declaration order and the digest is stable across processes.
func keyOf(payload any) string {
	blob, err := json.Marshal(payload)
	if err != nil {
		// Options and Config are plain data; marshalling cannot fail
		// without a programming error in this package.
		panic("grid: key derivation: " + err.Error())
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// Key returns the content address of a job's simulation result.
func Key(job Job) string {
	return keyOf(struct {
		Schema int
		Kind   string
		Job    Job
	}{SchemaVersion, "sim", job})
}

// ValidateKey rejects anything that is not a lowercase-hex sha256 digest —
// both malformed requests and path-traversal attempts (cache keys become
// disk file names). Every key Key and PartitionKey produce passes.
func ValidateKey(key string) error { //msvet:allow cachekey (validates key syntax, derives nothing)
	if len(key) != sha256.Size*2 {
		return fmt.Errorf("key must be %d hex characters, got %d", sha256.Size*2, len(key))
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return errors.New("key must be lowercase hex")
		}
	}
	return nil
}

// PartitionKey returns the content address of a task selection.
func PartitionKey(workload string, opts core.Options) string {
	return keyOf(struct {
		Schema   int
		Kind     string
		Workload string
		Select   core.Options
	}{SchemaVersion, "part", workload, opts})
}
