package grid

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"multiscalar/internal/core"
	"multiscalar/internal/obs/span"
	"multiscalar/internal/sim"
)

// TestRunCtxSpans checks that one traced job yields the documented span
// taxonomy with correct parent links, and that the same job run untraced
// produces a byte-identical result (tracing must never perturb outputs).
func TestRunCtxSpans(t *testing.T) {
	job := Job{Workload: "compress", Select: core.Options{Heuristic: core.ControlFlow},
		Config: sim.DefaultConfig(4)}

	tr := span.New(span.Options{Process: "test"})
	eng := New(Options{Workers: 2, CacheDir: t.TempDir()})
	ctx, root := tr.StartRoot(context.Background(), "request")
	traced, err := eng.RunCtx(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	root.End(nil)

	plain, err := New(Options{Workers: 2}).RunCtx(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traced, plain) {
		t.Errorf("traced result differs from untraced:\n%+v\n%+v", traced, plain)
	}

	td := tr.Recorder().Get(root.TraceID())
	if td == nil {
		t.Fatal("trace not recorded")
	}
	byName := map[string]span.SpanData{}
	for _, s := range td.Spans {
		byName[s.Name] = s
	}
	for _, want := range []string{"grid.run", "grid.cache-lookup", "grid.queue-wait",
		"grid.partition", "grid.sim-exec"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("span %q missing; got %v", want, names(td.Spans))
		}
	}
	run := byName["grid.run"]
	if run.Parent != td.Root.SpanID {
		t.Errorf("grid.run parent = %q, want root", run.Parent)
	}
	if run.Attrs["workload"] != "compress" || run.Attrs["pus"] != "4" || run.Attrs["key"] == "" {
		t.Errorf("grid.run attrs = %v", run.Attrs)
	}
	if byName["grid.cache-lookup"].Attrs["hit"] != "false" {
		t.Errorf("cold cache probe marked hit: %v", byName["grid.cache-lookup"].Attrs)
	}

	// Warm rerun on the same engine: the memo answers without a new trace
	// touching cache or sim spans beyond the run itself.
	ctx2, root2 := tr.StartRoot(context.Background(), "request2")
	if _, err := eng.RunCtx(ctx2, job); err != nil {
		t.Fatal(err)
	}
	root2.End(nil)
	td2 := tr.Recorder().Get(root2.TraceID())
	for _, s := range td2.Spans {
		if s.Name == "grid.sim-exec" {
			t.Error("memoized rerun re-simulated")
		}
	}
}

// TestSingleflightWaitSpan: a duplicate concurrent job records the time it
// spent coalesced behind the leader as a grid.singleflight-wait span.
func TestSingleflightWaitSpan(t *testing.T) {
	started := make(chan struct{})
	restore := SetSimForTesting(func(part *core.Partition, cfg sim.Config) (*sim.Result, error) {
		close(started)
		time.Sleep(20 * time.Millisecond)
		return &sim.Result{IPC: 1}, nil
	})
	defer restore()

	tr := span.New(span.Options{Process: "test"})
	eng := New(Options{Workers: 2})
	job := Job{Workload: "compress", Config: sim.DefaultConfig(2)}

	ctx, root := tr.StartRoot(context.Background(), "coalesced")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = eng.RunCtx(ctx, job) // leader; the follower's return is what we assert
	}()
	<-started
	if _, err := eng.RunCtx(ctx, job); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	root.End(nil)

	td := tr.Recorder().Get(root.TraceID())
	found := false
	for _, s := range td.Spans {
		if s.Name == "grid.singleflight-wait" {
			found = true
		}
	}
	if !found {
		t.Errorf("no singleflight-wait span; got %v", names(td.Spans))
	}
}

func names(spans []span.SpanData) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}
