// Package grid executes the experiment grid: every (workload, selection
// options, machine point) triple is an independent job with an explicit
// partition→simulation dependency. Jobs are scheduled across a bounded
// worker pool, concurrent requests for the same key coalesce into a single
// computation (single-flight), completed computations are memoized in
// memory for the life of the engine, and simulation results may additionally
// be backed by a content-addressed on-disk cache so warm reruns skip
// simulation entirely.
//
// The engine is safe for concurrent use: callers fan out one goroutine per
// job and block in Run; only actual core.Select / sim.Run work occupies a
// worker slot, so an arbitrary number of pending jobs costs no parallelism.
package grid

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"multiscalar/internal/core"
	"multiscalar/internal/obs"
	"multiscalar/internal/obs/span"
	"multiscalar/internal/sim"
	"multiscalar/internal/workloads"
)

// Options configures an Engine.
type Options struct {
	// Workers bounds concurrent core.Select / sim.Run computations
	// (0 = GOMAXPROCS).
	Workers int
	// CacheDir enables the content-addressed on-disk result cache
	// ("" = disabled). The directory is created on first store.
	CacheDir string
	// Cache overrides CacheDir with an explicit result store — typically a
	// tiered cache (internal/dist: in-memory LRU → disk → remote HTTP) so
	// one engine participates in a multi-process grid.
	Cache Cache
	// Dispatcher, when non-nil, is offered every cache-missing simulation
	// job before local execution — the hook the distributed shard scheduler
	// (internal/dist) plugs into. A dispatcher that answers with an error
	// wrapping ErrDispatch sends the job back to in-process compute, so a
	// drained or unreachable fleet degrades to single-process execution
	// rather than failing the sweep.
	Dispatcher Dispatcher
	// Metrics, when non-nil, receives the engine's per-job metrics: job and
	// simulation counters, cache hit/miss counters, queue-wait and
	// execution wall-time histograms, and worker occupancy over time (see
	// newEngMetrics for the catalog). Nil keeps the engine metric-free with
	// no timing calls on the hot path.
	Metrics *obs.Registry
}

// Job names one simulation: a workload partitioned under Select and timed
// on the machine Config. Config must be fully resolved (what sim.Run will
// actually see) — it is hashed verbatim into the cache key.
type Job struct {
	Workload string
	Select   core.Options
	Config   sim.Config
}

// Stats is a snapshot of engine counters.
type Stats struct {
	// Jobs and Done count unique simulation jobs entered and finished
	// (cache hits included); Jobs-Done is the in-flight backlog.
	Jobs, Done int64
	// Partitions and Sims count actual core.Select and sim.Run executions.
	Partitions, Sims int64
	// CacheHits and CacheMisses count disk-cache probes.
	CacheHits, CacheMisses int64
	// Deduped counts calls that coalesced into an already-running
	// computation instead of starting their own.
	Deduped int64
}

// Delta returns the counter-wise difference s - base: the engine activity
// that happened between two snapshots. On a shared engine this is how a
// caller attributes work to its own window — absolute counters mix every
// client's jobs together.
func (s Stats) Delta(base Stats) Stats {
	return Stats{
		Jobs:        s.Jobs - base.Jobs,
		Done:        s.Done - base.Done,
		Partitions:  s.Partitions - base.Partitions,
		Sims:        s.Sims - base.Sims,
		CacheHits:   s.CacheHits - base.CacheHits,
		CacheMisses: s.CacheMisses - base.CacheMisses,
		Deduped:     s.Deduped - base.Deduped,
	}
}

// Dispatcher is an alternative executor for simulation jobs: the engine
// hands over (key, job) and blocks until a result arrives from wherever the
// dispatcher ran it. Returning an error that wraps ErrDispatch instructs
// the engine to execute the job in-process instead; a context error
// propagates to the caller un-memoized like any other.
type Dispatcher interface {
	Dispatch(ctx context.Context, key string, job Job) (*sim.Result, error)
}

// ErrDispatch marks a dispatcher failure that describes the dispatcher, not
// the job — scheduler closed, fleet drained. The engine reacts by running
// the job locally (fail-open), so distributed infrastructure can never make
// a computable job uncomputable.
var ErrDispatch = errors.New("grid: dispatcher unavailable")

// Engine schedules grid jobs. Create one with New; the zero value is not
// usable.
type Engine struct {
	sem      chan struct{}
	cache    Cache       // nil = no result cache
	dispatch Dispatcher  // nil = always compute in-process
	m        *engMetrics // nil unless Options.Metrics was set

	mu    sync.Mutex
	parts map[string]*call[*core.Partition]
	sims  map[string]*call[*sim.Result]

	jobs, done, nParts, nSims      atomic.Int64
	cacheHits, cacheMisses, dedups atomic.Int64
}

// engMetrics holds the engine's registry handles, resolved once at New so
// job execution never touches the registry map. The catalog is documented in
// DESIGN.md §9.
type engMetrics struct {
	jobs, parts, sims    *obs.Counter
	cacheHits, cacheMiss *obs.Counter
	dedups               *obs.Counter
	queueWait, execWall  *obs.Histogram
	busy                 *obs.Gauge
	occupancy            *obs.Histogram
}

func newEngMetrics(r *obs.Registry) *engMetrics {
	if r == nil {
		return nil
	}
	return &engMetrics{
		jobs:      r.Counter("grid_jobs_total", "jobs", "unique simulation jobs entered"),
		parts:     r.Counter("grid_partitions_total", "partitions", "core.Select executions"),
		sims:      r.Counter("grid_sims_total", "sims", "sim.Run executions"),
		cacheHits: r.Counter("grid_cache_hits_total", "probes", "disk-cache probes that hit"),
		cacheMiss: r.Counter("grid_cache_misses_total", "probes", "disk-cache probes that missed"),
		dedups:    r.Counter("grid_dedup_total", "calls", "calls coalesced into a running computation"),
		queueWait: r.Histogram("grid_queue_wait_us", "us",
			"time a ready job waited for a worker slot", obs.ExpBuckets(1, 4, 14)),
		execWall: r.Histogram("grid_exec_wall_us", "us",
			"wall time of one core.Select or sim.Run execution", obs.ExpBuckets(1, 4, 14)),
		busy: r.Gauge("grid_workers_busy", "workers",
			"worker slots in use right now"),
		occupancy: r.Histogram("grid_worker_occupancy", "workers",
			"busy workers sampled at each slot acquisition", obs.LinearBuckets(1, 1, 64)),
	}
}

// runSim indirects sim.Run so tests can observe scheduling.
var runSim = sim.Run

// SetSimForTesting replaces the function every engine runs for a simulation
// and returns a restore func. It exists so tests outside this package
// (notably internal/serve) can gate and count simulations; never call it
// from non-test code, and never concurrently with live engines.
func SetSimForTesting(fn func(*core.Partition, sim.Config) (*sim.Result, error)) (restore func()) {
	old := runSim
	if fn == nil {
		fn = sim.Run
	}
	runSim = fn
	return func() { runSim = old }
}

// New returns an engine with the given worker bound and cache directory.
func New(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		sem:      make(chan struct{}, workers),
		dispatch: opts.Dispatcher,
		m:        newEngMetrics(opts.Metrics),
		parts:    make(map[string]*call[*core.Partition]),
		sims:     make(map[string]*call[*sim.Result]),
	}
	switch {
	case opts.Cache != nil:
		e.cache = opts.Cache
	case opts.CacheDir != "":
		e.cache = NewDiskCache(opts.CacheDir)
	}
	return e
}

// Workers reports the worker-pool bound.
func (e *Engine) Workers() int { return cap(e.sem) }

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Jobs: e.jobs.Load(), Done: e.done.Load(),
		Partitions: e.nParts.Load(), Sims: e.nSims.Load(),
		CacheHits: e.cacheHits.Load(), CacheMisses: e.cacheMisses.Load(),
		Deduped: e.dedups.Load(),
	}
}

// call is one single-flight computation. Completed calls stay in the
// engine's maps as the in-memory memo.
type call[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// isCtxErr reports whether err is (or wraps) a context cancellation or
// deadline error — the class of failures that describe the caller rather
// than the computation, and therefore must never be memoized.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// flight returns the memoized or in-flight result for key, or makes the
// caller the leader that computes it via fn. Waiters hold no worker slot and
// abandon the wait (leaving the leader running) when their ctx ends. A
// leader that fails with its own context error is evicted from the memo
// before waiters wake, so one canceled client never poisons the key: the
// first waiter whose context is still live retries as the new leader.
func flight[T any](ctx context.Context, e *Engine, m map[string]*call[T], key string, fn func() (T, error)) (T, error) {
	var zero T
	for {
		e.mu.Lock()
		if c, ok := m[key]; ok {
			e.mu.Unlock()
			select {
			case <-c.done:
			default:
				e.dedups.Add(1)
				if e.m != nil {
					e.m.dedups.Inc()
				}
				if err := waitFlight(ctx, c.done); err != nil {
					return zero, err
				}
			}
			if isCtxErr(c.err) {
				if err := ctx.Err(); err != nil {
					return zero, err
				}
				continue
			}
			return c.val, c.err
		}
		c := &call[T]{done: make(chan struct{})}
		m[key] = c
		e.mu.Unlock()
		c.val, c.err = fn()
		if isCtxErr(c.err) {
			e.mu.Lock()
			if cur, ok := m[key]; ok && cur == c {
				delete(m, key)
			}
			e.mu.Unlock()
		}
		close(c.done)
		return c.val, c.err
	}
}

// waitFlight blocks until the in-flight leader for a key finishes or ctx
// ends. The wait is recorded as a grid.singleflight-wait span when the
// caller is traced — coalescing is invisible in logs, and exactly the kind
// of "where did my latency go" answer a trace exists to give.
func waitFlight(ctx context.Context, done <-chan struct{}) (err error) {
	_, sp := span.Start(ctx, "grid.singleflight-wait")
	defer func() { sp.End(err) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// acquire takes a worker slot, or gives up when ctx ends first — this is
// what lets a queued job cancel cleanly without ever running.
func (e *Engine) acquire(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }

// acquireObserved is acquire plus queue-wait and occupancy accounting; it
// falls through to the bare channel send when metrics are off, so the
// unobserved hot path never calls time.Now. A traced caller additionally
// gets a grid.queue-wait span covering the time spent waiting for a slot.
func (e *Engine) acquireObserved(ctx context.Context) (err error) {
	_, sp := span.Start(ctx, "grid.queue-wait")
	defer func() { sp.End(err) }()
	if e.m == nil {
		return e.acquire(ctx)
	}
	t0 := time.Now()
	if err := e.acquire(ctx); err != nil {
		return err
	}
	e.m.queueWait.Observe(time.Since(t0).Microseconds())
	busy := int64(len(e.sem))
	e.m.busy.Set(busy)
	e.m.occupancy.Observe(busy)
	return nil
}

func (e *Engine) releaseObserved() {
	e.release()
	if e.m != nil {
		e.m.busy.Set(int64(len(e.sem)))
	}
}

// timed runs fn inside a worker slot as a span named name, recording exec
// wall time when metrics are attached. Cancellation is only honored while
// waiting for the slot: once fn starts it runs to completion (sim.Run is not
// preemptible).
func timed[T any](ctx context.Context, e *Engine, name string, fn func() (T, error)) (v T, err error) {
	if err = e.acquireObserved(ctx); err != nil {
		return v, err
	}
	defer e.releaseObserved()
	_, sp := span.Start(ctx, name)
	defer func() { sp.End(err) }()
	if e.m == nil {
		return fn()
	}
	t0 := time.Now()
	v, err = fn()
	e.m.execWall.Observe(time.Since(t0).Microseconds())
	return v, err
}

// Partition returns the task selection for one workload under opts,
// computing it at most once per engine.
func (e *Engine) Partition(workload string, opts core.Options) (*core.Partition, error) {
	//msvet:allow ctxflow (compat wrapper: uncancellable by design; callers with deadlines use PartitionCtx)
	return e.PartitionCtx(context.Background(), workload, opts)
}

// PartitionCtx is Partition with a caller deadline: a job still queued for a
// worker slot when ctx ends returns ctx.Err() without ever partitioning, and
// a canceled computation is not memoized.
func (e *Engine) PartitionCtx(ctx context.Context, workload string, opts core.Options) (*core.Partition, error) {
	if workload == "" {
		return nil, errors.New("grid: empty workload name")
	}
	return flight(ctx, e, e.parts, PartitionKey(workload, opts), func() (*core.Partition, error) {
		w, err := workloads.ByName(workload)
		if err != nil {
			return nil, err
		}
		p, err := timed(ctx, e, "grid.partition", func() (*core.Partition, error) {
			e.nParts.Add(1)
			if e.m != nil {
				e.m.parts.Inc()
			}
			return core.Select(w.Build(), opts)
		})
		if err != nil {
			if isCtxErr(err) {
				return nil, err
			}
			return nil, fmt.Errorf("grid: partition %s: %w", workload, err)
		}
		return p, nil
	})
}

// Run executes one job: a warm disk cache satisfies it without touching the
// partition; otherwise the partition dependency resolves first (shared with
// every other job on the same selection) and the simulation runs in a
// worker slot. Safe for concurrent use; identical concurrent jobs run once.
//
// Timeline-recording jobs (Config.RecordTimeline) bypass the disk cache in
// both directions: their per-task records would bloat artifacts read by
// every non-timeline consumer, so they always simulate and never persist.
func (e *Engine) Run(job Job) (*sim.Result, error) {
	//msvet:allow ctxflow (compat wrapper: uncancellable by design; callers with deadlines use RunCtx)
	return e.RunCtx(context.Background(), job)
}

// RunCtx is Run with a caller deadline. Cancellation is honored at the two
// wait points — the single-flight wait and the worker-slot queue — so a
// canceled job that never reached a worker costs nothing; a simulation
// already executing runs to completion (its result is still memoized for the
// next caller). Context errors are never memoized: the next request for the
// same key simply recomputes.
func (e *Engine) RunCtx(ctx context.Context, job Job) (res *sim.Result, err error) {
	if job.Workload == "" {
		return nil, errors.New("grid: empty workload name")
	}
	key := Key(job)
	ctx, sp := span.Start(ctx, "grid.run")
	if sp != nil {
		sp.SetAttr("workload", job.Workload)
		sp.SetAttr("pus", strconv.Itoa(job.Config.NumPUs))
		sp.SetAttr("key", key)
	}
	defer func() { sp.End(err) }()
	return flight(ctx, e, e.sims, key, func() (*sim.Result, error) {
		e.jobs.Add(1)
		defer e.done.Add(1)
		if e.m != nil {
			e.m.jobs.Inc()
		}
		cache := e.cache
		if job.Config.RecordTimeline {
			cache = nil
		}
		if cache != nil {
			if res, ok := cacheProbe(ctx, cache, key, job); ok {
				e.cacheHits.Add(1)
				if e.m != nil {
					e.m.cacheHits.Inc()
				}
				return res, nil
			}
			e.cacheMisses.Add(1)
			if e.m != nil {
				e.m.cacheMiss.Inc()
			}
		}
		if e.dispatch != nil && !job.Config.RecordTimeline {
			res, err := e.dispatch.Dispatch(ctx, key, job)
			switch {
			case err == nil:
				if cache != nil {
					cache.Store(ctx, key, job, res)
				}
				return res, nil
			case isCtxErr(err):
				return nil, err
			case errors.Is(err, ErrDispatch):
				// Fail open: the fleet can't take the job; run it here.
			default:
				return nil, fmt.Errorf("grid: dispatch %s/%dPU: %w", job.Workload, job.Config.NumPUs, err)
			}
		}
		res, err := e.ComputeCtx(ctx, job)
		if err != nil {
			return nil, err
		}
		if cache != nil {
			cache.Store(ctx, key, job, res)
		}
		return res, nil
	})
}

// cacheProbe is Cache.Load under a grid.cache-lookup span carrying the
// outcome; tiered caches (internal/dist) add one child probe span per tier,
// so a trace shows exactly which tier answered.
func cacheProbe(ctx context.Context, cache Cache, key string, job Job) (res *sim.Result, ok bool) {
	ctx, sp := span.Start(ctx, "grid.cache-lookup")
	defer func() {
		if sp != nil {
			sp.SetAttr("hit", strconv.FormatBool(ok))
		}
		sp.End(nil)
	}()
	return cache.Load(ctx, key, job)
}

// ComputeCtx executes one job in this process unconditionally: the
// partition dependency resolves through the shared single-flight (so jobs
// on the same selection still select once), then the simulation runs in a
// worker slot. It bypasses the sim-level memo, the cache, and the
// dispatcher — which is exactly what a distribution layer's local worker
// loop needs: it already holds the job's single-flight leadership via
// RunCtx, so re-entering RunCtx from the loop would self-deadlock.
func (e *Engine) ComputeCtx(ctx context.Context, job Job) (*sim.Result, error) {
	if job.Workload == "" {
		return nil, errors.New("grid: empty workload name")
	}
	part, err := e.PartitionCtx(ctx, job.Workload, job.Select)
	if err != nil {
		return nil, err
	}
	res, err := timed(ctx, e, "grid.sim-exec", func() (*sim.Result, error) {
		e.nSims.Add(1)
		if e.m != nil {
			e.m.sims.Inc()
		}
		return runSim(part, job.Config)
	})
	if err != nil {
		if isCtxErr(err) {
			return nil, err
		}
		return nil, fmt.Errorf("grid: sim %s/%dPU: %w", job.Workload, job.Config.NumPUs, err)
	}
	return res, nil
}

// RunAll executes fn(i) for every i in [0, n) concurrently and returns the
// errors.Join of every failure in index order (nil when all succeed), so no
// concurrent experiment error is masked by another. It is the fan-out helper
// the experiment layer uses: results land in caller-indexed slots, so
// collection order — and any output derived from it — is deterministic
// regardless of completion order.
//
// Cancellation gates launches, not running work: once ctx ends, remaining
// indices are not started and report ctx.Err() in their slots, while
// already-launched fns run to completion (they receive the same ctx through
// their closure if they want to stop sooner).
func RunAll(ctx context.Context, n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}
