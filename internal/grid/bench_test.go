package grid

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/sim"
)

// benchJobs is a fixed sub-grid: six representative workloads × the four
// Figure 5 selection variants on the paper's 8-PU machine (24 simulations,
// 18 partitions).
func benchJobs() []Job {
	variants := []core.Options{
		{Heuristic: core.BasicBlock},
		{Heuristic: core.ControlFlow},
		{Heuristic: core.DataDependence},
		{Heuristic: core.DataDependence, TaskSize: true},
	}
	var jobs []Job
	for _, name := range []string{"go", "compress", "ijpeg", "tomcatv", "swim", "fpppp"} {
		for _, opts := range variants {
			jobs = append(jobs, Job{Workload: name, Select: opts, Config: sim.DefaultConfig(8)})
		}
	}
	return jobs
}

func runJobs(b *testing.B, e *Engine, jobs []Job) {
	b.Helper()
	err := RunAll(context.Background(), len(jobs), func(i int) error {
		_, err := e.Run(jobs[i])
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGridParallel runs the sub-grid cold on a fresh engine per
// iteration, once serially (j=1) and once across all cores: the wall-clock
// ratio of the two sub-benchmarks is the engine's parallel speedup (≈ the
// core count, as the jobs are independent and CPU-bound).
func BenchmarkGridParallel(b *testing.B) {
	jobs := benchJobs()
	pool := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		pool = append(pool, n)
	}
	for _, workers := range pool {
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := New(Options{Workers: workers})
				runJobs(b, e, jobs)
			}
			b.ReportMetric(float64(len(jobs)*b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkGridWarmCache measures a fully warm disk cache: every job is
// served from content-addressed artifacts with zero simulations.
func BenchmarkGridWarmCache(b *testing.B) {
	jobs := benchJobs()
	dir := b.TempDir()
	runJobs(b, New(Options{CacheDir: dir}), jobs) // populate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(Options{CacheDir: dir})
		runJobs(b, e, jobs)
		if s := e.Stats(); s.Sims != 0 {
			b.Fatalf("warm run simulated %d jobs", s.Sims)
		}
	}
	b.ReportMetric(float64(len(jobs)*b.N)/b.Elapsed().Seconds(), "jobs/s")
}
