package grid

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"multiscalar/internal/core"
	"multiscalar/internal/sim"
)

// fastJob is a small, quick grid point used throughout the tests.
func fastJob() Job {
	return Job{
		Workload: "fpppp",
		Select:   core.Options{Heuristic: core.ControlFlow},
		Config:   sim.DefaultConfig(4),
	}
}

func TestRunMemoizes(t *testing.T) {
	e := New(Options{})
	r1, err := e.Run(fastJob())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(fastJob())
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("repeated identical jobs did not share one result")
	}
	s := e.Stats()
	if s.Sims != 1 || s.Partitions != 1 {
		t.Errorf("sims=%d partitions=%d, want 1/1", s.Sims, s.Partitions)
	}
	if s.Jobs != 1 || s.Done != 1 {
		t.Errorf("jobs=%d done=%d, want 1/1", s.Jobs, s.Done)
	}
}

func TestSingleFlight(t *testing.T) {
	e := New(Options{Workers: 4})
	const callers = 16
	results := make([]*sim.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.Run(fastJob())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result pointer", i)
		}
	}
	if s := e.Stats(); s.Sims != 1 {
		t.Errorf("%d concurrent identical jobs ran %d sims, want 1", callers, s.Sims)
	}
}

func TestWorkerBound(t *testing.T) {
	const bound = 2
	saved := runSim
	defer func() { runSim = saved }()
	var cur, peak, calls atomic.Int64
	runSim = func(part *core.Partition, cfg sim.Config) (*sim.Result, error) {
		calls.Add(1)
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		cur.Add(-1)
		return &sim.Result{IPC: 1}, nil
	}
	e := New(Options{Workers: bound})
	job := fastJob()
	const jobs = 6
	err := RunAll(context.Background(), jobs, func(i int) error {
		j := job
		j.Config.RingBW = i + 1 // distinct machine points
		_, err := e.Run(j)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != jobs {
		t.Errorf("stubbed sim ran %d times, want %d", calls.Load(), jobs)
	}
	if p := peak.Load(); p > bound {
		t.Errorf("peak concurrency %d exceeds worker bound %d", p, bound)
	}
}

// TestParallelWallClock pins the engine's point: independent jobs overlap.
// With sim.Run stubbed to a fixed sleep, eight jobs through an 8-worker
// pool must finish in a fraction of the serial time (sleeps overlap even on
// one core, so this holds on any machine).
func TestParallelWallClock(t *testing.T) {
	saved := runSim
	defer func() { runSim = saved }()
	const simTime = 50 * time.Millisecond
	runSim = func(part *core.Partition, cfg sim.Config) (*sim.Result, error) {
		time.Sleep(simTime)
		return &sim.Result{IPC: 1}, nil
	}
	const jobs = 8
	run := func(workers int) time.Duration {
		e := New(Options{Workers: workers})
		// Warm the shared partition so only stubbed sim time is measured.
		if _, err := e.Partition(fastJob().Workload, fastJob().Select); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		err := RunAll(context.Background(), jobs, func(i int) error {
			j := fastJob()
			j.Config.RingBW = i + 1
			_, err := e.Run(j)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial, parallel := run(1), run(jobs)
	if parallel > serial/2 {
		t.Errorf("parallel run %v not ≥2× faster than serial %v", parallel, serial)
	}
}

func TestKeysDistinguishJobs(t *testing.T) {
	base := fastJob()
	seen := map[string]string{}
	add := func(desc string, j Job) {
		k := Key(j)
		if prev, ok := seen[k]; ok {
			t.Errorf("%s collides with %s", desc, prev)
		}
		seen[k] = desc
	}
	add("base", base)
	j := base
	j.Workload = "go"
	add("other workload", j)
	j = base
	j.Select.TaskSize = true
	add("task size on", j)
	j = base
	j.Config.NumPUs = 8
	add("8 PUs", j)
	j = base
	j.Config.InOrder = true
	add("in-order", j)
	if Key(base) != Key(fastJob()) {
		t.Error("identical jobs hash differently")
	}
	if PartitionKey("go", core.Options{}) == PartitionKey("cc", core.Options{}) {
		t.Error("partition keys ignore the workload")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cold := New(Options{CacheDir: dir})
	want, err := cold.Run(fastJob())
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Stats(); s.Sims != 1 || s.CacheMisses != 1 || s.CacheHits != 0 {
		t.Errorf("cold stats: %+v", s)
	}

	warm := New(Options{CacheDir: dir})
	got, err := warm.Run(fastJob())
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.Sims != 0 || s.Partitions != 0 || s.CacheHits != 1 {
		t.Errorf("warm run did not skip simulation: %+v", s)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("cached result differs:\n cold %+v\n warm %+v", want, got)
	}
}

// corruptArtifacts rewrites every artifact in dir with the given bytes.
func corruptArtifacts(t *testing.T, dir string, data []byte) int {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no artifacts to corrupt in %s (err=%v)", dir, err)
	}
	for _, f := range files {
		if err := os.WriteFile(f, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return len(files)
}

func TestCacheCorruptEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	if _, err := New(Options{CacheDir: dir}).Run(fastJob()); err != nil {
		t.Fatal(err)
	}
	corruptArtifacts(t, dir, []byte("{not json"))

	e := New(Options{CacheDir: dir})
	if _, err := e.Run(fastJob()); err != nil {
		t.Fatalf("corrupt cache entry surfaced as an error: %v", err)
	}
	if s := e.Stats(); s.Sims != 1 || s.CacheHits != 0 {
		t.Errorf("corrupt entry was not recomputed: %+v", s)
	}

	// The recompute must have healed the artifact.
	healed := New(Options{CacheDir: dir})
	if _, err := healed.Run(fastJob()); err != nil {
		t.Fatal(err)
	}
	if s := healed.Stats(); s.CacheHits != 1 || s.Sims != 0 {
		t.Errorf("artifact not rewritten after corruption: %+v", s)
	}
}

func TestCacheStaleSchemaRecomputes(t *testing.T) {
	dir := t.TempDir()
	if _, err := New(Options{CacheDir: dir}).Run(fastJob()); err != nil {
		t.Fatal(err)
	}
	// A valid artifact from a different (older/newer) schema must miss.
	corruptArtifacts(t, dir, []byte(`{"Schema": 999999, "Result": {"IPC": 42}}`))

	e := New(Options{CacheDir: dir})
	res, err := e.Run(fastJob())
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC == 42 {
		t.Error("stale-schema artifact was served")
	}
	if s := e.Stats(); s.Sims != 1 {
		t.Errorf("stale-schema entry was not recomputed: %+v", s)
	}
}

func TestUnknownWorkload(t *testing.T) {
	e := New(Options{})
	if _, err := e.Run(Job{Workload: "nope", Config: sim.DefaultConfig(4)}); err == nil {
		t.Error("unknown workload did not error")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error does not name the workload: %v", err)
	}
	if _, err := e.Run(Job{}); err == nil {
		t.Error("empty workload did not error")
	}
	if _, err := e.Partition("", core.Options{}); err == nil {
		t.Error("empty partition workload did not error")
	}
}

func TestRunAllJoinsAllErrors(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := RunAll(context.Background(), 4, func(i int) error {
		switch i {
		case 1:
			time.Sleep(10 * time.Millisecond)
			return errA
		case 3:
			return errB // finishes first but must not mask errA
		}
		return nil
	})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Errorf("err = %v, want both %v and %v joined", err, errA, errB)
	}
	// Index order, not completion order.
	lines := strings.Split(err.Error(), "\n")
	if len(lines) != 2 || lines[0] != "a" || lines[1] != "b" {
		t.Errorf("joined error not in index order: %q", err.Error())
	}
	if err := RunAll(context.Background(), 0, func(int) error { return nil }); err != nil {
		t.Errorf("empty RunAll: %v", err)
	}
	if err := RunAll(context.Background(), 3, func(int) error { return nil }); err != nil {
		t.Errorf("all-success RunAll: %v", err)
	}
}

// gateSim stubs runSim with a function that signals entry on started and
// blocks until release is closed.
func gateSim(t *testing.T) (started chan string, release chan struct{}, calls *atomic.Int64) {
	t.Helper()
	started = make(chan string, 64)
	release = make(chan struct{})
	calls = &atomic.Int64{}
	saved := runSim
	t.Cleanup(func() { runSim = saved })
	runSim = func(part *core.Partition, cfg sim.Config) (*sim.Result, error) {
		calls.Add(1)
		started <- part.Prog.Name
		<-release
		return &sim.Result{IPC: 1}, nil
	}
	return started, release, calls
}

func TestRunCtxCancelsQueuedJob(t *testing.T) {
	started, release, _ := gateSim(t)
	e := New(Options{Workers: 1})
	// Warm the partition memo so the occupier's worker slot is the only
	// contended resource.
	if _, err := e.Partition(fastJob().Workload, fastJob().Select); err != nil {
		t.Fatal(err)
	}
	occupier := make(chan error, 1)
	go func() {
		_, err := e.Run(fastJob())
		occupier <- err
	}()
	<-started // the single worker slot is now held inside the stubbed sim

	ctx, cancel := context.WithCancel(context.Background())
	queued := fastJob()
	queued.Config.RingBW = 7 // distinct key: must queue for the slot
	errc := make(chan error, 1)
	go func() {
		_, err := e.RunCtx(ctx, queued)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it reach the slot queue
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("queued job returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued job did not cancel while the worker was busy")
	}

	close(release)
	if err := <-occupier; err != nil {
		t.Fatal(err)
	}
	// The canceled call must not be memoized: rerunning the same job now
	// succeeds and actually simulates.
	sims := e.Stats().Sims
	if _, err := e.Run(queued); err != nil {
		t.Fatalf("rerun after cancellation: %v", err)
	}
	if got := e.Stats().Sims; got != sims+1 {
		t.Errorf("rerun did not simulate (sims %d -> %d); canceled error was memoized", sims, got)
	}
}

func TestRunCtxWaiterDeadlineLeavesLeader(t *testing.T) {
	started, release, calls := gateSim(t)
	e := New(Options{Workers: 2})
	if _, err := e.Partition(fastJob().Workload, fastJob().Select); err != nil {
		t.Fatal(err)
	}
	leader := make(chan *sim.Result, 1)
	go func() {
		res, err := e.Run(fastJob())
		if err != nil {
			t.Error(err)
		}
		leader <- res
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := e.RunCtx(ctx, fastJob()); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("waiter returned %v, want context.DeadlineExceeded", err)
	}

	close(release)
	if res := <-leader; res == nil {
		t.Fatal("leader result missing")
	}
	// The leader's completed result is memoized despite the waiter's exit.
	res, err := e.Run(fastJob())
	if err != nil || res == nil {
		t.Fatalf("memoized result after waiter deadline: %v", err)
	}
	if calls.Load() != 1 {
		t.Errorf("sim ran %d times, want 1", calls.Load())
	}
}

func TestRunCtxAlreadyCanceled(t *testing.T) {
	e := New(Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunCtx(ctx, fastJob()); !errors.Is(err, context.Canceled) {
		t.Errorf("RunCtx on a dead context returned %v", err)
	}
	if _, err := e.PartitionCtx(ctx, fastJob().Workload, fastJob().Select); !errors.Is(err, context.Canceled) {
		t.Errorf("PartitionCtx on a dead context returned %v", err)
	}
	// Nothing may be memoized for the canceled attempts.
	if _, err := e.Run(fastJob()); err != nil {
		t.Fatalf("fresh run after canceled attempts: %v", err)
	}
	if s := e.Stats(); s.Sims != 1 {
		t.Errorf("sims = %d, want exactly the fresh run", s.Sims)
	}
}

func TestWorkersDefault(t *testing.T) {
	if w := New(Options{}).Workers(); w < 1 {
		t.Errorf("default workers = %d", w)
	}
	if w := New(Options{Workers: 3}).Workers(); w != 3 {
		t.Errorf("workers = %d, want 3", w)
	}
}
