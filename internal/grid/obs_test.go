package grid

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/obs"
	"multiscalar/internal/sim"
)

func testJob(pus int) Job {
	return Job{
		Workload: "compress",
		Select:   core.Options{Heuristic: core.ControlFlow},
		Config:   sim.DefaultConfig(pus),
	}
}

// TestEngineMetrics runs a small job mix and checks the registry agrees with
// the engine's own Stats counters.
func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Options{Workers: 2, CacheDir: t.TempDir(), Metrics: reg})
	jobs := []Job{testJob(2), testJob(4), testJob(2)} // one duplicate memoizes
	if err := RunAll(context.Background(), len(jobs), func(i int) error {
		_, err := e.Run(jobs[i])
		return err
	}); err != nil {
		t.Fatal(err)
	}

	s := e.Stats()
	snap := reg.Snapshot()
	byName := make(map[string]obs.MetricSnapshot)
	for _, m := range snap.Metrics {
		byName[m.Name] = m
	}
	counterChecks := []struct {
		name string
		want int64
	}{
		{"grid_jobs_total", s.Jobs},
		{"grid_partitions_total", s.Partitions},
		{"grid_sims_total", s.Sims},
		{"grid_cache_hits_total", s.CacheHits},
		{"grid_cache_misses_total", s.CacheMisses},
	}
	for _, c := range counterChecks {
		m, ok := byName[c.name]
		if !ok || m.Value == nil {
			t.Errorf("%s missing from snapshot", c.name)
			continue
		}
		if *m.Value != c.want {
			t.Errorf("%s = %d, want %d (Stats)", c.name, *m.Value, c.want)
		}
	}
	// Every worker-slot acquisition contributes one queue-wait and one
	// occupancy sample; every slot-held execution contributes one wall-time
	// sample.
	wantSlots := s.Partitions + s.Sims
	if got := byName["grid_queue_wait_us"].Count; got != wantSlots {
		t.Errorf("grid_queue_wait_us count %d, want %d", got, wantSlots)
	}
	if got := byName["grid_exec_wall_us"].Count; got != wantSlots {
		t.Errorf("grid_exec_wall_us count %d, want %d", got, wantSlots)
	}
	occ := byName["grid_worker_occupancy"]
	if occ.Count != wantSlots {
		t.Errorf("grid_worker_occupancy count %d, want %d", occ.Count, wantSlots)
	}
	if occ.Max > int64(e.Workers()) {
		t.Errorf("observed occupancy %d exceeds worker bound %d", occ.Max, e.Workers())
	}
	if _, ok := byName["grid_workers_busy"]; !ok {
		t.Error("grid_workers_busy gauge missing")
	}
}

// TestMetricsOffByDefault: an engine without a registry must register and
// record nothing (the guarded-instrumentation contract the benchmarks rely
// on).
func TestMetricsOffByDefault(t *testing.T) {
	e := New(Options{Workers: 1})
	if e.m != nil {
		t.Fatal("engine created metrics without a registry")
	}
	if _, err := e.Run(testJob(2)); err != nil {
		t.Fatal(err)
	}
}

// TestTimelineJobsBypassCache: timeline-recording runs must not read or
// write shared artifacts — they always simulate and the cache directory
// stays free of timeline payloads.
func TestTimelineJobsBypassCache(t *testing.T) {
	dir := t.TempDir()

	job := testJob(2)
	job.Config.RecordTimeline = true

	e := New(Options{Workers: 1, CacheDir: dir})
	res, err := e.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("timeline job returned no timeline")
	}
	if s := e.Stats(); s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Errorf("timeline job probed the cache: hits=%d misses=%d", s.CacheHits, s.CacheMisses)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("timeline job persisted %d artifacts, want 0", len(entries))
	}

	// A fresh engine on the same directory re-simulates and still delivers
	// the timeline (nothing stale to serve).
	e2 := New(Options{Workers: 1, CacheDir: dir})
	res2, err := e2.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if s := e2.Stats(); s.Sims != 1 {
		t.Errorf("second timeline run simulated %d times, want 1", s.Sims)
	}
	if len(res2.Timeline) != len(res.Timeline) {
		t.Errorf("second run timeline has %d records, first had %d",
			len(res2.Timeline), len(res.Timeline))
	}
}

// TestCacheStoreStripsTimeline guards direct diskCache users: a result
// carrying a timeline is persisted without it, and the caller's copy is
// untouched.
func TestCacheStoreStripsTimeline(t *testing.T) {
	dir := t.TempDir()
	c := NewDiskCache(dir)
	job := testJob(2)
	res := &sim.Result{
		Cycles:   123,
		Timeline: sim.Timeline{{Seq: 0, Retire: 123}},
	}
	c.Store(context.Background(), "k", job, res)
	if len(res.Timeline) != 1 {
		t.Fatal("store mutated the caller's result")
	}
	loaded, ok := c.Load(context.Background(), "k", Job{})
	if !ok {
		t.Fatal("stored artifact did not load")
	}
	if loaded.Timeline != nil {
		t.Error("artifact retained the timeline")
	}
	if loaded.Cycles != 123 {
		t.Errorf("artifact cycles = %d, want 123", loaded.Cycles)
	}
	if fis, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(fis) != 1 {
		t.Errorf("expected exactly one artifact, got %v", fis)
	}
}
