package verify

import (
	"sort"

	"multiscalar/internal/core"
	"multiscalar/internal/dataflow"
	"multiscalar/internal/ir"
)

// taskView recomputes, from the program text alone, the per-task facts the
// partition rules compare against the selector's stored results. Everything
// here deliberately mirrors the *specification* of a task (paper §2/§3, and
// the dynamic semantics in core's Instance.Step) rather than reading the
// selector's internals.
type taskView struct {
	c *checker
	t *core.Task
	f *ir.Function
	g *fnAnalysis

	members []ir.BlockID // sorted membership

	// contSucc is the continue-edge adjacency (from the task's own edge set).
	contSucc map[ir.BlockID][]ir.BlockID

	// blockDef[b]: registers block b may write when executed inside this
	// task — its own instruction defs plus, for an included call, everything
	// the callee may transitively write.
	blockDef map[ir.BlockID]dataflow.RegSet
}

func (c *checker) viewTask(t *core.Task) *taskView {
	v := &taskView{
		c: c, t: t,
		f:        c.prog.Fn(t.Fn),
		g:        c.fns[t.Fn],
		contSucc: make(map[ir.BlockID][]ir.BlockID),
		blockDef: make(map[ir.BlockID]dataflow.RegSet, len(t.Blocks)),
	}
	for _, e := range t.ContinueEdges() {
		v.contSucc[e[0]] = append(v.contSucc[e[0]], e[1])
	}
	for _, b := range sortedBlockIDs(t.Blocks) {
		v.members = append(v.members, b)
		blk := v.f.Block(b)
		var def dataflow.RegSet
		for _, in := range blk.Instrs {
			if d, ok := in.Def(); ok {
				def = def.Add(d)
			}
		}
		if t.IncludeCall[b] {
			def = def.Union(c.fnWrites[blk.Term.Callee])
		}
		v.blockDef[b] = def
	}
	return v
}

// terminalNode is the paper's is_a_terminal_node for this task: a block
// ending in a non-included call, a return, or halt ends the task
// unconditionally.
func (v *taskView) terminalNode(b ir.BlockID) bool {
	switch v.f.Block(b).Term.Kind {
	case ir.TermCall:
		return !v.t.IncludeCall[b]
	case ir.TermRet, ir.TermHalt:
		return true
	}
	return false
}

// dynSuccs returns where control can continue within the function's dynamic
// instruction stream after b executes inside this task (an included call
// resumes at its fall block once the callee finishes).
func (v *taskView) dynSuccs(b ir.BlockID) []ir.BlockID {
	blk := v.f.Block(b)
	switch blk.Term.Kind {
	case ir.TermCall:
		if v.t.IncludeCall[b] {
			return []ir.BlockID{blk.Term.Fall}
		}
		return nil
	case ir.TermGoto:
		return []ir.BlockID{blk.Term.Taken}
	case ir.TermBr:
		if blk.Term.Taken == blk.Term.Fall {
			return []ir.BlockID{blk.Term.Taken}
		}
		return []ir.BlockID{blk.Term.Taken, blk.Term.Fall}
	}
	return nil
}

// expectedTargets recomputes the task's successor set from its membership:
// the distinct places control can be when an instance ends, in the canonical
// order Select uses (blocks, then calls, then return, then halt).
func (v *taskView) expectedTargets() []core.Target {
	seen := make(map[core.Target]bool)
	var out []core.Target
	add := func(t core.Target) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, b := range v.members {
		blk := v.f.Block(b)
		switch blk.Term.Kind {
		case ir.TermCall:
			if !v.t.IncludeCall[b] {
				add(core.Target{Kind: core.TargetCall, Fn: blk.Term.Callee})
				continue
			}
		case ir.TermRet:
			add(core.Target{Kind: core.TargetReturn})
			continue
		case ir.TermHalt:
			add(core.Target{Kind: core.TargetHalt})
			continue
		}
		for _, succ := range v.dynSuccs(b) {
			if !v.t.Blocks[succ] || succ == v.t.Entry ||
				v.g.g.IsTerminalEdge(b, succ) || v.terminalNode(b) {
				add(core.Target{Kind: core.TargetBlock, Blk: succ})
			}
		}
	}
	sortTargets(out)
	return out
}

// exitBlocks returns the members with at least one task-ending outcome: a
// return, halt, or non-included call, or any static successor edge that is
// not a continue edge.
func (v *taskView) exitBlocks() []ir.BlockID {
	var out []ir.BlockID
	for _, b := range v.members {
		if v.isExit(b) {
			out = append(out, b)
		}
	}
	return out
}

func (v *taskView) isExit(b ir.BlockID) bool {
	blk := v.f.Block(b)
	if blk.Term.Kind == ir.TermRet || blk.Term.Kind == ir.TermHalt ||
		(blk.Term.Kind == ir.TermCall && !v.t.IncludeCall[b]) {
		return true
	}
	for _, s := range blk.Succs(nil) {
		if !v.t.Continues(b, s) {
			return true
		}
	}
	return false
}

// continueReachable returns the members reachable from the task entry along
// continue edges — the blocks a single instance entered at Entry can execute.
func (v *taskView) continueReachable() map[ir.BlockID]bool {
	seen := map[ir.BlockID]bool{v.t.Entry: true}
	work := []ir.BlockID{v.t.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range v.contSucc[b] {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// downstreamDefs returns, per member block, the registers defined in blocks
// strictly after it on some continuation path (the relation forward points
// must be disjoint from).
func (v *taskView) downstreamDefs() map[ir.BlockID]dataflow.RegSet {
	out := make(map[ir.BlockID]dataflow.RegSet, len(v.members))
	for changed := true; changed; {
		changed = false
		for _, b := range v.members {
			var set dataflow.RegSet
			for _, s := range v.contSucc[b] {
				set = set.Union(v.blockDef[s]).Union(out[s])
			}
			if set != out[b] {
				out[b] = set
				changed = true
			}
		}
	}
	return out
}

// sortTargets orders a target list canonically, mirroring Select: block
// targets by block, call targets by callee, then return, then halt.
func sortTargets(ts []core.Target) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Kind == core.TargetBlock {
			return a.Blk < b.Blk
		}
		if a.Kind == core.TargetCall {
			return a.Fn < b.Fn
		}
		return false
	})
}

func sortedBlockIDs(set map[ir.BlockID]bool) []ir.BlockID {
	out := make([]ir.BlockID, 0, len(set))
	for b, ok := range set {
		if ok {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
