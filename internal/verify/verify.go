// Package verify is a rule-based static analyzer for the reproduction: it
// checks, after the fact, that a program is well-formed Multiscalar input and
// that a partition produced by internal/core actually has the properties the
// paper's hardware model relies on — every task a connected, single-entry
// subgraph whose exits fit the target limit, create masks covering every
// live register the task may update, and forward points that are sound on
// every path to a task exit.
//
// The analyzer recomputes every property from the program text (via
// internal/cfganal and internal/dataflow) rather than trusting the
// selector's internal state, so it doubles as a metamorphic oracle: any test
// or workload that produces a partition can assert Partition(...) reports no
// error-severity findings. The cmd/mslint CLI exposes the same checks on the
// command line.
package verify

import (
	"fmt"

	"multiscalar/internal/cfganal"
	"multiscalar/internal/core"
	"multiscalar/internal/dataflow"
	"multiscalar/internal/ir"
)

// Program runs the IR-layer rules (IR000–IR005) over a program and returns
// the findings in canonical order.
func Program(p *ir.Program) Findings {
	c := newChecker(p, nil)
	c.checkProgram()
	c.findings.Sort()
	return c.findings
}

// Partition runs the full catalog — the IR-layer rules over part.Prog (the
// transformed program the tasks were selected on) plus the partition-layer
// rules (PT001–PT010) — and returns the findings in canonical order.
func Partition(part *core.Partition) Findings {
	c := newChecker(part.Prog, part)
	c.checkProgram()
	if c.valid {
		// Partition rules dereference blocks and callees freely; they only
		// run on structurally valid IR.
		c.checkPartition()
	}
	c.findings.Sort()
	return c.findings
}

// checker carries one verification run.
type checker struct {
	prog *ir.Program
	part *core.Partition // nil for Program-only runs

	valid bool // ir.Validate passed; per-function analyses are safe
	fns   []*fnAnalysis

	// fnWrites[f] is the set of registers function f or any transitive callee
	// may write (recursion handled by fixpoint) — the same summary the
	// selector's register-communication analysis uses for included calls.
	fnWrites []dataflow.RegSet

	findings Findings
}

// fnAnalysis caches the recomputed CFG and dataflow facts for one function.
type fnAnalysis struct {
	f     *ir.Function
	g     *cfganal.CFG
	facts *dataflow.Facts

	// mayDefIn[b] is the set of registers that have at least one definition
	// on some path from the function entry to the entry of block b. Included
	// for the never-defined rules (IR002/IR004): a use of r with
	// !mayDefIn[b].Has(r) reads a register no path ever wrote.
	mayDefIn []dataflow.RegSet
}

func newChecker(p *ir.Program, part *core.Partition) *checker {
	return &checker{prog: p, part: part}
}

func (c *checker) report(rule RuleID, sev Severity, fn ir.FnID, blk ir.BlockID, task int, format string, args ...any) {
	name := ""
	if fn != ir.NoFn && int(fn) < len(c.prog.Fns) && c.prog.Fns[fn] != nil {
		name = c.prog.Fns[fn].Name
	}
	c.findings = append(c.findings, Finding{
		Rule: rule, Sev: sev,
		Fn: fn, FnName: name, Blk: blk, Task: task,
		Msg: fmt.Sprintf(format, args...),
	})
}

// analyze builds (once) the per-function CFG/dataflow caches and the write
// summaries. Must only run on validated programs.
func (c *checker) analyze() {
	if c.fns != nil {
		return
	}
	c.fns = make([]*fnAnalysis, len(c.prog.Fns))
	for i, f := range c.prog.Fns {
		g := cfganal.Analyze(f)
		c.fns[i] = &fnAnalysis{f: f, g: g, facts: dataflow.Analyze(g)}
	}
	// Write summaries feed the may-define solution (a call defines whatever
	// its transitive callee may write), so they go first.
	c.computeFnWrites()
	for _, fa := range c.fns {
		fa.computeMayDef(c)
	}
}

// computeFnWrites mirrors the selector's function write summaries: own
// instruction defs plus transitive callee defs, to fixpoint over the call
// graph.
func (c *checker) computeFnWrites() {
	own := make([]dataflow.RegSet, len(c.prog.Fns))
	for i, f := range c.prog.Fns {
		var set dataflow.RegSet
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if d, ok := in.Def(); ok {
					set = set.Add(d)
				}
			}
		}
		own[i] = set
	}
	c.fnWrites = own
	for changed := true; changed; {
		changed = false
		for i, f := range c.prog.Fns {
			for _, b := range f.Blocks {
				if b.Term.Kind != ir.TermCall {
					continue
				}
				merged := c.fnWrites[i].Union(c.fnWrites[b.Term.Callee])
				if merged != c.fnWrites[i] {
					c.fnWrites[i] = merged
					changed = true
				}
			}
		}
	}
}

// computeMayDef solves the forward may-define problem per block: the union
// over all paths of definitions before the block entry. A call terminator
// conservatively defines everything its (transitive) callee may write.
func (fa *fnAnalysis) computeMayDef(c *checker) {
	n := len(fa.f.Blocks)
	fa.mayDefIn = make([]dataflow.RegSet, n)
	mayOut := func(b ir.BlockID) dataflow.RegSet {
		out := fa.mayDefIn[b].Union(fa.facts.Blocks[b].Def)
		if blk := fa.f.Block(b); blk.Term.Kind == ir.TermCall {
			out = out.Union(c.fnWrites[blk.Term.Callee])
		}
		return out
	}
	for changed := true; changed; {
		changed = false
		for _, b := range fa.g.RPO {
			out := mayOut(b)
			for _, s := range fa.g.Succs[b] {
				merged := fa.mayDefIn[s].Union(out)
				if merged != fa.mayDefIn[s] {
					fa.mayDefIn[s] = merged
					changed = true
				}
			}
		}
	}
}
