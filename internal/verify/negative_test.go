package verify

import (
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/dataflow"
	"multiscalar/internal/ir"
)

// fixtureProgram builds the small loop program the partition fixtures
// corrupt: entry → head → {body → head, exit}.
func fixtureProgram() *ir.Program {
	b := ir.NewBuilder("fixture")
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 0).MovI(ir.R(4), 10).Goto("head")
	f.Block("head").Slt(ir.R(5), ir.R(3), ir.R(4)).Br(ir.R(5), "body", "exit")
	f.Block("body").AddI(ir.R(3), ir.R(3), 1).Goto("head")
	f.Block("exit").Store(ir.R(3), ir.R(0), int64(ir.DataBase)).Halt()
	f.End()
	return b.Build()
}

// selectFixture partitions the fixture program with the given heuristic.
func selectFixture(t *testing.T, h core.Heuristic) *core.Partition {
	t.Helper()
	part, err := core.Select(fixtureProgram(), core.Options{Heuristic: h})
	if err != nil {
		t.Fatal(err)
	}
	if fs := Partition(part); fs.Errors() != 0 {
		t.Fatalf("fixture partition not clean before corruption:\n%s", fs.MinSeverity(SevError))
	}
	return part
}

// multiBlockTask returns a task with more than one member block.
func multiBlockTask(t *testing.T, part *core.Partition) *core.Task {
	t.Helper()
	for _, task := range part.Tasks {
		if len(task.Blocks) > 1 {
			return task
		}
	}
	t.Fatal("fixture has no multi-block task")
	return nil
}

// nonMember returns a reachable block outside the task.
func nonMember(t *testing.T, part *core.Partition, task *core.Task) ir.BlockID {
	t.Helper()
	f := part.Prog.Fn(task.Fn)
	for i := range f.Blocks {
		if !task.Blocks[ir.BlockID(i)] {
			return ir.BlockID(i)
		}
	}
	t.Fatal("task covers the whole function")
	return ir.NoBlock
}

// TestNegativePartitions corrupts Select output one invariant at a time and
// asserts the intended rule fires exactly once. Other rules may fire too —
// corruption has knock-on effects — but the intended rule must isolate the
// seeded defect.
func TestNegativePartitions(t *testing.T) {
	cases := []struct {
		name    string
		rule    RuleID
		sev     Severity
		corrupt func(t *testing.T, part *core.Partition)
	}{
		{
			name: "side-entry continue edge",
			rule: RuleSingleEntry,
			sev:  SevError,
			corrupt: func(t *testing.T, part *core.Partition) {
				task := multiBlockTask(t, part)
				outside := nonMember(t, part, task)
				var interior ir.BlockID = ir.NoBlock
				for b := range task.Blocks {
					if b != task.Entry {
						interior = b
					}
				}
				task.AddContinueEdge(outside, interior)
			},
		},
		{
			name: "continue edge re-enters entry",
			rule: RuleSingleEntry,
			sev:  SevError,
			corrupt: func(t *testing.T, part *core.Partition) {
				task := multiBlockTask(t, part)
				var interior ir.BlockID = ir.NoBlock
				for b := range task.Blocks {
					if b != task.Entry {
						interior = b
					}
				}
				task.AddContinueEdge(interior, task.Entry)
			},
		},
		{
			name: "disconnected member block",
			rule: RuleConnected,
			sev:  SevError,
			corrupt: func(t *testing.T, part *core.Partition) {
				task := multiBlockTask(t, part)
				task.Blocks[nonMember(t, part, task)] = true
			},
		},
		{
			name: "overfull target list",
			rule: RuleTargetLimit,
			sev:  SevError,
			corrupt: func(t *testing.T, part *core.Partition) {
				task := multiBlockTask(t, part)
				for len(task.Targets) <= part.Opts.MaxTargets {
					task.Targets = append(task.Targets, task.Targets[0])
				}
			},
		},
		{
			name: "create-mask hole",
			rule: RuleCreateMask,
			sev:  SevError,
			corrupt: func(t *testing.T, part *core.Partition) {
				for _, task := range part.Tasks {
					if task.CreateMask != 0 {
						r := task.CreateMask.Regs()[0]
						task.CreateMask = task.CreateMask.Minus(dataflow.RegSet(0).Add(r))
						return
					}
				}
				t.Fatal("no task with a nonempty create mask")
			},
		},
		{
			name: "dead forward bit",
			rule: RuleDeadForward,
			sev:  SevWarn,
			corrupt: func(t *testing.T, part *core.Partition) {
				// R(9) is written nowhere in the fixture, so no member block
				// can have a forward point for it: claiming it in the create
				// mask leaves a bit no forwarding machinery ever serves.
				// (PT007 co-fires — the bit is also unreleased — but PT010
				// isolates the "no forward point anywhere" diagnosis.)
				task := multiBlockTask(t, part)
				task.CreateMask = task.CreateMask.Add(ir.R(9))
			},
		},
		{
			name: "target set disagrees with CFG",
			rule: RuleTargetSet,
			sev:  SevError,
			corrupt: func(t *testing.T, part *core.Partition) {
				task := multiBlockTask(t, part)
				task.Targets = task.Targets[:len(task.Targets)-1]
			},
		},
		{
			name: "include-call on a non-call block",
			rule: RuleCallInclusion,
			sev:  SevError,
			corrupt: func(t *testing.T, part *core.Partition) {
				task := part.Tasks[0]
				task.IncludeCall[task.Entry] = true
			},
		},
		{
			name: "task ID out of step with slot",
			rule: RulePartIndex,
			sev:  SevError,
			corrupt: func(t *testing.T, part *core.Partition) {
				part.Tasks[len(part.Tasks)-1].ID = 999
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			part := selectFixture(t, core.ControlFlow)
			tc.corrupt(t, part)
			fs := Partition(part)
			hits := fs.ByRule(tc.rule).MinSeverity(tc.sev)
			if len(hits) != 1 {
				t.Errorf("rule %s fired %d times, want exactly 1; all findings:\n%s",
					tc.rule, len(hits), fs)
			}
		})
	}
}

// TestNegativeCoverage removes a basic-block task and asserts PT001 flags
// the orphaned block exactly once.
func TestNegativeCoverage(t *testing.T) {
	part := selectFixture(t, core.BasicBlock)
	victim := part.Tasks[len(part.Tasks)-1]
	// Only drop a task whose block no other task covers, and keep IDs dense
	// so PT009 stays quiet about slots.
	part.Tasks = part.Tasks[:len(part.Tasks)-1]
	delete(part.ByEntry, core.EntryKey{Fn: victim.Fn, Blk: victim.Entry})
	fs := Partition(part)
	hits := fs.ByRule(RuleCoverage)
	if len(hits) != 1 {
		t.Errorf("PT001 fired %d times, want exactly 1; all findings:\n%s", len(hits), fs)
	}
}

// TestNegativeIRRules hand-builds programs that trip each IR-layer rule.
func TestNegativeIRRules(t *testing.T) {
	t.Run("IR000 invalid program", func(t *testing.T) {
		fs := Program(&ir.Program{Name: "empty"})
		if hits := fs.ByRule(RuleInvalidIR); len(hits) != 1 || hits[0].Sev != SevError {
			t.Errorf("IR000: got %v", fs)
		}
	})
	t.Run("IR001 unreachable block", func(t *testing.T) {
		b := ir.NewBuilder("p")
		f := b.Func("main")
		f.Block("entry").MovI(ir.R(3), 1).Goto("end")
		f.Block("orphan").Goto("end")
		f.Block("end").Halt()
		f.End()
		fs := Program(b.Build())
		if hits := fs.ByRule(RuleUnreachable); len(hits) != 1 {
			t.Errorf("IR001 fired %d times, want 1:\n%s", len(hits), fs)
		}
	})
	t.Run("IR002 use before any def", func(t *testing.T) {
		b := ir.NewBuilder("p")
		f := b.Func("main")
		f.Block("entry").Add(ir.R(3), ir.R(9), ir.R(9)).Halt()
		f.End()
		fs := Program(b.Build())
		hits := fs.ByRule(RuleUndefUse)
		if len(hits) != 1 || hits[0].Sev != SevWarn {
			t.Errorf("IR002: got:\n%s", fs)
		}
	})
	t.Run("IR003 dead store", func(t *testing.T) {
		b := ir.NewBuilder("p")
		f := b.Func("main")
		f.Block("entry").MovI(ir.R(3), 1).MovI(ir.R(3), 2).
			Store(ir.R(3), ir.R(0), int64(ir.DataBase)).Halt()
		f.End()
		fs := Program(b.Build())
		hits := fs.ByRule(RuleDeadStore).MinSeverity(SevWarn)
		if len(hits) != 1 {
			t.Errorf("IR003 fired %d times at warn, want 1:\n%s", len(hits), fs)
		}
	})
	t.Run("IR004 undefined branch condition", func(t *testing.T) {
		b := ir.NewBuilder("p")
		f := b.Func("main")
		f.Block("entry").MovI(ir.R(3), 1).Br(ir.R(9), "a", "b")
		f.Block("a").Halt()
		f.Block("b").Halt()
		f.End()
		fs := Program(b.Build())
		if hits := fs.ByRule(RuleUndefBranch); len(hits) != 1 {
			t.Errorf("IR004 fired %d times, want 1:\n%s", len(hits), fs)
		}
	})
	t.Run("IR005 recursion report", func(t *testing.T) {
		b := ir.NewBuilder("p")
		self := b.DeclareFn("worker")
		w := b.Func("worker")
		w.Block("entry").MovI(ir.R(3), 1).Call(self, "out")
		w.Block("out").Ret()
		w.End()
		m := b.Func("main")
		m.Block("entry").Call(self, "done")
		m.Block("done").Halt()
		m.End()
		fs := Program(b.Build())
		hits := fs.ByRule(RuleRecursiveCall)
		if len(hits) != 1 || hits[0].Sev != SevInfo {
			t.Errorf("IR005: got:\n%s", fs)
		}
	})
}
