package verify

import (
	"fmt"
	"sort"
	"strings"

	"multiscalar/internal/ir"
)

// Severity grades a finding. Only SevError findings indicate a partition the
// Multiscalar hardware could mis-execute; warnings flag suspicious but
// recoverable shapes, and infos are advisory reports.
type Severity uint8

// Severities, most severe last so they order naturally.
const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

// String names the severity as mslint prints it.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// RuleID names one rule of the catalog. IRxxx rules check the program alone;
// PTxxx rules check a partition against its program. The catalog (with the
// paper invariant each rule encodes) is documented in DESIGN.md §7.
type RuleID string

// The rule catalog.
const (
	// IR layer.
	RuleInvalidIR     RuleID = "IR000" // ir.Validate rejected the program
	RuleUnreachable   RuleID = "IR001" // block unreachable from function entry
	RuleUndefUse      RuleID = "IR002" // register read with no definition on any path
	RuleDeadStore     RuleID = "IR003" // definition that no execution can observe
	RuleUndefBranch   RuleID = "IR004" // branch condition never defined on any path
	RuleRecursiveCall RuleID = "IR005" // call-graph cycle (recursion depth report)

	// Partition layer.
	RuleCoverage      RuleID = "PT001" // reachable block belongs to no task
	RuleConnected     RuleID = "PT002" // task member unreachable from the task entry
	RuleSingleEntry   RuleID = "PT003" // side entrance / entry re-entry via continue edges
	RuleTargetLimit   RuleID = "PT004" // more targets than the hardware tracks
	RuleTargetSet     RuleID = "PT005" // Targets disagree with the CFG exit-edge successors
	RuleCreateMask    RuleID = "PT006" // create mask misses a live register the task may write
	RuleForwardPoint  RuleID = "PT007" // forward point unsound or register never released
	RuleCallInclusion RuleID = "PT008" // IncludeCall / FnIncluded inconsistency
	RulePartIndex     RuleID = "PT009" // task index / target-task existence broken
	RuleDeadForward   RuleID = "PT010" // create-mask register with no forward point anywhere (dead mask bit)
)

// Finding is one rule violation (or report) at a location.
type Finding struct {
	Rule RuleID
	Sev  Severity

	// Fn and Blk locate the finding; Blk is ir.NoBlock for function- or
	// program-level findings. FnName is carried for printing.
	Fn     ir.FnID
	FnName string
	Blk    ir.BlockID

	// Task is the ID of the offending task, or -1 for IR-layer findings.
	Task int

	Msg string
}

// String renders the finding on one line, mslint's output format.
func (f Finding) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s", f.Sev, f.Rule)
	if f.Task >= 0 {
		fmt.Fprintf(&sb, " task %d", f.Task)
	}
	if f.FnName != "" {
		fmt.Fprintf(&sb, " fn %s", f.FnName)
	}
	if f.Blk != ir.NoBlock {
		fmt.Fprintf(&sb, " b%d", f.Blk)
	}
	sb.WriteString(": ")
	sb.WriteString(f.Msg)
	return sb.String()
}

// Findings is an ordered list of findings.
type Findings []Finding

// Sort orders findings deterministically: errors first, then by rule, task,
// function, block, and message — so repeated runs and golden tests see one
// canonical order.
func (fs Findings) Sort() {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Sev != b.Sev {
			return a.Sev > b.Sev
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Blk != b.Blk {
			return a.Blk < b.Blk
		}
		return a.Msg < b.Msg
	})
}

// Errors returns the number of error-severity findings.
func (fs Findings) Errors() int { return fs.countSev(SevError) }

// Warnings returns the number of warning-severity findings.
func (fs Findings) Warnings() int { return fs.countSev(SevWarn) }

func (fs Findings) countSev(s Severity) int {
	n := 0
	for _, f := range fs {
		if f.Sev == s {
			n++
		}
	}
	return n
}

// ByRule returns the findings for one rule, preserving order.
func (fs Findings) ByRule(r RuleID) Findings {
	var out Findings
	for _, f := range fs {
		if f.Rule == r {
			out = append(out, f)
		}
	}
	return out
}

// MinSeverity returns the findings at or above the given severity.
func (fs Findings) MinSeverity(s Severity) Findings {
	var out Findings
	for _, f := range fs {
		if f.Sev >= s {
			out = append(out, f)
		}
	}
	return out
}

// String renders one finding per line.
func (fs Findings) String() string {
	var sb strings.Builder
	for _, f := range fs {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
