package verify

import (
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/progtest"
)

// FuzzVerifyPartition feeds generated programs through the full selection
// pipeline and asserts the verifier neither panics nor finds error-severity
// violations in anything Select produces — the same contract the workload
// oracle checks, over an open-ended program space.
func FuzzVerifyPartition(f *testing.F) {
	f.Add(int64(0), byte(0), false)
	f.Add(int64(1), byte(1), true)
	f.Add(int64(42), byte(2), true)
	f.Add(int64(-7), byte(5), false)
	f.Fuzz(func(t *testing.T, seed int64, heur byte, tasksize bool) {
		prog := progtest.Generate(seed)
		h := []core.Heuristic{core.BasicBlock, core.ControlFlow, core.DataDependence}[int(heur)%3]
		part, err := core.Select(prog, core.Options{Heuristic: h, TaskSize: tasksize})
		if err != nil {
			t.Fatalf("Select: %v", err)
		}
		fs := Partition(part)
		if n := fs.Errors(); n != 0 {
			t.Errorf("seed %d %v/ts=%v: %d error findings:\n%s",
				seed, h, tasksize, n, fs.MinSeverity(SevError))
		}
	})
}
