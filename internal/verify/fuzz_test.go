package verify

import (
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/gen"
	_ "multiscalar/internal/policy" // register the policy zoo
	"multiscalar/internal/progtest"
)

// FuzzVerifyPartition feeds generated programs through the full selection
// pipeline and asserts the verifier neither panics nor finds error-severity
// violations in anything Select produces — the same contract the workload
// oracle checks, over an open-ended program space.
//
// Two generators feed the fuzzer: the lightweight progtest generator
// (useGen=false) and the full parameter-swept internal/gen generator
// (useGen=true, params derived from the seed via gen.CorpusParams). The
// arm byte selects the growth strategy: 0–2 the paper heuristics, 3–5 the
// policy zoo. The checked-in corpus under testdata/fuzz pins one input per
// generator×strategy family.
func FuzzVerifyPartition(f *testing.F) {
	f.Add(int64(0), byte(0), false, false)
	f.Add(int64(1), byte(1), true, false)
	f.Add(int64(42), byte(2), true, true)
	f.Add(int64(-7), byte(5), false, true)
	f.Add(int64(13), byte(3), false, true)
	f.Add(int64(99), byte(4), true, false)
	f.Fuzz(func(t *testing.T, seed int64, arm byte, tasksize bool, useGen bool) {
		prog := progtest.Generate(seed)
		if useGen {
			prog = gen.Generate(gen.CorpusParams(seed, int(arm)))
		}
		opts := core.Options{TaskSize: tasksize}
		switch arm % 6 {
		case 0:
			opts.Heuristic = core.BasicBlock
		case 1:
			opts.Heuristic = core.ControlFlow
		case 2:
			opts.Heuristic = core.DataDependence
		case 3:
			opts.Policy = "greedy"
		case 4:
			opts.Policy = "roundrobin"
		case 5:
			opts.Policy = "knapsack"
		}
		part, err := core.Select(prog, opts)
		if err != nil {
			t.Fatalf("Select: %v", err)
		}
		fs := Partition(part)
		if n := fs.Errors(); n != 0 {
			t.Errorf("seed %d arm %d ts=%v gen=%v: %d error findings:\n%s",
				seed, arm, tasksize, useGen, n, fs.MinSeverity(SevError))
		}
	})
}
