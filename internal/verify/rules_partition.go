package verify

import (
	"multiscalar/internal/core"
	"multiscalar/internal/dataflow"
	"multiscalar/internal/ir"
)

// checkPartition runs the partition-layer rules (PT001–PT010) against the
// recomputed per-function analyses.
func (c *checker) checkPartition() {
	c.checkPartIndex()
	c.checkCoverage()
	c.checkCallInclusion()
	for _, t := range c.part.Tasks {
		v := c.viewTask(t)
		c.checkTaskShape(v)
		c.checkTargets(v)
		c.checkRegComm(v)
	}
}

// maxTargets returns the hardware target limit the partition was built for
// (hand-built partitions may carry a zero Options; fall back to the paper's
// N=4).
func (c *checker) maxTargets() int {
	if n := c.part.Opts.MaxTargets; n > 0 {
		return n
	}
	return 4
}

// checkPartIndex (PT009) verifies the partition's own bookkeeping: dense
// task IDs, a mutually consistent ByEntry index, entries that are members,
// and — so the sequencer can always continue — a task at every block target,
// at every non-included callee's entry, and at every post-call resume block.
func (c *checker) checkPartIndex() {
	p := c.part
	for i, t := range p.Tasks {
		if t.ID != i {
			c.report(RulePartIndex, SevError, t.Fn, ir.NoBlock, t.ID,
				"task ID %d does not match its slot %d", t.ID, i)
		}
		if !t.Blocks[t.Entry] {
			c.report(RulePartIndex, SevError, t.Fn, t.Entry, t.ID,
				"task does not contain its own entry block")
		}
		if got := p.TaskAt(t.Fn, t.Entry); got != t {
			c.report(RulePartIndex, SevError, t.Fn, t.Entry, t.ID,
				"ByEntry does not index the task at its entry")
		}
	}
	for key, t := range p.ByEntry {
		if t == nil || t.Fn != key.Fn || t.Entry != key.Blk {
			id := -1
			if t != nil {
				id = t.ID
			}
			c.report(RulePartIndex, SevError, key.Fn, key.Blk, id,
				"ByEntry key (fn %d, b%d) indexes a task with a different entry", key.Fn, key.Blk)
		}
	}
	for _, t := range p.Tasks {
		for _, tgt := range t.Targets {
			switch tgt.Kind {
			case core.TargetBlock:
				if p.TaskAt(t.Fn, tgt.Blk) == nil {
					c.report(RulePartIndex, SevError, t.Fn, tgt.Blk, t.ID,
						"block target b%d starts no task; the sequencer cannot continue there", tgt.Blk)
				}
			case core.TargetCall:
				callee := c.prog.Fn(tgt.Fn)
				if p.TaskAt(tgt.Fn, callee.Entry) == nil {
					c.report(RulePartIndex, SevError, tgt.Fn, callee.Entry, t.ID,
						"call target fn %s has no task at its entry", callee.Name)
				}
			}
		}
		// A non-included call returns into the fall block, which therefore
		// must start a task of its own.
		f := c.prog.Fn(t.Fn)
		for _, b := range sortedBlockIDs(t.Blocks) {
			blk := f.Block(b)
			if blk.Term.Kind == ir.TermCall && !t.IncludeCall[b] && p.TaskAt(t.Fn, blk.Term.Fall) == nil {
				c.report(RulePartIndex, SevError, t.Fn, blk.Term.Fall, t.ID,
					"post-call resume block b%d starts no task", blk.Term.Fall)
			}
		}
	}
}

// checkCoverage (PT001) verifies every reachable block of every function
// that starts tasks belongs to at least one task — the paper's requirement
// that tasks partition (with overlap) the whole CFG, so sequencing can never
// fall off the task map.
func (c *checker) checkCoverage() {
	covered := make(map[core.EntryKey]bool)
	for _, t := range c.part.Tasks {
		for b := range t.Blocks {
			covered[core.EntryKey{Fn: t.Fn, Blk: b}] = true
		}
	}
	for i, f := range c.prog.Fns {
		fn := ir.FnID(i)
		if int(fn) < len(c.part.FnIncluded) && c.part.FnIncluded[fn] {
			continue // executes only inside including tasks
		}
		fa := c.fns[fn]
		for b := range f.Blocks {
			if fa.g.DFSNum[b] < 0 {
				continue // unreachable; IR001 already reports it
			}
			if !covered[core.EntryKey{Fn: fn, Blk: ir.BlockID(b)}] {
				c.report(RuleCoverage, SevError, fn, ir.BlockID(b), -1,
					"reachable block belongs to no task")
			}
		}
	}
}

// checkCallInclusion (PT008) verifies the CALL_THRESH bookkeeping:
// IncludeCall only marks member call blocks (never self-recursive ones), and
// a fully-included function neither starts tasks nor appears as a call
// target — while every call to it from inside a task must be included.
func (c *checker) checkCallInclusion() {
	p := c.part
	for _, t := range p.Tasks {
		f := c.prog.Fn(t.Fn)
		for _, b := range sortedBlockIDs(t.IncludeCall) {
			if !t.Blocks[b] {
				c.report(RuleCallInclusion, SevError, t.Fn, b, t.ID,
					"IncludeCall marks b%d which is not a member block", b)
				continue
			}
			blk := f.Block(b)
			if blk.Term.Kind != ir.TermCall {
				c.report(RuleCallInclusion, SevError, t.Fn, b, t.ID,
					"IncludeCall marks b%d whose terminator is %s, not a call", b, blk.Term.Kind)
				continue
			}
			if blk.Term.Callee == t.Fn {
				c.report(RuleCallInclusion, SevError, t.Fn, b, t.ID,
					"IncludeCall marks a self-recursive call; inclusion would never terminate")
			}
		}
	}
	for i, inc := range p.FnIncluded {
		if !inc {
			continue
		}
		fn := ir.FnID(i)
		if fn == c.prog.Main {
			c.report(RuleCallInclusion, SevError, fn, ir.NoBlock, -1,
				"main cannot be a fully-included function")
		}
		for _, t := range p.Tasks {
			if t.Fn == fn {
				c.report(RuleCallInclusion, SevError, fn, t.Entry, t.ID,
					"fully-included function starts a task")
			}
			for _, tgt := range t.Targets {
				if tgt.Kind == core.TargetCall && tgt.Fn == fn {
					c.report(RuleCallInclusion, SevError, t.Fn, ir.NoBlock, t.ID,
						"task targets a call to fully-included function %s", c.prog.Fn(fn).Name)
				}
			}
			f := c.prog.Fn(t.Fn)
			for _, b := range sortedBlockIDs(t.Blocks) {
				blk := f.Block(b)
				if blk.Term.Kind == ir.TermCall && blk.Term.Callee == fn && !t.IncludeCall[b] {
					c.report(RuleCallInclusion, SevError, t.Fn, b, t.ID,
						"call to fully-included function %s is not included here", c.prog.Fn(fn).Name)
				}
			}
		}
	}
}

// checkTaskShape verifies the paper's structural task definition (§2): a
// task is a connected (PT002), single-entry (PT003) subgraph of the CFG.
// Connectivity is judged along continue edges — the edges an instance
// entered at Entry actually executes — and single entry means no continue
// edge re-enters the entry or crosses the membership boundary.
func (c *checker) checkTaskShape(v *taskView) {
	t := v.t
	reach := v.continueReachable()
	for _, b := range v.members {
		if !reach[b] {
			c.report(RuleConnected, SevError, t.Fn, b, t.ID,
				"member block unreachable from task entry b%d via continue edges; no instance can execute it", t.Entry)
		}
	}
	for _, e := range t.ContinueEdges() {
		from, to := e[0], e[1]
		switch {
		case to == t.Entry:
			c.report(RuleSingleEntry, SevError, t.Fn, from, t.ID,
				"continue edge b%d→b%d re-enters the task entry; the instance would never end", from, to)
		case !t.Blocks[from]:
			c.report(RuleSingleEntry, SevError, t.Fn, from, t.ID,
				"continue edge b%d→b%d starts outside the task (side entrance)", from, to)
		case !t.Blocks[to]:
			c.report(RuleSingleEntry, SevError, t.Fn, to, t.ID,
				"continue edge b%d→b%d leaves the membership set", from, to)
		}
	}
	// Continue edges must also be real CFG edges that selection would keep
	// inside a task: non-terminal dynamic successor edges.
	for _, e := range t.ContinueEdges() {
		from, to := e[0], e[1]
		if !t.Blocks[from] || !t.Blocks[to] || to == t.Entry {
			continue // already reported above
		}
		real := false
		for _, s := range v.dynSuccs(from) {
			if s == to {
				real = true
			}
		}
		if !real {
			c.report(RuleSingleEntry, SevError, t.Fn, from, t.ID,
				"continue edge b%d→b%d is not a dynamic CFG edge", from, to)
		} else if v.g.g.IsTerminalEdge(from, to) || v.terminalNode(from) {
			c.report(RuleSingleEntry, SevError, t.Fn, from, t.ID,
				"continue edge b%d→b%d crosses a terminal edge or leaves a terminal node; the hardware ends the task there", from, to)
		}
	}
}

// checkTargets verifies the target list against the hardware limit (PT004)
// and against the successor set the membership actually implies (PT005) —
// paper §2's "number of targets ≤ what the hardware tracks" and the
// requirement that the sequencer's static target list agree with every
// dynamic exit the task can take.
func (c *checker) checkTargets(v *taskView) {
	t := v.t
	limit := c.maxTargets()
	if n := len(t.Targets); n > limit {
		sev := SevError
		if len(t.Blocks) == 1 {
			// A single block cannot be split further; the selector may keep
			// it with a truncated prediction list.
			sev = SevWarn
		}
		c.report(RuleTargetLimit, sev, t.Fn, t.Entry, t.ID,
			"%d targets exceed the hardware limit of %d", n, limit)
	}
	want := v.expectedTargets()
	if targetsEqualAsSets(want, t.Targets) {
		for i := range want {
			if t.Targets[i] != want[i] {
				c.report(RuleTargetSet, SevWarn, t.Fn, t.Entry, t.ID,
					"targets %v are not in canonical order (want %v); prediction indices will not be reproducible", t.Targets, want)
				break
			}
		}
		return
	}
	c.report(RuleTargetSet, SevError, t.Fn, t.Entry, t.ID,
		"targets %v disagree with the CFG exit-edge successors %v", t.Targets, want)
}

func targetsEqualAsSets(a, b []core.Target) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[core.Target]bool, len(a))
	for _, t := range a {
		set[t] = true
	}
	for _, t := range b {
		if !set[t] {
			return false
		}
	}
	return true
}

// checkRegComm verifies the register-communication metadata (paper §2.2 and
// §4.2): the create mask covers every register the task may update that is
// live at some exit (PT006), and every forwarded register is released
// soundly — forward points are genuinely last definitions, and any
// create-mask register without a forward point on some path is end-forwarded
// (PT007). Create-mask registers with no forward point in any member block at
// all (and no end-forward) are additionally flagged as dead mask bits (PT010).
func (c *checker) checkRegComm(v *taskView) {
	t := v.t
	// Expected create mask: the union of member (and included-callee) writes,
	// filtered by liveness at the task's exits.
	var writes, exitLive dataflow.RegSet
	for _, b := range v.members {
		writes = writes.Union(v.blockDef[b])
	}
	for _, b := range v.exitBlocks() {
		exitLive = exitLive.Union(v.g.facts.Blocks[b].LiveOut)
	}
	expected := writes.Intersect(exitLive)
	if missing := expected.Minus(t.CreateMask); missing != 0 {
		c.report(RuleCreateMask, SevError, t.Fn, t.Entry, t.ID,
			"create mask %s misses %s: the task may update them and they are live at an exit, so successor PUs would read stale values",
			t.CreateMask, missing)
	}
	if phantom := t.CreateMask.Minus(writes); phantom != 0 {
		c.report(RuleCreateMask, SevWarn, t.Fn, t.Entry, t.ID,
			"create mask claims %s which the task can never write; the ring would wait on values that never arrive", phantom)
	}
	if stuck := t.EndForward().Minus(t.CreateMask); stuck != 0 {
		c.report(RuleForwardPoint, SevWarn, t.Fn, t.Entry, t.ID,
			"end-forward set %s is not contained in the create mask %s", t.EndForward(), t.CreateMask)
	}

	// Forward-point soundness: a flagged instruction must be the last
	// definition of its register on every continuation path.
	down := v.downstreamDefs()
	fwdRegs := make(map[ir.BlockID]dataflow.RegSet, len(v.members))
	for _, b := range v.members {
		blk := v.f.Block(b)
		var calleeWrites dataflow.RegSet
		if t.IncludeCall[b] {
			calleeWrites = c.fnWrites[blk.Term.Callee]
		}
		var laterInBlock dataflow.RegSet
		for i := len(blk.Instrs) - 1; i >= 0; i-- {
			if !t.ForwardsAt(b, i) {
				if d, ok := blk.Instrs[i].Def(); ok {
					laterInBlock = laterInBlock.Add(d)
				}
				continue
			}
			d, ok := blk.Instrs[i].Def()
			if !ok {
				c.report(RuleForwardPoint, SevError, t.Fn, b, t.ID,
					"instr %d (%s) is a forward point but defines no register", i, blk.Instrs[i])
				continue
			}
			switch {
			case laterInBlock.Has(d):
				c.report(RuleForwardPoint, SevError, t.Fn, b, t.ID,
					"forward point at instr %d forwards %s which the same block redefines later (stale forward)", i, d)
			case calleeWrites.Has(d):
				c.report(RuleForwardPoint, SevError, t.Fn, b, t.ID,
					"forward point at instr %d forwards %s which the included callee may rewrite (stale forward)", i, d)
			case down[b].Has(d):
				c.report(RuleForwardPoint, SevError, t.Fn, b, t.ID,
					"forward point at instr %d forwards %s which a later block on a continuation path redefines (stale forward)", i, d)
			}
			fwdRegs[b] = fwdRegs[b].Add(d)
			laterInBlock = laterInBlock.Add(d)
		}
	}

	// Release completeness: every create-mask register must either hit a
	// forward point on every path from entry to exit, or be in the
	// end-forward set (released when the task retires). Backward
	// must-analysis over the acyclic continue-edge subgraph.
	const all = ^dataflow.RegSet(0)
	mustFwd := make(map[ir.BlockID]dataflow.RegSet, len(v.members))
	for _, b := range v.members {
		mustFwd[b] = all
	}
	for changed := true; changed; {
		changed = false
		for _, b := range v.members {
			blk := v.f.Block(b)
			meet := all
			exits := false
			nOutcomes := 0
			for _, s := range blk.Succs(nil) {
				nOutcomes++
				if t.Continues(b, s) {
					meet = meet.Intersect(mustFwd[s])
				} else {
					exits = true
				}
			}
			if nOutcomes == 0 || blk.Term.Kind == ir.TermRet || blk.Term.Kind == ir.TermHalt ||
				(blk.Term.Kind == ir.TermCall && !t.IncludeCall[b]) {
				exits = true
			}
			if exits {
				meet = 0
			}
			nv := fwdRegs[b].Union(meet)
			if nv != mustFwd[b] {
				mustFwd[b] = nv
				changed = true
			}
		}
	}
	if unreleased := t.CreateMask.Minus(t.EndForward()).Minus(mustFwd[t.Entry]); unreleased != 0 {
		c.report(RuleForwardPoint, SevError, t.Fn, t.Entry, t.ID,
			"create-mask registers %s reach a task exit on some path with no forward point and are not end-forwarded; successor PUs would deadlock waiting for them",
			unreleased)
	}

	// Dead forward bits (PT010): a create-mask register that is not
	// end-forwarded and has a forward point in no member block at all. PT007
	// above already errors that such a register is unreleased; the sharper
	// diagnosis here is that the forwarding machinery for the bit does not
	// exist anywhere in the task — usually an over-approximated mask whose
	// bit should be dropped (or end-forwarded), not a misplaced forward
	// point, which PT007 alone reports when at least one path forwards it.
	var fwdAll dataflow.RegSet
	for _, b := range v.members {
		fwdAll = fwdAll.Union(fwdRegs[b])
	}
	if dead := t.CreateMask.Minus(t.EndForward()).Minus(fwdAll); dead != 0 {
		c.report(RuleDeadForward, SevWarn, t.Fn, t.Entry, t.ID,
			"create-mask registers %s have no forward point in any member block and are not end-forwarded: dead mask bits the selector should release or drop",
			dead)
	}
}
