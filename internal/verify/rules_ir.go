package verify

import (
	"sort"
	"strings"

	"multiscalar/internal/dataflow"
	"multiscalar/internal/ir"
)

// checkProgram runs the IR-layer rules. IR000 gates the rest: the deeper
// analyses dereference block and function IDs freely and only run on
// structurally valid programs.
func (c *checker) checkProgram() {
	if err := ir.Validate(c.prog); err != nil {
		c.report(RuleInvalidIR, SevError, ir.NoFn, ir.NoBlock, -1, "%v", err)
		return
	}
	c.valid = true
	c.analyze()
	for _, fa := range c.fns {
		c.checkUnreachable(fa)
		c.checkUndefUses(fa)
		c.checkDeadStores(fa)
	}
	c.checkRecursion()
}

// checkUnreachable flags blocks the function entry can never reach (IR001).
// They cost code size, skew static statistics, and — because the selector
// skips them — silently hold no task.
func (c *checker) checkUnreachable(fa *fnAnalysis) {
	for b := range fa.f.Blocks {
		if fa.g.DFSNum[b] < 0 {
			c.report(RuleUnreachable, SevWarn, fa.f.ID, ir.BlockID(b), -1,
				"block unreachable from function entry")
		}
	}
}

// checkUndefUses flags reads of registers that no path from the function
// entry ever defines (IR002), and branch conditions with the same property
// (IR004). The machine reads such registers as zero (or as whatever the
// caller left there), which is almost always an authoring bug in main but
// may be a calling convention in helpers — hence the severity split.
func (c *checker) checkUndefUses(fa *fnAnalysis) {
	sev := SevInfo
	if fa.f.ID == c.prog.Main {
		sev = SevWarn
	}
	var scratch [2]ir.Reg
	for bi, blk := range fa.f.Blocks {
		b := ir.BlockID(bi)
		if fa.g.DFSNum[b] < 0 {
			continue
		}
		defined := fa.mayDefIn[b]
		undef := make(map[ir.Reg]bool)
		for _, in := range blk.Instrs {
			for _, r := range in.Uses(scratch[:0]) {
				if r != ir.RegZero && !defined.Has(r) {
					undef[r] = true
				}
			}
			if d, ok := in.Def(); ok {
				defined = defined.Add(d)
			}
		}
		if len(undef) > 0 {
			c.report(RuleUndefUse, sev, fa.f.ID, b, -1,
				"registers %s read but never defined on any path from entry", regList(undef))
		}
		if blk.Term.Kind == ir.TermBr {
			if cond := blk.Term.Cond; cond != ir.RegZero && !defined.Has(cond) {
				c.report(RuleUndefBranch, sev, fa.f.ID, b, -1,
					"branch condition %s never defined on any path from entry (branch always falls through)", cond)
			}
		}
	}
}

// checkDeadStores flags definitions no execution can observe (IR003): a
// register written and then rewritten in the same block with no intervening
// read, or written in a block's final definition while dead on every block
// exit. Liveness here is the same conservative solution the selector's
// dead-register filtering uses (calls and returns keep everything live), so
// a dead verdict is trustworthy.
func (c *checker) checkDeadStores(fa *fnAnalysis) {
	var scratch [2]ir.Reg
	for bi, blk := range fa.f.Blocks {
		b := ir.BlockID(bi)
		if fa.g.DFSNum[b] < 0 {
			continue
		}
		// liveBelow[i]: registers read at or after instruction i+1 within the
		// block, or live out of the block.
		live := fa.facts.Blocks[b].LiveOut
		if blk.Term.Kind == ir.TermBr {
			live = live.Add(blk.Term.Cond)
		}
		lastWrite := make(map[ir.Reg]int) // reg -> instr index of pending write
		var within, atExit []int
		for i := len(blk.Instrs) - 1; i >= 0; i-- {
			in := blk.Instrs[i]
			if d, ok := in.Def(); ok {
				if !live.Has(d) {
					if _, shadowed := lastWrite[d]; shadowed {
						within = append(within, i)
					} else {
						atExit = append(atExit, i)
					}
				}
				lastWrite[d] = i
				live = live.Minus(dataflow.RegSet(0).Add(d))
			}
			for _, r := range in.Uses(scratch[:0]) {
				live = live.Add(r)
				delete(lastWrite, r)
			}
		}
		sort.Ints(within)
		sort.Ints(atExit)
		for _, i := range within {
			d, _ := blk.Instrs[i].Def()
			c.report(RuleDeadStore, SevWarn, fa.f.ID, b, -1,
				"instr %d: %s is overwritten before any read (dead store to %s)", i, blk.Instrs[i], d)
		}
		for _, i := range atExit {
			d, _ := blk.Instrs[i].Def()
			c.report(RuleDeadStore, SevInfo, fa.f.ID, b, -1,
				"instr %d: %s defines %s which is dead on every block exit", i, blk.Instrs[i], d)
		}
	}
}

// checkRecursion reports call-graph cycles and, for recursive functions, the
// fact that CALL_THRESH inclusion can never treat them as inlineable (IR005).
// Pure report: the selector and hardware handle recursion via return targets.
func (c *checker) checkRecursion() {
	n := len(c.prog.Fns)
	callees := make([][]ir.FnID, n)
	for i, f := range c.prog.Fns {
		seen := make(map[ir.FnID]bool)
		for _, b := range f.Blocks {
			if b.Term.Kind == ir.TermCall && !seen[b.Term.Callee] {
				seen[b.Term.Callee] = true
				callees[i] = append(callees[i], b.Term.Callee)
			}
		}
		sort.Slice(callees[i], func(a, b int) bool { return callees[i][a] < callees[i][b] })
	}
	// Colour DFS from every root: white 0, grey 1, black 2. A grey→grey edge
	// closes a cycle; report it once, rooted at its smallest function ID.
	colour := make([]uint8, n)
	var stack []ir.FnID
	reported := make(map[ir.FnID]bool)
	var walk func(f ir.FnID)
	walk = func(f ir.FnID) {
		colour[f] = 1
		stack = append(stack, f)
		for _, callee := range callees[f] {
			switch colour[callee] {
			case 0:
				walk(callee)
			case 1:
				// stack from callee onward is the cycle.
				start := 0
				for i, x := range stack {
					if x == callee {
						start = i
						break
					}
				}
				cycle := append([]ir.FnID(nil), stack[start:]...)
				root := cycle[0]
				for _, x := range cycle {
					if x < root {
						root = x
					}
				}
				if !reported[root] {
					reported[root] = true
					names := make([]string, 0, len(cycle)+1)
					for _, x := range cycle {
						names = append(names, c.prog.Fns[x].Name)
					}
					names = append(names, c.prog.Fns[callee].Name)
					c.report(RuleRecursiveCall, SevInfo, root, ir.NoBlock, -1,
						"recursive call cycle %s (depth %d); CALL_THRESH inclusion never applies to these calls",
						strings.Join(names, "→"), len(cycle))
				}
			}
		}
		stack = stack[:len(stack)-1]
		colour[f] = 2
	}
	for f := 0; f < n; f++ {
		if colour[f] == 0 {
			walk(ir.FnID(f))
		}
	}
}

// regList renders a register set map as "r3, r7, f0" in ascending order.
func regList(set map[ir.Reg]bool) string {
	regs := make([]int, 0, len(set))
	for r := range set {
		regs = append(regs, int(r))
	}
	sort.Ints(regs)
	parts := make([]string, len(regs))
	for i, r := range regs {
		parts[i] = ir.Reg(r).String()
	}
	return strings.Join(parts, ", ")
}
