package verify

import (
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/progtest"
	"multiscalar/internal/workloads"
)

// heuristics and task-size settings swept by the oracle tests — the same
// grid as the paper's Figure 5 and cmd/mslint -all.
var sweep = []struct {
	h  core.Heuristic
	ts bool
}{
	{core.BasicBlock, false},
	{core.BasicBlock, true},
	{core.ControlFlow, false},
	{core.ControlFlow, true},
	{core.DataDependence, false},
	{core.DataDependence, true},
}

// TestWorkloadPartitionsClean is the metamorphic oracle over the benchmark
// suite: every partition Select produces for every workload must verify with
// zero error-severity findings. -short checks a representative subset; the
// full grid runs in CI via `go test` and `mslint -all`.
func TestWorkloadPartitionsClean(t *testing.T) {
	names := workloads.Names()
	if testing.Short() {
		names = []string{"compress", "go", "li", "tomcatv", "fpppp"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range sweep {
				part, err := core.Select(w.Build(), core.Options{Heuristic: cfg.h, TaskSize: cfg.ts})
				if err != nil {
					t.Fatalf("%v/ts=%v: Select: %v", cfg.h, cfg.ts, err)
				}
				fs := Partition(part)
				if n := fs.Errors(); n != 0 {
					t.Errorf("%v/ts=%v: %d error findings:\n%s",
						cfg.h, cfg.ts, n, fs.MinSeverity(SevError))
				}
			}
		})
	}
}

// TestWorkloadProgramsValid runs the IR-layer rules alone over every
// workload source program: structurally valid, no error findings.
func TestWorkloadProgramsValid(t *testing.T) {
	for _, w := range workloads.All() {
		fs := Program(w.Build())
		if n := fs.Errors(); n != 0 {
			t.Errorf("%s: %d error findings:\n%s", w.Name, n, fs.MinSeverity(SevError))
		}
	}
}

// TestRandomProgramsClean drives the generator behind core's fuzz pipeline
// through the verifier: partitions of random structured programs never carry
// error findings either.
func TestRandomProgramsClean(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		prog := progtest.Generate(int64(seed))
		for _, cfg := range sweep {
			part, err := core.Select(prog, core.Options{Heuristic: cfg.h, TaskSize: cfg.ts})
			if err != nil {
				t.Fatalf("seed %d %v/ts=%v: Select: %v", seed, cfg.h, cfg.ts, err)
			}
			if fs := Partition(part); fs.Errors() != 0 {
				t.Errorf("seed %d %v/ts=%v:\n%s", seed, cfg.h, cfg.ts, fs.MinSeverity(SevError))
			}
		}
	}
}

// TestFindingsOrderDeterministic verifies the canonical ordering contract:
// two runs over the same partition produce byte-identical output.
func TestFindingsOrderDeterministic(t *testing.T) {
	w, err := workloads.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	part, err := core.Select(w.Build(), core.Options{Heuristic: core.DataDependence, TaskSize: true})
	if err != nil {
		t.Fatal(err)
	}
	a := Partition(part).String()
	b := Partition(part).String()
	if a != b {
		t.Errorf("verification output is not deterministic:\n--- first\n%s--- second\n%s", a, b)
	}
}

// TestSeverityOrderAndString pins the severity lattice the exit codes and
// filters rely on.
func TestSeverityOrderAndString(t *testing.T) {
	if !(SevInfo < SevWarn && SevWarn < SevError) {
		t.Fatal("severity order broken")
	}
	for sev, want := range map[Severity]string{SevInfo: "info", SevWarn: "warn", SevError: "error"} {
		if got := sev.String(); got != want {
			t.Errorf("Severity(%d).String() = %q, want %q", sev, got, want)
		}
	}
	f := Finding{Rule: RuleCreateMask, Sev: SevError, Fn: 0, FnName: "main", Blk: 3, Task: 7, Msg: "boom"}
	if got, want := f.String(), "error PT006 task 7 fn main b3: boom"; got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}
