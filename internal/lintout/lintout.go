// Package lintout defines the one machine-readable findings format shared
// by the repository's linters: mslint -json (semantic partition checks,
// internal/verify) and msvet -json (source contract checks,
// internal/analysis) emit the same array-of-findings document, so CI and
// editor tooling parse one schema regardless of which tool produced it.
package lintout

import (
	"encoding/json"
	"io"
)

// Finding is one linter finding.
type Finding struct {
	// Tool is the producer: "mslint" or "msvet".
	Tool string `json:"tool"`
	// Rule identifies the check: a verify rule ID ("PT010") or an msvet
	// analyzer name ("ctxflow").
	Rule string `json:"rule"`
	// Severity is "info", "warn", or "error".
	Severity string `json:"severity"`
	// Location is "file:line:col" where the tool can anchor the finding to
	// source, or a symbolic location (workload/task) where it cannot.
	Location string `json:"location"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
}

// Write emits findings as an indented JSON array. A nil or empty slice
// writes [] rather than null, so consumers always receive an array.
func Write(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}
