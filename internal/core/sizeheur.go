package core

import (
	"multiscalar/internal/cfganal"
	"multiscalar/internal/ir"
)

// ApplyTaskSize applies the task-size heuristic's code transformations to the
// program in place (callers pass a clone):
//
//   - Innermost loops whose static body is under LOOP_THRESH instructions are
//     unrolled until the body reaches the threshold, so short loop bodies
//     form adequately sized tasks.
//   - Induction-variable increments are hoisted from the loop latch to the
//     top of the header (with a compensating decrement in a new preheader),
//     so successor iterations receive induction values without waiting for
//     the previous task to end.
//
// The CALL_THRESH part of the heuristic (including short callees inside
// tasks) does not transform code; it is applied during selection. Returns
// whether anything changed.
func ApplyTaskSize(p *ir.Program, opts Options) bool {
	opts = opts.withDefaults()
	changed := false
	for _, f := range p.Fns {
		for unrollOnce(f, opts.LoopThresh) {
			changed = true
		}
	}
	if changed {
		p.Layout()
	}
	return changed
}

// RestructureLoops applies the always-on Multiscalar loop restructuring the
// paper compiles every binary with (§4.2 "loop restructuring ... and
// register communication scheduling"): induction-variable increments move to
// the top of their loops so successor tasks receive induction values without
// waiting for the predecessor to finish. It must run before any unrolling —
// an unrolled loop has one increment per iteration copy and no longer
// satisfies the single-definition hoisting condition. Returns whether
// anything changed.
func RestructureLoops(p *ir.Program) bool {
	changed := false
	for _, f := range p.Fns {
		if hoistInductions(f) {
			changed = true
		}
	}
	if changed {
		p.Layout()
	}
	return changed
}

// unrollOnce finds one innermost loop under the threshold and unrolls it,
// returning whether it did. Callers loop until fixpoint; termination is
// guaranteed because an unrolled loop's body reaches the threshold.
func unrollOnce(f *ir.Function, thresh int) bool {
	g := cfganal.Analyze(f)
	for _, l := range g.Loops {
		if hasChild(g, l) {
			continue
		}
		size := l.NumInstrs(f)
		if size >= thresh || size == 0 {
			continue
		}
		k := (thresh + size - 1) / size // total iterations in the unrolled body
		if k < 2 {
			continue
		}
		unrollLoop(f, l, k)
		return true
	}
	return false
}

func hasChild(g *cfganal.CFG, l *cfganal.Loop) bool {
	for _, other := range g.Loops {
		if other.Parent == l {
			return true
		}
	}
	return false
}

// unrollLoop replicates the loop body k-1 times. Iteration copies are chained
// through their back edges (copy i's back edge enters copy i+1's header; the
// last copy's back edge returns to the original header), and exit edges from
// every copy go to the original exit targets, preserving semantics for any
// trip count.
func unrollLoop(f *ir.Function, l *cfganal.Loop, k int) {
	// blockMap[c][orig] = BlockID of orig's copy in iteration copy c (1-based;
	// iteration 0 is the original).
	blockMap := make([]map[ir.BlockID]ir.BlockID, k)
	for c := 1; c < k; c++ {
		blockMap[c] = make(map[ir.BlockID]ir.BlockID, len(l.Blocks))
		for _, b := range l.Blocks {
			id := ir.BlockID(len(f.Blocks))
			nb := &ir.Block{ID: id, Instrs: append([]ir.Instr(nil), f.Block(b).Instrs...), Term: f.Block(b).Term}
			f.Blocks = append(f.Blocks, nb)
			blockMap[c][b] = id
		}
	}
	// retarget rewrites one terminator target for iteration copy c.
	retarget := func(c int, t ir.BlockID) ir.BlockID {
		if !l.Contains(t) {
			return t // exit edge: original target
		}
		if t == l.Header {
			// Back edge: next iteration copy, wrapping to the original.
			next := (c + 1) % k
			if next == 0 {
				return l.Header
			}
			return blockMap[next][l.Header]
		}
		if c == 0 {
			return t
		}
		return blockMap[c][t]
	}
	for c := 0; c < k; c++ {
		for _, b := range l.Blocks {
			var blk *ir.Block
			if c == 0 {
				blk = f.Block(b)
			} else {
				blk = f.Block(blockMap[c][b])
			}
			switch blk.Term.Kind {
			case ir.TermGoto:
				blk.Term.Taken = retarget(c, blk.Term.Taken)
			case ir.TermBr:
				blk.Term.Taken = retarget(c, blk.Term.Taken)
				blk.Term.Fall = retarget(c, blk.Term.Fall)
			case ir.TermCall:
				blk.Term.Fall = retarget(c, blk.Term.Fall)
			}
		}
	}
}

// hoistInductions applies the paper's induction-variable scheduling ("we move
// the induction variable increments to the top of the loops so that later
// iterations get the values of the induction variables from earlier
// iterations without any delay"). For each loop with a single latch ending in
// an unconditional jump to the header, an increment `addi r, r, c` in the
// latch — where r has no other definition in the loop and no use after the
// increment inside the latch — is moved to the front of the header, with a
// compensating `addi r, r, -c` in a fresh preheader. The net value of r at
// every original observation point is unchanged.
func hoistInductions(f *ir.Function) bool {
	changed := false
	for {
		g := cfganal.Analyze(f)
		hoisted := false
		for _, l := range g.Loops {
			if len(l.Latches) != 1 {
				continue
			}
			latch := f.Block(l.Latches[0])
			if latch.Term.Kind != ir.TermGoto || latch.Term.Taken != l.Header {
				continue
			}
			idx := findInduction(f, l, latch)
			if idx < 0 {
				continue
			}
			inc := latch.Instrs[idx]
			// Remove from latch, prepend to header.
			latch.Instrs = append(latch.Instrs[:idx], latch.Instrs[idx+1:]...)
			header := f.Block(l.Header)
			header.Instrs = append([]ir.Instr{inc}, header.Instrs...)
			insertPreheader(f, g, l, ir.Instr{Op: ir.OpAddI, Dst: inc.Dst, Src1: inc.Src1, Imm: -inc.Imm})
			changed = true
			hoisted = true
			break // CFG changed; re-analyze
		}
		if !hoisted {
			return changed
		}
	}
}

// findInduction returns the index in the latch of a hoistable increment, or
// -1. See hoistInductions for the conditions.
func findInduction(f *ir.Function, l *cfganal.Loop, latch *ir.Block) int {
	defCount := make(map[ir.Reg]int)
	for _, b := range l.Blocks {
		for _, in := range f.Block(b).Instrs {
			if d, ok := in.Def(); ok {
				defCount[d]++
			}
		}
		if t := f.Block(b); t.Term.Kind == ir.TermCall {
			return -1 // calls inside the loop may write anything
		}
	}
	var scratch [2]ir.Reg
	for i, in := range latch.Instrs {
		if in.Op != ir.OpAddI || in.Dst != in.Src1 || in.Dst == ir.RegZero {
			continue
		}
		if defCount[in.Dst] != 1 {
			continue
		}
		usedAfter := false
		for _, later := range latch.Instrs[i+1:] {
			for _, u := range later.Uses(scratch[:0]) {
				if u == in.Dst {
					usedAfter = true
				}
			}
			if d, ok := later.Def(); ok && d == in.Dst {
				usedAfter = true // shadowing def would double-count
			}
		}
		if usedAfter {
			continue
		}
		return i
	}
	return -1
}

// insertPreheader creates a block holding the compensating instruction and
// redirects every loop entry edge (and the function entry, if the header is
// the entry) through it.
func insertPreheader(f *ir.Function, g *cfganal.CFG, l *cfganal.Loop, comp ir.Instr) {
	pre := &ir.Block{
		ID:     ir.BlockID(len(f.Blocks)),
		Instrs: []ir.Instr{comp},
		Term:   ir.Terminator{Kind: ir.TermGoto, Taken: l.Header},
	}
	f.Blocks = append(f.Blocks, pre)
	for _, p := range g.Preds[l.Header] {
		if l.Contains(p) {
			continue // back edge stays on the header
		}
		blk := f.Block(p)
		switch blk.Term.Kind {
		case ir.TermGoto:
			if blk.Term.Taken == l.Header {
				blk.Term.Taken = pre.ID
			}
		case ir.TermBr:
			if blk.Term.Taken == l.Header {
				blk.Term.Taken = pre.ID
			}
			if blk.Term.Fall == l.Header {
				blk.Term.Fall = pre.ID
			}
		case ir.TermCall:
			if blk.Term.Fall == l.Header {
				blk.Term.Fall = pre.ID
			}
		}
	}
	if f.Entry == l.Header {
		f.Entry = pre.ID
	}
}
