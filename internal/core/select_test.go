package core

import (
	"testing"

	"multiscalar/internal/emu"
	"multiscalar/internal/ir"
)

// loopProg: a counted loop with a small body plus an exit store.
func loopProg(t testing.TB) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("loop")
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 0).MovI(ir.R(4), 0).MovI(ir.R(8), int64(out)).Goto("head")
	f.Block("head").SltI(ir.R(5), ir.R(3), 20).Br(ir.R(5), "body", "exit")
	f.Block("body").Add(ir.R(4), ir.R(4), ir.R(3)).AddI(ir.R(3), ir.R(3), 1).Goto("head")
	f.Block("exit").Store(ir.R(4), ir.R(8), 0).Halt()
	f.End()
	return b.Build()
}

// diamondProg: entry -> branchy diamond -> join -> halt (no loops).
func diamondProg(t testing.TB) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("diamond")
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 5).MovI(ir.R(6), 1).Br(ir.R(6), "left", "right")
	f.Block("left").AddI(ir.R(4), ir.R(3), 100).Goto("join")
	f.Block("right").AddI(ir.R(4), ir.R(3), 200).Goto("join")
	f.Block("join").Add(ir.R(5), ir.R(4), ir.R(3)).Halt()
	f.End()
	return b.Build()
}

// callProg: main calls tiny helper in a loop (helper is includable).
func callProg(t testing.TB) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("calls")
	tiny := b.DeclareFn("tiny")
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 0).Goto("head")
	f.Block("head").SltI(ir.R(5), ir.R(3), 8).Br(ir.R(5), "body", "exit")
	f.Block("body").Mov(ir.RegArg0, ir.R(3)).Call(tiny, "cont")
	f.Block("cont").Add(ir.R(7), ir.R(7), ir.RegRV).AddI(ir.R(3), ir.R(3), 1).Goto("head")
	f.Block("exit").Halt()
	f.End()
	g := b.Func("tiny")
	g.Block("entry").AddI(ir.RegRV, ir.RegArg0, 1).Ret()
	g.End()
	return b.Build()
}

func mustSelect(t testing.TB, p *ir.Program, opts Options) *Partition {
	t.Helper()
	part, err := Select(p, opts)
	if err != nil {
		t.Fatalf("Select(%v): %v", opts.Heuristic, err)
	}
	return part
}

func TestBasicBlockTasksOnePerBlock(t *testing.T) {
	p := loopProg(t)
	part := mustSelect(t, p, Options{Heuristic: BasicBlock})
	// Loop restructuring adds a preheader block, so 4 source blocks
	// partition into 5 basic-block tasks.
	if len(part.Tasks) != 5 {
		t.Fatalf("tasks = %d, want 5", len(part.Tasks))
	}
	for _, task := range part.Tasks {
		if len(task.Blocks) != 1 {
			t.Errorf("task %d has %d blocks", task.ID, len(task.Blocks))
		}
		if task.NumTargets() > 2 {
			t.Errorf("basic block task %d has %d targets", task.ID, task.NumTargets())
		}
	}
}

func TestControlFlowTasksMergeDiamond(t *testing.T) {
	p := diamondProg(t)
	part := mustSelect(t, p, Options{Heuristic: ControlFlow})
	// The whole acyclic diamond should fold into one task ending at halt.
	entry := part.EntryTask()
	if entry == nil {
		t.Fatal("no entry task")
	}
	if len(entry.Blocks) != 4 {
		t.Errorf("entry task blocks = %d, want 4 (diamond folded)", len(entry.Blocks))
	}
	if entry.NumTargets() != 1 || entry.Targets[0].Kind != TargetHalt {
		t.Errorf("targets = %v, want [halt]", entry.Targets)
	}
}

func TestControlFlowTargetLimit(t *testing.T) {
	// A block fanning out to many terminal-ish paths: verify the feasible
	// task respects MaxTargets = 2.
	b := ir.NewBuilder("fan")
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 1).Br(ir.R(3), "a", "b")
	f.Block("a").MovI(ir.R(4), 1).Br(ir.R(4), "c", "d")
	f.Block("b").MovI(ir.R(5), 2).Goto("e")
	f.Block("c").Nop().Goto("end")
	f.Block("d").Nop().Goto("end")
	f.Block("e").Nop().Goto("end")
	f.Block("end").Halt()
	f.End()
	p := b.Build()
	part := mustSelect(t, p, Options{Heuristic: ControlFlow, MaxTargets: 2})
	for _, task := range part.Tasks {
		if got := task.NumTargets(); got > 2 {
			t.Errorf("task %d (entry b%d) has %d targets > limit 2: %v",
				task.ID, task.Entry, got, task.Targets)
		}
	}
}

func TestLoopBodySingleTaskPerIteration(t *testing.T) {
	p := loopProg(t)
	part := mustSelect(t, p, Options{Heuristic: ControlFlow})
	// head must start a task (loop entry edge + back edge both terminal).
	head := part.TaskAt(0, 1)
	if head == nil {
		t.Fatal("no task at loop head")
	}
	// The head task should absorb the body (head->body edge is not terminal)
	// but end at the back edge.
	if !head.Blocks[2] {
		t.Errorf("head task does not include body: %v", head.Blocks)
	}
	if head.Continues(2, 1) {
		t.Error("back edge marked as continue")
	}
	hasSelf := false
	for _, tgt := range head.Targets {
		if tgt.Kind == TargetBlock && tgt.Blk == 1 {
			hasSelf = true
		}
	}
	if !hasSelf {
		t.Errorf("loop task targets %v missing self re-entry", head.Targets)
	}
}

func TestEveryTargetHasATask(t *testing.T) {
	for _, h := range []Heuristic{BasicBlock, ControlFlow, DataDependence} {
		for _, prog := range []*ir.Program{loopProg(t), diamondProg(t), callProg(t)} {
			part := mustSelect(t, prog, Options{Heuristic: h})
			for _, task := range part.Tasks {
				for _, tgt := range task.Targets {
					switch tgt.Kind {
					case TargetBlock:
						if part.TaskAt(task.Fn, tgt.Blk) == nil {
							t.Errorf("%v/%s: task %d target %v has no task", h, prog.Name, task.ID, tgt)
						}
					case TargetCall:
						callee := part.Prog.Fn(tgt.Fn)
						if part.TaskAt(tgt.Fn, callee.Entry) == nil {
							t.Errorf("%v/%s: callee fn%d entry has no task", h, prog.Name, tgt.Fn)
						}
					}
				}
			}
		}
	}
}

func TestCallInclusionUnderThreshold(t *testing.T) {
	p := callProg(t)
	part := mustSelect(t, p, Options{Heuristic: ControlFlow, TaskSize: true})
	// tiny is 2 instructions, far below CALL_THRESH: every call site included.
	foundInclusion := false
	for _, task := range part.Tasks {
		for range task.IncludeCall {
			foundInclusion = true
		}
	}
	if !foundInclusion {
		t.Error("no call inclusion despite tiny callee")
	}
	tinyFn := part.Prog.FnByName("tiny")
	if !part.FnIncluded[tinyFn.ID] {
		t.Error("tiny not marked fully included")
	}
}

func TestNoInclusionWithoutTaskSize(t *testing.T) {
	p := callProg(t)
	part := mustSelect(t, p, Options{Heuristic: ControlFlow, TaskSize: false})
	for _, task := range part.Tasks {
		if len(task.IncludeCall) != 0 {
			t.Error("call inclusion without task-size heuristic")
		}
	}
}

func TestWalkTasksCoversWholeExecution(t *testing.T) {
	for _, h := range []Heuristic{BasicBlock, ControlFlow, DataDependence} {
		for _, taskSize := range []bool{false, true} {
			for _, prog := range []*ir.Program{loopProg(t), diamondProg(t), callProg(t)} {
				part := mustSelect(t, prog, Options{Heuristic: h, TaskSize: taskSize})
				var total, tasks int
				err := WalkTasks(part, 1_000_000, func(te TaskExec) {
					total += te.DynInstrs
					tasks++
					if te.DynInstrs <= 0 {
						t.Errorf("%v ts=%v %s: empty task instance", h, taskSize, prog.Name)
					}
				})
				if err != nil {
					t.Fatalf("%v ts=%v %s: WalkTasks: %v", h, taskSize, prog.Name, err)
				}
				m := emu.New(part.Prog)
				if err := m.Run(1_000_000); err != nil {
					t.Fatal(err)
				}
				if uint64(total) != m.Count {
					t.Errorf("%v ts=%v %s: tasks cover %d instrs, emulator ran %d",
						h, taskSize, prog.Name, total, m.Count)
				}
				if tasks == 0 {
					t.Errorf("%v ts=%v %s: no task instances", h, taskSize, prog.Name)
				}
			}
		}
	}
}

func TestWalkTasksTargetIndicesValid(t *testing.T) {
	p := callProg(t)
	part := mustSelect(t, p, Options{Heuristic: ControlFlow})
	err := WalkTasks(part, 1_000_000, func(te TaskExec) {
		if te.TargetIndex < 0 {
			t.Errorf("task %d exited via %v which is not in its target list %v",
				te.Task.ID, te.Target, te.Task.Targets)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDataDependenceTasksSmallerOrEqual(t *testing.T) {
	// The DD heuristic terminates tasks once dependences are included, so its
	// average task should not exceed the CF task size on dependence-light
	// code. (Not a strict theorem; holds for this simple program.)
	p := loopProg(t)
	cf := mustSelect(t, p, Options{Heuristic: ControlFlow})
	dd := mustSelect(t, p, Options{Heuristic: DataDependence})
	size := func(part *Partition) (n int) {
		var blocks int
		for _, task := range part.Tasks {
			blocks += len(task.Blocks)
		}
		return blocks / len(part.Tasks)
	}
	if size(dd) > size(cf) {
		t.Errorf("dd avg blocks %d > cf avg blocks %d", size(dd), size(cf))
	}
}

func TestSelectDeterministic(t *testing.T) {
	for _, h := range []Heuristic{BasicBlock, ControlFlow, DataDependence} {
		a := mustSelect(t, callProg(t), Options{Heuristic: h, TaskSize: true})
		b := mustSelect(t, callProg(t), Options{Heuristic: h, TaskSize: true})
		if len(a.Tasks) != len(b.Tasks) {
			t.Fatalf("%v: nondeterministic task count %d vs %d", h, len(a.Tasks), len(b.Tasks))
		}
		for i := range a.Tasks {
			x, y := a.Tasks[i], b.Tasks[i]
			if x.Fn != y.Fn || x.Entry != y.Entry || len(x.Blocks) != len(y.Blocks) ||
				len(x.Targets) != len(y.Targets) {
				t.Errorf("%v: task %d differs between runs", h, i)
			}
		}
	}
}

func TestSelectDoesNotMutateInput(t *testing.T) {
	p := loopProg(t)
	before := ir.Format(p)
	mustSelect(t, p, Options{Heuristic: DataDependence, TaskSize: true})
	if after := ir.Format(p); after != before {
		t.Error("Select mutated its input program")
	}
}

func TestHeuristicString(t *testing.T) {
	if BasicBlock.String() != "basic block" || ControlFlow.String() != "control flow" ||
		DataDependence.String() != "data dependence" {
		t.Error("heuristic names changed; Table 1 headers depend on them")
	}
}
