package core

import (
	"fmt"
	"strings"
)

// Stats summarizes a partition's static structure — what mstask prints and
// what the paper's qualitative discussion of task characteristics is about.
type Stats struct {
	Tasks           int
	Blocks          int     // total member blocks (overlap counted per task)
	AvgBlocks       float64 // blocks per task
	AvgStaticInstrs float64 // static instructions per task
	MaxStaticInstrs int
	// TargetHistogram[n] counts tasks with n targets (index capped at 8).
	TargetHistogram [9]int
	AvgTargets      float64
	AvgCreateRegs   float64 // registers in the create mask per task
	IncludedCalls   int     // call sites executing inside tasks
	ReturnTasks     int     // tasks with a return target
}

// ComputeStats gathers static statistics for the partition.
func ComputeStats(p *Partition) Stats {
	var s Stats
	s.Tasks = len(p.Tasks)
	if s.Tasks == 0 {
		return s
	}
	var blocks, instrs, targets, regs int
	for _, t := range p.Tasks {
		blocks += len(t.Blocks)
		instrs += t.StaticInstrs
		if t.StaticInstrs > s.MaxStaticInstrs {
			s.MaxStaticInstrs = t.StaticInstrs
		}
		n := t.NumTargets()
		targets += n
		if n > 8 {
			n = 8
		}
		s.TargetHistogram[n]++
		regs += t.CreateMask.Count()
		s.IncludedCalls += len(t.IncludeCall)
		for _, tgt := range t.Targets {
			if tgt.Kind == TargetReturn {
				s.ReturnTasks++
				break
			}
		}
	}
	s.Blocks = blocks
	s.AvgBlocks = float64(blocks) / float64(s.Tasks)
	s.AvgStaticInstrs = float64(instrs) / float64(s.Tasks)
	s.AvgTargets = float64(targets) / float64(s.Tasks)
	s.AvgCreateRegs = float64(regs) / float64(s.Tasks)
	return s
}

// String renders the statistics in a compact block.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "tasks            %6d\n", s.Tasks)
	fmt.Fprintf(&sb, "blocks/task      %6.1f\n", s.AvgBlocks)
	fmt.Fprintf(&sb, "static instrs    %6.1f avg, %d max\n", s.AvgStaticInstrs, s.MaxStaticInstrs)
	fmt.Fprintf(&sb, "targets/task     %6.1f  histogram", s.AvgTargets)
	for n, c := range s.TargetHistogram {
		if c > 0 {
			fmt.Fprintf(&sb, " %d:%d", n, c)
		}
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "create regs/task %6.1f\n", s.AvgCreateRegs)
	fmt.Fprintf(&sb, "included calls   %6d\n", s.IncludedCalls)
	fmt.Fprintf(&sb, "return tasks     %6d\n", s.ReturnTasks)
	return sb.String()
}
