package core

import (
	"fmt"
	"sort"

	"multiscalar/internal/cfganal"
	"multiscalar/internal/dataflow"
	"multiscalar/internal/emu"
	"multiscalar/internal/ir"
)

// Select partitions the program into Multiscalar tasks using the selected
// heuristic. The input program is never mutated; when the task-size heuristic
// is enabled the returned Partition carries a transformed clone.
func Select(prog *ir.Program, opts Options) (*Partition, error) {
	opts = opts.withDefaults()
	if err := ir.Validate(prog); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p := ir.Clone(prog)
	// Loop restructuring (induction hoisting) is part of the Multiscalar
	// compilation every binary gets, independent of the heuristic choice.
	RestructureLoops(p)

	// Profile the (possibly about-to-be-transformed) program. The profile
	// feeds CALL_THRESH inclusion and def-use edge prioritization.
	profile, err := profileProgram(p, opts.ProfileBudget)
	if err != nil {
		return nil, fmt.Errorf("core: profiling: %w", err)
	}

	if opts.TaskSize {
		changed := ApplyTaskSize(p, opts)
		if changed {
			// Block IDs moved; re-profile the transformed program so the
			// data-dependence priorities refer to the new CFG.
			profile, err = profileProgram(p, opts.ProfileBudget)
			if err != nil {
				return nil, fmt.Errorf("core: re-profiling after task-size transform: %w", err)
			}
		}
	}
	p.Layout()

	part := &Partition{
		Prog:      p,
		Heuristic: opts.Heuristic,
		Opts:      opts,
		ByEntry:   make(map[EntryKey]*Task),
	}
	sel := &selector{part: part, opts: opts, profile: profile}
	if opts.Policy != "" {
		pol, err := NewPolicy(opts.Policy, PolicyConfig{SizeBudget: opts.SizeBudget, CommBudget: opts.CommBudget})
		if err != nil {
			return nil, err
		}
		sel.policy = pol
	}
	sel.markInclusions()
	sel.run()
	computeRegComm(part, sel.facts)
	return part, nil
}

func profileProgram(p *ir.Program, budget uint64) (*emu.Profile, error) {
	m := emu.New(p)
	prof := m.EnableProfile()
	if err := m.Run(budget); err != nil {
		return nil, err
	}
	return prof, nil
}

// selector carries the state of one partitioning run.
type selector struct {
	part    *Partition
	opts    Options
	profile *emu.Profile

	// includeCall marks call blocks (per function) whose callee is included.
	includeCall map[EntryKey]bool

	// policy, when non-nil, replaces heuristic growth (see policy.go).
	policy Policy

	cfgs  []*cfganal.CFG
	facts []*dataflow.Facts
}

func (s *selector) prog() *ir.Program { return s.part.Prog }

// markInclusions decides, per call site, whether the callee executes inside
// the caller's task (CALL_THRESH). Only meaningful when the task-size
// heuristic is on; otherwise every call terminates its task, as in the
// paper's control-flow-only configurations.
func (s *selector) markInclusions() {
	s.includeCall = make(map[EntryKey]bool)
	s.part.FnIncluded = make([]bool, len(s.prog().Fns))
	if !s.opts.TaskSize {
		return
	}
	include := make([]bool, len(s.prog().Fns))
	for i, f := range s.prog().Fns {
		if ir.FnID(i) == s.prog().Main {
			continue
		}
		avg := s.profile.AvgInclInstrs(f.ID)
		if avg == 0 {
			// Never invoked during profiling: fall back to the static size.
			include[i] = f.NumInstrs() < s.opts.CallThresh
			continue
		}
		include[i] = avg < float64(s.opts.CallThresh)
	}
	for _, f := range s.prog().Fns {
		for _, b := range f.Blocks {
			if b.Term.Kind == ir.TermCall && include[b.Term.Callee] && b.Term.Callee != f.ID {
				s.includeCall[EntryKey{Fn: f.ID, Blk: b.ID}] = true
			}
		}
	}
	// A function is fully included when every call site includes it (its
	// entry then never starts a task).
	calledBare := make([]bool, len(s.prog().Fns))
	for _, f := range s.prog().Fns {
		for _, b := range f.Blocks {
			if b.Term.Kind == ir.TermCall && !s.includeCall[EntryKey{Fn: f.ID, Blk: b.ID}] {
				calledBare[b.Term.Callee] = true
			}
		}
	}
	for i := range include {
		s.part.FnIncluded[i] = include[i] && !calledBare[i]
	}
}

// run drives selection over every function.
func (s *selector) run() {
	s.cfgs = make([]*cfganal.CFG, len(s.prog().Fns))
	s.facts = make([]*dataflow.Facts, len(s.prog().Fns))
	for i, f := range s.prog().Fns {
		s.cfgs[i] = cfganal.Analyze(f)
		// Dataflow facts feed the data-dependence heuristic and, for every
		// heuristic, the dead-register filtering of create masks.
		s.facts[i] = dataflow.Analyze(s.cfgs[i])
	}
	for i := range s.prog().Fns {
		fn := ir.FnID(i)
		if s.part.FnIncluded[i] {
			continue // never starts a task
		}
		if s.policy != nil {
			// A policy replaces heuristic growth wholesale: seeds come from
			// the same coverage worklist the control-flow heuristic uses,
			// growth decisions from the policy (via growSeed).
			s.coverFunction(fn, nil)
			continue
		}
		switch s.opts.Heuristic {
		case BasicBlock:
			s.basicBlockTasks(fn)
		case ControlFlow:
			s.controlFlowTasks(fn)
		case DataDependence:
			s.dataDependenceTasks(fn)
		}
	}
	s.finishTargets()
}

// newTask registers a task with the partition. The entry must be unowned.
func (s *selector) newTask(fn ir.FnID, entry ir.BlockID, blocks map[ir.BlockID]bool) *Task {
	key := EntryKey{Fn: fn, Blk: entry}
	if s.part.ByEntry[key] != nil {
		panic(fmt.Sprintf("core: duplicate task entry %v", key))
	}
	t := &Task{
		ID:          len(s.part.Tasks),
		Fn:          fn,
		Entry:       entry,
		Blocks:      blocks,
		IncludeCall: make(map[ir.BlockID]bool),
	}
	f := s.prog().Fn(fn)
	for b := range blocks {
		blk := f.Block(b)
		t.StaticInstrs += blk.Len()
		if blk.Term.Kind == ir.TermCall && s.includeCall[EntryKey{Fn: fn, Blk: b}] {
			t.IncludeCall[b] = true
		}
	}
	s.part.Tasks = append(s.part.Tasks, t)
	s.part.ByEntry[key] = t
	return t
}

// basicBlockTasks makes every reachable block its own task.
func (s *selector) basicBlockTasks(fn ir.FnID) {
	g := s.cfgs[fn]
	for i := range s.prog().Fn(fn).Blocks {
		b := ir.BlockID(i)
		if g.DFSNum[b] < 0 {
			continue // unreachable
		}
		s.newTask(fn, b, map[ir.BlockID]bool{b: true})
	}
}

// terminalNode implements the paper's is_a_terminal_node: blocks ending in a
// (non-included) call, a return, or halt never grow past themselves.
func (s *selector) terminalNode(fn ir.FnID, b ir.BlockID) bool {
	blk := s.prog().Fn(fn).Block(b)
	switch blk.Term.Kind {
	case ir.TermCall:
		return !s.includeCall[EntryKey{Fn: fn, Blk: b}]
	case ir.TermRet, ir.TermHalt:
		return true
	}
	return false
}

// terminalEdge implements is_a_terminal_edge plus the loop entry/exit rules
// of the task-size discussion: DFS back/cross edges, edges entering a loop,
// and edges leaving a loop all terminate tasks.
func (s *selector) terminalEdge(fn ir.FnID, from, to ir.BlockID) bool {
	return s.cfgs[fn].IsTerminalEdge(from, to)
}

// dynSuccs returns the blocks control can continue to from b while remaining
// in the same function's instruction stream (for an included call, execution
// resumes at the fall block after the callee runs inside the task).
func (s *selector) dynSuccs(fn ir.FnID, b ir.BlockID) []ir.BlockID {
	blk := s.prog().Fn(fn).Block(b)
	switch blk.Term.Kind {
	case ir.TermCall:
		if s.includeCall[EntryKey{Fn: fn, Blk: b}] {
			return []ir.BlockID{blk.Term.Fall}
		}
		return nil
	case ir.TermGoto:
		return []ir.BlockID{blk.Term.Taken}
	case ir.TermBr:
		if blk.Term.Taken == blk.Term.Fall {
			return []ir.BlockID{blk.Term.Taken}
		}
		return []ir.BlockID{blk.Term.Taken, blk.Term.Fall}
	}
	return nil
}

// targetsOf computes the distinct successors of the block set S entered at
// entry. The rules mirror the dynamic semantics in segment.go exactly.
func (s *selector) targetsOf(fn ir.FnID, entry ir.BlockID, S map[ir.BlockID]bool) []Target {
	seen := make(map[Target]bool)
	var out []Target
	add := func(t Target) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for b := range S {
		blk := s.prog().Fn(fn).Block(b)
		switch blk.Term.Kind {
		case ir.TermCall:
			if !s.includeCall[EntryKey{Fn: fn, Blk: b}] {
				add(Target{Kind: TargetCall, Fn: blk.Term.Callee})
				continue
			}
		case ir.TermRet:
			add(Target{Kind: TargetReturn})
			continue
		case ir.TermHalt:
			add(Target{Kind: TargetHalt})
			continue
		}
		for _, succ := range s.dynSuccs(fn, b) {
			if !S[succ] || succ == entry || s.terminalEdge(fn, b, succ) || s.terminalNode(fn, b) {
				add(Target{Kind: TargetBlock, Blk: succ})
			}
		}
	}
	sortTargets(out)
	return out
}

// grow implements the greedy feasible-task exploration shared by the
// control-flow and data-dependence heuristics. Starting from the seed set
// (which must already be feasible), it explores outward along non-terminal
// edges. `explore`, when non-nil, restricts which included blocks are
// explored *further* (the data-dependence heuristic explores only the
// codependent set, but — per the paper's dependence_task pseudo-code — still
// includes non-codependent children in the feasible task when the target
// count allows, so reconverging paths keep helping). Exploration continues
// past the target limit, greedily looking for reconverging paths; the
// largest set whose target count stays within MaxTargets is returned.
func (s *selector) grow(fn ir.FnID, entry ir.BlockID, seed map[ir.BlockID]bool, explore func(ir.BlockID) bool) map[ir.BlockID]bool {
	const exploreCap = 512
	S := make(map[ir.BlockID]bool, len(seed))
	var queue []ir.BlockID
	for b := range seed {
		S[b] = true
	}
	// Deterministic queue: seed blocks ascending.
	for _, b := range sortedBlocks(seed) {
		queue = append(queue, b)
	}
	best := copySet(S)
	bestOK := len(s.targetsOf(fn, entry, S)) <= s.opts.MaxTargets
	for len(queue) > 0 && len(S) < exploreCap {
		b := queue[0]
		queue = queue[1:]
		if s.terminalNode(fn, b) {
			continue
		}
		for _, ch := range s.dynSuccs(fn, b) {
			if s.terminalEdge(fn, b, ch) || ch == entry || S[ch] {
				continue
			}
			if other := s.part.ByEntry[EntryKey{Fn: fn, Blk: ch}]; other != nil {
				// ch already starts another task; keep its boundary.
				continue
			}
			S[ch] = true
			feasible := len(s.targetsOf(fn, entry, S)) <= s.opts.MaxTargets
			if !feasible && s.opts.NoGreedy {
				// First-fit: never explore past the target limit.
				delete(S, ch)
				continue
			}
			if explore == nil || explore(ch) {
				queue = append(queue, ch)
			}
			if feasible {
				if !bestOK || len(S) > len(best) {
					best = copySet(S)
					bestOK = true
				}
			}
		}
	}
	if !bestOK {
		// Even the seed exceeds the limit (cannot happen for a single block,
		// which has at most two successors, but guard the multi-block case).
		return seed
	}
	return best
}

func copySet(s map[ir.BlockID]bool) map[ir.BlockID]bool {
	out := make(map[ir.BlockID]bool, len(s))
	for k, v := range s {
		if v {
			out[k] = v
		}
	}
	return out
}

func sortedBlocks(s map[ir.BlockID]bool) []ir.BlockID {
	out := make([]ir.BlockID, 0, len(s))
	for b := range s {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// controlFlowTasks grows tasks over a function with the control-flow
// heuristic: a worklist of seeds starting at the function entry, each grown
// greedily, with every exposed target becoming a new seed.
func (s *selector) controlFlowTasks(fn ir.FnID) {
	s.coverFunction(fn, nil)
}

// coverFunction grows tasks from the function entry and from every exposed
// target until all reachable blocks are covered. admitFor, when non-nil,
// provides the admission filter per seed (used by coverage after the
// data-dependence pass, where nil is passed to fall back to control flow).
func (s *selector) coverFunction(fn ir.FnID, owned map[ir.BlockID]bool) {
	g := s.cfgs[fn]
	f := s.prog().Fn(fn)
	queue := []ir.BlockID{f.Entry}
	queued := map[ir.BlockID]bool{f.Entry: true}
	for len(queue) > 0 {
		seed := queue[0]
		queue = queue[1:]
		if g.DFSNum[seed] < 0 {
			continue
		}
		t := s.part.ByEntry[EntryKey{Fn: fn, Blk: seed}]
		if t == nil {
			blocks := s.growSeed(fn, seed, map[ir.BlockID]bool{seed: true}, nil)
			t = s.newTask(fn, seed, blocks)
			if owned != nil {
				for b := range blocks {
					owned[b] = true
				}
			}
		}
		for _, tgt := range s.targetsOf(fn, t.Entry, t.Blocks) {
			if tgt.Kind == TargetBlock && !queued[tgt.Blk] {
				queued[tgt.Blk] = true
				queue = append(queue, tgt.Blk)
			}
		}
		// The resume point after a non-included call must start a task too.
		// Sorted iteration: the BFS visit order decides which task claims a
		// contested block, so seeding the queue in map order would make the
		// partition vary run to run.
		for _, b := range sortedBlocks(t.Blocks) {
			blk := f.Block(b)
			if blk.Term.Kind == ir.TermCall && !t.IncludeCall[b] && !queued[blk.Term.Fall] {
				queued[blk.Term.Fall] = true
				queue = append(queue, blk.Term.Fall)
			}
		}
	}
}

// dataDependenceTasks implements the paper's dependence-driven selection:
// def-use edges are prioritized by profiled frequency; for each edge the
// producer's tasks are expanded along the codependent set (or a new task is
// started at the producer); remaining blocks are covered with the
// control-flow heuristic.
func (s *selector) dataDependenceTasks(fn ir.FnID) {
	facts := s.facts[fn]
	g := s.cfgs[fn]
	edges := append([]dataflow.DefUseEdge(nil), facts.Edges...)
	for i := range edges {
		d := s.profile.Freq(fn, edges[i].Def)
		u := s.profile.Freq(fn, edges[i].Use)
		if u < d {
			edges[i].Freq = u
		} else {
			edges[i].Freq = d
		}
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Freq > edges[j].Freq })

	owned := make(map[ir.BlockID]bool)    // blocks in some DD task
	owner := make(map[ir.BlockID][]*Task) // including-tasks per block

	for _, e := range edges {
		if e.Freq == 0 || g.DFSNum[e.Def] < 0 {
			continue
		}
		codep := facts.Codependent(e)
		admit := func(b ir.BlockID) bool { return codep[b] }
		tasks := owner[e.Def]
		if len(tasks) == 0 {
			if s.part.ByEntry[EntryKey{Fn: fn, Blk: e.Def}] != nil {
				// The producer block is an entry of an existing task that
				// does not contain it?? cannot happen: entry is a member.
				continue
			}
			t := s.newTask(fn, e.Def, map[ir.BlockID]bool{e.Def: true})
			owner[e.Def] = append(owner[e.Def], t)
			owned[e.Def] = true
			tasks = owner[e.Def]
		}
		for _, t := range tasks {
			grown := s.grow(fn, t.Entry, t.Blocks, admit)
			for b := range grown {
				if !t.Blocks[b] {
					t.Blocks[b] = true
					t.StaticInstrs += s.prog().Fn(fn).Block(b).Len()
					if s.prog().Fn(fn).Block(b).Term.Kind == ir.TermCall && s.includeCall[EntryKey{Fn: fn, Blk: b}] {
						t.IncludeCall[b] = true
					}
					owned[b] = true
					owner[b] = append(owner[b], t)
				}
			}
		}
	}
	// Cover everything the dependence pass did not reach.
	s.coverFunction(fn, owned)
}

// finishTargets recomputes the final target list and continue edges of every
// task (growth may have changed boundaries), then ensures every exposed
// block target has a task of its own, growing single-block tasks for any
// stragglers (this terminates because new tasks only claim unowned entries).
func (s *selector) finishTargets() {
	for i := 0; i < len(s.part.Tasks); i++ { // index loop: the slice grows
		t := s.part.Tasks[i]
		t.Targets = s.targetsOf(t.Fn, t.Entry, t.Blocks)
		t.continueEdge = make(map[edge]bool)
		for b := range t.Blocks {
			if s.terminalNode(t.Fn, b) {
				continue
			}
			for _, succ := range s.dynSuccs(t.Fn, b) {
				if t.Blocks[succ] && succ != t.Entry && !s.terminalEdge(t.Fn, b, succ) {
					t.continueEdge[edge{from: b, to: succ}] = true
				}
			}
		}
		for _, tgt := range t.Targets {
			switch tgt.Kind {
			case TargetBlock:
				if s.part.ByEntry[EntryKey{Fn: t.Fn, Blk: tgt.Blk}] == nil {
					nt := s.newTask(t.Fn, tgt.Blk, s.growSeed(t.Fn, tgt.Blk, map[ir.BlockID]bool{tgt.Blk: true}, nil))
					_ = nt
				}
			case TargetCall:
				callee := s.prog().Fn(tgt.Fn)
				if s.part.ByEntry[EntryKey{Fn: tgt.Fn, Blk: callee.Entry}] == nil {
					s.newTask(tgt.Fn, callee.Entry, s.growSeed(tgt.Fn, callee.Entry, map[ir.BlockID]bool{callee.Entry: true}, nil))
				}
			}
		}
		// Post-call resume blocks are reached via return targets.
		f := s.prog().Fn(t.Fn)
		for b := range t.Blocks {
			blk := f.Block(b)
			if blk.Term.Kind == ir.TermCall && !t.IncludeCall[b] {
				if s.part.ByEntry[EntryKey{Fn: t.Fn, Blk: blk.Term.Fall}] == nil {
					s.newTask(t.Fn, blk.Term.Fall, s.growSeed(t.Fn, blk.Term.Fall, map[ir.BlockID]bool{blk.Term.Fall: true}, nil))
				}
			}
		}
	}
}
