package core

import (
	"testing"

	"multiscalar/internal/ir"
)

func TestCreateMaskCoversAllWrites(t *testing.T) {
	for _, h := range []Heuristic{BasicBlock, ControlFlow, DataDependence} {
		part := mustSelect(t, loopProg(t), Options{Heuristic: h})
		for _, task := range part.Tasks {
			f := part.Prog.Fn(task.Fn)
			for b := range task.Blocks {
				for _, in := range f.Block(b).Instrs {
					if d, ok := in.Def(); ok && !task.CreateMask.Has(d) {
						t.Errorf("%v: task %d writes %v outside create mask", h, task.ID, d)
					}
				}
			}
		}
	}
}

func TestLastDefMarksOnlyFinalWrites(t *testing.T) {
	// Two writes of r4 in one block: only the second is a forward point.
	b := ir.NewBuilder("p")
	f := b.Func("main")
	f.Block("entry").
		MovI(ir.R(4), 1).
		AddI(ir.R(4), ir.R(4), 1).
		MovI(ir.R(5), 2).
		Halt()
	f.End()
	part := mustSelect(t, b.Build(), Options{Heuristic: ControlFlow})
	task := part.EntryTask()
	if task.ForwardsAt(0, 0) {
		t.Error("first write of r4 marked as last def")
	}
	if !task.ForwardsAt(0, 1) {
		t.Error("final write of r4 not marked")
	}
	if !task.ForwardsAt(0, 2) {
		t.Error("sole write of r5 not marked")
	}
}

func TestLastDefAcrossBlocks(t *testing.T) {
	// r4 written in entry and rewritten in join: the entry write must not be
	// a forward point; the join write must be.
	b := ir.NewBuilder("p")
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(4), 1).MovI(ir.R(6), 1).Br(ir.R(6), "left", "right")
	f.Block("left").Nop().Goto("join")
	f.Block("right").Nop().Goto("join")
	f.Block("join").AddI(ir.R(4), ir.R(4), 1).Halt()
	f.End()
	part := mustSelect(t, b.Build(), Options{Heuristic: ControlFlow})
	task := part.EntryTask()
	if len(task.Blocks) != 4 {
		t.Fatalf("diamond not folded: %v", task.Blocks)
	}
	if task.ForwardsAt(0, 0) {
		t.Error("entry write of r4 forwarded despite later redefinition")
	}
	if !task.ForwardsAt(3, 0) {
		t.Error("join write of r4 not marked")
	}
}

func TestLastDefConditionalRedefinitionBlocksForward(t *testing.T) {
	// r4 written in entry, conditionally rewritten on one arm: the entry
	// write must not forward early (some path redefines), and the arm write
	// must forward (nothing after it).
	b := ir.NewBuilder("p")
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(4), 1).MovI(ir.R(6), 1).Br(ir.R(6), "redef", "skip")
	f.Block("redef").MovI(ir.R(4), 2).Goto("join")
	f.Block("skip").Nop().Goto("join")
	f.Block("join").Nop().Halt()
	f.End()
	part := mustSelect(t, b.Build(), Options{Heuristic: ControlFlow})
	task := part.EntryTask()
	if task.ForwardsAt(0, 0) {
		t.Error("entry write forwards although the redef arm may rewrite r4")
	}
	if !task.ForwardsAt(1, 0) {
		t.Error("arm write not marked as last def")
	}
	// endForward must contain r4 (no early forward guaranteed on all paths).
	if !task.EndForward().Has(ir.R(4)) {
		t.Error("r4 missing from end-forward set")
	}
}

func TestIncludedCallWritesInCreateMask(t *testing.T) {
	part := mustSelect(t, callProg(t), Options{Heuristic: ControlFlow, TaskSize: true})
	var found bool
	for _, task := range part.Tasks {
		if len(task.IncludeCall) == 0 {
			continue
		}
		found = true
		// tiny writes RegRV; the including task must own it and must not
		// early-forward it.
		if !task.CreateMask.Has(ir.RegRV) {
			t.Errorf("task %d create mask misses included callee's RegRV write", task.ID)
		}
		if !task.EndForward().Has(ir.RegRV) {
			t.Errorf("task %d early-forwards a register written by an included callee", task.ID)
		}
		for ref := range task.lastDef {
			d, _ := part.Prog.Fn(task.Fn).Block(ref.blk).Instrs[ref.idx].Def()
			if d == ir.RegRV {
				t.Errorf("task %d marks RegRV as last-def despite included call writing it", task.ID)
			}
		}
	}
	if !found {
		t.Fatal("no task with an included call")
	}
}

func TestFnWriteSummariesTransitive(t *testing.T) {
	b := ir.NewBuilder("p")
	leaf := b.DeclareFn("leaf")
	mid := b.DeclareFn("mid")
	f := b.Func("main")
	f.Block("entry").Call(mid, "end")
	f.Block("end").Halt()
	f.End()
	g := b.Func("mid")
	g.Block("entry").MovI(ir.R(9), 1).Call(leaf, "back")
	g.Block("back").Ret()
	g.End()
	h := b.Func("leaf")
	h.Block("entry").MovI(ir.R(10), 2).Ret()
	h.End()
	p := b.Build()
	w := fnWriteSummaries(p)
	if !w[mid].Has(ir.R(9)) || !w[mid].Has(ir.R(10)) {
		t.Errorf("mid summary %v missing own or callee writes", w[mid].Regs())
	}
	if !w[p.Main].Has(ir.R(10)) {
		t.Error("main summary missing transitive write")
	}
	if w[leaf].Has(ir.R(9)) {
		t.Error("leaf summary has caller's write")
	}
}

func TestFnWriteSummariesRecursion(t *testing.T) {
	b := ir.NewBuilder("p")
	rec := b.DeclareFn("rec")
	f := b.Func("main")
	f.Block("entry").Call(rec, "end")
	f.Block("end").Halt()
	f.End()
	g := b.Func("rec")
	g.Block("entry").MovI(ir.R(9), 1).SltI(ir.R(6), ir.R(9), 0).Br(ir.R(6), "again", "out")
	g.Block("again").Call(rec, "out")
	g.Block("out").Ret()
	g.End()
	p := b.Build()
	w := fnWriteSummaries(p) // must terminate despite the cycle
	if !w[rec].Has(ir.R(9)) {
		t.Error("recursive summary missing write")
	}
}
