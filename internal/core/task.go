// Package core implements the paper's primary contribution: compiler task
// selection for a Multiscalar processor.
//
// A task is a connected, single-entry subgraph of a function's CFG. The
// package provides the three task selection strategies the paper evaluates —
// basic-block tasks, control-flow tasks, and data-dependence tasks — plus the
// task-size heuristic (loop unrolling to LOOP_THRESH, inclusion of calls
// below CALL_THRESH, induction-variable hoisting) and the register
// communication analysis (create masks and forward points) the Multiscalar
// hardware needs.
package core

import (
	"fmt"
	"sort"

	"multiscalar/internal/dataflow"
	"multiscalar/internal/ir"
)

// Heuristic selects the task-selection strategy.
type Heuristic int

// The strategies evaluated in the paper's Figure 5 and Table 1.
const (
	// BasicBlock makes every basic block its own task (the paper's baseline).
	BasicBlock Heuristic = iota
	// ControlFlow grows multi-block tasks bounded by terminal nodes/edges and
	// the hardware target limit, exploiting reconverging control flow.
	ControlFlow
	// DataDependence additionally steers growth along profiled def-use
	// chains so dependences land inside tasks (applied on top of ControlFlow,
	// as in the paper).
	DataDependence
)

// String names the heuristic as in the paper's figures.
func (h Heuristic) String() string {
	switch h {
	case BasicBlock:
		return "basic block"
	case ControlFlow:
		return "control flow"
	case DataDependence:
		return "data dependence"
	}
	return fmt.Sprintf("Heuristic(%d)", int(h))
}

// TargetKind discriminates where control can go when a task ends.
type TargetKind uint8

// Target kinds.
const (
	// TargetBlock continues at a block (a task entry) in the same function.
	TargetBlock TargetKind = iota
	// TargetCall continues at the entry task of a callee.
	TargetCall
	// TargetReturn continues at the caller's resume point (dynamic; the
	// sequencer resolves it with a return-address stack).
	TargetReturn
	// TargetHalt ends the program.
	TargetHalt
)

// Target is one possible successor of a task. The position of a target in
// Task.Targets is the target number the inter-task predictor predicts.
type Target struct {
	Kind TargetKind
	Blk  ir.BlockID // TargetBlock
	Fn   ir.FnID    // TargetCall
}

// String renders the target compactly.
func (t Target) String() string {
	switch t.Kind {
	case TargetBlock:
		return fmt.Sprintf("b%d", t.Blk)
	case TargetCall:
		return fmt.Sprintf("call:fn%d", t.Fn)
	case TargetReturn:
		return "ret"
	case TargetHalt:
		return "halt"
	}
	return "?"
}

type edge struct{ from, to ir.BlockID }

// Task is one static Multiscalar task.
type Task struct {
	ID    int
	Fn    ir.FnID
	Entry ir.BlockID

	// Blocks is the task's membership set.
	Blocks map[ir.BlockID]bool

	// continueEdge marks intra-task CFG edges along which execution stays in
	// the same task instance. Edges not marked (terminal edges, edges leaving
	// Blocks, edges back to Entry) end the instance.
	continueEdge map[edge]bool

	// IncludeCall marks call-terminated blocks whose entire callee invocation
	// executes inside the task (the CALL_THRESH part of the task-size
	// heuristic).
	IncludeCall map[ir.BlockID]bool

	// Targets are the possible successors, deterministically ordered; the
	// index is the hardware target number.
	Targets []Target

	// CreateMask is the set of registers the task may write (and therefore
	// must forward on the register communication ring).
	CreateMask dataflow.RegSet

	// endForward is the subset of CreateMask only released when the task
	// ends (conservative: written by included callees or redefinable on some
	// continuation path).
	endForward dataflow.RegSet

	// lastDef marks instructions that are the final write of their register
	// on every path to task exit; the hardware forwards the value there.
	// Key: block ID and instruction index within the block.
	lastDef map[instrRef]bool

	// StaticInstrs is the total instruction count of the member blocks.
	StaticInstrs int
}

type instrRef struct {
	blk ir.BlockID
	idx int
}

// Continues reports whether executing the edge from→to stays inside this
// task instance.
func (t *Task) Continues(from, to ir.BlockID) bool {
	return t.continueEdge[edge{from: from, to: to}]
}

// AddContinueEdge marks from→to as an edge along which execution stays inside
// the task instance. Select computes continue edges itself; this mutator
// exists for tooling and tests (internal/verify's negative fixtures) that
// build or corrupt partitions by hand.
func (t *Task) AddContinueEdge(from, to ir.BlockID) {
	if t.continueEdge == nil {
		t.continueEdge = make(map[edge]bool)
	}
	t.continueEdge[edge{from: from, to: to}] = true
}

// ContinueEdges returns every continue edge as (from, to) pairs in
// deterministic order, for analyses that need to walk the intra-task subgraph
// without probing all block pairs.
func (t *Task) ContinueEdges() [][2]ir.BlockID {
	out := make([][2]ir.BlockID, 0, len(t.continueEdge))
	for e, ok := range t.continueEdge {
		if ok {
			out = append(out, [2]ir.BlockID{e.from, e.to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ForwardsAt reports whether the instruction at (blk, idx) is a forward point
// (the last definition of its destination register within the task).
func (t *Task) ForwardsAt(blk ir.BlockID, idx int) bool {
	return t.lastDef[instrRef{blk: blk, idx: idx}]
}

// EndForward returns the registers only released at task end.
func (t *Task) EndForward() dataflow.RegSet { return t.endForward }

// TargetIndex returns the index of the given target in Targets, or -1.
func (t *Task) TargetIndex(tgt Target) int {
	for i, x := range t.Targets {
		if x == tgt {
			return i
		}
	}
	return -1
}

// NumTargets returns the number of distinct successors the task exposes.
func (t *Task) NumTargets() int { return len(t.Targets) }

// EntryKey identifies a task by its entry point.
type EntryKey struct {
	Fn  ir.FnID
	Blk ir.BlockID
}

// Partition is a complete task selection for a program. When the task-size
// heuristic ran, Prog is the transformed (unrolled) clone, not the input
// program.
type Partition struct {
	Prog      *ir.Program
	Heuristic Heuristic
	Opts      Options

	Tasks   []*Task
	ByEntry map[EntryKey]*Task

	// FnIncluded[fn] reports that every call to fn is included inside the
	// caller's tasks (fn is below CALL_THRESH).
	FnIncluded []bool
}

// TaskAt returns the task whose entry is (fn, blk), or nil.
func (p *Partition) TaskAt(fn ir.FnID, blk ir.BlockID) *Task {
	return p.ByEntry[EntryKey{Fn: fn, Blk: blk}]
}

// EntryTask returns the task that starts the program.
func (p *Partition) EntryTask() *Task {
	return p.TaskAt(p.Prog.Main, p.Prog.Fn(p.Prog.Main).Entry)
}

// Options configures Partition construction.
type Options struct {
	// Heuristic chooses the selection strategy. Default BasicBlock.
	Heuristic Heuristic
	// TaskSize enables the task-size heuristic (loop unrolling, call
	// inclusion, induction hoisting).
	TaskSize bool
	// MaxTargets is the hardware target limit N (default 4).
	MaxTargets int
	// CallThresh is CALL_THRESH: calls to functions averaging fewer dynamic
	// instructions than this are included within tasks (default 30).
	CallThresh int
	// LoopThresh is LOOP_THRESH: loop bodies under this many static
	// instructions are unrolled up to it (default 30).
	LoopThresh int
	// NoGreedy disables the greedy part of the feasible-task search: instead
	// of exploring past the target limit looking for reconverging paths, the
	// traversal rejects any block whose inclusion exceeds MaxTargets (a
	// first-fit baseline for the ablation in DESIGN.md §5).
	NoGreedy bool
	// ProfileBudget caps the profiling run's dynamic instructions
	// (default 50M).
	ProfileBudget uint64
	// Policy, when non-empty, replaces heuristic task growth with the named
	// registered Policy (see RegisterPolicy); Heuristic still selects the
	// profile-independent machinery but growth decisions come from the
	// policy. Policy names are part of grid cache keys.
	Policy string
	// SizeBudget is the per-task static-instruction budget policies see
	// (default 48 when a policy is set, ignored otherwise).
	SizeBudget int
	// CommBudget is the per-task distinct-defined-register budget policies
	// see (default 8 when a policy is set, ignored otherwise).
	CommBudget int
}

func (o Options) withDefaults() Options {
	if o.MaxTargets == 0 {
		o.MaxTargets = 4
	}
	if o.CallThresh == 0 {
		o.CallThresh = 30
	}
	if o.LoopThresh == 0 {
		o.LoopThresh = 30
	}
	if o.ProfileBudget == 0 {
		o.ProfileBudget = 50_000_000
	}
	if o.Policy != "" {
		if o.SizeBudget == 0 {
			o.SizeBudget = 48
		}
		if o.CommBudget == 0 {
			o.CommBudget = 8
		}
	}
	return o
}

// sortTargets orders a target set deterministically: block targets by block,
// then call targets by callee, then return, then halt.
func sortTargets(ts []Target) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Kind == TargetBlock {
			return a.Blk < b.Blk
		}
		if a.Kind == TargetCall {
			return a.Fn < b.Fn
		}
		return false
	})
}
