package core

import (
	"fmt"
	"testing"

	"multiscalar/internal/emu"
	"multiscalar/internal/ir"
	"multiscalar/internal/progtest"
)

// TestFuzzPipeline drives random programs through validation, emulation,
// every selection heuristic, task-walk coverage, and register-communication
// invariants.
func TestFuzzPipeline(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := progtest.Generate(int64(seed))
			if err := ir.Validate(prog); err != nil {
				t.Fatalf("generated invalid program: %v", err)
			}
			ref := emu.New(prog)
			if err := ref.Run(2_000_000); err != nil {
				t.Fatalf("reference run: %v", err)
			}
			for _, h := range []Heuristic{BasicBlock, ControlFlow, DataDependence} {
				for _, ts := range []bool{false, true} {
					part, err := Select(prog, Options{Heuristic: h, TaskSize: ts})
					if err != nil {
						t.Fatalf("%v/ts=%v: %v", h, ts, err)
					}
					checkPartitionInvariants(t, part)
					var covered int
					if err := WalkTasks(part, 2_000_000, func(te TaskExec) {
						covered += te.DynInstrs
						if te.TargetIndex < 0 {
							t.Errorf("%v/ts=%v: task %d exit %v not in targets %v",
								h, ts, te.Task.ID, te.Target, te.Task.Targets)
						}
					}); err != nil {
						t.Fatalf("%v/ts=%v: WalkTasks: %v", h, ts, err)
					}
					m := emu.New(part.Prog)
					if err := m.Run(2_000_000); err != nil {
						t.Fatal(err)
					}
					if uint64(covered) != m.Count {
						t.Errorf("%v/ts=%v: tasks cover %d of %d instrs", h, ts, covered, m.Count)
					}
					if m.Mem.Checksum() != ref.Mem.Checksum() {
						t.Errorf("%v/ts=%v: transformed program diverged from reference", h, ts)
					}
				}
			}
		})
	}
}

// checkPartitionInvariants verifies structural properties every partition
// must satisfy.
func checkPartitionInvariants(t *testing.T, part *Partition) {
	t.Helper()
	for _, task := range part.Tasks {
		if !task.Blocks[task.Entry] {
			t.Errorf("task %d does not contain its own entry", task.ID)
		}
		if part.ByEntry[EntryKey{Fn: task.Fn, Blk: task.Entry}] != task {
			t.Errorf("task %d not indexed by its entry", task.ID)
		}
		if task.NumTargets() > part.Opts.MaxTargets &&
			len(task.Blocks) > 1 {
			t.Errorf("task %d: %d targets exceed limit %d with %d blocks",
				task.ID, task.NumTargets(), part.Opts.MaxTargets, len(task.Blocks))
		}
		for _, tgt := range task.Targets {
			if tgt.Kind == TargetBlock && part.TaskAt(task.Fn, tgt.Blk) == nil {
				t.Errorf("task %d target %v has no task", task.ID, tgt)
			}
		}
		// Continue edges stay inside the task and never re-enter the entry.
		f := part.Prog.Fn(task.Fn)
		for b := range task.Blocks {
			for _, s := range f.Block(b).Succs(nil) {
				if task.Continues(b, s) {
					if !task.Blocks[s] {
						t.Errorf("task %d: continue edge b%d->b%d leaves the task", task.ID, b, s)
					}
					if s == task.Entry {
						t.Errorf("task %d: continue edge re-enters the entry", task.ID)
					}
				}
			}
		}
	}
}
