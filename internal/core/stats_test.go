package core

import (
	"strings"
	"testing"
)

func TestComputeStats(t *testing.T) {
	part := mustSelect(t, callProg(t), Options{Heuristic: ControlFlow, TaskSize: true})
	s := ComputeStats(part)
	if s.Tasks != len(part.Tasks) {
		t.Errorf("Tasks = %d, want %d", s.Tasks, len(part.Tasks))
	}
	if s.AvgBlocks < 1 {
		t.Errorf("AvgBlocks = %v", s.AvgBlocks)
	}
	if s.IncludedCalls == 0 {
		t.Error("included calls not counted")
	}
	hist := 0
	for _, c := range s.TargetHistogram {
		hist += c
	}
	if hist != s.Tasks {
		t.Errorf("histogram sums to %d, want %d", hist, s.Tasks)
	}
	out := s.String()
	for _, want := range []string{"tasks", "targets/task", "included calls"} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats output missing %q:\n%s", want, out)
		}
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(&Partition{})
	if s.Tasks != 0 || s.AvgBlocks != 0 {
		t.Errorf("empty partition stats: %+v", s)
	}
}
