package core

import (
	"testing"

	"multiscalar/internal/ir"
)

// figure4Prog reconstructs the shape of the paper's Figure 4: a producer
// basic block at the top, a multi-block control-flow region in between, and
// a consumer basic block at the bottom, with a register data dependence from
// producer to consumer spanning the region. A loop around the whole region
// gives the dependence a nonzero profiled frequency.
//
//	loop head ─> producer (defines r9)
//	producer  ─> left | right          (diamond)
//	left/right─> consumer (uses r9)
//	consumer  ─> loop head (back edge) | exit
func figure4Prog(t testing.TB) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("figure4")
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 0).MovI(ir.R(8), int64(out)).Goto("head")
	f.Block("head").SltI(ir.R(5), ir.R(3), 50).Br(ir.R(5), "producer", "exit")
	f.Block("producer").
		MulI(ir.R(9), ir.R(3), 7). // the producer definition
		AndI(ir.R(6), ir.R(3), 1).
		Br(ir.R(6), "left", "right")
	f.Block("left").AddI(ir.R(10), ir.R(3), 100).Goto("consumer")
	f.Block("right").AddI(ir.R(10), ir.R(3), 200).Goto("consumer")
	f.Block("consumer").
		Add(ir.R(11), ir.R(9), ir.R(10)). // the consumer use of r9
		Add(ir.R(12), ir.R(12), ir.R(11)).
		AddI(ir.R(3), ir.R(3), 1).
		Goto("head")
	f.Block("exit").Store(ir.R(12), ir.R(8), 0).Halt()
	f.End()
	return b.Build()
}

// TestFigure4DependenceIncluded checks Figure 4(a2): the data-dependence
// heuristic includes the producer->consumer register dependence within a
// single task by pulling in the codependent set (the diamond between them).
func TestFigure4DependenceIncluded(t *testing.T) {
	part := mustSelect(t, figure4Prog(t), Options{Heuristic: DataDependence})
	// Find the task containing the producer block (b2).
	var producerTask *Task
	for _, task := range part.Tasks {
		if task.Fn == 0 && task.Blocks[2] {
			producerTask = task
			break
		}
	}
	if producerTask == nil {
		t.Fatal("no task contains the producer block")
	}
	if !producerTask.Blocks[5] {
		t.Errorf("data dependence heuristic left the consumer outside the producer's task: %v",
			sortedBlocks(producerTask.Blocks))
	}
	// The codependent diamond must have come along (every path from producer
	// to consumer lies inside the task).
	if !producerTask.Blocks[3] || !producerTask.Blocks[4] {
		t.Errorf("codependent diamond not included: %v", sortedBlocks(producerTask.Blocks))
	}
}

// TestFigure4ControlFlowComparison checks the (b1)-style contrast the paper
// draws: the control-flow heuristic also grows tasks over the region, but
// driven by reconvergence rather than the dependence; both partitions must
// cover the region and respect the target limit.
func TestFigure4ControlFlowComparison(t *testing.T) {
	cf := mustSelect(t, figure4Prog(t), Options{Heuristic: ControlFlow})
	dd := mustSelect(t, figure4Prog(t), Options{Heuristic: DataDependence})
	for _, part := range []*Partition{cf, dd} {
		for _, task := range part.Tasks {
			if len(task.Blocks) > 1 && task.NumTargets() > part.Opts.MaxTargets {
				t.Errorf("%v: task %d exceeds target limit", part.Heuristic, task.ID)
			}
		}
	}
	// Dynamic check: under DD, producer and consumer execute in the same
	// task instance (no inter-task communication for r9).
	sameInstance := 0
	total := 0
	err := WalkTasks(dd, 100000, func(te TaskExec) {
		if te.Task.Blocks[2] { // producer's task
			total++
			if te.Task.Blocks[5] {
				sameInstance++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 || sameInstance != total {
		t.Errorf("dependence executed within one task in %d/%d instances", sameInstance, total)
	}
}

// TestFigure4ForwardPlacement checks the (b2) property on the CF partition
// when the dependence is split: if producer and consumer land in different
// tasks, the producer's write must be an early forward point (its value is
// sent as soon as it is computed, not at task end).
func TestFigure4ForwardPlacement(t *testing.T) {
	part := mustSelect(t, figure4Prog(t), Options{Heuristic: ControlFlow})
	var producerTask *Task
	for _, task := range part.Tasks {
		if task.Fn == 0 && task.Blocks[2] {
			producerTask = task
		}
	}
	if producerTask == nil {
		t.Fatal("no task contains the producer")
	}
	if producerTask.Blocks[5] {
		// CF merged them anyway (reconvergence) — the dependence is internal,
		// which is also fine; nothing further to check.
		return
	}
	// Split: the MulI in block 2, index 0 defines r9 and nothing later in
	// the task redefines it, so it must be a last-def forward point.
	if !producerTask.ForwardsAt(2, 0) {
		t.Error("producer write of r9 is not an early forward point")
	}
}
