package core

import (
	"testing"

	"multiscalar/internal/cfganal"
	"multiscalar/internal/emu"
	"multiscalar/internal/ir"
)

// runBoth runs the original and transformed programs and compares final
// architectural state — the semantic-preservation oracle for every task-size
// transformation.
func runBoth(t *testing.T, orig, xform *ir.Program) {
	t.Helper()
	m1 := emu.New(orig)
	if err := m1.Run(10_000_000); err != nil {
		t.Fatalf("original: %v", err)
	}
	m2 := emu.New(xform)
	if err := m2.Run(10_000_000); err != nil {
		t.Fatalf("transformed: %v", err)
	}
	if m1.Mem.Checksum() != m2.Mem.Checksum() {
		t.Errorf("memory diverged: %#x vs %#x", m1.Mem.Checksum(), m2.Mem.Checksum())
	}
	for r := 0; r < ir.NumRegs; r++ {
		if m1.Regs[r] != m2.Regs[r] {
			t.Errorf("register %v diverged: %d vs %d", ir.Reg(r), int64(m1.Regs[r]), int64(m2.Regs[r]))
		}
	}
	if m1.Count != m2.Count {
		// Unrolling/hoisting may change instruction counts (preheaders add
		// instructions, unrolling only rewires edges). Only flag wild
		// divergence which would indicate broken control flow.
		diff := int64(m1.Count) - int64(m2.Count)
		if diff < 0 {
			diff = -diff
		}
		if diff > int64(m1.Count)/2+64 {
			t.Errorf("dynamic count diverged wildly: %d vs %d", m1.Count, m2.Count)
		}
	}
}

func TestUnrollPreservesSemantics(t *testing.T) {
	orig := loopProg(t)
	xform := ir.Clone(orig)
	if !ApplyTaskSize(xform, Options{LoopThresh: 30, CallThresh: 30}) {
		t.Fatal("ApplyTaskSize reported no change on a small loop")
	}
	if err := ir.Validate(xform); err != nil {
		t.Fatalf("transformed program invalid: %v", err)
	}
	runBoth(t, orig, xform)
}

func TestUnrollExpandsBody(t *testing.T) {
	p := loopProg(t)
	before := cfganal.Analyze(p.Fn(0)).Loops[0].NumInstrs(p.Fn(0))
	ApplyTaskSize(p, Options{LoopThresh: 30, CallThresh: 30})
	g := cfganal.Analyze(p.Fn(0))
	if len(g.Loops) == 0 {
		t.Fatal("loop disappeared")
	}
	after := g.Loops[0].NumInstrs(p.Fn(0))
	if after < 30 {
		t.Errorf("unrolled body = %d instrs (was %d), want >= 30", after, before)
	}
}

func TestUnrollNonMultipleTripCount(t *testing.T) {
	// Trip count 7 with an unroll factor that does not divide it: correctness
	// must hold because iteration copies re-test the condition.
	b := ir.NewBuilder("trip7")
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 0).MovI(ir.R(4), 0).MovI(ir.R(8), int64(out)).Goto("head")
	f.Block("head").SltI(ir.R(5), ir.R(3), 7).Br(ir.R(5), "body", "exit")
	f.Block("body").Add(ir.R(4), ir.R(4), ir.R(3)).AddI(ir.R(3), ir.R(3), 1).Goto("head")
	f.Block("exit").Store(ir.R(4), ir.R(8), 0).Halt()
	f.End()
	orig := b.Build()
	xform := ir.Clone(orig)
	ApplyTaskSize(xform, Options{LoopThresh: 30, CallThresh: 30})
	runBoth(t, orig, xform)
	m := emu.New(xform)
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load(ir.DataBase); got != 21 {
		t.Errorf("sum 0..6 = %d, want 21", got)
	}
}

func TestUnrollZeroTripLoop(t *testing.T) {
	b := ir.NewBuilder("trip0")
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 10).Goto("head")
	f.Block("head").SltI(ir.R(5), ir.R(3), 5).Br(ir.R(5), "body", "exit")
	f.Block("body").AddI(ir.R(3), ir.R(3), 1).Goto("head")
	f.Block("exit").Halt()
	f.End()
	orig := b.Build()
	xform := ir.Clone(orig)
	ApplyTaskSize(xform, Options{LoopThresh: 30, CallThresh: 30})
	runBoth(t, orig, xform)
}

func TestUnrollSkipsLargeLoops(t *testing.T) {
	b := ir.NewBuilder("big")
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 0).Goto("head")
	f.Block("head").SltI(ir.R(5), ir.R(3), 4).Br(ir.R(5), "body", "exit")
	bb := f.Block("body")
	for i := 0; i < 40; i++ {
		bb.Nop()
	}
	bb.AddI(ir.R(3), ir.R(3), 1)
	bb.Goto("head")
	f.Block("exit").Halt()
	f.End()
	p := b.Build()
	nBefore := len(p.Fn(0).Blocks)
	ApplyTaskSize(p, Options{LoopThresh: 30, CallThresh: 30})
	// The loop is already 40+ instructions; hoisting may add a preheader but
	// no iteration copies should appear.
	if got := len(p.Fn(0).Blocks); got > nBefore+1 {
		t.Errorf("blocks grew %d -> %d; large loop was unrolled", nBefore, got)
	}
}

func TestUnrollNestedLoopsOnlyInnermost(t *testing.T) {
	b := ir.NewBuilder("nest")
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 0).MovI(ir.R(7), 0).MovI(ir.R(8), int64(out)).Goto("ohead")
	f.Block("ohead").SltI(ir.R(5), ir.R(3), 5).Br(ir.R(5), "iinit", "exit")
	f.Block("iinit").MovI(ir.R(4), 0).Goto("ihead")
	f.Block("ihead").SltI(ir.R(6), ir.R(4), 3).Br(ir.R(6), "ibody", "olatch")
	f.Block("ibody").Add(ir.R(7), ir.R(7), ir.R(4)).AddI(ir.R(4), ir.R(4), 1).Goto("ihead")
	f.Block("olatch").AddI(ir.R(3), ir.R(3), 1).Goto("ohead")
	f.Block("exit").Store(ir.R(7), ir.R(8), 0).Halt()
	f.End()
	orig := b.Build()
	xform := ir.Clone(orig)
	ApplyTaskSize(xform, Options{LoopThresh: 30, CallThresh: 30})
	runBoth(t, orig, xform)
	m := emu.New(xform)
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load(ir.DataBase); got != 15 { // 5 * (0+1+2)
		t.Errorf("nested sum = %d, want 15", got)
	}
}

func TestUnrollLoopWithCall(t *testing.T) {
	b := ir.NewBuilder("loopcall")
	hlp := b.DeclareFn("h")
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 0).Goto("head")
	f.Block("head").SltI(ir.R(5), ir.R(3), 6).Br(ir.R(5), "body", "exit")
	f.Block("body").Mov(ir.RegArg0, ir.R(3)).Call(hlp, "cont")
	f.Block("cont").Add(ir.R(7), ir.R(7), ir.RegRV).AddI(ir.R(3), ir.R(3), 1).Goto("head")
	f.Block("exit").Halt()
	f.End()
	g := b.Func("h")
	g.Block("entry").MulI(ir.RegRV, ir.RegArg0, 2).Ret()
	g.End()
	orig := b.Build()
	xform := ir.Clone(orig)
	ApplyTaskSize(xform, Options{LoopThresh: 30, CallThresh: 30})
	if err := ir.Validate(xform); err != nil {
		t.Fatalf("invalid after unroll with call: %v", err)
	}
	runBoth(t, orig, xform)
}

func TestInductionHoisting(t *testing.T) {
	// A loop shaped so hoisting applies: latch ends in goto head, increment
	// last, register used only in the body before the latch.
	b := ir.NewBuilder("hoist")
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 0).MovI(ir.R(4), 0).MovI(ir.R(8), int64(out)).Goto("head")
	f.Block("head").SltI(ir.R(5), ir.R(3), 9).Br(ir.R(5), "latch", "exit")
	f.Block("latch").Add(ir.R(4), ir.R(4), ir.R(3)).AddI(ir.R(3), ir.R(3), 1).Goto("head")
	f.Block("exit").Store(ir.R(4), ir.R(8), 0).Store(ir.R(3), ir.R(8), 8).Halt()
	f.End()
	orig := b.Build()
	xform := ir.Clone(orig)
	if !hoistInductions(xform.Fn(0)) {
		t.Fatal("hoistInductions found nothing")
	}
	xform.Layout()
	if err := ir.Validate(xform); err != nil {
		t.Fatalf("invalid after hoist: %v", err)
	}
	runBoth(t, orig, xform)
	m := emu.New(xform)
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load(ir.DataBase); got != 36 {
		t.Errorf("sum = %d, want 36", got)
	}
	if got := int64(m.Mem.Load(ir.DataBase + 8)); got != 9 {
		t.Errorf("final induction value = %d, want 9", got)
	}
}

func TestHoistSkipsMultiDef(t *testing.T) {
	b := ir.NewBuilder("multidef")
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 0).Goto("head")
	f.Block("head").SltI(ir.R(5), ir.R(3), 5).Br(ir.R(5), "latch", "exit")
	f.Block("latch").AddI(ir.R(3), ir.R(3), 1).AddI(ir.R(3), ir.R(3), 0).Goto("head")
	f.Block("exit").Halt()
	f.End()
	p := b.Build()
	if hoistInductions(p.Fn(0)) {
		t.Error("hoisted a register with two defs in the loop")
	}
}

func TestTaskSizeFullPipelinePreservesSemantics(t *testing.T) {
	for _, mk := range []func(testing.TB) *ir.Program{loopProg, diamondProg, callProg} {
		orig := mk(t)
		xform := ir.Clone(orig)
		ApplyTaskSize(xform, Options{LoopThresh: 30, CallThresh: 30})
		if err := ir.Validate(xform); err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		runBoth(t, orig, xform)
	}
}
