package core

import (
	"multiscalar/internal/dataflow"
	"multiscalar/internal/ir"
)

// computeRegComm fills in each task's register communication metadata: the
// create mask (registers the task may write and therefore owns on the ring,
// filtered by dead-register analysis so dead values never travel) and the
// forward points (instructions that are provably the last definition of
// their register on every continuation path, letting the hardware send the
// value early instead of at task end). facts holds per-function dataflow
// solutions, indexed by ir.FnID.
func computeRegComm(part *Partition, facts []*dataflow.Facts) {
	writes := fnWriteSummaries(part.Prog)
	for _, t := range part.Tasks {
		computeTaskRegComm(part.Prog, t, writes, facts[t.Fn])
	}
}

// fnWriteSummaries computes, for every function, the set of registers it or
// any transitive callee may write. Recursion is handled by fixpoint.
func fnWriteSummaries(p *ir.Program) []dataflow.RegSet {
	own := make([]dataflow.RegSet, len(p.Fns))
	for i, f := range p.Fns {
		var set dataflow.RegSet
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if d, ok := in.Def(); ok {
					set = set.Add(d)
				}
			}
		}
		own[i] = set
	}
	out := append([]dataflow.RegSet(nil), own...)
	for changed := true; changed; {
		changed = false
		for i, f := range p.Fns {
			for _, b := range f.Blocks {
				if b.Term.Kind != ir.TermCall {
					continue
				}
				merged := out[i].Union(out[b.Term.Callee])
				if merged != out[i] {
					out[i] = merged
					changed = true
				}
			}
		}
	}
	return out
}

func computeTaskRegComm(p *ir.Program, t *Task, fnWrites []dataflow.RegSet, fa *dataflow.Facts) {
	f := p.Fn(t.Fn)
	// Per-block: own defs plus any included callee's writes.
	blockDef := make(map[ir.BlockID]dataflow.RegSet, len(t.Blocks))
	var callWrites dataflow.RegSet // regs written by included callees anywhere in the task
	for b := range t.Blocks {
		blk := f.Block(b)
		var def dataflow.RegSet
		for _, in := range blk.Instrs {
			if d, ok := in.Def(); ok {
				def = def.Add(d)
			}
		}
		if t.IncludeCall[b] {
			cw := fnWrites[blk.Term.Callee]
			def = def.Union(cw)
			callWrites = callWrites.Union(cw)
		}
		blockDef[b] = def
		t.CreateMask = t.CreateMask.Union(def)
	}

	// Dead-register analysis (the paper's §4.2 "dead register analysis for
	// register communication"): only registers live out of some task exit
	// need to travel on the ring. Exit points are blocks with at least one
	// non-continue outcome.
	if fa != nil {
		var exitLive dataflow.RegSet
		for b := range t.Blocks {
			blk := f.Block(b)
			exits := blk.Term.Kind == ir.TermRet || blk.Term.Kind == ir.TermHalt ||
				(blk.Term.Kind == ir.TermCall && !t.IncludeCall[b])
			for _, s := range blk.Succs(nil) {
				if !t.Continues(b, s) {
					exits = true
				}
			}
			if exits {
				exitLive = exitLive.Union(fa.Blocks[b].LiveOut)
			}
		}
		t.CreateMask = t.CreateMask.Intersect(exitLive)
		callWrites = callWrites.Intersect(exitLive)
	}

	// reachDef[b]: registers defined in blocks strictly after b on some
	// continuation path (via continue edges). Iterate to fixpoint over the
	// task's (acyclic) continue-edge subgraph.
	reachDef := make(map[ir.BlockID]dataflow.RegSet, len(t.Blocks))
	for changed := true; changed; {
		changed = false
		for b := range t.Blocks {
			blk := f.Block(b)
			var out dataflow.RegSet
			for _, s := range blk.Succs(nil) {
				if t.Continues(b, s) {
					out = out.Union(blockDef[s]).Union(reachDef[s])
				}
			}
			if out != reachDef[b] {
				reachDef[b] = out
				changed = true
			}
		}
	}

	// Mark last definitions. Registers written by included callees are never
	// early-forwarded (the callee body is opaque to the forward-point
	// analysis); they release at task end.
	t.lastDef = make(map[instrRef]bool)
	t.endForward = callWrites
	for b := range t.Blocks {
		blk := f.Block(b)
		var later dataflow.RegSet = reachDef[b]
		if t.IncludeCall[b] {
			later = later.Union(fnWrites[blk.Term.Callee])
		}
		for i := len(blk.Instrs) - 1; i >= 0; i-- {
			d, ok := blk.Instrs[i].Def()
			if !ok {
				continue
			}
			if !later.Has(d) && !callWrites.Has(d) {
				t.lastDef[instrRef{blk: b, idx: i}] = true
			}
			later = later.Add(d)
		}
	}
	// endForward: registers in the create mask that are NOT guaranteed to hit
	// a forward point on every path from the task entry to an exit; those are
	// released when the task ends. Backward must-analysis over the (acyclic)
	// continue-edge subgraph: mustFwd(b) = lastDefRegs(b) ∪ ⋂ outcomes(b),
	// where an exit outcome contributes the empty set.
	lastDefRegs := make(map[ir.BlockID]dataflow.RegSet, len(t.Blocks))
	for ref := range t.lastDef {
		d, _ := f.Block(ref.blk).Instrs[ref.idx].Def()
		lastDefRegs[ref.blk] = lastDefRegs[ref.blk].Add(d)
	}
	const all = ^dataflow.RegSet(0)
	mustFwd := make(map[ir.BlockID]dataflow.RegSet, len(t.Blocks))
	for b := range t.Blocks {
		mustFwd[b] = all // optimistic start for the greatest fixpoint
	}
	for changed := true; changed; {
		changed = false
		for b := range t.Blocks {
			blk := f.Block(b)
			meet := all
			exits := false
			nOutcomes := 0
			for _, s := range blk.Succs(nil) {
				nOutcomes++
				if t.Continues(b, s) {
					meet &= mustFwd[s]
				} else {
					exits = true
				}
			}
			if nOutcomes == 0 || blk.Term.Kind == ir.TermRet || blk.Term.Kind == ir.TermHalt {
				exits = true
			}
			if blk.Term.Kind == ir.TermCall && !t.IncludeCall[b] {
				exits = true
			}
			if exits {
				meet = 0
			}
			nv := lastDefRegs[b].Union(meet)
			if nv != mustFwd[b] {
				mustFwd[b] = nv
				changed = true
			}
		}
	}
	t.endForward = t.endForward.Union(t.CreateMask.Minus(mustFwd[t.Entry]))
}
