package core

import (
	"fmt"
	"sort"
	"sync"

	"multiscalar/internal/dataflow"
	"multiscalar/internal/ir"
)

// Policy is a pluggable task-growth strategy, the extension point beyond the
// paper's Heuristic enum. The selector drives coverage exactly as for the
// control-flow heuristic — seeds at the function entry, every exposed target
// and post-call resume point becomes a new seed — but growth of each task is
// a dialogue: the selector computes the admissible frontier (successor
// blocks whose inclusion keeps the task connected, single-entry, and within
// the hardware target limit) and the policy picks which candidate to admit,
// or stops. All PT001–PT010 safety therefore lives in the selector; a policy
// can only choose among moves that are already legal, never break the
// partition contract.
//
// One Policy value is created per Select call and discarded afterwards, so
// implementations may carry mutable state (budgets, rotation cursors,
// Lagrange multipliers) across the tasks of a run without synchronization.
// Selection order is deterministic, so any deterministic policy yields a
// deterministic partition.
type Policy interface {
	// Name returns the registered policy name (for diagnostics).
	Name() string
	// Pick returns the index of the frontier candidate to admit into the
	// task, or a negative value to close the task. Candidates are sorted by
	// block ID; an out-of-range index closes the task.
	Pick(t PolicyTask, frontier []PolicyCandidate) int
	// TaskDone observes the finished task (after the final Pick), letting
	// stateful policies update budgets or multipliers between tasks.
	TaskDone(t PolicyTask)
}

// PolicyTask summarizes the task being grown.
type PolicyTask struct {
	Fn     ir.FnID
	Entry  ir.BlockID
	Blocks int // member blocks so far
	Instrs int // static instructions so far (terminators included)
	Regs   int // distinct registers the task defines so far
}

// PolicyCandidate is one admissible growth move.
type PolicyCandidate struct {
	Blk ir.BlockID
	// Instrs is the candidate's static instruction count (terminator
	// included) — the marginal task-size cost.
	Instrs int
	// NewRegs counts registers the candidate defines that the task does not
	// define yet — the marginal register-communication cost (each such
	// register joins the create mask the ring must forward).
	NewRegs int
	// Freq is the profiled execution count of the candidate block — the
	// benefit weight (covering hot blocks amortizes task overhead).
	Freq uint64
}

// PolicyConfig carries the per-task budgets Options exposes to policies.
type PolicyConfig struct {
	// SizeBudget caps static instructions per task.
	SizeBudget int
	// CommBudget caps distinct defined registers per task.
	CommBudget int
}

var (
	policyMu  sync.RWMutex
	policyReg = map[string]func(PolicyConfig) Policy{}
)

// RegisterPolicy makes a policy constructible by name (typically from an
// init function in the implementing package). Registering a duplicate name
// panics: names appear in cache keys, so two implementations must never
// share one.
func RegisterPolicy(name string, factory func(PolicyConfig) Policy) {
	policyMu.Lock()
	defer policyMu.Unlock()
	if name == "" || factory == nil {
		panic("core: RegisterPolicy with empty name or nil factory")
	}
	if _, dup := policyReg[name]; dup {
		panic(fmt.Sprintf("core: policy %q registered twice", name))
	}
	policyReg[name] = factory
}

// NewPolicy constructs a registered policy. Unknown names list the registry
// (callers surface this to users verbatim).
func NewPolicy(name string, cfg PolicyConfig) (Policy, error) {
	policyMu.RLock()
	factory := policyReg[name]
	policyMu.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("core: unknown policy %q (registered: %v)", name, PolicyNames())
	}
	return factory(cfg), nil
}

// PolicyNames returns the registered policy names, sorted.
func PolicyNames() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	names := make([]string, 0, len(policyReg))
	for name := range policyReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// growSeed grows a task from a seed set, dispatching to the configured
// policy when one is set and the paper's greedy exploration otherwise.
// Every growth site in the selector goes through here, so a policy governs
// straggler and callee-entry tasks too, not just the main coverage pass.
func (s *selector) growSeed(fn ir.FnID, entry ir.BlockID, seed map[ir.BlockID]bool, explore func(ir.BlockID) bool) map[ir.BlockID]bool {
	if s.policy != nil {
		return s.policyGrow(fn, entry, seed)
	}
	return s.grow(fn, entry, seed, explore)
}

// policyGrow grows one task under the policy. The selector owns safety: a
// block enters the frontier only if it is reachable from the current set
// along a non-terminal edge, is not the entry, is not another task's entry,
// and its admission keeps the target count within MaxTargets. The policy
// owns preference: which legal candidate (if any) to take.
func (s *selector) policyGrow(fn ir.FnID, entry ir.BlockID, seed map[ir.BlockID]bool) map[ir.BlockID]bool {
	const growCap = 512
	f := s.prog().Fn(fn)
	facts := s.facts[fn]
	S := copySet(seed)
	var defs dataflow.RegSet
	state := PolicyTask{Fn: fn, Entry: entry}
	recount := func() {
		state.Blocks, state.Instrs = len(S), 0
		for b := range S {
			state.Instrs += f.Block(b).Len()
		}
		state.Regs = defs.Count()
	}
	for _, b := range sortedBlocks(S) {
		defs = defs.Union(facts.Blocks[b].Def)
	}
	recount()
	for len(S) < growCap {
		frontier := s.policyFrontier(fn, entry, S, defs)
		if len(frontier) == 0 {
			break
		}
		pick := s.policy.Pick(state, frontier)
		if pick < 0 || pick >= len(frontier) {
			break
		}
		c := frontier[pick]
		S[c.Blk] = true
		defs = defs.Union(facts.Blocks[c.Blk].Def)
		recount()
	}
	s.policy.TaskDone(state)
	return S
}

// policyFrontier computes the admissible growth moves of the set S entered
// at entry, sorted by block ID (deterministic presentation order).
func (s *selector) policyFrontier(fn ir.FnID, entry ir.BlockID, S map[ir.BlockID]bool, defs dataflow.RegSet) []PolicyCandidate {
	f := s.prog().Fn(fn)
	facts := s.facts[fn]
	cand := map[ir.BlockID]bool{}
	for b := range S {
		if s.terminalNode(fn, b) {
			continue
		}
		for _, ch := range s.dynSuccs(fn, b) {
			if S[ch] || ch == entry || cand[ch] || s.terminalEdge(fn, b, ch) {
				continue
			}
			if s.part.ByEntry[EntryKey{Fn: fn, Blk: ch}] != nil {
				continue // ch already starts another task; keep its boundary
			}
			cand[ch] = true
		}
	}
	out := make([]PolicyCandidate, 0, len(cand))
	for _, ch := range sortedBlocks(cand) {
		// Feasibility is first-fit: a candidate whose admission would exceed
		// the hardware target limit is simply not offered. (The greedy
		// heuristic explores past the limit hunting reconvergence; policies
		// trade that away for budget control.)
		S[ch] = true
		feasible := len(s.targetsOf(fn, entry, S)) <= s.opts.MaxTargets
		delete(S, ch)
		if !feasible {
			continue
		}
		out = append(out, PolicyCandidate{
			Blk:     ch,
			Instrs:  f.Block(ch).Len(),
			NewRegs: facts.Blocks[ch].Def.Minus(defs).Count(),
			Freq:    s.profile.Freq(fn, ch),
		})
	}
	return out
}
