package core

import (
	"fmt"

	"multiscalar/internal/emu"
	"multiscalar/internal/ir"
)

// Instance tracks one dynamic execution of a task and decides, block by
// block, when the task ends and through which target. The identical rules
// are used by the trace walker below and by the cycle-level simulator's
// processing units, so static targets, dynamic boundaries, and timing always
// agree.
type Instance struct {
	Task *Task
	// inclDepth is the call depth inside an included callee (0 = executing
	// the task's home function).
	inclDepth int
	// inclCall is the home-function call block that started the current
	// inclusion (valid when inclDepth > 0).
	inclCall ir.BlockID
}

// NewInstance starts a dynamic instance of the task.
func NewInstance(t *Task) *Instance { return &Instance{Task: t} }

// Step consumes the outcome of executing block blk: nextBlk is the block
// control moves to within the current function's dynamic stream (the branch
// target, the call fall-through on return, or the callee entry — the caller
// derives it from its own control state). It reports whether the task
// instance continues; if not, tgt says through which task target it exited.
func (inst *Instance) Step(blk *ir.Block, nextBlk ir.BlockID) (cont bool, tgt Target) {
	t := inst.Task
	switch blk.Term.Kind {
	case ir.TermGoto, ir.TermBr:
		if inst.inclDepth > 0 {
			return true, Target{}
		}
		if t.Continues(blk.ID, nextBlk) {
			return true, Target{}
		}
		return false, Target{Kind: TargetBlock, Blk: nextBlk}
	case ir.TermCall:
		if inst.inclDepth > 0 {
			inst.inclDepth++
			return true, Target{}
		}
		if t.IncludeCall[blk.ID] {
			inst.inclDepth = 1
			inst.inclCall = blk.ID
			return true, Target{}
		}
		return false, Target{Kind: TargetCall, Fn: blk.Term.Callee}
	case ir.TermRet:
		if inst.inclDepth > 1 {
			inst.inclDepth--
			return true, Target{}
		}
		if inst.inclDepth == 1 {
			inst.inclDepth = 0
			callBlk := inst.inclCall
			if t.Continues(callBlk, nextBlk) {
				return true, Target{}
			}
			return false, Target{Kind: TargetBlock, Blk: nextBlk}
		}
		return false, Target{Kind: TargetReturn}
	case ir.TermHalt:
		return false, Target{Kind: TargetHalt}
	}
	panic(fmt.Sprintf("core: bad terminator kind %d", blk.Term.Kind))
}

// InInclusion reports whether execution is currently inside an included
// callee.
func (inst *Instance) InInclusion() bool { return inst.inclDepth > 0 }

// TaskExec describes one completed dynamic task instance.
type TaskExec struct {
	Task *Task
	// DynInstrs is the dynamic instruction count of the instance,
	// terminators and included callees included.
	DynInstrs int
	// CTInstrs is the number of dynamic control-transfer instructions.
	CTInstrs int
	// Target is the exit target; TargetIndex is its index in Task.Targets
	// (the number the predictor must produce), or -1 if the target is not in
	// the static list (possible only for truncated feasible sets).
	Target      Target
	TargetIndex int
	// Next identifies the successor task's entry (invalid after TargetHalt).
	Next EntryKey
}

// WalkTasks executes the partitioned program sequentially and invokes visit
// for every dynamic task instance in program order. It is the measurement
// backbone for Table 1 (task sizes, control-transfer counts, prediction
// feeds) and the oracle for the simulator's task sequencing.
func WalkTasks(part *Partition, limit uint64, visit func(TaskExec)) error {
	m := emu.New(part.Prog)
	fn, blk := m.PC()
	cur := part.TaskAt(fn, blk)
	if cur == nil {
		return fmt.Errorf("core: no task at program entry %v/%v", fn, blk)
	}
	inst := NewInstance(cur)
	instrs, ct := 0, 0
	var prevCount uint64
	for {
		fn, blkID := m.PC()
		b := part.Prog.Fn(fn).Block(blkID)
		done, err := m.StepBlock()
		if err != nil {
			return err
		}
		instrs += int(m.Count - prevCount)
		prevCount = m.Count
		if b.Term.IsCT() {
			ct++
		}
		var nextBlk ir.BlockID
		nfn, nblkID := m.PC()
		switch b.Term.Kind {
		case ir.TermGoto, ir.TermBr, ir.TermRet:
			nextBlk = nblkID
		case ir.TermCall:
			nextBlk = nblkID // callee entry; Step ignores it unless included
		}
		cont, tgt := inst.Step(b, nextBlk)
		if done && cont {
			// Ret from main with a non-empty instance (e.g. main's task did
			// not mark ret as exit) — treat as a return exit.
			cont, tgt = false, Target{Kind: TargetReturn}
		}
		if cont {
			if uint64(instrs) > limit {
				return fmt.Errorf("core: %w during task walk", emu.ErrLimit)
			}
			continue
		}
		te := TaskExec{
			Task:        inst.Task,
			DynInstrs:   instrs,
			CTInstrs:    ct,
			Target:      tgt,
			TargetIndex: inst.Task.TargetIndex(tgt),
		}
		if !done {
			te.Next = EntryKey{Fn: nfn, Blk: nblkID}
		}
		visit(te)
		if done {
			return nil
		}
		next := part.TaskAt(nfn, nblkID)
		if next == nil {
			return fmt.Errorf("core: task %d (fn %d entry b%d) exited to %v/b%d which starts no task",
				inst.Task.ID, inst.Task.Fn, inst.Task.Entry, nfn, nblkID)
		}
		inst = NewInstance(next)
		instrs, ct = 0, 0
	}
}
