package sim

import (
	"multiscalar/internal/core"
	"multiscalar/internal/obs"
)

// Observer attaches optional observability sinks to one run. Both fields may
// be nil independently; a zero Observer makes RunObserved identical to Run.
//
// The instrumentation contract is zero overhead and zero perturbation: every
// emission site in the timing model is guarded by a nil check, no timing
// decision reads observer state, and a run with an observer attached
// produces a Result byte-identical to an unobserved run (asserted by
// TestRunObservedMatchesRun).
type Observer struct {
	// Tracer receives cycle-stamped events (task lifetime edges per PU,
	// squash/restart, ARB overflow, mispredictions, sync waits, register
	// ring traffic). See obs.Kind for the taxonomy.
	Tracer obs.Tracer
	// Metrics, when non-nil, receives the simulator's cycle-accounting
	// histograms (see newSimMetrics for the catalog).
	Metrics *obs.Registry
}

// simMetrics holds the simulator's histogram handles, resolved once per run
// so the hot loop never touches the registry map.
type simMetrics struct {
	tasks       *obs.Counter
	squashes    *obs.Counter
	taskInstrs  *obs.Histogram
	interWait   *obs.Histogram
	forwardLead *obs.Histogram
	restartDep  *obs.Histogram
}

// newSimMetrics registers the simulator's metrics catalog. Units are cycles
// unless stated; the catalog is documented in DESIGN.md §9.
func newSimMetrics(r *obs.Registry) *simMetrics {
	if r == nil {
		return nil
	}
	return &simMetrics{
		tasks: r.Counter("sim_tasks_total", "tasks",
			"dynamic task instances retired"),
		squashes: r.Counter("sim_squashes_total", "squashes",
			"memory dependence squash/restart pairs"),
		taskInstrs: r.Histogram("sim_task_instrs", "instrs",
			"dynamic instructions per task instance (Table 1 '#dyn inst')",
			obs.ExpBuckets(1, 2, 16)),
		interWait: r.Histogram("sim_inter_task_wait_cycles", "cycles",
			"per-task cycles stalled on values forwarded from earlier tasks",
			obs.ExpBuckets(1, 2, 20)),
		forwardLead: r.Histogram("sim_forward_lead_cycles", "cycles",
			"task completion minus register forward/release send time (ring "+
				"backpressure can push a send past completion, giving negatives)",
			obs.ExpBuckets(1, 2, 16)),
		restartDep: r.Histogram("sim_restart_depth", "restarts",
			"memory dependence restarts per task instance",
			obs.LinearBuckets(0, 1, 9)),
	}
}

// RunObserved simulates the partitioned program with optional tracing and
// metrics attached. Run(part, cfg) is RunObserved(part, cfg, Observer{}).
func RunObserved(part *core.Partition, cfg Config, o Observer) (*Result, error) {
	return runWith(part, cfg, o.Tracer, newSimMetrics(o.Metrics))
}
