// Package sim is the cycle-level Multiscalar timing simulator. It is
// functional-first and timing-directed: tasks are executed functionally in
// program order (so architectural state always matches the sequential
// emulator — an invariant the integration tests check), and a detailed
// timing model is overlaid per task: fetch through the L1 I-cache, two-way
// in-order or out-of-order issue with the paper's functional units and ROB /
// issue-list sizes, gshare intra-task branch prediction, path-based
// inter-task prediction, compiler-directed register communication over the
// ring, and ARB-based memory dependence speculation with squash/restart and
// the synchronization table.
//
// Because information between tasks flows through explicitly timestamped
// events (register forwards, speculative stores, retirement), tasks can be
// timed in program order: control mispredictions delay the assignment of the
// corrected task, memory violations restart the offending task at the
// violating store's cycle, and wrong-path occupancy is subsumed by those
// delayed assignments. DESIGN.md discusses this structure and its
// (documented) idealizations.
package sim

import (
	"fmt"

	"multiscalar/internal/core"
	"multiscalar/internal/emu"
	"multiscalar/internal/ir"
)

// traceOp is one dynamic instruction of a task instance, annotated with
// everything the timing model needs.
type traceOp struct {
	srcs    [2]ir.Reg
	nsrc    int
	dst     ir.Reg
	hasDst  bool
	class   ir.Class
	lat     int
	pc      uint64 // instruction address (gshare index, sync-table identity)
	isLoad  bool
	isStore bool
	addr    uint64 // effective address for loads/stores
	// newBlock is set on the first op of each basic block; blockAddr is the
	// block's code address (I-cache access granularity).
	newBlock  bool
	blockAddr uint64
	// branch terminator info
	isBranch bool
	taken    bool
	// forwards marks a compiler-designated forward point (last def).
	forwards bool
}

// taskTrace is the functional execution record of one task instance.
type taskTrace struct {
	task *core.Task
	ops  []traceOp
	// exit describes how the instance ended.
	exit core.Target
	// exitIdx is the target number (index into task.Targets, -1 if absent).
	exitIdx int
	// next is the successor task's entry (invalid when done).
	next core.EntryKey
	// retResume is, for a TargetCall exit, the caller-side entry where
	// execution resumes after the callee returns (the sequencer pushes it on
	// the return-address stack).
	retResume core.EntryKey
	done      bool
	// ctInstrs counts dynamic control transfers.
	ctInstrs int
}

// machine is the sequential architectural state the functional pass runs on.
type machine struct {
	prog  *ir.Program
	regs  [ir.NumRegs]uint64
	mem   *emu.Memory
	fn    ir.FnID
	blk   ir.BlockID
	stack []retAddr
	count uint64
}

type retAddr struct {
	fn  ir.FnID
	blk ir.BlockID
}

func newMachine(p *ir.Program) *machine {
	m := &machine{prog: p, mem: emu.NewMemory(), fn: p.Main, blk: p.Fn(p.Main).Entry}
	m.mem.LoadImage(p)
	m.regs[ir.RegSP] = ir.StackBase
	return m
}

// runTask executes one dynamic instance of the task the machine is parked at
// and returns its annotated trace. The machine advances to the successor
// task's entry.
func (m *machine) runTask(part *core.Partition, t *core.Task, budget uint64) (*taskTrace, error) {
	inst := core.NewInstance(t)
	tr := &taskTrace{task: t, exitIdx: -1}
	for {
		f := m.prog.Fn(m.fn)
		b := f.Block(m.blk)
		base := b.Addr
		for idx, in := range b.Instrs {
			op := traceOp{
				class: in.Op.FUClass(),
				lat:   in.Op.Latency(),
				pc:    base + uint64(idx*ir.InstrBytes),
			}
			op.nsrc = len(in.Uses(op.srcs[:0]))
			if d, ok := in.Def(); ok {
				op.dst, op.hasDst = d, true
			}
			if idx == 0 {
				op.newBlock, op.blockAddr = true, base
			}
			switch in.Op {
			case ir.OpLoad:
				op.isLoad = true
				op.addr = uint64(int64(m.regs[in.Src1]) + in.Imm)
			case ir.OpStore:
				op.isStore = true
				op.addr = uint64(int64(m.regs[in.Src1]) + in.Imm)
			}
			// Forward points are set by markForwards after the whole trace
			// is known (per-path release, as the Multiscalar compiler's
			// register communication scheduling produces).
			emu.ExecOn(in, &m.regs, m.mem.Load, m.mem.Store)
			m.count++
			tr.ops = append(tr.ops, op)
		}
		// Terminator: occupies the branch unit for one cycle.
		term := traceOp{
			class: ir.ClassBranch,
			lat:   1,
			pc:    base + uint64(len(b.Instrs)*ir.InstrBytes),
		}
		if len(b.Instrs) == 0 {
			term.newBlock, term.blockAddr = true, base
		}
		m.count++
		// Evaluate the terminator: advance machine position and compute the
		// dynamic successor block Instance.Step needs.
		var nextBlk ir.BlockID
		done := false
		switch b.Term.Kind {
		case ir.TermGoto:
			nextBlk = b.Term.Taken
			m.blk = nextBlk
		case ir.TermBr:
			term.isBranch = true
			term.srcs[0] = b.Term.Cond
			term.nsrc = 1
			if m.regs[b.Term.Cond] != 0 {
				term.taken = true
				nextBlk = b.Term.Taken
			} else {
				nextBlk = b.Term.Fall
			}
			m.blk = nextBlk
		case ir.TermCall:
			m.stack = append(m.stack, retAddr{fn: m.fn, blk: b.Term.Fall})
			m.fn = b.Term.Callee
			m.blk = m.prog.Fn(b.Term.Callee).Entry
			nextBlk = m.blk
		case ir.TermRet:
			if len(m.stack) == 0 {
				done = true // return from main ends the program
				break
			}
			top := m.stack[len(m.stack)-1]
			m.stack = m.stack[:len(m.stack)-1]
			m.fn, m.blk = top.fn, top.blk
			nextBlk = top.blk
		case ir.TermHalt:
			done = true
		}
		tr.ops = append(tr.ops, term)
		if b.Term.IsCT() {
			tr.ctInstrs++
		}
		if done {
			if b.Term.Kind == ir.TermRet {
				tr.exit = core.Target{Kind: core.TargetReturn}
			} else {
				tr.exit = core.Target{Kind: core.TargetHalt}
			}
			tr.exitIdx = t.TargetIndex(tr.exit)
			tr.done = true
			return tr, m.checkBudget(budget)
		}
		cont, tgt := inst.Step(b, nextBlk)
		if !cont {
			tr.exit = tgt
			tr.exitIdx = t.TargetIndex(tgt)
			tr.next = core.EntryKey{Fn: m.fn, Blk: m.blk}
			if tgt.Kind == core.TargetCall && len(m.stack) > 0 {
				top := m.stack[len(m.stack)-1]
				tr.retResume = core.EntryKey{Fn: top.fn, Blk: top.blk}
			}
			return tr, m.checkBudget(budget)
		}
		if err := m.checkBudget(budget); err != nil {
			return nil, err
		}
	}
}

func (m *machine) checkBudget(budget uint64) error {
	if m.count > budget {
		return fmt.Errorf("sim: %w (budget %d)", emu.ErrLimit, budget)
	}
	return nil
}

// markForwards marks, for every register in the task's create mask, the
// dynamically last write in the instance as the forward point. This models
// the paper's compiler-scheduled register communication: a forward bit on
// the last update along each path, with release instructions on paths that
// update a register earlier (or not at all — those registers release at task
// end, which the timing model applies to any created register without a
// marked forward).
func markForwards(tr *taskTrace) {
	var seen [ir.NumRegs]bool
	for i := len(tr.ops) - 1; i >= 0; i-- {
		op := &tr.ops[i]
		if op.hasDst && !seen[op.dst] && tr.task.CreateMask.Has(op.dst) {
			op.forwards = true
			seen[op.dst] = true
		}
	}
}
