package sim

import (
	"fmt"
	"strings"

	"multiscalar/internal/core"
)

// TaskRecord captures the lifetime of one dynamic task instance when
// Config.RecordTimeline is set.
type TaskRecord struct {
	Seq      int   // dynamic sequence number (program order)
	TaskID   int   // static task identity
	PU       int   // processing unit (Seq mod NumPUs)
	Assign   int64 // cycle the sequencer assigned the task
	Start    int64 // cycle execution began (after descriptor fetch)
	Complete int64 // cycle the last instruction finished
	Retire   int64 // cycle the task retired (includes end overhead)
	Instrs   int   // dynamic instructions
	Exit     core.Target
	// Mispredicted marks that this task's *successor* was mispredicted.
	Mispredicted bool
	// Restarts counts memory dependence squashes of this instance.
	Restarts int
}

// Timeline is the per-run record sequence (nil unless recording).
type Timeline []TaskRecord

// FormatTimeline renders up to max records as a text Gantt chart: one row
// per task, columns assign/start/complete/retire, plus a proportional bar.
// Pass max <= 0 for all records.
func FormatTimeline(tl Timeline, max int) string {
	if len(tl) == 0 {
		return "(empty timeline)\n"
	}
	if max <= 0 || max > len(tl) {
		max = len(tl)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%4s %5s %3s %8s %8s %8s %8s %6s %5s %s\n",
		"seq", "task", "pu", "assign", "start", "complete", "retire", "instrs", "exit", "activity")
	end := tl[max-1].Retire
	begin := tl[0].Assign
	span := end - begin
	if span <= 0 {
		span = 1
	}
	const width = 40
	for _, rec := range tl[:max] {
		bar := make([]byte, width)
		for i := range bar {
			bar[i] = ' '
		}
		mark := func(from, to int64, ch byte) {
			lo := int((from - begin) * width / span)
			hi := int((to - begin) * width / span)
			for i := lo; i <= hi && i < width; i++ {
				if i >= 0 {
					bar[i] = ch
				}
			}
		}
		mark(rec.Assign, rec.Start, '.')
		mark(rec.Start, rec.Complete, '#')
		mark(rec.Complete, rec.Retire, '-')
		flag := ""
		if rec.Mispredicted {
			flag = "!"
		}
		fmt.Fprintf(&sb, "%4d %4d%s %3d %8d %8d %8d %8d %6d %5s |%s|\n",
			rec.Seq, rec.TaskID, flag, rec.PU, rec.Assign, rec.Start, rec.Complete,
			rec.Retire, rec.Instrs, rec.Exit, string(bar))
	}
	return sb.String()
}

// Utilization computes the fraction of PU-cycles spent holding live tasks
// (start to retire) over the recorded span — a coarse occupancy figure. The
// span runs from the first assignment to the last retire, so a timeline that
// begins late in a run (or a truncated slice of one) is measured against its
// own extent, not against cycle 0.
func (tl Timeline) Utilization(numPUs int) float64 {
	if len(tl) == 0 {
		return 0
	}
	var busy, total int64
	end := tl[len(tl)-1].Retire
	for _, rec := range tl {
		busy += rec.Retire - rec.Start
	}
	total = (end - tl[0].Assign) * int64(numPUs)
	if total <= 0 {
		return 0
	}
	u := float64(busy) / float64(total)
	if u > 1 {
		u = 1
	}
	return u
}
