package sim

import (
	"strings"
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/ir"
)

func TestTimelineRecording(t *testing.T) {
	part := partition(t, vecSum(t, 50), core.ControlFlow)
	cfg := DefaultConfig(4)
	cfg.RecordTimeline = true
	res := runSim(t, part, cfg)
	if uint64(len(res.Timeline)) != res.TaskInstances {
		t.Fatalf("timeline has %d records, %d instances", len(res.Timeline), res.TaskInstances)
	}
	var prevRetire, prevAssign int64
	total := 0
	for i, rec := range res.Timeline {
		if rec.Seq != i {
			t.Errorf("record %d has seq %d", i, rec.Seq)
		}
		if rec.PU != i%4 {
			t.Errorf("record %d on PU %d, want %d", i, rec.PU, i%4)
		}
		if rec.Assign < prevAssign {
			t.Errorf("record %d assigned at %d before predecessor %d", i, rec.Assign, prevAssign)
		}
		if rec.Start < rec.Assign || rec.Complete < rec.Start || rec.Retire < rec.Complete {
			t.Errorf("record %d out of order: %+v", i, rec)
		}
		if rec.Retire < prevRetire {
			t.Errorf("record %d retires at %d before predecessor at %d (order violated)",
				i, rec.Retire, prevRetire)
		}
		prevRetire = rec.Retire
		prevAssign = rec.Assign
		total += rec.Instrs
	}
	if uint64(total) != res.Instrs {
		t.Errorf("timeline instrs %d != result %d", total, res.Instrs)
	}
	if last := res.Timeline[len(res.Timeline)-1]; last.Retire != res.Cycles {
		t.Errorf("last retire %d != total cycles %d", last.Retire, res.Cycles)
	}
}

func TestTimelineOffByDefault(t *testing.T) {
	part := partition(t, vecSum(t, 20), core.ControlFlow)
	res := runSim(t, part, DefaultConfig(4))
	if res.Timeline != nil {
		t.Error("timeline recorded without RecordTimeline")
	}
}

func TestTimelineMispredictFlags(t *testing.T) {
	part := partition(t, vecSum(t, 50), core.ControlFlow)
	cfg := DefaultConfig(4)
	cfg.RecordTimeline = true
	res := runSim(t, part, cfg)
	flagged := uint64(0)
	for _, rec := range res.Timeline {
		if rec.Mispredicted {
			flagged++
		}
	}
	if flagged != res.CtrlMispredicts {
		t.Errorf("%d flagged records, %d mispredicts", flagged, res.CtrlMispredicts)
	}
}

func TestFormatTimeline(t *testing.T) {
	part := partition(t, vecSum(t, 30), core.ControlFlow)
	cfg := DefaultConfig(2)
	cfg.RecordTimeline = true
	res := runSim(t, part, cfg)
	out := FormatTimeline(res.Timeline, 5)
	if !strings.Contains(out, "activity") {
		t.Errorf("missing header:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 6 { // header + 5 rows
		t.Errorf("rows = %d, want 6:\n%s", got, out)
	}
	if FormatTimeline(nil, 10) != "(empty timeline)\n" {
		t.Error("empty timeline not handled")
	}
}

// TestFormatTimelineEdges covers the degenerate shapes FormatTimeline must
// not choke on: a single record (span collapses to one cycle), max larger
// than the record count, and max <= 0 meaning "all".
func TestFormatTimelineEdges(t *testing.T) {
	one := Timeline{{Seq: 0, TaskID: 3, PU: 1, Assign: 10, Start: 10, Complete: 10, Retire: 10, Instrs: 1}}
	out := FormatTimeline(one, 1)
	if got := strings.Count(out, "\n"); got != 2 { // header + 1 row
		t.Errorf("single zero-span record: rows = %d, want 2:\n%s", got, out)
	}
	// All three phases collapse onto one column; the retire mark wins.
	if !strings.Contains(out, "|-") {
		t.Errorf("zero-span record drew no activity:\n%s", out)
	}

	two := Timeline{
		{Seq: 0, PU: 0, Assign: 0, Start: 1, Complete: 5, Retire: 6, Instrs: 4},
		{Seq: 1, PU: 1, Assign: 2, Start: 3, Complete: 8, Retire: 9, Instrs: 5},
	}
	// max beyond the record count clamps to all records rather than slicing
	// out of range.
	if a, b := FormatTimeline(two, 100), FormatTimeline(two, 2); a != b {
		t.Errorf("max > len differs from max == len:\n%s\nvs\n%s", a, b)
	}
	// max <= 0 means all records.
	if a, b := FormatTimeline(two, 0), FormatTimeline(two, 2); a != b {
		t.Errorf("max = 0 differs from max == len:\n%s\nvs\n%s", a, b)
	}
	if got := strings.Count(FormatTimeline(two, -1), "\n"); got != 3 {
		t.Errorf("max = -1 rows = %d, want 3", got)
	}
}

func TestUtilizationRange(t *testing.T) {
	part := partition(t, vecSum(t, 80), core.ControlFlow)
	cfg := DefaultConfig(4)
	cfg.RecordTimeline = true
	res := runSim(t, part, cfg)
	u := res.Timeline.Utilization(4)
	if u <= 0 || u > 1 {
		t.Errorf("utilization %v out of (0,1]", u)
	}
	if Timeline(nil).Utilization(4) != 0 {
		t.Error("empty utilization not zero")
	}
}

// TestUtilizationEdges pins the occupancy denominator to the recorded span
// (first assign to last retire), not to cycle 0.
func TestUtilizationEdges(t *testing.T) {
	// A timeline that starts late in the run: one PU busy from 1000 to 1100
	// after a 1000-cycle lead-in it never saw. Occupancy over its own span is
	// 100%; measuring from cycle 0 would report ~9%.
	late := Timeline{{Seq: 0, PU: 0, Assign: 1000, Start: 1000, Complete: 1090, Retire: 1100}}
	if u := late.Utilization(1); u != 1.0 {
		t.Errorf("late-start utilization = %v, want 1.0 (span is 100 cycles, all busy)", u)
	}
	// Two PUs, one fully busy and one idle over the same span: 50%.
	half := Timeline{
		{Seq: 0, PU: 0, Assign: 100, Start: 100, Complete: 190, Retire: 200},
	}
	if u := half.Utilization(2); u != 0.5 {
		t.Errorf("half utilization = %v, want 0.5", u)
	}
	// A single instantaneous record has zero span; report 0 rather than
	// dividing by zero.
	point := Timeline{{Seq: 0, PU: 0, Assign: 42, Start: 42, Complete: 42, Retire: 42}}
	if u := point.Utilization(4); u != 0 {
		t.Errorf("zero-span utilization = %v, want 0", u)
	}
	// busy can exceed the span when assign-to-start overhead overlaps (clamp
	// guards against >1 from rounding or overlapping records).
	over := Timeline{
		{Seq: 0, PU: 0, Assign: 0, Start: 0, Complete: 10, Retire: 10},
		{Seq: 1, PU: 0, Assign: 0, Start: 0, Complete: 10, Retire: 10},
	}
	if u := over.Utilization(1); u != 1 {
		t.Errorf("overlapping records utilization = %v, want clamp to 1", u)
	}
}

// TestARBOverflowStalls builds a task touching more speculative words than
// the ARB holds and checks the overflow counter fires (the access stalls to
// non-speculative time rather than corrupting state).
func TestARBOverflowStalls(t *testing.T) {
	b := ir.NewBuilder("bigtask")
	buf := b.Zeros(128)
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(8), int64(buf)).MovI(ir.R(3), 0).Goto("head")
	f.Block("head").SltI(ir.R(5), ir.R(3), 4).Br(ir.R(5), "body", "exit")
	// One giant straight-line block touching 48 distinct words (> 32 ARB
	// entries per task stage).
	bb := f.Block("body")
	for i := 0; i < 48; i++ {
		bb.Store(ir.R(3), ir.R(8), int64(i*8))
	}
	bb.AddI(ir.R(3), ir.R(3), 1)
	bb.Goto("head")
	f.Block("exit").Halt()
	f.End()
	part, err := core.Select(b.Build(), core.Options{Heuristic: core.ControlFlow})
	if err != nil {
		t.Fatal(err)
	}
	res := runSim(t, part, DefaultConfig(4))
	if res.ARBOverflows == 0 {
		t.Error("48-word speculative task did not overflow a 32-entry ARB stage")
	}
}

// TestRASHandlesDeepCalls checks return-target sequencing through nested
// calls (the sequencer's RAS must resolve every return without mispredicts
// once warmed).
func TestRASHandlesDeepCalls(t *testing.T) {
	b := ir.NewBuilder("deep")
	inner := b.DeclareFn("inner")
	outer := b.DeclareFn("outer")
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 0).Goto("head")
	f.Block("head").SltI(ir.R(5), ir.R(3), 10).Br(ir.R(5), "body", "exit")
	f.Block("body").Nop().Call(outer, "cont")
	f.Block("cont").AddI(ir.R(3), ir.R(3), 1).Goto("head")
	f.Block("exit").Halt()
	f.End()
	o := b.Func("outer")
	// Pad so the callee exceeds CALL_THRESH and is never included.
	ob := o.Block("entry")
	for i := 0; i < 40; i++ {
		ob.Nop()
	}
	ob.Call(inner, "back")
	o.Block("back").Ret()
	o.End()
	in := b.Func("inner")
	ib := in.Block("entry")
	for i := 0; i < 40; i++ {
		ib.Nop()
	}
	ib.Ret()
	in.End()
	part, err := core.Select(b.Build(), core.Options{Heuristic: core.ControlFlow, TaskSize: true})
	if err != nil {
		t.Fatal(err)
	}
	res := runSim(t, part, DefaultConfig(4))
	if res.RASMispredicts != 0 {
		t.Errorf("%d RAS mispredicts on perfectly nested calls", res.RASMispredicts)
	}
}
