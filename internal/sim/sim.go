package sim

import (
	"fmt"

	"multiscalar/internal/core"
	"multiscalar/internal/ir"
	"multiscalar/internal/mem"
	"multiscalar/internal/obs"
	"multiscalar/internal/predict"
)

// Config describes one simulated Multiscalar machine. DefaultConfig returns
// the paper's §4.2 parameters.
type Config struct {
	NumPUs     int
	IssueWidth int  // per-PU issue width (2)
	ROBSize    int  // reorder buffer entries (16), out-of-order only
	IssueQSize int  // issue list entries (8), out-of-order only
	InOrder    bool // in-order vs out-of-order PUs

	IntUnits    int // integer FUs per PU (2)
	FPUnits     int // floating-point FUs per PU (1)
	MemUnits    int // memory ports per PU (1)
	BranchUnits int // branch units per PU (1)

	RingBW            int // register ring values/cycle (2)
	TaskStartOverhead int // pipeline-fill cycles at task start (2)
	TaskEndOverhead   int // commit cycles at task end (2)

	HistoryBits uint // gshare and path predictor history (16)
	MaxTargets  int  // successors tracked by hardware (4)
	RASDepth    int  // sequencer return-address stack (32)

	ARBEntries int  // ARB entries per PU (32)
	SyncTable  bool // memory dependence synchronization table enabled
	L1DBanks   int  // data cache banks, 1 access/cycle each (default NumPUs)

	Mem mem.Config

	// MaxInstrs bounds the simulated dynamic instruction count.
	MaxInstrs uint64

	// RecordTimeline captures a TaskRecord per dynamic task instance in
	// Result.Timeline (memory grows with the run; off by default).
	RecordTimeline bool
}

// DefaultConfig returns the paper's machine for the given PU count.
func DefaultConfig(numPUs int) Config {
	return Config{
		NumPUs:            numPUs,
		IssueWidth:        2,
		ROBSize:           16,
		IssueQSize:        8,
		IntUnits:          2,
		FPUnits:           1,
		MemUnits:          1,
		BranchUnits:       1,
		RingBW:            2,
		TaskStartOverhead: 2,
		TaskEndOverhead:   2,
		HistoryBits:       16,
		MaxTargets:        4,
		RASDepth:          32,
		ARBEntries:        32,
		SyncTable:         true,
		L1DBanks:          numPUs,
		Mem:               mem.Config{NumPUs: numPUs},
		MaxInstrs:         200_000_000,
	}
}

// Breakdown attributes PU time to the paper's §2.3 categories (cycles,
// summed across tasks).
type Breakdown struct {
	StartOverhead int64
	InterTaskWait int64
	IntraTaskWait int64
	LoadImbalance int64
	EndOverhead   int64
	CtrlPenalty   int64
	MemPenalty    int64
}

// Result is the outcome of one simulation.
type Result struct {
	Cycles        int64
	Instrs        uint64
	TaskInstances uint64
	IPC           float64

	AvgTaskSize float64 // dynamic instructions per task (Table 1 "#dyn inst")
	AvgCTInstrs float64 // control transfers per task (Table 1 "#ct inst")

	TaskPredAccuracy float64 // inter-task prediction accuracy (Table 1)
	BrPredAccuracy   float64 // intra-task gshare accuracy
	WindowSpan       float64 // Σ_{i<N} TaskSize·Pred^i (Table 1 "win span")

	CtrlMispredicts uint64
	Violations      uint64
	Restarts        uint64
	SyncWaits       uint64
	ARBOverflows    uint64
	RASMispredicts  uint64

	Breakdown Breakdown

	// FinalChecksum and FinalRegs capture architectural state for the
	// emulator oracle.
	FinalChecksum uint64
	FinalRegs     [ir.NumRegs]uint64

	// Cache statistics.
	L1IMissRate, L1DMissRate, L2MissRate float64

	// Timeline holds per-task lifetime records when Config.RecordTimeline
	// was set.
	Timeline Timeline
}

// forwardRec records the latest creator of an architectural register.
type forwardRec struct {
	task int
	time int64
}

// simulator holds the machine-wide state for one run.
type simulator struct {
	cfg  Config
	part *core.Partition
	m    *machine

	hier *mem.Hierarchy
	arb  *mem.ARB
	sync *mem.SyncTable
	tp   *predict.PathPredictor
	gsh  *predict.Gshare
	ras  *predict.RAS

	puFree     []int64 // retire time of the task N back, per PU slot
	lastRetire int64   // retire time of the most recently retired task
	regFwd     [ir.NumRegs]forwardRec
	banks      *bankSched

	// Observability sinks (both nil on unobserved runs; every use is
	// guarded so tracing costs nothing when detached and never perturbs
	// timing when attached).
	tracer obs.Tracer
	met    *simMetrics

	res Result
}

// Run simulates the partitioned program on the configured machine.
func Run(part *core.Partition, cfg Config) (*Result, error) {
	return runWith(part, cfg, nil, nil)
}

// runWith is the shared body behind Run and RunObserved.
func runWith(part *core.Partition, cfg Config, tracer obs.Tracer, met *simMetrics) (*Result, error) {
	if cfg.NumPUs <= 0 {
		return nil, fmt.Errorf("sim: NumPUs must be positive, got %d", cfg.NumPUs)
	}
	if cfg.Mem.NumPUs == 0 {
		cfg.Mem.NumPUs = cfg.NumPUs
	}
	s := &simulator{
		cfg:    cfg,
		part:   part,
		tracer: tracer,
		met:    met,
		m:      newMachine(part.Prog),
		hier:   mem.NewHierarchy(cfg.Mem),
		arb:    mem.NewARB(cfg.ARBEntries),
		sync:   mem.NewSyncTable(256),
		tp:     predict.NewPathPredictor(cfg.HistoryBits, cfg.MaxTargets),
		gsh:    predict.NewGshare(cfg.HistoryBits),
		ras:    predict.NewRAS(cfg.RASDepth),
	}
	s.puFree = make([]int64, cfg.NumPUs)
	if cfg.L1DBanks == 0 {
		cfg.L1DBanks = cfg.NumPUs
		s.cfg.L1DBanks = cfg.NumPUs
	}
	s.banks = newBankSched(cfg.L1DBanks)
	for i := range s.regFwd {
		s.regFwd[i] = forwardRec{task: -1}
	}
	if err := s.run(); err != nil {
		return nil, err
	}
	return &s.res, nil
}

func (s *simulator) run() error {
	cur := s.part.EntryTask()
	if cur == nil {
		return fmt.Errorf("sim: partition has no entry task")
	}
	var (
		seq       int
		assign    int64
		totalCT   uint64
		lastRetir int64
	)
	for {
		tr, err := s.m.runTask(s.part, cur, s.cfg.MaxInstrs)
		if err != nil {
			return err
		}
		markForwards(tr)
		entryAddr := s.part.Prog.Fn(cur.Fn).Block(cur.Entry).Addr

		// Task descriptor fetch through the task cache.
		start := assign + int64(s.hier.TaskFetch(entryAddr)-1)

		pu := seq % s.cfg.NumPUs
		if s.tracer != nil {
			s.tracer.Emit(obs.Event{Kind: obs.EvTaskAssign, Cycle: assign, PU: pu, Seq: seq, Task: cur.ID})
			s.tracer.Emit(obs.Event{Kind: obs.EvTaskStart, Cycle: start, PU: pu, Seq: seq, Task: cur.ID})
		}
		interWaitBefore := s.res.Breakdown.InterTaskWait

		complete, restarts := s.timeTask(tr, seq, start)

		retire := complete
		if lastRetir > retire {
			s.res.Breakdown.LoadImbalance += lastRetir - retire
			retire = lastRetir
		}
		retire += int64(s.cfg.TaskEndOverhead)
		s.res.Breakdown.EndOverhead += int64(s.cfg.TaskEndOverhead)
		s.res.Breakdown.StartOverhead += int64(s.cfg.TaskStartOverhead)
		lastRetir = retire
		s.lastRetire = retire
		s.puFree[pu] = retire
		if s.tracer != nil {
			s.tracer.Emit(obs.Event{Kind: obs.EvTaskComplete, Cycle: complete, PU: pu, Seq: seq, Task: cur.ID})
			s.tracer.Emit(obs.Event{Kind: obs.EvTaskRetire, Cycle: retire, PU: pu, Seq: seq, Task: cur.ID, Arg: int64(len(tr.ops))})
		}
		if s.met != nil {
			s.met.tasks.Inc()
			s.met.taskInstrs.Observe(int64(len(tr.ops)))
			s.met.restartDep.Observe(int64(restarts))
			s.met.interWait.Observe(s.res.Breakdown.InterTaskWait - interWaitBefore)
		}
		s.arb.Retire(seq - 2*s.cfg.NumPUs) // state older than any in-flight window
		if seq%64 == 0 {
			// No future access can be scheduled before the current assign
			// cycle; prune old bank reservations to bound memory.
			s.banks.prune(assign)
		}

		s.res.TaskInstances++
		s.res.Instrs += uint64(len(tr.ops))
		totalCT += uint64(tr.ctInstrs)

		if s.cfg.RecordTimeline {
			s.res.Timeline = append(s.res.Timeline, TaskRecord{
				Seq:      seq,
				TaskID:   cur.ID,
				PU:       seq % s.cfg.NumPUs,
				Assign:   assign,
				Start:    start,
				Complete: complete,
				Retire:   retire,
				Instrs:   len(tr.ops),
				Exit:     tr.exit,
				Restarts: restarts,
			})
		}

		if tr.done {
			s.res.Cycles = retire
			break
		}

		// Inter-task prediction: resolve the exit of the task just timed.
		predIdx := s.tp.Predict(entryAddr)
		correct := s.tp.Resolve(entryAddr, predIdx, tr.exitIdx)
		next := s.part.TaskAt(tr.next.Fn, tr.next.Blk)
		if next == nil {
			return fmt.Errorf("sim: task %d exited to %v with no successor task", cur.ID, tr.next)
		}
		nextAddr := s.part.Prog.Fn(next.Fn).Block(next.Entry).Addr
		switch tr.exit.Kind {
		case core.TargetCall:
			s.ras.Push(encodeEntry(tr.retResume))
		case core.TargetReturn:
			if top, ok := s.ras.Pop(); !ok || top != encodeEntry(tr.next) {
				s.res.RASMispredicts++
				correct = false
			}
		}
		s.tp.Speculate(nextAddr)

		// Sequence the successor: one assignment per cycle, PU must be free,
		// and a misprediction stalls it to the resolving task's completion.
		nextAssign := assign + 1
		if free := s.puFree[(seq+1)%s.cfg.NumPUs]; free > nextAssign {
			nextAssign = free
		}
		if !correct {
			s.res.CtrlMispredicts++
			if s.tracer != nil {
				s.tracer.Emit(obs.Event{Kind: obs.EvMispredict, Cycle: complete, PU: pu, Seq: seq, Task: cur.ID})
			}
			if s.cfg.RecordTimeline {
				s.res.Timeline[len(s.res.Timeline)-1].Mispredicted = true
			}
			if complete+1 > nextAssign {
				s.res.Breakdown.CtrlPenalty += complete + 1 - nextAssign
				nextAssign = complete + 1
			}
		}
		assign = nextAssign
		seq++
		cur = next
	}

	// Finalize metrics.
	if s.res.TaskInstances > 0 {
		s.res.AvgTaskSize = float64(s.res.Instrs) / float64(s.res.TaskInstances)
		s.res.AvgCTInstrs = float64(totalCT) / float64(s.res.TaskInstances)
	}
	if s.res.Cycles > 0 {
		s.res.IPC = float64(s.res.Instrs) / float64(s.res.Cycles)
	}
	s.res.TaskPredAccuracy = s.tp.Accuracy()
	if s.gsh.Lookups > 0 {
		s.res.BrPredAccuracy = 1 - float64(s.gsh.Mispredicts)/float64(s.gsh.Lookups)
	} else {
		s.res.BrPredAccuracy = 1
	}
	span, term := 0.0, s.res.AvgTaskSize
	for i := 0; i < s.cfg.NumPUs; i++ {
		span += term
		term *= s.res.TaskPredAccuracy
	}
	s.res.WindowSpan = span
	s.res.Violations = s.arb.Violations
	s.res.ARBOverflows = s.arb.Overflows
	s.res.FinalChecksum = s.m.mem.Checksum()
	s.res.FinalRegs = s.m.regs
	s.res.L1IMissRate = s.hier.L1I.MissRate()
	s.res.L1DMissRate = s.hier.L1D.MissRate()
	s.res.L2MissRate = s.hier.L2.MissRate()
	return nil
}

func encodeEntry(k core.EntryKey) uint64 {
	return uint64(k.Fn)<<32 | uint64(uint32(k.Blk))
}

// timeTask runs the timing model over a task trace, handling memory
// dependence violations by restarting the attempt at the violating store's
// cycle (squash + re-execute), and returns the completion cycle and the
// number of restarts.
func (s *simulator) timeTask(tr *taskTrace, seq int, start int64) (int64, int) {
	restarts := 0
	for {
		complete, viol := s.timeAttempt(tr, seq, start)
		if viol == nil {
			return complete, restarts
		}
		if s.tracer != nil {
			pu := seq % s.cfg.NumPUs
			s.tracer.Emit(obs.Event{Kind: obs.EvSquash, Cycle: viol.time, PU: pu, Seq: seq, Task: tr.task.ID, Arg: int64(restarts)})
			s.tracer.Emit(obs.Event{Kind: obs.EvRestart, Cycle: viol.time + 1, PU: pu, Seq: seq, Task: tr.task.ID, Arg: int64(restarts)})
		}
		if s.met != nil {
			s.met.squashes.Inc()
		}
		restarts++
		s.arb.NoteViolation()
		s.res.Restarts++
		s.res.Breakdown.MemPenalty += viol.time - start
		if s.cfg.SyncTable {
			s.sync.Insert(viol.pc)
		}
		s.arb.SquashTask(seq)
		start = viol.time + 1
	}
}

type violation struct {
	time int64
	pc   uint64
}

// fuPool models the per-PU functional units: schedule returns the issue
// cycle for an op of the given class not earlier than t.
type fuPool struct {
	intFree []int64
	fpFree  []int64
	memFree []int64
	brFree  []int64
}

func newFUPool(cfg Config) *fuPool {
	return &fuPool{
		intFree: make([]int64, cfg.IntUnits),
		fpFree:  make([]int64, cfg.FPUnits),
		memFree: make([]int64, cfg.MemUnits),
		brFree:  make([]int64, cfg.BranchUnits),
	}
}

// schedule returns the issue cycle for an op of the given class not earlier
// than t. All units are fully pipelined (one issue slot per cycle); long
// operations like divides run on iterative side logic without blocking the
// unit's issue slot, as on contemporary cores.
func (f *fuPool) schedule(class ir.Class, t int64) int64 {
	var units []int64
	switch class {
	case ir.ClassIntALU, ir.ClassIntMul, ir.ClassIntDiv:
		units = f.intFree
	case ir.ClassFPAdd, ir.ClassFPMul, ir.ClassFPDiv:
		units = f.fpFree
	case ir.ClassMem:
		units = f.memFree
	case ir.ClassBranch:
		units = f.brFree
	}
	best := 0
	for i := 1; i < len(units); i++ {
		if units[i] < units[best] {
			best = i
		}
	}
	issue := t
	if units[best] > issue {
		issue = units[best]
	}
	units[best] = issue + 1
	return issue
}

// timeAttempt is one timing pass over the trace. It returns the completion
// cycle, or the first memory dependence violation encountered.
func (s *simulator) timeAttempt(tr *taskTrace, seq int, start int64) (int64, *violation) {
	cfg := s.cfg
	task := tr.task

	var regReady [ir.NumRegs]int64
	var regLocal [ir.NumRegs]bool
	for r := 0; r < ir.NumRegs; r++ {
		regReady[r] = s.recvTime(seq, ir.Reg(r), start)
	}

	fus := newFUPool(cfg)
	ringUse := make(map[int64]int)
	fwdTime := make(map[ir.Reg]int64)

	sendOnRing := func(t int64) int64 {
		for ringUse[t] >= cfg.RingBW {
			t++
		}
		ringUse[t]++
		return t
	}

	fetchCycle := start + int64(cfg.TaskStartOverhead)
	fetched := 0
	var lastIssue int64 = -1 << 62
	issuedInCycle := 0

	// Rolling windows for the out-of-order ROB / issue list.
	retireWin := make([]int64, cfg.ROBSize)
	issueWin := make([]int64, cfg.IssueQSize)
	var prevRetire int64

	var complete int64 = start

	for i := range tr.ops {
		op := &tr.ops[i]
		if op.newBlock {
			if lat := s.hier.InstrFetch(op.blockAddr); lat > 1 {
				fetchCycle += int64(lat - 1)
				fetched = 0
			}
		}
		if fetched >= cfg.IssueWidth {
			fetchCycle++
			fetched = 0
		}
		fetch := fetchCycle
		fetched++

		// Operand readiness with stall attribution.
		ready := fetch
		interTask := false
		for k := 0; k < op.nsrc; k++ {
			r := op.srcs[k]
			if regReady[r] > ready {
				ready = regReady[r]
				interTask = !regLocal[r]
			}
		}
		if ready > fetch {
			if interTask {
				s.res.Breakdown.InterTaskWait += ready - fetch
			} else {
				s.res.Breakdown.IntraTaskWait += ready - fetch
			}
		}

		// Pipeline structure.
		var issueMin int64
		if cfg.InOrder {
			issueMin = ready
			if issueMin < lastIssue {
				issueMin = lastIssue
			}
			if issueMin == lastIssue && issuedInCycle >= cfg.IssueWidth {
				issueMin++
			}
		} else {
			dispatch := fetch
			if w := retireWin[i%cfg.ROBSize]; i >= cfg.ROBSize && w+1 > dispatch {
				dispatch = w + 1
			}
			if w := issueWin[i%cfg.IssueQSize]; i >= cfg.IssueQSize && w > dispatch {
				dispatch = w
			}
			issueMin = ready
			if dispatch > issueMin {
				issueMin = dispatch
			}
		}

		issue := fus.schedule(op.class, issueMin)
		done := issue + int64(op.lat)

		if op.isLoad || op.isStore {
			if s.arb.WouldOverflow(seq, op.addr) {
				if s.tracer != nil {
					s.tracer.Emit(obs.Event{Kind: obs.EvARBOverflow, Cycle: issue, PU: seq % cfg.NumPUs, Seq: seq, Task: task.ID, Arg: int64(op.addr)})
				}
				// Stall the access until the task is non-speculative.
				if s.lastRetire+1 > issue {
					issue = s.lastRetire + 1
				}
			}
			if op.isLoad && cfg.SyncTable && s.sync.ShouldSync(op.pc) {
				sc, ok := s.arb.LastStoreBefore(seq, op.addr)
				switch {
				case ok && sc > issue:
					// Predicted dependence confirmed and still in flight:
					// wait for the store instead of speculating.
					s.res.SyncWaits++
					if s.tracer != nil {
						s.tracer.Emit(obs.Event{Kind: obs.EvSyncWait, Cycle: sc, PU: seq % cfg.NumPUs, Seq: seq, Task: task.ID, Arg: int64(op.pc)})
					}
					issue = sc
				case !ok:
					// No earlier store to this word at all: the prediction
					// was stale, lower its confidence.
					s.sync.Weaken(op.pc)
				}
			}
			// The L1 D-cache is interleaved into banks (one per PU in the
			// paper); each bank accepts one access per cycle.
			issue = s.banks.schedule(op.addr, issue)
			// The ARB and the L1 D-cache are probed in parallel (the ARB
			// supplies speculative versions; the cache the architectural
			// ones), so a load completes at the slower of the two. Stores
			// complete into the ARB (which buffers speculative state until
			// retirement); the line fill proceeds off the critical path, so
			// only the ARB latency charges the pipeline.
			dlat := int64(s.hier.DataAccess(op.addr))
			if a := int64(s.arb.HitLatency()); a > dlat {
				dlat = a
			}
			if op.isLoad {
				access := issue + dlat
				done = access
				s.arb.RecordLoad(seq, op.addr)
				if sc, ok := s.arb.LastStoreBefore(seq, op.addr); ok && sc > access {
					// An earlier task stores this word after we loaded it.
					return 0, &violation{time: sc, pc: op.pc}
				}
			} else {
				access := issue + int64(s.arb.HitLatency())
				done = access
				s.arb.RecordStore(seq, op.addr, access)
			}
		}

		if op.isBranch {
			if !s.gsh.Update(op.pc, op.taken) {
				// Intra-task misprediction: redirect fetch after resolution.
				if done+1 > fetchCycle {
					fetchCycle = done + 1
					fetched = 0
				}
			}
		}

		if cfg.InOrder {
			if issue > lastIssue {
				lastIssue = issue
				issuedInCycle = 1
			} else {
				issuedInCycle++
			}
		} else {
			r := done
			if prevRetire > r {
				r = prevRetire
			}
			prevRetire = r
			retireWin[i%cfg.ROBSize] = r
			issueWin[i%cfg.IssueQSize] = issue
		}

		if op.hasDst {
			regReady[op.dst] = done
			regLocal[op.dst] = true
			if op.forwards && task.CreateMask.Has(op.dst) {
				fwdTime[op.dst] = sendOnRing(done)
			}
		}
		if done > complete {
			complete = done
		}
	}

	// Release every created register not already forwarded, then publish the
	// forward times for downstream tasks. Only this success path is observed:
	// a violating attempt returns before reaching it, so forward/release
	// events are never emitted for squashed work.
	var released map[ir.Reg]bool
	if s.tracer != nil || s.met != nil {
		released = make(map[ir.Reg]bool)
	}
	for _, r := range task.CreateMask.Regs() {
		if _, ok := fwdTime[r]; !ok {
			fwdTime[r] = sendOnRing(complete)
			if released != nil {
				released[r] = true
			}
		}
	}
	for r, t := range fwdTime {
		s.regFwd[r] = forwardRec{task: seq, time: t}
	}
	if released != nil {
		// Emit in ascending register order (fwdTime is a map) so observed
		// streams are deterministic.
		pu := seq % cfg.NumPUs
		for r := 0; r < ir.NumRegs; r++ {
			t, ok := fwdTime[ir.Reg(r)]
			if !ok {
				continue
			}
			kind := obs.EvRegForward
			if released[ir.Reg(r)] {
				kind = obs.EvRegRelease
			}
			if s.tracer != nil {
				s.tracer.Emit(obs.Event{Kind: kind, Cycle: t, PU: pu, Seq: seq, Task: task.ID, Arg: int64(r)})
			}
			if s.met != nil && kind == obs.EvRegForward {
				s.met.forwardLead.Observe(complete - t)
			}
		}
	}
	return complete, nil
}

// recvTime computes when register r's value reaches the PU running task seq.
func (s *simulator) recvTime(seq int, r ir.Reg, start int64) int64 {
	rec := s.regFwd[r]
	if rec.task < 0 {
		return start
	}
	hops := seq - rec.task - 1
	if hops < 0 {
		hops = 0
	}
	if hops > s.cfg.NumPUs-1 {
		hops = s.cfg.NumPUs - 1
	}
	t := rec.time + int64(hops)
	if t < start {
		return start
	}
	return t
}
