package sim

import (
	"fmt"
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/emu"
	"multiscalar/internal/progtest"
)

// TestFuzzSimulatorOracle drives random structured programs through every
// heuristic and several machine shapes, checking that the simulator's final
// architectural state always equals the sequential emulator's and that the
// basic result invariants hold.
func TestFuzzSimulatorOracle(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			prog := progtest.Generate(int64(seed))
			for _, h := range []core.Heuristic{core.BasicBlock, core.ControlFlow, core.DataDependence} {
				part, err := core.Select(prog, core.Options{Heuristic: h, TaskSize: seed%2 == 0})
				if err != nil {
					t.Fatalf("%v: %v", h, err)
				}
				ref := emu.New(part.Prog)
				if err := ref.Run(2_000_000); err != nil {
					t.Fatal(err)
				}
				for _, pus := range []int{1, 3, 8} {
					for _, inorder := range []bool{false, true} {
						cfg := DefaultConfig(pus)
						cfg.InOrder = inorder
						res, err := Run(part, cfg)
						if err != nil {
							t.Fatalf("%v/%dPU: %v", h, pus, err)
						}
						if res.FinalChecksum != ref.Mem.Checksum() {
							t.Errorf("%v/%dPU/io=%v: memory diverged", h, pus, inorder)
						}
						if res.FinalRegs != ref.Regs {
							t.Errorf("%v/%dPU/io=%v: registers diverged", h, pus, inorder)
						}
						if res.Instrs != ref.Count {
							t.Errorf("%v/%dPU/io=%v: instrs %d vs %d", h, pus, inorder, res.Instrs, ref.Count)
						}
						if res.Cycles <= 0 || res.IPC <= 0 {
							t.Errorf("%v/%dPU/io=%v: degenerate result %d cycles IPC %.3f",
								h, pus, inorder, res.Cycles, res.IPC)
						}
						if res.IPC > float64(pus*cfg.IssueWidth) {
							t.Errorf("%v/%dPU/io=%v: IPC %.3f exceeds machine width", h, pus, inorder, res.IPC)
						}
					}
				}
			}
		})
	}
}
