package sim

// bankSched models the banked L1 D-cache ports: the cache is interleaved at
// block granularity into one bank per PU (§4.2), and each bank accepts one
// access per cycle. Conflicting accesses from different PUs serialize.
type bankSched struct {
	banks int
	use   map[bankSlot]bool
	// floor is a pruning watermark: slots below it can never be requested
	// again (tasks are timed in program order, and every timestamp derives
	// from assignments that only move forward).
	floor int64
}

type bankSlot struct {
	bank  int
	cycle int64
}

func newBankSched(banks int) *bankSched {
	if banks < 1 {
		banks = 1
	}
	return &bankSched{banks: banks, use: make(map[bankSlot]bool)}
}

// schedule returns the first cycle >= t at which addr's bank is free, and
// claims it. Blocks interleave across banks (32-byte granularity).
func (b *bankSched) schedule(addr uint64, t int64) int64 {
	bank := int((addr >> 5) % uint64(b.banks))
	if t < b.floor {
		t = b.floor
	}
	for b.use[bankSlot{bank: bank, cycle: t}] {
		t++
	}
	b.use[bankSlot{bank: bank, cycle: t}] = true
	return t
}

// prune drops reservations older than the watermark to bound memory; no
// future request can target cycles below it.
func (b *bankSched) prune(watermark int64) {
	if watermark <= b.floor {
		return
	}
	for slot := range b.use {
		if slot.cycle < watermark {
			delete(b.use, slot)
		}
	}
	b.floor = watermark
}
