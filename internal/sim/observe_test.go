package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/obs"
)

// TestRunObservedMatchesRun asserts the instrumentation contract: attaching
// a tracer and a metrics registry changes nothing about the simulation —
// every Result field (cycles, breakdown, architectural state) is identical
// to an unobserved run.
func TestRunObservedMatchesRun(t *testing.T) {
	for _, prog := range []struct {
		name string
		part *core.Partition
	}{
		{"vecsum", partition(t, vecSum(t, 60), core.ControlFlow)},
		{"memdep", partition(t, memDepProg(t), core.DataDependence)},
	} {
		cfg := DefaultConfig(4)
		plain, err := Run(prog.part, cfg)
		if err != nil {
			t.Fatal(err)
		}
		observed, err := RunObserved(prog.part, cfg, Observer{
			Tracer:  &obs.Collector{},
			Metrics: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, observed) {
			t.Errorf("%s: observed run diverged from plain run:\nplain:    %+v\nobserved: %+v",
				prog.name, plain, observed)
		}
		zero, err := RunObserved(prog.part, cfg, Observer{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, zero) {
			t.Errorf("%s: zero-observer run diverged from plain run", prog.name)
		}
	}
}

// TestTraceEventCounts locks the event stream to the Result counters: retire
// events equal task instances, squash events equal restarts, and so on.
func TestTraceEventCounts(t *testing.T) {
	part := partition(t, memDepProg(t), core.ControlFlow)
	cfg := DefaultConfig(4)
	cfg.SyncTable = false // maximize violations
	col := &obs.Collector{}
	res, err := RunObserved(part, cfg, Observer{Tracer: col})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 {
		t.Fatal("fixture produced no restarts; the squash checks below are vacuous")
	}
	checks := []struct {
		kind obs.Kind
		want uint64
	}{
		{obs.EvTaskAssign, res.TaskInstances},
		{obs.EvTaskStart, res.TaskInstances},
		{obs.EvTaskComplete, res.TaskInstances},
		{obs.EvTaskRetire, res.TaskInstances},
		{obs.EvSquash, res.Restarts},
		{obs.EvRestart, res.Restarts},
		{obs.EvMispredict, res.CtrlMispredicts},
		{obs.EvSyncWait, res.SyncWaits},
		{obs.EvARBOverflow, res.ARBOverflows},
	}
	for _, c := range checks {
		if got := uint64(col.Count(c.kind)); got != c.want {
			t.Errorf("%v events: %d, want %d", c.kind, got, c.want)
		}
	}
	// Retire events carry the instruction count; their sum is the run total.
	var instrs int64
	perPU := make(map[int]int)
	for _, e := range col.Events {
		if e.Kind == obs.EvTaskRetire {
			instrs += e.Arg
			perPU[e.PU]++
		}
	}
	if uint64(instrs) != res.Instrs {
		t.Errorf("retire-event instrs sum %d, want %d", instrs, res.Instrs)
	}
	var total int
	for pu, n := range perPU {
		if pu < 0 || pu >= cfg.NumPUs {
			t.Errorf("retire event on PU %d outside [0,%d)", pu, cfg.NumPUs)
		}
		total += n
	}
	if uint64(total) != res.TaskInstances {
		t.Errorf("per-PU retire counts sum to %d, want %d", total, res.TaskInstances)
	}
}

// TestTraceDeterministic runs the same job twice and asserts identical event
// streams (emission order included).
func TestTraceDeterministic(t *testing.T) {
	part := partition(t, memDepProg(t), core.ControlFlow)
	cfg := DefaultConfig(4)
	run := func() []obs.Event {
		col := &obs.Collector{}
		if _, err := RunObserved(part, cfg, Observer{Tracer: col}); err != nil {
			t.Fatal(err)
		}
		return col.Events
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("two observed runs of the same job produced different event streams")
	}
}

// TestChromeExportEndToEnd exports a real run and checks the acceptance
// invariants on the JSON itself: valid trace-event output, per-PU retire
// slices summing to TaskInstances, squash instants equal to Restarts.
func TestChromeExportEndToEnd(t *testing.T) {
	part := partition(t, memDepProg(t), core.ControlFlow)
	cfg := DefaultConfig(4)
	cfg.SyncTable = false
	col := &obs.Collector{}
	res, err := RunObserved(part, cfg, Observer{Tracer: col})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, col.Events, cfg.NumPUs); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	slicesPerPU := make(map[int]int)
	squashes := 0
	for _, e := range trace.TraceEvents {
		switch {
		case e.Ph == "X":
			slicesPerPU[e.Tid]++
		case e.Ph == "i" && e.Name == "squash":
			squashes++
		}
	}
	var slices int
	for pu := 0; pu < cfg.NumPUs; pu++ {
		if slicesPerPU[pu] == 0 {
			t.Errorf("PU %d track has no task slices", pu)
		}
		slices += slicesPerPU[pu]
	}
	if uint64(slices) != res.TaskInstances {
		t.Errorf("trace has %d task slices, want %d", slices, res.TaskInstances)
	}
	if uint64(squashes) != res.Restarts {
		t.Errorf("trace has %d squash instants, want %d", squashes, res.Restarts)
	}
}

// TestSimMetricsPopulated checks the cycle-accounting histograms fill from a
// real run and agree with the Result aggregates.
func TestSimMetricsPopulated(t *testing.T) {
	part := partition(t, memDepProg(t), core.ControlFlow)
	reg := obs.NewRegistry()
	res, err := RunObserved(part, DefaultConfig(4), Observer{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	byName := make(map[string]obs.MetricSnapshot)
	for _, m := range snap.Metrics {
		byName[m.Name] = m
	}
	ti := byName["sim_task_instrs"]
	if uint64(ti.Count) != res.TaskInstances {
		t.Errorf("sim_task_instrs count %d, want %d", ti.Count, res.TaskInstances)
	}
	if uint64(ti.Sum) != res.Instrs {
		t.Errorf("sim_task_instrs sum %d, want %d", ti.Sum, res.Instrs)
	}
	if got := byName["sim_tasks_total"]; got.Value == nil || uint64(*got.Value) != res.TaskInstances {
		t.Errorf("sim_tasks_total = %v, want %d", got.Value, res.TaskInstances)
	}
	if got := byName["sim_squashes_total"]; got.Value == nil || uint64(*got.Value) != res.Restarts {
		t.Errorf("sim_squashes_total = %v, want %d", got.Value, res.Restarts)
	}
	iw := byName["sim_inter_task_wait_cycles"]
	if uint64(iw.Count) != res.TaskInstances {
		t.Errorf("sim_inter_task_wait_cycles count %d, want %d", iw.Count, res.TaskInstances)
	}
	if iw.Sum != res.Breakdown.InterTaskWait {
		t.Errorf("sim_inter_task_wait_cycles sum %d, want breakdown %d",
			iw.Sum, res.Breakdown.InterTaskWait)
	}
	rd := byName["sim_restart_depth"]
	if uint64(rd.Sum) != res.Restarts {
		t.Errorf("sim_restart_depth sum %d, want %d", rd.Sum, res.Restarts)
	}
	if byName["sim_forward_lead_cycles"].Count == 0 {
		t.Error("sim_forward_lead_cycles never observed (no register traffic?)")
	}
}
