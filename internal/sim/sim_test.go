package sim

import (
	"testing"

	"multiscalar/internal/core"
	"multiscalar/internal/emu"
	"multiscalar/internal/ir"
)

// vecSum builds a program that initializes an array and reduces it — a
// loop-parallel workload with cross-task (loop-carried) register dependence
// on the accumulator.
func vecSum(t testing.TB, n int64) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("vecsum")
	arr := b.Zeros(int(n))
	out := b.Zeros(2)
	f := b.Func("main")
	f.Block("entry").
		MovI(ir.R(3), 0).MovI(ir.R(8), int64(arr)).MovI(ir.R(9), int64(out)).
		Goto("ihead")
	f.Block("ihead").SltI(ir.R(5), ir.R(3), n).Br(ir.R(5), "ibody", "sinit")
	f.Block("ibody").
		MulI(ir.R(6), ir.R(3), 3).
		ShlI(ir.R(7), ir.R(3), 3).
		Add(ir.R(7), ir.R(7), ir.R(8)).
		Store(ir.R(6), ir.R(7), 0).
		AddI(ir.R(3), ir.R(3), 1).
		Goto("ihead")
	f.Block("sinit").MovI(ir.R(3), 0).MovI(ir.R(4), 0).Goto("shead")
	f.Block("shead").SltI(ir.R(5), ir.R(3), n).Br(ir.R(5), "sbody", "exit")
	f.Block("sbody").
		ShlI(ir.R(7), ir.R(3), 3).
		Add(ir.R(7), ir.R(7), ir.R(8)).
		Load(ir.R(6), ir.R(7), 0).
		Add(ir.R(4), ir.R(4), ir.R(6)).
		AddI(ir.R(3), ir.R(3), 1).
		Goto("shead")
	f.Block("exit").Store(ir.R(4), ir.R(9), 0).Halt()
	f.End()
	return b.Build()
}

// memDepProg stores through one pointer then loads through another within
// neighboring iterations, producing true cross-task memory dependences the
// ARB must catch: the produced value goes through a long divide chain, so the
// store lands late while the consumer's address (induction-based) is ready
// early — the successor task's speculative load races ahead of it.
func memDepProg(t testing.TB) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("memdep")
	buf := b.Zeros(64)
	f := b.Func("main")
	f.Block("entry").
		MovI(ir.R(3), 1).MovI(ir.R(8), int64(buf)).MovI(ir.R(10), 3).
		MovI(ir.R(11), 1000000).Store(ir.R(11), ir.R(8), 0).Goto("head")
	f.Block("head").SltI(ir.R(5), ir.R(3), 40).Br(ir.R(5), "body", "exit")
	f.Block("body").
		AddI(ir.R(6), ir.R(3), -1).
		ShlI(ir.R(6), ir.R(6), 3).
		Add(ir.R(6), ir.R(6), ir.R(8)).
		Load(ir.R(7), ir.R(6), 0). // reads what the previous iteration stored
		Div(ir.R(7), ir.R(7), ir.R(10)).
		Div(ir.R(7), ir.R(7), ir.R(10)).
		AddI(ir.R(7), ir.R(7), 1000000).
		ShlI(ir.R(9), ir.R(3), 3).
		Add(ir.R(9), ir.R(9), ir.R(8)).
		Store(ir.R(7), ir.R(9), 0).
		AddI(ir.R(3), ir.R(3), 1).
		Goto("head")
	f.Block("exit").Halt()
	f.End()
	return b.Build()
}

func partition(t testing.TB, p *ir.Program, h core.Heuristic) *core.Partition {
	t.Helper()
	part, err := core.Select(p, core.Options{Heuristic: h, TaskSize: true})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	return part
}

func runSim(t testing.TB, part *core.Partition, cfg Config) *Result {
	t.Helper()
	res, err := Run(part, cfg)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return res
}

// TestOracle checks the central invariant: the simulator's architectural end
// state equals the sequential emulator's, for every heuristic, PU count, and
// pipeline style.
func TestOracle(t *testing.T) {
	progs := []*ir.Program{vecSum(t, 50), memDepProg(t)}
	for _, p := range progs {
		for _, h := range []core.Heuristic{core.BasicBlock, core.ControlFlow, core.DataDependence} {
			part := partition(t, p, h)
			m := emu.New(part.Prog)
			if err := m.Run(10_000_000); err != nil {
				t.Fatal(err)
			}
			for _, pus := range []int{1, 4, 8} {
				for _, inorder := range []bool{false, true} {
					cfg := DefaultConfig(pus)
					cfg.InOrder = inorder
					res := runSim(t, part, cfg)
					if res.FinalChecksum != m.Mem.Checksum() {
						t.Errorf("%s/%v/%dPU/inorder=%v: memory checksum %#x, emulator %#x",
							p.Name, h, pus, inorder, res.FinalChecksum, m.Mem.Checksum())
					}
					if res.FinalRegs != m.Regs {
						t.Errorf("%s/%v/%dPU/inorder=%v: final registers diverge", p.Name, h, pus, inorder)
					}
					if res.Instrs != m.Count {
						t.Errorf("%s/%v/%dPU/inorder=%v: %d instrs simulated, emulator ran %d",
							p.Name, h, pus, inorder, res.Instrs, m.Count)
					}
				}
			}
		}
	}
}

func TestIPCWithinIssueBound(t *testing.T) {
	part := partition(t, vecSum(t, 100), core.ControlFlow)
	for _, pus := range []int{1, 4, 8} {
		res := runSim(t, part, DefaultConfig(pus))
		maxIPC := float64(pus * DefaultConfig(pus).IssueWidth)
		if res.IPC <= 0 || res.IPC > maxIPC {
			t.Errorf("%d PUs: IPC = %.3f outside (0, %.0f]", pus, res.IPC, maxIPC)
		}
	}
}

func TestMorePUsNotSlowerOnParallelLoop(t *testing.T) {
	part := partition(t, vecSum(t, 200), core.ControlFlow)
	r4 := runSim(t, part, DefaultConfig(4))
	r8 := runSim(t, part, DefaultConfig(8))
	// Allow a little slack: more PUs never hurt by much on a parallel loop.
	if float64(r8.Cycles) > 1.05*float64(r4.Cycles) {
		t.Errorf("8 PUs slower than 4: %d vs %d cycles", r8.Cycles, r4.Cycles)
	}
}

func TestHeuristicsBeatBasicBlocks(t *testing.T) {
	// The paper's headline: control-flow tasks outperform basic-block tasks.
	p := vecSum(t, 200)
	bb := runSim(t, partition(t, p, core.BasicBlock), DefaultConfig(4))
	cf := runSim(t, partition(t, p, core.ControlFlow), DefaultConfig(4))
	if cf.IPC <= bb.IPC {
		t.Errorf("control flow IPC %.3f not above basic block IPC %.3f", cf.IPC, bb.IPC)
	}
	if cf.AvgTaskSize <= bb.AvgTaskSize {
		t.Errorf("control flow task size %.1f not above basic block %.1f",
			cf.AvgTaskSize, bb.AvgTaskSize)
	}
}

func TestMemoryDependencesDetected(t *testing.T) {
	p := memDepProg(t)
	part, err := core.Select(p, core.Options{Heuristic: core.ControlFlow})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(4)
	cfg.SyncTable = false
	res := runSim(t, part, cfg)
	if res.Violations == 0 {
		t.Error("no ARB violations on a loop-carried memory dependence with sync disabled")
	}
	if res.Restarts == 0 {
		t.Error("violations recorded but no restarts")
	}
}

func TestSyncTableReducesRestarts(t *testing.T) {
	part := partition(t, memDepProg(t), core.ControlFlow)
	noSync := DefaultConfig(4)
	noSync.SyncTable = false
	withSync := DefaultConfig(4)
	a := runSim(t, part, noSync)
	b := runSim(t, part, withSync)
	if b.Restarts >= a.Restarts && a.Restarts > 0 {
		t.Errorf("sync table did not reduce restarts: %d -> %d", a.Restarts, b.Restarts)
	}
}

func TestInOrderNotFasterThanOOO(t *testing.T) {
	part := partition(t, vecSum(t, 100), core.ControlFlow)
	ooo := runSim(t, part, DefaultConfig(4))
	ino := DefaultConfig(4)
	ino.InOrder = true
	inr := runSim(t, part, ino)
	if inr.IPC > ooo.IPC*1.01 {
		t.Errorf("in-order IPC %.3f exceeds out-of-order %.3f", inr.IPC, ooo.IPC)
	}
}

func TestDeterministicResults(t *testing.T) {
	part := partition(t, memDepProg(t), core.DataDependence)
	a := runSim(t, part, DefaultConfig(8))
	b := runSim(t, part, DefaultConfig(8))
	if a.Cycles != b.Cycles || a.Instrs != b.Instrs || a.Violations != b.Violations {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestTaskPredAccuracyRange(t *testing.T) {
	part := partition(t, vecSum(t, 100), core.ControlFlow)
	res := runSim(t, part, DefaultConfig(4))
	if res.TaskPredAccuracy < 0 || res.TaskPredAccuracy > 1 {
		t.Errorf("task pred accuracy %.3f out of range", res.TaskPredAccuracy)
	}
	if res.BrPredAccuracy < 0 || res.BrPredAccuracy > 1 {
		t.Errorf("br pred accuracy %.3f out of range", res.BrPredAccuracy)
	}
	// A steady loop should predict well once warmed.
	if res.TaskPredAccuracy < 0.8 {
		t.Errorf("task pred accuracy %.3f unexpectedly low for a steady loop", res.TaskPredAccuracy)
	}
}

func TestWindowSpanFormula(t *testing.T) {
	part := partition(t, vecSum(t, 100), core.ControlFlow)
	res := runSim(t, part, DefaultConfig(4))
	want := 0.0
	term := res.AvgTaskSize
	for i := 0; i < 4; i++ {
		want += term
		term *= res.TaskPredAccuracy
	}
	if diff := res.WindowSpan - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("window span %.3f, formula gives %.3f", res.WindowSpan, want)
	}
	if res.WindowSpan < res.AvgTaskSize {
		t.Error("window span below a single task size")
	}
}

func TestBreakdownNonNegative(t *testing.T) {
	part := partition(t, memDepProg(t), core.ControlFlow)
	res := runSim(t, part, DefaultConfig(4))
	b := res.Breakdown
	for name, v := range map[string]int64{
		"start": b.StartOverhead, "inter": b.InterTaskWait, "intra": b.IntraTaskWait,
		"imbalance": b.LoadImbalance, "end": b.EndOverhead,
		"ctrl": b.CtrlPenalty, "mem": b.MemPenalty,
	} {
		if v < 0 {
			t.Errorf("breakdown %s = %d < 0", name, v)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	part := partition(t, vecSum(t, 10), core.BasicBlock)
	if _, err := Run(part, Config{}); err == nil {
		t.Error("Run accepted zero-PU config")
	}
}
