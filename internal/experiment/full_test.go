package experiment

import (
	"fmt"
	"testing"
)

func TestFullGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid is slow")
	}
	r := NewRunner()
	cells, err := Figure5(r, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatFigure5(cells))
	fmt.Print(FormatSummary(Summarize(cells)))
	rows, err := Table1(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(FormatTable1(rows))
}
