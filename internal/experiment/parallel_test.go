package experiment

import (
	"testing"

	"multiscalar/internal/grid"
)

// parallelNames is a small cross-suite subset (integer + FP, including a
// task-size responder) so the determinism tests stay fast.
var parallelNames = []string{"compress", "ijpeg", "tomcatv"}

// TestParallelByteIdentical is the golden determinism check: a grid run
// across many workers must format byte-for-byte like a serial (one-worker)
// run, because collection order is decoupled from completion order.
func TestParallelByteIdentical(t *testing.T) {
	serial := NewRunnerOn(grid.New(grid.Options{Workers: 1}))
	par := NewRunnerOn(grid.New(grid.Options{Workers: 8}))

	sc, err := Figure5(serial, []int{4}, parallelNames)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Figure5(par, []int{4}, parallelNames)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := FormatFigure5(sc), FormatFigure5(pc); s != p {
		t.Errorf("Figure 5 output differs between serial and parallel runs:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
	if s, p := FormatSummary(Summarize(sc)), FormatSummary(Summarize(pc)); s != p {
		t.Errorf("summary differs:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}

	sr, err := Table1(serial, parallelNames)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Table1(par, parallelNames)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := FormatTable1(sr), FormatTable1(pr); s != p {
		t.Errorf("Table 1 output differs between serial and parallel runs:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}

	sa, err := AblationSync(serial, []string{"wave5"})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := AblationSync(par, []string{"wave5"})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := FormatAblation("sync", sa), FormatAblation("sync", pa); s != p {
		t.Errorf("ablation differs:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
}

// TestWarmCacheSkipsSimulation asserts the headline cache property: a
// second runner on the same cache directory regenerates identical output
// with zero sim.Run calls.
func TestWarmCacheSkipsSimulation(t *testing.T) {
	dir := t.TempDir()
	cold := NewRunnerOn(grid.New(grid.Options{CacheDir: dir}))
	cc, err := Figure5(cold, []int{4}, []string{"ijpeg"})
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Engine().Stats(); s.Sims == 0 {
		t.Fatalf("cold run simulated nothing: %+v", s)
	}

	warm := NewRunnerOn(grid.New(grid.Options{CacheDir: dir}))
	wc, err := Figure5(warm, []int{4}, []string{"ijpeg"})
	if err != nil {
		t.Fatal(err)
	}
	s := warm.Engine().Stats()
	if s.Sims != 0 || s.Partitions != 0 {
		t.Errorf("warm run did not skip simulation: %+v", s)
	}
	if s.CacheHits != int64(len(wc)) {
		t.Errorf("cache hits = %d, want %d", s.CacheHits, len(wc))
	}
	if c, w := FormatFigure5(cc), FormatFigure5(wc); c != w {
		t.Errorf("warm output differs from cold:\n--- cold ---\n%s--- warm ---\n%s", c, w)
	}
}

// TestRunnerEngineShared checks that two runners on one engine share its
// memo (the cross-experiment work sharing msreport relies on).
func TestRunnerEngineShared(t *testing.T) {
	eng := grid.New(grid.Options{})
	a, b := NewRunnerOn(eng), NewRunnerOn(eng)
	ra, err := a.Run("fpppp", CF, SimConfig{PUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run("fpppp", CF, SimConfig{PUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Error("runners on one engine recomputed the same job")
	}
	if s := eng.Stats(); s.Sims != 1 {
		t.Errorf("sims = %d, want 1", s.Sims)
	}
}
