package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"multiscalar/internal/grid"
	"multiscalar/internal/workloads"
)

// Fig5Cell is one bar of Figure 5: the IPC of one workload under one
// heuristic variant on one machine.
type Fig5Cell struct {
	Workload string
	FP       bool
	Variant  Variant
	PUs      int
	InOrder  bool
	IPC      float64
}

// Figure5 runs the full Figure 5 grid: every workload × {BB, CF, DD, TS} ×
// the given PU counts × {out-of-order, in-order}. Cells are ordered by
// suite, workload, PU count, pipeline, then variant. All cells execute
// concurrently on the runner's engine; the cell order (and therefore any
// formatted output) is independent of completion order.
func Figure5(r *Runner, pus []int, names []string) (cells []Fig5Cell, err error) {
	r, sp := r.traced("experiment.fig5")
	defer func() { sp.End(err) }()
	if len(pus) == 0 {
		pus = []int{4, 8}
	}
	if len(names) == 0 {
		names = workloads.Names()
	}
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, n := range pus {
			for _, inorder := range []bool{false, true} {
				for _, v := range Variants() {
					cells = append(cells, Fig5Cell{
						Workload: name, FP: w.FP, Variant: v,
						PUs: n, InOrder: inorder,
					})
				}
			}
		}
	}
	err = grid.RunAll(r.context(), len(cells), func(i int) error {
		c := &cells[i]
		res, err := r.Run(c.Workload, c.Variant, SimConfig{PUs: c.PUs, InOrder: c.InOrder})
		if err != nil {
			return err
		}
		c.IPC = res.IPC
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// FormatFigure5 renders the cells as the paper's two plots (integer and
// floating point), one table per machine configuration, with per-variant IPC
// columns and the improvement of each heuristic over basic-block tasks.
func FormatFigure5(cells []Fig5Cell) string {
	type cfg struct {
		pus     int
		inOrder bool
	}
	byCfg := map[cfg]map[string][4]float64{}
	fp := map[string]bool{}
	for _, c := range cells {
		k := cfg{pus: c.PUs, inOrder: c.InOrder}
		if byCfg[k] == nil {
			byCfg[k] = map[string][4]float64{}
		}
		row := byCfg[k][c.Workload]
		row[c.Variant] = c.IPC
		byCfg[k][c.Workload] = row
		fp[c.Workload] = c.FP
	}
	var keys []cfg
	for k := range byCfg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pus != keys[j].pus {
			return keys[i].pus < keys[j].pus
		}
		return !keys[i].inOrder && keys[j].inOrder
	})
	var sb strings.Builder
	for _, k := range keys {
		style := "out-of-order"
		if k.inOrder {
			style = "in-order"
		}
		fmt.Fprintf(&sb, "Figure 5: IPC, %d PUs, %s\n", k.pus, style)
		fmt.Fprintf(&sb, "%-10s %8s %8s %8s %8s %9s %9s\n",
			"benchmark", "bb", "cf", "dd", "ts", "cf/bb", "dd/bb")
		for _, isFP := range []bool{false, true} {
			suite := "integer"
			if isFP {
				suite = "floating point"
			}
			fmt.Fprintf(&sb, "-- %s --\n", suite)
			var names []string
			for n := range byCfg[k] {
				if fp[n] == isFP {
					names = append(names, n)
				}
			}
			sort.Strings(names)
			for _, n := range names {
				row := byCfg[k][n]
				fmt.Fprintf(&sb, "%-10s %8.3f %8.3f %8.3f %8.3f %8.1f%% %8.1f%%\n",
					n, row[BB], row[CF], row[DD], row[TS],
					100*(row[CF]/row[BB]-1), 100*(row[DD]/row[BB]-1))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SuiteSummary aggregates Figure 5 into the paper's §4.3.1 claims: the
// geometric-mean improvement of each heuristic over basic-block tasks per
// suite and machine, and the min/max range across benchmarks.
type SuiteSummary struct {
	Suite    string // "int" or "fp"
	PUs      int
	InOrder  bool
	Variant  Variant
	GeoMean  float64 // geomean IPC ratio over BB (1.0 = no gain)
	Min, Max float64
}

// Summarize reduces Figure 5 cells to suite summaries for CF, DD and TS.
func Summarize(cells []Fig5Cell) []SuiteSummary {
	type key struct {
		fp      bool
		pus     int
		inOrder bool
		v       Variant
	}
	ratios := map[key][]float64{}
	bbIPC := map[string]float64{}
	for _, c := range cells {
		if c.Variant == BB {
			bbIPC[fmt.Sprintf("%s/%d/%v", c.Workload, c.PUs, c.InOrder)] = c.IPC
		}
	}
	for _, c := range cells {
		if c.Variant == BB {
			continue
		}
		bb := bbIPC[fmt.Sprintf("%s/%d/%v", c.Workload, c.PUs, c.InOrder)]
		if bb <= 0 {
			continue
		}
		k := key{fp: c.FP, pus: c.PUs, inOrder: c.InOrder, v: c.Variant}
		ratios[k] = append(ratios[k], c.IPC/bb)
	}
	var out []SuiteSummary
	for k, rs := range ratios {
		s := SuiteSummary{PUs: k.pus, InOrder: k.inOrder, Variant: k.v, Suite: "int"}
		if k.fp {
			s.Suite = "fp"
		}
		logSum := 0.0
		s.Min, s.Max = math.Inf(1), math.Inf(-1)
		for _, r := range rs {
			logSum += math.Log(r)
			s.Min = math.Min(s.Min, r)
			s.Max = math.Max(s.Max, r)
		}
		s.GeoMean = math.Exp(logSum / float64(len(rs)))
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Suite != b.Suite {
			return a.Suite < b.Suite
		}
		if a.PUs != b.PUs {
			return a.PUs < b.PUs
		}
		if a.InOrder != b.InOrder {
			return !a.InOrder
		}
		return a.Variant < b.Variant
	})
	return out
}

// FormatSummary renders suite summaries.
func FormatSummary(sums []SuiteSummary) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s %4s %-12s %-15s %9s %9s %9s\n",
		"suite", "PUs", "pipeline", "variant", "geomean", "min", "max")
	for _, s := range sums {
		style := "out-of-order"
		if s.InOrder {
			style = "in-order"
		}
		fmt.Fprintf(&sb, "%-5s %4d %-12s %-15s %+8.1f%% %+8.1f%% %+8.1f%%\n",
			s.Suite, s.PUs, style, s.Variant.String(),
			100*(s.GeoMean-1), 100*(s.Min-1), 100*(s.Max-1))
	}
	return sb.String()
}
