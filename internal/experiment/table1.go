package experiment

import (
	"fmt"
	"math"
	"strings"

	"multiscalar/internal/grid"
	"multiscalar/internal/workloads"
)

// T1Row is one benchmark's row of the paper's Table 1. Prediction numbers
// are misprediction percentages, as printed in the paper.
type T1Row struct {
	Workload string
	FP       bool

	// Basic block tasks: dynamic instructions per task, task misprediction
	// %, and window span on 8 PUs.
	BBDynInst  float64
	BBTaskMisp float64
	BBWinSpan  float64

	// Control flow tasks: control transfers and dynamic instructions per
	// task, task misprediction %, per-branch normalized misprediction %.
	CFCTInst   float64
	CFDynInst  float64
	CFTaskMisp float64
	CFBrMisp   float64

	// Data dependence tasks: same columns plus window span on 8 PUs.
	DDCTInst   float64
	DDDynInst  float64
	DDTaskMisp float64
	DDBrMisp   float64
	DDWinSpan  float64
}

// brMisp normalizes a task misprediction rate to an effective per-branch
// rate given the average control transfers per task, per §4.3.3:
// (1-taskMisp) = (1-brMisp)^ct.
func brMisp(taskMisp, ctPerTask float64) float64 {
	if ctPerTask <= 0 || taskMisp >= 1 {
		return taskMisp
	}
	return 1 - math.Pow(1-taskMisp, 1/ctPerTask)
}

// Table1 measures the paper's Table 1 on 8 out-of-order PUs (the paper's
// window-span configuration). The compress and fpppp rows use the task-size
// augmented variants, as the paper does. Rows execute concurrently on the
// runner's engine and land in workload order.
func Table1(r *Runner, names []string) (rows []T1Row, err error) {
	r, sp := r.traced("experiment.table1")
	defer func() { sp.End(err) }()
	if len(names) == 0 {
		names = workloads.Names()
	}
	mc := SimConfig{PUs: 8}
	rows = make([]T1Row, len(names))
	err = grid.RunAll(r.context(), len(names), func(i int) error {
		name := names[i]
		w, err := workloads.ByName(name)
		if err != nil {
			return err
		}
		// "Since only 129.compress and 145.fpppp respond to the task size
		// heuristic, both control flow tasks and data dependence tasks are
		// augmented with the task size heuristic for these benchmarks."
		cfVariant, ddVariant := CF, DD
		if name == "compress" || name == "fpppp" {
			ddVariant = TS
		}
		bb, err := r.Run(name, BB, mc)
		if err != nil {
			return err
		}
		cf, err := r.Run(name, cfVariant, mc)
		if err != nil {
			return err
		}
		dd, err := r.Run(name, ddVariant, mc)
		if err != nil {
			return err
		}
		rows[i] = T1Row{
			Workload:   name,
			FP:         w.FP,
			BBDynInst:  bb.AvgTaskSize,
			BBTaskMisp: 1 - bb.TaskPredAccuracy,
			BBWinSpan:  bb.WindowSpan,
			CFCTInst:   cf.AvgCTInstrs,
			CFDynInst:  cf.AvgTaskSize,
			CFTaskMisp: 1 - cf.TaskPredAccuracy,
			CFBrMisp:   brMisp(1-cf.TaskPredAccuracy, cf.AvgCTInstrs),
			DDCTInst:   dd.AvgCTInstrs,
			DDDynInst:  dd.AvgTaskSize,
			DDTaskMisp: 1 - dd.TaskPredAccuracy,
			DDBrMisp:   brMisp(1-dd.TaskPredAccuracy, dd.AvgCTInstrs),
			DDWinSpan:  dd.WindowSpan,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable1 renders the rows in the paper's column layout.
func FormatTable1(rows []T1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: dynamic task size, control flow misspeculation rate and window span (8 PUs)\n")
	fmt.Fprintf(&sb, "%-10s | %6s %6s %7s | %5s %6s %6s %6s | %5s %6s %6s %6s %7s\n",
		"", "bb", "bb", "bb", "cf", "cf", "cf", "cf", "dd", "dd", "dd", "dd", "dd")
	fmt.Fprintf(&sb, "%-10s | %6s %6s %7s | %5s %6s %6s %6s | %5s %6s %6s %6s %7s\n",
		"benchmark", "#dyn", "task", "win", "#ct", "#dyn", "task", "br", "#ct", "#dyn", "task", "br", "win")
	fmt.Fprintf(&sb, "%-10s | %6s %6s %7s | %5s %6s %6s %6s | %5s %6s %6s %6s %7s\n",
		"", "inst", "pred", "span", "inst", "inst", "pred", "pred", "inst", "inst", "pred", "pred", "span")
	line := strings.Repeat("-", 112) + "\n"
	sb.WriteString(line)
	writeSuite := func(isFP bool) {
		for _, row := range rows {
			if row.FP != isFP {
				continue
			}
			fmt.Fprintf(&sb, "%-10s | %6.1f %6.1f %7.0f | %5.1f %6.1f %6.1f %6.1f | %5.1f %6.1f %6.1f %6.1f %7.0f\n",
				row.Workload,
				row.BBDynInst, 100*row.BBTaskMisp, row.BBWinSpan,
				row.CFCTInst, row.CFDynInst, 100*row.CFTaskMisp, 100*row.CFBrMisp,
				row.DDCTInst, row.DDDynInst, 100*row.DDTaskMisp, 100*row.DDBrMisp, row.DDWinSpan)
		}
	}
	writeSuite(false)
	sb.WriteString(line)
	writeSuite(true)
	return sb.String()
}
