package experiment

import (
	"strings"
	"testing"
)

// The experiment tests use small subsets so the suite stays fast; the full
// grid runs through cmd/msreport and the root benchmarks.

func TestRunnerCaches(t *testing.T) {
	r := NewRunner()
	p1, err := r.Partition("ijpeg", CF, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Partition("ijpeg", CF, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("partition not cached")
	}
	s1, err := r.Run("ijpeg", CF, SimConfig{PUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Run("ijpeg", CF, SimConfig{PUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("simulation not cached")
	}
	s3, err := r.Run("ijpeg", CF, SimConfig{PUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Error("distinct configs share a cache entry")
	}
}

func TestVariantOptions(t *testing.T) {
	if BB.options().Heuristic.String() != "basic block" {
		t.Error("BB variant mismatch")
	}
	if !TS.options().TaskSize {
		t.Error("TS variant lacks task-size heuristic")
	}
	if CF.options().TaskSize || DD.options().TaskSize {
		t.Error("CF/DD variants must not enable task size")
	}
	for _, v := range Variants() {
		if v.String() == "" || strings.HasPrefix(v.String(), "Variant(") {
			t.Errorf("variant %d lacks a name", int(v))
		}
	}
}

func TestFigure5CellCount(t *testing.T) {
	r := NewRunner()
	cells, err := Figure5(r, []int{4}, []string{"ijpeg", "swim"})
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads × 1 PU count × 2 pipelines × 4 variants.
	if len(cells) != 16 {
		t.Fatalf("cells = %d, want 16", len(cells))
	}
	for _, c := range cells {
		if c.IPC <= 0 {
			t.Errorf("%s/%v: nonpositive IPC", c.Workload, c.Variant)
		}
	}
	if !cells[0].FP == (cells[0].Workload == "swim") {
		// order: by name list; ijpeg first (int), swim later (fp)
		t.Log("suite flags:", cells[0].Workload, cells[0].FP)
	}
}

func TestSummarizeDirection(t *testing.T) {
	// ijpeg is loop-parallel: the control-flow heuristic must improve it.
	r := NewRunner()
	cells, err := Figure5(r, []int{4}, []string{"ijpeg"})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Summarize(cells) {
		if s.Variant == CF && !s.InOrder && s.GeoMean <= 1.0 {
			t.Errorf("CF geomean %.3f <= 1 on a loop-parallel benchmark", s.GeoMean)
		}
	}
	out := FormatSummary(Summarize(cells))
	if !strings.Contains(out, "control flow") {
		t.Errorf("summary output:\n%s", out)
	}
}

func TestTable1Invariants(t *testing.T) {
	r := NewRunner()
	rows, err := Table1(r, []string{"ijpeg", "tomcatv"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.CFDynInst < row.BBDynInst {
			t.Errorf("%s: cf tasks (%.1f) smaller than bb tasks (%.1f)",
				row.Workload, row.CFDynInst, row.BBDynInst)
		}
		if row.DDWinSpan <= 0 || row.BBWinSpan <= 0 {
			t.Errorf("%s: nonpositive window span", row.Workload)
		}
		if row.CFBrMisp > row.CFTaskMisp+1e-9 {
			t.Errorf("%s: per-branch misprediction %.3f exceeds task misprediction %.3f",
				row.Workload, row.CFBrMisp, row.CFTaskMisp)
		}
		for _, m := range []float64{row.BBTaskMisp, row.CFTaskMisp, row.DDTaskMisp} {
			if m < 0 || m > 1 {
				t.Errorf("%s: misprediction %v out of range", row.Workload, m)
			}
		}
	}
}

func TestBrMispNormalization(t *testing.T) {
	// One branch per task: identical. Many branches: smaller per-branch rate.
	if got := brMisp(0.2, 1); got < 0.2-1e-9 || got > 0.2+1e-9 {
		t.Errorf("brMisp(0.2,1) = %v", got)
	}
	if got := brMisp(0.2, 4); got >= 0.2 || got <= 0 {
		t.Errorf("brMisp(0.2,4) = %v, want in (0, 0.2)", got)
	}
	if got := brMisp(0, 3); got < 0 || got > 1e-12 {
		t.Errorf("brMisp(0,3) = %v", got)
	}
}

func TestAblations(t *testing.T) {
	r := NewRunner()
	rows, err := AblationTargets(r, []string{"ijpeg"}, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("target rows = %d", len(rows))
	}
	sync, err := AblationSync(r, []string{"wave5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sync) != 2 {
		t.Fatalf("sync rows = %d", len(sync))
	}
	ring, err := AblationRing(r, []string{"ijpeg"}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ring) != 2 {
		t.Fatalf("ring rows = %d", len(ring))
	}
	th, err := AblationThresh(r, []string{"compress"}, []int{10, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(th) != 2 {
		t.Fatalf("thresh rows = %d", len(th))
	}
	out := FormatAblation("targets", rows)
	if !strings.Contains(out, "N=2") {
		t.Errorf("ablation output:\n%s", out)
	}
}

func TestRingBandwidthMonotonicity(t *testing.T) {
	// Wider ring never hurts (results are deterministic; equality allowed).
	r := NewRunner()
	rows, err := AblationRing(r, []string{"tomcatv"}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].IPC+1e-9 < rows[0].IPC*0.98 {
		t.Errorf("ring 4/cyc IPC %.3f well below 1/cyc %.3f", rows[1].IPC, rows[0].IPC)
	}
}

func TestChartFigure5(t *testing.T) {
	r := NewRunner()
	cells, err := Figure5(r, []int{4}, []string{"ijpeg", "swim"})
	if err != nil {
		t.Fatal(err)
	}
	out := ChartFigure5(cells, 4, false)
	for _, want := range []string{"Figure 5", "ijpeg", "swim", "█", "integer benchmarks", "floating point benchmarks"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if got := ChartFigure5(cells, 16, false); !strings.Contains(got, "no cells") {
		t.Error("missing-config case not handled")
	}
}

func TestAblationBanks(t *testing.T) {
	r := NewRunner()
	rows, err := AblationBanks(r, []string{"swim"}, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More banks never hurt a stencil workload.
	if rows[1].IPC+1e-9 < rows[0].IPC*0.98 {
		t.Errorf("8 banks IPC %.3f well below 1 bank %.3f", rows[1].IPC, rows[0].IPC)
	}
}

func TestAblationGreedy(t *testing.T) {
	rows, err := AblationGreedy(NewRunner(), []string{"go"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Label != "greedy" || rows[1].Label != "first-fit" {
		t.Errorf("labels: %v / %v", rows[0].Label, rows[1].Label)
	}
}
