// Package experiment regenerates the paper's evaluation: Figure 5 (IPC of
// the task-selection heuristics on 4 and 8 in-order and out-of-order PUs,
// integer and floating-point suites) and Table 1 (dynamic task size,
// control-transfer counts, task and per-branch prediction accuracy, and
// window span), plus the ablations DESIGN.md calls out.
package experiment

import (
	"context"
	"fmt"

	"multiscalar/internal/core"
	"multiscalar/internal/grid"
	"multiscalar/internal/obs/span"
	"multiscalar/internal/sim"
)

// Variant names one bar of Figure 5.
type Variant int

// The four bars of Figure 5. TaskSize is the paper's "task size" bar: the
// data-dependence heuristic augmented with the task-size heuristic (the
// paper applies it to the benchmarks that respond to it, chiefly compress
// and fpppp; we run it everywhere and report it where it differs).
const (
	BB Variant = iota
	CF
	DD
	TS
	numVariants
)

// String returns the Figure 5 legend label.
func (v Variant) String() string {
	switch v {
	case BB:
		return "basic block"
	case CF:
		return "control flow"
	case DD:
		return "data dependence"
	case TS:
		return "task size"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Variants lists all Figure 5 bars in order.
func Variants() []Variant { return []Variant{BB, CF, DD, TS} }

func (v Variant) options() core.Options {
	switch v {
	case BB:
		return core.Options{Heuristic: core.BasicBlock}
	case CF:
		return core.Options{Heuristic: core.ControlFlow}
	case DD:
		return core.Options{Heuristic: core.DataDependence}
	case TS:
		return core.Options{Heuristic: core.DataDependence, TaskSize: true}
	}
	panic("experiment: bad variant")
}

// Runner executes experiment points on a grid.Engine, so Figure 5, Table 1,
// and the ablations share partitions and simulations, run in parallel
// across the engine's worker pool, and (when the engine has a cache
// directory) skip simulations already on disk.
type Runner struct {
	eng *grid.Engine
	ctx context.Context // nil = context.Background()
}

// NewRunner returns a runner on a fresh default engine (GOMAXPROCS workers,
// no disk cache).
func NewRunner() *Runner { return NewRunnerOn(grid.New(grid.Options{})) }

// NewRunnerOn returns a runner on an existing engine, sharing its memo,
// worker pool, and cache with any other user of the engine.
func NewRunnerOn(e *grid.Engine) *Runner { return &Runner{eng: e} }

// WithContext returns a runner whose experiment points ride the engine's
// context-aware path: when ctx ends, queued jobs cancel cleanly and every
// pending experiment call returns ctx's error. The receiver is unchanged.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	return &Runner{eng: r.eng, ctx: ctx}
}

func (r *Runner) context() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	//msvet:allow ctxflow (deliberate root: a Runner built without WithContext runs uncancelled)
	return context.Background()
}

// Engine exposes the underlying grid engine (for stats and direct jobs).
func (r *Runner) Engine() *grid.Engine { return r.eng }

// traced wraps a named sweep in a child span of the runner's context — an
// untraced context makes this free and returns the receiver unchanged. The
// caller must End the returned span (nil-safe).
func (r *Runner) traced(name string) (*Runner, *span.Span) {
	ctx, sp := span.Start(r.context(), name)
	if sp == nil {
		return r, nil
	}
	return r.WithContext(ctx), sp
}

// Partition returns (building and caching on demand) the partition for one
// workload and variant with the given hardware target limit (0 = paper's 4).
func (r *Runner) Partition(name string, v Variant, targets int) (*core.Partition, error) {
	opts := v.options()
	opts.MaxTargets = targets
	return r.eng.PartitionCtx(r.context(), name, opts)
}

// SimConfig selects one machine point.
type SimConfig struct {
	PUs     int
	InOrder bool
	// Targets overrides the hardware target limit (0 = 4).
	Targets int
	// RingBW overrides the register ring bandwidth (0 = 2).
	RingBW int
	// NoSyncTable disables the memory dependence synchronization table.
	NoSyncTable bool
	// L1DBanks overrides the data-cache bank count (0 = one per PU).
	L1DBanks int
}

// job resolves one workload/variant/machine point to a fully-specified grid
// job (the engine hashes the job verbatim, so all defaults are applied
// here).
func (mc SimConfig) job(name string, v Variant) grid.Job {
	opts := v.options()
	opts.MaxTargets = mc.Targets
	cfg := sim.DefaultConfig(mc.PUs)
	cfg.InOrder = mc.InOrder
	if mc.Targets != 0 {
		cfg.MaxTargets = mc.Targets
	}
	if mc.RingBW != 0 {
		cfg.RingBW = mc.RingBW
	}
	cfg.SyncTable = !mc.NoSyncTable
	if mc.L1DBanks != 0 {
		cfg.L1DBanks = mc.L1DBanks
	}
	return grid.Job{Workload: name, Select: opts, Config: cfg}
}

// Run simulates one workload/variant on one machine point, caching results.
// Safe for concurrent use; identical concurrent calls simulate once.
func (r *Runner) Run(name string, v Variant, mc SimConfig) (*sim.Result, error) {
	res, err := r.eng.RunCtx(r.context(), mc.job(name, v))
	if err != nil {
		return nil, fmt.Errorf("experiment: %s/%v: %w", name, v, err)
	}
	return res, nil
}
