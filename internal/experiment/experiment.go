// Package experiment regenerates the paper's evaluation: Figure 5 (IPC of
// the task-selection heuristics on 4 and 8 in-order and out-of-order PUs,
// integer and floating-point suites) and Table 1 (dynamic task size,
// control-transfer counts, task and per-branch prediction accuracy, and
// window span), plus the ablations DESIGN.md calls out.
package experiment

import (
	"fmt"
	"sync"

	"multiscalar/internal/core"
	"multiscalar/internal/sim"
	"multiscalar/internal/workloads"
)

// Variant names one bar of Figure 5.
type Variant int

// The four bars of Figure 5. TaskSize is the paper's "task size" bar: the
// data-dependence heuristic augmented with the task-size heuristic (the
// paper applies it to the benchmarks that respond to it, chiefly compress
// and fpppp; we run it everywhere and report it where it differs).
const (
	BB Variant = iota
	CF
	DD
	TS
	numVariants
)

// String returns the Figure 5 legend label.
func (v Variant) String() string {
	switch v {
	case BB:
		return "basic block"
	case CF:
		return "control flow"
	case DD:
		return "data dependence"
	case TS:
		return "task size"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Variants lists all Figure 5 bars in order.
func Variants() []Variant { return []Variant{BB, CF, DD, TS} }

func (v Variant) options() core.Options {
	switch v {
	case BB:
		return core.Options{Heuristic: core.BasicBlock}
	case CF:
		return core.Options{Heuristic: core.ControlFlow}
	case DD:
		return core.Options{Heuristic: core.DataDependence}
	case TS:
		return core.Options{Heuristic: core.DataDependence, TaskSize: true}
	}
	panic("experiment: bad variant")
}

// Runner caches partitions and simulation results across experiments so that
// Figure 5, Table 1, and the ablations share work.
type Runner struct {
	mu    sync.Mutex
	parts map[partKey]*core.Partition
	sims  map[simKey]*sim.Result
}

type partKey struct {
	workload string
	variant  Variant
	targets  int
}

type simKey struct {
	partKey
	pus     int
	inOrder bool
	ring    int
	sync    bool
	banks   int
}

// NewRunner returns an empty runner.
func NewRunner() *Runner {
	return &Runner{
		parts: make(map[partKey]*core.Partition),
		sims:  make(map[simKey]*sim.Result),
	}
}

// Partition returns (building and caching on demand) the partition for one
// workload and variant with the given hardware target limit (0 = paper's 4).
func (r *Runner) Partition(name string, v Variant, targets int) (*core.Partition, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := partKey{workload: name, variant: v, targets: targets}
	if p, ok := r.parts[key]; ok {
		return p, nil
	}
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	opts := v.options()
	opts.MaxTargets = targets
	p, err := core.Select(w.Build(), opts)
	if err != nil {
		return nil, fmt.Errorf("experiment: partition %s/%v: %w", name, v, err)
	}
	r.parts[key] = p
	return p, nil
}

// SimConfig selects one machine point.
type SimConfig struct {
	PUs     int
	InOrder bool
	// Targets overrides the hardware target limit (0 = 4).
	Targets int
	// RingBW overrides the register ring bandwidth (0 = 2).
	RingBW int
	// NoSyncTable disables the memory dependence synchronization table.
	NoSyncTable bool
	// L1DBanks overrides the data-cache bank count (0 = one per PU).
	L1DBanks int
}

// Run simulates one workload/variant on one machine point, caching results.
func (r *Runner) Run(name string, v Variant, mc SimConfig) (*sim.Result, error) {
	part, err := r.Partition(name, v, mc.Targets)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig(mc.PUs)
	cfg.InOrder = mc.InOrder
	if mc.Targets != 0 {
		cfg.MaxTargets = mc.Targets
	}
	if mc.RingBW != 0 {
		cfg.RingBW = mc.RingBW
	}
	cfg.SyncTable = !mc.NoSyncTable
	if mc.L1DBanks != 0 {
		cfg.L1DBanks = mc.L1DBanks
	}
	key := simKey{
		partKey: partKey{workload: name, variant: v, targets: mc.Targets},
		pus:     mc.PUs, inOrder: mc.InOrder, ring: cfg.RingBW, sync: cfg.SyncTable,
		banks: cfg.L1DBanks,
	}
	r.mu.Lock()
	if res, ok := r.sims[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()
	res, err := sim.Run(part, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: sim %s/%v/%dPU: %w", name, v, mc.PUs, err)
	}
	r.mu.Lock()
	r.sims[key] = res
	r.mu.Unlock()
	return res, nil
}
