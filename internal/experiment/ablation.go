package experiment

import (
	"context"
	"fmt"
	"strings"

	"multiscalar/internal/core"
	"multiscalar/internal/grid"
	"multiscalar/internal/sim"
)

// AblationRow is one point of a one-dimensional sweep.
type AblationRow struct {
	Workload string
	Label    string // parameter setting, e.g. "N=2"
	IPC      float64
	Extra    string // auxiliary metric (violations, accuracy, ...)
}

// sweep runs one ablation point per (workload, setting) pair concurrently
// on the runner's engine, keeping rows in workload-major order.
func sweep(ctx context.Context, n int, fn func(i int) (AblationRow, error)) ([]AblationRow, error) {
	rows := make([]AblationRow, n)
	err := grid.RunAll(ctx, n, func(i int) error {
		row, err := fn(i)
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// AblationTargets sweeps the hardware target limit N (the paper fixes 4):
// fewer trackable successors truncate feasible tasks; more relax the
// control-flow heuristic.
func AblationTargets(r *Runner, names []string, ns []int) ([]AblationRow, error) {
	if len(ns) == 0 {
		ns = []int{2, 4, 8}
	}
	return sweep(r.context(), len(names)*len(ns), func(i int) (AblationRow, error) {
		name, n := names[i/len(ns)], ns[i%len(ns)]
		res, err := r.Run(name, CF, SimConfig{PUs: 8, Targets: n})
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Workload: name,
			Label:    fmt.Sprintf("N=%d", n),
			IPC:      res.IPC,
			Extra:    fmt.Sprintf("taskpred=%.1f%% size=%.1f", 100*res.TaskPredAccuracy, res.AvgTaskSize),
		}, nil
	})
}

// AblationSync compares the memory dependence synchronization table on/off.
func AblationSync(r *Runner, names []string) ([]AblationRow, error) {
	return sweep(r.context(), len(names)*2, func(i int) (AblationRow, error) {
		name, noSync := names[i/2], i%2 == 1
		res, err := r.Run(name, DD, SimConfig{PUs: 8, NoSyncTable: noSync})
		if err != nil {
			return AblationRow{}, err
		}
		label := "sync=on"
		if noSync {
			label = "sync=off"
		}
		return AblationRow{
			Workload: name,
			Label:    label,
			IPC:      res.IPC,
			Extra:    fmt.Sprintf("violations=%d restarts=%d syncwaits=%d", res.Violations, res.Restarts, res.SyncWaits),
		}, nil
	})
}

// AblationRing sweeps the register communication ring bandwidth.
func AblationRing(r *Runner, names []string, bws []int) ([]AblationRow, error) {
	if len(bws) == 0 {
		bws = []int{1, 2, 4}
	}
	return sweep(r.context(), len(names)*len(bws), func(i int) (AblationRow, error) {
		name, bw := names[i/len(bws)], bws[i%len(bws)]
		res, err := r.Run(name, DD, SimConfig{PUs: 8, RingBW: bw})
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Workload: name,
			Label:    fmt.Sprintf("ring=%d/cyc", bw),
			IPC:      res.IPC,
		}, nil
	})
}

// AblationBanks sweeps the L1 D-cache bank count (the paper interleaves one
// bank per PU).
func AblationBanks(r *Runner, names []string, banks []int) ([]AblationRow, error) {
	if len(banks) == 0 {
		banks = []int{1, 4, 8}
	}
	return sweep(r.context(), len(names)*len(banks), func(i int) (AblationRow, error) {
		name, nb := names[i/len(banks)], banks[i%len(banks)]
		res, err := r.Run(name, CF, SimConfig{PUs: 8, L1DBanks: nb})
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Workload: name,
			Label:    fmt.Sprintf("banks=%d", nb),
			IPC:      res.IPC,
		}, nil
	})
}

// AblationGreedy compares the paper's greedy feasible-task search (which
// explores past the target limit hunting for reconverging control flow)
// against a first-fit baseline that stops at the limit. The non-standard
// selection options go straight to the grid engine, which keys partitions
// on the full option set.
func AblationGreedy(r *Runner, names []string) ([]AblationRow, error) {
	return sweep(r.context(), len(names)*2, func(i int) (AblationRow, error) {
		name, noGreedy := names[i/2], i%2 == 1
		res, err := r.Engine().Run(grid.Job{
			Workload: name,
			Select:   core.Options{Heuristic: core.ControlFlow, NoGreedy: noGreedy},
			Config:   sim.DefaultConfig(8),
		})
		if err != nil {
			return AblationRow{}, err
		}
		label := "greedy"
		if noGreedy {
			label = "first-fit"
		}
		return AblationRow{
			Workload: name,
			Label:    label,
			IPC:      res.IPC,
			Extra:    fmt.Sprintf("size=%.1f", res.AvgTaskSize),
		}, nil
	})
}

// AblationThresh sweeps the task-size heuristic's CALL_THRESH and
// LOOP_THRESH around the paper's value of 30 (again as direct grid jobs
// with non-standard selection options).
func AblationThresh(r *Runner, names []string, threshes []int) ([]AblationRow, error) {
	if len(threshes) == 0 {
		threshes = []int{10, 30, 90}
	}
	return sweep(r.context(), len(names)*len(threshes), func(i int) (AblationRow, error) {
		name, th := names[i/len(threshes)], threshes[i%len(threshes)]
		res, err := r.Engine().Run(grid.Job{
			Workload: name,
			Select: core.Options{
				Heuristic:  core.DataDependence,
				TaskSize:   true,
				CallThresh: th,
				LoopThresh: th,
			},
			Config: sim.DefaultConfig(8),
		})
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Workload: name,
			Label:    fmt.Sprintf("thresh=%d", th),
			IPC:      res.IPC,
			Extra:    fmt.Sprintf("size=%.1f", res.AvgTaskSize),
		}, nil
	})
}

// FormatAblation renders ablation rows grouped by workload.
func FormatAblation(title string, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: %s\n", title)
	fmt.Fprintf(&sb, "%-10s %-12s %8s  %s\n", "benchmark", "setting", "IPC", "notes")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-10s %-12s %8.3f  %s\n", row.Workload, row.Label, row.IPC, row.Extra)
	}
	return sb.String()
}
