package experiment

import (
	"fmt"
	"strings"

	"multiscalar/internal/core"
	"multiscalar/internal/sim"
	"multiscalar/internal/workloads"
)

// AblationRow is one point of a one-dimensional sweep.
type AblationRow struct {
	Workload string
	Label    string // parameter setting, e.g. "N=2"
	IPC      float64
	Extra    string // auxiliary metric (violations, accuracy, ...)
}

// AblationTargets sweeps the hardware target limit N (the paper fixes 4):
// fewer trackable successors truncate feasible tasks; more relax the
// control-flow heuristic.
func AblationTargets(r *Runner, names []string, ns []int) ([]AblationRow, error) {
	if len(ns) == 0 {
		ns = []int{2, 4, 8}
	}
	var rows []AblationRow
	for _, name := range names {
		for _, n := range ns {
			res, err := r.Run(name, CF, SimConfig{PUs: 8, Targets: n})
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Workload: name,
				Label:    fmt.Sprintf("N=%d", n),
				IPC:      res.IPC,
				Extra:    fmt.Sprintf("taskpred=%.1f%% size=%.1f", 100*res.TaskPredAccuracy, res.AvgTaskSize),
			})
		}
	}
	return rows, nil
}

// AblationSync compares the memory dependence synchronization table on/off.
func AblationSync(r *Runner, names []string) ([]AblationRow, error) {
	var rows []AblationRow
	for _, name := range names {
		for _, noSync := range []bool{false, true} {
			res, err := r.Run(name, DD, SimConfig{PUs: 8, NoSyncTable: noSync})
			if err != nil {
				return nil, err
			}
			label := "sync=on"
			if noSync {
				label = "sync=off"
			}
			rows = append(rows, AblationRow{
				Workload: name,
				Label:    label,
				IPC:      res.IPC,
				Extra:    fmt.Sprintf("violations=%d restarts=%d syncwaits=%d", res.Violations, res.Restarts, res.SyncWaits),
			})
		}
	}
	return rows, nil
}

// AblationRing sweeps the register communication ring bandwidth.
func AblationRing(r *Runner, names []string, bws []int) ([]AblationRow, error) {
	if len(bws) == 0 {
		bws = []int{1, 2, 4}
	}
	var rows []AblationRow
	for _, name := range names {
		for _, bw := range bws {
			res, err := r.Run(name, DD, SimConfig{PUs: 8, RingBW: bw})
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Workload: name,
				Label:    fmt.Sprintf("ring=%d/cyc", bw),
				IPC:      res.IPC,
			})
		}
	}
	return rows, nil
}

// AblationBanks sweeps the L1 D-cache bank count (the paper interleaves one
// bank per PU).
func AblationBanks(r *Runner, names []string, banks []int) ([]AblationRow, error) {
	if len(banks) == 0 {
		banks = []int{1, 4, 8}
	}
	var rows []AblationRow
	for _, name := range names {
		for _, nb := range banks {
			res, err := r.Run(name, CF, SimConfig{PUs: 8, L1DBanks: nb})
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Workload: name,
				Label:    fmt.Sprintf("banks=%d", nb),
				IPC:      res.IPC,
			})
		}
	}
	return rows, nil
}

// AblationGreedy compares the paper's greedy feasible-task search (which
// explores past the target limit hunting for reconverging control flow)
// against a first-fit baseline that stops at the limit.
func AblationGreedy(names []string) ([]AblationRow, error) {
	var rows []AblationRow
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, noGreedy := range []bool{false, true} {
			part, err := core.Select(w.Build(), core.Options{
				Heuristic: core.ControlFlow,
				NoGreedy:  noGreedy,
			})
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(part, sim.DefaultConfig(8))
			if err != nil {
				return nil, err
			}
			label := "greedy"
			if noGreedy {
				label = "first-fit"
			}
			rows = append(rows, AblationRow{
				Workload: name,
				Label:    label,
				IPC:      res.IPC,
				Extra:    fmt.Sprintf("size=%.1f", res.AvgTaskSize),
			})
		}
	}
	return rows, nil
}

// AblationThresh sweeps the task-size heuristic's CALL_THRESH and
// LOOP_THRESH around the paper's value of 30. Partitions are built directly
// (the runner's cache is keyed on the standard options).
func AblationThresh(names []string, threshes []int) ([]AblationRow, error) {
	if len(threshes) == 0 {
		threshes = []int{10, 30, 90}
	}
	var rows []AblationRow
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, th := range threshes {
			part, err := core.Select(w.Build(), core.Options{
				Heuristic:  core.DataDependence,
				TaskSize:   true,
				CallThresh: th,
				LoopThresh: th,
			})
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(part, sim.DefaultConfig(8))
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Workload: name,
				Label:    fmt.Sprintf("thresh=%d", th),
				IPC:      res.IPC,
				Extra:    fmt.Sprintf("size=%.1f", res.AvgTaskSize),
			})
		}
	}
	return rows, nil
}

// FormatAblation renders ablation rows grouped by workload.
func FormatAblation(title string, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: %s\n", title)
	fmt.Fprintf(&sb, "%-10s %-12s %8s  %s\n", "benchmark", "setting", "IPC", "notes")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-10s %-12s %8.3f  %s\n", row.Workload, row.Label, row.IPC, row.Extra)
	}
	return sb.String()
}
