package experiment

import (
	"strings"
	"testing"

	"multiscalar/internal/grid"
	_ "multiscalar/internal/policy" // register the policy zoo
)

var corpusSpec = CorpusSpec{Seed: 5, N: 4, Policies: []string{"greedy", "knapsack"}}

// TestCorpusByteIdentical extends the PR 2 golden-determinism contract to
// the generated-corpus sweep: serial and wide-parallel runs must format
// byte-for-byte identically (generation, selection, and aggregation order
// are all decoupled from completion order).
func TestCorpusByteIdentical(t *testing.T) {
	serial := NewRunnerOn(grid.New(grid.Options{Workers: 1}))
	par := NewRunnerOn(grid.New(grid.Options{Workers: 8}))
	sc, err := serial.Corpus(corpusSpec)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := par.Corpus(corpusSpec)
	if err != nil {
		t.Fatal(err)
	}
	s, p := FormatCorpus(corpusSpec, sc), FormatCorpus(corpusSpec, pc)
	if s != p {
		t.Errorf("corpus scoreboard differs between serial and parallel runs:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
	for _, arm := range []string{"basic block", "control flow", "data dependence", "policy:greedy", "policy:knapsack"} {
		if !strings.Contains(s, arm) {
			t.Errorf("scoreboard missing arm %q:\n%s", arm, s)
		}
	}
}

// TestCorpusWarmCache asserts the acceptance criterion: a warm rerun of the
// corpus sweep on the same cache directory hits the cache for 100% of jobs
// and simulates nothing — generated workload names and policy options are
// both inside the key, so keys are stable across processes.
func TestCorpusWarmCache(t *testing.T) {
	dir := t.TempDir()
	cold := NewRunnerOn(grid.New(grid.Options{CacheDir: dir}))
	cc, err := cold.Corpus(corpusSpec)
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Engine().Stats(); s.Sims == 0 {
		t.Fatalf("cold run simulated nothing: %+v", s)
	}

	warm := NewRunnerOn(grid.New(grid.Options{CacheDir: dir}))
	wc, err := warm.Corpus(corpusSpec)
	if err != nil {
		t.Fatal(err)
	}
	s := warm.Engine().Stats()
	if s.Sims != 0 {
		t.Errorf("warm run simulated %d jobs, want 0: %+v", s.Sims, s)
	}
	if want := int64(5 * corpusSpec.N); s.CacheHits != want {
		t.Errorf("cache hits = %d, want %d (all jobs)", s.CacheHits, want)
	}
	if c, w := FormatCorpus(corpusSpec, cc), FormatCorpus(corpusSpec, wc); c != w {
		t.Errorf("warm output differs from cold:\n--- cold ---\n%s--- warm ---\n%s", c, w)
	}
}

// TestCorpusRejectsBadSpec covers the error paths: empty corpus and unknown
// policy names.
func TestCorpusRejectsBadSpec(t *testing.T) {
	r := NewRunner()
	if _, err := r.Corpus(CorpusSpec{Seed: 1}); err == nil {
		t.Error("zero-size corpus accepted")
	}
	_, err := r.Corpus(CorpusSpec{Seed: 1, N: 1, Policies: []string{"bogus"}})
	if err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("err = %v, want unknown policy", err)
	}
}
