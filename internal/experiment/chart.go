package experiment

import (
	"fmt"
	"sort"
	"strings"
)

// ChartFigure5 renders one machine configuration of Figure 5 as horizontal
// text bars grouped per benchmark — the closest a terminal gets to the
// paper's bar plot. Cells from other configurations are ignored.
func ChartFigure5(cells []Fig5Cell, pus int, inOrder bool) string {
	type row struct {
		name string
		fp   bool
		ipc  [4]float64
	}
	byName := map[string]*row{}
	maxIPC := 0.0
	for _, c := range cells {
		if c.PUs != pus || c.InOrder != inOrder {
			continue
		}
		r := byName[c.Workload]
		if r == nil {
			r = &row{name: c.Workload, fp: c.FP}
			byName[c.Workload] = r
		}
		r.ipc[c.Variant] = c.IPC
		if c.IPC > maxIPC {
			maxIPC = c.IPC
		}
	}
	if len(byName) == 0 || maxIPC == 0 {
		return "(no cells for this configuration)\n"
	}
	var rows []*row
	for _, r := range byName {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].fp != rows[j].fp {
			return !rows[i].fp
		}
		return rows[i].name < rows[j].name
	})
	style := "out-of-order"
	if inOrder {
		style = "in-order"
	}
	const width = 48
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5 — IPC, %d PUs, %s (bar = IPC, full scale %.2f)\n", pus, style, maxIPC)
	labels := [4]string{"bb", "cf", "dd", "ts"}
	lastFP := false
	for i, r := range rows {
		if i == 0 || r.fp != lastFP {
			suite := "integer benchmarks"
			if r.fp {
				suite = "floating point benchmarks"
			}
			fmt.Fprintf(&sb, "\n  %s\n", suite)
			lastFP = r.fp
		}
		for v := 0; v < 4; v++ {
			n := int(r.ipc[v] / maxIPC * width)
			name := ""
			if v == 0 {
				name = r.name
			}
			fmt.Fprintf(&sb, "%-10s %s %-*s %.3f\n", name, labels[v], width, strings.Repeat("█", n), r.ipc[v])
		}
	}
	return sb.String()
}
