package experiment

import (
	"fmt"
	"strings"

	"multiscalar/internal/core"
	"multiscalar/internal/gen"
	"multiscalar/internal/grid"
)

// CorpusSpec describes a generated-corpus sweep: N programs derived from a
// seed (gen.CorpusParams), each partitioned by every arm — the paper's
// heuristics plus the named policies — and simulated on one machine point.
// Every (program × arm) pair is a fully-resolved grid job, so the sweep
// inherits the engine's dedup, worker pool, disk cache, dist tier, and span
// instrumentation; the generated workload's canonical name embeds seed and
// params, and Options embeds the policy, so cache keys cover the whole
// configuration and a warm rerun simulates nothing.
type CorpusSpec struct {
	// Seed roots the corpus; program i uses gen.CorpusParams(Seed, i).
	Seed int64
	// N is the corpus size (number of generated programs).
	N int
	// Policies are registered policy names raced against the heuristics
	// (nil = none; msreport passes the full zoo).
	Policies []string
	// Machine is the simulated machine point (zero value = 4 out-of-order
	// PUs, the paper's headline configuration).
	Machine SimConfig
}

func (spec CorpusSpec) withDefaults() CorpusSpec {
	if spec.Machine.PUs == 0 {
		spec.Machine.PUs = 4
	}
	return spec
}

// CorpusArm is one column family of the scoreboard.
type corpusArm struct {
	label string
	opts  core.Options
}

// corpusArms lists the heuristic arms then the policy arms, in scoreboard
// order. Policies ride the control-flow heuristic's machinery but growth
// decisions are theirs alone.
func corpusArms(policies []string) []corpusArm {
	arms := []corpusArm{
		{"basic block", core.Options{Heuristic: core.BasicBlock}},
		{"control flow", core.Options{Heuristic: core.ControlFlow}},
		{"data dependence", core.Options{Heuristic: core.DataDependence}},
	}
	for _, p := range policies {
		arms = append(arms, corpusArm{"policy:" + p, core.Options{Heuristic: core.ControlFlow, Policy: p}})
	}
	return arms
}

// CorpusRow aggregates one arm over the whole corpus.
type CorpusRow struct {
	Arm      string
	Programs int
	// Tasks is the total static task count across the corpus.
	Tasks int
	// AvgTaskSize is dynamic instructions per task instance (simulated).
	AvgTaskSize float64
	// AvgCreateRegs is create-mask registers per static task — the register
	// ring traffic the arm signs the hardware up for.
	AvgCreateRegs float64
	// AvgTargets is successors per static task.
	AvgTargets float64
	// Cycles is the summed simulated cycle count (lower = faster corpus).
	Cycles int64
	// IPC is the aggregate instructions-per-cycle over the corpus.
	IPC float64
}

// Corpus runs the sweep. Results are collected into index-addressed slots
// and aggregated in arm-major order, so the scoreboard is byte-identical
// whatever the engine's worker count — same golden-determinism contract as
// Figure5/Table1.
func (r *Runner) Corpus(spec CorpusSpec) (rows []CorpusRow, err error) {
	spec = spec.withDefaults()
	if spec.N <= 0 {
		return nil, fmt.Errorf("experiment: corpus size %d, want > 0", spec.N)
	}
	tr, sp := r.traced("experiment.corpus")
	defer func() { sp.End(err) }()
	arms := corpusArms(spec.Policies)
	names := make([]string, spec.N)
	for i := range names {
		names[i] = gen.CorpusParams(spec.Seed, i).Key()
	}
	type slot struct {
		stats core.Stats
		cyc   int64
		inst  uint64
		tasks uint64 // dynamic task instances
	}
	slots := make([]slot, len(arms)*spec.N)
	err = grid.RunAll(tr.context(), len(slots), func(idx int) error {
		arm, prog := arms[idx/spec.N], idx%spec.N
		job := spec.Machine.job(names[prog], CF)
		job.Select = arm.opts
		job.Select.MaxTargets = spec.Machine.Targets
		res, err := tr.eng.RunCtx(tr.context(), job)
		if err != nil {
			return fmt.Errorf("corpus %s/%s: %w", arm.label, names[prog], err)
		}
		part, err := tr.eng.PartitionCtx(tr.context(), names[prog], job.Select)
		if err != nil {
			return fmt.Errorf("corpus %s/%s: %w", arm.label, names[prog], err)
		}
		slots[idx] = slot{stats: core.ComputeStats(part), cyc: res.Cycles, inst: res.Instrs, tasks: res.TaskInstances}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows = make([]CorpusRow, len(arms))
	for a, arm := range arms {
		row := CorpusRow{Arm: arm.label, Programs: spec.N}
		var createRegs, targets float64
		var instrs, instances uint64
		for i := 0; i < spec.N; i++ {
			s := slots[a*spec.N+i]
			row.Tasks += s.stats.Tasks
			createRegs += s.stats.AvgCreateRegs * float64(s.stats.Tasks)
			targets += s.stats.AvgTargets * float64(s.stats.Tasks)
			row.Cycles += s.cyc
			instrs += s.inst
			instances += s.tasks
		}
		if row.Tasks > 0 {
			row.AvgCreateRegs = createRegs / float64(row.Tasks)
			row.AvgTargets = targets / float64(row.Tasks)
		}
		if instances > 0 {
			row.AvgTaskSize = float64(instrs) / float64(instances)
		}
		if row.Cycles > 0 {
			row.IPC = float64(instrs) / float64(row.Cycles)
		}
		rows[a] = row
	}
	return rows, nil
}

// FormatCorpus renders the policy-vs-heuristic scoreboard.
func FormatCorpus(spec CorpusSpec, rows []CorpusRow) string {
	spec = spec.withDefaults()
	var sb strings.Builder
	ord := "out-of-order"
	if spec.Machine.InOrder {
		ord = "in-order"
	}
	fmt.Fprintf(&sb, "Generated corpus seed=%d n=%d (%d %s PUs)\n", spec.Seed, spec.N, spec.Machine.PUs, ord)
	fmt.Fprintf(&sb, "%-18s %6s %10s %12s %9s %12s %7s\n",
		"arm", "tasks", "task size", "create regs", "targets", "cycles", "IPC")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %6d %10.2f %12.2f %9.2f %12d %7.3f\n",
			r.Arm, r.Tasks, r.AvgTaskSize, r.AvgCreateRegs, r.AvgTargets, r.Cycles, r.IPC)
	}
	return sb.String()
}
