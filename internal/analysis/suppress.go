package analysis

import (
	"go/token"
	"strings"
)

// msvet findings are suppressed in source with a justification comment:
//
//	e.Run(job) //msvet:allow ctxflow (compat wrapper: delegates to RunCtx)
//
// The comment names one analyzer (or a comma-separated list) and suppresses
// that analyzer's findings on its own line and on the line directly below —
// so both trailing comments and comments above the offending statement work.
// A bare "//msvet:allow" with no analyzer name suppresses nothing; naming
// the contract being waived is mandatory.
const allowPrefix = "//msvet:allow"

// allowSet maps file → line → analyzer names allowed there.
type allowSet map[string]map[int][]string

// allowedLines scans every comment of the package for //msvet:allow markers.
func allowedLines(pkg *Package) allowSet {
	set := make(allowSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				// The analyzer list ends at the first space; anything after
				// is the (mandatory by convention) justification.
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					set[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						lines[pos.Line] = append(lines[pos.Line], name)
					}
				}
			}
		}
	}
	return set
}

// suppresses reports whether an allow marker for the analyzer covers the
// diagnostic's line (marker on the same line or the line above).
func (s allowSet) suppresses(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}
