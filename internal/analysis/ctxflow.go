package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxflow enforces context propagation through the concurrent layers. The
// grid engine, the HTTP service, and the experiment runners all support
// cancellation (shed load, abort a sweep, drain the server); that only works
// if contexts flow from the caller down to every goroutine. Two rules:
//
//  1. An exported function or method in internal/grid, internal/serve,
//     internal/experiment, internal/dist, or internal/jobs that starts
//     goroutines must accept a context.Context, and it must be the first
//     parameter.
//  2. Library code in those packages must not synthesize its own root with
//     context.Background() or context.TODO() — that silently detaches the
//     work from the caller's cancellation. Deliberate roots (main functions,
//     compatibility wrappers) carry a //msvet:allow ctxflow justification.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "exported concurrency entry points must accept a leading context.Context; " +
		"library code must not call context.Background/TODO",
	Run: runCtxflow,
}

func runCtxflow(pass *Pass) error {
	inScope := false
	for _, suffix := range []string{"internal/grid", "internal/serve", "internal/experiment", "internal/dist", "internal/jobs"} {
		if pathHasSuffix(pass.Pkg.Path(), suffix) {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBackground(pass, fn)
			if fn.Name.IsExported() {
				checkEntryPoint(pass, fn)
			}
		}
	}
	return nil
}

// checkBackground flags context.Background/TODO anywhere in the function.
func checkBackground(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleePath(call, pass.Info) {
		case "context.Background", "context.TODO":
			pass.Reportf(call.Pos(), "%s in library code detaches this work from the caller's cancellation; accept a context.Context instead",
				calleePath(call, pass.Info))
		}
		return true
	})
}

// checkEntryPoint requires a leading context.Context parameter on exported
// functions that start goroutines.
func checkEntryPoint(pass *Pass, fn *ast.FuncDecl) {
	if !startsGoroutine(fn.Body) {
		return
	}
	params := fn.Type.Params
	if params != nil && len(params.List) > 0 {
		first := params.List[0]
		if isContextType(pass.Info.TypeOf(first.Type)) {
			return
		}
		// A context anywhere else is a style violation, not a missing one.
		for _, field := range params.List[1:] {
			if isContextType(pass.Info.TypeOf(field.Type)) {
				pass.Reportf(fn.Name.Pos(), "exported %s takes a context.Context but not as its first parameter",
					fn.Name.Name)
				return
			}
		}
	}
	pass.Reportf(fn.Name.Pos(), "exported %s starts goroutines but does not accept a context.Context; callers cannot cancel the work it spawns",
		fn.Name.Name)
}

// startsGoroutine reports whether the body contains a go statement, including
// inside nested function literals (the goroutine still escapes this call).
func startsGoroutine(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}
