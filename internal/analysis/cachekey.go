package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Cachekey guards the grid cache against silent key drift. The experiment
// cache (internal/grid) addresses results by a SHA-256 over the JSON
// encoding of SchemaVersion plus the job's core.Options and sim.Config. That
// scheme has two failure modes the compiler cannot catch:
//
//   - a field that json.Marshal silently drops (unexported, or tagged
//     `json:"-"`) or cannot encode (func, chan) makes two semantically
//     different jobs collide on one cache entry — stale results served as
//     fresh;
//   - a field added to either struct changes the meaning of old entries,
//     which is exactly what SchemaVersion exists to version — but nothing
//     forces the person adding the field to look at the key.
//
// The analyzer applies to any package that derives cache keys (declares a
// *Key function and imports — or, for internal/gen, declares — the config
// structs). It walks every field of core.Options, sim.Config, and
// gen.Params — recursively through nested structs such as mem.Config — and
// reports marshal-hostile fields; it requires a
// SchemaVersion constant, referenced by every *Key function; and it pins the
// struct shapes with a fingerprint: the package must declare
//
//	const schemaFingerprint = "<hex>"
//
// matching a hash of the recursive field list. Any edit to either struct
// breaks the fingerprint, and the fix — updating the constant — happens in
// the key file, next to the SchemaVersion bump the edit usually requires.
// The finding's message carries the expected value.
var Cachekey = &Analyzer{
	Name: "cachekey",
	Doc: "every field of sim.Config and core.Options must survive JSON " +
		"cache-key hashing, and struct shape changes must be acknowledged " +
		"next to SchemaVersion (fingerprint pinning)",
	Run: runCachekey,
}

func runCachekey(pass *Pass) error {
	keyFuncs := collectKeyFuncs(pass)
	if len(keyFuncs) == 0 {
		return nil // not a key-deriving package
	}
	roots := configRoots(pass)
	if len(roots) == 0 {
		return nil
	}

	for _, root := range roots {
		checkFields(pass, root)
	}

	anchor := keyFuncs[0].Name.Pos()
	schema := pass.Pkg.Scope().Lookup("SchemaVersion")
	if _, ok := schema.(*types.Const); !ok {
		pass.Reportf(anchor, "key-deriving package %s declares no SchemaVersion constant; cache entries cannot be invalidated when the key schema changes",
			pass.Pkg.Name())
	} else {
		// Only exported key functions owe a SchemaVersion reference;
		// unexported helpers like keyOf hash whatever payload the exported
		// entry points (which do fold the version in) hand them.
		for _, fn := range keyFuncs {
			if !fn.Name.IsExported() {
				continue
			}
			if !usesObject(pass, fn, schema) {
				pass.Reportf(fn.Name.Pos(), "%s derives a cache key without folding in SchemaVersion; old entries will collide with the new schema",
					fn.Name.Name)
			}
		}
	}

	checkFingerprint(pass, roots, anchor)
	return nil
}

// keyRoot is one struct the cache key must cover.
type keyRoot struct {
	label  string // "core.Options", "sim.Config"
	strct  *types.Struct
	impPos token.Pos // position of the import that brought it in
}

// collectKeyFuncs returns the package's key-derivation functions: any
// function whose name ends in "Key" (Key, PartitionKey) or is keyOf.
func collectKeyFuncs(pass *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Key") || fn.Name.Name == "keyOf" {
				out = append(out, fn)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// configRoots locates core.Options, sim.Config, and gen.Params among the
// package's direct imports — or, for gen.Params, in the package itself:
// internal/gen derives its own canonical names from Params, so the
// fingerprint discipline applies to it without a self-import. Imported roots
// anchor findings at the import declaration; a self root anchors at the
// type's declaration.
func configRoots(pass *Pass) []keyRoot {
	want := []struct{ suffix, typ, label string }{
		{"internal/core", "Options", "core.Options"},
		{"internal/sim", "Config", "sim.Config"},
		{"internal/gen", "Params", "gen.Params"},
	}
	var roots []keyRoot
	for _, w := range want {
		if pathHasSuffix(pass.Pkg.Path(), w.suffix) {
			if obj, ok := pass.Pkg.Scope().Lookup(w.typ).(*types.TypeName); ok {
				if strct, ok := obj.Type().Underlying().(*types.Struct); ok {
					roots = append(roots, keyRoot{label: w.label, strct: strct, impPos: obj.Pos()})
					continue
				}
			}
		}
		for _, imp := range pass.Pkg.Imports() {
			if !pathHasSuffix(imp.Path(), w.suffix) {
				continue
			}
			obj, ok := imp.Scope().Lookup(w.typ).(*types.TypeName)
			if !ok {
				continue
			}
			strct, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			roots = append(roots, keyRoot{
				label:  w.label,
				strct:  strct,
				impPos: importPos(pass, imp.Path()),
			})
		}
	}
	return roots
}

// importPos finds the ImportSpec for path in the package's files.
func importPos(pass *Pass, path string) token.Pos {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			if strings.Trim(imp.Path.Value, `"`) == path {
				return imp.Pos()
			}
		}
	}
	if len(pass.Files) > 0 {
		return pass.Files[0].Package
	}
	return token.NoPos
}

// checkFields walks the root struct recursively and reports every field the
// JSON hash would drop or choke on. Findings anchor at the import of the
// package declaring the struct, since the field itself is in another package.
func checkFields(pass *Pass, root keyRoot) {
	seen := map[*types.Struct]bool{}
	var walk func(label string, s *types.Struct)
	walk = func(label string, s *types.Struct) {
		if seen[s] {
			return
		}
		seen[s] = true
		for i := 0; i < s.NumFields(); i++ {
			f := s.Field(i)
			fname := label + "." + f.Name()
			switch {
			case !f.Exported():
				pass.Reportf(root.impPos, "cache key drift: unexported field %s is silently dropped by JSON hashing; two jobs differing only in it share one cache entry",
					fname)
			case jsonTag(s.Tag(i)) == "-":
				pass.Reportf(root.impPos, "cache key drift: field %s is excluded from the key by its json:\"-\" tag; jobs differing in it collide",
					fname)
			case hostileType(f.Type()):
				pass.Reportf(root.impPos, "cache key drift: field %s has type %s, which json.Marshal cannot encode; keying will fail or drop it",
					fname, f.Type())
			}
			if nested, ok := f.Type().Underlying().(*types.Struct); ok {
				walk(fname, nested)
			}
		}
	}
	walk(root.label, root.strct)
}

// jsonTag extracts the name part of a field's json struct tag.
func jsonTag(tag string) string {
	v := reflect.StructTag(tag).Get("json")
	if i := strings.Index(v, ","); i >= 0 {
		v = v[:i]
	}
	return v
}

// hostileType reports whether t cannot round-trip through json.Marshal.
func hostileType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Signature, *types.Chan:
		return true
	case *types.Pointer:
		return hostileType(u.Elem())
	case *types.Slice:
		return hostileType(u.Elem())
	case *types.Array:
		return hostileType(u.Elem())
	case *types.Map:
		return hostileType(u.Elem())
	}
	return false
}

// usesObject reports whether fn references obj anywhere in its body.
func usesObject(pass *Pass, fn *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkFingerprint compares the package's schemaFingerprint constant against
// the hash of the current struct shapes.
func checkFingerprint(pass *Pass, roots []keyRoot, anchor token.Pos) {
	want := fingerprint(roots)
	obj, ok := pass.Pkg.Scope().Lookup("schemaFingerprint").(*types.Const)
	if !ok {
		pass.Reportf(anchor, "key-deriving package %s does not pin its key schema; declare `const schemaFingerprint = %q` next to SchemaVersion so struct changes are caught here",
			pass.Pkg.Name(), want)
		return
	}
	got := constant.StringVal(obj.Val())
	if got != want {
		pass.Reportf(anchor, "schemaFingerprint %q is stale: the key's config structs changed shape (want %q); audit the cache key, bump SchemaVersion if encoding changed, and update the constant",
			got, want)
	}
}

// fingerprint hashes the recursive field lists of the key roots into a short
// stable hex string. The canonical form is field names plus type strings
// (package-name qualified), nested structs expanded inline, so any rename,
// retype, addition, or removal anywhere under either root changes the value.
func fingerprint(roots []keyRoot) string {
	var sb strings.Builder
	for _, root := range roots {
		writeShape(&sb, root.label, root.strct, map[*types.Struct]bool{})
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:6])
}

func writeShape(sb *strings.Builder, label string, s *types.Struct, seen map[*types.Struct]bool) {
	if seen[s] {
		return
	}
	seen[s] = true
	fmt.Fprintf(sb, "%s{", label)
	qual := func(p *types.Package) string { return p.Name() }
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		if nested, ok := f.Type().Underlying().(*types.Struct); ok {
			writeShape(sb, f.Name(), nested, seen)
			continue
		}
		fmt.Fprintf(sb, "%s %s;", f.Name(), types.TypeString(f.Type(), qual))
	}
	sb.WriteString("}")
}
