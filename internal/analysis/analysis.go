// Package analysis is msvet's engine: a small, dependency-free analogue of
// golang.org/x/tools/go/analysis that enforces this repository's
// cross-cutting contracts on its own Go source. The five analyzers (see
// All) encode invariants the packages rely on but the compiler cannot see:
// cache-key completeness, deterministic output, nil-guarded observability,
// context propagation, and error aggregation. DESIGN.md §11 is the catalog.
//
// The framework mirrors the x/tools shape — Analyzer, Pass, Reportf — so the
// analyzers could migrate to a vendored go/analysis with mechanical edits,
// but it runs on the standard library alone: packages are enumerated with
// `go list -export`, targets are type-checked from source, and imports are
// satisfied from the compiler's export data (see Load).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named contract check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //msvet:allow
	// suppression comments. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract statement msvet -help prints.
	Doc string
	// Run inspects one package and reports findings through the pass. A
	// returned error aborts the whole msvet run (an analyzer bug, not a
	// finding).
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files, parsed with comments.
	Files []*ast.File
	// Pkg and Info are the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the file:line:col form editors understand.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run executes every analyzer over every package, drops suppressed findings
// (see //msvet:allow in suppress.go), and returns the rest sorted by
// position then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow := allowedLines(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    new([]Diagnostic),
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range *pass.diags {
				if !allow.suppresses(a.Name, d.Pos) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// pathHasSuffix reports whether a slash-separated import path ends in the
// given suffix at a path-segment boundary: "multiscalar/internal/sim" has
// suffix "internal/sim" but "internal/simx" does not.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// namedFromObsPackage reports whether t (after unwrapping pointers and
// aliases) is a named type declared in a package whose path ends in
// internal/obs, returning its bare name ("Tracer", "Registry", ...).
func namedFromObsPackage(t types.Type) (string, bool) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", false
	}
	if !pathHasSuffix(n.Obj().Pkg().Path(), "internal/obs") {
		return "", false
	}
	return n.Obj().Name(), true
}

// exprPath renders a nil-checkable receiver chain ("s.tracer", "cfg.Metrics")
// or "" when the expression is not a pure ident/selector chain.
func exprPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return exprPath(e.X)
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// calleePath renders the called function as a dotted path ("context.Background",
// "sort.Slice", "append") or "" for indirect calls.
func calleePath(call *ast.CallExpr, info *types.Info) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if obj, isPkg := info.Uses[x].(*types.PkgName); isPkg {
				return obj.Imported().Path() + "." + fun.Sel.Name
			}
			return x.Name + "." + fun.Sel.Name
		}
		return "." + fun.Sel.Name
	}
	return ""
}

// terminates reports whether a statement list definitely transfers control
// out of the enclosing flow: ends in return, panic, os.Exit, continue, break,
// or a goto.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				if x, ok := fun.X.(*ast.Ident); ok {
					return x.Name == "os" && fun.Sel.Name == "Exit"
				}
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}
