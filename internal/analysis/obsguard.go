package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Obsguard enforces the observability layer's nil contract: obs.Tracer and
// *obs.Registry fields are optional everywhere — a nil tracer means "tracing
// off", a nil registry means "metrics off" — so every call through one must
// be dominated by a nil check. The hot simulation loop relies on this (the
// guard is the zero-cost path); an unguarded call is a latent panic that only
// fires in the untraced configuration, which is exactly the configuration the
// tests exercise least.
//
// The analyzer runs a forward walk over each function body carrying a set of
// receiver chains ("s.tracer", "reg") currently known non-nil. Knowledge is
// gained from `x != nil` guards, early returns after `x == nil`, assignment
// of obviously non-nil values (composite literals, obs.New* constructors),
// and copies of known-safe chains; it is lost on reassignment and never
// flows out of loops or into goroutines.
//
// The analyzer also enforces the span lifecycle of the request-tracing layer
// (internal/obs/span): a *span.Span obtained from Start/StartRoot/StartLinked/
// StartRemote must reach End on every return path of the function that owns
// it — in practice via defer, since End(err) is nil-safe and the deferred
// closure observes the named error. A span that is never ended keeps its
// whole trace open forever (the flight recorder never retains it); an End
// with a return statement before it silently leaks the trace on the early
// path. Ownership transfers when the span escapes — returned, stored in a
// struct, passed to a call — and spans borrowed via FromContext are never
// owned. The span rule additionally covers internal/dist, internal/serve,
// and internal/jobs — the cross-process and async-execution hops.
//
// internal/obs and internal/obs/span themselves are exempt (methods
// legitimately run on the receiver), as is internal/serve for the nil rule,
// which resolves a non-nil registry at construction time and treats it as
// mandatory thereafter.
var Obsguard = &Analyzer{
	Name: "obsguard",
	Doc: "calls through obs.Tracer / obs.Registry values must be dominated " +
		"by a nil check (nil means \"observability off\"), and every owned " +
		"*span.Span must be ended on all return paths (use defer)",
	Run: runObsguard,
}

func runObsguard(pass *Pass) error {
	path := pass.Pkg.Path()
	if pathHasSuffix(path, "internal/obs") || pathHasSuffix(path, "internal/obs/span") {
		return nil
	}
	nilScope := false
	for _, suffix := range []string{"internal/sim", "internal/grid", "internal/experiment"} {
		if pathHasSuffix(path, suffix) {
			nilScope = true
		}
	}
	spanScope := nilScope
	for _, suffix := range []string{"internal/dist", "internal/serve", "internal/jobs"} {
		if pathHasSuffix(path, suffix) {
			spanScope = true
		}
	}
	if !nilScope && !spanScope {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if nilScope {
				guardWalk(pass, fn.Body.List, map[string]bool{})
			}
			if spanScope {
				checkSpanBodies(pass, fn.Body)
			}
		}
	}
	return nil
}

// guardWalk processes a statement list in order, tracking which receiver
// chains are known non-nil. safe is mutated: facts established by guards in
// this list persist for the statements that follow.
func guardWalk(pass *Pass, stmts []ast.Stmt, safe map[string]bool) {
	for _, stmt := range stmts {
		guardStmt(pass, stmt, safe)
	}
}

func guardStmt(pass *Pass, stmt ast.Stmt, safe map[string]bool) {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		guardIf(pass, s, safe)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			checkGuardedCalls(pass, rhs, safe)
		}
		applyAssign(pass, s, safe)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							checkGuardedCalls(pass, vs.Values[i], safe)
							if rhsNonNil(pass, vs.Values[i], safe) {
								safe[name.Name] = true
							}
						}
					}
				}
			}
		}
	case *ast.BlockStmt:
		guardWalk(pass, s.List, safe)
	case *ast.ForStmt:
		// Facts gathered inside a loop must not leak out (the guard may not
		// dominate the next iteration's uses), so the body gets a copy.
		if s.Init != nil {
			guardStmt(pass, s.Init, safe)
		}
		checkGuardedCalls(pass, s.Cond, safe)
		inner := cloneSafe(safe)
		if s.Post != nil {
			guardStmt(pass, s.Post, inner)
		}
		guardWalk(pass, s.Body.List, inner)
	case *ast.RangeStmt:
		checkGuardedCalls(pass, s.X, safe)
		guardWalk(pass, s.Body.List, cloneSafe(safe))
	case *ast.SwitchStmt:
		if s.Init != nil {
			guardStmt(pass, s.Init, safe)
		}
		checkGuardedCalls(pass, s.Tag, safe)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				inner := cloneSafe(safe)
				for _, e := range cc.List {
					checkGuardedCalls(pass, e, inner)
				}
				guardWalk(pass, cc.Body, inner)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				guardWalk(pass, cc.Body, cloneSafe(safe))
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				guardWalk(pass, cc.Body, cloneSafe(safe))
			}
		}
	case *ast.GoStmt:
		// The goroutine runs later; a guard observed now may no longer hold,
		// but the receiver chains it closes over were checked at capture time
		// in this repository's idiom, so inherit a copy of the current facts.
		checkGuardedCalls(pass, s.Call, cloneSafe(safe))
	case *ast.DeferStmt:
		checkGuardedCalls(pass, s.Call, cloneSafe(safe))
	case *ast.ExprStmt:
		checkGuardedCalls(pass, s.X, safe)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkGuardedCalls(pass, r, safe)
		}
	case *ast.SendStmt:
		checkGuardedCalls(pass, s.Chan, safe)
		checkGuardedCalls(pass, s.Value, safe)
	case *ast.IncDecStmt:
		checkGuardedCalls(pass, s.X, safe)
	case *ast.LabeledStmt:
		guardStmt(pass, s.Stmt, safe)
	}
}

// guardIf threads nil-check facts through an if statement: the then branch
// sees the condition's positive facts, the else branch its negative facts,
// and the code after the if keeps whatever the control flow proves.
func guardIf(pass *Pass, s *ast.IfStmt, safe map[string]bool) {
	if s.Init != nil {
		guardStmt(pass, s.Init, safe)
	}
	checkGuardedCalls(pass, s.Cond, safe)
	nonNilThen, nonNilElse := condNilFacts(s.Cond)

	thenSafe := cloneSafe(safe)
	for _, p := range nonNilThen {
		thenSafe[p] = true
	}
	guardWalk(pass, s.Body.List, thenSafe)

	if s.Else != nil {
		elseSafe := cloneSafe(safe)
		for _, p := range nonNilElse {
			elseSafe[p] = true
		}
		guardStmt(pass, s.Else, elseSafe)
	}

	// Post-if facts. `if x == nil { return }` proves x for the rest of the
	// list; so does `if x == nil { x = <non-nil> }`.
	if terminates(s.Body.List) {
		for _, p := range nonNilElse {
			safe[p] = true
		}
	} else {
		for _, p := range nonNilElse {
			if assignsNonNil(pass, s.Body, p, safe) {
				safe[p] = true
			}
		}
	}
	if s.Else != nil {
		if eb, ok := s.Else.(*ast.BlockStmt); ok && terminates(eb.List) {
			for _, p := range nonNilThen {
				safe[p] = true
			}
		}
	}
}

// condNilFacts extracts the receiver chains a condition proves non-nil in
// the then branch and in the else branch.
func condNilFacts(cond ast.Expr) (nonNilThen, nonNilElse []string) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "!=":
			if p, ok := nilComparand(e); ok {
				return []string{p}, nil
			}
		case "==":
			if p, ok := nilComparand(e); ok {
				return nil, []string{p}
			}
		case "&&":
			lt, _ := condNilFacts(e.X)
			rt, _ := condNilFacts(e.Y)
			return append(lt, rt...), nil
		case "||":
			_, le := condNilFacts(e.X)
			_, re := condNilFacts(e.Y)
			return nil, append(le, re...)
		}
	}
	return nil, nil
}

// nilComparand returns the non-nil side's receiver chain of an (in)equality
// against the nil identifier.
func nilComparand(e *ast.BinaryExpr) (string, bool) {
	if isNilIdent(e.Y) {
		if p := exprPath(e.X); p != "" {
			return p, true
		}
	}
	if isNilIdent(e.X) {
		if p := exprPath(e.Y); p != "" {
			return p, true
		}
	}
	return "", false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// applyAssign updates the safe set for an assignment: copying a safe chain
// or storing an obviously non-nil value makes the target safe; anything else
// invalidates it (and everything rooted under it).
func applyAssign(pass *Pass, s *ast.AssignStmt, safe map[string]bool) {
	for i, lhs := range s.Lhs {
		p := exprPath(lhs)
		if p == "" {
			continue
		}
		invalidatePrefix(safe, p)
		if len(s.Rhs) == len(s.Lhs) && rhsNonNil(pass, s.Rhs[i], safe) {
			safe[p] = true
		}
	}
}

// invalidatePrefix drops p and every chain rooted at it ("s.tracer" also
// kills "s.tracer.x") from the safe set.
func invalidatePrefix(safe map[string]bool, p string) {
	delete(safe, p)
	for k := range safe {
		if len(k) > len(p) && k[:len(p)] == p && k[len(p)] == '.' {
			delete(safe, k)
		}
	}
}

// rhsNonNil reports whether an assigned value is known non-nil: a composite
// literal (or its address), a copy of a safe chain, or an obs constructor.
func rhsNonNil(pass *Pass, rhs ast.Expr, safe map[string]bool) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		// obs.NewRegistry() and friends never return nil.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if pkg, isPkg := pass.Info.Uses[x].(*types.PkgName); isPkg &&
					pathHasSuffix(pkg.Imported().Path(), "internal/obs") &&
					len(sel.Sel.Name) > 3 && sel.Sel.Name[:3] == "New" {
					return true
				}
			}
		}
	default:
		if p := exprPath(rhs); p != "" && safe[p] {
			return true
		}
	}
	return false
}

// assignsNonNil reports whether the block assigns a non-nil value to chain p.
func assignsNonNil(pass *Pass, body *ast.BlockStmt, p string, safe map[string]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return true
		}
		for i, lhs := range as.Lhs {
			if exprPath(lhs) == p && len(as.Rhs) == len(as.Lhs) && rhsNonNil(pass, as.Rhs[i], safe) {
				found = true
			}
		}
		return true
	})
	return found
}

// checkGuardedCalls reports every method call whose receiver is an
// obs.Tracer or obs.Registry chain not currently known non-nil. Function
// literals encountered inside the expression are walked as statement lists
// with a copy of the current facts.
func checkGuardedCalls(pass *Pass, e ast.Expr, safe map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			guardWalk(pass, n.Body.List, cloneSafe(safe))
			return false
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recvType := pass.Info.TypeOf(sel.X)
			if recvType == nil {
				return true
			}
			name, fromObs := namedFromObsPackage(recvType)
			if !fromObs || (name != "Tracer" && name != "Registry") {
				return true
			}
			p := exprPath(sel.X)
			if p == "" || !safe[p] {
				loc := p
				if loc == "" {
					loc = "receiver"
				}
				pass.Reportf(n.Pos(), "call to (%s).%s on obs.%s %s without a dominating nil check; nil means observability is off",
					recvType.String(), sel.Sel.Name, name, loc)
			}
		}
		return true
	})
}

func cloneSafe(safe map[string]bool) map[string]bool {
	out := make(map[string]bool, len(safe))
	for k, v := range safe {
		out[k] = v
	}
	return out
}

// checkSpanBodies runs the span-lifecycle rule over a function body and over
// every function literal nested in it. Each literal is its own body: a span
// started inside a closure must be ended by that closure (or escape it) —
// the enclosing function's defers are no help to a goroutine.
func checkSpanBodies(pass *Pass, body *ast.BlockStmt) {
	checkSpanEnds(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			checkSpanEnds(pass, fl.Body)
		}
		return true
	})
}

// spanVar tracks one owned *span.Span local from its assignment to its End.
type spanVar struct {
	pos      token.Pos // the assignment that created it
	deferred bool      // an End reached through a defer in this body
	firstEnd token.Pos // earliest non-deferred <var>.End call
	escaped  bool      // ownership left this body (returned, stored, passed)
}

// spanScan is one body's walk state for the span-End rule.
type spanScan struct {
	pass    *Pass
	vars    map[string]*spanVar
	order   []string            // report in assignment order
	benign  map[*ast.Ident]bool // idents that are not ownership transfers
	returns []token.Pos         // this body's return statements
}

// checkSpanEnds flags spans assigned in this body that can finish the
// function without their End running: never ended at all, or ended by a
// plain call that an earlier return can skip. A deferred End (directly or
// inside a deferred closure) always satisfies the rule; so does handing the
// span off to someone else.
func checkSpanEnds(pass *Pass, body *ast.BlockStmt) {
	sc := &spanScan{pass: pass, vars: map[string]*spanVar{}, benign: map[*ast.Ident]bool{}}
	sc.walk(body, false)
	for _, name := range sc.order {
		v := sc.vars[name]
		if v.escaped || v.deferred {
			continue
		}
		if v.firstEnd == token.NoPos {
			pass.Reportf(v.pos, "span %q is never ended; its trace stays open forever — defer %s.End(err) right after Start",
				name, name)
			continue
		}
		for _, r := range sc.returns {
			if r > v.pos && r < v.firstEnd {
				pass.Reportf(v.pos, "span %q End is not guaranteed on all return paths (a return precedes the End call); use defer",
					name)
				break
			}
		}
	}
}

// walk visits the body in syntactic order. inDefer marks that we are inside
// a defer statement's call (including a deferred closure's body), where an
// End counts as guaranteed and a return does not leave the function.
func (sc *spanScan) walk(n ast.Node, inDefer bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.FuncLit:
		// A non-deferred literal is its own body (checkSpanBodies analyzes
		// it separately); a deferred one runs as part of this body's exit.
		if inDefer {
			sc.walkChildren(n.Body, true)
		}
		return
	case *ast.DeferStmt:
		sc.walk(n.Call, true)
		return
	case *ast.ReturnStmt:
		if !inDefer {
			sc.returns = append(sc.returns, n.Pos())
		}
	case *ast.AssignStmt:
		sc.assign(n, inDefer)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				sc.benign[id] = true // a method call is use, not transfer
				if v := sc.vars[id.Name]; v != nil && sel.Sel.Name == "End" && sc.spanIdent(id) {
					if inDefer {
						v.deferred = true
					} else if v.firstEnd == token.NoPos {
						v.firstEnd = n.Pos()
					}
				}
			}
		}
	case *ast.BinaryExpr:
		if op := n.Op.String(); op == "==" || op == "!=" {
			if isNilIdent(n.Y) {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					sc.benign[id] = true
				}
			}
			if isNilIdent(n.X) {
				if id, ok := ast.Unparen(n.Y).(*ast.Ident); ok {
					sc.benign[id] = true
				}
			}
		}
	case *ast.Ident:
		// Any remaining span-typed use is an ownership transfer: returned,
		// stored in a struct or map, passed as an argument, captured in a
		// composite literal. The new owner is responsible for End.
		if !sc.benign[n] && sc.spanIdent(n) {
			if v := sc.vars[n.Name]; v != nil {
				v.escaped = true
			}
		}
		return
	}
	sc.walkChildren(n, inDefer)
}

// walkChildren recurses into n's immediate children, leaving descent control
// to walk (which prunes function literals and defer subtrees).
func (sc *spanScan) walkChildren(n ast.Node, inDefer bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		sc.walk(c, inDefer)
		return false
	})
}

// assign registers span-typed variables created by call results and flags
// spans discarded into the blank identifier (a span nobody can End).
func (sc *spanScan) assign(a *ast.AssignStmt, inDefer bool) {
	for i, lhs := range a.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		sc.benign[id] = true // assignment targets are not uses
		if inDefer {
			continue
		}
		rhs := assignRHS(a, i)
		if _, isCall := ast.Unparen(rhs).(*ast.CallExpr); !isCall {
			continue // aliases and zero values create no new obligation
		}
		if t := assignType(sc.pass, a, i); t == nil || !isSpanPtr(t) {
			continue
		}
		if calleeIsFromContext(rhs) {
			continue // borrowed from the context, owned elsewhere
		}
		if id.Name == "_" {
			sc.pass.Reportf(id.Pos(), "span result discarded into _; it is never ended and its trace stays open — assign it and defer End")
			continue
		}
		if sc.vars[id.Name] == nil {
			sc.order = append(sc.order, id.Name)
		}
		sc.vars[id.Name] = &spanVar{pos: id.Pos()}
	}
}

// assignRHS returns the expression assigned into position i.
func assignRHS(a *ast.AssignStmt, i int) ast.Expr {
	if len(a.Rhs) == len(a.Lhs) {
		return a.Rhs[i]
	}
	return a.Rhs[0]
}

// assignType resolves the type landing in position i, including positions of
// a multi-value call (where the blank identifier has no object to ask).
func assignType(pass *Pass, a *ast.AssignStmt, i int) types.Type {
	if len(a.Rhs) == len(a.Lhs) {
		return pass.Info.TypeOf(a.Rhs[i])
	}
	if tup, ok := pass.Info.TypeOf(a.Rhs[0]).(*types.Tuple); ok && i < tup.Len() {
		return tup.At(i).Type()
	}
	return nil
}

// calleeIsFromContext reports whether rhs calls span.FromContext.
func calleeIsFromContext(rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "FromContext"
	case *ast.Ident:
		return fun.Name == "FromContext"
	}
	return false
}

// spanIdent reports whether id resolves to a variable of type *span.Span.
func (sc *spanScan) spanIdent(id *ast.Ident) bool {
	obj := sc.pass.Info.Uses[id]
	if obj == nil {
		obj = sc.pass.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	return ok && isSpanPtr(v.Type())
}

// isSpanPtr reports whether t is *Span from the request-tracing layer
// (a package whose import path ends in internal/obs/span).
func isSpanPtr(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Span" && pathHasSuffix(n.Obj().Pkg().Path(), "internal/obs/span")
}
