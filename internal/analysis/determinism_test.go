package analysis_test

import (
	"testing"

	"multiscalar/internal/analysis"
	"multiscalar/internal/analysis/analysistest"
)

func TestDeterminismBad(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Determinism,
		"./determinism/bad/...", "./determinism/internal/...")
}

func TestDeterminismClean(t *testing.T) {
	analysistest.Clean(t, "testdata", analysis.Determinism, "./determinism/clean/...")
}
