package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir), parses
// their non-test sources, and type-checks them. Imports — standard library
// and intra-module alike — are satisfied from compiler export data produced
// by `go list -export`, so loading needs no network, no GOPATH layout, and
// no third-party loader; only the target packages themselves are parsed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,Standard,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles type-checks one package from explicit source files, satisfying
// imports through lookup (import path → export data). This is the entry
// point for go vet's unitchecker protocol, where the go command hands msvet
// a prebuilt import map instead of letting it run `go list` itself.
func CheckFiles(path, dir string, goFiles []string, lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)
	return check(fset, imp, path, dir, goFiles)
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
