package analysis_test

import (
	"testing"

	"multiscalar/internal/analysis"
)

// TestAll pins the analyzer roster: msvet must load exactly these five, each
// with a name (the //msvet:allow key) and a doc string.
func TestAll(t *testing.T) {
	want := []string{"cachekey", "ctxflow", "determinism", "errjoin", "obsguard"}
	all := analysis.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}
