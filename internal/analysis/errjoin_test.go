package analysis_test

import (
	"testing"

	"multiscalar/internal/analysis"
	"multiscalar/internal/analysis/analysistest"
)

func TestErrjoinBad(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Errjoin, "./errjoin/bad/...")
}

func TestErrjoinClean(t *testing.T) {
	analysistest.Clean(t, "testdata", analysis.Errjoin, "./errjoin/clean/...")
}
