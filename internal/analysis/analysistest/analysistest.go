// Package analysistest runs one analyzer over a fixture package tree and
// compares its findings against `// want "regexp"` annotations in the
// fixture source, mirroring golang.org/x/tools/go/analysis/analysistest on
// top of the local framework.
//
// Fixtures live under internal/analysis/testdata, which is its own Go module
// (module "fixtures") so the repository build never sees them, and carry
// package paths shaped like the real tree (".../internal/sim") so analyzers
// that scope by path suffix behave exactly as they do on the repository.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"multiscalar/internal/analysis"
)

// want is one expectation: a diagnostic from the analyzer on this line whose
// message matches the pattern.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// Run loads the packages matching patterns (relative to dir, normally the
// testdata module root), applies the analyzer, and reports any mismatch
// between its findings and the fixtures' `// want` annotations: a finding
// with no annotation, an annotation with no finding, or a message that fails
// its pattern.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) []analysis.Diagnostic {
	t.Helper()
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages match %v under %s", patterns, dir)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkgs)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a %s finding matching %q, got none",
				w.file, w.line, a.Name, w.pattern)
		}
	}
	return diags
}

// collectWants extracts every `// want "p1" "p2"` annotation from the loaded
// fixture files.
func collectWants(t *testing.T, pkgs []*analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, pat := range splitPatterns(m[1]) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}
	return wants
}

// splitPatterns parses the quoted pattern list of a want comment.
func splitPatterns(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, `"`) {
			return out
		}
		end := strings.Index(s[1:], `"`)
		if end < 0 {
			return out
		}
		out = append(out, s[1:1+end])
		s = s[end+2:]
	}
}

// claim marks the first unmatched want satisfied by the diagnostic.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.pattern.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// Clean asserts the analyzer produces no findings at all on the given
// fixture packages — the "negative control" half of each analyzer's tests.
func Clean(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages match %v under %s", patterns, dir)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "  %s\n", d)
	}
	if len(diags) > 0 {
		t.Errorf("%s flagged a clean fixture:\n%s", a.Name, sb.String())
	}
}
