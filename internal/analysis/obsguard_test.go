package analysis_test

import (
	"testing"

	"multiscalar/internal/analysis"
	"multiscalar/internal/analysis/analysistest"
)

func TestObsguardBad(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Obsguard, "./obsguard/bad/...")
}

func TestObsguardClean(t *testing.T) {
	analysistest.Clean(t, "testdata", analysis.Obsguard, "./obsguard/clean/...")
}
