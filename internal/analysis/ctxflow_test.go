package analysis_test

import (
	"testing"

	"multiscalar/internal/analysis"
	"multiscalar/internal/analysis/analysistest"
)

func TestCtxflowBad(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Ctxflow, "./ctxflow/bad/...")
}

func TestCtxflowClean(t *testing.T) {
	analysistest.Clean(t, "testdata", analysis.Ctxflow, "./ctxflow/clean/...")
}
