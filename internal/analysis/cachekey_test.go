package analysis_test

import (
	"testing"

	"multiscalar/internal/analysis"
	"multiscalar/internal/analysis/analysistest"
)

func TestCachekeyBad(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Cachekey, "./cachekeybad/...")
}

func TestCachekeyClean(t *testing.T) {
	analysistest.Clean(t, "testdata", analysis.Cachekey, "./cachekeyclean/...")
}
