package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism flags code whose output can vary run-to-run for reasons the
// simulation contract forbids: map iteration order escaping into slices or
// writers without a sort, and wall-clock or randomness on pure paths.
//
// The repository's results pipeline (grid cache keys, golden tests,
// byte-identical parallel-vs-serial output) relies on every package
// producing the same bytes for the same inputs. Two rules enforce it:
//
//  1. A `range` over a map may not append to an outer slice that is never
//     sorted afterwards in the same function, may not write to an output
//     sink (fmt.Fprint*, strings.Builder, io.Writer), and may not send on a
//     channel. Commutative bodies — delete, keyed writes, aggregation — are
//     fine and not flagged.
//  2. time.Now/Since/Until and math/rand are banned in internal/sim (the
//     timing model is a pure function of its inputs) and inside any
//     key-derivation function (name containing "Key", or keyOf) anywhere.
//  3. internal/gen and internal/policy carry the seed→program stability
//     guarantee: the same purity rules apply to every function, except that
//     rand.New and rand.NewSource are allowed — an explicit seeded source is
//     the contract; the global math/rand functions (Intn, Int63, Shuffle,
//     ...) and time-seeded sources are exactly the drift being banned.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flag map-iteration order escaping into output and wall-clock/randomness " +
		"on pure simulation, generator, policy, or cache-key paths",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	simPkg := pathHasSuffix(pass.Pkg.Path(), "internal/sim")
	seededPkg := pathHasSuffix(pass.Pkg.Path(), "internal/gen") ||
		pathHasSuffix(pass.Pkg.Path(), "internal/policy")
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapRanges(pass, fn.Body)
			switch {
			case simPkg || isKeyFunc(fn.Name.Name):
				checkPureBody(pass, fn, false)
			case seededPkg:
				checkPureBody(pass, fn, true)
			}
		}
	}
	return nil
}

func isKeyFunc(name string) bool {
	return strings.Contains(name, "Key") || strings.Contains(name, "key")
}

// randConstructor names the math/rand selectors a seeded package may use:
// building a generator from an explicit source is the contract; everything
// else on the package (Intn, Shuffle, Seed, ...) touches the global source.
func randConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
		return true
	}
	return false
}

// checkPureBody bans wall-clock and randomness inside a pure function.
// allowSeeded permits explicit rand constructors (rand.New, rand.NewSource)
// while still flagging the global-source selectors and all wall-clock reads.
func checkPureBody(pass *Pass, fn *ast.FuncDecl, allowSeeded bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch calleePath(n, pass.Info) {
			case "time.Now", "time.Since", "time.Until":
				pass.Reportf(n.Pos(), "%s calls %s; the simulation and cache-key paths must be pure functions of their inputs",
					fn.Name.Name, calleePath(n, pass.Info))
			}
		case *ast.SelectorExpr:
			if x, ok := n.X.(*ast.Ident); ok {
				if pkg, isPkg := pass.Info.Uses[x].(*types.PkgName); isPkg {
					p := pkg.Imported().Path()
					if p == "math/rand" || p == "math/rand/v2" {
						if allowSeeded && randConstructor(n.Sel.Name) {
							return false
						}
						if allowSeeded {
							pass.Reportf(n.Pos(), "%s uses the global %s source; seeded packages must draw from an explicit rand.New(rand.NewSource(seed))",
								fn.Name.Name, p)
							return false
						}
						pass.Reportf(n.Pos(), "%s uses %s; the simulation and cache-key paths must be deterministic",
							fn.Name.Name, p)
						return false
					}
				}
			}
		}
		return true
	})
}

// checkMapRanges finds every `range` over a map in the body and applies the
// escape rules to its loop body.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapLoopBody(pass, body, rs)
		return true
	})
}

// checkMapLoopBody inspects one map-range body for order-dependent escapes.
// fnBody is the whole enclosing function body, used to look for a sort
// after the loop.
func checkMapLoopBody(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside a map range; receive order depends on map iteration order")
		case *ast.AssignStmt:
			checkRangeAppend(pass, fnBody, rs, n)
		case *ast.CallExpr:
			if sink, ok := outputSink(pass, n); ok {
				pass.Reportf(n.Pos(), "%s inside a map range; output order depends on map iteration order — collect and sort first", sink)
			}
		}
		return true
	})
}

// checkRangeAppend flags `s = append(s, ...)` inside a map range when s
// outlives the loop and is never sorted afterwards in the same function.
func checkRangeAppend(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || calleePath(call, pass.Info) != "append" {
		return
	}
	target, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.Info.ObjectOf(target)
	if obj == nil || insideNode(obj.Pos(), rs) {
		return // loop-local accumulator; its lifetime ends with the iteration
	}
	if sortedAfter(pass, fnBody, rs, obj) {
		return
	}
	pass.Reportf(as.Pos(), "%s accumulates elements in map iteration order and is never sorted in this function; output derived from it is nondeterministic",
		obj.Name())
}

// insideNode reports whether pos falls within n's extent.
func insideNode(pos token.Pos, n ast.Node) bool {
	return n.Pos() <= pos && pos < n.End()
}

// sortedAfter reports whether obj is passed to a sorting call somewhere
// after the range statement in the same function body: sort.*, slices.Sort*,
// or any helper whose name contains "sort" (sortUint64, sortedBlockIDs, ...).
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rs.End() {
			return true
		}
		callee := calleePath(call, pass.Info)
		if !strings.Contains(strings.ToLower(callee), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// outputSink recognizes calls that serialize directly to an output stream.
func outputSink(pass *Pass, call *ast.CallExpr) (string, bool) {
	callee := calleePath(call, pass.Info)
	switch callee {
	case "fmt.Fprintf", "fmt.Fprint", "fmt.Fprintln",
		"fmt.Printf", "fmt.Print", "fmt.Println":
		return callee, true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	default:
		return "", false
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	s := t.String()
	if strings.Contains(s, "strings.Builder") || strings.Contains(s, "bytes.Buffer") ||
		isIOWriter(t) {
		return s + "." + sel.Sel.Name, true
	}
	return "", false
}

// isIOWriter reports whether t is the io.Writer interface (the common sink
// parameter type), matched structurally so fixtures need not import io.
func isIOWriter(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Write" {
			return true
		}
	}
	return false
}
