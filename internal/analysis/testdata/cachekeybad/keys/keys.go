// Package keys derives cache keys from structs with key-hostile fields, a
// key function that skips SchemaVersion, and a stale fingerprint.
package keys

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"fixtures/cachekeybad/internal/core" // want "unexported field core.Options.hidden"
	"fixtures/cachekeybad/internal/sim"  // want "excluded from the key" "cannot encode"
)

// SchemaVersion versions the cache key encoding.
const SchemaVersion = 1

// schemaFingerprint was never updated after the structs changed shape.
const schemaFingerprint = "000000000000"

// Key folds the schema version in, as required.
func Key(o core.Options, c sim.Config) string { // want "schemaFingerprint .* is stale"
	return keyOf(struct {
		Schema int
		Opts   core.Options
		Cfg    sim.Config
	}{SchemaVersion, o, c})
}

// PartitionKey forgets the schema version entirely.
func PartitionKey(o core.Options) string { // want "without folding in SchemaVersion"
	return keyOf(struct {
		Opts core.Options
	}{o})
}

func keyOf(payload any) string {
	b, err := json.Marshal(payload)
	if err != nil {
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
