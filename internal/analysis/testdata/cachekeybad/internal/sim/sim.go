// Package sim mirrors the real simulator Config struct, with two
// deliberately key-hostile fields.
package sim

// Config configures a simulation run.
type Config struct {
	NumPUs int
	Debug  bool `json:"-"` // excluded from the marshal, so excluded from the key
	Hook   func(cycle uint64)
}
