// Package core mirrors the real task-selection Options struct, with a
// deliberately key-hostile field.
package core

// Heuristic selects the task-partitioning policy.
type Heuristic int

// Options configures task selection.
type Options struct {
	Heuristic Heuristic
	TaskSize  int
	hidden    int // unexported: json.Marshal drops it silently
}

// Hidden reads the unexported field so the fixture compiles without vet
// complaints about unused fields.
func (o Options) Hidden() int { return o.hidden }
