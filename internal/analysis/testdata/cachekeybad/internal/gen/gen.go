// Package gen is a self-rooted key-deriving package whose Params hides an
// unexported field from the canonical name and whose fingerprint was never
// updated; findings anchor at the type declaration, not an import.
package gen

import "fmt"

// SchemaVersion versions the canonical name grammar.
const SchemaVersion = 1

// schemaFingerprint predates the seed field's rename.
const schemaFingerprint = "000000000000"

// Params hides part of the program identity in an unexported field.
type Params struct { // want "unexported field gen.Params.seed"
	seed  int64
	Funcs int
}

// Key renders the canonical name; the seed never makes it in.
func (p Params) Key() string { // want "schemaFingerprint .* is stale"
	return fmt.Sprintf("gen:v%d:f%d", SchemaVersion, p.Funcs)
}
