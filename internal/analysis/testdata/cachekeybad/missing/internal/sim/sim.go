// Package sim is a key-safe Config mirror for the missing-schema fixture.
package sim

// Config configures a simulation run.
type Config struct {
	NumPUs int
	Width  int
}
