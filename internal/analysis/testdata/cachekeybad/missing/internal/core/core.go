// Package core is a key-safe Options mirror for the missing-schema fixture.
package core

// Heuristic selects the task-partitioning policy.
type Heuristic int

// Options configures task selection.
type Options struct {
	Heuristic Heuristic
	TaskSize  int
}
