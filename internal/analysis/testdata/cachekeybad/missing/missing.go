// Package missing derives keys from clean structs but declares neither
// SchemaVersion nor schemaFingerprint.
package missing

import (
	"fmt"

	"fixtures/cachekeybad/missing/internal/core"
	"fixtures/cachekeybad/missing/internal/sim"
)

// JobKey has no schema versioning at all.
func JobKey(o core.Options, c sim.Config) string { // want "declares no SchemaVersion constant" "does not pin its key schema"
	return fmt.Sprintf("%v|%v", o, c)
}
