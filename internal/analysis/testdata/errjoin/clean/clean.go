// Package clean holds the error-collection idioms errjoin must accept.
package clean

import (
	"errors"
	"fmt"
)

// Join aggregates every failure.
func Join(fns []func() error) error {
	var errs error
	for _, fn := range fns {
		errs = errors.Join(errs, fn())
	}
	return errs
}

// Wrap folds the previous value into the new one.
func Wrap(fns []func() error) error {
	var err error
	for i, fn := range fns {
		if e := fn(); e != nil {
			err = fmt.Errorf("step %d: %w (after %w)", i, e, errorOr(err))
		}
	}
	return err
}

func errorOr(err error) error {
	if err == nil {
		return errNone
	}
	return err
}

var errNone = errors.New("none")

// First keeps the first failure and drops the rest deliberately.
func First(fns []func() error) error {
	var firstErr error
	for _, fn := range fns {
		if err := fn(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// FailFast exits the loop on the first failure; nothing is overwritten.
func FailFast(fns []func() error) error {
	var err error
	for _, fn := range fns {
		err = fn()
		if err != nil {
			return err
		}
	}
	return err
}

// InitExit uses the if-init form of fail-fast.
func InitExit(fns []func() error) error {
	var err error
	for _, fn := range fns {
		if err = fn(); err != nil {
			break
		}
	}
	return err
}

// LoopLocal declares the error inside the loop; nothing outlives an iteration.
func LoopLocal(fns []func() error) int {
	failures := 0
	for _, fn := range fns {
		err := fn()
		if err != nil {
			failures++
		}
	}
	return failures
}
