// Package bad holds keep-last-error loops errjoin must flag.
package bad

import "sync"

// Collect overwrites err every iteration; only the last failure survives.
func Collect(fns []func() error) error {
	var err error
	for _, fn := range fns {
		err = fn() // want "keeping only the last error"
	}
	return err
}

// Fan loses every worker error but the last-written one.
func Fan(fns []func() error) error {
	var last error
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(f func() error) {
			defer wg.Done()
			last = f() // want "keeping only the last error"
		}(fn)
	}
	wg.Wait()
	return last
}

// SkipOn records the failure, then continues — the record is overwritten by
// the next iteration, so earlier failures are still lost.
func SkipOn(fns []func() error) error {
	var err error
	for _, fn := range fns {
		err = fn() // want "keeping only the last error"
		if err != nil {
			continue
		}
	}
	return err
}
