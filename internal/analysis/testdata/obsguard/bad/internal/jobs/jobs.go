// Package jobs (path suffix internal/jobs → in obsguard's span scope) holds
// the span-lifecycle patterns the End rule must flag in the async executor:
// a jobs.exec root span left open never reaches the flight recorder, so the
// one execution an operator wants to inspect is the one with no trace.
package jobs

import (
	"context"
	"errors"

	"fixtures/obsguard/internal/obs/span"
)

// ExecNeverEnded mints the per-job root span and forgets it.
func ExecNeverEnded(ctx context.Context, t *span.Tracer) {
	_, sp := t.StartRoot(ctx, "jobs.exec") // want "never ended"
	sp.SetAttr("kind", "experiment")
}

// ExecEarlyReturn ends the span by a plain call that the failure path skips,
// leaking exactly the executions worth tracing.
func ExecEarlyReturn(ctx context.Context, fail bool) error {
	_, sp := span.Start(ctx, "jobs.run") // want "not guaranteed on all return paths"
	if fail {
		return errors.New("executor failed")
	}
	sp.End(nil)
	return nil
}

// RunnerClosureLeak starts a span inside the runner goroutine and never ends
// it there; the enclosing function's defers cannot help.
func RunnerClosureLeak(ctx context.Context, done chan struct{}) {
	go func() {
		_, sp := span.Start(ctx, "jobs.dequeue") // want "never ended"
		sp.Event("dequeued")
		close(done)
	}()
}
