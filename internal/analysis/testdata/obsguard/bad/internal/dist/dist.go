// Package dist (path suffix internal/dist → in obsguard's span scope) holds
// the span-lifecycle patterns the End rule must flag.
package dist

import (
	"context"
	"errors"

	"fixtures/obsguard/internal/obs/span"
)

// NeverEnded starts a span and forgets it: the trace stays open forever and
// the flight recorder never retains it.
func NeverEnded(ctx context.Context) {
	_, sp := span.Start(ctx, "dist.dispatch") // want "never ended"
	sp.SetAttr("shard", "3")
}

// Discarded throws the span away at the call site, so nobody can End it.
func Discarded(ctx context.Context) context.Context {
	ctx, _ = span.Start(ctx, "dist.pull") // want "discarded into _"
	return ctx
}

// EarlyReturn ends the span by a plain call that the error path skips.
func EarlyReturn(ctx context.Context, fail bool) error {
	_, sp := span.Start(ctx, "dist.report") // want "not guaranteed on all return paths"
	if fail {
		return errors.New("boom")
	}
	sp.End(nil)
	return nil
}

// ClosureLeak starts a span inside a goroutine's closure and never ends it
// there; the enclosing function's defers cannot help.
func ClosureLeak(ctx context.Context, done chan struct{}) {
	go func() {
		_, sp := span.Start(ctx, "dist.steal") // want "never ended"
		sp.Event("steal")
		close(done)
	}()
}

// RootNeverEnded applies the same rule to tracer-minted roots.
func RootNeverEnded(ctx context.Context, t *span.Tracer) {
	_, sp := t.StartRoot(ctx, "sweep") // want "never ended"
	sp.SetAttr("kind", "fig5")
}
