// Package sim (path suffix internal/sim → in obsguard scope) holds the
// unguarded-call patterns obsguard must flag.
package sim

import "fixtures/obsguard/internal/obs"

// Sim carries optional observability hooks.
type Sim struct {
	tracer obs.Tracer
	met    *obs.Registry
}

// Unguarded calls straight through the optional fields.
func (s *Sim) Unguarded() {
	s.tracer.Emit(obs.Event{Name: "step"}) // want "without a dominating nil check"
	s.met.Counter("steps").Inc()           // want "without a dominating nil check"
}

// WrongGuard checks the wrong field.
func (s *Sim) WrongGuard() {
	if s.met != nil {
		s.tracer.Emit(obs.Event{Name: "step"}) // want "without a dominating nil check"
	}
}

// GuardLost reassigns the field after the guard, discarding the fact.
func (s *Sim) GuardLost(t obs.Tracer) {
	if s.tracer == nil {
		return
	}
	s.tracer = t
	s.tracer.Emit(obs.Event{Name: "swap"}) // want "without a dominating nil check"
}

// LoopEscape establishes the guard inside the first iteration only; the
// fact must not survive into the next statement after the loop.
func (s *Sim) LoopEscape(n int) {
	for i := 0; i < n; i++ {
		if s.tracer == nil {
			return
		}
	}
	s.tracer.Emit(obs.Event{Name: "after"}) // want "without a dominating nil check"
}

// ElseBranch uses the field where the condition proves it nil.
func (s *Sim) ElseBranch() {
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{Name: "on"})
	} else {
		s.met.Counter("off").Inc() // want "without a dominating nil check"
	}
}
