// Package dist holds the span-lifecycle patterns obsguard must accept: the
// repository's deferred-End idioms and the legitimate ownership transfers.
package dist

import (
	"context"

	"fixtures/obsguard/internal/obs/span"
)

// DeferClosure is the repo idiom: named error, deferred closure, End
// observes the final value of err.
func DeferClosure(ctx context.Context) (err error) {
	_, sp := span.Start(ctx, "dist.dispatch")
	defer func() { sp.End(err) }()
	return nil
}

// DeferDirect defers End directly when there is no error to observe.
func DeferDirect(ctx context.Context) {
	_, sp := span.Start(ctx, "cache.publish")
	defer sp.End(nil)
	sp.SetAttr("tiers", "2")
}

// StraightLine ends before any return — no defer needed when no return can
// intervene.
func StraightLine(ctx context.Context) {
	_, sp := span.Start(ctx, "dist.report")
	sp.SetAttr("worker", "w1")
	sp.End(nil)
}

// LateBind assigns the span conditionally and ends it in a deferred closure
// registered afterwards (the serve middleware shape); the nil guard inside
// the defer is use, not transfer.
func LateBind(ctx context.Context, t *span.Tracer, traced bool) {
	var sp *span.Span
	if traced {
		_, sp = t.StartRoot(ctx, "serve.request")
	}
	defer func() {
		if sp != nil {
			sp.SetAttr("status", "200")
		}
		sp.End(nil)
	}()
}

// Handoff transfers ownership by returning the span; the caller must End it.
func Handoff(ctx context.Context) (context.Context, *span.Span) {
	ctx, sp := span.Start(ctx, "dist.lease")
	if sp == nil {
		return ctx, nil
	}
	return ctx, sp
}

// task parks a span across calls; Report ends it later.
type task struct{ sp *span.Span }

// StoreField transfers ownership into the task struct.
func (t *task) StoreField(ctx context.Context) {
	_, sp := span.Start(ctx, "dist.dispatch")
	t.sp = sp
}

// PassAlong transfers ownership to a callee.
func PassAlong(ctx context.Context, finish func(*span.Span)) {
	_, sp := span.Start(ctx, "dist.pull")
	finish(sp)
}

// Borrowed spans come from the context and are owned elsewhere; observing
// through them needs no End.
func Borrowed(ctx context.Context) {
	sp := span.FromContext(ctx)
	sp.Event("observed")
}

// ClosureOwned starts and defers inside the same closure body.
func ClosureOwned(ctx context.Context, done chan struct{}) {
	go func() {
		_, sp := span.Start(ctx, "dist.steal")
		defer sp.End(nil)
		close(done)
	}()
}
