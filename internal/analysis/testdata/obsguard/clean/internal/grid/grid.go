// Package grid (path suffix internal/grid → in obsguard scope) holds the
// guarded idioms obsguard must accept without findings.
package grid

import "fixtures/obsguard/internal/obs"

// Engine carries optional observability hooks.
type Engine struct {
	tracer obs.Tracer
	met    *obs.Registry
}

// DirectGuard is the canonical hot-path idiom.
func (e *Engine) DirectGuard() {
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{Name: "run"})
	}
}

// EarlyReturn proves the field for the rest of the function.
func (e *Engine) EarlyReturn() {
	if e.met == nil {
		return
	}
	e.met.Counter("runs").Inc()
	e.met.Counter("jobs").Inc()
}

// DefaultInGuard is the construction-time idiom: nil is replaced before use.
func DefaultInGuard(r *obs.Registry) *Engine {
	if r == nil {
		r = obs.NewRegistry()
	}
	r.Counter("engines").Inc()
	return &Engine{met: r}
}

// CopyOfSafe aliases a guarded field; the copy inherits the fact.
func (e *Engine) CopyOfSafe() {
	if e.tracer == nil {
		return
	}
	t := e.tracer
	t.Emit(obs.Event{Name: "alias"})
}

// GuardedLoop establishes the fact before the loop; the loop body inherits it.
func (e *Engine) GuardedLoop(n int) {
	if e.met == nil {
		return
	}
	for i := 0; i < n; i++ {
		e.met.Counter("iter").Inc()
	}
}

// GuardedClosure captures a checked field inside a function literal.
func (e *Engine) GuardedClosure() func() {
	if e.tracer == nil {
		return func() {}
	}
	return func() {
		e.tracer.Emit(obs.Event{Name: "deferred"})
	}
}

// CombinedGuard proves both fields with one condition.
func (e *Engine) CombinedGuard() {
	if e.tracer != nil && e.met != nil {
		e.tracer.Emit(obs.Event{Name: "both"})
		e.met.Counter("both").Inc()
	}
}

// FreshRegistry uses a constructor result, which is never nil.
func FreshRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("boot").Inc()
	return r
}
