// Package obs mirrors the real observability layer's shape: Tracer and
// Registry are the two types whose nil means "observability off". The path
// suffix internal/obs is what obsguard matches on, so these stand in for
// the real types in fixtures.
package obs

// Event is one trace event.
type Event struct {
	Name string
	Cyc  uint64
}

// Tracer consumes events; nil means tracing is off.
type Tracer interface {
	Emit(Event)
}

// Registry owns metrics; nil means metrics are off.
type Registry struct {
	counters map[string]*Counter
}

// NewRegistry returns an empty, non-nil registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Counter is a monotonic count.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }
