// Package span mirrors the real request-tracing layer's shape: Span is the
// type whose End must be guaranteed on every return path of the function
// that owns it. The path suffix internal/obs/span is what obsguard matches
// on (both to recognize the type and to exempt the package itself), so these
// stand in for the real types in fixtures.
package span

import "context"

// Span is one timed operation. A nil *Span is inert.
type Span struct{ name string }

// End finishes the span with an outcome; nil-receiver safe.
func (s *Span) End(err error) {}

// SetAttr annotates the span; nil-receiver safe.
func (s *Span) SetAttr(key, value string) {}

// Event records a point-in-time marker; nil-receiver safe.
func (s *Span) Event(name string, kv ...string) {}

// SpanContext is the propagated (trace, span) pair.
type SpanContext struct{ TraceID, SpanID string }

// Context returns the span's propagation context.
func (s *Span) Context() SpanContext { return SpanContext{} }

// Start opens a child of the span in ctx (nil span when untraced).
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{name: name}
}

// FromContext returns the span in ctx without transferring ownership.
func FromContext(ctx context.Context) *Span { return nil }

// Tracer mints root spans.
type Tracer struct{}

// StartRoot opens a new trace's root span.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{name: name}
}
