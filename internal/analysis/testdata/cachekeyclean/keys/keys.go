// Package keys is a fully compliant key-deriving package: no hostile
// fields, SchemaVersion folded into every exported key, fingerprint pinned.
package keys

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"fixtures/cachekeyclean/internal/core"
	"fixtures/cachekeyclean/internal/sim"
)

// SchemaVersion versions the cache key encoding.
const SchemaVersion = 3

// schemaFingerprint pins the shape of core.Options and sim.Config; msvet's
// cachekey analyzer reports the expected value whenever it goes stale.
const schemaFingerprint = "891744c444ca"

// Key addresses one simulation result.
func Key(o core.Options, c sim.Config) string {
	return keyOf(struct {
		Schema int
		Opts   core.Options
		Cfg    sim.Config
	}{SchemaVersion, o, c})
}

// PartitionKey addresses one task-partitioning result.
func PartitionKey(o core.Options) string {
	return keyOf(struct {
		Schema int
		Opts   core.Options
	}{SchemaVersion, o})
}

func keyOf(payload any) string {
	b, err := json.Marshal(payload)
	if err != nil {
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
