// Package gen is a self-rooted key-deriving package: it declares Params and
// renders canonical names from it, so the fingerprint discipline applies
// without importing the struct from anywhere.
package gen

import "fmt"

// SchemaVersion versions the canonical name grammar.
const SchemaVersion = 1

// schemaFingerprint pins the shape of Params; msvet's cachekey analyzer
// reports the expected value whenever it goes stale.
const schemaFingerprint = "721ac4810261"

// Params describes one generated program.
type Params struct {
	Seed  int64
	Funcs int
}

// Key renders the canonical name, folding the schema version in.
func (p Params) Key() string {
	return fmt.Sprintf("gen:v%d:s%d:f%d", SchemaVersion, p.Seed, p.Funcs)
}
