// Package sim mirrors the real simulator Config struct, including a nested
// struct the field walk must descend into.
package sim

// MemConfig configures the memory hierarchy.
type MemConfig struct {
	L1Size    int
	L1Latency int
}

// Config configures a simulation run; every field survives JSON hashing.
type Config struct {
	NumPUs int
	Width  int
	Mem    MemConfig
}
