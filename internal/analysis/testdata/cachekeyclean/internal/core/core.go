// Package core mirrors the real task-selection Options struct in a fully
// key-safe shape.
package core

// Heuristic selects the task-partitioning policy.
type Heuristic int

// Options configures task selection; every field survives JSON hashing.
type Options struct {
	Heuristic  Heuristic
	TaskSize   int
	MaxTargets int
}
