// Package serve (path suffix internal/serve → in ctxflow scope) holds the
// compliant shapes ctxflow must accept.
package serve

import (
	"context"
	"sync"
)

// RunCtx is the canonical entry point: leading context, goroutines inside.
func RunCtx(ctx context.Context, n int, fn func(context.Context, int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if ctx.Err() == nil {
				fn(ctx, i)
			}
		}(i)
	}
	wg.Wait()
}

// Describe is exported but starts nothing, so it owes no context.
func Describe() string { return "serve fixture" }

// pump is unexported; the entry-point rule applies to the API surface only.
func pump(ch chan<- int, n int) {
	go func() {
		for i := 0; i < n; i++ {
			ch <- i
		}
		close(ch)
	}()
}
