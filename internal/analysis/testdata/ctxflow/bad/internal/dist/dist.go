// Package dist (path suffix internal/dist → in ctxflow scope) holds the
// context-propagation violations the distributed grid must never ship: a
// worker loop detached from cancellation would keep pulling jobs after the
// leader is gone.
package dist

import "context"

// RunWorkers fans a worker loop out across goroutines with no way for the
// caller to stop the fleet.
func RunWorkers(n int, pull func() (string, bool)) { // want "starts goroutines but does not accept a context.Context"
	for i := 0; i < n; i++ {
		go func() {
			for {
				if _, ok := pull(); !ok {
					return
				}
			}
		}()
	}
}

// workerLoop synthesizes its own root, so the pull requests it issues
// outlive the run that spawned them.
func workerLoop(pull func(context.Context) bool) {
	ctx := context.Background() // want "detaches this work from the caller's cancellation"
	for pull(ctx) {
	}
}

// Publish buries the context mid-signature instead of leading with it.
func Publish(key string, ctx context.Context, put func(context.Context, string)) { // want "not as its first parameter"
	go put(ctx, key)
}
