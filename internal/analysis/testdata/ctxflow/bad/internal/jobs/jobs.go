// Package jobs (path suffix internal/jobs → in ctxflow scope) holds the
// context-propagation violations the async job subsystem must never ship: a
// runner pool detached from cancellation would keep executing jobs after the
// process was told to drain, defeating the journal's requeue-on-shutdown.
package jobs

import "context"

// StartRunners launches the runner pool with no way for the process
// lifecycle to stop it.
func StartRunners(n int, dequeue func() (string, bool)) { // want "starts goroutines but does not accept a context.Context"
	for i := 0; i < n; i++ {
		go func() {
			for {
				if _, ok := dequeue(); !ok {
					return
				}
			}
		}()
	}
}

// execute synthesizes its own root, so a job keeps simulating after the
// shutdown that should have requeued it.
func execute(run func(context.Context) error) error {
	ctx := context.Background() // want "detaches this work from the caller's cancellation"
	return run(ctx)
}

// Submit buries the context mid-signature instead of leading with it.
func Submit(id string, ctx context.Context, enqueue func(context.Context, string)) { // want "not as its first parameter"
	go enqueue(ctx, id)
}
