// Package grid (path suffix internal/grid → in ctxflow scope) holds the
// context-propagation violations ctxflow must flag.
package grid

import (
	"context"
	"sync"
)

// Run starts workers with no way for the caller to cancel them.
func Run(n int, fn func(int)) { // want "starts goroutines but does not accept a context.Context"
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// RunAll accepts a context, but not where convention puts it.
func RunAll(n int, ctx context.Context, fn func(int)) { // want "not as its first parameter"
	for i := 0; i < n; i++ {
		go fn(i)
	}
	_ = ctx
}

// detach synthesizes a root context deep in library code.
func detach(fn func(context.Context)) {
	ctx := context.Background() // want "detaches this work from the caller's cancellation"
	fn(ctx)
}

// todo is the placeholder form of the same bug.
func todo(fn func(context.Context)) {
	fn(context.TODO()) // want "detaches this work from the caller's cancellation"
}

// compat demonstrates the suppression escape hatch: a deliberate root with
// a recorded justification produces no finding.
func compat(fn func(context.Context)) {
	//msvet:allow ctxflow (compat wrapper: callers predate the ctx API)
	fn(context.Background())
}
