// Package sim carries the internal/sim path suffix, so the purity rules
// apply to every function, not just key derivation.
package sim

import (
	"math/rand"
	"time"
)

// Step is an ordinary simulation function; wall-clock reads are still banned.
func Step(cycle uint64) uint64 {
	if time.Now().Unix()%2 == 0 { // want "must be pure functions of their inputs"
		return cycle + 2
	}
	return cycle + 1
}

// Jitter injects randomness into the timing model.
func Jitter(cycle uint64) uint64 {
	return cycle + uint64(rand.Intn(3)) // want "must be deterministic"
}
