// Package policy carries the internal/policy path suffix: selection
// policies feed grid cache keys, so randomness and wall-clock reads are
// banned the same way as in the generator.
package policy

import (
	"math/rand"
	"time"
)

// Pick breaks ties through the global source; two runs over the same
// frontier would partition differently.
func Pick(n int) int {
	if n > 1 {
		return rand.Intn(n) // want "global math/rand source"
	}
	return 0
}

// Deadline keys a growth decision off the wall clock.
func Deadline(budget int) bool {
	return time.Now().Unix()%2 == 0 // want "must be pure functions of their inputs"
}

// Seeded tie-breaking from an explicit source is allowed.
func Seeded(seed int64, n int) int {
	return rand.New(rand.NewSource(seed)).Intn(n)
}
