// Package gen carries the internal/gen path suffix, so the seeded-package
// purity rules apply to every function: explicit rand constructors are the
// allowed idiom, global-source draws and wall-clock reads are violations.
package gen

import (
	"math/rand"
	"time"
)

// Generate draws from an explicit seeded source (allowed) but also leaks a
// global-source draw and a wall-clock read.
func Generate(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	n := r.Intn(10)
	n += rand.Intn(3) // want "global math/rand source"
	if time.Now().Unix()%2 == 0 { // want "must be pure functions of their inputs"
		n++
	}
	return n
}

// TimeSeeded builds its source from the wall clock; the constructor itself
// is fine, the time.Now read feeding it is the nondeterminism.
func TimeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "must be pure functions of their inputs"
}

// Shuffle permutes through the global source.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand source"
}
