// Package bad exercises every determinism rule: map-order escapes and
// impurity in key-derivation functions.
package bad

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Keys leaks map iteration order into its result.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "never sorted in this function"
	}
	return out
}

// Print serializes in map iteration order.
func Print(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "output order depends on map iteration order"
	}
}

// Send's receiver observes map iteration order.
func Send(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want "channel send inside a map range"
	}
}

// Render builds a string in map iteration order.
func Render(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "output order depends on map iteration order"
	}
	return sb.String()
}

// CacheKey is a key-derivation function (name suffix Key), so wall-clock
// input is banned regardless of package.
func CacheKey(workload string) string {
	stamp := time.Now() // want "must be pure functions of their inputs"
	return fmt.Sprintf("%s-%d", workload, stamp.Unix())
}

// keyOf mixes randomness into a key.
func keyOf(workload string) string {
	return fmt.Sprintf("%s-%d", workload, rand.Int()) // want "must be deterministic"
}
