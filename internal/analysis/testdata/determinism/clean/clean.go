// Package clean holds the patterns determinism must accept: sorted
// accumulation, commutative map-loop bodies, and impure calls outside the
// pure scopes.
package clean

import (
	"fmt"
	"sort"
	"time"
)

// SortedKeys collects then sorts — the canonical deterministic iteration.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// LocalSorter uses a package-local sort helper, recognized by name.
func LocalSorter(m map[uint64]int) []uint64 {
	var out []uint64
	for k := range m {
		out = append(out, k)
	}
	sortUint64(out)
	return out
}

func sortUint64(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// Prune deletes during iteration — commutative, order-independent.
func Prune(m map[string]int, limit int) {
	for k, v := range m {
		if v > limit {
			delete(m, k)
		}
	}
}

// Invert writes keyed entries — commutative.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Sum aggregates — commutative.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// InnerScratch appends to a slice whose lifetime is one iteration.
func InnerScratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var scratch []int
		for _, v := range vs {
			scratch = append(scratch, v*2)
		}
		n += len(scratch)
	}
	return n
}

// Elapsed is neither in internal/sim nor a key function; wall-clock is fine.
func Elapsed(start time.Time) string {
	return fmt.Sprintf("%v", time.Since(start))
}
