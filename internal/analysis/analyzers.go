package analysis

// All returns every msvet analyzer in the order findings are attributed.
// DESIGN.md §11 documents each contract; //msvet:allow suppresses a finding
// at one site with a justification.
func All() []*Analyzer {
	return []*Analyzer{
		Cachekey,
		Ctxflow,
		Determinism,
		Errjoin,
		Obsguard,
	}
}
