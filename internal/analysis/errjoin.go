package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Errjoin catches the keep-last-error bug in collection loops. A loop that
// assigns each iteration's error into a variable declared outside the loop
// reports only the final iteration's failure; every earlier one is silently
// dropped. The grid engine aggregates worker errors with errors.Join, and
// this analyzer holds the rest of the module to the same standard.
//
// An assignment is fine when the loop actually handles or aggregates it:
//   - the value is folded into the accumulator (errors.Join(errs, err),
//     fmt.Errorf wrapping the previous value),
//   - the error is only stored when the slot is still empty
//     (if firstErr == nil { firstErr = err }),
//   - the loop exits on it (if err != nil { return / break }) — first-error
//     semantics, nothing is lost.
//
// What remains — overwrite and keep looping — is the bug.
var Errjoin = &Analyzer{
	Name: "errjoin",
	Doc: "loops collecting errors across iterations must aggregate " +
		"(errors.Join) or exit early, not overwrite",
	Run: runErrjoin,
}

func runErrjoin(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			checkErrLoop(pass, n, body)
			return true
		})
	}
	return nil
}

// checkErrLoop examines one loop body for plain `=` assignments to an outer
// error variable that neither aggregate nor exit. A stack of ancestors is
// maintained during the walk (ast.Inspect signals post-order with nil) so
// the keep-first guard can look upward from each assignment.
func checkErrLoop(pass *Pass, loop ast.Node, body *ast.BlockStmt) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.ObjectOf(id)
			if obj == nil || !isErrorType(obj.Type()) || insideNode(obj.Pos(), loop) {
				continue
			}
			if aggregates(pass, as, i, obj) ||
				guardedKeepFirst(pass, stack, as, obj) ||
				exitsAfter(pass, body, as, obj) {
				continue
			}
			pass.Reportf(as.Pos(), "loop overwrites %s each iteration, keeping only the last error; aggregate with errors.Join or exit on the first failure",
				obj.Name())
		}
		return true
	})
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// aggregates reports whether the assignment folds the previous value of obj
// into the new one: errors.Join(obj, ...), fmt.Errorf("...%w", obj), or any
// RHS that mentions obj.
func aggregates(pass *Pass, as *ast.AssignStmt, i int, obj types.Object) bool {
	if len(as.Rhs) != len(as.Lhs) {
		return false
	}
	mentions := false
	ast.Inspect(as.Rhs[i], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			mentions = true
		}
		return !mentions
	})
	return mentions
}

// guardedKeepFirst reports whether some enclosing if (from the ancestor
// stack) stores into obj only when it is still nil — the keep-first idiom
// `if firstErr == nil { firstErr = err }`, including as one conjunct of a
// compound condition (`if err != nil && firstErr == nil { ... }`).
func guardedKeepFirst(pass *Pass, stack []ast.Node, as *ast.AssignStmt, obj types.Object) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok || !insideNode(as.Pos(), ifs.Body) {
			continue
		}
		if condHasNilCheck(pass, ifs.Cond, obj) {
			return true
		}
	}
	return false
}

// condHasNilCheck reports whether cond (or any conjunct of it) is
// `obj == nil`.
func condHasNilCheck(pass *Pass, cond ast.Expr, obj types.Object) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LAND:
		return condHasNilCheck(pass, be.X, obj) || condHasNilCheck(pass, be.Y, obj)
	case token.EQL:
		return sideIsObj(pass, be, obj) && (isNilIdent(be.X) || isNilIdent(be.Y))
	}
	return false
}

func sideIsObj(pass *Pass, be *ast.BinaryExpr, obj types.Object) bool {
	for _, side := range []ast.Expr{be.X, be.Y} {
		if id, ok := ast.Unparen(side).(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			return true
		}
	}
	return false
}

// exitsAfter reports whether control leaves the loop promptly once obj is
// set: the assignment is an if-init (`if err = f(); err != nil { return }`)
// or a statement after the assignment checks obj and returns/breaks.
func exitsAfter(pass *Pass, body *ast.BlockStmt, as *ast.AssignStmt, obj types.Object) bool {
	exits := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || exits || ifs.End() < as.Pos() {
			return true
		}
		if ifs.Init == ast.Stmt(as) || ifs.Pos() >= as.End() {
			if condMentions(pass, ifs.Cond, obj) && exitsLoop(ifs.Body.List) {
				exits = true
			}
		}
		return true
	})
	return exits
}

func condMentions(pass *Pass, cond ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// exitsLoop reports whether the branch leaves the loop (return, break, goto,
// panic) rather than continuing to the next iteration.
func exitsLoop(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return exitsLoop(s.List)
	}
	return false
}
