// Package progtest generates random structured programs for property-based
// tests: nested sequences, diamonds, counted loops, scratch-array memory
// traffic, and acyclic helper calls — always terminating, always valid IR.
package progtest

import (
	"fmt"
	"math/rand"

	"multiscalar/internal/ir"
)

// progGen builds random structured (hence terminating) programs: nested
// sequences, if-else diamonds, counted loops with dedicated counter
// registers, stores/loads into a shared scratch array (masked addressing, so
// random programs still create real memory dependences), and calls to
// previously generated helper functions (acyclic call graph).
type progGen struct {
	rng   *rand.Rand
	b     *ir.Builder
	helps []ir.FnID
	label int
}

// Generate builds a random structured program from the seed.
func Generate(seed int64) *ir.Program {
	g := &progGen{rng: rand.New(rand.NewSource(seed)), b: ir.NewBuilder(fmt.Sprintf("fuzz%d", seed))}
	g.b.Zeros(64) // scratch array at DataBase
	nHelpers := g.rng.Intn(3)
	for i := 0; i < nHelpers; i++ {
		name := fmt.Sprintf("helper%d", i)
		f := g.b.Func(name)
		bb := f.Block(g.fresh("entry"))
		bb = g.segments(f, bb, 2)
		bb.Ret()
		g.helps = append(g.helps, f.End())
	}
	f := g.b.Func("main")
	bb := f.Block(g.fresh("entry"))
	// Base register for the scratch array.
	bb.MovI(ir.R(15), int64(ir.DataBase))
	bb = g.segments(f, bb, 3)
	bb.Halt()
	f.End()
	return g.b.Build()
}

func (g *progGen) fresh(prefix string) string {
	g.label++
	return fmt.Sprintf("%s_%d", prefix, g.label)
}

// segments appends 1..depth+1 random segments, returning the open block.
func (g *progGen) segments(f *ir.FuncBuilder, bb *ir.BlockBuilder, depth int) *ir.BlockBuilder {
	n := 1 + g.rng.Intn(depth+1)
	for i := 0; i < n; i++ {
		switch k := g.rng.Intn(10); {
		case k < 4 || depth == 0:
			g.straightLine(bb)
		case k < 6:
			bb = g.ifElse(f, bb, depth-1)
		case k < 9:
			bb = g.loop(f, bb, depth-1)
		default:
			bb = g.call(f, bb)
		}
	}
	return bb
}

// straightLine emits 1-6 random ALU/memory ops into the open block.
func (g *progGen) straightLine(bb *ir.BlockBuilder) {
	reg := func() ir.Reg { return ir.R(3 + g.rng.Intn(10)) } // r3..r12
	for i := 0; i < 1+g.rng.Intn(6); i++ {
		switch g.rng.Intn(8) {
		case 0:
			bb.MovI(reg(), int64(g.rng.Intn(1000)))
		case 1:
			bb.Add(reg(), reg(), reg())
		case 2:
			bb.Sub(reg(), reg(), reg())
		case 3:
			bb.MulI(reg(), reg(), int64(1+g.rng.Intn(7)))
		case 4:
			bb.Xor(reg(), reg(), reg())
		case 5:
			bb.SltI(reg(), reg(), int64(g.rng.Intn(100)))
		case 6: // masked store into the scratch array
			v, idx := reg(), reg()
			bb.AndI(ir.R(13), idx, 63).
				ShlI(ir.R(13), ir.R(13), 3).
				MovI(ir.R(14), int64(ir.DataBase)).
				Add(ir.R(13), ir.R(13), ir.R(14)).
				Store(v, ir.R(13), 0)
		default: // masked load from the scratch array
			d, idx := reg(), reg()
			bb.AndI(ir.R(13), idx, 63).
				ShlI(ir.R(13), ir.R(13), 3).
				MovI(ir.R(14), int64(ir.DataBase)).
				Add(ir.R(13), ir.R(13), ir.R(14)).
				Load(d, ir.R(13), 0)
		}
	}
}

// ifElse closes the open block with a branch over two arms that reconverge.
func (g *progGen) ifElse(f *ir.FuncBuilder, bb *ir.BlockBuilder, depth int) *ir.BlockBuilder {
	thenL, elseL, joinL := g.fresh("then"), g.fresh("else"), g.fresh("join")
	cond := ir.R(3 + g.rng.Intn(10))
	bb.Br(cond, thenL, elseL)
	tb := f.Block(thenL)
	g.straightLine(tb)
	tb = g.maybeNest(f, tb, depth)
	tb.Goto(joinL)
	eb := f.Block(elseL)
	g.straightLine(eb)
	eb.Goto(joinL)
	return f.Block(joinL)
}

func (g *progGen) maybeNest(f *ir.FuncBuilder, bb *ir.BlockBuilder, depth int) *ir.BlockBuilder {
	if depth > 0 && g.rng.Intn(2) == 0 {
		return g.segments(f, bb, depth)
	}
	return bb
}

// loop closes the open block with a counted loop (dedicated counters r20/r21
// guarantee termination regardless of body effects).
func (g *progGen) loop(f *ir.FuncBuilder, bb *ir.BlockBuilder, depth int) *ir.BlockBuilder {
	headL, bodyL, exitL := g.fresh("head"), g.fresh("body"), g.fresh("exit")
	trips := int64(1 + g.rng.Intn(20))
	bb.MovI(ir.R(20), 0).Goto(headL)
	hb := f.Block(headL)
	hb.SltI(ir.R(21), ir.R(20), trips).Br(ir.R(21), bodyL, exitL)
	body := f.Block(bodyL)
	g.straightLine(body)
	if depth > 0 && g.rng.Intn(3) == 0 {
		body = g.segments(f, body, 0) // straight-line only inside loops
	}
	body.AddI(ir.R(20), ir.R(20), 1).Goto(headL)
	return f.Block(exitL)
}

// call closes the open block with a call to a helper (if any exist).
func (g *progGen) call(f *ir.FuncBuilder, bb *ir.BlockBuilder) *ir.BlockBuilder {
	if len(g.helps) == 0 {
		g.straightLine(bb)
		return bb
	}
	retL := g.fresh("ret")
	callee := g.helps[g.rng.Intn(len(g.helps))]
	bb.MovI(ir.RegArg0, int64(g.rng.Intn(100)))
	bb.Call(callee, retL)
	nb := f.Block(retL)
	// Helpers write the scratch registers; re-seed the base register.
	nb.MovI(ir.R(15), int64(ir.DataBase))
	return nb
}
