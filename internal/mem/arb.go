package mem

// ARB models the Address Resolution Buffer: the structure that buffers
// speculative memory state per task stage and detects memory dependence
// violations (a later task loaded a word an earlier task then stored).
//
// The simulator drives it in task (program) order: for every load of the
// task being simulated it asks which earlier in-flight task, if any, stores
// to the same word and at what cycle, so the caller can either synchronize
// or flag a violation when the store's cycle is after the load's. Stores of
// retired tasks leave the ARB as their words commit.
type ARB struct {
	entriesPerPU int
	hitLat       int

	// stores[addr] = per-word store record list in task order.
	stores map[uint64][]storeRec

	// perTask tracks the distinct speculative words each active task holds,
	// for capacity (overflow stall) modeling.
	perTask map[int]map[uint64]bool

	// Violations and Overflows count events for reporting.
	Violations, Overflows uint64
}

type storeRec struct {
	task  int
	cycle int64
}

// NewARB builds an ARB with the paper's parameters: 32 entries per PU,
// two-cycle hit.
func NewARB(entriesPerPU int) *ARB {
	if entriesPerPU == 0 {
		entriesPerPU = 32
	}
	return &ARB{
		entriesPerPU: entriesPerPU,
		hitLat:       2,
		stores:       make(map[uint64][]storeRec),
		perTask:      make(map[int]map[uint64]bool),
	}
}

// HitLatency returns the ARB probe latency (2 cycles per the paper).
func (a *ARB) HitLatency() int { return a.hitLat }

func word(addr uint64) uint64 { return addr &^ 7 }

// RecordStore registers a speculative store by task seq at the given cycle.
func (a *ARB) RecordStore(task int, addr uint64, cycle int64) {
	w := word(addr)
	a.stores[w] = append(a.stores[w], storeRec{task: task, cycle: cycle})
	a.touch(task, w)
}

// RecordLoad registers a speculative load (loads occupy ARB entries too, so
// violations can be detected).
func (a *ARB) RecordLoad(task int, addr uint64) {
	a.touch(task, word(addr))
}

func (a *ARB) touch(task int, w uint64) {
	m := a.perTask[task]
	if m == nil {
		m = make(map[uint64]bool)
		a.perTask[task] = m
	}
	m[w] = true
}

// LastStoreBefore returns the cycle at which the latest store to addr by a
// task earlier than `task` executes, and whether one exists among the
// still-active (unretired) tasks. The simulator compares that cycle with the
// load's cycle: a producing store that executes later than the load is a
// dependence violation (or a synchronization point when the sync table
// predicts it).
func (a *ARB) LastStoreBefore(task int, addr uint64) (cycle int64, ok bool) {
	recs := a.stores[word(addr)]
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].task < task {
			return recs[i].cycle, true
		}
	}
	return 0, false
}

// NoteViolation bumps the violation counter.
func (a *ARB) NoteViolation() { a.Violations++ }

// Words returns how many distinct speculative words task holds; the caller
// stalls the task's memory operations when this exceeds Capacity.
func (a *ARB) Words(task int) int { return len(a.perTask[task]) }

// Capacity returns the per-PU entry budget.
func (a *ARB) Capacity() int { return a.entriesPerPU }

// WouldOverflow reports whether adding addr for task would exceed its ARB
// stage capacity, counting the event when it does.
func (a *ARB) WouldOverflow(task int, addr uint64) bool {
	m := a.perTask[task]
	if m != nil && m[word(addr)] {
		return false
	}
	n := 0
	if m != nil {
		n = len(m)
	}
	if n >= a.entriesPerPU {
		a.Overflows++
		return true
	}
	return false
}

// Retire drops all state belonging to tasks with sequence <= task (their
// speculative words have committed to architectural memory).
func (a *ARB) Retire(task int) {
	for t := range a.perTask {
		if t <= task {
			delete(a.perTask, t)
		}
	}
	for w, recs := range a.stores {
		keep := recs[:0]
		for _, r := range recs {
			if r.task > task {
				keep = append(keep, r)
			}
		}
		if len(keep) == 0 {
			delete(a.stores, w)
		} else {
			a.stores[w] = keep
		}
	}
}

// SquashTask removes the speculative state of one squashed task (it will
// re-execute and re-insert).
func (a *ARB) SquashTask(task int) {
	delete(a.perTask, task)
	for w, recs := range a.stores {
		keep := recs[:0]
		for _, r := range recs {
			if r.task != task {
				keep = append(keep, r)
			}
		}
		if len(keep) == 0 {
			delete(a.stores, w)
		} else {
			a.stores[w] = keep
		}
	}
}

// SyncTable is the 256-entry memory dependence synchronization table: loads
// whose address (instruction identity) caused squashes are predicted to
// depend on an earlier store and are made to wait instead of speculate.
type SyncTable struct {
	capacity int
	entries  map[uint64]uint8 // load identity -> 2-bit confidence
	order    []uint64         // FIFO for eviction

	// Hits counts loads that synchronized instead of speculating.
	Hits uint64
}

// NewSyncTable builds the table with the paper's 256 entries.
func NewSyncTable(capacity int) *SyncTable {
	if capacity == 0 {
		capacity = 256
	}
	return &SyncTable{capacity: capacity, entries: make(map[uint64]uint8)}
}

// Insert records that the load identified by id caused a memory dependence
// violation.
func (s *SyncTable) Insert(id uint64) {
	if c, ok := s.entries[id]; ok {
		if c < 3 {
			s.entries[id] = c + 1
		}
		return
	}
	if len(s.entries) >= s.capacity {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, oldest)
	}
	s.entries[id] = 2
	s.order = append(s.order, id)
}

// ShouldSync reports whether the load identified by id is predicted to
// conflict and must synchronize with the producing store.
func (s *SyncTable) ShouldSync(id uint64) bool {
	c, ok := s.entries[id]
	if ok && c >= 2 {
		s.Hits++
		return true
	}
	return false
}

// Weaken lowers confidence for id after a synchronization that turned out to
// be unnecessary (no earlier store materialized).
func (s *SyncTable) Weaken(id uint64) {
	if c, ok := s.entries[id]; ok && c > 0 {
		s.entries[id] = c - 1
	}
}

// Len returns the number of live entries.
func (s *SyncTable) Len() int { return len(s.entries) }
