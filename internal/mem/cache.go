// Package mem models the Multiscalar memory system of the paper's §4.2:
// banked, lockup-free L1 instruction and data caches with per-PU task
// caches, a shared L2, main memory, the Address Resolution Buffer (ARB) that
// detects memory dependence violations, and the 256-entry memory dependence
// synchronization table.
//
// The caches are timing-only (tag arrays with LRU): functional values come
// from the simulator's architectural memory, which is the standard structure
// for timing-directed simulators.
package mem

// Cache is a set-associative, write-allocate, LRU cache tag array.
type Cache struct {
	name      string
	sets      int
	ways      int
	blockBits uint
	hitLat    int
	tags      [][]uint64 // [set][way], 0 = invalid (tag stores addr|1)
	lru       [][]uint32
	clock     uint32

	// Accesses and Misses count for reporting.
	Accesses, Misses uint64
}

// NewCache builds a cache of size bytes with the given associativity and
// block size (bytes) and hit latency (cycles).
func NewCache(name string, size, ways, blockSize, hitLat int) *Cache {
	sets := size / (ways * blockSize)
	if sets < 1 {
		sets = 1
	}
	bits := uint(0)
	for 1<<bits < blockSize {
		bits++
	}
	c := &Cache{
		name:      name,
		sets:      sets,
		ways:      ways,
		blockBits: bits,
		hitLat:    hitLat,
		tags:      make([][]uint64, sets),
		lru:       make([][]uint32, sets),
	}
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.lru[i] = make([]uint32, ways)
	}
	return c
}

// Lookup probes the cache for addr, updating LRU and filling on miss. It
// returns the hit latency and whether the access missed (the caller adds the
// lower-level latency on a miss).
func (c *Cache) Lookup(addr uint64) (lat int, miss bool) {
	c.Accesses++
	c.clock++
	block := addr >> c.blockBits
	set := int(block % uint64(c.sets))
	key := block<<1 | 1
	victim := 0
	for w := 0; w < c.ways; w++ {
		if c.tags[set][w] == key {
			c.lru[set][w] = c.clock
			return c.hitLat, false
		}
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	c.Misses++
	c.tags[set][victim] = key
	c.lru[set][victim] = c.clock
	return c.hitLat, true
}

// HitLatency returns the configured hit latency.
func (c *Cache) HitLatency() int { return c.hitLat }

// MissRate returns misses/accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Hierarchy bundles the paper's memory hierarchy for one simulated machine
// and returns composite access latencies.
type Hierarchy struct {
	L1I, L1D  *Cache
	TaskCache *Cache
	L2        *Cache
	MemLat    int
	L2Xfer    int // extra cycles for a block transfer from L2
	MemXfer   int // extra cycles for a block transfer from memory
}

// Config mirrors the paper's cache parameters, scaled by PU count.
type Config struct {
	NumPUs int
	// L1Size is per the paper: 64KB at 4 PUs, 128KB at 8 PUs (applies to both
	// I and D caches). Zero selects by NumPUs.
	L1Size    int
	L1Ways    int // default 2
	BlockSize int // default 32
	L2Size    int // default 4MB
	L2Ways    int // default 2
	L2HitLat  int // default 12
	MemLat    int // default 58
}

// NewHierarchy builds the hierarchy from the paper's parameters.
func NewHierarchy(cfg Config) *Hierarchy {
	if cfg.L1Size == 0 {
		if cfg.NumPUs >= 8 {
			cfg.L1Size = 128 << 10
		} else {
			cfg.L1Size = 64 << 10
		}
	}
	if cfg.L1Ways == 0 {
		cfg.L1Ways = 2
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 32
	}
	if cfg.L2Size == 0 {
		cfg.L2Size = 4 << 20
	}
	if cfg.L2Ways == 0 {
		cfg.L2Ways = 2
	}
	if cfg.L2HitLat == 0 {
		cfg.L2HitLat = 12
	}
	if cfg.MemLat == 0 {
		cfg.MemLat = 58
	}
	return &Hierarchy{
		L1I:       NewCache("l1i", cfg.L1Size, cfg.L1Ways, cfg.BlockSize, 1),
		L1D:       NewCache("l1d", cfg.L1Size, cfg.L1Ways, cfg.BlockSize, 1),
		TaskCache: NewCache("task", 32<<10, 2, cfg.BlockSize, 1),
		L2:        NewCache("l2", cfg.L2Size, cfg.L2Ways, cfg.BlockSize, cfg.L2HitLat),
		MemLat:    cfg.MemLat,
		L2Xfer:    2, // 32-byte block at 16 bytes/cycle
		MemXfer:   4, // 32-byte block at 8 bytes/cycle
	}
}

// InstrFetch returns the latency of fetching the instruction block at addr.
func (h *Hierarchy) InstrFetch(addr uint64) int {
	lat, miss := h.L1I.Lookup(addr)
	if !miss {
		return lat
	}
	return lat + h.lowerLevel(addr)
}

// DataAccess returns the latency of a load/store probe at addr.
func (h *Hierarchy) DataAccess(addr uint64) int {
	lat, miss := h.L1D.Lookup(addr)
	if !miss {
		return lat
	}
	return lat + h.lowerLevel(addr)
}

// TaskFetch returns the latency of reading a task descriptor at addr through
// the task cache.
func (h *Hierarchy) TaskFetch(addr uint64) int {
	lat, miss := h.TaskCache.Lookup(addr)
	if !miss {
		return lat
	}
	return lat + h.lowerLevel(addr)
}

func (h *Hierarchy) lowerLevel(addr uint64) int {
	lat, miss := h.L2.Lookup(addr)
	if !miss {
		return lat + h.L2Xfer
	}
	return lat + h.L2Xfer + h.MemLat + h.MemXfer
}
