package mem

import "testing"

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache("t", 1<<10, 2, 32, 1)
	if _, miss := c.Lookup(0x100); !miss {
		t.Error("cold access hit")
	}
	if _, miss := c.Lookup(0x100); miss {
		t.Error("second access missed")
	}
	if _, miss := c.Lookup(0x11f); miss {
		t.Error("same 32B block missed")
	}
	if _, miss := c.Lookup(0x120); !miss {
		t.Error("next block hit while cold")
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	// 2-way, 2 sets of 32B blocks -> addresses 0, 64, 128 map to set 0.
	c := NewCache("t", 128, 2, 32, 1)
	c.Lookup(0)
	c.Lookup(64)
	c.Lookup(0)   // touch 0 so 64 is LRU
	c.Lookup(128) // evicts 64
	if _, miss := c.Lookup(0); miss {
		t.Error("MRU block evicted")
	}
	if _, miss := c.Lookup(64); !miss {
		t.Error("LRU block survived eviction")
	}
}

func TestCacheMissRate(t *testing.T) {
	c := NewCache("t", 1<<10, 2, 32, 1)
	c.Lookup(0)
	c.Lookup(0)
	c.Lookup(0)
	c.Lookup(0)
	if got := c.MissRate(); got != 0.25 {
		t.Errorf("miss rate = %v, want 0.25", got)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(Config{NumPUs: 4})
	// Cold: L1 miss + L2 miss + memory.
	cold := h.DataAccess(0x8000)
	warm := h.DataAccess(0x8000)
	if warm != 1 {
		t.Errorf("warm L1 hit latency = %d, want 1", warm)
	}
	wantCold := 1 + 12 + 2 + 58 + 4
	if cold != wantCold {
		t.Errorf("cold access latency = %d, want %d", cold, wantCold)
	}
	// After eviction-free reuse, an address that misses L1 but hits L2:
	// force an L1-only conflict is fiddly; instead verify the L2 hit path
	// via the instruction side sharing L2.
	l2hit := h.InstrFetch(0x8000) // L1I cold, L2 warm from the data access
	if want := 1 + 12 + 2; l2hit != want {
		t.Errorf("L1 miss/L2 hit latency = %d, want %d", l2hit, want)
	}
}

func TestHierarchySizesScaleWithPUs(t *testing.T) {
	h4 := NewHierarchy(Config{NumPUs: 4})
	h8 := NewHierarchy(Config{NumPUs: 8})
	// 128KB has twice the sets of 64KB at equal ways/blocks.
	if h8.L1D.sets != 2*h4.L1D.sets {
		t.Errorf("8PU L1 sets = %d, 4PU = %d", h8.L1D.sets, h4.L1D.sets)
	}
}

func TestARBStoreLoadOrdering(t *testing.T) {
	a := NewARB(32)
	a.RecordStore(2, 0x100, 50)
	if c, ok := a.LastStoreBefore(5, 0x100); !ok || c != 50 {
		t.Errorf("LastStoreBefore = %d,%v", c, ok)
	}
	if _, ok := a.LastStoreBefore(2, 0x100); ok {
		t.Error("store visible to its own task as an earlier store")
	}
	if _, ok := a.LastStoreBefore(1, 0x100); ok {
		t.Error("store visible to an earlier task")
	}
	// Word granularity: 0x104 is the same 8-byte word.
	if _, ok := a.LastStoreBefore(5, 0x104); !ok {
		t.Error("same-word access not matched")
	}
	if _, ok := a.LastStoreBefore(5, 0x108); ok {
		t.Error("different word matched")
	}
}

func TestARBLatestOfMultipleStores(t *testing.T) {
	a := NewARB(32)
	a.RecordStore(1, 0x100, 10)
	a.RecordStore(3, 0x100, 30)
	if c, _ := a.LastStoreBefore(5, 0x100); c != 30 {
		t.Errorf("latest store cycle = %d, want 30", c)
	}
	if c, _ := a.LastStoreBefore(2, 0x100); c != 10 {
		t.Errorf("store for task 2 = %d, want 10", c)
	}
}

func TestARBSquashRemovesOneTask(t *testing.T) {
	a := NewARB(32)
	a.RecordStore(1, 0x100, 10)
	a.RecordStore(2, 0x200, 20)
	a.SquashTask(2)
	if _, ok := a.LastStoreBefore(5, 0x200); ok {
		t.Error("squashed store survived")
	}
	if _, ok := a.LastStoreBefore(5, 0x100); !ok {
		t.Error("unrelated store removed")
	}
}

func TestARBRetire(t *testing.T) {
	a := NewARB(32)
	a.RecordStore(1, 0x100, 10)
	a.RecordStore(5, 0x200, 50)
	a.Retire(3)
	if _, ok := a.LastStoreBefore(9, 0x100); ok {
		t.Error("retired store survived")
	}
	if _, ok := a.LastStoreBefore(9, 0x200); !ok {
		t.Error("live store dropped")
	}
}

func TestARBCapacity(t *testing.T) {
	a := NewARB(4)
	for i := 0; i < 4; i++ {
		addr := uint64(0x100 + 8*i)
		if a.WouldOverflow(1, addr) {
			t.Fatalf("overflow at %d words", i)
		}
		a.RecordLoad(1, addr)
	}
	if !a.WouldOverflow(1, 0x900) {
		t.Error("no overflow past capacity")
	}
	if a.WouldOverflow(1, 0x100) {
		t.Error("already-resident word counted as overflow")
	}
	if a.Overflows == 0 {
		t.Error("overflow not counted")
	}
	if a.WouldOverflow(2, 0x900) {
		t.Error("capacity shared across tasks; stages are per task")
	}
}

func TestSyncTableConfidence(t *testing.T) {
	s := NewSyncTable(256)
	id := uint64(0x40)
	if s.ShouldSync(id) {
		t.Error("cold entry syncs")
	}
	s.Insert(id)
	if !s.ShouldSync(id) {
		t.Error("inserted entry does not sync")
	}
	s.Weaken(id)
	if s.ShouldSync(id) {
		t.Error("weakened entry still syncs")
	}
	s.Insert(id)
	if !s.ShouldSync(id) {
		t.Error("re-inserted entry does not sync")
	}
}

func TestSyncTableEviction(t *testing.T) {
	s := NewSyncTable(2)
	s.Insert(1)
	s.Insert(2)
	s.Insert(3) // evicts 1 (FIFO)
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
	if s.ShouldSync(1) {
		t.Error("evicted entry still present")
	}
	if !s.ShouldSync(3) {
		t.Error("new entry missing")
	}
}

func TestTaskCachePath(t *testing.T) {
	h := NewHierarchy(Config{NumPUs: 4})
	cold := h.TaskFetch(0x1000)
	warm := h.TaskFetch(0x1000)
	if warm != 1 {
		t.Errorf("warm task fetch = %d", warm)
	}
	if cold <= warm {
		t.Errorf("cold task fetch = %d not slower than warm", cold)
	}
}
