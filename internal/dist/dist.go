// Package dist is the distribution layer of the experiment grid: it lets
// one sweep fan out over a fleet of worker processes with no shared memory
// between them, coordinated entirely through HTTP and the content-addressed
// result cache.
//
// Three pieces compose:
//
//   - A tiered grid.Cache (Tiered): in-memory LRU → disk → remote HTTP
//     backend (RemoteCache) speaking GET/PUT-by-key against an mssrv peer or
//     a dist leader. Every tier is strictly fail-open — a remote timeout,
//     corrupt artifact, or stale schema is a miss, never an error — so cache
//     infrastructure can only make runs slower, not wrong.
//
//   - A work-stealing shard Scheduler that partitions the job keyspace by
//     cache-key hash. It implements grid.Dispatcher, so the leader's engine
//     hands every cache-missing simulation to it; workers (remote processes
//     and the leader's own RunLocal loop) pull from their home shard, steal
//     from the longest queue when idle, and hold time-bounded leases —
//     a worker that dies mid-job is reaped and its jobs are reassigned.
//
//   - The worker protocol: a Leader mounts the scheduler and a cache over
//     HTTP (/v1/dist/register, /v1/dist/pull, /v1/dist/report,
//     /v1/cache/{key}, /healthz) and a Worker (mssrv -worker) registers,
//     pulls jobs, executes them through its own grid.Engine — resolving the
//     partition→simulate dependency locally and publishing results through
//     the shared cache — and reports completion.
//
// Determinism is preserved end to end: the scheduler only decides *where* a
// job runs, the experiment layer still collects results into caller-indexed
// slots, and the simulator itself is deterministic, so distributed output is
// byte-identical to the serial harness.
package dist
