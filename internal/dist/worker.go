package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"multiscalar/internal/grid"
	"multiscalar/internal/obs"
	"multiscalar/internal/obs/span"
	"multiscalar/internal/sim"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Leader is the leader's base URL (scheme://host:port). Required.
	Leader string
	// Engine executes pulled jobs. Required. Give it a Tiered cache whose
	// remote tier points back at the leader so the worker publishes every
	// result to the fleet and reuses results other workers already
	// published.
	Engine *grid.Engine
	// Client issues protocol requests (nil = private client; pulls and
	// reports carry their own deadlines).
	Client *http.Client
	// Concurrency is how many pull-execute loops run at once (0 = the
	// engine's worker count), so one worker process keeps all its cores
	// busy. The engine's own semaphore still bounds simulations.
	Concurrency int
	// PollInterval is the pause after an empty pull (0 = 50ms; the leader
	// long-polls on top of this).
	PollInterval time.Duration
	// Timeout bounds each protocol request (0 = 10s).
	Timeout time.Duration
	// Metrics, when non-nil, receives dist_pull_rtt_us and worker-side job
	// counters.
	Metrics *obs.Registry
	// Logger receives lifecycle lines (nil = discard).
	Logger *log.Logger
	// Tracer, when non-nil, records worker.pull and worker.exec spans under
	// the trace context each pulled job carries and ships them back to the
	// leader on the job's report, stitching one cross-process trace.
	Tracer *span.Tracer
}

// WorkerStats snapshots a worker's counters.
type WorkerStats struct {
	// Jobs counts pulled jobs executed to completion (success or sim
	// error); Failures counts jobs whose execution returned an error.
	Jobs, Failures int64
}

// Worker is one fleet member: it registers with a leader, pulls jobs from
// the shard scheduler, executes them through its own engine — the
// partition→simulate dependency resolves locally; results publish through
// the engine's cache tiers — and reports completions. Run returns when the
// leader declares the run over, the context ends, or the leader stays
// unreachable past the retry budget.
type Worker struct {
	leader   string
	eng      *grid.Engine
	hc       *http.Client
	conc     int
	poll     time.Duration
	timeout  time.Duration
	log      *log.Logger
	tracer   *span.Tracer
	name     string
	jobs     atomic.Int64
	failures atomic.Int64

	rtt     *obs.Histogram // nil without metrics
	mJobs   *obs.Counter
	mErrors *obs.Counter
}

// NewWorker validates opts and returns an unstarted worker.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Leader == "" {
		return nil, fmt.Errorf("dist: WorkerOptions.Leader is required")
	}
	if opts.Engine == nil {
		return nil, fmt.Errorf("dist: WorkerOptions.Engine is required")
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 50 * time.Millisecond
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 10 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = log.New(io.Discard, "", 0)
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = opts.Engine.Workers()
	}
	w := &Worker{
		leader:  trimSlash(opts.Leader),
		eng:     opts.Engine,
		hc:      opts.Client,
		conc:    opts.Concurrency,
		poll:    opts.PollInterval,
		timeout: opts.Timeout,
		log:     opts.Logger,
		tracer:  opts.Tracer,
	}
	if r := opts.Metrics; r != nil {
		w.rtt = r.Histogram("dist_pull_rtt_us", "us",
			"round-trip time of one pull against the leader", obs.ExpBuckets(10, 4, 12))
		w.mJobs = r.Counter("dist_jobs_executed_total", "jobs", "jobs this worker executed")
		w.mErrors = r.Counter("dist_job_errors_total", "jobs", "executed jobs that returned an error")
	}
	return w, nil
}

// Name reports the leader-assigned worker name ("" before registration).
func (w *Worker) Name() string { return w.name }

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{Jobs: w.jobs.Load(), Failures: w.failures.Load()}
}

// maxConsecutiveFailures bounds how many protocol round trips may fail in a
// row (with backoff between them) before the worker gives up on the leader.
const maxConsecutiveFailures = 8

// Run registers once and drives Concurrency pull-execute loops until the
// leader closes the run (nil), ctx ends (ctx.Err()), or the leader stays
// unreachable past the retry budget (a protocol error). The first loop
// failure cancels its siblings.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	w.log.Printf("level=info msg=worker_registered worker=%s leader=%s conc=%d", w.name, w.leader, w.conc)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make(chan error, w.conc)
	for i := 0; i < w.conc; i++ {
		go func() { errs <- w.loop(ctx) }()
	}
	var first error
	for i := 0; i < w.conc; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
			cancel()
		}
	}
	if first == nil {
		w.log.Printf("level=info msg=worker_done worker=%s jobs=%d", w.name, w.jobs.Load())
	}
	return first
}

// loop is one pull-execute loop.
func (w *Worker) loop(ctx context.Context) error {
	failures := 0
	backoff := w.poll
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		pull, rtt, err := w.pull(ctx)
		if err != nil {
			failures++
			if failures >= maxConsecutiveFailures {
				return fmt.Errorf("dist: leader unreachable after %d attempts: %w", failures, err)
			}
			if err := sleepCtx(ctx, backoff); err != nil {
				return err
			}
			backoff *= 2
			continue
		}
		failures, backoff = 0, w.poll
		switch {
		case pull.Closed:
			return nil
		case pull.None || pull.Job == nil:
			if err := sleepCtx(ctx, w.poll); err != nil {
				return err
			}
			continue
		}
		var sc span.SpanContext
		if pull.Trace != nil {
			sc = *pull.Trace
		}
		// Backdate the pull span by the measured round trip so the trace
		// shows the hand-off latency between leader and worker.
		w.tracer.Record(sc, "worker.pull", time.Now().Add(-rtt), rtt, nil)
		res, runErr := w.exec(ctx, sc, *pull.Job)
		if runErr != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		w.jobs.Add(1)
		if w.mJobs != nil {
			w.mJobs.Inc()
		}
		errMsg := ""
		if runErr != nil {
			errMsg = runErr.Error()
			w.failures.Add(1)
			if w.mErrors != nil {
				w.mErrors.Inc()
			}
		}
		if err := w.report(ctx, pull.Key, res, errMsg, w.tracer.Collect(sc.TraceID)); err != nil {
			// The lease will expire and the job will be reassigned; the
			// result is already published through the cache tiers, so the
			// retry is cheap.
			w.log.Printf("level=warn msg=report_failed worker=%s key=%s err=%v", w.name, pull.Key, err)
		}
	}
}

func (w *Worker) register(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for attempt := 0; ; attempt++ {
		var resp RegisterResponse
		err := w.post(ctx, "/v1/dist/register", RegisterRequest{Hint: "mssrv-worker"}, &resp)
		if err == nil {
			if resp.Worker == "" {
				return fmt.Errorf("dist: leader assigned empty worker name")
			}
			w.name = resp.Worker
			// Spans this worker records should carry its fleet identity,
			// not whatever placeholder the tracer was built with.
			w.tracer.SetProcess(w.name)
			return nil
		}
		if attempt+1 >= maxConsecutiveFailures {
			return fmt.Errorf("dist: register with %s: %w", w.leader, err)
		}
		if err := sleepCtx(ctx, backoff); err != nil {
			return err
		}
		backoff *= 2
	}
}

// exec runs one pulled job under a worker.exec span parented to the
// leader-supplied trace context (a no-op when the pull carried none).
func (w *Worker) exec(ctx context.Context, sc span.SpanContext, job grid.Job) (res *sim.Result, err error) {
	ctx, sp := w.tracer.StartRemote(ctx, sc, "worker.exec")
	if sp != nil {
		sp.SetAttr("worker", w.name)
	}
	defer func() { sp.End(err) }()
	return w.eng.RunCtx(ctx, job)
}

func (w *Worker) pull(ctx context.Context) (PullResponse, time.Duration, error) {
	var resp PullResponse
	t0 := time.Now()
	err := w.post(ctx, "/v1/dist/pull", PullRequest{Worker: w.name}, &resp)
	rtt := time.Since(t0)
	if w.rtt != nil {
		w.rtt.Observe(rtt.Microseconds())
	}
	return resp, rtt, err
}

func (w *Worker) report(ctx context.Context, key string, res *sim.Result, errMsg string, spans []span.SpanData) error {
	// Detach from cancellation (but keep the deadline): a finished result
	// should reach the leader even if this worker is shutting down.
	return w.post(context.WithoutCancel(ctx), "/v1/dist/report", ReportRequest{
		Worker: w.name, Key: key, Result: grid.StripTimeline(res), Error: errMsg, Spans: spans,
	}, nil)
}

func (w *Worker) post(ctx context.Context, path string, body, out any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, w.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.leader+path, bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("dist: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx pauses for d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
