package dist

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"multiscalar/internal/grid"
	"multiscalar/internal/sim"
)

// testKey returns a distinct, valid (64 lowercase hex) cache key per index.
func testKey(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

func testResult(ipc float64) *sim.Result {
	return &sim.Result{IPC: ipc, Cycles: 100, Instrs: uint64(100 * ipc)}
}

func TestLRUEviction(t *testing.T) {
	ctx := context.Background()
	c := NewLRU(2)
	c.Store(ctx, testKey(0), grid.Job{}, testResult(1))
	c.Store(ctx, testKey(1), grid.Job{}, testResult(2))
	// Touch key 0 so key 1 becomes the eviction victim.
	if _, ok := c.Load(ctx, testKey(0), grid.Job{}); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	c.Store(ctx, testKey(2), grid.Job{}, testResult(3))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Load(ctx, testKey(1), grid.Job{}); ok {
		t.Error("least-recently-used key 1 survived eviction")
	}
	for _, i := range []int{0, 2} {
		if _, ok := c.Load(ctx, testKey(i), grid.Job{}); !ok {
			t.Errorf("key %d evicted, want resident", i)
		}
	}
}

func TestLRUStripsTimeline(t *testing.T) {
	c := NewLRU(4)
	res := testResult(1)
	res.Timeline = []sim.TaskRecord{{}}
	c.Store(context.Background(), testKey(0), grid.Job{}, res)
	got, ok := c.Load(context.Background(), testKey(0), grid.Job{})
	if !ok || got.Timeline != nil {
		t.Fatalf("cached result ok=%v timeline=%v, want hit without timeline", ok, got.Timeline)
	}
	if res.Timeline == nil {
		t.Error("Store mutated the caller's result")
	}
}

// TestTieredPromotion is the disk→LRU half of the fallthrough contract: a
// miss in the memory tier that hits disk is promoted, so the next load is
// served from memory even if the disk copy disappears.
func TestTieredPromotion(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	lru := NewLRU(8)
	disk := NewDiskTier(dir)
	tiered := NewTiered(lru, disk)

	key := testKey(0)
	disk.Store(ctx, key, grid.Job{}, testResult(2))
	if lru.Len() != 0 {
		t.Fatal("LRU populated before any load")
	}
	res, ok := tiered.Load(ctx, key, grid.Job{})
	if !ok || res.IPC != 2 {
		t.Fatalf("tiered load = (%v, %v), want disk hit with IPC 2", res, ok)
	}
	if lru.Len() != 1 {
		t.Fatalf("LRU len = %d after disk hit, want 1 (promotion)", lru.Len())
	}
	// Remove the disk artifact: a second load must be served by the
	// promoted in-memory copy.
	if err := os.Remove(filepath.Join(dir, key+".json")); err != nil {
		t.Fatal(err)
	}
	if res, ok = tiered.Load(ctx, key, grid.Job{}); !ok || res.IPC != 2 {
		t.Fatalf("post-promotion load = (%v, %v), want LRU hit", res, ok)
	}
}

func TestTieredWriteThrough(t *testing.T) {
	ctx := context.Background()
	lru := NewLRU(8)
	disk := NewDiskTier(t.TempDir())
	tiered := NewTiered(lru, disk)

	job := grid.Job{Workload: "compress", Config: sim.DefaultConfig(4)}
	tiered.Store(ctx, testKey(0), job, testResult(3))
	if _, ok := lru.Load(ctx, testKey(0), grid.Job{}); !ok {
		t.Error("store did not reach the LRU tier")
	}
	if _, ok := disk.Load(ctx, testKey(0), grid.Job{}); !ok {
		t.Error("store did not reach the disk tier")
	}
}

func TestTieredMissIsMiss(t *testing.T) {
	tiered := NewTiered(NewLRU(8), NewDiskTier(t.TempDir()))
	if _, ok := tiered.Load(context.Background(), testKey(9), grid.Job{}); ok {
		t.Fatal("empty tiers reported a hit")
	}
}

func TestTieredHealth(t *testing.T) {
	tiered := NewTiered(NewLRU(8), NewDiskTier(t.TempDir()))
	hs := tiered.Health(context.Background())
	if len(hs) != 2 || hs[0].Tier != "lru" || hs[1].Tier != "disk" {
		t.Fatalf("health = %+v, want [lru disk]", hs)
	}
	for _, h := range hs {
		if !h.OK {
			t.Errorf("tier %s unhealthy: %s", h.Tier, h.Err)
		}
	}
}

func TestBuildCache(t *testing.T) {
	if c, r := BuildCache(CacheConfig{}); c != nil || r != nil {
		t.Fatalf("empty config built %v/%v, want nil/nil", c, r)
	}
	c, r := BuildCache(CacheConfig{LRUSize: 4, Dir: t.TempDir(), Remote: "http://127.0.0.1:1"})
	if c == nil || r == nil {
		t.Fatal("full config built nil cache or remote")
	}
	if n := len(c.Tiers()); n != 3 {
		t.Fatalf("tier count = %d, want 3", n)
	}
	for i, want := range []string{"lru", "disk", "remote"} {
		if got := c.Tiers()[i].Name(); got != want {
			t.Errorf("tier %d = %s, want %s (fastest first)", i, got, want)
		}
	}
}
