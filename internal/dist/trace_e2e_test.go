package dist

import (
	"context"
	"errors"
	"io"
	"log"
	"net/http/httptest"
	"testing"
	"time"

	"multiscalar/internal/core"
	"multiscalar/internal/grid"
	"multiscalar/internal/obs/span"
	"multiscalar/internal/sim"
)

// traceHarness is a leader (scheduler + HTTP surface, no local loop) plus
// nWorkers HTTP workers, each carrying its own tracer as a separate process
// would. Returns the leader tracer, the leader engine, and a shutdown func.
func traceHarness(t *testing.T, nWorkers int) (*span.Tracer, *grid.Engine, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	tr := span.New(span.Options{Process: "leader", MaxSpansPerTrace: 4096})
	sched := NewScheduler(SchedOptions{Tracer: tr})
	cache := NewTiered(NewLRU(256))
	leader := NewLeader(sched, LeaderOptions{
		Cache: cache, PollWait: 50 * time.Millisecond, Tracer: tr,
	})
	ts := httptest.NewServer(leader.Handler())
	eng := grid.New(grid.Options{Workers: 2, Cache: cache, Dispatcher: sched})

	workerErrs := make(chan error, nWorkers)
	for i := 0; i < nWorkers; i++ {
		weng := grid.New(grid.Options{
			Workers: 2,
			Cache:   NewTiered(NewLRU(256), NewRemoteCache(ts.URL, RemoteOptions{Backoff: time.Millisecond})),
		})
		w, err := NewWorker(WorkerOptions{
			Leader:       ts.URL,
			Engine:       weng,
			Concurrency:  2,
			PollInterval: 2 * time.Millisecond,
			Logger:       log.New(io.Discard, "", 0),
			Tracer:       span.New(span.Options{Process: "unregistered"}),
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { workerErrs <- w.Run(ctx) }()
	}
	shutdown := func() {
		sched.Close()
		for i := 0; i < nWorkers; i++ {
			if err := <-workerErrs; err != nil {
				t.Errorf("worker %d exited with %v, want clean close", i, err)
			}
		}
		cancel()
		ts.Close()
	}
	return tr, eng, shutdown
}

// TestTraceSpansThreeProcesses: one traced sweep against a leader and two
// remote workers yields ONE trace whose spans carry at least three distinct
// process names (leader + both workers) and whose parent links all resolve —
// the cross-process stitching the wire protocol exists to provide.
func TestTraceSpansThreeProcesses(t *testing.T) {
	restore := grid.SetSimForTesting(func(part *core.Partition, cfg sim.Config) (*sim.Result, error) {
		time.Sleep(10 * time.Millisecond)
		return &sim.Result{IPC: float64(cfg.NumPUs)}, nil
	})
	t.Cleanup(restore)

	tr, eng, shutdown := traceHarness(t, 2)

	var jobs []grid.Job
	for _, wl := range []string{"compress", "go", "tomcatv"} {
		for _, pus := range []int{2, 4, 6, 8} {
			for _, h := range []core.Heuristic{core.BasicBlock, core.ControlFlow} {
				jobs = append(jobs, grid.Job{
					Workload: wl,
					Select:   core.Options{Heuristic: h},
					Config:   sim.DefaultConfig(pus),
				})
			}
		}
	}

	ctx, root := tr.StartRoot(context.Background(), "sweep")
	if err := grid.RunAll(ctx, len(jobs), func(i int) error {
		_, err := eng.RunCtx(ctx, jobs[i])
		return err
	}); err != nil {
		t.Fatal(err)
	}
	root.End(nil)
	shutdown()

	td := tr.Recorder().Get(root.TraceID())
	if td == nil {
		t.Fatal("sweep trace not recorded")
	}
	if td.Errored {
		t.Errorf("clean sweep recorded as errored")
	}

	procs := map[string]bool{}
	ids := map[span.SpanID]bool{td.Root.SpanID: true}
	for _, s := range td.Spans {
		procs[s.Process] = true
		ids[s.SpanID] = true
	}
	if len(procs) < 3 || !procs["leader"] {
		t.Errorf("trace covers processes %v, want leader plus two workers", procs)
	}
	byName := map[string]int{}
	for _, s := range td.Spans {
		byName[s.Name]++
		if s.Parent == "" {
			if s.SpanID != td.Root.SpanID {
				t.Errorf("span %s/%s has no parent and is not the root", s.Name, s.SpanID)
			}
			continue
		}
		if !ids[s.Parent] {
			t.Errorf("span %s/%s parent %s not in trace", s.Name, s.SpanID, s.Parent)
		}
	}
	for _, want := range []string{"grid.run", "dist.dispatch", "worker.pull", "worker.exec", "grid.sim-exec"} {
		if byName[want] == 0 {
			t.Errorf("no %s span in trace; got %v", want, byName)
		}
	}
	// Every job dispatched remotely (no local loop runs), so the worker-side
	// execution count must match the dispatch count.
	if byName["worker.exec"] != byName["dist.dispatch"] {
		t.Errorf("worker.exec spans %d != dist.dispatch spans %d",
			byName["worker.exec"], byName["dist.dispatch"])
	}
}

// TestTraceErroredJobRetained: a job whose simulation fails must surface as
// an errored trace — error status propagated from the worker's exec span all
// the way up — and the recorder must retain it for /debug/traces?status=error.
func TestTraceErroredJobRetained(t *testing.T) {
	restore := grid.SetSimForTesting(func(part *core.Partition, cfg sim.Config) (*sim.Result, error) {
		return nil, errors.New("injected fault")
	})
	t.Cleanup(restore)

	tr, eng, shutdown := traceHarness(t, 1)

	job := grid.Job{Workload: "compress", Config: sim.DefaultConfig(4)}
	ctx, root := tr.StartRoot(context.Background(), "doomed")
	_, err := eng.RunCtx(ctx, job)
	if err == nil {
		t.Fatal("injected fault did not propagate")
	}
	root.End(err)
	shutdown()

	td := tr.Recorder().Get(root.TraceID())
	if td == nil {
		t.Fatal("errored trace not recorded")
	}
	if !td.Errored {
		t.Error("trace with failing job not marked errored")
	}
	erroredSpan := false
	for _, s := range td.Spans {
		if s.Name == "worker.exec" && s.Status == span.StatusError {
			erroredSpan = true
		}
	}
	if !erroredSpan {
		t.Error("worker.exec span did not carry error status across the wire")
	}
	listed := tr.Recorder().List(span.Filter{Status: span.StatusError})
	found := false
	for _, s := range listed {
		if s.TraceID == td.TraceID {
			found = true
		}
	}
	if !found {
		t.Errorf("errored trace %s not retained in status=error listing", td.TraceID)
	}
}
