package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"multiscalar/internal/grid"
	"multiscalar/internal/obs/span"
	"multiscalar/internal/sim"
)

// Wire types of the worker protocol. grid.Job marshals directly — both of
// its option structs are plain exported data.

// RegisterRequest announces a worker to the leader.
type RegisterRequest struct {
	// Hint is a free-form label the worker offers (host:pid); the leader
	// assigns the authoritative name.
	Hint string `json:"hint,omitempty"`
}

// RegisterResponse carries the worker's assigned identity and lease terms.
type RegisterResponse struct {
	Worker  string `json:"worker"`
	Home    int    `json:"home"`
	LeaseMS int64  `json:"lease_ms"`
}

// PullRequest asks for the next job.
type PullRequest struct {
	Worker string `json:"worker"`
}

// PullResponse is one of three answers: a job, "nothing right now", or
// "the run is over — exit". Trace, when present, is the dispatching
// request's span context: the worker parents its execution spans under it
// so one trace covers the job end to end.
type PullResponse struct {
	Key    string            `json:"key,omitempty"`
	Job    *grid.Job         `json:"job,omitempty"`
	Trace  *span.SpanContext `json:"trace,omitempty"`
	None   bool              `json:"none,omitempty"`
	Closed bool              `json:"closed,omitempty"`
}

// ReportRequest delivers one finished job, plus any trace spans the worker
// recorded while executing it (empty when either side is untraced).
type ReportRequest struct {
	Worker string          `json:"worker"`
	Key    string          `json:"key"`
	Result *sim.Result     `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	Spans  []span.SpanData `json:"spans,omitempty"`
}

// LeaderOptions configures a Leader.
type LeaderOptions struct {
	// Cache backs GET/PUT /v1/cache/{key} — normally the same (tiered)
	// cache the leader's engine uses, so worker publications land where
	// leader probes look. Nil disables the cache endpoints (404).
	Cache grid.Cache
	// PollWait bounds how long /v1/dist/pull holds an empty request open
	// waiting for work before answering "none" (0 = 500ms). Long-polling
	// keeps idle workers off the network without delaying fresh jobs.
	PollWait time.Duration
	// Logger receives protocol errors (nil = discard).
	Logger *log.Logger
	// Tracer, when non-nil, ingests worker-reported spans into their
	// originating traces and mounts GET /debug/traces, /debug/traces/{id},
	// and /debug/requests on the leader's handler.
	Tracer *span.Tracer
}

// Leader mounts a Scheduler and a shared cache on HTTP for remote workers:
// POST /v1/dist/register, /v1/dist/pull (long-poll), /v1/dist/report,
// GET/PUT /v1/cache/{key}, and GET /healthz reporting worker and queue
// state. Mount Handler on any listener; msreport does so on -workers.
type Leader struct {
	sched    *Scheduler
	cache    grid.Cache
	pollWait time.Duration
	log      *log.Logger
	tracer   *span.Tracer
	mux      *http.ServeMux
}

// NewLeader wires a leader around a scheduler.
func NewLeader(s *Scheduler, opts LeaderOptions) *Leader {
	if opts.PollWait <= 0 {
		opts.PollWait = 500 * time.Millisecond
	}
	if opts.Logger == nil {
		opts.Logger = log.New(io.Discard, "", 0)
	}
	l := &Leader{
		sched:    s,
		cache:    opts.Cache,
		pollWait: opts.PollWait,
		log:      opts.Logger,
		tracer:   opts.Tracer,
		mux:      http.NewServeMux(),
	}
	l.mux.HandleFunc("POST /v1/dist/register", l.handleRegister)
	l.mux.HandleFunc("POST /v1/dist/pull", l.handlePull)
	l.mux.HandleFunc("POST /v1/dist/report", l.handleReport)
	l.mux.HandleFunc("GET /v1/cache/{key}", l.handleCacheGet)
	l.mux.HandleFunc("PUT /v1/cache/{key}", l.handleCachePut)
	l.mux.HandleFunc("GET /healthz", l.handleHealthz)
	if l.tracer != nil {
		span.RegisterDebug(l.mux, l.tracer)
	}
	return l
}

// Handler returns the leader's HTTP surface.
func (l *Leader) Handler() http.Handler { return l.mux }

func (l *Leader) writeJSON(w http.ResponseWriter, status int, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		l.log.Printf("level=error msg=dist_encode err=%v", err)
		http.Error(w, "encode failure", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(blob, '\n'))
}

func decodeBody[T any](w http.ResponseWriter, r *http.Request) (v T, ok bool) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&v); err != nil {
		http.Error(w, "decode request: "+err.Error(), http.StatusBadRequest)
		return v, false
	}
	return v, true
}

func (l *Leader) handleRegister(w http.ResponseWriter, r *http.Request) {
	if _, ok := decodeBody[RegisterRequest](w, r); !ok {
		return
	}
	name, home, lease := l.sched.Register(true)
	l.log.Printf("level=info msg=dist_register worker=%s home=%d", name, home)
	l.writeJSON(w, http.StatusOK, RegisterResponse{
		Worker: name, Home: home, LeaseMS: lease.Milliseconds(),
	})
}

func (l *Leader) handlePull(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeBody[PullRequest](w, r)
	if !ok {
		return
	}
	if req.Worker == "" {
		http.Error(w, "missing worker name", http.StatusBadRequest)
		return
	}
	// Long-poll: retry the scheduler at a short cadence until work appears,
	// the run closes, the poll window expires, or the worker hangs up.
	deadline := time.NewTimer(l.pollWait)
	defer deadline.Stop()
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		key, job, sc, ok, closed := l.sched.Pull(req.Worker)
		switch {
		case closed:
			l.writeJSON(w, http.StatusOK, PullResponse{Closed: true})
			return
		case ok:
			resp := PullResponse{Key: key, Job: &job}
			if sc.Valid() {
				resp.Trace = &sc
			}
			l.writeJSON(w, http.StatusOK, resp)
			return
		}
		select {
		case <-tick.C:
		case <-deadline.C:
			l.writeJSON(w, http.StatusOK, PullResponse{None: true})
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (l *Leader) handleReport(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeBody[ReportRequest](w, r)
	if !ok {
		return
	}
	if req.Worker == "" || req.Key == "" {
		http.Error(w, "missing worker or key", http.StatusBadRequest)
		return
	}
	if req.Result == nil && req.Error == "" {
		http.Error(w, "report carries neither result nor error", http.StatusBadRequest)
		return
	}
	// Ingest spans BEFORE completing the job: Report unblocks the Dispatch
	// waiter, which ends the dispatch span and may finalize the whole trace
	// — the worker's spans must already be merged by then.
	l.tracer.Ingest(req.Spans)
	l.sched.Report(req.Worker, req.Key, req.Result, req.Error)
	w.WriteHeader(http.StatusNoContent)
}

func (l *Leader) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if err := grid.ValidateKey(key); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if l.cache == nil {
		http.Error(w, "no cache configured", http.StatusNotFound)
		return
	}
	res, ok := l.cache.Load(r.Context(), key, grid.Job{})
	if !ok {
		http.Error(w, "not cached", http.StatusNotFound)
		return
	}
	l.writeJSON(w, http.StatusOK, grid.Artifact{Schema: grid.SchemaVersion, Result: res})
}

func (l *Leader) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if err := grid.ValidateKey(key); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if l.cache == nil {
		http.Error(w, "no cache configured", http.StatusNotFound)
		return
	}
	a, ok := decodeBody[grid.Artifact](w, r)
	if !ok {
		return
	}
	if a.Schema != grid.SchemaVersion || a.Result == nil {
		http.Error(w, fmt.Sprintf("artifact schema %d (want %d) or missing result",
			a.Schema, grid.SchemaVersion), http.StatusBadRequest)
		return
	}
	job := grid.Job{Workload: a.Workload, Select: a.Select, Config: a.Config}
	l.cache.Store(r.Context(), key, job, a.Result)
	w.WriteHeader(http.StatusNoContent)
}

// LeaderHealth is the leader's GET /healthz body.
type LeaderHealth struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"` // remote workers currently registered
	Queued  int    `json:"queued"`
	Leased  int    `json:"leased"`
	Done    int64  `json:"done"`
}

func (l *Leader) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := l.sched.Stats()
	l.writeJSON(w, http.StatusOK, LeaderHealth{
		Status:  "ok",
		Workers: st.RemoteWorkers,
		Queued:  st.Queued,
		Leased:  st.Leased,
		Done:    st.Completed,
	})
}
