package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"multiscalar/internal/core"
	"multiscalar/internal/grid"
	"multiscalar/internal/sim"
)

// shardKey returns a valid key that hashes onto the given shard (the first
// 8 hex chars are the shard number, and shard < nShards <= 16^8).
func shardKey(shard, salt int) string {
	return fmt.Sprintf("%08x%08x%048x", shard, salt, 0)
}

func testJob(pus int) grid.Job {
	return grid.Job{Workload: "compress", Config: sim.DefaultConfig(pus)}
}

// dispatchAsync submits a job from a goroutine and returns a channel with
// the outcome.
func dispatchAsync(ctx context.Context, s *Scheduler, key string, job grid.Job) chan error {
	out := make(chan error, 1)
	go func() {
		_, err := s.Dispatch(ctx, key, job)
		out <- err
	}()
	return out
}

func TestDispatchPullReport(t *testing.T) {
	s := NewScheduler(SchedOptions{Shards: 4})
	worker, home, _ := s.Register(true)
	if worker != "w1" || home != 0 {
		t.Fatalf("Register = (%s, %d), want (w1, 0)", worker, home)
	}
	key := shardKey(0, 1)
	done := dispatchAsync(context.Background(), s, key, testJob(4))

	var gotKey string
	waitForCond(t, "job on the queue", func() bool {
		k, _, _, ok, _ := s.Pull(worker)
		gotKey = k
		return ok
	})
	if gotKey != key {
		t.Fatalf("pulled %s, want %s", gotKey, key)
	}
	s.Report(worker, key, testResult(1), "")
	if err := <-done; err != nil {
		t.Fatalf("Dispatch returned %v", err)
	}
	st := s.Stats()
	if st.Submitted != 1 || st.Completed != 1 || st.Queued != 0 || st.Leased != 0 {
		t.Fatalf("stats = %+v, want 1 submitted, 1 completed, nothing pending", st)
	}
}

// TestShardAffinityAndStealing: with two workers homed on shards 0 and 1, a
// job on each shard, each worker pulls its own shard's job first (no
// steal), and a third pull crossing shards counts as a steal.
func TestShardAffinityAndStealing(t *testing.T) {
	s := NewScheduler(SchedOptions{Shards: 4})
	w1, _, _ := s.Register(true) // home 0
	w2, _, _ := s.Register(true) // home 1

	ctx := context.Background()
	// Sequence the dispatches so shard 1's queue order (k1 before k1b) is
	// deterministic — concurrent dispatches may enqueue in either order.
	k0, k1, k1b := shardKey(0, 1), shardKey(1, 2), shardKey(1, 3)
	d0 := dispatchAsync(ctx, s, k0, testJob(4))
	d1 := dispatchAsync(ctx, s, k1, testJob(4))
	waitForCond(t, "2 queued", func() bool { return s.Stats().Queued == 2 })
	d1b := dispatchAsync(ctx, s, k1b, testJob(4))
	waitForCond(t, "3 queued", func() bool { return s.Stats().Queued == 3 })

	if k, _, _, ok, _ := s.Pull(w1); !ok || k != k0 {
		t.Fatalf("w1 pulled %q, want home-shard job %q", k, k0)
	}
	if k, _, _, ok, _ := s.Pull(w2); !ok || k != k1 {
		t.Fatalf("w2 pulled %q, want home-shard job %q", k, k1)
	}
	if st := s.Stats(); st.Steals != 0 {
		t.Fatalf("steals = %d after home pulls, want 0", st.Steals)
	}
	// w1's home shard is dry; the remaining job on w2's home shard must be
	// stolen rather than left waiting.
	if k, _, _, ok, _ := s.Pull(w1); !ok || k != k1b {
		t.Fatalf("w1 stole %q, want %q", k, k1b)
	}
	if st := s.Stats(); st.Steals != 1 {
		t.Fatalf("steals = %d, want 1", st.Steals)
	}
	for _, w := range []string{w1, w2} {
		for k := range map[string]bool{k0: true, k1: true, k1b: true} {
			s.Report(w, k, testResult(1), "")
		}
	}
	for _, d := range []chan error{d0, d1, d1b} {
		if err := <-d; err != nil {
			t.Fatalf("Dispatch: %v", err)
		}
	}
}

// TestLostWorkerReassignment is the acceptance-criteria property: a worker
// that pulls a job and disappears does not strand it — after the lease
// expires, another worker's pull reaps and re-pulls it, and the original
// Dispatch still completes. Run under -race.
func TestLostWorkerReassignment(t *testing.T) {
	s := NewScheduler(SchedOptions{Shards: 2, Lease: 30 * time.Millisecond})
	lost, _, _ := s.Register(true)
	alive, _, _ := s.Register(true)

	key := shardKey(0, 1)
	done := dispatchAsync(context.Background(), s, key, testJob(4))
	waitForCond(t, "job queued", func() bool { return s.Stats().Queued == 1 })

	if k, _, _, ok, _ := s.Pull(lost); !ok || k != key {
		t.Fatalf("lost worker pulled (%q, %v), want the job", k, ok)
	}
	// The lost worker never reports. The live worker polls until the lease
	// expires and the job is reassigned to it.
	var got string
	waitForCond(t, "reassignment", func() bool {
		k, _, _, ok, _ := s.Pull(alive)
		got = k
		return ok
	})
	if got != key {
		t.Fatalf("reassigned %q, want %q", got, key)
	}
	if st := s.Stats(); st.Reassigned != 1 {
		t.Fatalf("reassigned = %d, want 1", st.Reassigned)
	}
	s.Report(alive, key, testResult(2), "")
	if err := <-done; err != nil {
		t.Fatalf("Dispatch after reassignment: %v", err)
	}
	// A late report from the original worker must be a no-op.
	s.Report(lost, key, testResult(99), "")
	if st := s.Stats(); st.Completed != 1 {
		t.Fatalf("completed = %d after late duplicate report, want 1", st.Completed)
	}
}

// TestFirstReportWins: when a reassigned job races its original worker to
// completion, the first report's result is what Dispatch returns.
func TestFirstReportWins(t *testing.T) {
	s := NewScheduler(SchedOptions{Shards: 2})
	w, _, _ := s.Register(true)
	key := shardKey(0, 1)
	out := make(chan *sim.Result, 1)
	go func() {
		res, _ := s.Dispatch(context.Background(), key, testJob(4))
		out <- res
	}()
	waitForCond(t, "job queued", func() bool {
		k, _, _, ok, _ := s.Pull(w)
		return ok && k == key
	})
	s.Report(w, key, testResult(1), "")
	s.Report(w, key, testResult(2), "")
	if res := <-out; res.IPC != 1 {
		t.Fatalf("Dispatch got IPC %v, want the first report (1)", res.IPC)
	}
}

func TestReportErrorPropagates(t *testing.T) {
	s := NewScheduler(SchedOptions{Shards: 2})
	w, _, _ := s.Register(true)
	key := shardKey(0, 1)
	done := dispatchAsync(context.Background(), s, key, testJob(4))
	waitForCond(t, "job queued", func() bool {
		_, _, _, ok, _ := s.Pull(w)
		return ok
	})
	s.Report(w, key, nil, "workload exploded")
	err := <-done
	if err == nil || err.Error() != "workload exploded" {
		t.Fatalf("Dispatch error = %v, want the worker's message", err)
	}
	if errors.Is(err, grid.ErrDispatch) {
		t.Fatal("a real job failure must not look like dispatcher unavailability")
	}
}

// TestCloseFailsOpenToLocalCompute is the other acceptance-criteria
// property: an engine whose dispatcher has closed falls back to in-process
// simulation — ErrDispatch is a routing signal, not a failure. Run under
// -race.
func TestCloseFailsOpenToLocalCompute(t *testing.T) {
	restore := grid.SetSimForTesting(func(*core.Partition, sim.Config) (*sim.Result, error) {
		return testResult(5), nil
	})
	t.Cleanup(restore)

	s := NewScheduler(SchedOptions{})
	s.Close()
	if _, err := s.Dispatch(context.Background(), testKey(0), testJob(4)); !errors.Is(err, grid.ErrDispatch) {
		t.Fatalf("closed Dispatch error = %v, want grid.ErrDispatch", err)
	}

	eng := grid.New(grid.Options{Workers: 2, Dispatcher: s})
	res, err := eng.RunCtx(context.Background(), testJob(4))
	if err != nil || res.IPC != 5 {
		t.Fatalf("RunCtx = (%v, %v), want local compute despite closed dispatcher", res, err)
	}
	if st := eng.Stats(); st.Sims != 1 {
		t.Fatalf("sims = %d, want 1", st.Sims)
	}
}

// TestCloseUnblocksWaiters: pending Dispatches return ErrDispatch-wrapped
// errors on Close rather than hanging, and subsequent pulls say closed.
func TestCloseUnblocksWaiters(t *testing.T) {
	s := NewScheduler(SchedOptions{})
	w, _, _ := s.Register(true)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Dispatch(context.Background(), testKey(i), testJob(4))
		}(i)
	}
	waitForCond(t, "4 queued", func() bool { return s.Stats().Queued == 4 })
	s.Close()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, grid.ErrDispatch) {
			t.Errorf("waiter %d: err = %v, want grid.ErrDispatch", i, err)
		}
	}
	if _, _, _, _, closed := s.Pull(w); !closed {
		t.Error("post-Close pull did not say closed")
	}
	if s.RemoteWorkers() != 0 {
		t.Error("worker not deregistered after observing closed")
	}
}

// TestDispatchJoinsDuplicate: two Dispatches of the same key share one task
// and both complete on a single report.
func TestDispatchJoinsDuplicate(t *testing.T) {
	s := NewScheduler(SchedOptions{})
	w, _, _ := s.Register(true)
	key := shardKey(0, 1)
	d1 := dispatchAsync(context.Background(), s, key, testJob(4))
	d2 := dispatchAsync(context.Background(), s, key, testJob(4))
	waitForCond(t, "job queued", func() bool {
		_, _, _, ok, _ := s.Pull(w)
		return ok
	})
	if st := s.Stats(); st.Submitted != 1 {
		t.Fatalf("submitted = %d, want 1 (duplicate joined)", st.Submitted)
	}
	s.Report(w, key, testResult(1), "")
	if err1, err2 := <-d1, <-d2; err1 != nil || err2 != nil {
		t.Fatalf("joined dispatches = %v, %v", err1, err2)
	}
}

// TestRunLocalDrivesJobs: with no remote workers at all, RunLocal alone
// completes dispatched jobs.
func TestRunLocalDrivesJobs(t *testing.T) {
	s := NewScheduler(SchedOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var loopDone sync.WaitGroup
	loopDone.Add(1)
	go func() {
		defer loopDone.Done()
		s.RunLocal(ctx, 2, func(_ context.Context, job grid.Job) (*sim.Result, error) {
			return testResult(float64(job.Config.NumPUs)), nil
		})
	}()
	res, err := s.Dispatch(ctx, testKey(0), testJob(8))
	if err != nil || res.IPC != 8 {
		t.Fatalf("Dispatch via RunLocal = (%v, %v), want IPC 8", res, err)
	}
	s.Close()
	loopDone.Wait()
}

// waitForCond polls cond up to 2s.
func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
