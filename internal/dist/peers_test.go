package dist

import (
	"reflect"
	"testing"
)

func TestNormalizePeers(t *testing.T) {
	got, err := NormalizePeers("http://B:8080, a:9090,HTTP://b:8080,,https://c.example.com/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:9090", "http://b:8080", "https://c.example.com"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NormalizePeers = %v, want %v", got, want)
	}

	if got, err := NormalizePeers(""); err != nil || got != nil {
		t.Fatalf("empty list = (%v, %v), want (nil, nil)", got, err)
	}

	for _, bad := range []string{
		"ftp://a:1",
		"http://a:1/api",
		"http://a:1?x=1",
		"http://user@a:1",
		"http://",
	} {
		if _, err := NormalizePeers(bad); err == nil {
			t.Errorf("NormalizePeers(%q) accepted, want error", bad)
		}
	}

	// Order-independence: two replicas given the list in different orders
	// must end up hashing identical strings.
	a, _ := NormalizePeers("x:1,y:2,z:3")
	b, _ := NormalizePeers("z:3,x:1,y:2")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("order changed canonical form: %v vs %v", a, b)
	}
}
