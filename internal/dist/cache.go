package dist

import (
	"container/list"
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"

	"multiscalar/internal/grid"
	"multiscalar/internal/obs/span"
	"multiscalar/internal/sim"
)

// Tier is a grid.Cache with an identity and a reachability probe, so a
// tiered cache (and /healthz) can report per-tier status.
type Tier interface {
	grid.Cache
	// Name labels the tier in health reports and metrics ("lru", "disk",
	// "remote").
	Name() string
	// Ping reports whether the tier's backend is reachable right now. It
	// must be cheap: /healthz calls it on every scrape.
	Ping(ctx context.Context) error
}

// TierHealth is one tier's reachability snapshot.
type TierHealth struct {
	Tier string `json:"tier"`
	OK   bool   `json:"ok"`
	Err  string `json:"err,omitempty"`
}

// LRU is the in-memory tier: a bounded, mutex-guarded map with
// least-recently-used eviction. Results are stored by pointer and must be
// treated as read-only by callers — the same convention every engine memo
// already follows.
type LRU struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	res *sim.Result
}

// NewLRU returns an in-memory tier holding at most max results (max <= 0
// defaults to 1024).
func NewLRU(max int) *LRU {
	if max <= 0 {
		max = 1024
	}
	return &LRU{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Name implements Tier.
func (c *LRU) Name() string { return "lru" }

// Ping implements Tier: memory is always reachable.
func (c *LRU) Ping(context.Context) error { return nil }

// Load implements grid.Cache.
func (c *LRU) Load(_ context.Context, key string, _ grid.Job) (*sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// Store implements grid.Cache.
func (c *LRU) Store(_ context.Context, key string, _ grid.Job, res *sim.Result) {
	if res == nil {
		return
	}
	res = grid.StripTimeline(res)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// Len reports the resident entry count.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// DiskTier adapts grid.DiskCache to the Tier interface.
type DiskTier struct {
	*grid.DiskCache
}

// NewDiskTier returns the disk tier rooted at dir.
func NewDiskTier(dir string) DiskTier { return DiskTier{grid.NewDiskCache(dir)} }

// Name implements Tier.
func (t DiskTier) Name() string { return "disk" }

// Ping implements Tier: the directory must exist or be creatable.
func (t DiskTier) Ping(context.Context) error {
	if err := os.MkdirAll(t.Dir(), 0o755); err != nil {
		return fmt.Errorf("cache dir %s: %w", t.Dir(), err)
	}
	return nil
}

// Tiered is a grid.Cache over an ordered tier list, fastest first. Load
// probes in order and promotes a lower-tier hit into every tier above it
// (a disk hit becomes an LRU entry; a remote hit lands on local disk), so
// repeated reads settle into the fastest tier that fits. Store writes
// through every tier, which is how a worker publishes results to the fleet:
// its remote tier PUTs to the shared cache.
type Tiered struct {
	tiers []Tier
}

// NewTiered composes tiers fastest-first. At least one tier is required.
func NewTiered(tiers ...Tier) *Tiered {
	if len(tiers) == 0 {
		panic("dist: NewTiered needs at least one tier")
	}
	return &Tiered{tiers: tiers}
}

// Load implements grid.Cache with upward promotion.
func (t *Tiered) Load(ctx context.Context, key string, job grid.Job) (*sim.Result, bool) {
	for i, tier := range t.tiers {
		res, ok := probeTier(ctx, tier, key, job)
		if !ok {
			continue
		}
		for _, upper := range t.tiers[:i] {
			upper.Store(ctx, key, job, res)
		}
		return res, true
	}
	return nil, false
}

// probeTier wraps one tier probe in a cache.<tier> span carrying the hit
// outcome, so a trace shows which tier answered (and how long the remote
// round trip took). Free when the context is untraced.
func probeTier(ctx context.Context, tier Tier, key string, job grid.Job) (res *sim.Result, ok bool) {
	ctx, sp := span.Start(ctx, "cache."+tier.Name())
	defer func() {
		if sp != nil {
			sp.SetAttr("hit", strconv.FormatBool(ok))
		}
		sp.End(nil)
	}()
	return tier.Load(ctx, key, job)
}

// Store implements grid.Cache: write-through to every tier.
func (t *Tiered) Store(ctx context.Context, key string, job grid.Job, res *sim.Result) {
	ctx, sp := span.Start(ctx, "cache.publish")
	defer sp.End(nil)
	for _, tier := range t.tiers {
		tier.Store(ctx, key, job, res)
	}
}

// Health pings every tier in order.
func (t *Tiered) Health(ctx context.Context) []TierHealth {
	out := make([]TierHealth, len(t.tiers))
	for i, tier := range t.tiers {
		out[i] = TierHealth{Tier: tier.Name(), OK: true}
		if err := tier.Ping(ctx); err != nil {
			out[i].OK = false
			out[i].Err = err.Error()
		}
	}
	return out
}

// Tiers exposes the composed tier list (for stats reporting).
func (t *Tiered) Tiers() []Tier { return t.tiers }

// CacheConfig names the tier stack the CLIs build from flags: an in-memory
// LRU in front of a disk store in front of a remote peer, each optional.
type CacheConfig struct {
	// LRUSize is the memory tier's entry budget (0 = no memory tier).
	LRUSize int
	// Dir is the disk tier root ("" = no disk tier).
	Dir string
	// Remote is the remote peer's base URL ("" = no remote tier).
	Remote string
	// RemoteOptions tunes the remote tier (timeouts, retries, metrics).
	RemoteOptions RemoteOptions
}

// BuildCache composes the configured tiers fastest-first. The second return
// is the remote tier's handle for stats reporting (nil when Remote is
// empty); the Tiered is nil when no tier at all is configured.
func BuildCache(cfg CacheConfig) (*Tiered, *RemoteCache) {
	var tiers []Tier
	if cfg.LRUSize > 0 {
		tiers = append(tiers, NewLRU(cfg.LRUSize))
	}
	if cfg.Dir != "" {
		tiers = append(tiers, NewDiskTier(cfg.Dir))
	}
	var remote *RemoteCache
	if cfg.Remote != "" {
		remote = NewRemoteCache(cfg.Remote, cfg.RemoteOptions)
		tiers = append(tiers, remote)
	}
	if len(tiers) == 0 {
		return nil, nil
	}
	return NewTiered(tiers...), remote
}
