package dist

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// NormalizePeers canonicalizes a replica peer list for consistent-hash
// routing: every replica must hash the exact same strings or their rings
// disagree and a key has two owners. Each entry becomes scheme://host[:port]
// — lowercased, default scheme http, trailing slashes and paths rejected
// rather than silently dropped — then the list is deduplicated and sorted.
//
// The flag surface accepts a comma-separated list, so empty segments (a
// trailing comma) are skipped.
func NormalizePeers(raw string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := normalizePeer(part)
		if err != nil {
			return nil, err
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// normalizePeer canonicalizes one peer base URL.
func normalizePeer(raw string) (string, error) {
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("dist: peer %q: %w", raw, err)
	}
	switch u.Scheme {
	case "http", "https":
	default:
		return "", fmt.Errorf("dist: peer %q: scheme must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("dist: peer %q: missing host", raw)
	}
	if u.Path != "" && u.Path != "/" {
		return "", fmt.Errorf("dist: peer %q: base URL must not carry a path", raw)
	}
	if u.RawQuery != "" || u.Fragment != "" || u.User != nil {
		return "", fmt.Errorf("dist: peer %q: base URL must not carry query, fragment, or userinfo", raw)
	}
	return strings.ToLower(u.Scheme) + "://" + strings.ToLower(u.Host), nil
}
