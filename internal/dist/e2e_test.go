package dist

import (
	"context"
	"io"
	"log"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"multiscalar/internal/core"
	"multiscalar/internal/grid"
	"multiscalar/internal/sim"
)

// TestDistributedEndToEnd drives the whole stack in-process: a leader
// (scheduler + HTTP surface + local loop) and two HTTP workers whose cache
// tiers point back at the leader, running a small job grid. The distributed
// results must equal a serial engine's results index for index, and the
// remote workers must have actually participated.
func TestDistributedEndToEnd(t *testing.T) {
	// A deterministic fake sim, slow enough that the local loop cannot
	// drain the queue before the workers pull their share.
	restore := grid.SetSimForTesting(func(part *core.Partition, cfg sim.Config) (*sim.Result, error) {
		time.Sleep(5 * time.Millisecond)
		return &sim.Result{
			IPC:    float64(cfg.NumPUs) + float64(len(part.Tasks))/1000,
			Cycles: int64(cfg.NumPUs * 100),
			Instrs: uint64(len(part.Tasks)),
		}, nil
	})
	t.Cleanup(restore)

	var jobs []grid.Job
	for _, wl := range []string{"compress", "go", "tomcatv"} {
		for _, pus := range []int{2, 4, 6, 8} {
			for _, h := range []core.Heuristic{core.BasicBlock, core.ControlFlow} {
				jobs = append(jobs, grid.Job{
					Workload: wl,
					Select:   core.Options{Heuristic: h},
					Config:   sim.DefaultConfig(pus),
				})
			}
		}
	}

	// Serial reference.
	serial := make([]*sim.Result, len(jobs))
	serialEng := grid.New(grid.Options{Workers: 2})
	if err := grid.RunAll(context.Background(), len(jobs), func(i int) error {
		res, err := serialEng.RunCtx(context.Background(), jobs[i])
		serial[i] = res
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Distributed: leader engine + scheduler + HTTP surface.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sched := NewScheduler(SchedOptions{})
	cache := NewTiered(NewLRU(256))
	leader := NewLeader(sched, LeaderOptions{Cache: cache, PollWait: 50 * time.Millisecond})
	ts := httptest.NewServer(leader.Handler())
	defer ts.Close()

	eng := grid.New(grid.Options{Workers: 2, Cache: cache, Dispatcher: sched})
	var localDone sync.WaitGroup
	localDone.Add(1)
	go func() {
		defer localDone.Done()
		sched.RunLocal(ctx, 1, eng.ComputeCtx)
	}()

	workerErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		weng := grid.New(grid.Options{
			Workers: 2,
			Cache:   NewTiered(NewLRU(256), NewRemoteCache(ts.URL, RemoteOptions{Backoff: time.Millisecond})),
		})
		w, err := NewWorker(WorkerOptions{
			Leader:       ts.URL,
			Engine:       weng,
			Concurrency:  2,
			PollInterval: 5 * time.Millisecond,
			Logger:       log.New(io.Discard, "", 0),
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { workerErrs <- w.Run(ctx) }()
	}

	got := make([]*sim.Result, len(jobs))
	if err := grid.RunAll(ctx, len(jobs), func(i int) error {
		res, err := eng.RunCtx(ctx, jobs[i])
		got[i] = res
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Determinism: indexed collection makes distributed output identical to
	// serial regardless of which process executed each job.
	for i := range jobs {
		if got[i] == nil {
			t.Fatalf("job %d: nil result", i)
		}
		if got[i].IPC != serial[i].IPC || got[i].Cycles != serial[i].Cycles || got[i].Instrs != serial[i].Instrs {
			t.Errorf("job %d: distributed %+v != serial %+v", i, got[i], serial[i])
		}
	}

	perWorker := sched.WorkerJobs()
	sched.Close()
	localDone.Wait()
	for i := 0; i < 2; i++ {
		if err := <-workerErrs; err != nil {
			t.Errorf("worker %d exited with %v, want clean close", i, err)
		}
	}

	remoteJobs := int64(0)
	for name, n := range perWorker {
		if name != "local" {
			remoteJobs += n
		}
	}
	if remoteJobs == 0 {
		t.Error("remote workers executed 0 jobs; the fleet did not participate")
	}
	t.Logf("job split: %v", perWorker)

	st := sched.Stats()
	if st.Completed != st.Submitted {
		t.Errorf("completed %d != submitted %d", st.Completed, st.Submitted)
	}
}
