package dist

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"multiscalar/internal/grid"
	"multiscalar/internal/obs"
	"multiscalar/internal/obs/span"
	"multiscalar/internal/sim"
)

// SchedOptions configures a Scheduler; the zero value is usable.
type SchedOptions struct {
	// Shards is the number of keyspace partitions (0 = 16). Jobs hash to a
	// shard by cache key; workers are assigned home shards round-robin and
	// steal from the longest other queue when theirs is empty.
	Shards int
	// Lease bounds how long a pulled job may go unreported before it is
	// reassigned to another worker (0 = 2 minutes). Duplicate execution
	// after a false-positive reap is harmless — the simulator is
	// deterministic and the first report wins.
	Lease time.Duration
	// Metrics, when non-nil, receives dist_* scheduler counters plus one
	// jobs counter per registered worker.
	Metrics *obs.Registry
	// Tracer, when non-nil, stitches the local loop's executions into the
	// dispatching request's trace as worker.exec spans (remote workers carry
	// their own tracer; see WorkerOptions.Tracer). Dispatch itself is traced
	// off the caller's context and needs no tracer here.
	Tracer *span.Tracer
}

// SchedStats snapshots scheduler counters.
type SchedStats struct {
	// Workers and RemoteWorkers count live registered workers (Workers
	// includes the leader's local loop).
	Workers, RemoteWorkers int
	// Queued and Leased are current queue depths; Submitted and Completed
	// are lifetime totals.
	Queued, Leased       int
	Submitted, Completed int64
	// Steals counts pulls served from another live worker's home shard;
	// Reassigned counts jobs requeued after their lease expired.
	Steals, Reassigned int64
}

type taskState int

const (
	taskQueued taskState = iota
	taskLeased
	taskDone
)

// task is one scheduled job.
type task struct {
	key   string
	job   grid.Job
	shard int
	state taskState

	worker string    // current lessee when leased
	lease  time.Time // reassignment deadline when leased

	// sp is the dispatching caller's dist.dispatch span (nil untraced); sc
	// is its portable context, handed to whichever worker pulls the job so
	// the worker's spans stitch into the same trace.
	sp *span.Span
	sc span.SpanContext

	done chan struct{} // closed on completion
	res  *sim.Result
	err  error
}

// workerInfo tracks one registered worker's health and leases.
type workerInfo struct {
	name     string
	remote   bool
	home     int
	lastSeen time.Time
	leased   map[string]*task
	jobs     *obs.Counter // nil without metrics
	nJobs    int64
}

type schedMetrics struct {
	submitted, completed, steals, reassigned *obs.Counter
	workers, queued                          *obs.Gauge
}

// Scheduler is the leader-side work-stealing shard scheduler. It implements
// grid.Dispatcher: the leader's engine submits every cache-missing
// simulation job, workers pull and report over the Leader's HTTP surface
// (or in-process via RunLocal), and Dispatch callers block until the job's
// first report. All state lives behind one mutex; waiting happens on
// per-task channels, so the lock is never held across a job execution.
type Scheduler struct {
	nShards int
	lease   time.Duration

	mu        sync.Mutex
	shards    [][]*task // queued tasks per shard, FIFO
	tasks     map[string]*task
	workers   map[string]*workerInfo
	seq       int
	closed    bool
	submitted int64
	completed int64
	steals    int64
	reassigns int64

	reg    *obs.Registry
	m      *schedMetrics
	tracer *span.Tracer
}

// NewScheduler returns an empty scheduler.
func NewScheduler(opts SchedOptions) *Scheduler {
	if opts.Shards <= 0 {
		opts.Shards = 16
	}
	if opts.Lease <= 0 {
		opts.Lease = 2 * time.Minute
	}
	s := &Scheduler{
		nShards: opts.Shards,
		lease:   opts.Lease,
		shards:  make([][]*task, opts.Shards),
		tasks:   make(map[string]*task),
		workers: make(map[string]*workerInfo),
		reg:     opts.Metrics,
		tracer:  opts.Tracer,
	}
	if r := opts.Metrics; r != nil {
		s.m = &schedMetrics{
			submitted:  r.Counter("dist_submitted_total", "jobs", "jobs submitted to the shard scheduler"),
			completed:  r.Counter("dist_completed_total", "jobs", "jobs completed by any worker"),
			steals:     r.Counter("dist_steals_total", "pulls", "pulls served from another live worker's home shard"),
			reassigned: r.Counter("dist_reassigned_total", "jobs", "jobs requeued after a lease expired"),
			workers:    r.Gauge("dist_workers", "workers", "live registered workers (incl. the local loop)"),
			queued:     r.Gauge("dist_queued", "jobs", "jobs waiting for a worker"),
		}
	}
	return s
}

// shardOf maps a cache key (hex) onto a shard. Non-hex keys (tests) fold
// bytes instead, so every key lands somewhere deterministic.
func (s *Scheduler) shardOf(key string) int {
	if len(key) >= 8 {
		if v, err := strconv.ParseUint(key[:8], 16, 64); err == nil {
			return int(v % uint64(s.nShards))
		}
	}
	sum := 0
	for i := 0; i < len(key); i++ {
		sum = sum*31 + int(key[i])
	}
	if sum < 0 {
		sum = -sum
	}
	return sum % s.nShards
}

// Dispatch implements grid.Dispatcher: enqueue the job on its shard (or
// join an already-scheduled copy) and wait for the first report. A closed
// scheduler answers with an error wrapping grid.ErrDispatch, which sends
// the engine back to in-process compute.
func (s *Scheduler) Dispatch(ctx context.Context, key string, job grid.Job) (res *sim.Result, err error) {
	ctx, sp := span.Start(ctx, "dist.dispatch")
	defer func() { sp.End(err) }()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: scheduler closed", grid.ErrDispatch)
	}
	t, ok := s.tasks[key]
	if !ok {
		t = &task{key: key, job: job, shard: s.shardOf(key), done: make(chan struct{})}
		if sp != nil {
			// The first dispatcher's span parents the worker's spans; a
			// joining duplicate still records its own wait below.
			t.sp = sp
			t.sc = sp.Context()
			sp.SetAttr("shard", strconv.Itoa(t.shard))
		}
		s.tasks[key] = t
		s.shards[t.shard] = append(s.shards[t.shard], t)
		s.submitted++
		if s.m != nil {
			s.m.submitted.Inc()
		}
		s.gaugeQueuedLocked()
	}
	s.mu.Unlock()

	select {
	case <-t.done:
		return t.res, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Register adds a worker and returns its assigned name, home shard, and the
// lease the leader will hold it to.
func (s *Scheduler) Register(remote bool) (name string, home int, lease time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	name = "w" + strconv.Itoa(s.seq)
	if !remote {
		name = "local"
	}
	w := &workerInfo{
		name:     name,
		remote:   remote,
		home:     (s.seq - 1) % s.nShards,
		lastSeen: time.Now(),
		leased:   make(map[string]*task),
	}
	if s.reg != nil {
		w.jobs = s.reg.Counter("dist_worker_"+name+"_jobs_total", "jobs",
			"jobs completed by worker "+name)
	}
	s.workers[name] = w
	if s.m != nil {
		s.m.workers.Set(int64(len(s.workers)))
	}
	return name, w.home, s.lease
}

// Pull hands worker its next job: the head of its home shard, else the tail
// of the longest other queue (a steal, when that queue belongs to a live
// worker). The returned span context (zero when the dispatcher was
// untraced) lets the worker stitch its execution spans into the
// dispatcher's trace. ok=false means no work right now; closed=true tells
// the worker the run is over.
func (s *Scheduler) Pull(worker string) (key string, job grid.Job, sc span.SpanContext, ok, closed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// The worker will exit on seeing closed; deregister it now so the
		// leader can watch RemoteWorkers() drain to zero before tearing down
		// its listener.
		if _, ok := s.workers[worker]; ok {
			delete(s.workers, worker)
			if s.m != nil {
				s.m.workers.Set(int64(len(s.workers)))
			}
		}
		return "", grid.Job{}, span.SpanContext{}, false, true
	}
	now := time.Now()
	s.reapLocked(now)
	w := s.workers[worker]
	if w == nil {
		// Reaped as dead (or never registered): re-admit so a slow-but-alive
		// worker keeps working after a false-positive reap.
		w = &workerInfo{name: worker, remote: worker != "local",
			home: 0, lastSeen: now, leased: make(map[string]*task)}
		s.workers[worker] = w
		if s.m != nil {
			s.m.workers.Set(int64(len(s.workers)))
		}
	}
	w.lastSeen = now

	t := s.popLocked(w.home, false)
	if t == nil {
		// Steal: longest queue wins, taken from the tail — the cold end,
		// farthest from where its owner is working.
		best, bestLen := -1, 0
		for i, q := range s.shards {
			if len(q) > bestLen {
				best, bestLen = i, len(q)
			}
		}
		if best < 0 {
			return "", grid.Job{}, span.SpanContext{}, false, false
		}
		if t = s.popLocked(best, true); t == nil {
			return "", grid.Job{}, span.SpanContext{}, false, false
		}
		for _, other := range s.workers {
			if other.name != worker && other.home == best {
				s.steals++
				if s.m != nil {
					s.m.steals.Inc()
				}
				t.sp.Event("dist.steal", "worker", worker, "shard", strconv.Itoa(best))
				break
			}
		}
	}
	t.state = taskLeased
	t.worker = worker
	t.lease = now.Add(s.lease)
	w.leased[t.key] = t
	s.gaugeQueuedLocked()
	return t.key, t.job, t.sc, true, false
}

// popLocked removes the next still-queued task from one shard, discarding
// entries a racing report already completed (a reassigned job can finish
// under its original worker while its requeued copy waits in line).
func (s *Scheduler) popLocked(shard int, fromTail bool) *task {
	q := s.shards[shard]
	for len(q) > 0 {
		var t *task
		if fromTail {
			t = q[len(q)-1]
			q = q[:len(q)-1]
		} else {
			t = q[0]
			q = q[1:]
		}
		if t.state == taskQueued {
			s.shards[shard] = q
			return t
		}
	}
	s.shards[shard] = q
	return nil
}

// gaugeQueuedLocked re-derives the queued gauge from the shard queues, so
// discarded duplicates can never make it drift.
func (s *Scheduler) gaugeQueuedLocked() {
	if s.m == nil {
		return
	}
	n := 0
	for _, q := range s.shards {
		for _, t := range q {
			if t.state == taskQueued {
				n++
			}
		}
	}
	s.m.queued.Set(int64(n))
}

// Report completes a job. Late reports — after a reassignment raced the
// original worker to completion — are dropped: the first report wins, and
// the simulator's determinism makes the duplicates identical anyway.
func (s *Scheduler) Report(worker, key string, res *sim.Result, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w := s.workers[worker]; w != nil {
		w.lastSeen = time.Now()
		delete(w.leased, key)
	}
	t := s.tasks[key]
	if t == nil || t.state == taskDone {
		return
	}
	t.state = taskDone
	t.sp.SetAttr("worker", worker)
	t.res = res
	if errMsg != "" {
		t.err = errors.New(errMsg)
	} else if res == nil {
		t.err = errors.New("dist: worker reported neither result nor error")
	}
	s.completed++
	if s.m != nil {
		s.m.completed.Inc()
	}
	if w := s.workers[worker]; w != nil {
		w.nJobs++
		if w.jobs != nil {
			w.jobs.Inc()
		}
	}
	close(t.done)
}

// reapLocked requeues expired leases and forgets workers that have gone
// silent. Called with s.mu held from Pull, so any live puller keeps the
// whole fleet honest without a background goroutine.
func (s *Scheduler) reapLocked(now time.Time) {
	for name, w := range s.workers {
		for key, t := range w.leased {
			if t.state == taskLeased && now.After(t.lease) {
				t.state = taskQueued
				t.worker = ""
				s.shards[t.shard] = append([]*task{t}, s.shards[t.shard]...)
				s.reassigns++
				if s.m != nil {
					s.m.reassigned.Inc()
				}
				t.sp.Event("dist.lease-reassign", "worker", name)
				delete(w.leased, key)
			}
		}
		if len(w.leased) == 0 && now.Sub(w.lastSeen) > 3*s.lease {
			delete(s.workers, name)
			if s.m != nil {
				s.m.workers.Set(int64(len(s.workers)))
			}
		}
	}
}

// Close ends the run: queued and in-flight submissions unblock with an
// error wrapping grid.ErrDispatch (their engines compute locally), and
// every subsequent Pull tells its worker to exit.
func (s *Scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, t := range s.tasks {
		if t.state != taskDone {
			t.state = taskDone
			t.err = fmt.Errorf("%w: scheduler closed", grid.ErrDispatch)
			close(t.done)
		}
	}
	for i := range s.shards {
		s.shards[i] = nil
	}
	if s.m != nil {
		s.m.queued.Set(0)
	}
}

// Stats snapshots the scheduler.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SchedStats{
		Submitted: s.submitted, Completed: s.completed,
		Steals: s.steals, Reassigned: s.reassigns,
	}
	for _, q := range s.shards {
		for _, t := range q {
			if t.state == taskQueued {
				st.Queued++
			}
		}
	}
	for _, w := range s.workers {
		st.Workers++
		if w.remote {
			st.RemoteWorkers++
		}
		st.Leased += len(w.leased)
	}
	return st
}

// RemoteWorkers reports the live remote worker count (for /healthz).
func (s *Scheduler) RemoteWorkers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, w := range s.workers {
		if w.remote {
			n++
		}
	}
	return n
}

// WorkerJobs reports per-worker completed-job counts (for the end-of-run
// summary), keyed by worker name.
func (s *Scheduler) WorkerJobs() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.workers))
	for name, w := range s.workers {
		out[name] = w.nJobs
	}
	return out
}

// RunLocal is the leader's own worker presence: it registers once as
// "local" and runs n concurrent pull-execute loops (n <= 0 means one), so
// the leader contributes its full worker pool to the fleet. compute is
// normally the leader engine's ComputeCtx, which resolves the partition
// dependency through the engine's shared single-flight but bypasses the
// sim-level memo (RunCtx already holds this job's single-flight leadership,
// so re-entering it would deadlock). RunLocal returns when ctx ends or the
// scheduler closes, and guarantees progress even with zero remote workers.
func (s *Scheduler) RunLocal(ctx context.Context, n int, compute func(context.Context, grid.Job) (*sim.Result, error)) {
	if n <= 0 {
		n = 1
	}
	worker, _, _ := s.Register(false)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.localLoop(ctx, worker, compute)
		}()
	}
	wg.Wait()
}

func (s *Scheduler) localLoop(ctx context.Context, worker string, compute func(context.Context, grid.Job) (*sim.Result, error)) {
	idle := time.NewTimer(0)
	if !idle.Stop() {
		<-idle.C
	}
	defer idle.Stop()
	for ctx.Err() == nil {
		key, job, sc, ok, closed := s.Pull(worker)
		if closed {
			return
		}
		if !ok {
			idle.Reset(5 * time.Millisecond)
			select {
			case <-idle.C:
			case <-ctx.Done():
				return
			}
			continue
		}
		res, err := s.localCompute(ctx, sc, job, compute)
		if err != nil && ctx.Err() != nil {
			// The run is being canceled; don't report the cancellation as a
			// job failure — Close will unwind every waiter.
			return
		}
		errMsg := ""
		if err != nil {
			errMsg = err.Error()
		}
		s.Report(worker, key, res, errMsg)
	}
}

// localCompute runs one pulled job. When the scheduler has a tracer and the
// job carries a span context, the execution records as a worker.exec span in
// the dispatching request's trace — the local loop is a fleet member like
// any remote worker, and its share of the work should be just as visible.
func (s *Scheduler) localCompute(ctx context.Context, sc span.SpanContext, job grid.Job,
	compute func(context.Context, grid.Job) (*sim.Result, error)) (res *sim.Result, err error) {
	ctx, sp := s.tracer.StartRemote(ctx, sc, "worker.exec")
	if sp != nil {
		sp.SetAttr("worker", "local")
	}
	defer func() { sp.End(err) }()
	return compute(ctx, job)
}
