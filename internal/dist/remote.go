package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"multiscalar/internal/grid"
	"multiscalar/internal/obs"
	"multiscalar/internal/sim"
)

// RemoteOptions configures a RemoteCache; the zero value gives sane
// defaults for a LAN peer.
type RemoteOptions struct {
	// Client issues the requests (nil = a private client; per-attempt
	// deadlines come from Timeout either way).
	Client *http.Client
	// Timeout bounds each attempt (0 = 5s).
	Timeout time.Duration
	// Retries is how many times a transport-level failure is retried
	// (negative = 0; default 2). Definitive answers — a hit, a 404 miss, a
	// corrupt artifact — are never retried.
	Retries int
	// Backoff is the first retry delay, doubling per attempt (0 = 50ms).
	Backoff time.Duration
	// Metrics, when non-nil, receives dist_remote_* counters and the RTT
	// histogram.
	Metrics *obs.Registry
	// Logger receives one warning per abandoned request — the fail-open
	// path — naming the key, attempt count, and last error, so silent
	// degradation to local compute is diagnosable (nil = discard).
	Logger *log.Logger
}

// RemoteStats snapshots a remote tier's counters.
type RemoteStats struct {
	// Hits and Misses count Load probes by outcome (a corrupt or
	// stale-schema artifact counts as a miss).
	Hits, Misses int64
	// Errors counts probes and puts abandoned after exhausting retries.
	Errors int64
	// Puts counts successful publications.
	Puts int64
}

// RemoteCache is the network tier: a grid.Cache over GET/PUT /v1/cache/{key}
// against an mssrv peer or a dist leader. It is strictly fail-open — every
// failure mode (timeout, refused connection, 5xx, corrupt body, stale
// schema) degrades to a cache miss and the caller computes locally — and
// bounded: each attempt carries its own deadline and transport failures
// retry at most Retries times with doubling backoff.
type RemoteCache struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	retries int
	backoff time.Duration
	log     *log.Logger

	hits, misses, errs, puts atomic.Int64
	m                        *remoteMetrics
}

type remoteMetrics struct {
	hits, misses, errs, puts *obs.Counter
	rtt                      *obs.Histogram
}

// NewRemoteCache returns a remote tier for the peer at base (scheme://host:port,
// no trailing slash needed); keys live under base/v1/cache/.
func NewRemoteCache(base string, opts RemoteOptions) *RemoteCache {
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.Logger == nil {
		opts.Logger = log.New(io.Discard, "", 0)
	}
	c := &RemoteCache{
		base:    trimSlash(base),
		hc:      opts.Client,
		timeout: opts.Timeout,
		retries: opts.Retries,
		backoff: opts.Backoff,
		log:     opts.Logger,
	}
	if r := opts.Metrics; r != nil {
		c.m = &remoteMetrics{
			hits:   r.Counter("dist_remote_hits_total", "probes", "remote cache probes that hit"),
			misses: r.Counter("dist_remote_misses_total", "probes", "remote cache probes that missed"),
			errs:   r.Counter("dist_remote_errors_total", "requests", "remote cache requests abandoned after retries"),
			puts:   r.Counter("dist_remote_puts_total", "artifacts", "results published to the remote cache"),
			rtt: r.Histogram("dist_remote_rtt_us", "us",
				"round-trip time of one remote cache request", obs.ExpBuckets(10, 4, 12)),
		}
	}
	return c
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// Name implements Tier.
func (c *RemoteCache) Name() string { return "remote" }

// Stats snapshots the tier's counters.
func (c *RemoteCache) Stats() RemoteStats {
	return RemoteStats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Errors: c.errs.Load(), Puts: c.puts.Load(),
	}
}

// Ping implements Tier: the peer is reachable if GET /healthz returns any
// HTTP response at all (a draining peer answers 503 but can still serve its
// cache).
func (c *RemoteCache) Ping(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("remote cache %s: %w", c.base, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}

// Load implements grid.Cache: GET the artifact, validate its schema, fail
// open to a miss on any error.
func (c *RemoteCache) Load(ctx context.Context, key string, _ grid.Job) (*sim.Result, bool) {
	var res *sim.Result
	var lastErr error
	ok := c.retry(ctx, func(actx context.Context) (done bool) {
		req, err := http.NewRequestWithContext(actx, http.MethodGet, c.keyURL(key), nil)
		if err != nil {
			return true // malformed request: no retry will fix it
		}
		resp, err := c.do(req)
		if err != nil {
			lastErr = err
			return false
		}
		defer func() {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		switch {
		case resp.StatusCode == http.StatusOK:
			var a grid.Artifact
			// A corrupt or stale artifact is definitive: the peer has
			// nothing we can use, so it is a miss, not a retryable error.
			if err := json.NewDecoder(resp.Body).Decode(&a); err == nil &&
				a.Schema == grid.SchemaVersion && a.Result != nil {
				res = a.Result
			}
			return true
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("remote cache: %s", resp.Status)
			return false // transient server trouble: retry
		default:
			return true // 404 and friends: definitive miss
		}
	})
	if !ok {
		c.errs.Add(1)
		if c.m != nil {
			c.m.errs.Inc()
		}
		c.log.Printf("level=warn msg=remote_cache_failopen op=load key=%s attempts=%d err=%v",
			key, c.retries+1, lastErr)
	}
	if res == nil {
		c.misses.Add(1)
		if c.m != nil {
			c.m.misses.Inc()
		}
		return nil, false
	}
	c.hits.Add(1)
	if c.m != nil {
		c.m.hits.Inc()
	}
	return res, true
}

// Store implements grid.Cache: best-effort PUT of the full artifact. The
// publication rides a context detached from the caller's cancellation (but
// still deadline-bounded per attempt): a result computed just before the
// leader canceled is still worth sharing with the fleet.
func (c *RemoteCache) Store(ctx context.Context, key string, job grid.Job, res *sim.Result) {
	blob, err := json.Marshal(grid.Artifact{
		Schema:   grid.SchemaVersion,
		Workload: job.Workload,
		Select:   job.Select,
		Config:   job.Config,
		Result:   grid.StripTimeline(res),
	})
	if err != nil {
		return
	}
	var lastErr error
	ok := c.retry(context.WithoutCancel(ctx), func(actx context.Context) (done bool) {
		req, err := http.NewRequestWithContext(actx, http.MethodPut, c.keyURL(key), bytes.NewReader(blob))
		if err != nil {
			return true
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.do(req)
		if err != nil {
			lastErr = err
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			lastErr = fmt.Errorf("remote cache: %s", resp.Status)
			return false
		}
		if resp.StatusCode < 300 {
			c.puts.Add(1)
			if c.m != nil {
				c.m.puts.Inc()
			}
		}
		return true
	})
	if !ok {
		c.errs.Add(1)
		if c.m != nil {
			c.m.errs.Inc()
		}
		c.log.Printf("level=warn msg=remote_cache_failopen op=put key=%s attempts=%d err=%v",
			key, c.retries+1, lastErr)
	}
}

func (c *RemoteCache) keyURL(key string) string {
	return c.base + "/v1/cache/" + key
}

// do issues one attempt, observing RTT when metrics are attached.
func (c *RemoteCache) do(req *http.Request) (*http.Response, error) {
	if c.m == nil {
		return c.hc.Do(req)
	}
	t0 := time.Now()
	resp, err := c.hc.Do(req)
	c.m.rtt.Observe(time.Since(t0).Microseconds())
	return resp, err
}

// retry runs attempt with a per-attempt deadline until it reports done,
// retries are exhausted, or ctx ends. It reports whether the sequence
// reached a definitive answer (false = abandoned on transport errors).
func (c *RemoteCache) retry(ctx context.Context, attempt func(context.Context) bool) bool {
	delay := c.backoff
	for try := 0; ; try++ {
		actx, cancel := context.WithTimeout(ctx, c.timeout)
		done := attempt(actx)
		cancel()
		if done {
			return true
		}
		if try >= c.retries || ctx.Err() != nil {
			return false
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return false
		}
		delay *= 2
	}
}
