package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"multiscalar/internal/core"
	"multiscalar/internal/grid"
	"multiscalar/internal/sim"
)

// artifactServer serves one artifact under /v1/cache/{key}, counting GETs
// and recording PUTs.
type artifactServer struct {
	ts   *httptest.Server
	gets atomic.Int64
	puts atomic.Int64

	// respond lets tests override the GET behavior (nil = serve artifacts).
	respond func(w http.ResponseWriter, key string)
	stored  map[string][]byte
}

func newArtifactServer(t *testing.T) *artifactServer {
	t.Helper()
	s := &artifactServer{stored: make(map[string][]byte)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		s.gets.Add(1)
		key := r.PathValue("key")
		if s.respond != nil {
			s.respond(w, key)
			return
		}
		blob, ok := s.stored[key]
		if !ok {
			http.Error(w, "not cached", http.StatusNotFound)
			return
		}
		w.Write(blob)
	})
	mux.HandleFunc("PUT /v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		s.puts.Add(1)
		var a grid.Artifact
		if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		enc, _ := json.Marshal(a)
		s.stored[r.PathValue("key")] = enc
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
	s.ts = httptest.NewServer(mux)
	t.Cleanup(s.ts.Close)
	return s
}

func (s *artifactServer) put(key string, a grid.Artifact) {
	blob, err := json.Marshal(a)
	if err != nil {
		panic(err)
	}
	s.stored[key] = blob
}

func fastRemote(base string) *RemoteCache {
	return NewRemoteCache(base, RemoteOptions{
		Timeout: 2 * time.Second,
		Backoff: time.Millisecond,
	})
}

func TestRemoteHitMissPut(t *testing.T) {
	ctx := context.Background()
	srv := newArtifactServer(t)
	rc := fastRemote(srv.ts.URL)

	key := testKey(0)
	srv.put(key, grid.Artifact{Schema: grid.SchemaVersion, Result: testResult(2)})
	res, ok := rc.Load(ctx, key, grid.Job{})
	if !ok || res.IPC != 2 {
		t.Fatalf("Load = (%v, %v), want hit with IPC 2", res, ok)
	}
	if _, ok := rc.Load(ctx, testKey(1), grid.Job{}); ok {
		t.Fatal("absent key reported a hit")
	}

	job := grid.Job{Workload: "compress", Select: core.Options{}, Config: sim.DefaultConfig(4)}
	rc.Store(ctx, testKey(2), job, testResult(3))
	if res, ok := rc.Load(ctx, testKey(2), grid.Job{}); !ok || res.IPC != 3 {
		t.Fatalf("round-trip Load = (%v, %v), want IPC 3", res, ok)
	}
	st := rc.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss / 1 put / 0 errors", st)
	}
}

// TestRemoteCorruptionIsMiss mirrors the disk-cache corruption tests: a
// body that is not JSON, an artifact from an older schema, and an artifact
// with no result are all definitive misses — never errors, never retried.
func TestRemoteCorruptionIsMiss(t *testing.T) {
	ctx := context.Background()
	srv := newArtifactServer(t)
	rc := fastRemote(srv.ts.URL)

	cases := map[string][]byte{
		"garbage":      []byte("{not json"),
		"stale-schema": mustJSON(t, grid.Artifact{Schema: grid.SchemaVersion - 1, Result: testResult(1)}),
		"no-result":    mustJSON(t, grid.Artifact{Schema: grid.SchemaVersion}),
	}
	i := 0
	for name, blob := range cases {
		key := testKey(100 + i)
		i++
		srv.stored[key] = blob
		before := srv.gets.Load()
		if _, ok := rc.Load(ctx, key, grid.Job{}); ok {
			t.Errorf("%s: reported a hit", name)
		}
		if got := srv.gets.Load() - before; got != 1 {
			t.Errorf("%s: %d requests, want 1 (definitive answers are not retried)", name, got)
		}
	}
	if st := rc.Stats(); st.Errors != 0 {
		t.Errorf("corruption counted as %d errors, want misses only", st.Errors)
	}
}

// TestRemoteRetriesThenHit counts attempts through transient 5xx weather:
// with Retries=2, two 500s are absorbed and the third attempt's 200 wins.
func TestRemoteRetriesThenHit(t *testing.T) {
	srv := newArtifactServer(t)
	key := testKey(0)
	srv.put(key, grid.Artifact{Schema: grid.SchemaVersion, Result: testResult(4)})
	var n atomic.Int64
	srv.respond = func(w http.ResponseWriter, k string) {
		if n.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.Write(srv.stored[k])
	}
	rc := NewRemoteCache(srv.ts.URL, RemoteOptions{Retries: 2, Backoff: time.Millisecond})
	res, ok := rc.Load(context.Background(), key, grid.Job{})
	if !ok || res.IPC != 4 {
		t.Fatalf("Load = (%v, %v), want hit after retries", res, ok)
	}
	if n.Load() != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", n.Load())
	}
}

// TestRemoteExhaustedRetriesFailOpen: a peer that only answers 500 is a
// miss after the retry budget, and the error counter records the abandon.
func TestRemoteExhaustedRetriesFailOpen(t *testing.T) {
	srv := newArtifactServer(t)
	srv.respond = func(w http.ResponseWriter, _ string) {
		http.Error(w, "down", http.StatusInternalServerError)
	}
	rc := NewRemoteCache(srv.ts.URL, RemoteOptions{Retries: 1, Backoff: time.Millisecond})
	if _, ok := rc.Load(context.Background(), testKey(0), grid.Job{}); ok {
		t.Fatal("all-500 peer reported a hit")
	}
	if st := rc.Stats(); st.Errors != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 error and 1 miss", st)
	}
	if got := srv.gets.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2 (Retries=1)", got)
	}
}

// TestRemoteUnreachableFailsOpenToCompute is the acceptance-criteria
// property end to end: an engine whose only cache tier points at a dead
// address still computes every job locally, with no error and no artifact.
func TestRemoteUnreachableFailsOpenToCompute(t *testing.T) {
	restore := grid.SetSimForTesting(func(*core.Partition, sim.Config) (*sim.Result, error) {
		return testResult(1), nil
	})
	t.Cleanup(restore)

	rc := NewRemoteCache("http://127.0.0.1:1", RemoteOptions{
		Retries: 0, Backoff: time.Millisecond, Timeout: 200 * time.Millisecond,
	})
	eng := grid.New(grid.Options{Workers: 2, Cache: NewTiered(rc)})
	job := grid.Job{Workload: "compress", Config: sim.DefaultConfig(4)}
	res, err := eng.RunCtx(context.Background(), job)
	if err != nil || res == nil {
		t.Fatalf("RunCtx = (%v, %v), want local compute", res, err)
	}
	if s := eng.Stats(); s.Sims != 1 || s.CacheHits != 0 {
		t.Fatalf("stats = %+v, want 1 sim, 0 cache hits", s)
	}
}

// TestRemoteCanceledLeaderNotPoisoned: a load abandoned because the
// caller's ctx died must not memoize a failure — the next caller with a
// live ctx gets the remote hit.
func TestRemoteCanceledLeaderNotPoisoned(t *testing.T) {
	srv := newArtifactServer(t)
	key := grid.Key(grid.Job{Workload: "compress", Config: sim.DefaultConfig(4)})
	srv.put(key, grid.Artifact{Schema: grid.SchemaVersion, Result: testResult(7)})

	restore := grid.SetSimForTesting(func(*core.Partition, sim.Config) (*sim.Result, error) {
		t.Error("simulated despite a cached remote artifact")
		return testResult(0), nil
	})
	t.Cleanup(restore)

	eng := grid.New(grid.Options{Workers: 2, Cache: NewTiered(fastRemote(srv.ts.URL))})
	job := grid.Job{Workload: "compress", Config: sim.DefaultConfig(4)}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunCtx(canceled, job); err == nil {
		t.Fatal("canceled run reported success")
	}
	res, err := eng.RunCtx(context.Background(), job)
	if err != nil || res.IPC != 7 {
		t.Fatalf("post-cancel RunCtx = (%v, %v), want remote hit with IPC 7", res, err)
	}
	if s := eng.Stats(); s.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", s.CacheHits)
	}
}

func TestRemotePing(t *testing.T) {
	srv := newArtifactServer(t)
	if err := fastRemote(srv.ts.URL).Ping(context.Background()); err != nil {
		t.Errorf("ping live server: %v", err)
	}
	dead := NewRemoteCache("http://127.0.0.1:1", RemoteOptions{Timeout: 200 * time.Millisecond})
	if err := dead.Ping(context.Background()); err == nil {
		t.Error("ping dead address succeeded")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestRemoteFailOpenWarningNamesKey: satellite for the silent-degradation
// bug — when the remote tier abandons a request and fails open, the warning
// must name the key, the op, and how many attempts were burned, or a fleet
// quietly recomputing everything locally looks healthy in the logs.
func TestRemoteFailOpenWarningNamesKey(t *testing.T) {
	var buf bytes.Buffer
	rc := NewRemoteCache("http://127.0.0.1:1", RemoteOptions{
		Retries: 1, Backoff: time.Millisecond, Timeout: 200 * time.Millisecond,
		Logger: log.New(&buf, "", 0),
	})
	key := testKey(0)
	if _, ok := rc.Load(context.Background(), key, grid.Job{}); ok {
		t.Fatal("dead peer reported a hit")
	}
	line := buf.String()
	for _, want := range []string{"level=warn", "msg=remote_cache_failopen", "op=load",
		"key=" + key, "attempts=2", "connection refused"} {
		if !strings.Contains(line, want) {
			t.Errorf("load warning %q missing %q", line, want)
		}
	}

	buf.Reset()
	rc.Store(context.Background(), key, grid.Job{}, testResult(1))
	line = buf.String()
	for _, want := range []string{"op=put", "key=" + key, "attempts=2"} {
		if !strings.Contains(line, want) {
			t.Errorf("put warning %q missing %q", line, want)
		}
	}
}
