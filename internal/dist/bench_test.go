package dist

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"multiscalar/internal/core"
	"multiscalar/internal/grid"
	"multiscalar/internal/sim"
)

// benchJobs builds n distinct jobs (distinct cache keys) over the real
// workload set.
func benchJobs(n int) []grid.Job {
	names := []string{"compress", "go", "ijpeg", "tomcatv", "swim", "fpppp"}
	jobs := make([]grid.Job, n)
	for i := range jobs {
		cfg := sim.DefaultConfig(2 + i%8)
		jobs[i] = grid.Job{
			Workload: names[i%len(names)],
			Select:   core.Options{Heuristic: core.Heuristic(i % 3)},
			Config:   cfg,
		}
	}
	return jobs
}

// simCost is the fake per-job simulation cost: high enough that fan-out
// matters, low enough that the benchmark stays fast.
const simCost = 5 * time.Millisecond

// BenchmarkFleet measures end-to-end distributed throughput through the
// real wire protocol — leader HTTP surface, worker pulls, cache publication
// — with a fixed-cost fake simulation. The workers=0 case is the
// single-process baseline; the ratio of jobs/s against it is the
// distributed speedup (protocol overhead included), which CI records next
// to the grid benchmarks.
func BenchmarkFleet(b *testing.B) {
	restore := grid.SetSimForTesting(func(part *core.Partition, cfg sim.Config) (*sim.Result, error) {
		time.Sleep(simCost)
		return &sim.Result{IPC: float64(cfg.NumPUs), Cycles: 100, Instrs: 100}, nil
	})
	b.Cleanup(restore)
	jobs := benchJobs(48)

	for _, workers := range []int{0, 2} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchOneRun(b, jobs, workers)
			}
			b.ReportMetric(float64(len(jobs)*b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// benchOneRun executes one cold distributed pass over jobs with the given
// number of remote workers (0 = no scheduler at all, plain engine).
func benchOneRun(b *testing.B, jobs []grid.Job, workers int) {
	b.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	if workers == 0 {
		eng := grid.New(grid.Options{Workers: 2})
		if err := grid.RunAll(ctx, len(jobs), func(i int) error {
			_, err := eng.RunCtx(ctx, jobs[i])
			return err
		}); err != nil {
			b.Fatal(err)
		}
		return
	}

	sched := NewScheduler(SchedOptions{})
	cache := NewTiered(NewLRU(256))
	leader := NewLeader(sched, LeaderOptions{Cache: cache, PollWait: 20 * time.Millisecond})
	ts := httptest.NewServer(leader.Handler())
	defer ts.Close()

	eng := grid.New(grid.Options{Workers: 2, Cache: cache, Dispatcher: sched})
	var localDone sync.WaitGroup
	localDone.Add(1)
	go func() {
		defer localDone.Done()
		sched.RunLocal(ctx, 2, eng.ComputeCtx)
	}()
	workerErrs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		weng := grid.New(grid.Options{
			Workers: 2,
			Cache:   NewTiered(NewLRU(256), NewRemoteCache(ts.URL, RemoteOptions{Backoff: time.Millisecond})),
		})
		w, err := NewWorker(WorkerOptions{
			Leader:       ts.URL,
			Engine:       weng,
			Concurrency:  2,
			PollInterval: time.Millisecond,
			Logger:       log.New(io.Discard, "", 0),
		})
		if err != nil {
			b.Fatal(err)
		}
		go func() { workerErrs <- w.Run(ctx) }()
	}

	if err := grid.RunAll(ctx, len(jobs), func(i int) error {
		_, err := eng.RunCtx(ctx, jobs[i])
		return err
	}); err != nil {
		b.Fatal(err)
	}
	sched.Close()
	localDone.Wait()
	for i := 0; i < workers; i++ {
		if err := <-workerErrs; err != nil {
			b.Fatalf("worker exit: %v", err)
		}
	}
}
