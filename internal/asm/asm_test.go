package asm

import (
	"strings"
	"testing"

	"multiscalar/internal/emu"
	"multiscalar/internal/ir"
	"multiscalar/internal/workloads"
)

const sumSrc = `
# sum 0..9 into the first data word
.data 0
func main {
entry:
	movi r3, 0
	movi r4, 0
	movi r8, 65536
	goto head
head:
	slti r5, r3, 10
	br r5, body, exit
body:
	add r4, r4, r3
	addi r3, r3, 1
	goto head
exit:
	st r4, 0(r8)
	halt
}
`

func TestParseAndRun(t *testing.T) {
	p, err := Parse("sum", sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	if err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load(ir.DataBase); got != 45 {
		t.Errorf("sum = %d, want 45", got)
	}
}

func TestParseCalls(t *testing.T) {
	src := `
func main {
entry:
	movi r4, 6
	call double, after
after:
	halt
}
func double {
entry:
	add r2, r4, r4
	ret
}
`
	p, err := Parse("calls", src)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m.Regs[ir.RegRV] != 12 {
		t.Errorf("double(6) = %d", m.Regs[ir.RegRV])
	}
}

func TestParseFloatData(t *testing.T) {
	src := `
.data 1.5f, 2.5f
func main {
entry:
	movi r8, 65536
	ld f0, 0(r8)
	ld f1, 8(r8)
	fadd f2, f0, f1
	st f2, 16(r8)
	halt
}
`
	p, err := Parse("fdata", src)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(p)
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := ir.F64(m.Mem.Load(ir.DataBase + 16)); got != 4.0 {
		t.Errorf("1.5+2.5 = %g", got)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown mnemonic", "func main {\nentry:\n\tfrob r1, r2\n\thalt\n}", "unknown mnemonic"},
		{"bad register", "func main {\nentry:\n\tadd r99, r1, r2\n\thalt\n}", "bad register"},
		{"instr outside block", "func main {\n\tnop\n}", "outside block"},
		{"stray brace", "}", "stray }"},
		{"unterminated function", "func main {\nentry:\n\thalt\n", "unterminated"},
		{"bad datum", ".data zork", "bad datum"},
		{"undefined label", "func main {\nentry:\n\tgoto nowhere\n}", "undefined label"},
	}
	for _, c := range cases {
		if _, err := Parse("t", c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestRoundTripWorkloads formats every workload and re-parses it; the
// reassembled program must behave identically.
func TestRoundTripWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			orig := w.Build()
			text := ir.Format(orig)
			re, err := Parse(w.Name, text)
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			// Data images are not part of ir.Format; carry them over.
			re.Data = append([]int64(nil), orig.Data...)
			re.Layout()
			m1 := emu.New(orig)
			m2 := emu.New(re)
			if err := m1.Run(5_000_000); err != nil {
				t.Fatal(err)
			}
			if err := m2.Run(5_000_000); err != nil {
				t.Fatalf("reassembled program: %v", err)
			}
			if m1.Mem.Checksum() != m2.Mem.Checksum() || m1.Count != m2.Count {
				t.Errorf("round trip diverged: %d/%d instrs, %#x/%#x checksums",
					m1.Count, m2.Count, m1.Mem.Checksum(), m2.Mem.Checksum())
			}
		})
	}
}
