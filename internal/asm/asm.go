// Package asm parses the textual assembler syntax that ir.Format emits, so
// programs can be written, stored, and round-tripped as text. The grammar:
//
//	program  := { function }
//	function := "func" name "{" { block } "}"
//	block    := label ":" { instr } term
//	instr    := mnemonic operands      (see ir opcode table)
//	term     := "goto" label | "br" reg "," label "," label
//	          | "call" name "," label | "ret" | "halt"
//
// Labels are either the b<N> form ir.Format prints or arbitrary
// identifiers. "#" starts a line comment. A ".data" directive before the
// first function appends 64-bit words (decimal integers or float64 values
// with a trailing 'f') to the program's data image.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"multiscalar/internal/ir"
)

// Parse assembles the source text into a validated, laid-out program.
func Parse(name, src string) (*ir.Program, error) {
	p := &parser{b: ir.NewBuilder(name)}
	if err := p.run(src); err != nil {
		return nil, err
	}
	var prog *ir.Program
	err := capturePanic(func() { prog = p.b.Build() })
	if err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return prog, nil
}

func capturePanic(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	f()
	return nil
}

type parser struct {
	b    *ir.Builder
	fb   *ir.FuncBuilder
	bb   *ir.BlockBuilder
	line int
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("asm: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) run(src string) error {
	for _, raw := range strings.Split(src, "\n") {
		p.line++
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.statement(line); err != nil {
			return err
		}
	}
	if p.fb != nil {
		return p.errf("unterminated function")
	}
	return nil
}

func (p *parser) statement(line string) error {
	switch {
	case strings.HasPrefix(line, ".data"):
		return p.data(strings.TrimSpace(strings.TrimPrefix(line, ".data")))
	case strings.HasPrefix(line, "func "):
		if p.fb != nil {
			return p.errf("nested function")
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, "func "))
		name := strings.TrimSpace(strings.TrimSuffix(rest, "{"))
		if name == "" || !strings.HasSuffix(rest, "{") {
			return p.errf("malformed function header %q", line)
		}
		p.fb = p.b.Func(name)
		p.bb = nil
		return nil
	case line == "}":
		if p.fb == nil {
			return p.errf("stray }")
		}
		if err := capturePanic(func() { p.fb.End() }); err != nil {
			return p.errf("%v", err)
		}
		p.fb, p.bb = nil, nil
		return nil
	case strings.HasSuffix(line, ":"):
		if p.fb == nil {
			return p.errf("label outside function")
		}
		label := strings.TrimSuffix(line, ":")
		var err error
		perr := capturePanic(func() { p.bb = p.fb.Block(label) })
		if perr != nil {
			return p.errf("%v", perr)
		}
		return err
	default:
		if p.bb == nil {
			return p.errf("instruction outside block: %q", line)
		}
		return p.instr(line)
	}
}

func (p *parser) data(rest string) error {
	for _, tok := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if tok == "" {
			continue
		}
		if strings.HasSuffix(tok, "f") {
			v, err := strconv.ParseFloat(strings.TrimSuffix(tok, "f"), 64)
			if err != nil {
				return p.errf("bad float datum %q", tok)
			}
			p.b.DataF(v)
			continue
		}
		v, err := strconv.ParseInt(tok, 0, 64)
		if err != nil {
			return p.errf("bad datum %q", tok)
		}
		p.b.Data(v)
	}
	return nil
}

var mnemonics = buildMnemonicTable()

func buildMnemonicTable() map[string]ir.Opcode {
	m := make(map[string]ir.Opcode)
	for op := ir.Opcode(0); op.Valid(); op++ {
		m[op.String()] = op
	}
	return m
}

func (p *parser) instr(line string) error {
	fields := strings.SplitN(line, " ", 2)
	mn := fields[0]
	var args []string
	if len(fields) == 2 {
		for _, a := range strings.Split(fields[1], ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	switch mn {
	case "goto":
		if len(args) != 1 {
			return p.errf("goto wants 1 operand")
		}
		p.bb.Goto(args[0])
		p.bb = nil
		return nil
	case "br":
		if len(args) != 3 {
			return p.errf("br wants cond, taken, fall")
		}
		cond, err := p.reg(args[0])
		if err != nil {
			return err
		}
		p.bb.Br(cond, args[1], args[2])
		p.bb = nil
		return nil
	case "call":
		if len(args) != 2 {
			return p.errf("call wants callee, return label")
		}
		p.bb.Call(p.b.DeclareFn(args[0]), args[1])
		p.bb = nil
		return nil
	case "ret":
		p.bb.Ret()
		p.bb = nil
		return nil
	case "halt":
		p.bb.Halt()
		p.bb = nil
		return nil
	}
	op, ok := mnemonics[mn]
	if !ok {
		return p.errf("unknown mnemonic %q", mn)
	}
	return p.plainInstr(op, args)
}

func (p *parser) plainInstr(op ir.Opcode, args []string) error {
	switch op {
	case ir.OpNop:
		p.bb.Nop()
		return nil
	case ir.OpMovI:
		if len(args) != 2 {
			return p.errf("movi wants reg, imm")
		}
		d, err := p.reg(args[0])
		if err != nil {
			return err
		}
		imm, err := p.imm(args[1])
		if err != nil {
			return err
		}
		p.bb.MovI(d, imm)
		return nil
	case ir.OpFMovI:
		if len(args) != 2 {
			return p.errf("fmovi wants reg, float")
		}
		d, err := p.reg(args[0])
		if err != nil {
			return err
		}
		v, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return p.errf("bad float %q", args[1])
		}
		p.bb.FMovI(d, v)
		return nil
	case ir.OpLoad, ir.OpStore:
		// ld rd, off(rs) / st rv, off(rs)
		if len(args) != 2 {
			return p.errf("%v wants reg, off(base)", op)
		}
		r0, err := p.reg(args[0])
		if err != nil {
			return err
		}
		off, base, err := p.memOperand(args[1])
		if err != nil {
			return err
		}
		if op == ir.OpLoad {
			p.bb.Load(r0, base, off)
		} else {
			p.bb.Store(r0, base, off)
		}
		return nil
	}
	if op.HasImm() {
		if len(args) != 3 {
			return p.errf("%v wants reg, reg, imm", op)
		}
		d, err := p.reg(args[0])
		if err != nil {
			return err
		}
		s, err := p.reg(args[1])
		if err != nil {
			return err
		}
		imm, err := p.imm(args[2])
		if err != nil {
			return err
		}
		p.bb.OpI(op, d, s, imm)
		return nil
	}
	switch op.NumSrcs() {
	case 1:
		if len(args) != 2 {
			return p.errf("%v wants reg, reg", op)
		}
		d, err := p.reg(args[0])
		if err != nil {
			return err
		}
		s, err := p.reg(args[1])
		if err != nil {
			return err
		}
		p.bb.Op3(op, d, s, ir.RegZero)
		return nil
	default:
		if len(args) != 3 {
			return p.errf("%v wants reg, reg, reg", op)
		}
		d, err := p.reg(args[0])
		if err != nil {
			return err
		}
		a, err := p.reg(args[1])
		if err != nil {
			return err
		}
		br, err := p.reg(args[2])
		if err != nil {
			return err
		}
		p.bb.Op3(op, d, a, br)
		return nil
	}
}

func (p *parser) reg(s string) (ir.Reg, error) {
	if len(s) < 2 {
		return 0, p.errf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= 32 {
		return 0, p.errf("bad register %q", s)
	}
	switch s[0] {
	case 'r':
		return ir.R(n), nil
	case 'f':
		return ir.F(n), nil
	}
	return 0, p.errf("bad register %q", s)
}

func (p *parser) imm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, p.errf("bad immediate %q", s)
	}
	return v, nil
}

// memOperand parses "off(reg)".
func (p *parser) memOperand(s string) (int64, ir.Reg, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, p.errf("bad memory operand %q", s)
	}
	off := int64(0)
	if open > 0 {
		v, err := strconv.ParseInt(s[:open], 0, 64)
		if err != nil {
			return 0, 0, p.errf("bad offset in %q", s)
		}
		off = v
	}
	r, err := p.reg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return off, r, nil
}
