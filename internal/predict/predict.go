// Package predict implements the prediction hardware of the paper's §4.2:
// a gshare branch predictor for intra-task branches (16-bit history, 64K
// two-bit counters) and a path-based inter-task predictor (16-bit path
// history, 64K entries of a two-bit counter plus a two-bit target number),
// plus the return-address stack the sequencer uses to resolve return targets.
package predict

// Gshare is the intra-task conditional branch predictor.
type Gshare struct {
	history uint32
	bits    uint
	mask    uint32
	table   []uint8 // 2-bit saturating counters, taken >= 2

	// Lookups and Mispredicts count accesses for reporting.
	Lookups, Mispredicts uint64
}

// NewGshare returns a gshare predictor with historyBits of global history and
// a table of 1<<historyBits two-bit counters (16 -> 64K entries, as in the
// paper).
func NewGshare(historyBits uint) *Gshare {
	size := 1 << historyBits
	t := make([]uint8, size)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &Gshare{bits: historyBits, mask: uint32(size - 1), table: t}
}

func (g *Gshare) index(pc uint64) uint32 {
	return (uint32(pc>>2) ^ g.history) & g.mask
}

// Predict returns the taken/not-taken prediction for the branch at pc.
func (g *Gshare) Predict(pc uint64) bool {
	return g.table[g.index(pc)] >= 2
}

// Update trains the predictor with the actual outcome and shifts the global
// history. It returns whether the prediction (made against the pre-update
// state) was correct, and bumps the counters.
func (g *Gshare) Update(pc uint64, taken bool) bool {
	i := g.index(pc)
	pred := g.table[i] >= 2
	if taken && g.table[i] < 3 {
		g.table[i]++
	}
	if !taken && g.table[i] > 0 {
		g.table[i]--
	}
	bit := uint32(0)
	if taken {
		bit = 1
	}
	g.history = ((g.history << 1) | bit) & g.mask
	g.Lookups++
	if pred != taken {
		g.Mispredicts++
	}
	return pred == taken
}

// PathPredictor is the inter-task next-task predictor: a path history of
// recent task start addresses indexes a table whose entries hold a two-bit
// hysteresis counter and a target number selecting among the task's static
// targets (up to MaxTargets).
type PathPredictor struct {
	history uint32
	mask    uint32
	entries []pathEntry

	// MaxTargets is the number of successor slots the hardware tracks (the
	// paper's N = 4, two-bit target numbers). Predicted numbers are always in
	// [0, MaxTargets); actual targets beyond that always mispredict, modeling
	// tasks with more successors than the hardware can track.
	MaxTargets int

	// Lookups and Mispredicts count predictions for Table 1's task pred.
	Lookups, Mispredicts uint64
}

type pathEntry struct {
	counter uint8 // 2-bit hysteresis
	target  uint8
}

// NewPathPredictor returns a path-based predictor with historyBits of path
// history (16 -> 64K entries) tracking maxTargets successors per task.
func NewPathPredictor(historyBits uint, maxTargets int) *PathPredictor {
	size := 1 << historyBits
	return &PathPredictor{
		mask:       uint32(size - 1),
		entries:    make([]pathEntry, size),
		MaxTargets: maxTargets,
	}
}

func (p *PathPredictor) index(taskPC uint64) uint32 {
	return (uint32(taskPC>>2) ^ p.history) & p.mask
}

// Predict returns the predicted target number for the task starting at
// taskPC. Call Speculate or Resolve afterwards to advance the path history.
func (p *PathPredictor) Predict(taskPC uint64) int {
	e := p.entries[p.index(taskPC)]
	t := int(e.target)
	if t >= p.MaxTargets {
		t = 0
	}
	return t
}

// Speculate shifts the predicted next task's start address into the path
// history (the sequencer predicts several tasks ahead, so history updates
// are speculative, as in hardware).
func (p *PathPredictor) Speculate(nextTaskPC uint64) {
	p.history = ((p.history << 3) ^ uint32(nextTaskPC>>2)) & p.mask
}

// RewindTo restores the path history to a checkpoint (misprediction
// recovery). Checkpoint returns the current history.
func (p *PathPredictor) RewindTo(h uint32) { p.history = h }

// Checkpoint returns the current speculative history for later recovery.
func (p *PathPredictor) Checkpoint() uint32 { return p.history }

// Resolve trains the entry for the task at taskPC with the actual target
// number and records accuracy. actual < 0 (target not in the static list)
// always counts as a misprediction and trains slot 0.
func (p *PathPredictor) Resolve(taskPC uint64, predicted, actual int) bool {
	p.Lookups++
	correct := predicted == actual && actual >= 0 && actual < p.MaxTargets
	if !correct {
		p.Mispredicts++
	}
	i := p.index(taskPC)
	e := &p.entries[i]
	act := uint8(0)
	if actual >= 0 && actual < p.MaxTargets {
		act = uint8(actual)
	}
	if e.target == act {
		if e.counter < 3 {
			e.counter++
		}
	} else {
		if e.counter > 0 {
			e.counter--
		} else {
			e.target = act
			e.counter = 1
		}
	}
	return correct
}

// Accuracy returns the fraction of correct predictions so far (1.0 when no
// lookups have happened).
func (p *PathPredictor) Accuracy() float64 {
	if p.Lookups == 0 {
		return 1
	}
	return 1 - float64(p.Mispredicts)/float64(p.Lookups)
}

// RAS is a return-address stack used by the sequencer to resolve
// TargetReturn successors. Entries are opaque uint64 tokens (the caller
// stores task entry encodings).
type RAS struct {
	stack []uint64
	cap   int

	// Overflows counts pushes that displaced the oldest entry.
	Overflows uint64
}

// NewRAS returns a return-address stack with the given capacity.
func NewRAS(capacity int) *RAS { return &RAS{cap: capacity} }

// Push records a return address.
func (r *RAS) Push(v uint64) {
	if len(r.stack) == r.cap {
		copy(r.stack, r.stack[1:])
		r.stack = r.stack[:len(r.stack)-1]
		r.Overflows++
	}
	r.stack = append(r.stack, v)
}

// Pop returns the most recent return address, or 0,false when empty.
func (r *RAS) Pop() (uint64, bool) {
	if len(r.stack) == 0 {
		return 0, false
	}
	v := r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	return v, true
}

// Depth returns the current number of entries.
func (r *RAS) Depth() int { return len(r.stack) }

// Snapshot and Restore support speculative use with recovery.
func (r *RAS) Snapshot() []uint64 { return append([]uint64(nil), r.stack...) }

// Restore resets the stack to a snapshot.
func (r *RAS) Restore(s []uint64) { r.stack = append(r.stack[:0], s...) }
